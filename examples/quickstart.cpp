// Quickstart: compile a query, stream a document through it, read the
// answer.
//
//   $ ./quickstart
//
// The one-call entry point is RunQueryOnXml; QuerySession (see the other
// examples) gives incremental feeding and a live display.

#include <cstdio>

#include "xquery/engine.h"

int main() {
  const char* document =
      "<library>"
      "<book><author>Smith</author><title>Streams</title>"
      "<price>30</price></book>"
      "<book><author>Jones</author><title>Trees</title>"
      "<price>25</price></book>"
      "<book><author>Smith</author><title>Automata</title>"
      "<price>40</price></book>"
      "</library>";

  const char* queries[] = {
      "X//book[author=\"Smith\"]/title",
      "count(X//book)",
      "for $b in X//book order by $b/price return $b/title",
      "<catalog>{ for $b in X//book where $b/author = \"Smith\" "
      "return <entry>{ $b/title, $b/price }</entry> }</catalog>",
  };

  for (const char* query : queries) {
    auto result = xflux::RunQueryOnXml(query, document);
    if (!result.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("query : %s\nanswer: %s\n\n", query, result.value().c_str());
  }
  return 0;
}
