// xflux_serve: the long-running streaming query service (DESIGN.md §11).
//
// Clients connect over a localhost socket, open a session with a query,
// feed XML or binary update events, and subscribe to incremental result
// deltas.  Admission control, per-session deadlines, and three-tier load
// shedding keep the service healthy no matter what the clients do.
//
//   $ ./xflux_serve --unix=/tmp/xflux.sock
//   $ ./xflux_serve --tcp=0                # ephemeral loopback port
//   $ ./xflux_serve --unix=/tmp/xflux.sock --shared   # enable channels
//
// Prints "LISTENING <endpoint>" once the socket is bound (the CI smoke
// job and scripts wait for that line), serves until SIGINT/SIGTERM, then
// prints the service metrics rollup on exit.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "serve/server.h"

namespace {

xflux::serve::ServeServer* g_server = nullptr;

void HandleSignal(int) {
  if (g_server != nullptr) g_server->Stop();  // async-signal-safe
}

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--unix=PATH | --tcp=PORT] [--max-sessions=N]\n"
               "          [--idle-timeout-ms=MS] [--write-timeout-ms=MS]\n"
               "          [--max-frame-bytes=N] [--shared]\n",
               argv0);
}

}  // namespace

int main(int argc, char** argv) {
  xflux::serve::ServeServer::Options options;
  options.unix_path = "/tmp/xflux_serve.sock";
  bool endpoint_set = false;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--unix=", 7) == 0) {
      options.unix_path = arg + 7;
      options.tcp_port = 0;
      endpoint_set = true;
    } else if (std::strncmp(arg, "--tcp=", 6) == 0) {
      options.unix_path.clear();
      options.tcp_port = static_cast<uint16_t>(std::atoi(arg + 6));
      endpoint_set = true;
    } else if (std::strncmp(arg, "--max-sessions=", 15) == 0) {
      options.admission.max_sessions = std::atoi(arg + 15);
    } else if (std::strncmp(arg, "--idle-timeout-ms=", 18) == 0) {
      options.idle_timeout_ms = std::atoll(arg + 18);
    } else if (std::strncmp(arg, "--write-timeout-ms=", 19) == 0) {
      options.write_timeout_ms = std::atoll(arg + 19);
    } else if (std::strncmp(arg, "--max-frame-bytes=", 18) == 0) {
      options.session.max_frame_bytes =
          static_cast<size_t>(std::atoll(arg + 18));
    } else if (std::strcmp(arg, "--shared") == 0) {
      options.shared = true;
    } else {
      Usage(argv[0]);
      return 2;
    }
  }
  (void)endpoint_set;

  xflux::serve::ServeServer server(options);
  xflux::Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "start failed: %s\n", started.ToString().c_str());
    return 1;
  }
  g_server = &server;
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGPIPE, SIG_IGN);  // client hangups surface as write errors

  std::printf("LISTENING %s\n", server.endpoint().c_str());
  std::fflush(stdout);

  server.Run();

  std::printf("served %llu sessions\n",
              static_cast<unsigned long long>(server.sessions_served()));
  std::printf("%s\n", server.metrics().ToString().c_str());
  return 0;
}
