// xflux_serve: the long-running streaming query service (DESIGN.md §11).
//
// Clients connect over a localhost socket, open a session with a query,
// feed XML or binary update events, and subscribe to incremental result
// deltas.  Admission control, per-session deadlines, and three-tier load
// shedding keep the service healthy no matter what the clients do.
//
//   $ ./xflux_serve --unix=/tmp/xflux.sock
//   $ ./xflux_serve --tcp=0                # ephemeral loopback port
//   $ ./xflux_serve --unix=/tmp/xflux.sock --shared   # enable channels
//
// Prints "LISTENING <endpoint>" once the socket is bound (the CI smoke
// job and scripts wait for that line), serves until SIGINT/SIGTERM, then
// prints the service metrics rollup on exit.
//
// --file=PATH --query=Q runs one-shot bulk ingest instead: the server
// starts on a private endpoint, an internal client opens Q and streams
// the file as FEED frames sized for the server's zero-copy adopted path
// (mmap'd windows for regular files, chunked reads for pipes), then the
// answer and timing are printed and the service exits.  This is the CI
// smoke for the end-to-end file → socket → adopted-scan path.
//
//   $ ./xflux_serve --file=dblp.xml --query='count(X//item)'

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <chrono>
#include <string>
#include <thread>

#include "serve/client.h"
#include "serve/server.h"
#include "xml/file_source.h"

namespace {

xflux::serve::ServeServer* g_server = nullptr;

void HandleSignal(int) {
  if (g_server != nullptr) g_server->Stop();  // async-signal-safe
}

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--unix=PATH | --tcp=PORT] [--max-sessions=N]\n"
               "          [--idle-timeout-ms=MS] [--write-timeout-ms=MS]\n"
               "          [--max-frame-bytes=N] [--shared]\n"
               "          [--file=PATH --query=Q]   # one-shot bulk ingest\n",
               argv0);
}

// -- --file one-shot mode ---------------------------------------------------

/// Streams `path` to a running server as FEED frames.  Windows are sized
/// well under max_frame_bytes yet above the server's adoption threshold,
/// so every frame takes the zero-copy path on the far side.
xflux::Status StreamFile(xflux::serve::ServeClient* client,
                         const std::string& path, uint64_t* bytes,
                         uint64_t* frames) {
  constexpr size_t kWindowBytes = 256u << 10;
  xflux::MappedFileSource::Options mopt;
  mopt.window_bytes = kWindowBytes;
  auto mapped = xflux::MappedFileSource::Open(path, mopt);
  if (mapped.ok()) {
    for (;;) {
      auto chunk = mapped.value().Next();
      if (!chunk.ok()) return chunk.status();
      if (!chunk.value().valid()) return xflux::Status::OK();
      std::string_view window(chunk.value().data(),
                              chunk.value().capacity());
      XFLUX_RETURN_IF_ERROR(client->FeedXml(window));
      *bytes += window.size();
      ++*frames;
    }
  }
  // Not a regular file (pipe, FIFO, /dev/stdin): chunked reads instead.
  xflux::ChunkedFileSource::Options copt;
  copt.chunk_bytes = kWindowBytes;
  auto chunked = xflux::ChunkedFileSource::Open(path, copt);
  if (!chunked.ok()) return chunked.status();
  for (;;) {
    auto chunk = chunked.value().Next();
    if (!chunk.ok()) return chunk.status();
    if (!chunk.value().valid()) return xflux::Status::OK();
    std::string_view window(chunk.value().data(), chunk.value().capacity());
    XFLUX_RETURN_IF_ERROR(client->FeedXml(window));
    *bytes += window.size();
    ++*frames;
  }
}

int RunFileIngest(xflux::serve::ServeServer::Options options,
                  const std::string& file_path, const std::string& query) {
  // A private endpoint for the one-shot run; never reuse a service socket.
  if (!options.unix_path.empty()) options.unix_path += ".oneshot";
  xflux::serve::ServeServer server(options);
  xflux::Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "start failed: %s\n", started.ToString().c_str());
    return 1;
  }
  std::thread loop([&server] { server.Run(); });

  int rc = [&]() -> int {
    auto client = xflux::serve::ServeClient::Connect(server.endpoint());
    if (!client.ok()) {
      std::fprintf(stderr, "connect failed: %s\n",
                   client.status().ToString().c_str());
      return 1;
    }
    xflux::Status opened = client.value()->Open(query);
    if (!opened.ok()) {
      std::fprintf(stderr, "open failed: %s\n", opened.ToString().c_str());
      return 1;
    }
    uint64_t bytes = 0, frames = 0;
    auto t0 = std::chrono::steady_clock::now();
    xflux::Status fed = StreamFile(client.value().get(), file_path, &bytes,
                                   &frames);
    if (!fed.ok()) {
      std::fprintf(stderr, "feed failed: %s\n", fed.ToString().c_str());
      return 1;
    }
    xflux::Status finished = client.value()->SendFinish();
    if (finished.ok()) finished = client.value()->WaitFinished(60000);
    double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    if (!finished.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   finished.ToString().c_str());
      return 1;
    }
    std::string text = client.value()->text();
    if (text.size() > 160) text = text.substr(0, 157) + "...";
    std::printf("query   : %s\n", query.c_str());
    std::printf("document: %.1f KiB in %llu frames\n", bytes / 1024.0,
                static_cast<unsigned long long>(frames));
    std::printf("answer  : %s\n", text.c_str());
    std::printf("time    : %.1f ms (%.1f MB/s end-to-end over the socket)\n",
                seconds * 1e3, bytes / seconds / 1e6);
    return 0;
  }();

  server.Stop();
  loop.join();
  std::printf("%s\n", server.metrics().ToString().c_str());
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  xflux::serve::ServeServer::Options options;
  options.unix_path = "/tmp/xflux_serve.sock";
  bool endpoint_set = false;
  std::string file_path;
  std::string query;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--unix=", 7) == 0) {
      options.unix_path = arg + 7;
      options.tcp_port = 0;
      endpoint_set = true;
    } else if (std::strncmp(arg, "--tcp=", 6) == 0) {
      options.unix_path.clear();
      options.tcp_port = static_cast<uint16_t>(std::atoi(arg + 6));
      endpoint_set = true;
    } else if (std::strncmp(arg, "--max-sessions=", 15) == 0) {
      options.admission.max_sessions = std::atoi(arg + 15);
    } else if (std::strncmp(arg, "--idle-timeout-ms=", 18) == 0) {
      options.idle_timeout_ms = std::atoll(arg + 18);
    } else if (std::strncmp(arg, "--write-timeout-ms=", 19) == 0) {
      options.write_timeout_ms = std::atoll(arg + 19);
    } else if (std::strncmp(arg, "--max-frame-bytes=", 18) == 0) {
      options.session.max_frame_bytes =
          static_cast<size_t>(std::atoll(arg + 18));
    } else if (std::strcmp(arg, "--shared") == 0) {
      options.shared = true;
    } else if (std::strncmp(arg, "--file=", 7) == 0) {
      file_path = arg + 7;
    } else if (std::strncmp(arg, "--query=", 8) == 0) {
      query = arg + 8;
    } else {
      Usage(argv[0]);
      return 2;
    }
  }
  (void)endpoint_set;

  if (!file_path.empty() || !query.empty()) {
    if (file_path.empty() || query.empty()) {
      std::fprintf(stderr, "--file= and --query= must be given together\n");
      Usage(argv[0]);
      return 2;
    }
    return RunFileIngest(options, file_path, query);
  }

  xflux::serve::ServeServer server(options);
  xflux::Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "start failed: %s\n", started.ToString().c_str());
    return 1;
  }
  g_server = &server;
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGPIPE, SIG_IGN);  // client hangups surface as write errors

  std::printf("LISTENING %s\n", server.endpoint().c_str());
  std::fflush(stdout);

  server.Run();

  std::printf("served %llu sessions\n",
              static_cast<unsigned long long>(server.sessions_served()));
  std::printf("%s\n", server.metrics().ToString().c_str());
  return 0;
}
