// Pipeline inspector: compiles a query, runs it instrumented over a
// document, and prints the per-stage breakdown — which operator saw how
// many events, how many adjust() applications it paid, and where the time
// went.  The quickest way to see why a query is slow.
//
//   $ ./xflux_inspect                          # Q1-style query, XMark doc
//   $ ./xflux_inspect 'count(X//item)'         # your query, XMark doc
//   $ ./xflux_inspect 'X//a/b' doc.xml         # your query, your document
//
// Robustness drills: --guard=<failfast|drop|resync> inserts the
// ProtocolGuard as the first pipeline stage, and --inject=<spec> mutates
// the event stream before it reaches the session (spec is "light",
// "heavy", or "drop=0.01,kind=0.02,..." — see testing/fault_injector.h).
//
//   $ ./xflux_inspect --guard=drop --inject=heavy --seed=7 'count(X//item)'
//
// --threads=N runs the pipeline on N worker threads (stage segments joined
// by SPSC queues, see DESIGN.md section 6) and reports each queue's
// high-water mark — how close the run came to backpressure.
//
// --explain compiles the query through the optimizer (DESIGN.md
// section 10, XMark schema) and prints the annotated plan — which nodes
// the update-independence pass proved immune, the selectivities the
// reorder pass used, and which pipeline stages each node lowered to —
// before running the document as usual.
//
//   $ ./xflux_inspect --explain 'X//item[location="Albania"]/quantity'
//
// --server switches to QueryServer mode (DESIGN.md section 9): every
// query in --queries=<file> (newline-separated; a built-in Q1-style
// family when omitted) is registered against one shared stream, the
// document is pushed once, and the report shows per-query answers plus
// the server's sharing rollup — how much of the fleet's work the prefix
// DAG deduplicated.  In server mode the positional argument is the
// document; --guard/--inject/--seed apply, --threads does not (server
// dispatch is serial by design).
//
//   $ ./xflux_inspect --server --queries=queries.txt doc.xml
//
// --serve-stats=<BENCH_serve.json> renders a bench_serve service report
// as a table — per-mix outcome counts, p50/p99 delta latency, and the
// shed-tier counters — and exits non-zero if any mix saw transport-level
// errors (the CI serve-smoke job's health check).
//
//   $ ./xflux_inspect --serve-stats=BENCH_serve.json
//
// --file=PATH bulk-ingests the document through the zero-copy file path
// (DESIGN.md section 12): regular files are mmap'd and scanned in place
// as adopted chunks, pipes stream through adopted heap chunks.  The
// report adds the ingest-side counters — windows mapped, bytes adopted,
// and how few boundary bytes were spliced.  Incompatible with --inject
// (which needs the token stream up front).
//
//   $ ./xflux_inspect --file=dblp.xml 'count(X//item)'
//
// The generated XMark document defaults to ~1 MiB; set XFLUX_BENCH_MB to
// scale it like the bench binaries do.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "data/generators.h"
#include "testing/fault_injector.h"
#include "xml/file_source.h"
#include "xml/sax_parser.h"
#include "xquery/engine.h"
#include "xquery/plan.h"
#include "xquery/query_server.h"
#include "xquery/schema.h"

namespace {

bool ReadFile(const char* path, std::string* out) {
  std::FILE* f = std::fopen(path, "rb");
  if (f == nullptr) return false;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out->append(buf, n);
  std::fclose(f);
  return true;
}

/// The --queries file: one query per line, blank lines and #-comments
/// skipped.  With no file, a Q1-style family that exercises the prefix
/// DAG (shared desc(region)//item spines, distinct predicates/fields).
std::vector<std::string> LoadQueries(const std::string& path) {
  if (path.empty()) {
    std::vector<std::string> family;
    for (const char* region : {"europe", "africa", "asia"}) {
      for (const char* field : {"quantity", "location"}) {
        family.push_back(std::string("X//") + region +
                         "//item[location=\"Albania\"]/" + field);
      }
    }
    return family;
  }
  std::string text;
  if (!ReadFile(path.c_str(), &text)) return {};
  std::vector<std::string> queries;
  size_t start = 0;
  while (start <= text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    std::string line = text.substr(start, end - start);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (!line.empty() && line[0] != '#') queries.push_back(line);
    start = end + 1;
  }
  return queries;
}

// -- --serve-stats: render a BENCH_serve.json service report as a table --

/// Pulls `"key":<number>` out of one JSON row (the schema is our own
/// bench output, so a targeted scan beats hauling in a JSON parser).
double JsonNumber(const std::string& row, const std::string& key) {
  std::string needle = "\"" + key + "\":";
  size_t at = row.find(needle);
  if (at == std::string::npos) return 0;
  return std::strtod(row.c_str() + at + needle.size(), nullptr);
}

std::string JsonString(const std::string& row, const std::string& key) {
  std::string needle = "\"" + key + "\":\"";
  size_t at = row.find(needle);
  if (at == std::string::npos) return "?";
  size_t start = at + needle.size();
  size_t end = row.find('"', start);
  return row.substr(start, end - start);
}

int RenderServeStats(const std::string& path) {
  std::string json;
  if (!ReadFile(path.c_str(), &json)) {
    std::fprintf(stderr, "cannot read %s\n", path.c_str());
    return 1;
  }
  size_t rows_at = json.find("\"rows\":[");
  if (rows_at == std::string::npos) {
    std::fprintf(stderr, "%s: no \"rows\" array — not a bench report?\n",
                 path.c_str());
    return 1;
  }
  // Split the rows array on top-level object boundaries.  Bench rows are
  // flat objects, so '{' ... '}' pairs do not nest.
  std::vector<std::string> rows;
  size_t start = json.find('{', rows_at);
  while (start != std::string::npos) {
    size_t end = json.find('}', start);
    if (end == std::string::npos) break;
    rows.push_back(json.substr(start, end - start + 1));
    if (json[end + 1] != ',') break;
    start = json.find('{', end);
  }
  if (rows.empty()) {
    std::fprintf(stderr, "%s: empty rows array\n", path.c_str());
    return 1;
  }
  std::printf(
      "%-12s %9s %9s %9s %9s %8s %8s %11s %11s %18s %9s\n", "mix", "attempt",
      "admitted", "rejected", "complete", "errored", "evicted", "p50_delta",
      "p99_delta", "shed t1/t2/t3", "timeouts");
  for (const std::string& row : rows) {
    std::string shed =
        std::to_string(static_cast<long long>(JsonNumber(row, "shed_tier1"))) +
        "/" +
        std::to_string(static_cast<long long>(JsonNumber(row, "shed_tier2"))) +
        "/" +
        std::to_string(static_cast<long long>(JsonNumber(row, "shed_tier3")));
    std::printf("%-12s %9lld %9lld %9lld %9lld %8lld %8lld %9.2fms %9.2fms "
                "%18s %9lld\n",
                JsonString(row, "mix").c_str(),
                static_cast<long long>(JsonNumber(row, "attempted")),
                static_cast<long long>(JsonNumber(row, "admitted")),
                static_cast<long long>(JsonNumber(row, "rejected")),
                static_cast<long long>(JsonNumber(row, "completed")),
                static_cast<long long>(JsonNumber(row, "errored")),
                static_cast<long long>(JsonNumber(row, "evicted")),
                JsonNumber(row, "p50_delta_ms"),
                JsonNumber(row, "p99_delta_ms"), shed.c_str(),
                static_cast<long long>(JsonNumber(row, "session_timeouts")));
  }
  // The smoke-level health verdict the CI job keys off.
  long long transport = 0;
  for (const std::string& row : rows)
    transport += static_cast<long long>(JsonNumber(row, "transport_errors"));
  std::printf("transport errors across all mixes: %lld%s\n", transport,
              transport == 0 ? " (healthy)" : " (INVESTIGATE)");
  return transport == 0 ? 0 : 3;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<const char*> positional;
  std::string guard_name;
  std::string inject_spec;
  std::string queries_path;
  std::string serve_stats_path;
  std::string file_path;
  bool server_mode = false;
  bool explain = false;
  uint64_t seed = 1;
  int threads = 0;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--guard=", 0) == 0) {
      guard_name = arg.substr(8);
    } else if (arg.rfind("--inject=", 0) == 0) {
      inject_spec = arg.substr(9);
    } else if (arg.rfind("--seed=", 0) == 0) {
      seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (arg.rfind("--threads=", 0) == 0) {
      threads = static_cast<int>(std::strtol(arg.c_str() + 10, nullptr, 10));
    } else if (arg == "--server") {
      server_mode = true;
    } else if (arg == "--explain") {
      explain = true;
    } else if (arg.rfind("--queries=", 0) == 0) {
      queries_path = arg.substr(10);
    } else if (arg.rfind("--serve-stats=", 0) == 0) {
      serve_stats_path = arg.substr(14);
    } else if (arg.rfind("--file=", 0) == 0) {
      file_path = arg.substr(7);
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr,
                   "unknown flag %s (want --guard= --inject= --seed= "
                   "--threads= --server --queries= --explain "
                   "--serve-stats= --file=)\n",
                   arg.c_str());
      return 1;
    } else {
      positional.push_back(argv[i]);
    }
  }
  if (!serve_stats_path.empty()) {
    return RenderServeStats(serve_stats_path);
  }
  if (!file_path.empty() && (server_mode || !inject_spec.empty())) {
    std::fprintf(stderr,
                 "--file= streams the document zero-copy and cannot be "
                 "combined with --server or --inject\n");
    return 1;
  }
  if (server_mode) {
    std::vector<std::string> queries = LoadQueries(queries_path);
    if (queries.empty()) {
      std::fprintf(stderr, "no queries (cannot read %s?)\n",
                   queries_path.c_str());
      return 1;
    }
    std::string document;
    if (!positional.empty()) {
      if (!ReadFile(positional[0], &document)) {
        std::fprintf(stderr, "cannot read %s\n", positional[0]);
        return 1;
      }
    } else {
      document = xflux::GenerateXmark(
          xflux::XmarkOptionsForBytes(xflux::bench::XmarkBytes() / 2));
    }

    xflux::QueryOptions options;
    options.instrumentation = true;
    if (!guard_name.empty()) {
      auto policy = xflux::ProtocolGuard::ParsePolicy(guard_name);
      if (!policy.ok()) {
        std::fprintf(stderr, "bad --guard: %s\n",
                     policy.status().ToString().c_str());
        return 1;
      }
      options.guard = true;
      options.guard_options.policy = policy.value();
    }

    xflux::QueryServer server;
    for (const std::string& q : queries) {
      auto handle = server.Register(q, options);
      if (!handle.ok()) {
        std::fprintf(stderr, "register failed for '%s': %s\n", q.c_str(),
                     handle.status().ToString().c_str());
        return 1;
      }
    }

    double seconds;
    if (!inject_spec.empty()) {
      auto parsed = xflux::ParseFaultSpec(inject_spec);
      if (!parsed.ok()) {
        std::fprintf(stderr, "bad --inject: %s\n",
                     parsed.status().ToString().c_str());
        return 1;
      }
      auto tokens = xflux::SaxParser::Tokenize(document);
      if (!tokens.ok()) {
        std::fprintf(stderr, "tokenize failed: %s\n",
                     tokens.status().ToString().c_str());
        return 1;
      }
      xflux::EventVec mutated =
          xflux::MutateStream(tokens.value(), parsed.value(), seed, nullptr);
      seconds = xflux::bench::Time([&] {
        server.PushAll(mutated);
        server.Finish();
      });
    } else {
      seconds = xflux::bench::Time([&] {
        auto status = server.PushDocument(document);
        if (!status.ok()) {
          std::fprintf(stderr, "run failed: %s\n", status.ToString().c_str());
        }
        server.Finish();
      });
    }

    std::printf("server  : %zu queries, one %.1f KiB stream\n",
                server.query_count(), document.size() / 1024.0);
    std::printf("time    : %.1f ms (%.1f MB/s aggregate, instrumented)\n\n",
                seconds * 1e3,
                document.size() * static_cast<double>(server.query_count()) /
                    seconds / 1e6);
    for (size_t i = 0; i < server.query_count(); ++i) {
      xflux::QueryHandle* h = server.handle(i);
      auto answer = h->CurrentText();
      std::string text = answer.ok() ? answer.value()
                                     : h->status().ToString();
      if (text.size() > 96) text = text.substr(0, 93) + "...";
      std::printf("  [%zu] %s\n      -> %s\n", i, h->query().c_str(),
                  text.c_str());
    }
    std::printf("\n%s", server.StatsTable().c_str());
    std::printf("\npipeline: %s\n",
                server.AggregateMetrics().ToString().c_str());
    return 0;
  }

  const char* query = !positional.empty()
                          ? positional[0]
                          : "X//europe//item[location=\"Albania\"]/quantity";

  std::string document;
  if (file_path.empty()) {
    if (positional.size() > 1) {
      if (!ReadFile(positional[1], &document)) {
        std::fprintf(stderr, "cannot read %s\n", positional[1]);
        return 1;
      }
    } else {
      document = xflux::GenerateXmark(
          xflux::XmarkOptionsForBytes(xflux::bench::XmarkBytes() / 2));
    }
  }

  xflux::QuerySession::Options options;
  options.instrumentation = true;
  options.threads = threads;
  xflux::Schema schema = xflux::XMarkSchema();
  if (explain) {
    options.optimize = true;
    options.schema = &schema;
  }
  if (!guard_name.empty()) {
    auto policy = xflux::ProtocolGuard::ParsePolicy(guard_name);
    if (!policy.ok()) {
      std::fprintf(stderr, "bad --guard: %s\n",
                   policy.status().ToString().c_str());
      return 1;
    }
    options.guard = true;
    options.guard_options.policy = policy.value();
  }
  auto session = xflux::QuerySession::Open(query, options);
  if (!session.ok()) {
    std::fprintf(stderr, "compile failed: %s\n",
                 session.status().ToString().c_str());
    return 1;
  }
  if (explain && session.value()->plan() != nullptr) {
    std::printf("plan (optimized, XMark schema):\n%s\n",
                xflux::PlanToString(*session.value()->plan(),
                                    /*annotations=*/true)
                    .c_str());
  }

  xflux::FaultSpec fault_spec;
  if (!inject_spec.empty()) {
    auto parsed = xflux::ParseFaultSpec(inject_spec);
    if (!parsed.ok()) {
      std::fprintf(stderr, "bad --inject: %s\n",
                   parsed.status().ToString().c_str());
      return 1;
    }
    fault_spec = parsed.value();
  }

  double seconds;
  size_t ingested_bytes = document.size();
  xflux::FaultCounts fault_counts;
  if (!inject_spec.empty()) {
    // Mutate the token stream, then drive the session event-by-event —
    // the hostile-input drill the guard policies exist for.
    auto tokens = xflux::SaxParser::Tokenize(document);
    if (!tokens.ok()) {
      std::fprintf(stderr, "tokenize failed: %s\n",
                   tokens.status().ToString().c_str());
      return 1;
    }
    xflux::EventVec mutated = xflux::MutateStream(tokens.value(), fault_spec,
                                                  seed, &fault_counts);
    seconds = xflux::bench::Time([&] {
      session.value()->PushAll(mutated);
      session.value()->Finish();  // drain worker threads before the guard
      if (session.value()->guard() != nullptr) {
        session.value()->guard()->Finish();
      }
      if (!session.value()->status().ok()) {
        std::fprintf(stderr, "run failed: %s\n",
                     session.value()->status().ToString().c_str());
      }
    });
  } else if (!file_path.empty()) {
    // Zero-copy bulk ingest: mmap'd (or chunked, for pipes) adopted chunks
    // scanned in place, driving the session's pipeline directly.
    xflux::PipelineSource source(session.value()->pipeline());
    xflux::SaxParser::Options popt;
    popt.stream_id = session.value()->source_id();
    popt.errors = session.value()->pipeline()->context()->errors();
    xflux::SaxParser parser(popt, &source);
    xflux::FileIngestReport report;
    bool file_unreadable = false;
    seconds = xflux::bench::Time([&] {
      auto ingested = xflux::IngestFile(file_path, &parser);
      xflux::Status st =
          ingested.ok() ? parser.Finish() : ingested.status();
      session.value()->Finish();  // always drain, even on parse failure
      if (st.ok()) {
        report = ingested.value();
      } else {
        file_unreadable = !ingested.ok();
        std::fprintf(stderr, "run failed: %s\n", st.ToString().c_str());
      }
    });
    // An unreadable file is a usage error (rc 1, like the positional
    // file arg); a parse failure still reports the partial session.
    if (file_unreadable) return 1;
    ingested_bytes = report.bytes;
    const auto& is = parser.ingest_stats();
    std::printf("ingest  : %s, %llu chunks, %llu adopted bytes, "
                "%llu spliced (%.3f%%), %llu aliased / %llu copied / "
                "%llu inlined texts\n",
                report.mapped ? "mmap" : "chunked read",
                (unsigned long long)report.chunks,
                (unsigned long long)is.adopted_bytes,
                (unsigned long long)is.splice_bytes,
                report.bytes > 0
                    ? 100.0 * is.splice_bytes / report.bytes
                    : 0.0,
                (unsigned long long)is.aliased_texts,
                (unsigned long long)is.copied_texts,
                (unsigned long long)is.inlined_texts);
  } else {
    seconds = xflux::bench::Time([&] {
      auto status = session.value()->PushDocument(document);
      if (!status.ok()) {
        std::fprintf(stderr, "run failed: %s\n", status.ToString().c_str());
      }
      session.value()->Finish();  // no-op in serial mode; drains workers
    });
  }

  auto answer = session.value()->CurrentText();
  std::string text = answer.ok() ? answer.value() : "<error>";
  if (text.size() > 160) text = text.substr(0, 157) + "...";

  std::printf("query   : %s\n", query);
  std::printf("document: %.1f KiB\n", ingested_bytes / 1024.0);
  std::printf("answer  : %s\n", text.c_str());
  std::printf("time    : %.1f ms (%.1f MB/s, instrumented)\n\n",
              seconds * 1e3, ingested_bytes / seconds / 1e6);
  if (!inject_spec.empty()) {
    std::printf(
        "injected: %llu faults (seed %llu: %llu drop, %llu dup, %llu swap, "
        "%llu tag, %llu kind, %llu id, %llu trunc)\n",
        (unsigned long long)fault_counts.total(), (unsigned long long)seed,
        (unsigned long long)fault_counts.drops,
        (unsigned long long)fault_counts.duplicates,
        (unsigned long long)fault_counts.swaps,
        (unsigned long long)fault_counts.tag_corruptions,
        (unsigned long long)fault_counts.kind_corruptions,
        (unsigned long long)fault_counts.id_corruptions,
        (unsigned long long)fault_counts.truncations);
  }
  if (const auto* guard = session.value()->guard()) {
    std::printf("guard   : %llu violations, %llu events dropped, "
                "%llu regions dropped, %llu resyncs\n",
                (unsigned long long)guard->violations(),
                (unsigned long long)guard->dropped_events(),
                (unsigned long long)guard->dropped_regions(),
                (unsigned long long)guard->resyncs());
    if (!guard->last_violation().ok()) {
      std::printf("last    : %s\n",
                  guard->last_violation().ToString().c_str());
    }
  }
  if (threads > 0) {
    auto marks = session.value()->pipeline()->QueueHighWaterMarks();
    std::printf("threads : %d workers, queue hwm [", threads);
    for (size_t i = 0; i < marks.size(); ++i) {
      std::printf("%s%zu", i == 0 ? "" : " ", marks[i]);
    }
    std::printf("] of %zu\n", options.queue_capacity);
  }
  const xflux::RegionDocument& doc = session.value()->display()->document();
  std::printf("display : %zu items in %zu live regions (%zu intervals), "
              "slab %.1f KiB at %.0f%% occupancy, %llu full rescans\n",
              doc.item_count(), doc.live_region_count(),
              doc.live_interval_count(), doc.arena_bytes() / 1024.0,
              doc.arena_occupancy() * 100.0,
              (unsigned long long)doc.full_rescans());
  std::printf("%s", session.value()->stats()->ToTable().c_str());
  std::printf("\npipeline: %s\n",
              session.value()->metrics()->ToString().c_str());
  return 0;
}
