// Pipeline inspector: compiles a query, runs it instrumented over a
// document, and prints the per-stage breakdown — which operator saw how
// many events, how many adjust() applications it paid, and where the time
// went.  The quickest way to see why a query is slow.
//
//   $ ./xflux_inspect                          # Q1-style query, XMark doc
//   $ ./xflux_inspect 'count(X//item)'         # your query, XMark doc
//   $ ./xflux_inspect 'X//a/b' doc.xml         # your query, your document
//
// The generated XMark document defaults to ~1 MiB; set XFLUX_BENCH_MB to
// scale it like the bench binaries do.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench/bench_util.h"
#include "data/generators.h"
#include "xquery/engine.h"

namespace {

bool ReadFile(const char* path, std::string* out) {
  std::FILE* f = std::fopen(path, "rb");
  if (f == nullptr) return false;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out->append(buf, n);
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const char* query = argc > 1
                          ? argv[1]
                          : "X//europe//item[location=\"Albania\"]/quantity";

  std::string document;
  if (argc > 2) {
    if (!ReadFile(argv[2], &document)) {
      std::fprintf(stderr, "cannot read %s\n", argv[2]);
      return 1;
    }
  } else {
    document = xflux::GenerateXmark(
        xflux::XmarkOptionsForBytes(xflux::bench::XmarkBytes() / 2));
  }

  xflux::QuerySession::Options options;
  options.instrumentation = true;
  auto session = xflux::QuerySession::Open(query, options);
  if (!session.ok()) {
    std::fprintf(stderr, "compile failed: %s\n",
                 session.status().ToString().c_str());
    return 1;
  }

  double seconds = xflux::bench::Time([&] {
    auto status = session.value()->PushDocument(document);
    if (!status.ok()) {
      std::fprintf(stderr, "run failed: %s\n", status.ToString().c_str());
    }
  });

  auto answer = session.value()->CurrentText();
  std::string text = answer.ok() ? answer.value() : "<error>";
  if (text.size() > 160) text = text.substr(0, 157) + "...";

  std::printf("query   : %s\n", query);
  std::printf("document: %.1f KiB\n", document.size() / 1024.0);
  std::printf("answer  : %s\n", text.c_str());
  std::printf("time    : %.1f ms (%.1f MB/s, instrumented)\n\n",
              seconds * 1e3, document.size() / seconds / 1e6);
  std::printf("%s", session.value()->stats()->ToTable().c_str());
  std::printf("\npipeline: %s\n",
              session.value()->metrics()->ToString().c_str());
  return 0;
}
