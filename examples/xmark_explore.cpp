// Runs the paper's benchmark-style queries over a generated XMark-like
// document and reports answers plus engine metrics (transformer calls,
// state high-water marks) — a small-scale preview of bench_table2_queries.
//
//   $ ./xmark_explore [approx_kilobytes]

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "data/generators.h"
#include "xml/sax_parser.h"
#include "xquery/engine.h"

int main(int argc, char** argv) {
  size_t kilobytes = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 256;
  xflux::XmarkOptions options = xflux::XmarkOptionsForBytes(kilobytes * 1024);
  std::string document = xflux::GenerateXmark(options);
  std::printf("document: %.1f KiB, %d items/region\n",
              document.size() / 1024.0, options.items_per_region);

  const char* queries[] = {
      "count(X//item)",
      "count(X//item[location=\"Albania\"])",
      "X//europe//item[location=\"Albania\"]/quantity",
      "count(X//item[location=\"Albania\"]/..)",
      "count(X//item[location=\"Albania\"]/ancestor::europe)",
      "<result>{ for $c in X//item where $c/location = \"Albania\" "
      "return <item>{ $c/quantity, $c/payment }</item> }</result>",
  };

  for (const char* query : queries) {
    auto session = xflux::QuerySession::Open(query);
    if (!session.ok()) {
      std::fprintf(stderr, "compile failed: %s\n",
                   session.status().ToString().c_str());
      return 1;
    }
    auto start = std::chrono::steady_clock::now();
    auto status = session.value()->PushDocument(document);
    auto elapsed = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
    if (!status.ok()) {
      std::fprintf(stderr, "run failed: %s\n", status.ToString().c_str());
      return 1;
    }
    auto answer = session.value()->CurrentText();
    const xflux::Metrics* metrics =
        session.value()->pipeline()->context()->metrics();
    std::string text = answer.ok() ? answer.value() : "<error>";
    if (text.size() > 120) text = text.substr(0, 117) + "...";
    std::printf("\nquery : %s\nanswer: %s\n", query, text.c_str());
    std::printf("        %.1f ms, %.1f MB/s, %s\n", elapsed * 1e3,
                document.size() / elapsed / 1e6, metrics->ToString().c_str());
  }
  return 0;
}
