// The paper's introduction scenario: books by Wiley authored by Smith,
// sorted by price, over a stream that keeps changing.
//
// The result display is continuous: when a qualified book arrives it is
// inserted at the right place in the sorted list; when a price changes the
// book moves; when an author stops being Smith the book vanishes — all via
// retroactive updates, never by re-running the query.
//
//   $ ./bookstore

#include <cstdio>

#include "xquery/engine.h"

using xflux::Event;
using xflux::EventVec;
using xflux::QuerySession;
using xflux::StreamId;

namespace {

void Show(QuerySession& session, const char* what) {
  auto text = session.CurrentText();
  std::printf("after %-38s | %s\n", what,
              text.ok() ? text.value().c_str() : "<error>");
}

// Pushes one book element whose author and price are mutable regions.
void PushBook(QuerySession& session, const char* publisher,
              const char* author, const char* title, const char* price,
              StreamId author_region, StreamId price_region) {
  EventVec events = {
      Event::StartElement(0, "book"),
      Event::StartElement(0, "publisher"),
      Event::Characters(0, publisher),
      Event::EndElement(0, "publisher"),
      Event::StartElement(0, "author"),
      Event::StartMutable(0, author_region),
      Event::Characters(author_region, author),
      Event::EndMutable(0, author_region),
      Event::EndElement(0, "author"),
      Event::StartElement(0, "title"),
      Event::Characters(0, title),
      Event::EndElement(0, "title"),
      Event::StartElement(0, "price"),
      Event::StartMutable(0, price_region),
      Event::Characters(price_region, price),
      Event::EndMutable(0, price_region),
      Event::EndElement(0, "price"),
      Event::EndElement(0, "book"),
  };
  session.PushAll(events);
}

void Replace(QuerySession& session, StreamId target, StreamId fresh,
             const char* text) {
  session.PushAll({Event::StartReplace(target, fresh),
                   Event::Characters(fresh, text),
                   Event::EndReplace(target, fresh)});
}

}  // namespace

int main() {
  auto session = QuerySession::Open(
      "<books>{ for $b in X//book[publisher=\"Wiley\"] "
      "where $b/author = \"Smith\" order by $b/price "
      "return <book>{ $b/title, $b/price }</book> }</books>");
  if (!session.ok()) {
    std::fprintf(stderr, "compile failed: %s\n",
                 session.status().ToString().c_str());
    return 1;
  }
  QuerySession& q = *session.value();

  q.PushAll({Event::StartStream(0), Event::StartElement(0, "biblio")});

  PushBook(q, "Wiley", "Smith", "Query Processing", "45",
           /*author_region=*/100, /*price_region=*/101);
  Show(q, "first Smith/Wiley book arrives");

  PushBook(q, "Wiley", "Smith", "Stream Algebra", "30",
           /*author_region=*/102, /*price_region=*/103);
  Show(q, "cheaper book sorts in front");

  PushBook(q, "Wiley", "Jones", "Other Topics", "10",
           /*author_region=*/104, /*price_region=*/105);
  Show(q, "a Jones book (filtered out)");

  // A price update rewrites the displayed price in place.  (Re-sorting on
  // key updates is the paper's future work: Section VI-D's algorithm
  // inserts each tuple once, when its key first arrives.)
  Replace(q, 101, 201, "20");
  Show(q, "price 45 -> 20 (price rewrites)");

  // The Jones book's author changes to Smith: it appears retroactively.
  Replace(q, 104, 202, "Smith");
  Show(q, "Jones -> Smith (book appears)");

  // And the first book's author stops being Smith: it disappears.
  Replace(q, 100, 203, "Doe");
  Show(q, "Smith -> Doe (book disappears)");

  if (!q.display_status().ok()) {
    std::fprintf(stderr, "display error: %s\n",
                 q.display_status().ToString().c_str());
    return 1;
  }
  return 0;
}
