// Section V's motivating stream: a stock ticker whose quotes are mutable
// regions.  The query tracks one symbol's quote; every replacement update
// in the stream replaces the displayed value — bounded state, because the
// mutability analysis drops everything else (names are fixed, so the
// predicate decisions for other symbols are frozen and evicted).
//
//   $ ./stock_ticker

#include <cstdio>

#include "data/generators.h"
#include "xquery/engine.h"

int main() {
  auto session = xflux::QuerySession::Open("X//stock[name=\"IBM\"]/quote");
  if (!session.ok()) {
    std::fprintf(stderr, "compile failed: %s\n",
                 session.status().ToString().c_str());
    return 1;
  }
  xflux::QuerySession& q = *session.value();

  // Re-render whenever the displayed answer may have changed; print only
  // actual changes.
  std::string last;
  int renders = 0;
  q.display()->SetOnChange([&](const xflux::ResultDisplay& display) {
    auto text = display.CurrentText();
    // Elements still streaming in render as partial text, and a candidate
    // quote may appear optimistically and be retracted a few events later
    // (the paper's optimistic display).  Print only settled answers: one
    // complete quote.
    if (text.ok() && text.value() != last && !text.value().empty() &&
        text.value().size() > 7 &&
        text.value().compare(text.value().size() - 8, 8, "</quote>") == 0 &&
        text.value().find("<quote>", 1) == std::string::npos) {
      last = text.value();
      std::printf("IBM quote: %s\n", last.c_str());
      ++renders;
    }
  });

  xflux::StockTickerOptions options;
  options.symbols = 8;
  options.updates = 60;
  q.PushAll(xflux::GenerateStockTicker(options));

  if (!q.display_status().ok()) {
    std::fprintf(stderr, "display error: %s\n",
                 q.display_status().ToString().c_str());
    return 1;
  }
  std::printf("(%d quote changes displayed; final answer: %s)\n", renders,
              q.CurrentText().value().c_str());
  return 0;
}
