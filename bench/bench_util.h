// Shared helpers for the benchmark binaries: scale selection (the
// XFLUX_BENCH_MB environment variable multiplies the default laptop-scale
// document sizes), simple wall-clock timing, and the BENCH_<name>.json
// trajectory files every bench writes next to its stdout table.

#ifndef XFLUX_BENCH_BENCH_UTIL_H_
#define XFLUX_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "util/json.h"

namespace xflux::bench {

/// Approximate XMark document size in bytes (default 2 MiB; scaled by
/// XFLUX_BENCH_MB).  The paper used 224 MB; only relative numbers matter.
inline size_t XmarkBytes() {
  const char* env = std::getenv("XFLUX_BENCH_MB");
  double mb = env != nullptr ? std::strtod(env, nullptr) : 2.0;
  if (mb <= 0) mb = 2.0;
  return static_cast<size_t>(mb * 1024 * 1024);
}

/// DBLP document size: the paper's D is 1.42x its X (318 MB vs 224 MB).
inline size_t DblpBytes() {
  return static_cast<size_t>(static_cast<double>(XmarkBytes()) * 1.42);
}

/// Wall-clock seconds spent in `fn`.
template <typename Fn>
double Time(Fn&& fn) {
  auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Where the BENCH_*.json files land: $XFLUX_BENCH_JSON_DIR or the current
/// directory.
inline std::string BenchJsonPath(const std::string& bench_name) {
  const char* dir = std::getenv("XFLUX_BENCH_JSON_DIR");
  std::string path = dir != nullptr && *dir != '\0' ? std::string(dir) + "/"
                                                    : std::string();
  return path + "BENCH_" + bench_name + ".json";
}

/// Writes one bench run's JSON document (see EXPERIMENTS.md for the
/// schema) to BENCH_<name>.json and notes the path on stdout.  Returns
/// false (with a note on stderr) if the file cannot be written.
inline bool WriteBenchJson(const std::string& bench_name,
                           const std::string& json) {
  std::string path = BenchJsonPath(bench_name);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return true;
}

/// Starts the top-level object every bench JSON shares: bench name plus
/// the scale settings of the run.  Benches add a "rows" array and Close().
inline JsonWriter BenchJsonHeader(const std::string& bench_name) {
  JsonWriter w = JsonWriter::Object();
  w.Field("bench", bench_name);
  w.Field("xmark_bytes", static_cast<uint64_t>(XmarkBytes()));
  w.Field("dblp_bytes", static_cast<uint64_t>(DblpBytes()));
  return w;
}

/// The report shape every table-writing bench emits — the shared header
/// plus a "rows" array with one object per printed table row — and the
/// write choreography around it:
///
///   bench::BenchReport report("table2_queries");
///   ...
///   report.AddRow(std::move(row));      // once per table row
///   ...
///   report.Write();                     // -> BENCH_table2_queries.json
///
/// Keeping the schema in one place is what lets downstream consumers
/// (CI's bench-smoke artifacts, CostProfile::MergeBenchJson) read any
/// bench's file the same way.
class BenchReport {
 public:
  explicit BenchReport(std::string bench_name)
      : name_(std::move(bench_name)) {}

  /// Appends one finished row object (the row writer is consumed).
  void AddRow(JsonWriter row) { rows_.RawElement(row.Close()); }

  /// Writes BENCH_<name>.json.  The report is spent afterwards.
  bool Write() {
    JsonWriter w = BenchJsonHeader(name_);
    w.Raw("rows", rows_.Close());
    return WriteBenchJson(name_, w.Close());
  }

 private:
  std::string name_;
  JsonWriter rows_ = JsonWriter::Array();
};

}  // namespace xflux::bench

#endif  // XFLUX_BENCH_BENCH_UTIL_H_
