// Shared helpers for the benchmark binaries: scale selection (the
// XFLUX_BENCH_MB environment variable multiplies the default laptop-scale
// document sizes) and simple wall-clock timing.

#ifndef XFLUX_BENCH_BENCH_UTIL_H_
#define XFLUX_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace xflux::bench {

/// Approximate XMark document size in bytes (default 2 MiB; scaled by
/// XFLUX_BENCH_MB).  The paper used 224 MB; only relative numbers matter.
inline size_t XmarkBytes() {
  const char* env = std::getenv("XFLUX_BENCH_MB");
  double mb = env != nullptr ? std::strtod(env, nullptr) : 2.0;
  if (mb <= 0) mb = 2.0;
  return static_cast<size_t>(mb * 1024 * 1024);
}

/// DBLP document size: the paper's D is 1.42x its X (318 MB vs 224 MB).
inline size_t DblpBytes() {
  return static_cast<size_t>(static_cast<double>(XmarkBytes()) * 1.42);
}

/// Wall-clock seconds spent in `fn`.
template <typename Fn>
double Time(Fn&& fn) {
  auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace xflux::bench

#endif  // XFLUX_BENCH_BENCH_UTIL_H_
