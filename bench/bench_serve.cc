// Service-level robustness benchmark for xflux_serve: a fresh in-process
// server per mix, a multi-client traffic generator driving it, and the
// SLO numbers EXPERIMENTS.md table A7 reports:
//
//   honest      — well-behaved subscribers; baseline delta push latency.
//   slow        — consumers that feed but never read: bounded outbound
//                 queues + write deadlines must cut them loose while the
//                 honest half completes untouched.
//   bursty      — whole documents in single frames, all at once.
//   hostile_mix — corrupted documents, framing garbage, and length bombs
//                 interleaved with honest traffic: every hostile client
//                 must end with a structured error, every honest one
//                 cleanly, and the server must survive all of it.
//   overload_4x — 4x the admitted-session budget offered at once under
//                 aggressive shed thresholds: admission rejects carry
//                 retry-after, the shed tiers fire in order, queues stay
//                 bounded, and admitted clean sessions still finish.
//
// Each row records the traffic generator's view (outcome counts, p50/p99
// delta latency) and the server's own counters (admission rejects, per-
// tier sheds, timeouts).  Writes BENCH_serve.json.

#include <cstdio>
#include <string>
#include <thread>

#include "bench/bench_util.h"
#include "serve/server.h"
#include "testing/traffic_gen.h"

namespace {

using xflux::serve::ServeServer;
using xflux::serve::TrafficOptions;
using xflux::serve::TrafficReport;

struct MixResult {
  TrafficReport traffic;
  xflux::Metrics metrics;
  double seconds = 0;
};

MixResult RunMix(const std::string& name, ServeServer::Options server_options,
                 TrafficOptions traffic) {
  server_options.unix_path = "bench_serve_" + name + ".sock";
  ServeServer server(server_options);
  xflux::Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "server start failed: %s\n",
                 started.ToString().c_str());
    return {};
  }
  std::thread loop([&server] { server.Run(); });
  traffic.endpoint = server.endpoint();
  MixResult result;
  result.seconds = xflux::bench::Time(
      [&] { result.traffic = xflux::serve::RunTraffic(traffic); });
  server.Stop();
  loop.join();
  result.metrics = server.metrics();
  return result;
}

void AddRow(xflux::bench::BenchReport& report, const std::string& mix,
            const MixResult& r) {
  xflux::JsonWriter row = xflux::JsonWriter::Object();
  row.Field("mix", mix);
  row.Field("seconds", r.seconds);
  row.Field("attempted", r.traffic.attempted);
  row.Field("admitted", r.traffic.admitted);
  row.Field("rejected", r.traffic.rejected);
  row.Field("completed", r.traffic.completed);
  row.Field("errored", r.traffic.errored);
  row.Field("evicted", r.traffic.evicted);
  row.Field("transport_errors", r.traffic.transport_errors);
  row.Field("deltas", r.traffic.deltas);
  row.Field("p50_delta_ms", r.traffic.LatencyPercentile(0.5));
  row.Field("p99_delta_ms", r.traffic.LatencyPercentile(0.99));
  row.Field("admission_rejects", r.metrics.admission_rejects());
  row.Field("shed_tier1", r.metrics.shed_tier(1));
  row.Field("shed_tier2", r.metrics.shed_tier(2));
  row.Field("shed_tier3", r.metrics.shed_tier(3));
  row.Field("session_timeouts", r.metrics.session_timeouts());
  report.AddRow(std::move(row));
  std::printf(
      "%-12s %5.2fs  attempted=%llu admitted=%llu rejected=%llu "
      "completed=%llu errored=%llu evicted=%llu transport=%llu "
      "p50=%.2fms p99=%.2fms shed=%llu/%llu/%llu timeouts=%llu\n",
      mix.c_str(), r.seconds,
      static_cast<unsigned long long>(r.traffic.attempted),
      static_cast<unsigned long long>(r.traffic.admitted),
      static_cast<unsigned long long>(r.traffic.rejected),
      static_cast<unsigned long long>(r.traffic.completed),
      static_cast<unsigned long long>(r.traffic.errored),
      static_cast<unsigned long long>(r.traffic.evicted),
      static_cast<unsigned long long>(r.traffic.transport_errors),
      r.traffic.LatencyPercentile(0.5), r.traffic.LatencyPercentile(0.99),
      static_cast<unsigned long long>(r.metrics.shed_tier(1)),
      static_cast<unsigned long long>(r.metrics.shed_tier(2)),
      static_cast<unsigned long long>(r.metrics.shed_tier(3)),
      static_cast<unsigned long long>(r.metrics.session_timeouts()));
}

}  // namespace

int main() {
  xflux::bench::BenchReport report("serve");

  ServeServer::Options base;
  base.admission.max_sessions = 32;
  base.idle_timeout_ms = 10000;
  base.write_timeout_ms = 1000;

  TrafficOptions traffic;
  traffic.doc_bytes = 8192;
  traffic.chunk_bytes = 512;

  {
    TrafficOptions t = traffic;
    t.honest = 8;
    t.seed = 11;
    AddRow(report, "honest", RunMix("honest", base, t));
  }
  {
    TrafficOptions t = traffic;
    t.honest = 4;
    t.slow = 4;
    t.seed = 22;
    AddRow(report, "slow", RunMix("slow", base, t));
  }
  {
    TrafficOptions t = traffic;
    t.bursty = 12;
    t.seed = 33;
    AddRow(report, "bursty", RunMix("bursty", base, t));
  }
  {
    TrafficOptions t = traffic;
    t.honest = 6;
    t.hostile = 6;
    t.slow = 2;
    t.seed = 44;
    AddRow(report, "hostile_mix", RunMix("hostile", base, t));
  }
  {
    // 4x the admitted budget, with shed thresholds low enough that the
    // full ladder engages while the run is in flight.
    ServeServer::Options overload = base;
    overload.admission.max_sessions = 8;
    overload.admission.retry_after_ms = 50;
    overload.shed.tier1_pressure = 0.50;
    overload.shed.tier2_pressure = 0.75;
    overload.shed.tier3_pressure = 0.95;
    TrafficOptions t = traffic;
    t.honest = 16;
    t.bursty = 16;
    t.seed = 55;
    AddRow(report, "overload_4x", RunMix("overload", overload, t));
  }

  report.Write();
  return 0;
}
