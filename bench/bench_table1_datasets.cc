// Reproduces the paper's Table 1 (Section VII): per dataset, the document
// size, the number of SAX events, and the time to tokenize it.
//
// Paper (224 MB XMark / 318 MB DBLP, 3 GHz Pentium 4, Java+Piccolo):
//
//   Benchmark  document  size    events  time
//   XMark      X         224 MB  12.7 M  9.6 s
//   DBLP       D         318 MB  31.3 M  18.6 s
//
// Here the documents are synthetic equivalents at laptop scale (set
// XFLUX_BENCH_MB to grow them); the shape to check is the events-per-MB
// ratio (DBLP is much denser in small elements) and tokenizer throughput.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/event_sink.h"
#include "data/generators.h"
#include "xml/sax_parser.h"

int main() {
  using xflux::bench::Time;

  struct Row {
    const char* benchmark;
    const char* name;
    std::string document;
  };
  Row rows[] = {
      {"XMark", "X",
       xflux::GenerateXmark(
           xflux::XmarkOptionsForBytes(xflux::bench::XmarkBytes()))},
      {"DBLP", "D",
       xflux::GenerateDblp(
           xflux::DblpOptionsForBytes(xflux::bench::DblpBytes()))},
  };

  std::printf("Table 1: datasets (paper: X=224MB/12.7M events/9.6s, "
              "D=318MB/31.3M events/18.6s)\n");
  std::printf("%-10s %-8s %10s %12s %10s %12s\n", "Benchmark", "document",
              "size", "events", "time", "MB/s");
  xflux::bench::BenchReport report("table1_datasets");
  for (Row& row : rows) {
    xflux::NullSink sink;
    uint64_t events = 0;
    double seconds = Time([&] {
      xflux::SaxParser parser(xflux::SaxParser::Options(), &sink);
      (void)parser.Feed(row.document);
      (void)parser.Finish();
      events = parser.events_emitted();
    });
    std::printf("%-10s %-8s %8.1fMB %10.2fM %8.2fs %10.1f\n", row.benchmark,
                row.name, row.document.size() / 1e6, events / 1e6, seconds,
                row.document.size() / seconds / 1e6);
    xflux::JsonWriter r = xflux::JsonWriter::Object();
    r.Field("benchmark", row.benchmark);
    r.Field("document", row.name);
    r.Field("doc_bytes", static_cast<uint64_t>(row.document.size()));
    r.Field("events", events);
    r.Field("seconds", seconds);
    r.Field("mb_per_s", row.document.size() / seconds / 1e6);
    report.AddRow(std::move(r));
  }
  report.Write();
  return 0;
}
