// Aggregate-throughput benchmark for the QueryServer (DESIGN.md §9): N
// Table-2-style standing queries over one XMark stream, shared-prefix
// execution vs N independent QuerySessions.
//
// The query family is the paper's Q1 shape swept over its vocabulary:
//
//   X//<region>//item[location="<loc>"]/<field>
//
// (6 regions x 10 locations x 5 fields = 300 distinct queries, cycled when
// N exceeds the family).  Their spines overlap heavily — every query
// shares desc(region) with 1/6 of the fleet and desc(item)+predicate with
// its location group — which is exactly the workload the prefix DAG is
// for.  For each N in {1, 10, 100, 1000} the bench reports:
//
//   - aggregate throughput, N * doc_bytes / wall_seconds, for both arms
//     (the sessions arm is measured on min(N, sample cap) sessions and
//     extrapolated linearly — sessions are independent, so the scaling is
//     exact up to cache effects; the JSON records the sample size);
//   - the server's shared-prefix hit ratio and DAG node count;
//   - p50 answer staleness: the answers update synchronously within each
//     PushBatch, so the p50 batch dispatch time is the median time any
//     query's answer lags behind the newest input event.
//
// Writes BENCH_server.json (schema in EXPERIMENTS.md).

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "data/generators.h"
#include "xml/sax_parser.h"
#include "xquery/engine.h"
#include "xquery/query_server.h"

namespace {

constexpr size_t kBatchEvents = 256;
constexpr size_t kSessionSampleCap = 50;

std::vector<std::string> QueryFamily() {
  const char* regions[] = {"africa",   "asia",     "australia",
                           "europe",   "namerica", "samerica"};
  const char* locations[] = {"United States", "Germany", "France", "Japan",
                             "Brazil",        "Kenya",   "India",  "Albania",
                             "Iceland",       "Peru"};
  const char* fields[] = {"location", "quantity", "name", "payment",
                          "shipping"};
  std::vector<std::string> family;
  for (const char* region : regions) {
    for (const char* loc : locations) {
      for (const char* field : fields) {
        family.push_back(std::string("X//") + region + "//item[location=\"" +
                         loc + "\"]/" + field);
      }
    }
  }
  return family;
}

}  // namespace

int main() {
  using xflux::bench::Time;

  std::string doc = xflux::GenerateXmark(
      xflux::XmarkOptionsForBytes(xflux::bench::XmarkBytes()));
  auto tokens = xflux::SaxParser::Tokenize(doc);
  if (!tokens.ok()) {
    std::fprintf(stderr, "tokenize failed: %s\n",
                 tokens.status().ToString().c_str());
    return 1;
  }
  std::vector<xflux::EventBatch> batches;
  for (size_t i = 0; i < tokens.value().size(); i += kBatchEvents) {
    size_t end = std::min(i + kBatchEvents, tokens.value().size());
    batches.emplace_back(tokens.value().begin() + static_cast<long>(i),
                         tokens.value().begin() + static_cast<long>(end));
  }

  std::vector<std::string> family = QueryFamily();
  std::printf("QueryServer vs N sessions, %.1f MB XMark, %zu-query family\n",
              doc.size() / 1e6, family.size());
  std::printf("%5s %12s %12s %8s %9s %7s %12s\n", "N", "server MB/s",
              "sessions MB/s", "speedup", "hit ratio", "nodes",
              "p50 stale ms");

  xflux::bench::BenchReport report("server");
  bool checked_answers = false;

  for (size_t n : {size_t{1}, size_t{10}, size_t{100}, size_t{1000}}) {
    // --- Server arm: one pass, N registered queries. ---
    xflux::QueryServer server;
    for (size_t i = 0; i < n; ++i) {
      auto handle = server.Register(family[i % family.size()]);
      if (!handle.ok()) {
        std::fprintf(stderr, "register failed: %s\n",
                     handle.status().ToString().c_str());
        return 1;
      }
    }
    std::vector<double> batch_seconds;
    batch_seconds.reserve(batches.size());
    double server_s = 0;
    for (const xflux::EventBatch& batch : batches) {
      double t = Time([&] { server.PushBatch(xflux::EventBatch(batch)); });
      batch_seconds.push_back(t);
      server_s += t;
    }
    server_s += Time([&] { (void)server.Finish(); });
    std::sort(batch_seconds.begin(), batch_seconds.end());
    double stale_p50_ms =
        batch_seconds.empty() ? 0
                              : batch_seconds[batch_seconds.size() / 2] * 1e3;
    xflux::QueryServer::SharingStats sharing = server.sharing();

    // --- Sessions arm: min(N, cap) independent sessions, extrapolated. ---
    size_t sampled = std::min(n, kSessionSampleCap);
    double sampled_s = 0;
    for (size_t i = 0; i < sampled; ++i) {
      auto session = xflux::QuerySession::Open(family[i % family.size()]);
      if (!session.ok()) {
        std::fprintf(stderr, "session open failed: %s\n",
                     session.status().ToString().c_str());
        return 1;
      }
      sampled_s += Time([&] {
        for (const xflux::EventBatch& batch : batches) {
          session.value()->pipeline()->PushBatch(xflux::EventBatch(batch));
        }
      });
      if (!checked_answers) {
        // One correctness spot check per run: the server's answer for this
        // query must match the session's, byte for byte.
        auto server_text = server.handle(i)->CurrentText();
        auto session_text = session.value()->CurrentText();
        if (!server_text.ok() || !session_text.ok() ||
            server_text.value() != session_text.value()) {
          std::fprintf(stderr, "answer mismatch for %s\n",
                       family[i % family.size()].c_str());
          return 1;
        }
      }
    }
    checked_answers = true;
    double sessions_s = sampled_s / static_cast<double>(sampled) *
                        static_cast<double>(n);

    double work_bytes = static_cast<double>(doc.size()) *
                        static_cast<double>(n);
    double server_mbs = work_bytes / server_s / 1e6;
    double sessions_mbs = work_bytes / sessions_s / 1e6;
    std::printf("%5zu %12.1f %12.1f %7.1fx %9.3f %7zu %12.3f\n", n,
                server_mbs, sessions_mbs, sessions_s / server_s,
                sharing.HitRatio(), sharing.prefix_nodes, stale_p50_ms);

    xflux::JsonWriter r = xflux::JsonWriter::Object();
    r.Field("queries", static_cast<uint64_t>(n));
    r.Field("distinct_queries",
            static_cast<uint64_t>(std::min(n, family.size())));
    r.Field("doc_bytes", static_cast<uint64_t>(doc.size()));
    r.Field("server_seconds", server_s);
    r.Field("sessions_seconds", sessions_s);
    r.Field("sessions_sampled", static_cast<uint64_t>(sampled));
    r.Field("server_aggregate_mb_per_s", server_mbs);
    r.Field("sessions_aggregate_mb_per_s", sessions_mbs);
    r.Field("speedup", sessions_s / server_s);
    r.Field("shared_prefix_hit_ratio", sharing.HitRatio());
    r.Field("prefix_nodes", static_cast<uint64_t>(sharing.prefix_nodes));
    r.Field("prefix_stages", static_cast<uint64_t>(sharing.prefix_stages));
    r.Field("suffix_stages", static_cast<uint64_t>(sharing.suffix_stages));
    r.Field("p50_answer_staleness_ms", stale_p50_ms);
    report.AddRow(std::move(r));
  }

  report.Write();
  return 0;
}
