// Thread-scaling of pipeline-parallel execution: the multi-stage Table 2
// queries, serial vs 1/2/4 worker threads (QuerySession::Options::threads).
//
// What to look for (absolute numbers are hardware-dependent):
//  - threads=1 is the pure queue-handoff overhead: one worker, same work,
//    plus batch hops through a bounded SPSC ring.  It should stay within a
//    few percent of serial.
//  - threads=2/4 split the stage chain into contiguous segments; speedup is
//    bounded by the heaviest segment (a static near-equal split — see
//    DESIGN.md section 6), so deep chains with balanced stages scale best.
//  - Output is deterministically identical to serial in every
//    configuration; this bench re-checks the answer against the serial run.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "data/generators.h"
#include "xquery/engine.h"

namespace {

struct QueryRow {
  int number;        // Table 2 numbering
  const char* query;
};

// The multi-stage subset of Table 2 (deep //-chains, chained predicates,
// backward axes, FLWOR): queries whose pipelines are long enough that a
// contiguous split has something to balance.
const QueryRow kQueries[] = {
    {1, "X//europe//item[location=\"Albania\"]/quantity"},
    {2, "X//item[location=\"Albania\"][payment=\"Cash\"]/location"},
    {3, "X//*[location=\"Albania\"]/quantity"},
    {5, "count(X//item[location=\"Albania\"]/ancestor::europe)"},
    {7,
     "<result>{ for $c in X//item where $c/location = \"Albania\" "
     "return <item>{ $c/quantity, $c/payment }</item> }</result>"},
};

constexpr int kThreadPoints[] = {1, 2, 4};

struct RunOutcome {
  double seconds = 0;
  std::string answer;
  bool ok = false;
};

RunOutcome RunOnce(const char* query, const std::string& doc, int threads) {
  xflux::QuerySession::Options options;
  options.threads = threads;
  auto session = xflux::QuerySession::Open(query, options);
  RunOutcome out;
  if (!session.ok()) {
    std::fprintf(stderr, "compile failed: %s\n",
                 session.status().ToString().c_str());
    return out;
  }
  out.seconds = xflux::bench::Time([&] {
    auto status = session.value()->PushDocument(doc);
    if (!status.ok()) {
      std::fprintf(stderr, "run failed: %s\n", status.ToString().c_str());
    }
  });
  auto text = session.value()->CurrentText();
  if (!text.ok()) return out;
  out.answer = std::move(text).value();
  out.ok = true;
  return out;
}

// Best of three: thread spawn/join noise is the thing being amortized, so
// the minimum is the honest steady-state number.
RunOutcome Best(const char* query, const std::string& doc, int threads) {
  RunOutcome best;
  for (int rep = 0; rep < 3; ++rep) {
    RunOutcome r = RunOnce(query, doc, threads);
    if (!r.ok) return r;
    if (!best.ok || r.seconds < best.seconds) best = r;
  }
  return best;
}

}  // namespace

int main() {
  std::string doc = xflux::GenerateXmark(
      xflux::XmarkOptionsForBytes(xflux::bench::XmarkBytes()));
  std::printf(
      "Thread scaling over X (%.1f MB), best of 3, speedup vs serial\n",
      doc.size() / 1e6);
  std::printf("%-2s %9s | %9s %6s | %9s %6s | %9s %6s | %s\n", "Q", "serial",
              "t=1", "x", "t=2", "x", "t=4", "x", "equal");

  xflux::bench::BenchReport report("parallel");
  bool all_equal = true;

  for (const QueryRow& row : kQueries) {
    RunOutcome serial = Best(row.query, doc, 0);
    if (!serial.ok) return 1;

    double seconds[3] = {0, 0, 0};
    bool equal = true;
    for (size_t i = 0; i < 3; ++i) {
      RunOutcome parallel = Best(row.query, doc, kThreadPoints[i]);
      if (!parallel.ok) return 1;
      seconds[i] = parallel.seconds;
      equal = equal && parallel.answer == serial.answer;
    }
    all_equal = all_equal && equal;

    std::printf(
        "%-2d %8.3fs | %8.3fs %5.2fx | %8.3fs %5.2fx | %8.3fs %5.2fx | %s\n",
        row.number, serial.seconds, seconds[0], serial.seconds / seconds[0],
        seconds[1], serial.seconds / seconds[1], seconds[2],
        serial.seconds / seconds[2], equal ? "yes" : "NO");

    xflux::JsonWriter r = xflux::JsonWriter::Object();
    r.Field("query", row.number);
    r.Field("text", row.query);
    r.Field("doc_bytes", static_cast<uint64_t>(doc.size()));
    r.Field("serial_seconds", serial.seconds);
    r.Field("threads1_seconds", seconds[0]);
    r.Field("threads2_seconds", seconds[1]);
    r.Field("threads4_seconds", seconds[2]);
    r.Field("speedup_threads2", serial.seconds / seconds[1]);
    r.Field("speedup_threads4", serial.seconds / seconds[2]);
    r.Field("answers_identical", equal);
    report.AddRow(std::move(r));
  }

  report.Write();
  return all_equal ? 0 : 1;
}
