// Ablation A2 (DESIGN.md): the Section V mutability analysis.
//
// The stock-ticker query is run over growing update streams twice: with
// the fix/freeze analysis on (default) and with it disabled (every region
// treated as mutable, nothing evictable).  Expected shape: with the
// analysis the per-stage state count stays flat as the stream grows;
// without it, state grows linearly with the number of stream elements —
// "if we are not careful, any predicate would always require unbounded
// state".
//
// A second section ablates the compile-time optimizer (DESIGN.md §10) on
// the Table 2 Q2 query over XMark: passes off, update independence only,
// and independence + predicate reorder.  Written as BENCH_optimizer.json
// so CI can track the speedup row separately.  Expected shape: all three
// configurations produce byte-identical answers, and the optimized runs
// beat passes-off by >= 2x (the eager predicate stops forwarding items
// that fail [location="Albania"], so the second predicate group and the
// output stages see a fraction of the traffic).

#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "data/generators.h"
#include "xquery/engine.h"
#include "xquery/passes/cost_profile.h"
#include "xquery/schema.h"

int main() {
  std::printf("A2: mutability analysis (fix/freeze) on the stock ticker, "
              "query X//stock[name=\"IBM\"]/quote\n");
  std::printf("%-10s %-10s | %-9s %12s %14s %10s\n", "symbols", "updates",
              "analysis", "max_states", "display_regs", "time");

  xflux::bench::BenchReport report("ablation_mutability");
  for (int scale : {50, 200, 800}) {
    for (bool disabled : {false, true}) {
      xflux::StockTickerOptions options;
      options.symbols = scale;
      options.updates = scale * 4;
      xflux::EventVec stream = xflux::GenerateStockTicker(options);

      auto session =
          xflux::QuerySession::Open("X//stock[name=\"IBM\"]/quote");
      if (!session.ok()) {
        std::fprintf(stderr, "compile failed: %s\n",
                     session.status().ToString().c_str());
        return 1;
      }
      session.value()->pipeline()->context()->fix()->set_disabled(disabled);
      double seconds = xflux::bench::Time(
          [&] { session.value()->PushAll(stream); });
      const xflux::Metrics* metrics =
          session.value()->pipeline()->context()->metrics();
      std::printf("%-10d %-10d | %-9s %12lld %14lld %9.3fs\n",
                  options.symbols, options.updates,
                  disabled ? "OFF" : "on",
                  static_cast<long long>(metrics->max_live_states()),
                  static_cast<long long>(metrics->max_display_regions()),
                  seconds);
      xflux::JsonWriter r = xflux::JsonWriter::Object();
      r.Field("symbols", options.symbols);
      r.Field("updates", options.updates);
      r.Field("analysis_enabled", !disabled);
      r.Field("stream_events", static_cast<uint64_t>(stream.size()));
      r.Field("seconds", seconds);
      r.Raw("metrics", metrics->ToJson());
      report.AddRow(std::move(r));
    }
  }
  report.Write();

  // --- optimizer ablation: Q2 over XMark, passes off / independence only /
  // independence + reorder (see file comment) ---
  std::string doc = xflux::GenerateXmark(
      xflux::XmarkOptionsForBytes(xflux::bench::XmarkBytes() / 2));
  const char* q2 = "X//item[location=\"Albania\"][payment=\"Cash\"]/location";
  std::printf("\noptimizer ablation: %s over %.1f MB XMark\n", q2,
              doc.size() / 1e6);
  std::printf("%-22s %10s %8s %8s %6s\n", "passes", "time", "MB/s",
              "speedup", "match");

  xflux::Schema schema = xflux::XMarkSchema();
  // When a prior run's stage stats are available, feed the measured
  // selectivities to the reorder pass; heuristics otherwise.
  xflux::CostProfile profile;
  if (const char* prior = std::getenv("XFLUX_COST_PROFILE")) {
    auto loaded = xflux::CostProfile::LoadFromFile(prior);
    if (loaded.ok()) profile = std::move(loaded.value());
  }

  struct Config {
    const char* name;
    bool optimize;
    bool independence;
    bool reorder;
  };
  const Config configs[] = {
      {"off", false, false, false},
      {"independence", true, true, false},
      {"independence+reorder", true, true, true},
  };

  xflux::bench::BenchReport opt_report("optimizer");
  std::string baseline_answer;
  double baseline_seconds = 0;
  for (const Config& config : configs) {
    xflux::QuerySession::Options options;
    options.optimize = config.optimize;
    options.optimize_independence = config.independence;
    options.optimize_reorder = config.reorder;
    options.schema = &schema;
    options.cost_profile = profile.size() > 0 ? &profile : nullptr;
    auto session = xflux::QuerySession::Open(q2, options);
    if (!session.ok()) {
      std::fprintf(stderr, "Q2 compile failed: %s\n",
                   session.status().ToString().c_str());
      return 1;
    }
    double seconds = xflux::bench::Time(
        [&] { (void)session.value()->PushDocument(doc); });
    auto answer = session.value()->CurrentText();
    if (!answer.ok()) {
      std::fprintf(stderr, "Q2 (%s) failed: %s\n", config.name,
                   answer.status().ToString().c_str());
      return 1;
    }
    if (baseline_answer.empty()) {
      baseline_answer = answer.value();
      baseline_seconds = seconds;
    }
    bool identical = answer.value() == baseline_answer;
    double speedup = seconds > 0 ? baseline_seconds / seconds : 0;
    std::printf("%-22s %9.3fs %8.1f %7.2fx %6s\n", config.name, seconds,
                doc.size() / seconds / 1e6, speedup,
                identical ? "yes" : "NO");
    xflux::JsonWriter r = xflux::JsonWriter::Object();
    r.Field("config", config.name);
    r.Field("query", q2);
    r.Field("seconds", seconds);
    r.Field("mb_per_s", doc.size() / seconds / 1e6);
    r.Field("speedup_vs_off", speedup);
    r.Field("answers_identical", identical);
    r.Raw("metrics",
          session.value()->pipeline()->context()->metrics()->ToJson());
    opt_report.AddRow(std::move(r));
    if (!identical) return 1;
  }
  opt_report.Write();
  return 0;
}
