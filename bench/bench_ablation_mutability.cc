// Ablation A2 (DESIGN.md): the Section V mutability analysis.
//
// The stock-ticker query is run over growing update streams twice: with
// the fix/freeze analysis on (default) and with it disabled (every region
// treated as mutable, nothing evictable).  Expected shape: with the
// analysis the per-stage state count stays flat as the stream grows;
// without it, state grows linearly with the number of stream elements —
// "if we are not careful, any predicate would always require unbounded
// state".

#include <cstdio>

#include "bench/bench_util.h"
#include "data/generators.h"
#include "xquery/engine.h"

int main() {
  std::printf("A2: mutability analysis (fix/freeze) on the stock ticker, "
              "query X//stock[name=\"IBM\"]/quote\n");
  std::printf("%-10s %-10s | %-9s %12s %14s %10s\n", "symbols", "updates",
              "analysis", "max_states", "display_regs", "time");

  xflux::JsonWriter json_rows = xflux::JsonWriter::Array();
  for (int scale : {50, 200, 800}) {
    for (bool disabled : {false, true}) {
      xflux::StockTickerOptions options;
      options.symbols = scale;
      options.updates = scale * 4;
      xflux::EventVec stream = xflux::GenerateStockTicker(options);

      auto session =
          xflux::QuerySession::Open("X//stock[name=\"IBM\"]/quote");
      if (!session.ok()) {
        std::fprintf(stderr, "compile failed: %s\n",
                     session.status().ToString().c_str());
        return 1;
      }
      session.value()->pipeline()->context()->fix()->set_disabled(disabled);
      double seconds = xflux::bench::Time(
          [&] { session.value()->PushAll(stream); });
      const xflux::Metrics* metrics =
          session.value()->pipeline()->context()->metrics();
      std::printf("%-10d %-10d | %-9s %12lld %14lld %9.3fs\n",
                  options.symbols, options.updates,
                  disabled ? "OFF" : "on",
                  static_cast<long long>(metrics->max_live_states()),
                  static_cast<long long>(metrics->max_display_regions()),
                  seconds);
      xflux::JsonWriter r = xflux::JsonWriter::Object();
      r.Field("symbols", options.symbols);
      r.Field("updates", options.updates);
      r.Field("analysis_enabled", !disabled);
      r.Field("stream_events", static_cast<uint64_t>(stream.size()));
      r.Field("seconds", seconds);
      r.Raw("metrics", metrics->ToJson());
      json_rows.RawElement(r.Close());
    }
  }
  xflux::JsonWriter json =
      xflux::bench::BenchJsonHeader("ablation_mutability");
  json.Raw("rows", json_rows.Close());
  xflux::bench::WriteBenchJson("ablation_mutability", json.Close());
  return 0;
}
