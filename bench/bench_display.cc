// Micro-benchmarks A4 (DESIGN.md): the result display's update-application
// primitives and the OrderKey dense-order structure — the fixed costs every
// retroactive update pays at the end of the pipeline.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "bench/bench_util.h"
#include "core/region_document.h"
#include "util/order_key.h"
#include "util/prng.h"

namespace xflux {
namespace {

void BM_DisplayAppend(benchmark::State& state) {
  for (auto _ : state) {
    RegionDocument doc;
    for (int i = 0; i < state.range(0); ++i) {
      (void)doc.Feed(Event::StartElement(0, "e"));
      (void)doc.Feed(Event::Characters(0, "x"));
      (void)doc.Feed(Event::EndElement(0, "e"));
    }
    benchmark::DoNotOptimize(doc.item_count());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 3);
}
BENCHMARK(BM_DisplayAppend)->Arg(1000)->Arg(10000);

void BM_DisplayReplaceChain(benchmark::State& state) {
  for (auto _ : state) {
    RegionDocument doc;
    (void)doc.Feed(Event::StartMutable(0, 1));
    (void)doc.Feed(Event::Characters(1, "v0"));
    (void)doc.Feed(Event::EndMutable(0, 1));
    StreamId target = 1;
    for (StreamId i = 0; i < static_cast<StreamId>(state.range(0)); ++i) {
      StreamId fresh = 10 + i;
      (void)doc.Feed(Event::StartReplace(target, fresh));
      (void)doc.Feed(Event::Characters(fresh, "v"));
      (void)doc.Feed(Event::EndReplace(target, fresh));
      target = fresh;
    }
    benchmark::DoNotOptimize(doc.live_region_count());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DisplayReplaceChain)->Arg(1000)->Arg(10000);

void BM_DisplayInsertAfterChain(benchmark::State& state) {
  for (auto _ : state) {
    RegionDocument doc;
    (void)doc.Feed(Event::StartMutable(0, 1));
    (void)doc.Feed(Event::EndMutable(0, 1));
    StreamId target = 1;
    for (StreamId i = 0; i < static_cast<StreamId>(state.range(0)); ++i) {
      StreamId fresh = 10 + i;
      (void)doc.Feed(Event::StartInsertAfter(target, fresh));
      (void)doc.Feed(Event::Characters(fresh, "v"));
      (void)doc.Feed(Event::EndInsertAfter(target, fresh));
      target = fresh;
    }
    benchmark::DoNotOptimize(doc.item_count());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DisplayInsertAfterChain)->Arg(1000)->Arg(10000);

void BM_DisplayHideShowStorm(benchmark::State& state) {
  RegionDocument doc;
  for (StreamId i = 1; i <= static_cast<StreamId>(state.range(0)); ++i) {
    (void)doc.Feed(Event::StartMutable(0, i));
    (void)doc.Feed(Event::Characters(i, "x"));
    (void)doc.Feed(Event::EndMutable(0, i));
  }
  Prng prng(5);
  for (auto _ : state) {
    StreamId id =
        1 + static_cast<StreamId>(prng.Uniform(
                static_cast<uint64_t>(state.range(0))));
    (void)doc.Feed(Event::Hide(id));
    (void)doc.Feed(Event::Show(id));
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_DisplayHideShowStorm)->Arg(1000);

void BM_DisplayRender(benchmark::State& state) {
  RegionDocument doc;
  for (StreamId i = 1; i <= static_cast<StreamId>(state.range(0)); ++i) {
    (void)doc.Feed(Event::StartMutable(0, i));
    (void)doc.Feed(Event::StartElement(i, "e"));
    (void)doc.Feed(Event::Characters(i, "x"));
    (void)doc.Feed(Event::EndElement(i, "e"));
    (void)doc.Feed(Event::EndMutable(0, i));
    if (i % 3 == 0) (void)doc.Feed(Event::Hide(i));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(doc.RenderEvents());
  }
}
BENCHMARK(BM_DisplayRender)->Arg(1000);

void BM_OrderKeyBisection(benchmark::State& state) {
  for (auto _ : state) {
    OrderKey lo = OrderKey::Min();
    OrderKey hi = OrderKey::Max();
    for (int i = 0; i < state.range(0); ++i) {
      OrderKey mid = OrderKey::Between(lo, hi);
      if (i % 2 == 0) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    benchmark::DoNotOptimize(lo);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_OrderKeyBisection)->Arg(64)->Arg(512);

void BM_OrderKeyAppendChain(benchmark::State& state) {
  // The common streaming pattern: fresh keys appended at the tail.
  for (auto _ : state) {
    OrderKey cursor = OrderKey::Min();
    for (int i = 0; i < state.range(0); ++i) {
      cursor = OrderKey::Between(cursor, OrderKey::Max());
    }
    benchmark::DoNotOptimize(cursor);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_OrderKeyAppendChain)->Arg(1000);

}  // namespace
}  // namespace xflux

// Like BENCHMARK_MAIN(), but defaults google-benchmark's JSON reporter to
// BENCH_display.json so this binary leaves the same kind of trajectory
// file as the other benches.  Any explicit --benchmark_out wins.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]).rfind("--benchmark_out", 0) == 0) {
      has_out = true;
    }
  }
  std::string out_flag;
  std::string format_flag;
  std::string path = xflux::bench::BenchJsonPath("display");
  if (!has_out) {
    out_flag = "--benchmark_out=" + path;
    format_flag = "--benchmark_out_format=json";
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }
  int argc_adjusted = static_cast<int>(args.size());
  benchmark::Initialize(&argc_adjusted, args.data());
  if (benchmark::ReportUnrecognizedArguments(argc_adjusted, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!has_out) std::printf("wrote %s\n", path.c_str());
  return 0;
}
