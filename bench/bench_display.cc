// Micro-benchmarks A4 (DESIGN.md): the result display's update-application
// primitives and the OrderKey dense-order structure — the fixed costs every
// retroactive update pays at the end of the pipeline.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "bench/bench_util.h"
#include "core/region_document.h"
#include "core/result_display.h"
#include "util/order_key.h"
#include "util/prng.h"

namespace xflux {
namespace {

void BM_DisplayAppend(benchmark::State& state) {
  for (auto _ : state) {
    RegionDocument doc;
    for (int i = 0; i < state.range(0); ++i) {
      (void)doc.Feed(Event::StartElement(0, "e"));
      (void)doc.Feed(Event::Characters(0, "x"));
      (void)doc.Feed(Event::EndElement(0, "e"));
    }
    benchmark::DoNotOptimize(doc.item_count());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 3);
}
BENCHMARK(BM_DisplayAppend)->Arg(1000)->Arg(10000);

void BM_DisplayReplaceChain(benchmark::State& state) {
  for (auto _ : state) {
    RegionDocument doc;
    (void)doc.Feed(Event::StartMutable(0, 1));
    (void)doc.Feed(Event::Characters(1, "v0"));
    (void)doc.Feed(Event::EndMutable(0, 1));
    StreamId target = 1;
    for (StreamId i = 0; i < static_cast<StreamId>(state.range(0)); ++i) {
      StreamId fresh = 10 + i;
      (void)doc.Feed(Event::StartReplace(target, fresh));
      (void)doc.Feed(Event::Characters(fresh, "v"));
      (void)doc.Feed(Event::EndReplace(target, fresh));
      target = fresh;
    }
    benchmark::DoNotOptimize(doc.live_region_count());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DisplayReplaceChain)->Arg(1000)->Arg(10000);

void BM_DisplayInsertAfterChain(benchmark::State& state) {
  for (auto _ : state) {
    RegionDocument doc;
    (void)doc.Feed(Event::StartMutable(0, 1));
    (void)doc.Feed(Event::EndMutable(0, 1));
    StreamId target = 1;
    for (StreamId i = 0; i < static_cast<StreamId>(state.range(0)); ++i) {
      StreamId fresh = 10 + i;
      (void)doc.Feed(Event::StartInsertAfter(target, fresh));
      (void)doc.Feed(Event::Characters(fresh, "v"));
      (void)doc.Feed(Event::EndInsertAfter(target, fresh));
      target = fresh;
    }
    benchmark::DoNotOptimize(doc.item_count());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DisplayInsertAfterChain)->Arg(1000)->Arg(10000);

void BM_DisplayHideShowStorm(benchmark::State& state) {
  RegionDocument doc;
  for (StreamId i = 1; i <= static_cast<StreamId>(state.range(0)); ++i) {
    (void)doc.Feed(Event::StartMutable(0, i));
    (void)doc.Feed(Event::Characters(i, "x"));
    (void)doc.Feed(Event::EndMutable(0, i));
  }
  Prng prng(5);
  for (auto _ : state) {
    StreamId id =
        1 + static_cast<StreamId>(prng.Uniform(
                static_cast<uint64_t>(state.range(0))));
    (void)doc.Feed(Event::Hide(id));
    (void)doc.Feed(Event::Show(id));
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_DisplayHideShowStorm)->Arg(1000);

void BM_DisplayRender(benchmark::State& state) {
  RegionDocument doc;
  for (StreamId i = 1; i <= static_cast<StreamId>(state.range(0)); ++i) {
    (void)doc.Feed(Event::StartMutable(0, i));
    (void)doc.Feed(Event::StartElement(i, "e"));
    (void)doc.Feed(Event::Characters(i, "x"));
    (void)doc.Feed(Event::EndElement(i, "e"));
    (void)doc.Feed(Event::EndMutable(0, i));
    if (i % 3 == 0) (void)doc.Feed(Event::Hide(i));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(doc.RenderEvents());
  }
}
BENCHMARK(BM_DisplayRender)->Arg(1000);

// The live-display workload: a viewer re-reads the current answer after
// every event of an append-only stream.  The incremental renderer pays the
// volatile tail only; per-refresh cost is reported as p50/p99 latency.
void BM_LiveRenderAppendOnly(benchmark::State& state) {
  const int elements = static_cast<int>(state.range(0));
  std::vector<double> samples_ns;
  samples_ns.reserve(static_cast<size_t>(elements));
  for (auto _ : state) {
    samples_ns.clear();
    ResultDisplay display;
    display.Accept(Event::StartStream(0));
    display.Accept(Event::StartElement(0, "all"));
    for (int i = 0; i < elements; ++i) {
      display.Accept(Event::StartElement(0, "e"));
      display.Accept(Event::Characters(0, "x"));
      display.Accept(Event::EndElement(0, "e"));
      auto t0 = std::chrono::steady_clock::now();
      benchmark::DoNotOptimize(display.LiveText().size());
      auto t1 = std::chrono::steady_clock::now();
      samples_ns.push_back(
          std::chrono::duration<double, std::nano>(t1 - t0).count());
    }
    benchmark::DoNotOptimize(display.full_rescans());
  }
  std::sort(samples_ns.begin(), samples_ns.end());
  if (!samples_ns.empty()) {
    state.counters["refresh_p50_ns"] = samples_ns[samples_ns.size() / 2];
    state.counters["refresh_p99_ns"] = samples_ns[samples_ns.size() * 99 / 100];
  }
  state.SetItemsProcessed(state.iterations() * elements);
}
BENCHMARK(BM_LiveRenderAppendOnly)->Arg(1000)->Arg(10000);

// The same workload through the full-re-render fallback — the seed's only
// path.  items/s against BM_LiveRenderAppendOnly is the headline speedup.
void BM_FullRenderAppendOnly(benchmark::State& state) {
  const int elements = static_cast<int>(state.range(0));
  std::vector<double> samples_ns;
  samples_ns.reserve(static_cast<size_t>(elements));
  for (auto _ : state) {
    samples_ns.clear();
    ResultDisplay display;
    display.Accept(Event::StartStream(0));
    display.Accept(Event::StartElement(0, "all"));
    for (int i = 0; i < elements; ++i) {
      display.Accept(Event::StartElement(0, "e"));
      display.Accept(Event::Characters(0, "x"));
      display.Accept(Event::EndElement(0, "e"));
      auto t0 = std::chrono::steady_clock::now();
      auto text = display.FullRenderText();
      benchmark::DoNotOptimize(text.ok() ? text.value().size() : 0);
      auto t1 = std::chrono::steady_clock::now();
      samples_ns.push_back(
          std::chrono::duration<double, std::nano>(t1 - t0).count());
    }
  }
  std::sort(samples_ns.begin(), samples_ns.end());
  if (!samples_ns.empty()) {
    state.counters["refresh_p50_ns"] = samples_ns[samples_ns.size() / 2];
    state.counters["refresh_p99_ns"] = samples_ns[samples_ns.size() * 99 / 100];
  }
  state.SetItemsProcessed(state.iterations() * elements);
}
BENCHMARK(BM_FullRenderAppendOnly)->Arg(1000)->Arg(10000);

// Live refreshes with a retroactive update mixed in every k events: each
// update dirties at most the volatile tail (replace targets the newest
// region), so the incremental path should degrade gracefully, not cliff.
void BM_LiveRenderWithUpdates(benchmark::State& state) {
  const int elements = static_cast<int>(state.range(0));
  for (auto _ : state) {
    ResultDisplay display;
    display.Accept(Event::StartStream(0));
    display.Accept(Event::StartElement(0, "all"));
    StreamId next = 100;
    StreamId last_region = 0;
    for (int i = 0; i < elements; ++i) {
      StreamId r = next++;
      display.Accept(Event::StartElement(0, "e"));
      display.Accept(Event::StartMutable(0, r));
      display.Accept(Event::Characters(r, "x"));
      display.Accept(Event::EndMutable(0, r));
      display.Accept(Event::EndElement(0, "e"));
      last_region = r;
      if (i % 16 == 15) {
        StreamId fresh = next++;
        display.Accept(Event::StartReplace(last_region, fresh));
        display.Accept(Event::Characters(fresh, "y"));
        display.Accept(Event::EndReplace(last_region, fresh));
      }
      benchmark::DoNotOptimize(display.LiveText().size());
    }
    benchmark::DoNotOptimize(display.full_rescans());
  }
  state.SetItemsProcessed(state.iterations() * elements);
}
BENCHMARK(BM_LiveRenderWithUpdates)->Arg(1000)->Arg(10000);

void BM_OrderKeyBisection(benchmark::State& state) {
  for (auto _ : state) {
    OrderKey lo = OrderKey::Min();
    OrderKey hi = OrderKey::Max();
    for (int i = 0; i < state.range(0); ++i) {
      OrderKey mid = OrderKey::Between(lo, hi);
      if (i % 2 == 0) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    benchmark::DoNotOptimize(lo);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_OrderKeyBisection)->Arg(64)->Arg(512);

void BM_OrderKeyAppendChain(benchmark::State& state) {
  // The common streaming pattern: fresh keys appended at the tail.
  for (auto _ : state) {
    OrderKey cursor = OrderKey::Min();
    for (int i = 0; i < state.range(0); ++i) {
      cursor = OrderKey::Between(cursor, OrderKey::Max());
    }
    benchmark::DoNotOptimize(cursor);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_OrderKeyAppendChain)->Arg(1000);

}  // namespace
}  // namespace xflux

// Like BENCHMARK_MAIN(), but defaults google-benchmark's JSON reporter to
// BENCH_display.json so this binary leaves the same kind of trajectory
// file as the other benches.  Any explicit --benchmark_out wins.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]).rfind("--benchmark_out", 0) == 0) {
      has_out = true;
    }
  }
  std::string out_flag;
  std::string format_flag;
  std::string path = xflux::bench::BenchJsonPath("display");
  if (!has_out) {
    out_flag = "--benchmark_out=" + path;
    format_flag = "--benchmark_out_format=json";
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }
  int argc_adjusted = static_cast<int>(args.size());
  benchmark::Initialize(&argc_adjusted, args.data());
  if (benchmark::ReportUnrecognizedArguments(argc_adjusted, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!has_out) std::printf("wrote %s\n", path.c_str());
  return 0;
}
