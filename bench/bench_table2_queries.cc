// Reproduces the paper's Table 2 (Section VII): the nine benchmark
// queries, with XFlux execution time, throughput, the SPEX comparison
// where SPEX supports the query (1-3 and 8), state-transformer calls
// ("events") and memory.
//
// Paper numbers (224 MB X / 318 MB D, 3 GHz P4, Java):
//
//   Q  XFlux   MB/s  SPEX   events  mem
//   1   16 s   14.0   52 s    17 M  452 KB
//   2   35 s    6.4   42 s    89 M  683 KB
//   3  197 s    1.1   70 s   683 M  412 KB
//   4  116 s    1.9     -    326 M  854 KB
//   5   33 s    6.8     -     95 M  487 KB
//   6  124 s    1.8     -    329 M  466 KB
//   7   29 s    7.7     -     71 M  779 KB
//   8   84 s    3.8  113 s   231 M  561 KB
//   9   92 s    3.5     -    194 M  790 KB
//
// Shapes to check (absolute numbers are hardware/runtime-dependent):
// Q1 is the fastest and beats SPEX; Q3 (//*) is the slowest XFlux query
// and the one SPEX wins decisively; the backward-axis queries 4-6 carry
// "acceptable overhead"; memory stays bounded for every query.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "data/generators.h"
#include "spex/spex_engine.h"
#include "xml/sax_parser.h"
#include "xquery/engine.h"

namespace {

struct QueryRow {
  int number;
  const char* query;
  const char* spex_xpath;  // null: unsupported by SPEX (dash in the paper)
  bool on_dblp;
  // Paper's measurements, for side-by-side shape comparison.
  double paper_xflux_s;
  double paper_mbs;
  double paper_spex_s;  // <0: dash
};

const QueryRow kQueries[] = {
    {1, "X//europe//item[location=\"Albania\"]/quantity",
     "X//europe//item[location=\"Albania\"]/quantity", false, 16, 14.0, 52},
    {2, "X//item[location=\"Albania\"][payment=\"Cash\"]/location",
     "X//item[location=\"Albania\"][payment=\"Cash\"]/location", false, 35,
     6.4, 42},
    {3, "X//*[location=\"Albania\"]/quantity",
     "X//*[location=\"Albania\"]/quantity", false, 197, 1.1, 70},
    {4, "count(X//item[location=\"Albania\"]/..)", nullptr, false, 116, 1.9,
     -1},
    {5, "count(X//item[location=\"Albania\"]/ancestor::europe)", nullptr,
     false, 33, 6.8, -1},
    {6, "count(X//item[location=\"Albania\"]/ancestor::*//location)", nullptr,
     false, 124, 1.8, -1},
    {7,
     "<result>{ for $c in X//item where $c/location = \"Albania\" "
     "return <item>{ $c/quantity, $c/payment }</item> }</result>",
     nullptr, false, 29, 7.7, -1},
    {8, "D//inproceedings[author=\"John Smith\"]/title",
     "D//inproceedings[author=\"John Smith\"]/title", true, 84, 3.8, 113},
    {9,
     "for $d in D//inproceedings where contains($d/author,\"Smith\") "
     "order by $d/year "
     "return ($d/year/text(),\": \",$d/title/text(),\"\\n\")",
     nullptr, true, 92, 3.5, -1},
};

}  // namespace

int main() {
  using xflux::bench::Time;

  std::string x_doc = xflux::GenerateXmark(
      xflux::XmarkOptionsForBytes(xflux::bench::XmarkBytes()));
  std::string d_doc = xflux::GenerateDblp(
      xflux::DblpOptionsForBytes(xflux::bench::DblpBytes()));
  std::printf("Table 2: the nine benchmark queries over X (%.1f MB) and D "
              "(%.1f MB)\n",
              x_doc.size() / 1e6, d_doc.size() / 1e6);
  std::printf("%-2s %9s %7s %9s %9s %10s | paper: %7s %6s %7s\n", "Q",
              "XFlux", "MB/s", "SPEX", "events", "mem", "XFlux", "MB/s",
              "SPEX");

  xflux::bench::BenchReport report("table2_queries");

  for (const QueryRow& row : kQueries) {
    const std::string& doc = row.on_dblp ? d_doc : x_doc;

    // Timed pass: instrumentation off, so the reported throughput is the
    // production hot path.
    auto session = xflux::QuerySession::Open(row.query);
    if (!session.ok()) {
      std::fprintf(stderr, "Q%d compile failed: %s\n", row.number,
                   session.status().ToString().c_str());
      return 1;
    }
    double xflux_s = Time([&] {
      auto status = session.value()->PushDocument(doc);
      if (!status.ok()) {
        std::fprintf(stderr, "Q%d failed: %s\n", row.number,
                     status.ToString().c_str());
      }
    });
    const xflux::Metrics* metrics =
        session.value()->pipeline()->context()->metrics();

    char spex_col[32] = "      -";
    double spex_s = -1;
    if (row.spex_xpath != nullptr) {
      xflux::NullSink sink;
      auto engine = xflux::SpexEngine::Compile(row.spex_xpath, &sink);
      if (!engine.ok()) {
        std::fprintf(stderr, "Q%d SPEX compile failed: %s\n", row.number,
                     engine.status().ToString().c_str());
        return 1;
      }
      spex_s = Time([&] {
        xflux::SaxParser parser(xflux::SaxParser::Options(),
                                engine.value().get());
        (void)parser.Feed(doc);
        (void)parser.Finish();
      });
      std::snprintf(spex_col, sizeof(spex_col), "%8.2fs", spex_s);
    }

    char paper_spex[16] = "    -";
    if (row.paper_spex_s >= 0) {
      std::snprintf(paper_spex, sizeof(paper_spex), "%4.0fs",
                    row.paper_spex_s);
    }
    std::printf("%-2d %8.2fs %7.1f %-9s %8.2fM %8.0fKB | %8.0fs %6.1f %7s\n",
                row.number, xflux_s, doc.size() / xflux_s / 1e6, spex_col,
                metrics->transformer_calls() / 1e6,
                metrics->MaxApproxStateBytes() / 1024.0, row.paper_xflux_s,
                row.paper_mbs, paper_spex);

    // Second, instrumented pass for the per-stage breakdown in the JSON.
    // Untimed in the table; its StageStats carry their own wall clocks.
    xflux::QuerySession::Options stats_options;
    stats_options.instrumentation = true;
    auto probe = xflux::QuerySession::Open(row.query, stats_options);
    if (!probe.ok()) return 1;
    (void)probe.value()->PushDocument(doc);

    xflux::JsonWriter r = xflux::JsonWriter::Object();
    r.Field("query", row.number);
    r.Field("text", row.query);
    r.Field("document", row.on_dblp ? "D" : "X");
    r.Field("doc_bytes", static_cast<uint64_t>(doc.size()));
    r.Field("seconds", xflux_s);
    r.Field("mb_per_s", doc.size() / xflux_s / 1e6);
    if (spex_s >= 0) {
      r.Field("spex_seconds", spex_s);
    } else {
      r.Raw("spex_seconds", "null");
    }
    r.Field("paper_seconds", row.paper_xflux_s);
    r.Field("paper_mb_per_s", row.paper_mbs);
    r.Raw("metrics", metrics->ToJson());
    r.Raw("stages", probe.value()->stats()->ToJson());
    report.AddRow(std::move(r));
  }

  report.Write();
  return 0;
}
