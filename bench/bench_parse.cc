// Tokenizer throughput over the ingest path (DESIGN.md Section 12):
// MB/s and events/s for XMark- and DBLP-shaped documents, fed at chunk
// sizes from drip (64 B) to bulk (1 MiB), in both the accelerated scan
// mode and the forced-scalar reference mode.  The simd-vs-scalar delta is
// the win from xml/scan.h; the 64B-vs-1MiB delta bounds the cost of
// chunked feeding (resume state + window compaction).
//
// Rows land in BENCH_parse.json; CI's bench-smoke job asserts the schema
// and a conservative MB/s floor on the bulk-chunk accelerated rows.

#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "core/event_sink.h"
#include "data/generators.h"
#include "xml/sax_parser.h"
#include "xml/scan.h"

namespace {

struct RunResult {
  double seconds = 0;
  uint64_t events = 0;
  xflux::SaxParser::IngestStats stats;
};

RunResult RunOnce(const std::string& document, size_t chunk_bytes) {
  xflux::NullSink sink;
  RunResult r;
  r.seconds = xflux::bench::Time([&] {
    xflux::SaxParser parser(xflux::SaxParser::Options(), &sink);
    for (size_t off = 0; off < document.size(); off += chunk_bytes) {
      size_t n = std::min(chunk_bytes, document.size() - off);
      (void)parser.Feed(std::string_view(document).substr(off, n));
    }
    (void)parser.Finish();
    r.events = parser.events_emitted();
    r.stats = parser.ingest_stats();
  });
  return r;
}

// Best-of-3 wall clock (throughput benches want the least-disturbed run).
RunResult RunBest(const std::string& document, size_t chunk_bytes) {
  RunResult best = RunOnce(document, chunk_bytes);
  for (int i = 0; i < 2; ++i) {
    RunResult r = RunOnce(document, chunk_bytes);
    if (r.seconds < best.seconds) best = r;
  }
  return best;
}

}  // namespace

int main() {
  struct Doc {
    const char* name;
    std::string text;
  };
  Doc docs[] = {
      {"xmark", xflux::GenerateXmark(
                    xflux::XmarkOptionsForBytes(xflux::bench::XmarkBytes()))},
      {"dblp", xflux::GenerateDblp(
                   xflux::DblpOptionsForBytes(xflux::bench::DblpBytes()))},
  };
  const size_t kChunks[] = {64, 4096, 1024 * 1024};
  const char* simd_kind = xflux::scan::SimdKind();

  std::printf("Tokenizer ingest throughput (simd=%s)\n", simd_kind);
  std::printf("%-7s %9s %-7s %9s %11s %10s %9s %9s\n", "doc", "chunk", "mode",
              "MB/s", "events/s", "aliased", "copied", "taghit%");
  xflux::bench::BenchReport report("parse");
  for (Doc& doc : docs) {
    for (size_t chunk : kChunks) {
      for (int scalar = 0; scalar <= 1; ++scalar) {
        xflux::scan::SetForceScalar(scalar != 0);
        RunResult r = RunBest(doc.text, chunk);
        const char* mode = scalar != 0 ? "scalar" : "simd";
        double mb_per_s = doc.text.size() / r.seconds / 1e6;
        double events_per_s = r.events / r.seconds;
        double lookups = static_cast<double>(r.stats.tag_cache_hits +
                                             r.stats.tag_cache_misses);
        std::printf("%-7s %9zu %-7s %9.1f %10.1fM %10llu %9llu %8.1f%%\n",
                    doc.name, chunk, mode, mb_per_s, events_per_s / 1e6,
                    static_cast<unsigned long long>(r.stats.aliased_texts),
                    static_cast<unsigned long long>(r.stats.copied_texts),
                    lookups > 0 ? 100.0 * r.stats.tag_cache_hits / lookups
                                : 0.0);
        xflux::JsonWriter row = xflux::JsonWriter::Object();
        row.Field("document", doc.name);
        row.Field("chunk_bytes", static_cast<uint64_t>(chunk));
        row.Field("mode", mode);
        row.Field("simd_kind", scalar != 0 ? "scalar" : simd_kind);
        row.Field("doc_bytes", static_cast<uint64_t>(doc.text.size()));
        row.Field("events", r.events);
        row.Field("seconds", r.seconds);
        row.Field("mb_per_s", mb_per_s);
        row.Field("events_per_s", events_per_s);
        row.Field("bytes_scanned", r.stats.bytes_scanned);
        row.Field("chunk_allocs", r.stats.chunk_allocs);
        row.Field("compactions", r.stats.compactions);
        row.Field("aliased_texts", r.stats.aliased_texts);
        row.Field("copied_texts", r.stats.copied_texts);
        row.Field("inlined_texts", r.stats.inlined_texts);
        row.Field("tag_cache_hits", r.stats.tag_cache_hits);
        row.Field("tag_cache_misses", r.stats.tag_cache_misses);
        report.AddRow(std::move(row));
      }
    }
  }
  xflux::scan::SetForceScalar(false);
  report.Write();
  return 0;
}
