// Tokenizer throughput over the ingest path (DESIGN.md Section 12):
// MB/s and events/s for XMark- and DBLP-shaped documents, fed at chunk
// sizes from drip (64 B) to bulk (1 MiB), in both the accelerated scan
// mode and the forced-scalar reference mode.  The simd-vs-scalar delta is
// the win from xml/scan.h; the 64B-vs-1MiB delta bounds the cost of
// chunked feeding (resume state + window compaction).
//
// The feed dimension compares the three ingest paths at bulk sizes:
//   copied   Feed(string_view): bytes memcpy'd into the pinned window
//   adopted  Feed(StableChunk): caller memory scanned in place; only
//            boundary-straddling token bytes are spliced by copy
//   mmap     MappedFileSource: the document scanned straight out of the
//            page cache, no read() and no window copy at all
//
// Rows land in BENCH_parse.json; CI's bench-smoke job asserts the schema,
// a conservative MB/s floor on the bulk-chunk accelerated rows, and that
// the adopted path never loses to the copied path at the same chunk size.

#include <cstdio>
#include <cstdlib>
#include <string>

#include <unistd.h>

#include "bench/bench_util.h"
#include "core/event_sink.h"
#include "data/generators.h"
#include "util/text_ref.h"
#include "xml/file_source.h"
#include "xml/sax_parser.h"
#include "xml/scan.h"

namespace {

enum class FeedKind { kCopied, kAdopted, kMapped };

const char* FeedName(FeedKind feed) {
  switch (feed) {
    case FeedKind::kCopied: return "copied";
    case FeedKind::kAdopted: return "adopted";
    case FeedKind::kMapped: return "mmap";
  }
  return "?";
}

struct RunResult {
  double seconds = 0;
  uint64_t events = 0;
  xflux::SaxParser::IngestStats stats;
};

// The adopted rows scan the benchmark document's own buffer in place; the
// deleter is a no-op because the std::string outlives every chunk.
void NoopDeleter(void*, const char*, size_t) {}

RunResult RunOnce(const std::string& document, size_t chunk_bytes,
                  FeedKind feed, const std::string& path) {
  xflux::NullSink sink;
  RunResult r;
  r.seconds = xflux::bench::Time([&] {
    xflux::SaxParser parser(xflux::SaxParser::Options(), &sink);
    switch (feed) {
      case FeedKind::kCopied:
        for (size_t off = 0; off < document.size(); off += chunk_bytes) {
          size_t n = std::min(chunk_bytes, document.size() - off);
          (void)parser.Feed(std::string_view(document).substr(off, n));
        }
        break;
      case FeedKind::kAdopted:
        for (size_t off = 0; off < document.size(); off += chunk_bytes) {
          size_t n = std::min(chunk_bytes, document.size() - off);
          (void)parser.Feed(
              xflux::StableChunk::Adopt(document.data() + off, n,
                                        NoopDeleter, nullptr),
              n);
        }
        break;
      case FeedKind::kMapped: {
        auto source = xflux::MappedFileSource::Open(path);
        if (!source.ok()) {
          std::fprintf(stderr, "mmap open failed: %s\n",
                       source.status().ToString().c_str());
          std::exit(1);
        }
        for (;;) {
          auto chunk = source.value().Next();
          if (!chunk.ok() || !chunk.value().valid()) break;
          (void)parser.Feed(std::move(chunk).value());
        }
        break;
      }
    }
    (void)parser.Finish();
    r.events = parser.events_emitted();
    r.stats = parser.ingest_stats();
  });
  return r;
}

// Best-of-3 wall clock (throughput benches want the least-disturbed run).
RunResult RunBest(const std::string& document, size_t chunk_bytes,
                  FeedKind feed, const std::string& path) {
  RunResult best = RunOnce(document, chunk_bytes, feed, path);
  for (int i = 0; i < 2; ++i) {
    RunResult r = RunOnce(document, chunk_bytes, feed, path);
    if (r.seconds < best.seconds) best = r;
  }
  return best;
}

/// Writes `text` to a mkstemp file for the mmap rows; caller unlinks.
std::string WriteTempDoc(const std::string& text) {
  char path[] = "/tmp/bench_parse_XXXXXX";
  int fd = ::mkstemp(path);
  if (fd < 0) {
    std::fprintf(stderr, "mkstemp failed\n");
    std::exit(1);
  }
  size_t off = 0;
  while (off < text.size()) {
    ssize_t n = ::write(fd, text.data() + off, text.size() - off);
    if (n <= 0) {
      std::fprintf(stderr, "temp doc write failed\n");
      std::exit(1);
    }
    off += static_cast<size_t>(n);
  }
  ::close(fd);
  return path;
}

}  // namespace

int main() {
  struct Doc {
    const char* name;
    std::string text;
  };
  Doc docs[] = {
      {"xmark", xflux::GenerateXmark(
                    xflux::XmarkOptionsForBytes(xflux::bench::XmarkBytes()))},
      {"dblp", xflux::GenerateDblp(
                   xflux::DblpOptionsForBytes(xflux::bench::DblpBytes()))},
  };
  // (feed, chunk) pairs per document; chunk 0 means "whole file".
  struct FeedPoint {
    FeedKind feed;
    size_t chunk;
  };
  const FeedPoint kPoints[] = {
      {FeedKind::kCopied, 64},          {FeedKind::kCopied, 4096},
      {FeedKind::kCopied, 64 * 1024},   {FeedKind::kCopied, 1024 * 1024},
      {FeedKind::kAdopted, 64 * 1024},  {FeedKind::kAdopted, 1024 * 1024},
      {FeedKind::kMapped, 0},
  };
  const char* simd_kind = xflux::scan::SimdKind();

  std::printf("Tokenizer ingest throughput (simd=%s)\n", simd_kind);
  std::printf("%-7s %-8s %9s %-7s %9s %11s %10s %9s %10s %9s\n", "doc",
              "feed", "chunk", "mode", "MB/s", "events/s", "aliased",
              "copied", "spliced", "taghit%");
  xflux::bench::BenchReport report("parse");
  for (Doc& doc : docs) {
    std::string path = WriteTempDoc(doc.text);
    for (const FeedPoint& point : kPoints) {
      for (int scalar = 0; scalar <= 1; ++scalar) {
        xflux::scan::SetForceScalar(scalar != 0);
        RunResult r = RunBest(doc.text, point.chunk, point.feed, path);
        const char* mode = scalar != 0 ? "scalar" : "simd";
        double mb_per_s = doc.text.size() / r.seconds / 1e6;
        double events_per_s = r.events / r.seconds;
        double lookups = static_cast<double>(r.stats.tag_cache_hits +
                                             r.stats.tag_cache_misses);
        std::printf(
            "%-7s %-8s %9zu %-7s %9.1f %10.1fM %10llu %9llu %10llu %8.1f%%\n",
            doc.name, FeedName(point.feed), point.chunk, mode, mb_per_s,
            events_per_s / 1e6,
            static_cast<unsigned long long>(r.stats.aliased_texts),
            static_cast<unsigned long long>(r.stats.copied_texts),
            static_cast<unsigned long long>(r.stats.splice_bytes),
            lookups > 0 ? 100.0 * r.stats.tag_cache_hits / lookups : 0.0);
        xflux::JsonWriter row = xflux::JsonWriter::Object();
        row.Field("document", doc.name);
        row.Field("feed", FeedName(point.feed));
        row.Field("chunk_bytes", static_cast<uint64_t>(point.chunk));
        row.Field("mode", mode);
        row.Field("simd_kind", scalar != 0 ? "scalar" : simd_kind);
        row.Field("doc_bytes", static_cast<uint64_t>(doc.text.size()));
        row.Field("events", r.events);
        row.Field("seconds", r.seconds);
        row.Field("mb_per_s", mb_per_s);
        row.Field("events_per_s", events_per_s);
        row.Field("bytes_scanned", r.stats.bytes_scanned);
        row.Field("chunk_allocs", r.stats.chunk_allocs);
        row.Field("chunk_adoptions", r.stats.chunk_adoptions);
        row.Field("adopted_bytes", r.stats.adopted_bytes);
        row.Field("splice_bytes", r.stats.splice_bytes);
        row.Field("compactions", r.stats.compactions);
        row.Field("aliased_texts", r.stats.aliased_texts);
        row.Field("copied_texts", r.stats.copied_texts);
        row.Field("inlined_texts", r.stats.inlined_texts);
        row.Field("tag_cache_hits", r.stats.tag_cache_hits);
        row.Field("tag_cache_misses", r.stats.tag_cache_misses);
        report.AddRow(std::move(row));
      }
    }
    ::unlink(path.c_str());
  }
  xflux::scan::SetForceScalar(false);
  report.Write();
  return 0;
}
