// Ablation A1 (DESIGN.md): unblocked operators vs their naive
// blocking/buffered counterparts — the paper's core claim (Sections I, VI)
// that generating updates removes blocking and bounds buffering.
//
// For each operation we report, on the same input:
//   - time and throughput,
//   - events seen before the FIRST result event is produced (blocking),
//   - the operator's maximum buffered events (unbounded buffering).
//
// Expected shape: the naive sort/count emit nothing until end of stream
// and the naive predicate/descendant buffer whole elements, while the
// unblocked versions emit within one element and keep only suspension
// queues bounded by the key distance.

#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "core/result_display.h"
#include "core/transform_stage.h"
#include "data/generators.h"
#include "naive/naive_ops.h"
#include "ops/aggregates.h"
#include "ops/child_step.h"
#include "ops/clone.h"
#include "ops/descendant_step.h"
#include "ops/predicate.h"
#include "ops/sorter.h"
#include "ops/textops.h"
#include "ops/tuples.h"
#include "xml/sax_parser.h"

namespace {

using namespace xflux;  // NOLINT: bench-local convenience

// Counts input events until the sink first receives a simple event.
class FirstOutputProbe : public EventSink {
 public:
  void Accept(Event e) override {
    ++outputs_;
    if (first_at_ == 0 && e.IsSimple() &&
        e.kind != EventKind::kStartStream) {
      first_at_ = *input_counter_;
    }
  }
  void Attach(const uint64_t* counter) { input_counter_ = counter; }
  uint64_t first_at() const { return first_at_; }

 private:
  const uint64_t* input_counter_ = nullptr;
  uint64_t first_at_ = 0;
  uint64_t outputs_ = 0;
};

struct RunStats {
  double seconds = 0;
  uint64_t first_output_at = 0;  // input events before the first output
  int64_t max_buffered = 0;
};

template <typename MakeStages>
RunStats Run(const EventVec& input, MakeStages make_stages) {
  Pipeline pipeline;
  std::vector<std::unique_ptr<StateTransformer>> stages =
      make_stages(pipeline.context());
  for (auto& t : stages) {
    pipeline.AddStage<TransformStage>(pipeline.context(),
                                                  std::move(t));
  }
  FirstOutputProbe probe;
  pipeline.SetSink(&probe);
  uint64_t fed = 0;
  probe.Attach(&fed);
  RunStats stats;
  stats.seconds = bench::Time([&] {
    for (const Event& e : input) {
      ++fed;
      pipeline.Push(e);
    }
  });
  stats.first_output_at = probe.first_at();
  stats.max_buffered = pipeline.context()->metrics()->max_buffered_events();
  return stats;
}

std::string RunStatsJson(const RunStats& s) {
  JsonWriter w = JsonWriter::Object();
  w.Field("seconds", s.seconds);
  w.Field("first_output_at", s.first_output_at);
  w.Field("max_buffered", s.max_buffered);
  return w.Close();
}

void Report(const char* name, const RunStats& unblocked,
            const RunStats& naive, size_t total_events,
            bench::BenchReport* report) {
  std::printf("%-22s unblocked: %7.3fs first@%-8llu buf%-8lld | "
              "naive: %7.3fs first@%-8llu buf%-8lld (of %zu events)\n",
              name, unblocked.seconds,
              static_cast<unsigned long long>(unblocked.first_output_at),
              static_cast<long long>(unblocked.max_buffered), naive.seconds,
              static_cast<unsigned long long>(naive.first_output_at),
              static_cast<long long>(naive.max_buffered), total_events);
  JsonWriter r = JsonWriter::Object();
  r.Field("operation", name);
  r.Field("total_events", static_cast<uint64_t>(total_events));
  r.Raw("unblocked", RunStatsJson(unblocked));
  r.Raw("naive", RunStatsJson(naive));
  report->AddRow(std::move(r));
}

}  // namespace

int main() {
  XmarkOptions options =
      XmarkOptionsForBytes(xflux::bench::XmarkBytes() / 4);
  std::string doc = GenerateXmark(options);
  auto tokens = SaxParser::Tokenize(doc);
  if (!tokens.ok()) return 1;
  const EventVec& input = tokens.value();
  std::printf("A1: blocking/buffering ablation over %.1f MB XMark "
              "(%zu events)\n",
              doc.size() / 1e6, input.size());
  bench::BenchReport report("ablation_blocking");

  // --- predicate: //item[location="Albania"] ---
  auto run_predicate = [&](bool naive) {
    Pipeline pipeline;
    PipelineContext* c = pipeline.context();
    pipeline.AddStage<TransformStage>(
        c, std::make_unique<DescendantStep>(c, 0, "item"));
    pipeline.AddStage<CloneFilter>(c, 0, 1);
    pipeline.AddStage<TransformStage>(
        c, std::make_unique<ChildStep>(1, "location"));
    pipeline.AddStage<TransformStage>(
        c, std::make_unique<TextCompare>(c, 1, TextMatch::kEquals,
                                         "Albania"));
    if (naive) {
      pipeline.AddStage<TransformStage>(
          c, std::make_unique<NaivePredicate>(c, 0, 1));
    } else {
      pipeline.AddStage<TransformStage>(
          c, std::make_unique<PredicateOp>(c, 0, 1,
                                           PredicateScope::kElement));
    }
    FirstOutputProbe probe;
    pipeline.SetSink(&probe);
    uint64_t fed = 0;
    probe.Attach(&fed);
    RunStats stats;
    stats.seconds = bench::Time([&] {
      for (const Event& e : input) {
        ++fed;
        pipeline.Push(e);
      }
    });
    stats.first_output_at = probe.first_at();
    stats.max_buffered = pipeline.context()->metrics()->max_buffered_events();
    return stats;
  };
  Report("predicate //item[loc]", run_predicate(false), run_predicate(true),
         input.size(), &report);

  // --- count(//item) ---
  auto run_count = [&](bool naive) {
    return Run(input, [&](PipelineContext* c) {
      std::vector<std::unique_ptr<StateTransformer>> v;
      v.push_back(std::make_unique<DescendantStep>(c, 0, "item"));
      if (naive) {
        v.push_back(
            std::make_unique<NaiveCount>(0, CountMode::kTopLevelElements));
      } else {
        v.push_back(std::make_unique<CountOp>(
            c, 0, CountMode::kTopLevelElements));
      }
      return v;
    });
  };
  Report("count(//item)", run_count(false), run_count(true), input.size(),
         &report);

  // --- descendant //* ---
  auto run_descendant = [&](bool naive) {
    return Run(input, [&](PipelineContext* c) {
      std::vector<std::unique_ptr<StateTransformer>> v;
      if (naive) {
        v.push_back(std::make_unique<NaiveDescendant>(c, 0, "*"));
      } else {
        v.push_back(std::make_unique<DescendantStep>(c, 0, "*"));
      }
      return v;
    });
  };
  Report("descendant //*", run_descendant(false), run_descendant(true),
         input.size(), &report);

  // --- order by quantity ---
  auto run_sort = [&](bool naive) {
    Pipeline pipeline;
    PipelineContext* c = pipeline.context();
    pipeline.AddStage<TransformStage>(
        c, std::make_unique<DescendantStep>(c, 0, "item"));
    pipeline.AddStage<TransformStage>(
        c, std::make_unique<MakeTuples>(0));
    pipeline.AddStage<CloneFilter>(c, 0, 1);
    pipeline.AddStage<TransformStage>(
        c, std::make_unique<ChildStep>(1, "quantity"));
    pipeline.AddStage<TransformStage>(
        c, std::make_unique<StringValue>(1));
    if (naive) {
      pipeline.AddStage<TransformStage>(
          c, std::make_unique<NaiveSorter>(c, 0, 1));
    } else {
      pipeline.AddStage<SortFilter>(c, 1);
    }
    FirstOutputProbe probe;
    pipeline.SetSink(&probe);
    uint64_t fed = 0;
    probe.Attach(&fed);
    RunStats stats;
    stats.seconds = bench::Time([&] {
      for (const Event& e : input) {
        ++fed;
        pipeline.Push(e);
      }
    });
    stats.first_output_at = probe.first_at();
    stats.max_buffered = pipeline.context()->metrics()->max_buffered_events();
    return stats;
  };
  Report("order by quantity", run_sort(false), run_sort(true), input.size(),
         &report);

  report.Write();
  return 0;
}
