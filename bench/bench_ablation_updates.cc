// Ablation A3 (DESIGN.md): the cost of the state-adjustment machinery as
// the fraction of mutable input grows (Section IV).
//
// The XMark stream is post-processed so that a fraction p of the items'
// location texts are wrapped in mutable regions; half of those then
// receive one replacement update at the end of the stream (flipping some
// predicate outcomes retroactively).  Expected shape: throughput degrades
// smoothly with p — the machinery costs roughly in proportion to how much
// of the stream is actually open to updates, and nothing is paid at p=0.

#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "data/generators.h"
#include "util/prng.h"
#include "xml/sax_parser.h"
#include "xquery/engine.h"

namespace {

using namespace xflux;  // NOLINT: bench-local convenience

// Wraps a fraction of <location> text nodes in mutable regions and appends
// replacement updates for half of them.
EventVec InjectUpdates(const EventVec& input, double fraction,
                       uint64_t seed) {
  Prng prng(seed);
  EventVec out;
  out.reserve(input.size() + 64);
  EventVec tail;  // replacement updates appended before eS
  StreamId next_region = 1000;
  bool in_location = false;
  for (size_t i = 0; i < input.size(); ++i) {
    const Event& e = input[i];
    if (e.kind == EventKind::kStartElement && e.tag_name() == "location") {
      in_location = true;
      out.push_back(e);
      continue;
    }
    if (e.kind == EventKind::kEndElement && e.tag_name() == "location") {
      in_location = false;
      out.push_back(e);
      continue;
    }
    if (in_location && e.kind == EventKind::kCharacters &&
        prng.Chance(fraction)) {
      StreamId region = next_region++;
      out.push_back(Event::StartMutable(0, region));
      Event text = e;
      text.id = region;
      out.push_back(std::move(text));
      out.push_back(Event::EndMutable(0, region));
      if (prng.Chance(0.5)) {
        StreamId fresh = next_region++;
        tail.push_back(Event::StartReplace(region, fresh));
        tail.push_back(Event::Characters(
            fresh, prng.Chance(0.5) ? "Albania" : "Norway"));
        tail.push_back(Event::EndReplace(region, fresh));
      }
      continue;
    }
    if (e.kind == EventKind::kEndStream) {
      for (Event& t : tail) out.push_back(std::move(t));
      tail.clear();
    }
    out.push_back(e);
  }
  return out;
}

}  // namespace

int main() {
  XmarkOptions options =
      XmarkOptionsForBytes(xflux::bench::XmarkBytes() / 4);
  options.albania_fraction = 0.05;
  std::string doc = GenerateXmark(options);
  auto tokens = SaxParser::Tokenize(doc);
  if (!tokens.ok()) return 1;

  std::printf("A3: throughput vs mutable-input fraction, query "
              "X//item[location=\"Albania\"]/quantity over %.1f MB XMark\n",
              doc.size() / 1e6);
  std::printf("%-10s %12s %10s %12s %12s\n", "mutable", "events", "time",
              "MB/s", "max_states");

  bench::BenchReport report("ablation_updates");
  for (double fraction : {0.0, 0.01, 0.1, 0.5, 1.0}) {
    EventVec stream = InjectUpdates(tokens.value(), fraction, 11);
    auto session = xflux::QuerySession::Open(
        "X//item[location=\"Albania\"]/quantity");
    if (!session.ok()) return 1;
    double seconds =
        xflux::bench::Time([&] { session.value()->PushAll(stream); });
    const Metrics* metrics =
        session.value()->pipeline()->context()->metrics();
    std::printf("%-10.2f %12zu %9.3fs %12.1f %12lld\n", fraction,
                stream.size(), seconds, doc.size() / seconds / 1e6,
                static_cast<long long>(metrics->max_live_states()));
    JsonWriter r = JsonWriter::Object();
    r.Field("mutable_fraction", fraction);
    r.Field("stream_events", static_cast<uint64_t>(stream.size()));
    r.Field("seconds", seconds);
    r.Field("mb_per_s", doc.size() / seconds / 1e6);
    r.Raw("metrics", metrics->ToJson());
    report.AddRow(std::move(r));
  }
  report.Write();
  return 0;
}
