// The memory-plane property suite (DESIGN.md Section 8): COW operator-state
// snapshots, the slab-backed region document, and incremental display
// rendering.
//
//  1. Cow<T> / SlabArena<T> unit contracts.
//  2. Document parity: the slab-backed RegionDocument is byte-identical to
//     the frozen std::list reference (tests/reference_region_document.h)
//     across a fault-injected corpus (light + heavy mutation loads,
//     XFLUX_MEMORY_SEEDS seeds, default 500) — statuses, rendered events,
//     serialized text and bookkeeping counters all match.
//  3. Incremental rendering: after *every* event of the corpus the display's
//     live text and events equal a from-scratch full re-render; append-only
//     streams never trigger a full rescan.
//  4. Boundedness: replace/freeze churn holds the document's arena capacity,
//     the stage's alias/dropping sets and the sorter's rename map steady on
//     long mutated streams.
//  5. COW effectiveness: update-heavy query runs share at least half of
//     their state snapshots, and the deep-clone count is pinned to a
//     committed baseline (+10% headroom) as a regression guard.

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "core/region_document.h"
#include "core/result_display.h"
#include "core/transform_stage.h"
#include "ops/child_step.h"
#include "ops/sorter.h"
#include "reference_region_document.h"
#include "test_util.h"
#include "testing/fault_injector.h"
#include "util/cow.h"
#include "util/slab_arena.h"
#include "xml/serializer.h"
#include "xquery/engine.h"

namespace xflux {
namespace {

int SeedCount() {
  if (const char* env = std::getenv("XFLUX_MEMORY_SEEDS")) {
    int v = std::atoi(env);
    if (v > 0) return v;
  }
  return 500;
}

// ---------------------------------------------------------------------------
// Cow<T>

struct Blob {
  int value = 0;
  std::vector<int> payload;
  std::unique_ptr<Blob> Clone() const { return std::make_unique<Blob>(*this); }
};

TEST(CowTest, SnapshotSharesUntilFirstWrite) {
  Cow<Blob> a = Cow<Blob>::Adopt(std::make_unique<Blob>());
  EXPECT_TRUE(a.unique());
  Cow<Blob> b = a.Snapshot();
  EXPECT_FALSE(a.unique());
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(a.use_count(), 2);

  bool cloned = false;
  a.Mutable(&cloned)->value = 7;
  EXPECT_TRUE(cloned);
  EXPECT_NE(a.get(), b.get());
  EXPECT_EQ(a->value, 7);
  EXPECT_EQ(b->value, 0);  // the snapshot kept the old physical object
  EXPECT_TRUE(a.unique());
  EXPECT_TRUE(b.unique());
}

TEST(CowTest, MutableIsFreeWhenUnique) {
  Cow<Blob> a = Cow<Blob>::Adopt(std::make_unique<Blob>());
  const Blob* before = a.get();
  bool cloned = false;
  a.Mutable(&cloned)->value = 1;
  a.Mutable(&cloned)->value = 2;
  EXPECT_FALSE(cloned);
  EXPECT_EQ(a.get(), before);
  EXPECT_EQ(a.version(), 0u);
}

TEST(CowTest, VersionCountsPhysicalGenerations) {
  Cow<Blob> a = Cow<Blob>::Adopt(std::make_unique<Blob>());
  Cow<Blob> b = a.Snapshot();
  a.Mutable()->value = 1;
  EXPECT_EQ(a.version(), 1u);
  EXPECT_EQ(b.version(), 0u);
  Cow<Blob> c = a.Snapshot();
  a.Mutable()->value = 2;
  EXPECT_EQ(a.version(), 2u);
  EXPECT_EQ(c->value, 1);
}

TEST(CowTest, DeepChainOfSnapshotsStaysIndependent) {
  Cow<Blob> base = Cow<Blob>::Adopt(std::make_unique<Blob>());
  base.Mutable()->payload = {1, 2, 3};
  std::vector<Cow<Blob>> snaps;
  for (int i = 0; i < 16; ++i) snaps.push_back(base.Snapshot());
  for (int i = 0; i < 16; ++i) snaps[i].Mutable()->value = i;
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(snaps[i]->value, i);
    EXPECT_EQ(snaps[i]->payload, (std::vector<int>{1, 2, 3}));
  }
  EXPECT_EQ(base->value, 0);
}

// ---------------------------------------------------------------------------
// SlabArena<T>

struct DtorCounter {
  explicit DtorCounter(int* counter) : counter_(counter) {}
  ~DtorCounter() { ++*counter_; }
  int* counter_;
  char pad_[24] = {};
};

TEST(SlabArenaTest, ReusesFreedSlots) {
  SlabArena<int> arena(/*nodes_per_slab=*/8);
  int* a = arena.Create(1);
  int* b = arena.Create(2);
  EXPECT_EQ(arena.live_nodes(), 2u);
  size_t cap = arena.capacity_nodes();
  arena.Destroy(a);
  EXPECT_EQ(arena.live_nodes(), 1u);
  int* c = arena.Create(3);
  EXPECT_EQ(c, a);  // the freed slot comes back first
  EXPECT_EQ(*b, 2);
  EXPECT_EQ(*c, 3);
  EXPECT_EQ(arena.capacity_nodes(), cap);  // no new slab
}

TEST(SlabArenaTest, GrowsByWholeSlabs) {
  SlabArena<int> arena(/*nodes_per_slab=*/8);
  EXPECT_EQ(arena.capacity_nodes(), 0u);
  std::vector<int*> nodes;
  for (int i = 0; i < 9; ++i) nodes.push_back(arena.Create(i));
  EXPECT_EQ(arena.slab_count(), 2u);
  EXPECT_EQ(arena.capacity_nodes(), 16u);
  EXPECT_DOUBLE_EQ(arena.occupancy(), 9.0 / 16.0);
  for (int* n : nodes) arena.Destroy(n);
  EXPECT_EQ(arena.live_nodes(), 0u);
  EXPECT_EQ(arena.capacity_nodes(), 16u);  // slabs are kept for reuse
}

TEST(SlabArenaTest, DestroyRunsDestructors) {
  int destroyed = 0;
  SlabArena<DtorCounter> arena(8);
  DtorCounter* a = arena.Create(&destroyed);
  DtorCounter* b = arena.Create(&destroyed);
  arena.Destroy(a);
  EXPECT_EQ(destroyed, 1);
  arena.Destroy(b);
  EXPECT_EQ(destroyed, 2);
}

// ---------------------------------------------------------------------------
// Document parity: slab-backed vs frozen std::list reference.

void CheckParity(const EventVec& stream, bool lenient, uint64_t seed) {
  RegionDocument doc(nullptr, lenient);
  ReferenceRegionDocument ref(lenient);
  Status doc_status = Status::OK();
  Status ref_status = Status::OK();
  for (const Event& e : stream) {
    doc_status = doc.Feed(e);
    ref_status = ref.Feed(e);
    ASSERT_EQ(doc_status.code(), ref_status.code())
        << "seed " << seed << " lenient " << lenient << "\nevent "
        << ToString(EventVec{e}) << "\ndoc: " << doc_status
        << "\nref: " << ref_status;
    if (!doc_status.ok()) break;  // both latched at the same event
  }
  if (!doc_status.ok()) return;

  for (bool keep_tuples : {false, true}) {
    RenderOptions options;
    options.keep_tuples = keep_tuples;
    EventVec got = doc.RenderEvents(options);
    EventVec want = ref.RenderEvents(options);
    ASSERT_EQ(got, want) << "seed " << seed << " keep_tuples " << keep_tuples
                         << "\nstream " << ToString(stream);
  }
  EXPECT_EQ(doc.live_region_count(), ref.live_region_count()) << "seed " << seed;
  EXPECT_EQ(doc.item_count(), ref.item_count()) << "seed " << seed;
  EXPECT_EQ(doc.dropping_count(), ref.dropping_count()) << "seed " << seed;

  auto got_xml = XmlSerializer::ToXml(doc.RenderEvents(), {});
  auto want_xml = XmlSerializer::ToXml(ref.RenderEvents(), {});
  ASSERT_EQ(got_xml.ok(), want_xml.ok()) << "seed " << seed;
  if (got_xml.ok()) {
    EXPECT_EQ(got_xml.value(), want_xml.value()) << "seed " << seed;
  }
}

TEST(DocumentParity, FaultCorpusMatchesReference) {
  const int seeds = SeedCount();
  for (int seed = 1; seed <= seeds; ++seed) {
    EventVec clean = RandomUpdateStream(static_cast<uint64_t>(seed));
    CheckParity(clean, /*lenient=*/false, static_cast<uint64_t>(seed));
    CheckParity(clean, /*lenient=*/true, static_cast<uint64_t>(seed));
    for (const char* load : {"light", "heavy"}) {
      FaultSpec spec = ParseFaultSpec(load).value();
      FaultCounts counts;
      EventVec mutated =
          MutateStream(clean, spec, static_cast<uint64_t>(seed) * 131, &counts);
      CheckParity(mutated, /*lenient=*/true, static_cast<uint64_t>(seed));
      CheckParity(mutated, /*lenient=*/false, static_cast<uint64_t>(seed));
      if (HasFatalFailure() || HasNonfatalFailure()) return;  // first repro
    }
  }
}

// ---------------------------------------------------------------------------
// Incremental rendering vs the full-render oracle.

void CheckIncrementalMatchesFull(const EventVec& stream, uint64_t seed) {
  ResultDisplay display;
  for (size_t i = 0; i < stream.size(); ++i) {
    display.Accept(stream[i]);
    if (!display.status().ok()) return;  // latched; nothing more to compare
    // Live (incremental) output must equal a from-scratch re-render after
    // every single event — this drives the stable-prefix/volatile-tail
    // machinery through every restart edge in the corpus.
    EXPECT_EQ(display.LiveEvents(), display.FullRenderEvents())
        << "seed " << seed << " event " << i << "\nstream "
        << ToString(stream);
    auto full = display.FullRenderText();
    ASSERT_EQ(display.render_status().ok(), full.ok())
        << "seed " << seed << " event " << i << "\nlive: "
        << display.render_status() << "\nfull: " << full.status();
    if (full.ok()) {
      ASSERT_EQ(display.LiveText(), full.value())
          << "seed " << seed << " event " << i << "\nstream "
          << ToString(stream);
      auto current = display.CurrentText();
      ASSERT_TRUE(current.ok());
      EXPECT_EQ(current.value(), full.value());
    }
  }
}

TEST(IncrementalRender, MatchesFullRenderAfterEveryEvent) {
  const int seeds = SeedCount();
  for (int seed = 1; seed <= seeds; ++seed) {
    EventVec clean = RandomUpdateStream(static_cast<uint64_t>(seed));
    CheckIncrementalMatchesFull(clean, static_cast<uint64_t>(seed));
    for (const char* load : {"light", "heavy"}) {
      FaultSpec spec = ParseFaultSpec(load).value();
      FaultCounts counts;
      EventVec mutated =
          MutateStream(clean, spec, static_cast<uint64_t>(seed) * 257, &counts);
      CheckIncrementalMatchesFull(mutated, static_cast<uint64_t>(seed));
      if (HasFatalFailure() || HasNonfatalFailure()) return;  // first repro
    }
  }
}

TEST(IncrementalRender, AppendOnlyStreamNeverRescans) {
  EventVec in = Tok(
      "<biblio><book><author>Smith</author><price>10</price></book>"
      "<book><author>Jones</author><price>20</price></book></biblio>");
  ResultDisplay display;
  for (const Event& e : in) {
    display.Accept(e);
    ASSERT_TRUE(display.status().ok());
    (void)display.LiveText();  // force a refresh per event
  }
  EXPECT_EQ(display.full_rescans(), 0u);
  auto full = display.FullRenderText();
  ASSERT_TRUE(full.ok()) << full.status();
  EXPECT_EQ(display.LiveText(), full.value());
}

TEST(IncrementalRender, EpochCachingSkipsRedundantRefreshes) {
  EventVec in = Tok("<a><b>x</b></a>");
  ResultDisplay display;
  for (const Event& e : in) display.Accept(e);
  const std::string& once = display.LiveText();
  const char* data = once.data();
  // No new events: repeated reads must not re-render (same buffer, same
  // contents, no rescans).
  for (int i = 0; i < 5; ++i) {
    const std::string& again = display.LiveText();
    EXPECT_EQ(again.data(), data);
  }
  EXPECT_EQ(display.full_rescans(), 0u);
}

// ---------------------------------------------------------------------------
// Boundedness on long mutated streams.

TEST(Boundedness, HideFreezeChurnHoldsArenaCapacitySteady) {
  RegionDocument doc(nullptr, /*lenient=*/true);
  ASSERT_TRUE(doc.Feed(Event::StartStream(0)).ok());
  StreamId next = 100;
  size_t warm_capacity = 0;
  for (int i = 0; i < 20000; ++i) {
    StreamId r = next++;
    ASSERT_TRUE(doc.Feed(Event::StartMutable(0, r)).ok());
    ASSERT_TRUE(doc.Feed(Event::Characters(r, "x")).ok());
    ASSERT_TRUE(doc.Feed(Event::EndMutable(0, r)).ok());
    ASSERT_TRUE(doc.Feed(Event::Hide(r)).ok());
    ASSERT_TRUE(doc.Feed(Event::Freeze(r)).ok());  // reclaims the content
    if (i == 99) warm_capacity = doc.arena_capacity_items();
  }
  EXPECT_EQ(doc.live_region_count(), 0u);
  EXPECT_EQ(doc.dropping_count(), 0u);
  EXPECT_EQ(doc.item_count(), 0u);
  // Slots freed by the reclaim are reused: the arena never grows past its
  // warmup capacity across 20k create/destroy cycles.
  EXPECT_EQ(doc.arena_capacity_items(), warm_capacity);
}

TEST(Boundedness, RepeatedReplaceOfOneRegionReusesSlots) {
  RegionDocument doc(nullptr, /*lenient=*/true);
  ASSERT_TRUE(doc.Feed(Event::StartStream(0)).ok());
  const StreamId target = 100;
  ASSERT_TRUE(doc.Feed(Event::StartMutable(0, target)).ok());
  ASSERT_TRUE(doc.Feed(Event::Characters(target, "v0")).ok());
  ASSERT_TRUE(doc.Feed(Event::EndMutable(0, target)).ok());
  size_t warm_capacity = 0;
  for (int i = 0; i < 10000; ++i) {
    // Every replacement erases the previous one wholesale (its sentinels
    // lie inside the target region), so the document stays two intervals
    // deep no matter how long the update stream runs.
    StreamId fresh = 101 + static_cast<StreamId>(i);
    ASSERT_TRUE(doc.Feed(Event::StartReplace(target, fresh)).ok());
    ASSERT_TRUE(
        doc.Feed(Event::Characters(fresh, "v" + std::to_string(i))).ok());
    ASSERT_TRUE(doc.Feed(Event::EndReplace(target, fresh)).ok());
    if (i == 99) warm_capacity = doc.arena_capacity_items();
  }
  EXPECT_EQ(doc.arena_capacity_items(), warm_capacity);
  EXPECT_EQ(doc.live_region_count(), 2u);  // the target + the latest content
  EXPECT_LE(doc.item_count(), 8u);
  EventVec rendered = doc.RenderEvents();
  ASSERT_EQ(rendered.size(), 1u);
  EXPECT_EQ(rendered[0].chars(), "v9999");
}

TEST(Boundedness, StageAliasAndDroppingSetsStayEmptyAfterFreezes) {
  Pipeline pipeline;
  auto* stage = pipeline.AddStage<TransformStage>(
      pipeline.context(), std::make_unique<ChildStep>(0, "book"));
  CollectingSink sink;
  pipeline.SetSink(&sink);

  EventVec in;
  in.push_back(Event::StartStream(0));
  in.push_back(Event::StartElement(0, "lib"));
  StreamId next = 100;
  for (int i = 0; i < 2000; ++i) {
    StreamId r = next++;
    StreamId f = next++;
    in.push_back(Event::StartMutable(0, r));
    in.push_back(Event::StartElement(r, "book"));
    in.push_back(Event::Characters(r, "x"));
    in.push_back(Event::EndElement(r, "book"));
    in.push_back(Event::EndMutable(0, r));
    in.push_back(Event::StartReplace(r, f));
    in.push_back(Event::StartElement(f, "book"));
    in.push_back(Event::Characters(f, "y"));
    in.push_back(Event::EndElement(f, "book"));
    in.push_back(Event::EndReplace(r, f));
    in.push_back(Event::Freeze(f));
    in.push_back(Event::Freeze(r));
  }
  in.push_back(Event::EndElement(0, "lib"));
  in.push_back(Event::EndStream(0));
  pipeline.PushAll(in);

  ASSERT_TRUE(pipeline.status().ok()) << pipeline.status();
  EXPECT_EQ(stage->alias_count(), 0u);
  EXPECT_EQ(stage->dropping_count(), 0u);
  // Freezes evict eagerly: the stage never holds more than the handful of
  // in-flight regions even though the stream created 4000 of them.
  EXPECT_LE(pipeline.context()->metrics()->max_live_states(), 8);
}

TEST(Boundedness, SorterRenameMapIsEvictedOnFreeze) {
  Pipeline pipeline;
  PipelineContext* c = pipeline.context();
  auto* sort = pipeline.AddStage<SortFilter>(c, /*key_input=*/1);
  CollectingSink sink;
  pipeline.SetSink(&sink);

  EventVec in;
  in.push_back(Event::StartStream(0));
  StreamId next = 100;
  std::vector<StreamId> regions;
  const int kTuples = 500;
  for (int i = 0; i < kTuples; ++i) {
    StreamId r = next++;
    regions.push_back(r);
    in.push_back(Event::StartTuple(0));
    in.push_back(Event::StartMutable(0, r));
    in.push_back(Event::Characters(r, "v" + std::to_string(i)));
    in.push_back(Event::EndMutable(0, r));
    in.push_back(Event::Characters(1, std::to_string(i % 7)));  // the key
    in.push_back(Event::EndTuple(0));
    // The region freezes two tuples later: entries are evicted while the
    // stream is still running, not at teardown.
    if (i >= 2) in.push_back(Event::Freeze(regions[i - 2]));
  }
  in.push_back(Event::Freeze(regions[kTuples - 2]));
  in.push_back(Event::Freeze(regions[kTuples - 1]));
  in.push_back(Event::EndStream(0));
  pipeline.PushAll(in);

  ASSERT_TRUE(pipeline.status().ok()) << pipeline.status();
  EXPECT_EQ(sort->rename_map_size(), 0u);
  // Only the not-yet-frozen window is ever resident.
  EXPECT_LE(sort->rename_map_hwm(), 4u);
  auto materialized = Materialize(sink.events(), {}, /*lenient=*/true);
  ASSERT_TRUE(materialized.ok()) << materialized.status();
}

// ---------------------------------------------------------------------------
// COW effectiveness on update-heavy query runs.

// A deterministic update-heavy bookstore stream: every author and price is
// a mutable region, and every region receives one replacement in the tail —
// the Table 2 "update-heavy" shape.
EventVec MakeUpdateHeavyStream(int books) {
  EventVec ev;
  StreamId next = 100;
  std::vector<StreamId> regions;
  ev.push_back(Event::StartStream(0));
  ev.push_back(Event::StartElement(0, "biblio", 1));
  Oid oid = 2;
  for (int b = 0; b < books; ++b) {
    ev.push_back(Event::StartElement(0, "book", oid++));
    ev.push_back(Event::StartElement(0, "author", oid++));
    StreamId ar = next++;
    regions.push_back(ar);
    ev.push_back(Event::StartMutable(0, ar));
    ev.push_back(Event::Characters(ar, b % 2 == 0 ? "Smith" : "Jones"));
    ev.push_back(Event::EndMutable(0, ar));
    ev.push_back(Event::EndElement(0, "author"));
    ev.push_back(Event::StartElement(0, "title", oid++));
    ev.push_back(Event::Characters(0, "T" + std::to_string(b)));
    ev.push_back(Event::EndElement(0, "title"));
    ev.push_back(Event::StartElement(0, "price", oid++));
    StreamId pr = next++;
    regions.push_back(pr);
    ev.push_back(Event::StartMutable(0, pr));
    ev.push_back(Event::Characters(pr, std::to_string(10 + b % 90)));
    ev.push_back(Event::EndMutable(0, pr));
    ev.push_back(Event::EndElement(0, "price"));
    ev.push_back(Event::EndElement(0, "book"));
  }
  ev.push_back(Event::EndElement(0, "biblio"));
  for (size_t i = 0; i < regions.size(); ++i) {
    StreamId fresh = next++;
    ev.push_back(Event::StartReplace(regions[i], fresh));
    ev.push_back(Event::Characters(
        fresh, i % 2 == 0 ? "Jones" : std::to_string(11 + i % 90)));
    ev.push_back(Event::EndReplace(regions[i], fresh));
  }
  ev.push_back(Event::EndStream(0));
  return ev;
}

struct CowCounters {
  uint64_t clones = 0;
  uint64_t shares = 0;
};

CowCounters RunUpdateHeavyQuery(const char* query, const EventVec& stream) {
  auto session = QuerySession::Open(query);
  EXPECT_TRUE(session.ok()) << session.status();
  CowCounters counters;
  if (!session.ok()) return counters;
  session.value()->PushAll(stream);
  EXPECT_TRUE(session.value()->status().ok()) << session.value()->status();
  const Metrics* metrics = session.value()->pipeline()->context()->metrics();
  counters.clones = metrics->state_clones();
  counters.shares = metrics->state_shares();
  return counters;
}

// Committed baselines for the clone-budget guard (acceptance: >= 50% fewer
// deep clones than the eager-copy seed, which cloned on every snapshot —
// i.e. clones + shares times).  Regenerate by logging the counters below
// after an intentional change to the snapshot rules.
constexpr uint64_t kPredicateCloneBaseline = 8403;
constexpr uint64_t kWhereReturnCloneBaseline = 10999;

TEST(CowEffectiveness, UpdateHeavyQueriesShareMostSnapshots) {
  EventVec stream = MakeUpdateHeavyStream(/*books=*/200);
  const char* queries[] = {
      "X//book[author=\"Smith\"]/title",
      "for $b in X//book where $b/author = \"Smith\" "
      "return <hit>{ $b/price }</hit>"};
  for (const char* query : queries) {
    CowCounters c = RunUpdateHeavyQuery(query, stream);
    ASSERT_GT(c.clones + c.shares, 0u) << query;
    double share_ratio =
        static_cast<double>(c.shares) / static_cast<double>(c.clones + c.shares);
    // The eager seed deep-copied every snapshot (ratio 0).  COW must avoid
    // at least half of those copies on the update-heavy shape.
    EXPECT_GE(share_ratio, 0.5)
        << query << ": clones=" << c.clones << " shares=" << c.shares;
  }
}

TEST(CowEffectiveness, CloneBudgetDoesNotRegress) {
  EventVec stream = MakeUpdateHeavyStream(/*books=*/200);
  CowCounters pred =
      RunUpdateHeavyQuery("X//book[author=\"Smith\"]/title", stream);
  CowCounters where = RunUpdateHeavyQuery(
      "for $b in X//book where $b/author = \"Smith\" "
      "return <hit>{ $b/price }</hit>",
      stream);
  // +10% headroom over the committed baseline; a bigger jump means a
  // snapshot started cloning eagerly again.
  EXPECT_LE(pred.clones, kPredicateCloneBaseline + kPredicateCloneBaseline / 10)
      << "actual clones=" << pred.clones << " shares=" << pred.shares;
  EXPECT_LE(where.clones,
            kWhereReturnCloneBaseline + kWhereReturnCloneBaseline / 10)
      << "actual clones=" << where.clones << " shares=" << where.shares;
}

}  // namespace
}  // namespace xflux
