// Deterministic hostile-input cases for the SAX layer (the byte-level
// fuzzers live in fault_injection_test.cc).  Every malformed document must
// come back as a clean kParseError / kResourceExhausted — never a crash —
// and the parser must stay latched on its first error.

#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/event.h"
#include "testing/fault_injector.h"
#include "testing/traffic_gen.h"
#include "util/error_channel.h"
#include "xml/sax_parser.h"

namespace xflux {
namespace {

Status ParseAll(const std::vector<std::string>& chunks,
                SaxParser::Options options = {}) {
  NullSink sink;
  SaxParser parser(options, &sink);
  for (const std::string& chunk : chunks) {
    Status s = parser.Feed(chunk);
    if (!s.ok()) return s;
  }
  return parser.Finish();
}

TEST(SaxHostileTest, UnclosedElementAtFinish) {
  Status s = ParseAll({"<biblio><book>text"});
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_NE(s.message().find("unclosed element"), std::string::npos) << s;
}

TEST(SaxHostileTest, UnterminatedMarkupAtFinish) {
  Status s = ParseAll({"<biblio><boo"});
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_NE(s.message().find("unterminated markup"), std::string::npos) << s;
}

TEST(SaxHostileTest, TagSplitAcrossChunksStillParses) {
  EXPECT_TRUE(ParseAll({"<bib", "lio><a", ">x</a></bibli", "o>"}).ok());
}

TEST(SaxHostileTest, AttributeSplitAcrossChunksStillParses) {
  EXPECT_TRUE(
      ParseAll({"<book ye", "ar=\"20", "08\"/>"}).ok());
}

TEST(SaxHostileTest, EntitySplitAcrossChunksStillParses) {
  EXPECT_TRUE(ParseAll({"<a>Smith &a", "mp; Jones</a>"}).ok());
}

TEST(SaxHostileTest, MismatchedEndTagSplitAcrossChunks) {
  Status s = ParseAll({"<a><b>x</", "c></a>"});
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_NE(s.message().find("mismatched end tag"), std::string::npos) << s;
}

TEST(SaxHostileTest, StrayCdataCloserInCharacterData) {
  Status s = ParseAll({"<a>x]]>y</a>"});
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_NE(s.message().find("']]>'"), std::string::npos) << s;
}

TEST(SaxHostileTest, StrayCdataCloserSplitAcrossChunks) {
  Status s = ParseAll({"<a>x]", "]", ">y</a>"});
  EXPECT_EQ(s.code(), StatusCode::kParseError);
}

TEST(SaxHostileTest, BareAmpersandIsAParseError) {
  Status s = ParseAll({"<a>fish & chips</a>"});
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_NE(s.message().find("entity"), std::string::npos) << s;
}

TEST(SaxHostileTest, UnknownEntityIsAParseError) {
  EXPECT_EQ(ParseAll({"<a>&bogus;</a>"}).code(), StatusCode::kParseError);
}

TEST(SaxHostileTest, UnmatchedEndTag) {
  EXPECT_EQ(ParseAll({"</a>"}).code(), StatusCode::kParseError);
}

TEST(SaxHostileTest, CharacterDataOutsideDocumentElement) {
  EXPECT_EQ(ParseAll({"garbage<a/>"}).code(), StatusCode::kParseError);
}

TEST(SaxHostileTest, MaxTokenBytesBoundsUnterminatedMarkup) {
  SaxParser::Options options;
  options.max_token_bytes = 64;
  // An attacker streams an unbounded "tag" that never closes; the bound
  // must trip long before memory does.
  NullSink sink;
  SaxParser parser(options, &sink);
  Status s = parser.Feed("<");
  for (int i = 0; i < 1000 && s.ok(); ++i) {
    s = parser.Feed("aaaaaaaaaaaaaaaa");
  }
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
}

TEST(SaxHostileTest, MaxTokenBytesBoundsRunawayText) {
  SaxParser::Options options;
  options.max_token_bytes = 64;
  NullSink sink;
  SaxParser parser(options, &sink);
  ASSERT_TRUE(parser.Feed("<a>").ok());
  Status s = Status::OK();
  for (int i = 0; i < 1000 && s.ok(); ++i) {
    s = parser.Feed("xxxxxxxxxxxxxxxx");
  }
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
}

TEST(SaxHostileTest, ErrorsLatchAcrossFeedAndFinish) {
  NullSink sink;
  SaxParser parser(SaxParser::Options(), &sink);
  Status first = parser.Feed("</nope>");
  ASSERT_EQ(first.code(), StatusCode::kParseError);
  // Feeding valid input afterwards must not revive the parser.
  EXPECT_EQ(parser.Feed("<fine/>").code(), StatusCode::kParseError);
  EXPECT_EQ(parser.Finish().code(), StatusCode::kParseError);
  EXPECT_EQ(parser.error().message(), first.message());
}

// Chunking must never change the verdict: feeding any document — valid,
// malformed, or byte-corrupted — one byte at a time has to produce the
// exact same status (code and message) as feeding it in one buffer, with
// errors latched identically.  This sweeps the fixed hostile documents
// above plus a corrupted-corpus of XFLUX_FAULT_ITERS seeds (default 150).
TEST(SaxHostileTest, ByteAtATimeSweepMatchesWholeBufferVerdict) {
  int seeds = 150;
  if (const char* env = std::getenv("XFLUX_FAULT_ITERS")) {
    int v = std::atoi(env);
    if (v > 0) seeds = v;
  }
  std::vector<std::string> corpus = {
      "<biblio><book>text",
      "<biblio><boo",
      "<a><b>x</c></a>",
      "<a>x]]>y</a>",
      "<a>fish & chips</a>",
      "<a>&bogus;</a>",
      "</a>",
      "garbage<a/>",
      "<biblio><a>x</a></biblio>",  // valid: both paths must say OK
      "<book year=\"2008\"/>",
  };
  for (int seed = 0; seed < seeds; ++seed) {
    corpus.push_back(CorruptBytes(
        serve::MakeBookDocument(static_cast<uint64_t>(seed), 512),
        static_cast<uint64_t>(seed), 0.01));
  }
  for (size_t i = 0; i < corpus.size(); ++i) {
    const std::string& doc = corpus[i];
    Status whole = ParseAll({doc});
    NullSink sink;
    SaxParser parser(SaxParser::Options(), &sink);
    Status byte_wise = Status::OK();
    for (char c : doc) {
      byte_wise = parser.Feed(std::string_view(&c, 1));
      if (!byte_wise.ok()) break;
    }
    if (byte_wise.ok()) byte_wise = parser.Finish();
    ASSERT_EQ(whole.code(), byte_wise.code())
        << "corpus[" << i << "]: whole=" << whole << " byte=" << byte_wise;
    ASSERT_EQ(whole.message(), byte_wise.message()) << "corpus[" << i << "]";
  }
}

TEST(SaxHostileTest, DownstreamPoisoningSurfacesThroughFeed) {
  // When the parser feeds a pipeline whose error channel is poisoned, Feed
  // reports that error instead of parsing on into a dead pipeline.
  ErrorChannel errors;
  SaxParser::Options options;
  options.errors = &errors;
  NullSink sink;
  SaxParser parser(options, &sink);
  ASSERT_TRUE(parser.Feed("<a>").ok());
  errors.Report(Status::Internal("stage blew up"));
  Status s = parser.Feed("x</a>");
  EXPECT_EQ(s.code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace xflux
