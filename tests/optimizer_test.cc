// The optimizer layer suite (DESIGN.md §10): plan-printer goldens for the
// Table 2 query classes, pass-manager unit tests (independence soundness
// on update-hitting schemas, reorder no-ops on non-commuting chains),
// lowering byte-identity with passes off, deterministic condition-id
// allocation under pass-driven permutation, eager-predicate semantics,
// and the seeded parity corpus optimized-vs-unoptimized.
//
// Parity iteration count is tunable: XFLUX_OPT_PARITY_ITERS=<seeds>
// (default 500 seeds per query class and corpus).

#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "core/transform_stage.h"
#include "tests/test_util.h"
#include "xquery/compiler.h"
#include "xquery/engine.h"
#include "xquery/parser.h"
#include "xquery/passes/cost_profile.h"
#include "xquery/passes/pass.h"
#include "xquery/plan.h"
#include "xquery/schema.h"

namespace xflux {
namespace {

PlanPtr Plan(const char* query) {
  auto ast = ParseQuery(query);
  EXPECT_TRUE(ast.ok()) << ast.status();
  return BuildPlan(*ast.value());
}

PlanPtr Optimized(const char* query, const OptimizerOptions& options) {
  PlanPtr plan = Plan(query);
  OptimizePlan(*plan, options);
  return plan;
}

// ---------------------------------------------------------------------------
// Plan-printer goldens: the Table 2 query classes (Q1-Q9) plus the
// stock-ticker query.  Pinned verbatim — BuildPlan and the printer are the
// contract every pass and the lowering build on.

struct Golden {
  const char* query;
  const char* plan;
};

const Golden kGoldens[] = {
    {"X//europe//item[location=\"Albania\"]/quantity",
     "step(child::quantity)\n"
     "  filter\n"
     "    step(descendant::item)\n"
     "      step(descendant::europe)\n"
     "        stream(X)\n"
     "    compare(equals \"Albania\")\n"
     "      step(child::location)\n"
     "        var\n"},
    {"X//item[location=\"Albania\"][payment=\"Cash\"]/location",
     "step(child::location)\n"
     "  filter\n"
     "    filter\n"
     "      step(descendant::item)\n"
     "        stream(X)\n"
     "      compare(equals \"Albania\")\n"
     "        step(child::location)\n"
     "          var\n"
     "    compare(equals \"Cash\")\n"
     "      step(child::payment)\n"
     "        var\n"},
    {"X//*[location=\"Albania\"]/quantity",
     "step(child::quantity)\n"
     "  filter\n"
     "    step(descendant::*)\n"
     "      stream(X)\n"
     "    compare(equals \"Albania\")\n"
     "      step(child::location)\n"
     "        var\n"},
    {"count(X//item[location=\"Albania\"]/..)",
     "count\n"
     "  step(parent::)\n"
     "    filter\n"
     "      step(descendant::item)\n"
     "        stream(X)\n"
     "      compare(equals \"Albania\")\n"
     "        step(child::location)\n"
     "          var\n"},
    {"count(X//item[location=\"Albania\"]/ancestor::europe)",
     "count\n"
     "  step(ancestor::europe)\n"
     "    filter\n"
     "      step(descendant::item)\n"
     "        stream(X)\n"
     "      compare(equals \"Albania\")\n"
     "        step(child::location)\n"
     "          var\n"},
    {"count(X//item[location=\"Albania\"]/ancestor::*//location)",
     "count\n"
     "  step(descendant::location)\n"
     "    step(ancestor::*)\n"
     "      filter\n"
     "        step(descendant::item)\n"
     "          stream(X)\n"
     "        compare(equals \"Albania\")\n"
     "          step(child::location)\n"
     "            var\n"},
    {"<result>{ for $c in X//item where $c/location = \"Albania\" "
     "return <item>{ $c/quantity, $c/payment }</item> }</result>",
     "element(result)\n"
     "  flwor(c)\n"
     "    step(descendant::item)\n"
     "      stream(X)\n"
     "    compare(equals \"Albania\")\n"
     "      step(child::location)\n"
     "        var(c)\n"
     "    element(item)\n"
     "      sequence\n"
     "        step(child::quantity)\n"
     "          var(c)\n"
     "        step(child::payment)\n"
     "          var(c)\n"},
    {"D//inproceedings[author=\"John Smith\"]/title",
     "step(child::title)\n"
     "  filter\n"
     "    step(descendant::inproceedings)\n"
     "      stream(D)\n"
     "    compare(equals \"John Smith\")\n"
     "      step(child::author)\n"
     "        var\n"},
    {"for $d in D//inproceedings where contains($d/author,\"Smith\") "
     "order by $d/year "
     "return ($d/year/text(),\": \",$d/title/text(),\"\\n\")",
     "flwor(d)\n"
     "  step(descendant::inproceedings)\n"
     "    stream(D)\n"
     "  compare(contains \"Smith\")\n"
     "    step(child::author)\n"
     "      var(d)\n"
     "  step(child::year)\n"
     "    var(d)\n"
     "  sequence\n"
     "    step(text::)\n"
     "      step(child::year)\n"
     "        var(d)\n"
     "    literal(: )\n"
     "    step(text::)\n"
     "      step(child::title)\n"
     "        var(d)\n"
     "    literal(\n)\n"},
    {"X//stock[name=\"IBM\"]/quote",
     "step(child::quote)\n"
     "  filter\n"
     "    step(descendant::stock)\n"
     "      stream(X)\n"
     "    compare(equals \"IBM\")\n"
     "      step(child::name)\n"
     "        var\n"},
};

TEST(PlanGoldens, TableTwoQueryClasses) {
  for (const Golden& g : kGoldens) {
    PlanPtr plan = Plan(g.query);
    EXPECT_EQ(PlanToString(*plan), g.plan) << g.query;
    // An un-annotated plan renders identically with annotations on: every
    // slot is still at its default.
    EXPECT_EQ(PlanToString(*plan, /*annotations=*/true), g.plan) << g.query;
    // The clone preserves annotations and shape alike.
    EXPECT_EQ(PlanToString(*ClonePlan(*plan)), g.plan) << g.query;
  }
}

TEST(PlanGoldens, AnnotatedQ2UnderXmarkSchema) {
  Schema schema = XMarkSchema();
  OptimizerOptions options;
  options.enabled = true;
  options.schema = &schema;
  PlanPtr plan = Optimized(
      "X//item[location=\"Albania\"][payment=\"Cash\"]/location", options);
  EXPECT_EQ(PlanToString(*plan, /*annotations=*/true),
            "step(child::location) [immune]\n"
            "  filter [immune] [sel=0.100]\n"
            "    filter [immune] [sel=0.100]\n"
            "      step(descendant::item) [immune]\n"
            "        stream(X)\n"
            "      compare(equals \"Albania\") [immune] [sel=0.100]\n"
            "        step(child::location) [immune]\n"
            "          var\n"
            "    compare(equals \"Cash\") [immune] [sel=0.100]\n"
            "      step(child::payment) [immune]\n"
            "        var\n");
}

// ---------------------------------------------------------------------------
// Update-independence soundness: a schema that declares updatable content
// must suppress immunity everywhere the analysis cannot prove disjointness.

TEST(UpdateIndependence, UpdatableContentSuppressesImmunity) {
  Schema books = BookstoreSchema();  // updatable = {author, price}
  OptimizerOptions options;
  options.enabled = true;
  options.schema = &books;
  // The condition reads author — an update target — and every stage's
  // reachable content includes book's updatable children.
  for (const char* query :
       {"X//book[author=\"Smith\"]/title", "X//book[publisher=\"Wiley\"]/title",
        "count(X//book)"}) {
    PlanPtr plan = Optimized(query, options);
    EXPECT_EQ(PlanToString(*plan, true).find("[immune]"), std::string::npos)
        << query << "\n" << PlanToString(*plan, true);
  }
  // In the FLWOR form the loop, its condition, and the title step all
  // touch updatable book content and must stay tracked.  The constructor
  // alone is immune: it runs upstream of the predicate, and the tracked
  // title step has already swallowed any author/price update brackets.
  PlanPtr plan = Optimized(
      "for $b in X//book where $b/author = \"Smith\" "
      "return <hit>{ $b/title }</hit>",
      options);
  std::string rendered = PlanToString(*plan, true);
  EXPECT_EQ(rendered.find("flwor(b) [immune]"), std::string::npos) << rendered;
  EXPECT_EQ(rendered.find("compare(equals \"Smith\") [immune]"),
            std::string::npos)
      << rendered;
  EXPECT_EQ(rendered.find("step(child::title) [immune]"), std::string::npos)
      << rendered;
  EXPECT_NE(rendered.find("element(hit) [immune]"), std::string::npos)
      << rendered;
}

TEST(UpdateIndependence, StockTickerQuoteIsNeverImmune) {
  Schema ticker = StockTickerSchema();  // updatable = {quote}
  OptimizerOptions options;
  options.enabled = true;
  options.schema = &ticker;
  PlanPtr plan = Optimized("X//stock[name=\"IBM\"]/quote", options);
  EXPECT_EQ(PlanToString(*plan, true).find("[immune]"), std::string::npos)
      << PlanToString(*plan, true);
}

TEST(UpdateIndependence, NoSchemaMeansNoImmunityMarks) {
  OptimizerOptions options;
  options.enabled = true;  // schema left null
  PlanPtr plan = Optimized(
      "X//item[location=\"Albania\"][payment=\"Cash\"]/location", options);
  EXPECT_EQ(PlanToString(*plan, true).find("[immune]"), std::string::npos);
}

TEST(UpdateIndependence, EmptyUpdatableSetMarksWholePlan) {
  Schema xmark = XMarkSchema();  // plain documents: updatable = {}
  OptimizerOptions options;
  options.enabled = true;
  options.schema = &xmark;
  PlanPtr plan = Optimized(
      "for $c in X//item where $c/location = \"Albania\" "
      "return <i>{ $c/quantity }</i>",
      options);
  std::string rendered = PlanToString(*plan, true);
  EXPECT_NE(rendered.find("flwor(c) [immune]"), std::string::npos) << rendered;
  // The loop variable is the tuple's context item, so the where condition
  // qualifies too.
  EXPECT_NE(rendered.find("compare(equals \"Albania\") [immune]"),
            std::string::npos)
      << rendered;
}

// ---------------------------------------------------------------------------
// Predicate reorder: profile- and heuristic-driven permutation of
// commuting chains, strict no-op everywhere else.

TEST(PredicateReorder, ProfileDrivenSwap) {
  Schema xmark = XMarkSchema();
  CostProfile profile;
  profile.Set("eq(\"Albania\")", 0.9);
  profile.Set("eq(\"Cash\")", 0.05);
  OptimizerOptions options;
  options.enabled = true;
  options.schema = &xmark;
  options.cost_profile = &profile;
  PlanPtr plan = Optimized(
      "X//item[location=\"Albania\"][payment=\"Cash\"]/location", options);
  // The Cash condition (sel 0.05) moves to the inner filter, Albania to
  // the outer; both filter nodes are flagged reordered.
  EXPECT_EQ(PlanToString(*plan, true),
            "step(child::location) [immune]\n"
            "  filter [immune] [sel=0.900] [reordered]\n"
            "    filter [immune] [sel=0.050] [reordered]\n"
            "      step(descendant::item) [immune]\n"
            "        stream(X)\n"
            "      compare(equals \"Cash\") [immune] [sel=0.050]\n"
            "        step(child::payment) [immune]\n"
            "          var\n"
            "    compare(equals \"Albania\") [immune] [sel=0.900]\n"
            "      step(child::location) [immune]\n"
            "        var\n");
}

TEST(PredicateReorder, HeuristicMovesEqualsBeforeContains) {
  OptimizerOptions options;
  options.enabled = true;  // no profile: heuristics (eq 0.1 < contains 0.3)
  PlanPtr plan = Optimized(
      "X//item[contains(location,\"Alb\")][payment=\"Cash\"]/quantity",
      options);
  std::string rendered = PlanToString(*plan, true);
  EXPECT_NE(rendered.find("[reordered]"), std::string::npos) << rendered;
  // The equals condition now sits on the inner (first-executed) filter.
  EXPECT_LT(rendered.find("compare(equals \"Cash\")"),
            rendered.find("compare(contains \"Alb\")"))
      << rendered;
}

TEST(PredicateReorder, AlreadyBestOrderIsUntouched) {
  OptimizerOptions options;
  options.enabled = true;
  PlanPtr plan = Optimized(
      "X//item[location=\"Albania\"][payment=\"Cash\"]/location", options);
  // Equal heuristic selectivities: the stable sort is the identity and no
  // node may be flagged.
  EXPECT_EQ(PlanToString(*plan, true).find("[reordered]"), std::string::npos);
}

TEST(PredicateReorder, BackwardAxisConditionFreezesChain) {
  OptimizerOptions options;
  options.enabled = true;
  // Heuristics alone would move the equals condition first, but the
  // contains condition reads the item's parent — evaluation leaves the
  // item's own content, so the chain must not be permuted.
  PlanPtr plan = Optimized(
      "X//item[contains(../name,\"x\")][payment=\"Cash\"]/quantity", options);
  std::string rendered = PlanToString(*plan, true);
  EXPECT_EQ(rendered.find("[reordered]"), std::string::npos) << rendered;
  EXPECT_LT(rendered.find("compare(contains \"x\")"),
            rendered.find("compare(equals \"Cash\")"))
      << rendered;
}

// ---------------------------------------------------------------------------
// Lowering: byte-identity with passes off, immune fast-path stages with
// them on, and deterministic condition ids under permutation.

std::vector<std::string> StageNames(Pipeline* pipeline) {
  std::vector<std::string> names;
  for (size_t i = 0; i < pipeline->stage_count(); ++i) {
    Filter* stage = pipeline->stage(i);
    std::string name = stage->StageName();
    auto* ts = dynamic_cast<TransformStage*>(stage);
    if (ts != nullptr && ts->immune()) name += " [immune]";
    names.push_back(std::move(name));
  }
  return names;
}

TEST(Lowering, PassesOffIsByteIdenticalToPlainCompilation) {
  Schema xmark = XMarkSchema();
  for (const Golden& g : kGoldens) {
    auto plain = CompileQuery(g.query);
    ASSERT_TRUE(plain.ok()) << plain.status() << " " << g.query;

    OptimizerOptions disabled;  // enabled = false
    auto off = CompileQueryOptimized(g.query, disabled);
    ASSERT_TRUE(off.ok()) << off.status();

    OptimizerOptions no_passes;  // enabled, but both passes toggled off
    no_passes.enabled = true;
    no_passes.schema = &xmark;
    no_passes.reorder = false;
    no_passes.independence = false;
    auto idle = CompileQueryOptimized(g.query, no_passes);
    ASSERT_TRUE(idle.ok()) << idle.status();

    // Stage names embed the operators' stream ids (clone bases, compare
    // literals), so equal sequences pin both structure and id assignment.
    std::vector<std::string> expect = StageNames(plain.value().pipeline.get());
    EXPECT_EQ(StageNames(off.value().pipeline.get()), expect) << g.query;
    EXPECT_EQ(StageNames(idle.value().pipeline.get()), expect) << g.query;
  }
}

TEST(Lowering, ImmunePlanUsesEagerPredicatesAndImmuneStages) {
  Schema xmark = XMarkSchema();
  OptimizerOptions options;
  options.enabled = true;
  options.schema = &xmark;
  auto compiled = CompileQueryOptimized(
      "X//item[location=\"Albania\"][payment=\"Cash\"]/location", options);
  ASSERT_TRUE(compiled.ok()) << compiled.status();
  Pipeline* pipeline = compiled.value().pipeline.get();
  size_t eager = 0;
  for (size_t i = 0; i < pipeline->stage_count(); ++i) {
    auto* ts = dynamic_cast<TransformStage*>(pipeline->stage(i));
    if (ts == nullptr) continue;  // clone stages carry no S5 state
    EXPECT_TRUE(ts->immune()) << "stage " << i;
    EXPECT_TRUE(ts->registry_passive()) << "stage " << i;
    if (ts->transformer()->Name().find("(eager)") != std::string::npos) {
      ++eager;
    }
  }
  EXPECT_EQ(eager, 2u);  // one per predicate
}

// Maps each compare stage's name to the clone base id feeding its
// condition (the "clone <in>-><base>" stage two slots upstream).
std::map<std::string, std::string> ConditionCloneIds(Pipeline* pipeline) {
  std::map<std::string, std::string> ids;
  std::string last_clone;
  for (size_t i = 0; i < pipeline->stage_count(); ++i) {
    std::string name = pipeline->stage(i)->StageName();
    if (name.rfind("clone ", 0) == 0) {
      last_clone = name.substr(name.find("->") + 2);
    } else if (name.rfind("eq(", 0) == 0 || name.rfind("contains(", 0) == 0) {
      ids[name] = last_clone;
    }
  }
  return ids;
}

TEST(Lowering, ConditionIdsAreStableAcrossProfilePermutations) {
  Schema xmark = XMarkSchema();
  const char* q2 = "X//item[location=\"Albania\"][payment=\"Cash\"]/location";

  CostProfile albania_first;
  albania_first.Set("eq(\"Albania\")", 0.05);
  albania_first.Set("eq(\"Cash\")", 0.9);
  CostProfile cash_first;
  cash_first.Set("eq(\"Albania\")", 0.9);
  cash_first.Set("eq(\"Cash\")", 0.05);

  std::map<std::string, std::string> seen;
  for (const CostProfile* profile : {&albania_first, &cash_first}) {
    OptimizerOptions options;
    options.enabled = true;
    options.schema = &xmark;
    options.cost_profile = profile;
    auto compiled = CompileQueryOptimized(q2, options);
    ASSERT_TRUE(compiled.ok()) << compiled.status();
    std::map<std::string, std::string> ids =
        ConditionCloneIds(compiled.value().pipeline.get());
    ASSERT_EQ(ids.size(), 2u);
    if (seen.empty()) {
      seen = ids;
    } else {
      // Different profiles put the conditions in different stage order,
      // but each condition keeps its clone base id (PR 6 id banding).
      EXPECT_EQ(ids, seen);
    }
  }
}

// ---------------------------------------------------------------------------
// Eager predicate semantics: the fast-path variant must keep and drop
// exactly what the optimistic predicate does, in both scopes.

Schema PlainBiblioSchema() {
  std::map<std::string, std::vector<std::string>> children;
  children["biblio"] = {"book"};
  children["book"] = {"publisher", "author", "price", "title"};
  return Schema("biblio", std::move(children), {});
}

std::string RunQuery(const char* query, const std::string& doc,
                     const QuerySession::Options& options) {
  auto session = QuerySession::Open(query, options);
  EXPECT_TRUE(session.ok()) << session.status();
  if (!session.ok()) return "<compile error>";
  Status status = session.value()->PushDocument(doc);
  EXPECT_TRUE(status.ok()) << status;
  auto text = session.value()->CurrentText();
  EXPECT_TRUE(text.ok()) << text.status();
  return text.ok() ? text.value() : "<error>";
}

TEST(EagerPredicate, ElementAndTupleScopeMatchOptimistic) {
  const std::string doc =
      "<biblio><book><author>Smith</author><title>T1</title></book>"
      "<book><author>Jones</author><title>T2</title></book>"
      "<book><author>Smith</author><title>T3</title></book></biblio>";
  Schema schema = PlainBiblioSchema();
  QuerySession::Options optimized;
  optimized.optimize = true;
  optimized.schema = &schema;
  const struct {
    const char* query;
    const char* expect;
  } cases[] = {
      {"X//book[author=\"Smith\"]/title",
       "<title>T1</title><title>T3</title>"},
      {"X//book[author=\"Nobody\"]/title", ""},
      {"for $b in X//book where $b/author = \"Smith\" "
       "return <hit>{ $b/title }</hit>",
       "<hit><title>T1</title></hit><hit><title>T3</title></hit>"},
      {"for $b in X//book where $b/author = \"Nobody\" "
       "return <hit>{ $b/title }</hit>",
       ""},
      {"count(X//book[author=\"Smith\"])", "2"},
  };
  for (const auto& c : cases) {
    EXPECT_EQ(RunQuery(c.query, doc, optimized), c.expect) << c.query;
    EXPECT_EQ(RunQuery(c.query, doc, QuerySession::Options()), c.expect)
        << c.query << " (plain)";
  }
}

// ---------------------------------------------------------------------------
// The parity corpus: seeded random bookstore inputs, optimized and plain
// sessions must render identical answers.  Two sweeps: update streams
// under the honest BookstoreSchema (immunity must stay out of the way of
// real updates), and plain documents under an updatable-free schema
// (immunity and the eager predicates fire everywhere they can).

int ParitySeeds() {
  if (const char* env = std::getenv("XFLUX_OPT_PARITY_ITERS")) {
    int v = std::atoi(env);
    if (v > 0) return v;
  }
  return 500;
}

const char* const kParityQueries[] = {
    "X//book[author=\"Smith\"]/title",
    "count(X//book)",
    "for $b in X//book where $b/author = \"Smith\" "
    "return <hit>{ $b/price }</hit>",
};

TEST(OptimizerParity, UpdateStreamsUnderHonestSchema) {
  Schema books = BookstoreSchema();
  const int seeds = ParitySeeds();
  for (const char* query : kParityQueries) {
    QuerySession::Options optimized;
    optimized.optimize = true;
    optimized.schema = &books;
    for (int seed = 1; seed <= seeds; ++seed) {
      EventVec stream = RandomUpdateStream(static_cast<uint64_t>(seed));
      auto plain = QuerySession::Open(query);
      auto opt = QuerySession::Open(query, optimized);
      ASSERT_TRUE(plain.ok() && opt.ok());
      plain.value()->PushAll(stream);
      opt.value()->PushAll(stream);
      auto a = plain.value()->CurrentText();
      auto b = opt.value()->CurrentText();
      ASSERT_TRUE(a.ok() && b.ok()) << query << " seed " << seed;
      ASSERT_EQ(a.value(), b.value()) << query << " seed " << seed;
      if (HasFatalFailure()) return;  // first repro is enough
    }
  }
}

TEST(OptimizerParity, PlainDocumentsUnderUpdatableFreeSchema) {
  Schema schema = PlainBiblioSchema();
  // A permuting profile on the two-predicate query exercises reordered
  // lowering (and its id preallocation) across the whole corpus.
  CostProfile swap;
  swap.Set("eq(\"Smith\")", 0.9);
  swap.Set("eq(\"10\")", 0.05);
  const int seeds = ParitySeeds();
  std::vector<const char*> queries(std::begin(kParityQueries),
                                   std::end(kParityQueries));
  queries.push_back("X//book[author=\"Smith\"][price=\"10\"]/title");
  for (const char* query : queries) {
    QuerySession::Options optimized;
    optimized.optimize = true;
    optimized.schema = &schema;
    optimized.cost_profile = &swap;
    for (int seed = 1; seed <= seeds; ++seed) {
      RandomStream corpus = MakeRandomBookStream(static_cast<uint64_t>(seed));
      ASSERT_FALSE(corpus.plain_xml.empty());
      std::string a = RunQuery(query, corpus.plain_xml, optimized);
      std::string b =
          RunQuery(query, corpus.plain_xml, QuerySession::Options());
      ASSERT_EQ(a, b) << query << " seed " << seed;
      if (HasFatalFailure()) return;
    }
  }
}

}  // namespace
}  // namespace xflux
