// The hostile-stream property suite: thousands of seeded mutated streams
// per query class, driven through guarded pipelines.  The properties are
// the robustness contract, not answer equality:
//
//  1. No input crashes (the suite runs under ASan+UBSan in CI).
//  2. The guard's output always satisfies ValidateUpdateStream under
//     kDropRegion / kResync, unless the guard escalated — in which case the
//     pipeline holds a clean non-OK Status.
//  3. A session that reports OK can always render its answer.
//  4. Unmutated streams are bit-identical through the guard (the oracle).
//
// Iteration count is tunable: XFLUX_FAULT_ITERS=<seeds> (default 350 seeds
// x 3 policies = 1050 mutated streams per query class).  When
// XFLUX_FAULT_JSON names a file, the aggregate drop/reject counters are
// dumped there for the CI fuzz-smoke artifact.

#include <cstdio>
#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

#include "core/protocol_guard.h"
#include "core/well_formed.h"
#include "test_util.h"
#include "testing/fault_injector.h"
#include "util/prng.h"
#include "xml/sax_parser.h"
#include "xquery/engine.h"

namespace xflux {
namespace {

int SeedCount() {
  if (const char* env = std::getenv("XFLUX_FAULT_ITERS")) {
    int v = std::atoi(env);
    if (v > 0) return v;
  }
  return 350;
}

// The compact volume generator (RandomUpdateStream) lives in test_util.h —
// the serial/parallel equivalence suite replays the same fault corpus.

struct FuzzTotals {
  uint64_t streams = 0;
  uint64_t mutations = 0;
  uint64_t poisoned = 0;
  uint64_t guard_violations = 0;
  uint64_t guard_dropped_events = 0;
  uint64_t guard_dropped_regions = 0;
  uint64_t guard_resyncs = 0;
};

FuzzTotals& Totals() {
  static FuzzTotals totals;
  return totals;
}

constexpr ProtocolGuard::Policy kPolicies[] = {
    ProtocolGuard::Policy::kFailFast, ProtocolGuard::Policy::kDropRegion,
    ProtocolGuard::Policy::kResync};

// Property 2: the guard alone turns any mutated stream into a valid one
// (or poisons cleanly).
void CheckGuardInvariant(const EventVec& mutated, ProtocolGuard::Policy policy,
                         uint64_t seed) {
  Pipeline pipeline;
  ProtocolGuard::Options options;
  options.policy = policy;
  auto* guard = pipeline.AddStage<ProtocolGuard>(pipeline.context(), options);
  CollectingSink sink;
  pipeline.SetSink(&sink);
  pipeline.PushAll(mutated);
  guard->Finish();  // the mutated stream may have been truncated mid-region

  FuzzTotals& totals = Totals();
  totals.guard_violations += guard->violations();
  totals.guard_dropped_events += guard->dropped_events();
  totals.guard_dropped_regions += guard->dropped_regions();
  totals.guard_resyncs += guard->resyncs();

  if (!pipeline.status().ok()) {
    ++totals.poisoned;
    EXPECT_NE(pipeline.status().code(), StatusCode::kOk);
    return;
  }
  if (policy == ProtocolGuard::Policy::kFailFast) {
    // Clean run: output is the input.
    EXPECT_EQ(sink.events().size(), mutated.size()) << "seed " << seed;
    return;
  }
  Status valid = ValidateUpdateStream(sink.events());
  EXPECT_TRUE(valid.ok()) << valid << "\nseed " << seed << " policy "
                          << static_cast<int>(policy) << "\nmutated "
                          << ToString(mutated) << "\nout "
                          << ToString(sink.events());
}

// Properties 1 and 3: a full guarded query session never crashes and can
// always render while it reports OK.
void CheckSessionSurvives(const char* query, const EventVec& mutated,
                          ProtocolGuard::Policy policy, uint64_t seed) {
  QuerySession::Options options;
  options.guard = true;
  options.guard_options.policy = policy;
  auto session = QuerySession::Open(query, options);
  ASSERT_TRUE(session.ok()) << session.status();
  session.value()->PushAll(mutated);
  session.value()->guard()->Finish();
  if (session.value()->status().ok()) {
    auto text = session.value()->CurrentText();
    EXPECT_TRUE(text.ok()) << text.status() << "\nseed " << seed << " policy "
                           << static_cast<int>(policy) << "\nmutated "
                           << ToString(mutated);
  }
}

class HostileStreams : public ::testing::TestWithParam<const char*> {};

TEST_P(HostileStreams, MutatedStreamsNeverCrashGuardedSessions) {
  const char* query = GetParam();
  const int seeds = SeedCount();
  FuzzTotals& totals = Totals();
  for (int seed = 1; seed <= seeds; ++seed) {
    EventVec clean = RandomUpdateStream(static_cast<uint64_t>(seed));
    ASSERT_TRUE(ValidateUpdateStream(clean).ok());
    // Alternate light/heavy mutation loads across seeds.
    FaultSpec spec =
        ParseFaultSpec(seed % 2 == 0 ? "heavy" : "light").value();
    for (ProtocolGuard::Policy policy : kPolicies) {
      FaultCounts counts;
      EventVec mutated = MutateStream(
          clean, spec,
          static_cast<uint64_t>(seed) * 31 + static_cast<int>(policy),
          &counts);
      ++totals.streams;
      totals.mutations += counts.total();
      CheckGuardInvariant(mutated, policy, static_cast<uint64_t>(seed));
      CheckSessionSurvives(query, mutated, policy,
                           static_cast<uint64_t>(seed));
      if (HasFatalFailure() || HasNonfatalFailure()) return;  // first repro
    }
  }
}

TEST_P(HostileStreams, UnmutatedStreamsPassGuardUntouched) {
  const char* query = GetParam();
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    EventVec clean = RandomUpdateStream(seed);
    QuerySession::Options guarded;
    guarded.guard = true;
    auto with = QuerySession::Open(query, guarded);
    auto without = QuerySession::Open(query);
    ASSERT_TRUE(with.ok() && without.ok());
    with.value()->PushAll(clean);
    without.value()->PushAll(clean);
    ASSERT_TRUE(with.value()->status().ok()) << with.value()->status();
    EXPECT_EQ(with.value()->guard()->violations(), 0u);
    auto a = with.value()->CurrentText();
    auto b = without.value()->CurrentText();
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(a.value(), b.value()) << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    QueryClasses, HostileStreams,
    ::testing::Values("X//book[author=\"Smith\"]/title", "count(X//book)",
                      "for $b in X//book where $b/author = \"Smith\" "
                      "return <hit>{ $b/price }</hit>"),
    [](const auto& info) { return "q" + std::to_string(info.index); });

// ---------------------------------------------------------------------------
// Byte-level fuzzing of the SAX layer.

TEST(SaxFuzz, RandomChunkingIsTransparent) {
  const std::string doc =
      "<biblio><book year=\"2008\"><author>Smith &amp; Jones</author>"
      "<!-- c --><title><![CDATA[a<b]]></title><price>42</price></book>"
      "</biblio>";
  auto whole = SaxParser::Tokenize(doc);
  ASSERT_TRUE(whole.ok()) << whole.status();
  for (uint64_t seed = 1; seed <= 200; ++seed) {
    CollectingSink sink;
    SaxParser parser(SaxParser::Options(), &sink);
    Status status;
    for (const std::string& chunk :
         SplitIntoRandomChunks(doc, seed, 1 + seed % 9)) {
      status = parser.Feed(chunk);
      ASSERT_TRUE(status.ok()) << status << " seed " << seed;
    }
    ASSERT_TRUE(parser.Finish().ok()) << parser.Finish() << " seed " << seed;
    EXPECT_EQ(sink.events(), whole.value()) << "seed " << seed;
  }
}

TEST(SaxFuzz, CorruptedBytesNeverCrash) {
  const std::string doc =
      "<biblio><book><author a=\"x&lt;\">Smith</author><price>10</price>"
      "</book><book><author>Jones</author></book></biblio>";
  for (uint64_t seed = 1; seed <= 400; ++seed) {
    double rate = seed % 2 == 0 ? 0.05 : 0.01;
    std::string corrupt = CorruptBytes(doc, seed, rate);
    SaxParser::Options options;
    options.max_token_bytes = 1 << 16;
    CollectingSink sink;
    SaxParser parser(options, &sink);
    Status status = Status::OK();
    for (const std::string& chunk :
         SplitIntoRandomChunks(corrupt, seed ^ 0x9E3779B9, 5)) {
      status = parser.Feed(chunk);
      if (!status.ok()) break;
    }
    if (status.ok()) status = parser.Finish();
    if (status.ok()) {
      // Whatever survived must be a well-formed event stream.
      EXPECT_TRUE(CheckWellFormed(sink.events(), 0).ok())
          << "seed " << seed << "\ndoc: " << corrupt;
    } else {
      // Errors latch: feeding more input must not revive the parser.
      EXPECT_EQ(parser.Feed("<more/>").code(), status.code());
    }
  }
}

TEST(SaxFuzz, CorruptedDocumentsThroughGuardedSession) {
  const std::string doc =
      "<biblio><book><author>Smith</author><title>T</title></book></biblio>";
  for (uint64_t seed = 1; seed <= 200; ++seed) {
    QuerySession::Options options;
    options.guard = true;
    options.guard_options.policy = ProtocolGuard::Policy::kDropRegion;
    auto session = QuerySession::Open("X//author", options);
    ASSERT_TRUE(session.ok());
    Status status =
        session.value()->PushDocument(CorruptBytes(doc, seed, 0.03));
    if (status.ok()) {
      EXPECT_TRUE(session.value()->CurrentText().ok());
    }
  }
}

// Dumps the aggregate counters for the CI artifact when XFLUX_FAULT_JSON
// is set.  A global environment's TearDown is the only hook guaranteed to
// run after the parameterized sweeps (gtest registers TEST_P
// instantiations after plain TESTs, so a "last" TEST would run first).
class FuzzReportEnvironment : public ::testing::Environment {
 public:
  void TearDown() override {
    const char* path = std::getenv("XFLUX_FAULT_JSON");
    if (path == nullptr) return;
    const FuzzTotals& totals = Totals();
    std::FILE* f = std::fopen(path, "w");
    ASSERT_NE(f, nullptr) << "cannot open " << path;
    std::fprintf(
        f,
        "{\"streams\": %llu, \"mutations\": %llu, \"poisoned\": %llu, "
        "\"guard_violations\": %llu, \"guard_dropped_events\": %llu, "
        "\"guard_dropped_regions\": %llu, \"guard_resyncs\": %llu}\n",
        static_cast<unsigned long long>(totals.streams),
        static_cast<unsigned long long>(totals.mutations),
        static_cast<unsigned long long>(totals.poisoned),
        static_cast<unsigned long long>(totals.guard_violations),
        static_cast<unsigned long long>(totals.guard_dropped_events),
        static_cast<unsigned long long>(totals.guard_dropped_regions),
        static_cast<unsigned long long>(totals.guard_resyncs));
    std::fclose(f);
  }
};

const ::testing::Environment* const kFuzzReportEnv =
    ::testing::AddGlobalTestEnvironment(new FuzzReportEnvironment());

}  // namespace
}  // namespace xflux
