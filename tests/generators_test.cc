#include "data/generators.h"

#include <gtest/gtest.h>

#include "core/well_formed.h"
#include "xml/sax_parser.h"
#include "xquery/engine.h"

namespace xflux {
namespace {

TEST(XmarkGenTest, ProducesWellFormedXml) {
  XmarkOptions options;
  options.items_per_region = 10;
  std::string doc = GenerateXmark(options);
  auto events = SaxParser::Tokenize(doc);
  ASSERT_TRUE(events.ok()) << events.status();
  EXPECT_TRUE(CheckWellFormed(events.value(), 0).ok());
}

TEST(XmarkGenTest, DeterministicInSeed) {
  XmarkOptions options;
  options.items_per_region = 5;
  EXPECT_EQ(GenerateXmark(options), GenerateXmark(options));
  XmarkOptions other = options;
  other.seed = 43;
  EXPECT_NE(GenerateXmark(options), GenerateXmark(other));
}

TEST(XmarkGenTest, HasExpectedVocabulary) {
  XmarkOptions options;
  options.items_per_region = 20;
  options.albania_fraction = 0.5;
  std::string doc = GenerateXmark(options);
  auto count = RunQueryOnXml("count(X//item)", doc);
  ASSERT_TRUE(count.ok()) << count.status();
  EXPECT_EQ(count.value(), "120");  // 6 regions x 20
  auto albania = RunQueryOnXml(
      "count(X//item[location=\"Albania\"])", doc);
  ASSERT_TRUE(albania.ok());
  int hits = std::stoi(albania.value());
  EXPECT_GT(hits, 20);  // ~50% of 120, wide margin
  EXPECT_LT(hits, 110);
}

TEST(XmarkGenTest, RecursiveDescriptionsNestParlists) {
  XmarkOptions options;
  options.items_per_region = 10;
  options.max_description_depth = 3;
  std::string doc = GenerateXmark(options);
  EXPECT_NE(doc.find("<parlist><listitem><parlist>"), std::string::npos);
}

TEST(XmarkGenTest, SizeKnobIsRoughlyAccurate) {
  for (size_t target : {100 * 1024ul, 1024 * 1024ul}) {
    std::string doc = GenerateXmark(XmarkOptionsForBytes(target));
    EXPECT_GT(doc.size(), target / 2) << target;
    EXPECT_LT(doc.size(), target * 2) << target;
  }
}

TEST(DblpGenTest, ProducesWellFormedXmlWithSmiths) {
  DblpOptions options;
  options.entries = 300;
  options.smith_fraction = 0.1;
  options.john_smith_fraction = 0.05;
  std::string doc = GenerateDblp(options);
  auto events = SaxParser::Tokenize(doc);
  ASSERT_TRUE(events.ok()) << events.status();
  EXPECT_TRUE(CheckWellFormed(events.value(), 0).ok());
  EXPECT_NE(doc.find("John Smith"), std::string::npos);

  auto count = RunQueryOnXml("count(D//inproceedings)", doc);
  ASSERT_TRUE(count.ok());
  EXPECT_GT(std::stoi(count.value()), 100);
}

TEST(DblpGenTest, DeterministicInSeed) {
  DblpOptions options;
  options.entries = 50;
  EXPECT_EQ(GenerateDblp(options), GenerateDblp(options));
}

TEST(StockTickerTest, StreamValidatesAndMaterializes) {
  StockTickerOptions options;
  options.symbols = 5;
  options.updates = 40;
  EventVec stream = GenerateStockTicker(options);
  ASSERT_TRUE(ValidateUpdateStream(stream).ok())
      << ValidateUpdateStream(stream);
}

TEST(StockTickerTest, QueryTracksLatestQuote) {
  StockTickerOptions options;
  options.symbols = 3;
  options.updates = 30;
  EventVec stream = GenerateStockTicker(options);
  auto session = QuerySession::Open("X//stock[name=\"IBM\"]/quote");
  ASSERT_TRUE(session.ok()) << session.status();
  session.value()->PushAll(stream);
  ASSERT_TRUE(session.value()->display_status().ok())
      << session.value()->display_status();
  std::string text = session.value()->CurrentText().value();
  // Exactly one quote, and it reflects the last IBM update in the stream.
  EXPECT_EQ(text.find("<quote>"), 0u);
  EXPECT_EQ(text.find("<quote>", 1), std::string::npos);
}

}  // namespace
}  // namespace xflux
