// Pipeline-parallel execution tests:
//
//  1. SpscQueue unit behavior — FIFO order, bounded-buffer backpressure
//     (a full ring stalls the producer), and the Close/drain shutdown
//     protocol.
//  2. The determinism contract: a threaded run produces byte-identical
//     output (answer events, answer text, final Status) to the serial run,
//     for every query class the property sweeps cover, over the same random
//     corpus — including hostile mutated streams through guarded sessions
//     (the fault corpus; XFLUX_FAULT_ITERS-gated, CI runs 500 seeds).
//  3. Observability: per-segment queue-depth high-water marks surface
//     through Pipeline::QueueHighWaterMarks and the qhwm StageStats column.

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/protocol_guard.h"
#include "test_util.h"
#include "testing/fault_injector.h"
#include "util/spsc_queue.h"
#include "xquery/engine.h"

namespace xflux {
namespace {

// ---------------------------------------------------------------------------
// SpscQueue.

TEST(SpscQueue, OrderedDelivery) {
  SpscQueue<int> q(4);
  std::thread producer([&] {
    for (int i = 0; i < 100; ++i) ASSERT_TRUE(q.Push(i));
    q.Close();
  });
  int expected = 0;
  int value = -1;
  while (q.Pop(&value)) {
    EXPECT_EQ(value, expected);
    ++expected;
  }
  EXPECT_EQ(expected, 100);
  producer.join();
  EXPECT_LE(q.high_water(), q.capacity());
}

TEST(SpscQueue, BackpressureWithTinyCapacity) {
  SpscQueue<int> q(1);
  std::atomic<int> produced{0};
  std::thread producer([&] {
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(q.Push(i));
      produced.fetch_add(1, std::memory_order_relaxed);
    }
    q.Close();
  });
  // With capacity 1 the producer lands at most one element and then stalls
  // inside the second Push until the consumer drains — bounded memory no
  // matter how fast the producer is.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_LE(produced.load(std::memory_order_relaxed), 2);

  int expected = 0;
  int value = -1;
  while (q.Pop(&value)) {
    EXPECT_EQ(value, expected);
    ++expected;
  }
  EXPECT_EQ(expected, 100);
  producer.join();
  EXPECT_EQ(q.high_water(), 1u);
}

TEST(SpscQueue, CloseReleasesConsumerAfterDrain) {
  SpscQueue<int> q(8);
  ASSERT_TRUE(q.Push(1));
  ASSERT_TRUE(q.Push(2));
  ASSERT_TRUE(q.Push(3));
  q.Close();
  EXPECT_FALSE(q.Push(4));  // closed: producer gives up
  int value = 0;
  EXPECT_TRUE(q.Pop(&value));
  EXPECT_EQ(value, 1);
  EXPECT_TRUE(q.Pop(&value));
  EXPECT_TRUE(q.Pop(&value));
  EXPECT_EQ(value, 3);
  EXPECT_FALSE(q.Pop(&value));  // closed + drained: end of stream
}

TEST(SpscQueue, PopWithTimeoutExpiresOnEmptyQueue) {
  SpscQueue<int> q(4);
  int value = -1;
  bool timed_out = false;
  auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(q.PopWithTimeout(&value, 20, &timed_out));
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_TRUE(timed_out);
  EXPECT_GE(elapsed.count(), 15);  // deadline honored, not an instant fail
  EXPECT_EQ(value, -1);            // output untouched on timeout
}

TEST(SpscQueue, PopWithTimeoutDeliversBufferedAndClosedStates) {
  SpscQueue<int> q(4);
  ASSERT_TRUE(q.Push(7));
  int value = 0;
  bool timed_out = true;
  EXPECT_TRUE(q.PopWithTimeout(&value, 1000, &timed_out));
  EXPECT_EQ(value, 7);
  EXPECT_FALSE(timed_out);
  // Closed + drained reports end-of-stream, not a timeout: the consumer
  // can tell "deadline" from "producer finished".
  q.Close();
  EXPECT_FALSE(q.PopWithTimeout(&value, 1000, &timed_out));
  EXPECT_FALSE(timed_out);
}

TEST(SpscQueue, PopWithTimeoutWakesOnLatePush) {
  SpscQueue<int> q(4);
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    ASSERT_TRUE(q.Push(42));
  });
  int value = 0;
  bool timed_out = true;
  EXPECT_TRUE(q.PopWithTimeout(&value, 5000, &timed_out));
  EXPECT_EQ(value, 42);
  EXPECT_FALSE(timed_out);
  producer.join();
}

// ---------------------------------------------------------------------------
// Serial/parallel equivalence.

/// Everything observable about one finished session run.
struct SessionOutput {
  EventVec events;      // CurrentEvents (oids included)
  bool text_ok = false;
  std::string text;     // CurrentText when text_ok
  StatusCode code = StatusCode::kOk;
  std::string status_text;
};

struct SessionConfig {
  int threads = 0;
  size_t queue_capacity = 64;
  size_t batch_events = 64;
  bool accept_source_updates = true;
  bool guard = false;
  ProtocolGuard::Policy policy = ProtocolGuard::Policy::kFailFast;
  bool instrumentation = false;
};

SessionOutput RunSession(const char* query, const EventVec& input,
                         const SessionConfig& config) {
  QuerySession::Options options;
  options.threads = config.threads;
  options.queue_capacity = config.queue_capacity;
  options.batch_events = config.batch_events;
  options.accept_source_updates = config.accept_source_updates;
  options.guard = config.guard;
  options.guard_options.policy = config.policy;
  options.instrumentation = config.instrumentation;
  auto session = QuerySession::Open(query, options);
  SessionOutput out;
  if (!session.ok()) {
    ADD_FAILURE() << session.status();
    return out;
  }
  session.value()->PushAll(input);
  // Finish drains the threaded run (no-op in serial), so both arms follow
  // the same call sequence; the guard flush then dispatches serially.
  session.value()->Finish();
  if (config.guard) session.value()->guard()->Finish();
  out.events = session.value()->CurrentEvents();
  auto text = session.value()->CurrentText();
  out.text_ok = text.ok();
  if (text.ok()) out.text = text.value();
  const Status& status = session.value()->status();
  out.code = status.code();
  std::ostringstream status_text;
  status_text << status;
  out.status_text = status_text.str();
  return out;
}

void ExpectIdentical(const SessionOutput& serial, const SessionOutput& parallel,
                     const char* query, uint64_t seed, int threads) {
  EXPECT_EQ(parallel.code, serial.code)
      << query << " seed " << seed << " threads " << threads;
  EXPECT_EQ(parallel.status_text, serial.status_text)
      << query << " seed " << seed << " threads " << threads;
  EXPECT_EQ(parallel.text_ok, serial.text_ok)
      << query << " seed " << seed << " threads " << threads;
  EXPECT_EQ(parallel.text, serial.text)
      << query << " seed " << seed << " threads " << threads;
  EXPECT_EQ(parallel.events, serial.events)
      << query << " seed " << seed << " threads " << threads
      << "\nserial: " << ToString(serial.events)
      << "\nparallel: " << ToString(parallel.events);
}

// Every query class from the property sweeps (GoldenEquivalence +
// StreamInvariants), so the determinism claim covers paths, predicates,
// aggregates, FLWOR, order-by and constructors.
constexpr const char* kEquivalenceQueries[] = {
    "X//book[author=\"Smith\"]/title",
    "count(X//book[author=\"Smith\"])",
    "X//book[publisher=\"Wiley\"][author=\"Smith\"]/price",
    "X//author",
    "X//book/price",
    "count(X//book)",
    "sum(X//price)",
    "for $b in X//book where $b/author = \"Smith\" "
    "return <hit>{ $b/price }</hit>",
    "for $b in X//book order by $b/price return $b/author",
    "<all>{ for $b in X//book return <b>{ $b/author, $b/price }</b> }</all>",
};

class SerialParallelEquivalence
    : public ::testing::TestWithParam<const char*> {};

TEST_P(SerialParallelEquivalence, ThreadedRunsMatchSerialByteForByte) {
  const char* query = GetParam();
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    RandomStream stream = MakeRandomBookStream(seed);
    SessionOutput serial = RunSession(query, stream.events, SessionConfig{});
    for (int threads : {1, 2, 4}) {
      SessionConfig config;
      config.threads = threads;
      SessionOutput parallel = RunSession(query, stream.events, config);
      ExpectIdentical(serial, parallel, query, seed, threads);
    }
  }
}

TEST_P(SerialParallelEquivalence, FixedSourceRegionsMatchSerial) {
  // accept_source_updates = false classifies every source region fixed at
  // injection; the feeder broadcasts that fact to every segment, so the
  // parallel eviction decisions must land identically.
  const char* query = GetParam();
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    RandomStream stream = MakeRandomBookStream(seed);
    SessionConfig serial_config;
    serial_config.accept_source_updates = false;
    SessionOutput serial = RunSession(query, stream.events, serial_config);
    SessionConfig config = serial_config;
    config.threads = 4;
    SessionOutput parallel = RunSession(query, stream.events, config);
    ExpectIdentical(serial, parallel, query, seed, 4);
  }
}

TEST_P(SerialParallelEquivalence, TinyQueuesForceBackpressureNotDivergence) {
  // capacity-1 queues with 2-event batches maximize producer stalls and
  // boundary flushes — the scheduling extreme must not change the answer.
  const char* query = GetParam();
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    RandomStream stream = MakeRandomBookStream(seed);
    SessionOutput serial = RunSession(query, stream.events, SessionConfig{});
    SessionConfig config;
    config.threads = 4;
    config.queue_capacity = 1;
    config.batch_events = 2;
    SessionOutput parallel = RunSession(query, stream.events, config);
    ExpectIdentical(serial, parallel, query, seed, 4);
  }
}

INSTANTIATE_TEST_SUITE_P(QueryClasses, SerialParallelEquivalence,
                         ::testing::ValuesIn(kEquivalenceQueries),
                         [](const auto& info) {
                           return "q" + std::to_string(info.index);
                         });

// ---------------------------------------------------------------------------
// Fault-corpus equivalence: hostile mutated streams through guarded
// sessions, serial vs threads=4.  Poisoning must drain identically — the
// paper-facing contract is that parallelism changes throughput, never the
// error behavior.

int FaultSeedCount() {
  if (const char* env = std::getenv("XFLUX_FAULT_ITERS")) {
    int v = std::atoi(env);
    if (v > 0) return v;
  }
  return 100;  // CI fuzz-smoke raises this to 500
}

class ParallelFaultEquivalence
    : public ::testing::TestWithParam<const char*> {};

TEST_P(ParallelFaultEquivalence, MutatedStreamsDrainIdentically) {
  const char* query = GetParam();
  constexpr ProtocolGuard::Policy kPolicies[] = {
      ProtocolGuard::Policy::kFailFast, ProtocolGuard::Policy::kDropRegion,
      ProtocolGuard::Policy::kResync};
  const int seeds = FaultSeedCount();
  for (int seed = 1; seed <= seeds; ++seed) {
    EventVec clean = RandomUpdateStream(static_cast<uint64_t>(seed));
    FaultSpec spec = ParseFaultSpec(seed % 2 == 0 ? "heavy" : "light").value();
    for (ProtocolGuard::Policy policy : kPolicies) {
      EventVec mutated = MutateStream(
          clean, spec,
          static_cast<uint64_t>(seed) * 31 + static_cast<int>(policy),
          nullptr);
      SessionConfig serial_config;
      serial_config.guard = true;
      serial_config.policy = policy;
      SessionOutput serial = RunSession(query, mutated, serial_config);
      SessionConfig config = serial_config;
      config.threads = 4;
      SessionOutput parallel = RunSession(query, mutated, config);
      ExpectIdentical(serial, parallel, query, static_cast<uint64_t>(seed),
                      4);
      if (HasFatalFailure() || HasNonfatalFailure()) return;  // first repro
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    HostileQueries, ParallelFaultEquivalence,
    ::testing::Values("X//book[author=\"Smith\"]/title", "count(X//book)",
                      "for $b in X//book where $b/author = \"Smith\" "
                      "return <hit>{ $b/price }</hit>"),
    [](const auto& info) { return "q" + std::to_string(info.index); });

// ---------------------------------------------------------------------------
// Observability of the queues.

TEST(ParallelObservability, QueueHighWaterMarksSurface) {
  SessionConfig config;
  config.threads = 2;
  config.instrumentation = true;
  QuerySession::Options options;
  options.threads = config.threads;
  options.instrumentation = true;
  auto session = QuerySession::Open("X//book/price", options);
  ASSERT_TRUE(session.ok()) << session.status();
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    session.value()->PushAll(MakeRandomBookStream(seed).events);
  }
  session.value()->Finish();

  std::vector<size_t> marks = session.value()->pipeline()->QueueHighWaterMarks();
  ASSERT_FALSE(marks.empty());
  // Something actually flowed through the first segment's queue.
  EXPECT_GE(marks.front(), 1u);

  // The per-stage table and JSON carry the qhwm column.
  EXPECT_NE(session.value()->stats()->ToTable().find("qhwm"),
            std::string::npos);
  EXPECT_NE(session.value()->stats()->ToJson().find("queue_depth_hwm"),
            std::string::npos);
}

TEST(ParallelObservability, SerialRunsReportNoQueues) {
  auto session = QuerySession::Open("X//author");
  ASSERT_TRUE(session.ok());
  session.value()->PushAll(MakeRandomBookStream(1).events);
  EXPECT_TRUE(session.value()->pipeline()->QueueHighWaterMarks().empty());
  EXPECT_FALSE(session.value()->pipeline()->parallel());
}

}  // namespace
}  // namespace xflux
