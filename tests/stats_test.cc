// Tests for the per-stage observability layer: StageStats counters and
// timing, the instrumentation switch, the TraceSink ring, Pipeline's
// typed AddStage/InsertAfter, and the JSON exports.

#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "core/event_sink.h"
#include "core/pipeline.h"
#include "core/trace_sink.h"
#include "tests/test_util.h"
#include "util/json.h"
#include "util/stage_stats.h"
#include "xquery/engine.h"

namespace xflux {
namespace {

// Rough well-formedness check without a parser: the exports only emit
// escaped strings and numbers, so balanced delimiters outside strings is
// what can go structurally wrong.
bool BalancedJson(const std::string& json) {
  int depth = 0;
  bool in_string = false;
  for (size_t i = 0; i < json.size(); ++i) {
    char c = json[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    if (depth < 0) return false;
  }
  return depth == 0 && !in_string && !json.empty();
}

TEST(StageStatsTest, CountersSplitSimpleAndUpdateEvents) {
  Pipeline pipeline;
  pipeline.context()->set_instrumentation(true);
  TraceSink* a = pipeline.AddStage<TraceSink>(pipeline.context());
  TraceSink* b = pipeline.AddStage<TraceSink>(pipeline.context());
  CollectingSink sink;
  pipeline.SetSink(&sink);

  pipeline.Push(Event::StartElement(0, "a"));
  pipeline.Push(Event::StartMutable(0, 7));
  pipeline.Push(Event::Characters(7, "x"));
  pipeline.Push(Event::EndMutable(0, 7));
  pipeline.Push(Event::EndElement(0, "a"));

  ASSERT_NE(a->stage_stats(), nullptr);
  ASSERT_NE(b->stage_stats(), nullptr);
  // 3 simple events (sE, cD, eE) and 2 update events (sM, eM), forwarded
  // unchanged by both taps.
  for (const StageStats* s : {a->stage_stats(), b->stage_stats()}) {
    EXPECT_EQ(s->in_simple, 3u);
    EXPECT_EQ(s->in_update, 2u);
    EXPECT_EQ(s->out_simple, 3u);
    EXPECT_EQ(s->out_update, 2u);
    EXPECT_EQ(s->events_in(), 5u);
  }
  EXPECT_EQ(sink.events().size(), 5u);
  // Registration order is pipeline order.
  EXPECT_EQ(a->stage_stats()->index, 0);
  EXPECT_EQ(b->stage_stats()->index, 1);
}

TEST(StageStatsTest, WallTimeAccumulatesMonotonically) {
  Pipeline pipeline;
  pipeline.context()->set_instrumentation(true);
  TraceSink* tap = pipeline.AddStage<TraceSink>(pipeline.context());
  NullSink sink;
  pipeline.SetSink(&sink);

  for (int i = 0; i < 100; ++i) pipeline.Push(Event::Characters(0, "x"));
  const StageStats* s = tap->stage_stats();
  uint64_t first = s->wall_ns;
  EXPECT_GT(first, 0u);
  for (int i = 0; i < 100; ++i) pipeline.Push(Event::Characters(0, "x"));
  EXPECT_GE(s->wall_ns, first);
  // Self time never exceeds inclusive time.
  EXPECT_LE(s->self_ns(), s->wall_ns);
}

TEST(StageStatsTest, DisabledInstrumentationLeavesStatsUntouched) {
  Pipeline pipeline;  // instrumentation defaults to off
  TraceSink* tap = pipeline.AddStage<TraceSink>(pipeline.context());
  CollectingSink sink;
  pipeline.SetSink(&sink);

  for (int i = 0; i < 50; ++i) pipeline.Push(Event::Characters(0, "x"));

  // Events still flow; the record exists but every counter stays zero.
  EXPECT_EQ(sink.events().size(), 50u);
  const StageStats* s = tap->stage_stats();
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->events_in(), 0u);
  EXPECT_EQ(s->events_out(), 0u);
  EXPECT_EQ(s->wall_ns, 0u);
  EXPECT_EQ(s->adjust_calls, 0u);
}

TEST(StageStatsTest, RegistryResetZeroesCountersButKeepsNames) {
  Pipeline pipeline;
  pipeline.context()->set_instrumentation(true);
  TraceSink* tap = pipeline.AddStage<TraceSink>(
      pipeline.context(), TraceSink::Options{4, "tap"});
  NullSink sink;
  pipeline.SetSink(&sink);
  pipeline.Push(Event::Characters(0, "x"));
  EXPECT_EQ(tap->stage_stats()->events_in(), 1u);

  pipeline.context()->stats()->Reset();
  EXPECT_EQ(tap->stage_stats()->events_in(), 0u);
  EXPECT_EQ(tap->stage_stats()->name, "tap");
  EXPECT_EQ(tap->stage_stats()->index, 0);
}

TEST(TraceSinkTest, RingTruncatesToCapacityKeepingNewest) {
  Pipeline pipeline;
  TraceSink* tap = pipeline.AddStage<TraceSink>(
      pipeline.context(), TraceSink::Options{4, "tap"});
  NullSink sink;
  pipeline.SetSink(&sink);

  for (int i = 0; i < 10; ++i) {
    pipeline.Push(Event::Characters(0, std::to_string(i)));
  }
  EXPECT_EQ(tap->events_seen(), 10u);
  EXPECT_EQ(tap->events_dropped(), 6u);

  EventVec window = tap->Snapshot();
  ASSERT_EQ(window.size(), 4u);
  // Oldest-first: events 6..9 survive.
  for (size_t i = 0; i < window.size(); ++i) {
    EXPECT_EQ(window[i].chars(), std::to_string(6 + i));
  }

  std::string dump = tap->Dump();
  EXPECT_NE(dump.find("tap: last 4 of 10 events"), std::string::npos);
  EXPECT_NE(dump.find("(6 older dropped)"), std::string::npos);
  EXPECT_NE(dump.find("#6 "), std::string::npos);
  EXPECT_NE(dump.find("#9 "), std::string::npos);
}

TEST(TraceSinkTest, BelowCapacityNothingDrops) {
  Pipeline pipeline;
  TraceSink* tap = pipeline.AddStage<TraceSink>(
      pipeline.context(), TraceSink::Options{8, "tap"});
  NullSink sink;
  pipeline.SetSink(&sink);
  pipeline.Push(Event::Characters(0, "only"));
  EXPECT_EQ(tap->events_seen(), 1u);
  EXPECT_EQ(tap->events_dropped(), 0u);
  ASSERT_EQ(tap->Snapshot().size(), 1u);
  EXPECT_EQ(tap->Snapshot()[0].chars(), "only");
}

TEST(PipelineApiTest, InsertAfterTapsAnExistingChain) {
  Pipeline pipeline;
  pipeline.AddStage<TraceSink>(pipeline.context(),
                               TraceSink::Options{4, "first"});
  pipeline.AddStage<TraceSink>(pipeline.context(),
                               TraceSink::Options{4, "last"});
  CollectingSink sink;
  pipeline.SetSink(&sink);

  auto tap = std::make_unique<TraceSink>(pipeline.context(),
                                         TraceSink::Options{4, "mid"});
  TraceSink* mid = static_cast<TraceSink*>(pipeline.InsertAfter(
      0, std::move(tap)));
  ASSERT_EQ(pipeline.stage_count(), 3u);
  EXPECT_EQ(pipeline.stage(1), mid);

  pipeline.Push(Event::Characters(0, "x"));
  EXPECT_EQ(mid->events_seen(), 1u);
  EXPECT_EQ(sink.events().size(), 1u);
}

TEST(PipelineApiTest, AddStageReturnsConcreteType) {
  Pipeline pipeline;
  // The returned pointer is TraceSink*, not Filter*: its concrete members
  // are usable without a cast.
  TraceSink* tap = pipeline.AddStage<TraceSink>(pipeline.context());
  NullSink sink;
  pipeline.SetSink(&sink);
  pipeline.Push(Event::Characters(0, "x"));
  EXPECT_EQ(tap->events_seen(), 1u);
}

TEST(StatsJsonTest, RegistryAndMetricsExportBalancedJson) {
  QuerySession::Options options;
  options.instrumentation = true;
  auto session = QuerySession::Open("count(X//item)", options);
  ASSERT_TRUE(session.ok()) << session.status();
  ASSERT_TRUE(
      session.value()->PushDocument("<X><item/><item/></X>").ok());

  StatsRegistry* stats = session.value()->stats();
  ASSERT_GT(stats->size(), 0u);
  EXPECT_GT(stats->stage(0).events_in(), 0u);

  std::string stages_json = stats->ToJson();
  EXPECT_TRUE(BalancedJson(stages_json)) << stages_json;
  EXPECT_EQ(stages_json.front(), '[');
  EXPECT_NE(stages_json.find("\"adjust_calls\""), std::string::npos);

  std::string metrics_json = session.value()->metrics()->ToJson();
  EXPECT_TRUE(BalancedJson(metrics_json)) << metrics_json;
  EXPECT_NE(metrics_json.find("\"transformer_calls\""), std::string::npos);

  // The human table lists every stage by name.
  std::string table = stats->ToTable();
  for (size_t i = 0; i < stats->size(); ++i) {
    EXPECT_NE(table.find(stats->stage(i).name), std::string::npos)
        << "missing stage in table: " << stats->stage(i).name;
  }
}

TEST(StatsJsonTest, ServiceCountersMergeAndExport) {
  // The admission/shed/timeout counters behave exactly like the guard
  // counters they sit next to: monotone, additive under MergeFrom, and
  // present in both ToJson and (once non-zero) ToString.
  Metrics a;
  a.CountAdmissionReject();
  a.CountAdmissionReject();
  a.CountShedTier(1);
  a.CountShedTier(2);
  a.CountShedTier(2);
  a.CountShedTier(3);
  a.CountSessionTimeout();
  EXPECT_EQ(a.admission_rejects(), 2u);
  EXPECT_EQ(a.shed_tier(1), 1u);
  EXPECT_EQ(a.shed_tier(2), 2u);
  EXPECT_EQ(a.shed_tier(3), 1u);
  EXPECT_EQ(a.session_timeouts(), 1u);
  // Out-of-range tiers clamp into the boundary counters and read as 0.
  a.CountShedTier(0);
  a.CountShedTier(9);
  EXPECT_EQ(a.shed_tier(1), 2u);
  EXPECT_EQ(a.shed_tier(3), 2u);
  EXPECT_EQ(a.shed_tier(0), 0u);
  EXPECT_EQ(a.shed_tier(4), 0u);

  Metrics b;
  b.CountShedTier(2);
  b.CountSessionTimeout();
  b.MergeFrom(a);
  EXPECT_EQ(b.admission_rejects(), 2u);
  EXPECT_EQ(b.shed_tier(2), 3u);
  EXPECT_EQ(b.session_timeouts(), 2u);

  std::string json = b.ToJson();
  EXPECT_TRUE(BalancedJson(json)) << json;
  EXPECT_NE(json.find("\"admission_rejects\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"shed_tier1\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"shed_tier2\":3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"shed_tier3\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"session_timeouts\":2"), std::string::npos) << json;
  EXPECT_NE(b.ToString().find("admission_rejects=2"), std::string::npos);
  // A run with no service activity keeps its one-line dump unchanged.
  EXPECT_EQ(Metrics().ToString().find("admission_rejects"),
            std::string::npos);
}

TEST(StatsJsonTest, JsonWriterEscapesStrings) {
  JsonWriter w = JsonWriter::Object();
  w.Field("q", "say \"hi\"\n\tdone\x01");
  std::string json = w.Close();
  EXPECT_TRUE(BalancedJson(json)) << json;
  EXPECT_NE(json.find("\\\"hi\\\""), std::string::npos);
  EXPECT_NE(json.find("\\n"), std::string::npos);
  EXPECT_NE(json.find("\\t"), std::string::npos);
  EXPECT_NE(json.find("\\u0001"), std::string::npos);
}

TEST(StatsJsonTest, SessionOptionsControlInstrumentation) {
  // Same query, instrumentation off: identical answer, untouched stats.
  auto session = QuerySession::Open("count(X//item)");
  ASSERT_TRUE(session.ok()) << session.status();
  ASSERT_TRUE(
      session.value()->PushDocument("<X><item/><item/></X>").ok());
  auto answer = session.value()->CurrentText();
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(answer.value(), "2");

  StatsRegistry* stats = session.value()->stats();
  for (size_t i = 0; i < stats->size(); ++i) {
    EXPECT_EQ(stats->stage(i).events_in(), 0u);
    EXPECT_EQ(stats->stage(i).wall_ns, 0u);
  }
}

TEST(StatsJsonTest, TraceCapacityOptionInsertsTap) {
  QuerySession::Options options;
  options.trace_capacity = 16;
  auto session = QuerySession::Open("count(X//item)", options);
  ASSERT_TRUE(session.ok()) << session.status();
  ASSERT_TRUE(session.value()->PushDocument("<X><item/></X>").ok());
  ASSERT_NE(session.value()->trace(), nullptr);
  EXPECT_GT(session.value()->trace()->events_seen(), 0u);
}

}  // namespace
}  // namespace xflux
