#include "core/region_document.h"

#include <gtest/gtest.h>

#include "core/well_formed.h"

namespace xflux {
namespace {

EventVec MustMaterialize(const EventVec& stream, RenderOptions opts = {}) {
  auto result = Materialize(stream, opts);
  EXPECT_TRUE(result.ok()) << result.status();
  return result.ok() ? std::move(result).value() : EventVec{};
}

TEST(RegionDocumentTest, PlainEventsPassThrough) {
  EventVec in = {Event::StartElement(0, "a"), Event::Characters(0, "x"),
                 Event::EndElement(0, "a")};
  EXPECT_EQ(MustMaterialize(in), in);
}

TEST(RegionDocumentTest, MutableRegionContentIsInline) {
  EventVec in = {Event::Characters(0, "a"), Event::StartMutable(0, 1),
                 Event::Characters(1, "b"), Event::EndMutable(0, 1),
                 Event::Characters(0, "c")};
  EventVec expect = {Event::Characters(0, "a"), Event::Characters(0, "b"),
                     Event::Characters(0, "c")};
  EXPECT_EQ(MustMaterialize(in), expect);
}

TEST(RegionDocumentTest, PaperSectionThreeExample) {
  // Section III: mutable "x" replaced by "y", "z" inserted after, "w"
  // inserted before; result is equivalent to [cD(0,"w"),cD(0,"y"),cD(0,"z")].
  EventVec in = {
      Event::StartMutable(0, 1),      Event::Characters(1, "x"),
      Event::EndMutable(0, 1),        Event::StartReplace(1, 2),
      Event::Characters(2, "y"),      Event::EndReplace(1, 2),
      Event::StartInsertAfter(2, 3),  Event::Characters(3, "z"),
      Event::EndInsertAfter(2, 3),    Event::StartInsertBefore(1, 3),
      Event::Characters(3, "w"),      Event::EndInsertBefore(1, 3),
  };
  EventVec expect = {Event::Characters(0, "w"), Event::Characters(0, "y"),
                     Event::Characters(0, "z")};
  EXPECT_EQ(MustMaterialize(in), expect);
}

TEST(RegionDocumentTest, PaperConcatenationExample) {
  // Section VI-A: stream 1's tuple is wrapped in a mutable region and the
  // stream-0 events are an insert-before update, so all of stream 0 ends up
  // before all of stream 1.
  EventVec in = {
      Event::StartTuple(2),           Event::StartMutable(2, 1),
      Event::StartInsertBefore(1, 0), Event::Characters(0, "x"),
      Event::Characters(1, "y"),      Event::Characters(0, "z"),
      Event::Characters(1, "w"),      Event::EndInsertBefore(1, 0),
      Event::EndMutable(2, 1),        Event::EndTuple(2),
  };
  EventVec expect = {Event::Characters(0, "x"), Event::Characters(0, "z"),
                     Event::Characters(0, "y"), Event::Characters(0, "w")};
  EXPECT_EQ(MustMaterialize(in), expect);
}

TEST(RegionDocumentTest, ReplaceWithEmptySequenceRemoves) {
  // "Removing elements is done by replacing them with the empty sequence."
  EventVec in = {Event::Characters(0, "a"),  Event::StartMutable(0, 1),
                 Event::Characters(1, "b"),  Event::EndMutable(0, 1),
                 Event::Characters(0, "c"),  Event::StartReplace(1, 2),
                 Event::EndReplace(1, 2)};
  EventVec expect = {Event::Characters(0, "a"), Event::Characters(0, "c")};
  EXPECT_EQ(MustMaterialize(in), expect);
}

TEST(RegionDocumentTest, CascadedReplaceTakesLatest) {
  EventVec in = {Event::StartMutable(0, 1), Event::Characters(1, "v1"),
                 Event::EndMutable(0, 1),
                 Event::StartReplace(1, 2), Event::Characters(2, "v2"),
                 Event::EndReplace(1, 2),
                 Event::StartReplace(2, 3), Event::Characters(3, "v3"),
                 Event::EndReplace(2, 3)};
  EventVec expect = {Event::Characters(0, "v3")};
  EXPECT_EQ(MustMaterialize(in), expect);
}

TEST(RegionDocumentTest, ReplaceOfOuterRegionDiscardsInnerUpdates) {
  // Replacing region 1 wipes the replacement chain that lived inside it.
  EventVec in = {Event::StartMutable(0, 1), Event::Characters(1, "v1"),
                 Event::EndMutable(0, 1),
                 Event::StartReplace(1, 2), Event::Characters(2, "v2"),
                 Event::EndReplace(1, 2),
                 Event::StartReplace(1, 3), Event::Characters(3, "v3"),
                 Event::EndReplace(1, 3)};
  EventVec expect = {Event::Characters(0, "v3")};
  EXPECT_EQ(MustMaterialize(in), expect);
}

TEST(RegionDocumentTest, HideRemovesAndShowRestores) {
  EventVec base = {Event::StartMutable(0, 1), Event::Characters(1, "q"),
                   Event::EndMutable(0, 1)};
  EventVec hidden = base;
  hidden.push_back(Event::Hide(1));
  EXPECT_EQ(MustMaterialize(hidden), EventVec{});

  EventVec shown = hidden;
  shown.push_back(Event::Show(1));
  EXPECT_EQ(MustMaterialize(shown), EventVec{Event::Characters(0, "q")});
}

TEST(RegionDocumentTest, HiddenRegionStillAcceptsUpdates) {
  // "we temporarily remove the content ... although we leave it open for
  // updates"
  EventVec in = {Event::StartMutable(0, 1), Event::Characters(1, "old"),
                 Event::EndMutable(0, 1),   Event::Hide(1),
                 Event::StartReplace(1, 2), Event::Characters(2, "new"),
                 Event::EndReplace(1, 2),   Event::Show(1)};
  EXPECT_EQ(MustMaterialize(in), EventVec{Event::Characters(0, "new")});
}

TEST(RegionDocumentTest, NestedHiddenRegions) {
  EventVec in = {Event::StartMutable(0, 1),  Event::Characters(1, "a"),
                 Event::StartMutable(1, 2),  Event::Characters(2, "b"),
                 Event::EndMutable(1, 2),    Event::Characters(1, "c"),
                 Event::EndMutable(0, 1),    Event::Hide(2)};
  EventVec expect = {Event::Characters(0, "a"), Event::Characters(0, "c")};
  EXPECT_EQ(MustMaterialize(in), expect);

  in.push_back(Event::Hide(1));
  EXPECT_EQ(MustMaterialize(in), EventVec{});

  in.push_back(Event::Show(1));
  EXPECT_EQ(MustMaterialize(in), expect);  // inner region stays hidden
}

TEST(RegionDocumentTest, FreezeDropsRegistryEntry) {
  RegionDocument doc;
  ASSERT_TRUE(doc.FeedAll({Event::StartMutable(0, 1),
                           Event::Characters(1, "x"),
                           Event::EndMutable(0, 1)})
                  .ok());
  EXPECT_EQ(doc.live_region_count(), 1u);
  ASSERT_TRUE(doc.Feed(Event::Freeze(1)).ok());
  EXPECT_EQ(doc.live_region_count(), 0u);
  // Content survives a freeze of a visible region.
  EXPECT_EQ(doc.RenderEvents(), EventVec{Event::Characters(0, "x")});
}

TEST(RegionDocumentTest, FreezeOfHiddenRegionReclaimsContent) {
  RegionDocument doc;
  ASSERT_TRUE(doc.FeedAll({Event::StartMutable(0, 1),
                           Event::Characters(1, "x"),
                           Event::EndMutable(0, 1), Event::Hide(1)})
                  .ok());
  size_t before = doc.item_count();
  ASSERT_TRUE(doc.Feed(Event::Freeze(1)).ok());
  EXPECT_LT(doc.item_count(), before);
  EXPECT_EQ(doc.RenderEvents(), EventVec{});
}

TEST(RegionDocumentTest, InsertAfterChainOrders) {
  // Successive insert-afters against the same target land nearest-first,
  // matching the order[] timestamp rule of Section IV.
  EventVec in = {Event::StartMutable(0, 1),     Event::Characters(1, "a"),
                 Event::EndMutable(0, 1),
                 Event::StartInsertAfter(1, 2), Event::Characters(2, "b"),
                 Event::EndInsertAfter(1, 2),
                 Event::StartInsertAfter(2, 3), Event::Characters(3, "c"),
                 Event::EndInsertAfter(2, 3)};
  EventVec expect = {Event::Characters(0, "a"), Event::Characters(0, "b"),
                     Event::Characters(0, "c")};
  EXPECT_EQ(MustMaterialize(in), expect);
}

TEST(RegionDocumentTest, TuplesKeptWhenRequested) {
  EventVec in = {Event::StartTuple(0), Event::Characters(0, "x"),
                 Event::EndTuple(0)};
  RenderOptions opts;
  opts.keep_tuples = true;
  EXPECT_EQ(MustMaterialize(in, opts), in);
  EXPECT_EQ(MustMaterialize(in), EventVec{Event::Characters(0, "x")});
}

TEST(RegionDocumentTest, RenderRetagsToOutId) {
  EventVec in = {Event::Characters(5, "x")};
  RenderOptions opts;
  opts.out_id = 9;
  EXPECT_EQ(MustMaterialize(in, opts), EventVec{Event::Characters(9, "x")});
}

TEST(RegionDocumentTest, UpdateTargetingUnknownRegionFails) {
  EventVec in = {Event::StartReplace(42, 1), Event::EndReplace(42, 1)};
  EXPECT_FALSE(Materialize(in).ok());
  EXPECT_FALSE(Materialize({Event::Hide(42)}).ok());
  EXPECT_FALSE(Materialize({Event::Show(42)}).ok());
}

TEST(RegionDocumentTest, FreezeOfUnknownRegionIsNoOp) {
  EXPECT_TRUE(Materialize({Event::Freeze(42)}).ok());
}

TEST(RegionDocumentTest, MetricsTrackLiveRegions) {
  Metrics metrics;
  RegionDocument doc(&metrics);
  ASSERT_TRUE(doc.FeedAll({Event::StartMutable(0, 1), Event::EndMutable(0, 1),
                           Event::StartMutable(0, 2), Event::EndMutable(0, 2)})
                  .ok());
  EXPECT_EQ(metrics.display_regions(), 2);
  ASSERT_TRUE(doc.Feed(Event::Freeze(1)).ok());
  EXPECT_EQ(metrics.display_regions(), 1);
  EXPECT_EQ(metrics.max_display_regions(), 2);
}

TEST(RegionDocumentTest, StockTickerScenario) {
  // A stock quotation stream: the quote region is mutable and gets replaced
  // repeatedly; the display always shows the newest quote (Section V).
  EventVec in = {Event::StartElement(0, "stock"),
                 Event::StartElement(0, "name"),
                 Event::Characters(0, "IBM"),
                 Event::EndElement(0, "name"),
                 Event::StartMutable(0, 1),
                 Event::StartElement(1, "quote"),
                 Event::Characters(1, "120.00"),
                 Event::EndElement(1, "quote"),
                 Event::EndMutable(0, 1),
                 Event::EndElement(0, "stock"),
                 // ticks
                 Event::StartReplace(1, 2),
                 Event::StartElement(2, "quote"),
                 Event::Characters(2, "121.50"),
                 Event::EndElement(2, "quote"),
                 Event::EndReplace(1, 2),
                 Event::StartReplace(2, 3),
                 Event::StartElement(3, "quote"),
                 Event::Characters(3, "119.75"),
                 Event::EndElement(3, "quote"),
                 Event::EndReplace(2, 3)};
  EventVec expect = {Event::StartElement(0, "stock"),
                     Event::StartElement(0, "name"),
                     Event::Characters(0, "IBM"),
                     Event::EndElement(0, "name"),
                     Event::StartElement(0, "quote"),
                     Event::Characters(0, "119.75"),
                     Event::EndElement(0, "quote"),
                     Event::EndElement(0, "stock")};
  EXPECT_EQ(MustMaterialize(in), expect);
}

TEST(RegionDocumentTest, ConcurrentReplaceReclaimsOpenNestedInterval) {
  // Two replaces of the same target with the second starting while the
  // first bracket is still open.  The second replace erases the first's
  // interval out from under it; the remaining content and end bracket of
  // the orphaned region must be dropped, not inserted through a dangling
  // cursor (regression: list corruption crashed RenderEvents).
  EventVec in = {Event::StartMutable(0, 100),
                 Event::Characters(100, "old"),
                 Event::EndMutable(0, 100),
                 Event::StartReplace(100, 200),
                 Event::Characters(200, "first"),
                 Event::StartReplace(100, 300),  // 200 still open
                 Event::Characters(200, "orphan"),
                 Event::EndReplace(100, 200),
                 Event::Characters(300, "second"),
                 Event::EndReplace(100, 300)};
  auto result = Materialize(in, {}, /*lenient=*/true);
  ASSERT_TRUE(result.ok()) << result.status();
  EventVec expect = {Event::Characters(0, "second")};
  EXPECT_EQ(result.value(), expect);
}

TEST(RegionDocumentTest, FreezeOfHiddenRegionWithOpenNestedBracket) {
  // hide+freeze reclaims a region whose nested replace bracket is still
  // open — the retraction sequence the ProtocolGuard synthesizes can race
  // operator-side brackets like this.  Trailing input for the reclaimed
  // nested region is swallowed.
  EventVec in = {Event::StartMutable(0, 100),
                 Event::Characters(100, "x"),
                 Event::EndMutable(0, 100),
                 Event::StartReplace(100, 200),
                 Event::Characters(200, "y"),
                 Event::Hide(100),
                 Event::Freeze(100),
                 Event::Characters(200, "late"),
                 Event::EndReplace(100, 200)};
  auto result = Materialize(in, {}, /*lenient=*/true);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result.value().empty());
}

TEST(RegionDocumentTest, StrictModeStillRejectsStrayEndBracket) {
  EventVec in = {Event::Characters(0, "a"), Event::EndMutable(0, 7)};
  auto result = Materialize(in, {}, /*lenient=*/false);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace xflux
