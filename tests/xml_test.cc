#include <gtest/gtest.h>

#include "core/well_formed.h"
#include "xml/escape.h"
#include "tests/test_util.h"
#include "xml/sax_parser.h"
#include "xml/serializer.h"

namespace xflux {
namespace {

EventVec MustTokenize(std::string_view doc, SaxParser::Options opts = {}) {
  auto result = SaxParser::Tokenize(doc, opts);
  EXPECT_TRUE(result.ok()) << result.status();
  return result.ok() ? std::move(result).value() : EventVec{};
}

TEST(EscapeTest, EscapeTextRoundTrip) {
  std::string original = "a<b>&c\"d'e";
  auto decoded = DecodeEntities(EscapeText(original));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), original);
}

TEST(EscapeTest, AttributeEscapesQuotes) {
  EXPECT_EQ(EscapeAttribute("a\"b"), "a&quot;b");
  EXPECT_EQ(EscapeText("a\"b"), "a\"b");
}

TEST(EscapeTest, NumericCharacterReferences) {
  auto d = DecodeEntities("&#65;&#x42;&#x20AC;");
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d.value(), "AB\xE2\x82\xAC");  // "AB€"
}

TEST(EscapeTest, UnknownEntityRejected) {
  EXPECT_FALSE(DecodeEntities("&bogus;").ok());
  EXPECT_FALSE(DecodeEntities("&unterminated").ok());
  EXPECT_FALSE(DecodeEntities("&#xZZ;").ok());
}

TEST(SaxParserTest, PaperNameExample) {
  // Section II: <name>Smith</name> tokenizes to [sE, cD, eE].
  EventVec v = MustTokenize("<name>Smith</name>",
                            {.emit_stream_brackets = false});
  ASSERT_EQ(v.size(), 3u);
  v = StripOids(std::move(v));
  EXPECT_EQ(v[0], Event::StartElement(0, "name"));
  EXPECT_EQ(v[1], Event::Characters(0, "Smith"));
  EXPECT_EQ(v[2], Event::EndElement(0, "name"));
}

TEST(SaxParserTest, StreamBracketsWrapDocument) {
  EventVec v = MustTokenize("<a/>");
  ASSERT_EQ(v.size(), 4u);
  EXPECT_EQ(v.front().kind, EventKind::kStartStream);
  EXPECT_EQ(v.back().kind, EventKind::kEndStream);
}

TEST(SaxParserTest, NestedElementsAreWellFormed) {
  EventVec v = MustTokenize(
      "<a><b><c><d>X</d><d>Y</d></c></b><b><c><d>Z</d></c></b></a>");
  EXPECT_TRUE(CheckWellFormed(v, 0).ok());
}

TEST(SaxParserTest, AttributesBecomeAtChildren) {
  EventVec v = MustTokenize("<item id=\"7\" cat='a&amp;b'/>",
                            {.emit_stream_brackets = false});
  EventVec expect = {
      Event::StartElement(0, "item"), Event::StartElement(0, "@id"),
      Event::Characters(0, "7"),      Event::EndElement(0, "@id"),
      Event::StartElement(0, "@cat"), Event::Characters(0, "a&b"),
      Event::EndElement(0, "@cat"),   Event::EndElement(0, "item")};
  EXPECT_EQ(StripOids(std::move(v)), expect);
}

TEST(SaxParserTest, WhitespaceOnlyTextDroppedByDefault) {
  EventVec v = MustTokenize("<a>\n  <b>x</b>\n</a>",
                            {.emit_stream_brackets = false});
  ASSERT_EQ(v.size(), 5u);
  EXPECT_EQ(StripOids(std::move(v))[1], Event::StartElement(0, "b"));
}

TEST(SaxParserTest, WhitespaceKeptWhenRequested) {
  EventVec v = MustTokenize("<a> <b>x</b></a>", {.emit_stream_brackets = false,
                                                 .keep_whitespace = true});
  EXPECT_EQ(v[1], Event::Characters(0, " "));
}

TEST(SaxParserTest, EntityDecodingInText) {
  EventVec v = MustTokenize("<a>x &lt; y &amp; z</a>",
                            {.emit_stream_brackets = false});
  EXPECT_EQ(v[1], Event::Characters(0, "x < y & z"));
}

TEST(SaxParserTest, CommentsPIsAndDoctypeSkipped) {
  EventVec v = MustTokenize(
      "<?xml version=\"1.0\"?><!DOCTYPE a [<!ELEMENT a ANY>]>"
      "<a><!-- note --><b>x</b><?pi data?></a>",
      {.emit_stream_brackets = false});
  ASSERT_EQ(v.size(), 5u);
  v = StripOids(std::move(v));
  EXPECT_EQ(v[0], Event::StartElement(0, "a"));
  EXPECT_EQ(v[1], Event::StartElement(0, "b"));
}

TEST(SaxParserTest, CdataIsLiteral) {
  EventVec v = MustTokenize("<a><![CDATA[x<y&z]]></a>",
                            {.emit_stream_brackets = false});
  EXPECT_EQ(v[1], Event::Characters(0, "x<y&z"));
}

TEST(SaxParserTest, OidsIncreaseInDocumentOrderAndMatchOnEnd) {
  EventVec v = MustTokenize("<a><b/><c/></a>", {.emit_stream_brackets = false});
  ASSERT_EQ(v.size(), 6u);
  EXPECT_EQ(v[0].oid, 1u);  // a
  EXPECT_EQ(v[1].oid, 2u);  // b
  EXPECT_EQ(v[2].oid, 2u);  // /b matches b
  EXPECT_EQ(v[3].oid, 3u);  // c
  EXPECT_EQ(v[5].oid, 1u);  // /a matches a
}

TEST(SaxParserTest, ChunkedFeedingIsBoundaryInsensitive) {
  const std::string doc =
      "<root a=\"1\"><x>hello &amp; goodbye</x><!-- c --><y><z/></y></root>";
  EventVec whole = MustTokenize(doc, {.emit_stream_brackets = false});
  for (size_t chunk = 1; chunk <= 7; ++chunk) {
    CollectingSink sink;
    SaxParser parser({.emit_stream_brackets = false}, &sink);
    for (size_t i = 0; i < doc.size(); i += chunk) {
      ASSERT_TRUE(parser.Feed(doc.substr(i, chunk)).ok()) << "chunk " << chunk;
    }
    ASSERT_TRUE(parser.Finish().ok());
    EXPECT_EQ(sink.events(), whole) << "chunk size " << chunk;
  }
}

TEST(SaxParserTest, MalformedDocumentsRejected) {
  EXPECT_FALSE(SaxParser::Tokenize("<a><b></a></b>").ok());
  EXPECT_FALSE(SaxParser::Tokenize("<a>").ok());
  EXPECT_FALSE(SaxParser::Tokenize("</a>").ok());
  EXPECT_FALSE(SaxParser::Tokenize("<a attr></a>").ok());
  EXPECT_FALSE(SaxParser::Tokenize("<a attr=x></a>").ok());
  EXPECT_FALSE(SaxParser::Tokenize("<a>text").ok());
  EXPECT_FALSE(SaxParser::Tokenize("text<a/>").ok());
  EXPECT_FALSE(SaxParser::Tokenize("<a>&bad;</a>").ok());
}

TEST(SerializerTest, RoundTripsSimpleDocument) {
  const std::string doc = "<a x=\"1\"><b>hi &amp; low</b><c/></a>";
  EventVec v = MustTokenize(doc, {.emit_stream_brackets = false});
  auto xml = XmlSerializer::ToXml(v);
  ASSERT_TRUE(xml.ok()) << xml.status();
  EXPECT_EQ(xml.value(), doc);
}

TEST(SerializerTest, TokenizeSerializeFixpoint) {
  // serialize(tokenize(x)) is a fixpoint: one more round trip is identity.
  const std::string doc =
      "<library><book id=\"b1\" lang='en'><title>T&amp;C</title>"
      "<price>9.99</price></book><empty/></library>";
  EventVec v1 = MustTokenize(doc, {.emit_stream_brackets = false});
  auto xml1 = XmlSerializer::ToXml(v1);
  ASSERT_TRUE(xml1.ok());
  EventVec v2 = MustTokenize(xml1.value(), {.emit_stream_brackets = false});
  auto xml2 = XmlSerializer::ToXml(v2);
  ASSERT_TRUE(xml2.ok());
  EXPECT_EQ(xml1.value(), xml2.value());
}

TEST(SerializerTest, TuplesAndStreamBracketsDropped) {
  EventVec v = {Event::StartStream(0), Event::StartTuple(0),
                Event::StartElement(0, "a"), Event::EndElement(0, "a"),
                Event::EndTuple(0), Event::EndStream(0)};
  auto xml = XmlSerializer::ToXml(v);
  ASSERT_TRUE(xml.ok());
  EXPECT_EQ(xml.value(), "<a/>");
}

TEST(SerializerTest, UpdateEventsRejected) {
  EventVec v = {Event::StartMutable(0, 1), Event::EndMutable(0, 1)};
  EXPECT_FALSE(XmlSerializer::ToXml(v).ok());
}

TEST(SerializerTest, PrettyPrinting) {
  EventVec v = MustTokenize("<a><b>x</b><c/></a>",
                            {.emit_stream_brackets = false});
  auto xml = XmlSerializer::ToXml(v, {.pretty = true});
  ASSERT_TRUE(xml.ok());
  EXPECT_EQ(xml.value(), "<a>\n  <b>x</b>\n  <c/>\n</a>");
}

}  // namespace
}  // namespace xflux
