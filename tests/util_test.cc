#include <gtest/gtest.h>

#include "core/fix_registry.h"
#include "core/stream_registry.h"
#include "ops/aggregates.h"
#include "util/check.h"
#include "util/error_channel.h"
#include "util/metrics.h"
#include "util/prng.h"
#include "util/status.h"

namespace xflux {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  Status s = Status::ParseError("bad token");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.message(), "bad token");
  EXPECT_EQ(s.ToString(), "PARSE_ERROR: bad token");
  EXPECT_EQ(Status::NotSupported("x").code(), StatusCode::kNotSupported);
  EXPECT_EQ(Status::InvalidArgument("x").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, StatusOrHoldsValueOrError) {
  StatusOr<int> good = 42;
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 42);
  StatusOr<int> bad = Status::InvalidArgument("nope");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

Status Propagates(bool fail) {
  XFLUX_RETURN_IF_ERROR(fail ? Status::Internal("inner") : Status::OK());
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(Propagates(false).ok());
  EXPECT_EQ(Propagates(true).message(), "inner");
}

TEST(MetricsTest, HighWaterMarks) {
  Metrics m;
  m.OnStateCreated();
  m.OnStateCreated();
  m.OnStateDropped();
  EXPECT_EQ(m.live_states(), 1);
  EXPECT_EQ(m.max_live_states(), 2);

  m.OnBuffered(10, 100);
  m.OnBuffered(5, 50);
  m.OnUnbuffered(12, 120);
  EXPECT_EQ(m.buffered_events(), 3);
  EXPECT_EQ(m.max_buffered_events(), 15);
  EXPECT_EQ(m.max_buffered_bytes(), 150);

  m.OnDisplayRegion(+3);
  m.OnDisplayRegion(-1);
  EXPECT_EQ(m.display_regions(), 2);
  EXPECT_EQ(m.max_display_regions(), 3);
  EXPECT_GT(m.MaxApproxStateBytes(), 0);

  m.Reset();
  EXPECT_EQ(m.live_states(), 0);
  EXPECT_EQ(m.max_buffered_events(), 0);
}

TEST(PrngTest, DeterministicAndBounded) {
  Prng a(1), b(1), c(2);
  EXPECT_EQ(a.NextU64(), b.NextU64());
  EXPECT_NE(Prng(1).NextU64(), c.NextU64());
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(a.Uniform(10), 10u);
    int64_t r = a.Range(-5, 5);
    EXPECT_GE(r, -5);
    EXPECT_LE(r, 5);
    double d = a.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    EXPECT_LT(a.Skewed(10), 10u);
  }
}

TEST(FixRegistryTest, UnknownIdsAreFixed) {
  FixRegistry fix;
  EXPECT_TRUE(fix.IsFixed(7));
}

TEST(FixRegistryTest, MutableRegionsOpenAndInherit) {
  FixRegistry fix;
  fix.OnEvent(Event::StartMutable(0, 10));
  EXPECT_FALSE(fix.IsFixed(10));
  fix.OnEvent(Event::StartReplace(10, 11));
  EXPECT_FALSE(fix.IsFixed(11));  // inherits the target's openness
  fix.OnEvent(Event::Freeze(11));
  EXPECT_TRUE(fix.IsFixed(11));
  // Updates to a fixed target are born fixed.
  fix.OnEvent(Event::StartReplace(11, 12));
  EXPECT_TRUE(fix.IsFixed(12));
}

TEST(FixRegistryTest, ReseeingStartDoesNotReopen) {
  FixRegistry fix;
  fix.OnEvent(Event::StartMutable(0, 10));
  fix.OnEvent(Event::Freeze(10));
  fix.OnEvent(Event::StartMutable(0, 10));  // idempotent bookkeeping replay
  EXPECT_TRUE(fix.IsFixed(10));
}

TEST(FixRegistryTest, DisabledReportsEverythingMutable) {
  FixRegistry fix;
  fix.set_disabled(true);
  EXPECT_FALSE(fix.IsFixed(7));
  fix.OnEvent(Event::Freeze(7));
  EXPECT_FALSE(fix.IsFixed(7));
}

TEST(StreamRegistryTest, LineageRootsChainToBase) {
  StreamRegistry reg;
  EXPECT_EQ(reg.RootOf(5), 5u);  // unseen ids are their own root
  reg.OnEvent(Event::StartMutable(0, 10));
  reg.OnEvent(Event::StartReplace(10, 11));
  reg.OnEvent(Event::StartInsertAfter(11, 12));
  EXPECT_EQ(reg.RootOf(10), 0u);
  EXPECT_EQ(reg.RootOf(11), 0u);
  EXPECT_EQ(reg.RootOf(12), 0u);
}

TEST(StreamRegistryTest, RegisteredBasesAreNeverRerooted) {
  StreamRegistry reg;
  reg.RegisterBase(1);
  reg.OnEvent(Event::StartMutable(5, 1));  // the concat id-reuse pattern
  EXPECT_EQ(reg.RootOf(1), 1u);
}

TEST(StreamRegistryTest, AliasesAndPartners) {
  StreamRegistry reg;
  reg.AddAlias(30, 0);
  EXPECT_EQ(reg.RootOf(30), 0u);
  EXPECT_EQ(reg.PartnerOf(40), 0u);
  reg.AddPartner(40, 20);
  EXPECT_EQ(reg.PartnerOf(40), 20u);
}

TEST(FormatNumberTest, IntegersAndDecimals) {
  EXPECT_EQ(FormatNumber(3.0), "3");
  EXPECT_EQ(FormatNumber(-17.0), "-17");
  EXPECT_EQ(FormatNumber(2.5), "2.5");
  EXPECT_EQ(FormatNumber(0.0), "0");
}

TEST(ErrorChannelTest, LatchesFirstErrorOnly) {
  ErrorChannel errors;
  EXPECT_TRUE(errors.ok());
  errors.Report(Status::OK());  // OK reports never latch
  EXPECT_TRUE(errors.ok());
  errors.Report(Status::ParseError("first"));
  errors.Report(Status::Internal("cascade"));
  EXPECT_FALSE(errors.ok());
  EXPECT_EQ(errors.status().code(), StatusCode::kParseError);
  EXPECT_EQ(errors.status().message(), "first");
}

TEST(ErrorChannelTest, ResetClearsTheLatch) {
  ErrorChannel errors;
  errors.Report(Status::Internal("boom"));
  ASSERT_FALSE(errors.ok());
  errors.Reset();
  EXPECT_TRUE(errors.ok());
  EXPECT_TRUE(errors.status().ok());
}

// The traps below must fire in *every* build type — they replace what used
// to be NDEBUG-stripped asserts guarding memory-corrupting reads.
using CheckDeathTest = ::testing::Test;

TEST(CheckDeathTest, StatusOrValueOnErrorTrapsInsteadOfUB) {
  StatusOr<int> bad = Status::InvalidArgument("nope");
  EXPECT_DEATH({ (void)bad.value(); }, "XFLUX_CHECK failed");
}

TEST(CheckDeathTest, XfluxCheckReportsConditionAndLocation) {
  EXPECT_DEATH({ XFLUX_CHECK(1 + 1 == 3); }, "XFLUX_CHECK failed: 1 \\+ 1 == 3");
}

}  // namespace
}  // namespace xflux
