// Parameterized property sweeps:
//
//  1. The golden equivalence: for random documents with random embedded
//     update tails, the continuous display equals re-running the query on
//     the eagerly-updated (materialized) document.  This is the paper's
//     central correctness claim — exact answers over update streams.
//  2. Stream invariants: every operator pipeline emits a valid update
//     stream whose materialization is well-formed XML.

#include <gtest/gtest.h>

#include "core/region_document.h"
#include "core/well_formed.h"
#include "test_util.h"
#include "util/prng.h"
#include "xml/sax_parser.h"
#include "xml/serializer.h"
#include "xquery/engine.h"

namespace xflux {
namespace {
// The random bookstore generator (MakeRandomBookStream) lives in
// test_util.h — the serial/parallel equivalence suite sweeps the same
// corpus.

class GoldenEquivalence
    : public ::testing::TestWithParam<std::tuple<uint64_t, const char*>> {};

TEST_P(GoldenEquivalence, DisplayMatchesEagerEvaluation) {
  auto [seed, query] = GetParam();
  RandomStream stream = MakeRandomBookStream(seed);
  ASSERT_TRUE(ValidateUpdateStream(stream.events).ok())
      << ValidateUpdateStream(stream.events);

  auto session = QuerySession::Open(query);
  ASSERT_TRUE(session.ok()) << session.status();
  session.value()->PushAll(stream.events);
  ASSERT_TRUE(session.value()->display_status().ok())
      << session.value()->display_status();
  auto streamed = session.value()->CurrentText();
  ASSERT_TRUE(streamed.ok()) << streamed.status();

  auto eager = RunQueryOnXml(query, stream.plain_xml);
  ASSERT_TRUE(eager.ok()) << eager.status() << "\ndoc: " << stream.plain_xml;

  EXPECT_EQ(streamed.value(), eager.value())
      << "seed " << seed << "\nplain doc: " << stream.plain_xml;
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, GoldenEquivalence,
    ::testing::Combine(
        ::testing::Range<uint64_t>(1, 26),
        ::testing::Values(
            "X//book[author=\"Smith\"]/title",
            "count(X//book[author=\"Smith\"])",
            "X//book[publisher=\"Wiley\"][author=\"Smith\"]/price",
            "X//author")),
    [](const auto& info) {
      return "seed" + std::to_string(std::get<0>(info.param)) + "_q" +
             std::to_string(static_cast<int>(
                 std::hash<std::string>{}(std::get<1>(info.param)) % 1000));
    });

// ---------------------------------------------------------------------------
// Stream invariants over the full benchmark query set.

class StreamInvariants
    : public ::testing::TestWithParam<std::tuple<uint64_t, const char*>> {};

TEST_P(StreamInvariants, OutputsValidateAndMaterializeWellFormed) {
  auto [seed, query] = GetParam();
  RandomStream stream = MakeRandomBookStream(seed);

  auto compiled = CompileQuery(query);
  ASSERT_TRUE(compiled.ok()) << compiled.status();
  CollectingSink sink;
  compiled.value().pipeline->SetSink(&sink);
  compiled.value().pipeline->PushAll(stream.events);

  // Lenient: the pipeline may emit updates to regions whose content was
  // already irrevocably reclaimed (the fixed-predicate path).
  auto materialized = Materialize(sink.events(), RenderOptions(),
                                  /*lenient=*/true);
  ASSERT_TRUE(materialized.ok())
      << materialized.status() << "\nseed " << seed;
  EXPECT_TRUE(CheckWellFormed(materialized.value(), 0).ok())
      << ToString(materialized.value());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StreamInvariants,
    ::testing::Combine(
        ::testing::Range<uint64_t>(100, 115),
        ::testing::Values(
            "X//book[author=\"Smith\"]/title",
            "X//book/price",
            "count(X//book)",
            "sum(X//price)",
            "for $b in X//book where $b/author = \"Smith\" "
            "return <hit>{ $b/price }</hit>",
            "for $b in X//book order by $b/price return $b/author",
            "<all>{ for $b in X//book return <b>{ $b/author, $b/price "
            "}</b> }</all>")),
    [](const auto& info) {
      return "seed" + std::to_string(std::get<0>(info.param)) + "_q" +
             std::to_string(static_cast<int>(
                 std::hash<std::string>{}(std::get<1>(info.param)) % 1000));
    });

}  // namespace
}  // namespace xflux
