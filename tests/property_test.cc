// Parameterized property sweeps:
//
//  1. The golden equivalence: for random documents with random embedded
//     update tails, the continuous display equals re-running the query on
//     the eagerly-updated (materialized) document.  This is the paper's
//     central correctness claim — exact answers over update streams.
//  2. Stream invariants: every operator pipeline emits a valid update
//     stream whose materialization is well-formed XML.

#include <gtest/gtest.h>

#include "core/region_document.h"
#include "core/well_formed.h"
#include "util/prng.h"
#include "xml/sax_parser.h"
#include "xml/serializer.h"
#include "xquery/engine.h"

namespace xflux {
namespace {

// A random bookstore stream: books with mutable author/price regions,
// followed by a tail of updates that flip some of them.
struct RandomStream {
  EventVec events;       // with sS/eS and embedded updates
  std::string plain_xml; // the eagerly-updated equivalent document
};

RandomStream MakeRandomBookStream(uint64_t seed) {
  Prng prng(seed);
  const std::vector<std::string> authors = {"Smith", "Jones", "Doe"};
  const std::vector<std::string> publishers = {"Wiley", "Other"};
  EventVec ev;
  StreamId next_region = 100;
  std::vector<StreamId> author_regions;
  std::vector<StreamId> price_regions;

  ev.push_back(Event::StartStream(0));
  ev.push_back(Event::StartElement(0, "biblio", 1));
  Oid oid = 2;
  int books = static_cast<int>(prng.Uniform(6)) + 2;
  for (int b = 0; b < books; ++b) {
    ev.push_back(Event::StartElement(0, "book", oid++));
    ev.push_back(Event::StartElement(0, "publisher", oid++));
    ev.push_back(Event::Characters(0, prng.Pick(publishers)));
    ev.push_back(Event::EndElement(0, "publisher"));
    ev.push_back(Event::StartElement(0, "author", oid++));
    bool mutable_author = prng.Chance(0.7);
    if (mutable_author) {
      StreamId region = next_region++;
      author_regions.push_back(region);
      ev.push_back(Event::StartMutable(0, region));
      ev.push_back(Event::Characters(region, prng.Pick(authors)));
      ev.push_back(Event::EndMutable(0, region));
    } else {
      ev.push_back(Event::Characters(0, prng.Pick(authors)));
    }
    ev.push_back(Event::EndElement(0, "author"));
    ev.push_back(Event::StartElement(0, "price", oid++));
    if (prng.Chance(0.5)) {
      StreamId region = next_region++;
      price_regions.push_back(region);
      ev.push_back(Event::StartMutable(0, region));
      ev.push_back(Event::Characters(
          region, std::to_string(prng.Uniform(90) + 10)));
      ev.push_back(Event::EndMutable(0, region));
    } else {
      ev.push_back(Event::Characters(
          0, std::to_string(prng.Uniform(90) + 10)));
    }
    ev.push_back(Event::EndElement(0, "price"));
    ev.push_back(Event::EndElement(0, "book"));
  }
  ev.push_back(Event::EndElement(0, "biblio"));

  // The update tail: author flips and price replacements, with chains.
  int updates = static_cast<int>(prng.Uniform(8));
  for (int u = 0; u < updates; ++u) {
    bool do_author = !author_regions.empty() &&
                     (price_regions.empty() || prng.Chance(0.6));
    std::vector<StreamId>& pool = do_author ? author_regions : price_regions;
    if (pool.empty()) break;
    size_t idx = prng.Uniform(pool.size());
    StreamId fresh = next_region++;
    ev.push_back(Event::StartReplace(pool[idx], fresh));
    ev.push_back(Event::Characters(
        fresh, do_author ? prng.Pick(authors)
                         : std::to_string(prng.Uniform(90) + 10)));
    ev.push_back(Event::EndReplace(pool[idx], fresh));
    pool[idx] = fresh;  // later updates address the newest id
  }
  ev.push_back(Event::EndStream(0));

  RandomStream result;
  auto plain = Materialize(ev);
  EXPECT_TRUE(plain.ok()) << plain.status();
  auto xml = XmlSerializer::ToXml(plain.value());
  EXPECT_TRUE(xml.ok()) << xml.status();
  result.events = std::move(ev);
  result.plain_xml = xml.ok() ? xml.value() : "";
  return result;
}

class GoldenEquivalence
    : public ::testing::TestWithParam<std::tuple<uint64_t, const char*>> {};

TEST_P(GoldenEquivalence, DisplayMatchesEagerEvaluation) {
  auto [seed, query] = GetParam();
  RandomStream stream = MakeRandomBookStream(seed);
  ASSERT_TRUE(ValidateUpdateStream(stream.events).ok())
      << ValidateUpdateStream(stream.events);

  auto session = QuerySession::Open(query);
  ASSERT_TRUE(session.ok()) << session.status();
  session.value()->PushAll(stream.events);
  ASSERT_TRUE(session.value()->display_status().ok())
      << session.value()->display_status();
  auto streamed = session.value()->CurrentText();
  ASSERT_TRUE(streamed.ok()) << streamed.status();

  auto eager = RunQueryOnXml(query, stream.plain_xml);
  ASSERT_TRUE(eager.ok()) << eager.status() << "\ndoc: " << stream.plain_xml;

  EXPECT_EQ(streamed.value(), eager.value())
      << "seed " << seed << "\nplain doc: " << stream.plain_xml;
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, GoldenEquivalence,
    ::testing::Combine(
        ::testing::Range<uint64_t>(1, 26),
        ::testing::Values(
            "X//book[author=\"Smith\"]/title",
            "count(X//book[author=\"Smith\"])",
            "X//book[publisher=\"Wiley\"][author=\"Smith\"]/price",
            "X//author")),
    [](const auto& info) {
      return "seed" + std::to_string(std::get<0>(info.param)) + "_q" +
             std::to_string(static_cast<int>(
                 std::hash<std::string>{}(std::get<1>(info.param)) % 1000));
    });

// ---------------------------------------------------------------------------
// Stream invariants over the full benchmark query set.

class StreamInvariants
    : public ::testing::TestWithParam<std::tuple<uint64_t, const char*>> {};

TEST_P(StreamInvariants, OutputsValidateAndMaterializeWellFormed) {
  auto [seed, query] = GetParam();
  RandomStream stream = MakeRandomBookStream(seed);

  auto compiled = CompileQuery(query);
  ASSERT_TRUE(compiled.ok()) << compiled.status();
  CollectingSink sink;
  compiled.value().pipeline->SetSink(&sink);
  compiled.value().pipeline->PushAll(stream.events);

  // Lenient: the pipeline may emit updates to regions whose content was
  // already irrevocably reclaimed (the fixed-predicate path).
  auto materialized = Materialize(sink.events(), RenderOptions(),
                                  /*lenient=*/true);
  ASSERT_TRUE(materialized.ok())
      << materialized.status() << "\nseed " << seed;
  EXPECT_TRUE(CheckWellFormed(materialized.value(), 0).ok())
      << ToString(materialized.value());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StreamInvariants,
    ::testing::Combine(
        ::testing::Range<uint64_t>(100, 115),
        ::testing::Values(
            "X//book[author=\"Smith\"]/title",
            "X//book/price",
            "count(X//book)",
            "sum(X//price)",
            "for $b in X//book where $b/author = \"Smith\" "
            "return <hit>{ $b/price }</hit>",
            "for $b in X//book order by $b/price return $b/author",
            "<all>{ for $b in X//book return <b>{ $b/author, $b/price "
            "}</b> }</all>")),
    [](const auto& info) {
      return "seed" + std::to_string(std::get<0>(info.param)) + "_q" +
             std::to_string(static_cast<int>(
                 std::hash<std::string>{}(std::get<1>(info.param)) % 1000));
    });

}  // namespace
}  // namespace xflux
