#include "util/order_key.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "util/prng.h"

namespace xflux {
namespace {

TEST(OrderKeyTest, MinLessThanMax) {
  EXPECT_LT(OrderKey::Min(), OrderKey::Max());
  EXPECT_EQ(OrderKey::Min(), OrderKey::Min());
  EXPECT_EQ(OrderKey::Max(), OrderKey::Max());
}

TEST(OrderKeyTest, BetweenMinMaxIsStrictlyInside) {
  OrderKey mid = OrderKey::Between(OrderKey::Min(), OrderKey::Max());
  EXPECT_LT(OrderKey::Min(), mid);
  EXPECT_LT(mid, OrderKey::Max());
}

TEST(OrderKeyTest, BetweenIsStrictlyBetween) {
  OrderKey a = OrderKey::Between(OrderKey::Min(), OrderKey::Max());
  OrderKey b = OrderKey::Between(a, OrderKey::Max());
  ASSERT_LT(a, b);
  OrderKey c = OrderKey::Between(a, b);
  EXPECT_LT(a, c);
  EXPECT_LT(c, b);
}

TEST(OrderKeyTest, RepeatedLowerBisectionStaysOrdered) {
  // Squeeze 200 keys into (Min, first): the float version of the paper
  // would flatline after ~50 halvings; OrderKey must not.
  OrderKey hi = OrderKey::Between(OrderKey::Min(), OrderKey::Max());
  for (int i = 0; i < 200; ++i) {
    OrderKey mid = OrderKey::Between(OrderKey::Min(), hi);
    ASSERT_LT(OrderKey::Min(), mid) << "iteration " << i;
    ASSERT_LT(mid, hi) << "iteration " << i;
    hi = mid;
  }
}

TEST(OrderKeyTest, RepeatedUpperBisectionStaysOrdered) {
  OrderKey lo = OrderKey::Between(OrderKey::Min(), OrderKey::Max());
  for (int i = 0; i < 200; ++i) {
    OrderKey mid = OrderKey::Between(lo, OrderKey::Max());
    ASSERT_LT(lo, mid) << "iteration " << i;
    ASSERT_LT(mid, OrderKey::Max()) << "iteration " << i;
    lo = mid;
  }
}

TEST(OrderKeyTest, RepeatedInnerBisectionStaysOrdered) {
  OrderKey lo = OrderKey::Between(OrderKey::Min(), OrderKey::Max());
  OrderKey hi = OrderKey::Between(lo, OrderKey::Max());
  for (int i = 0; i < 300; ++i) {
    OrderKey mid = OrderKey::Between(lo, hi);
    ASSERT_LT(lo, mid) << "iteration " << i;
    ASSERT_LT(mid, hi) << "iteration " << i;
    if (i % 2 == 0) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
}

TEST(OrderKeyTest, RandomInsertionsPreserveTotalOrder) {
  Prng prng(42);
  std::vector<OrderKey> keys = {OrderKey::Min(), OrderKey::Max()};
  for (int i = 0; i < 2000; ++i) {
    size_t slot = prng.Uniform(keys.size() - 1);
    OrderKey mid = OrderKey::Between(keys[slot], keys[slot + 1]);
    ASSERT_LT(keys[slot], mid) << "iteration " << i;
    ASSERT_LT(mid, keys[slot + 1]) << "iteration " << i;
    keys.insert(keys.begin() + static_cast<ptrdiff_t>(slot) + 1, mid);
  }
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  // All keys distinct.
  for (size_t i = 0; i + 1 < keys.size(); ++i) {
    ASSERT_NE(keys[i], keys[i + 1]);
  }
}

TEST(OrderKeyTest, ToStringIsDistinctForDistinctKeys) {
  OrderKey a = OrderKey::Between(OrderKey::Min(), OrderKey::Max());
  OrderKey b = OrderKey::Between(a, OrderKey::Max());
  EXPECT_NE(a.ToString(), b.ToString());
  EXPECT_EQ(OrderKey::Min().ToString(), "MIN");
  EXPECT_EQ(OrderKey::Max().ToString(), "MAX");
}

}  // namespace
}  // namespace xflux
