// The compact event data plane: struct layout, TextRef sharing semantics,
// the buffered-bytes accounting rule, and the batch-vs-single-event
// equivalence property for the whole engine.

#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

#include <gtest/gtest.h>

#include "core/region_document.h"
#include "core/trace_sink.h"
#include "data/generators.h"
#include "tests/test_util.h"
#include "util/buffer_ledger.h"
#include "util/text_ref.h"
#include "xml/sax_parser.h"
#include "xquery/engine.h"
#include "xquery/session_builder.h"

namespace xflux {
namespace {

// ---------------------------------------------------------------------------
// Event layout

TEST(EventLayoutTest, EventIsCompact) {
  // The old representation carried a std::string (56 bytes total on
  // libstdc++); the compact plane must stay strictly smaller.  The
  // static_assert in event.h pins <= 32; this keeps the intent visible in
  // the test log too.
  EXPECT_LE(sizeof(Event), 32u);
  EXPECT_LT(sizeof(Event), 56u);
  static_assert(!std::is_same_v<decltype(Event::text), std::string>,
                "Event must not carry a std::string payload");
  EXPECT_TRUE((std::is_same_v<decltype(Event::tag), Symbol>));
  EXPECT_TRUE((std::is_same_v<decltype(Event::text), TextRef>));
}

TEST(EventLayoutTest, ToStringResolvesTagSpellings) {
  Event e = Event::StartElement(3, "dp_widget", 9);
  EXPECT_EQ(e.ToString(), "sE(3,\"dp_widget\")");
  Event c = Event::Characters(1, "hello");
  EXPECT_EQ(c.ToString(), "cD(1,\"hello\")");
}

TEST(EventLayoutTest, EqualityComparesTagAndTextContent) {
  Event a = Event::StartElement(0, "dp_tag", 5);
  Event b = Event::StartElement(0, "dp_tag", 5);
  EXPECT_EQ(a, b);
  // Same chars, different buffers: still equal by content.
  Event c1 = Event::Characters(0, "shared text");
  Event c2 = Event::Characters(0, "shared text");
  EXPECT_NE(c1.text.buffer_id(), c2.text.buffer_id());
  EXPECT_EQ(c1, c2);
  EXPECT_NE(c1, Event::Characters(0, "other text"));
}

// ---------------------------------------------------------------------------
// TextRef

TEST(TextRefTest, CopiesShareOneBuffer) {
  TextRef a = TextRef::Copy("payload-too-long-to-inline");
  TextRef b = a;
  EXPECT_EQ(a.buffer_id(), b.buffer_id());
  EXPECT_NE(a.buffer_id(), nullptr);
  EXPECT_EQ(a.use_count(), 2u);
  EXPECT_EQ(b.view(), "payload-too-long-to-inline");
  {
    TextRef c = b;
    EXPECT_EQ(a.use_count(), 3u);
  }
  EXPECT_EQ(a.use_count(), 2u);
}

TEST(TextRefTest, EmptyRefNeverAllocates) {
  TextRef empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.buffer_id(), nullptr);
  EXPECT_EQ(TextRef::Copy("").buffer_id(), nullptr);
  EXPECT_EQ(empty.view(), "");
}

TEST(TextRefTest, Copy2ConcatenatesIntoOneBuffer) {
  TextRef t = TextRef::Copy2("prefix spilled ", "in-chunk tail");
  EXPECT_EQ(t.view(), "prefix spilled in-chunk tail");
  EXPECT_EQ(t.size(), 28u);
  EXPECT_FALSE(t.is_slice());
  EXPECT_FALSE(t.is_inline());
  EXPECT_EQ(t.payload_bytes(), 28u);
}

TEST(TextRefTest, ShortTextPacksInline) {
  TextRef t = TextRef::Copy2("12", ".5");
  EXPECT_EQ(t.view(), "12.5");
  EXPECT_EQ(t.size(), 4u);
  EXPECT_TRUE(t.is_inline());
  // No heap storage at all: no identity, nothing for the ledger to pin.
  EXPECT_EQ(t.buffer_id(), nullptr);
  EXPECT_EQ(t.payload_bytes(), 0u);
  // Copies carry the bytes with them.
  TextRef c = t;
  EXPECT_EQ(c.view(), "12.5");
  // Content equality spans representations.
  EXPECT_EQ(t, TextRef::Copy("12.5"));
  // The 7-byte boundary: max inline vs first heap size.
  EXPECT_TRUE(TextRef::Copy("seven77").is_inline());
  EXPECT_FALSE(TextRef::Copy("eight888").is_inline());
}

TEST(TextRefTest, SliceAliasesChunkAndPinsIt) {
  StableChunk chunk = StableChunk::Allocate(64);
  std::memcpy(chunk.mutable_data(), "hello chunked world", 19);
  TextRef slice = TextRef::Slice(chunk, chunk.data() + 6, 7);
  EXPECT_EQ(slice.view(), "chunked");
  EXPECT_TRUE(slice.is_slice());
  // The slice's storage IS the chunk's storage (no copy)...
  EXPECT_EQ(slice.view().data(), chunk.data() + 6);
  // ...and its identity/payload are the chunk, counted whole.
  EXPECT_EQ(slice.buffer_id(), chunk.id());
  EXPECT_EQ(slice.payload_bytes(), 64u);
  // The slice holds a chunk reference: chunk handle + slice = 2.
  EXPECT_EQ(chunk.use_count(), 2u);
  {
    TextRef copy = slice;  // refcount bump on the slice rep, not the chunk
    EXPECT_EQ(slice.use_count(), 2u);
    EXPECT_EQ(chunk.use_count(), 2u);
  }
  // Dropping the chunk handle leaves the slice's bytes alive.
  const char* data = slice.view().data();
  chunk = StableChunk();
  EXPECT_EQ(slice.view(), "chunked");
  EXPECT_EQ(slice.view().data(), data);
}

TEST(TextRefTest, ParseLeadingDoubleMatchesStrtod) {
  double v = 0;
  EXPECT_TRUE(ParseLeadingDouble("12.5", &v));
  EXPECT_EQ(v, 12.5);
  EXPECT_TRUE(ParseLeadingDouble("  -3e2xyz", &v));
  EXPECT_EQ(v, -300.0);
  EXPECT_TRUE(ParseLeadingDouble("+7", &v));
  EXPECT_EQ(v, 7.0);
  EXPECT_FALSE(ParseLeadingDouble("", &v));
  EXPECT_EQ(v, 0.0);
  EXPECT_FALSE(ParseLeadingDouble("abc", &v));
  EXPECT_FALSE(ParseLeadingDouble("+", &v));
  EXPECT_FALSE(ParseLeadingDouble("   ", &v));
  // Non-NUL-terminated middle-of-buffer view.
  std::string_view buf("xx42yy");
  EXPECT_TRUE(ParseLeadingDouble(buf.substr(2, 2), &v));
  EXPECT_EQ(v, 42.0);
}

TEST(TextRefTest, AliasingSurvivesMaterialize) {
  // A cD payload must flow through RegionDocument (buffering, replacement
  // splicing, rendering) by reference, not by copy: the materialized
  // output's event shares the input's buffer.
  TextRef payload = TextRef::Copy("shared through the document");
  EventVec stream;
  stream.push_back(Event::StartStream(0));
  stream.push_back(Event::StartElement(0, "dp_doc", 1));
  stream.push_back(Event::Characters(0, payload));
  stream.push_back(Event::EndElement(0, "dp_doc", 1));
  stream.push_back(Event::EndStream(0));

  auto materialized = Materialize(stream);
  ASSERT_TRUE(materialized.ok()) << materialized.status();
  bool found = false;
  for (const Event& e : materialized.value()) {
    if (e.kind != EventKind::kCharacters) continue;
    found = true;
    EXPECT_EQ(e.text.buffer_id(), payload.buffer_id())
        << "materialization copied the payload instead of sharing it";
  }
  EXPECT_TRUE(found);
}

// ---------------------------------------------------------------------------
// BufferLedger: the buffered-bytes accounting rule

TEST(BufferLedgerTest, PayloadBytesCountOncePerDistinctBuffer) {
  TextRef shared = TextRef::Copy("0123456789");  // 10 payload bytes
  constexpr size_t kItem = sizeof(Event);
  BufferLedger ledger;
  // First holder pays item + payload.
  EXPECT_EQ(ledger.Add(shared, kItem), static_cast<int64_t>(kItem + 10));
  // Further holders of the SAME buffer pay only their item bytes.
  EXPECT_EQ(ledger.Add(shared, kItem), static_cast<int64_t>(kItem));
  EXPECT_EQ(ledger.bytes(), static_cast<int64_t>(2 * kItem + 10));
  // A different buffer with identical content is distinct storage.
  TextRef other = TextRef::Copy("0123456789");
  EXPECT_EQ(ledger.Add(other, kItem), static_cast<int64_t>(kItem + 10));
  // Removing a non-last holder releases only item bytes...
  EXPECT_EQ(ledger.Remove(shared, kItem), static_cast<int64_t>(kItem));
  // ...the last holder releases the payload too.
  EXPECT_EQ(ledger.Remove(shared, kItem), static_cast<int64_t>(kItem + 10));
  EXPECT_EQ(ledger.bytes(), static_cast<int64_t>(kItem + 10));
  EXPECT_EQ(ledger.Clear(), static_cast<int64_t>(kItem + 10));
  EXPECT_EQ(ledger.bytes(), 0);
}

TEST(BufferLedgerTest, EmptyPayloadsChargeItemBytesOnly) {
  BufferLedger ledger;
  TextRef empty;
  EXPECT_EQ(ledger.Add(empty, 32), 32);
  EXPECT_EQ(ledger.Add(empty, 32), 32);
  EXPECT_EQ(ledger.Remove(empty, 32), 32);
  EXPECT_EQ(ledger.Clear(), 32);
}

// ---------------------------------------------------------------------------
// Batch-vs-single equivalence

// The queries exercise every operator family: steps, descendant
// replication (update-generating), predicates, aggregates, FLWOR with
// construction, and sorting.
const char* const kQueries[] = {
    "X//book/author",
    "X//*",
    "X//book[publisher=\"Wiley\"]/author",
    "count(X//book)",
    "sum(X//price)",
    "<all>{ for $b in X//book return <b>{ $b/author, $b/price }</b> }</all>",
    "for $b in X//book order by $b/price return $b/author",
};

std::string TestDocument() {
  return "<biblio>"
         "<book id=\"1\"><publisher>Wiley</publisher>"
         "<author>Smith</author><price>42</price></book>"
         "<book id=\"2\"><publisher>Other</publisher>"
         "<author>Jones</author><price>7</price>"
         "<note>second <b>edition</b> now &amp; improved</note></book>"
         "<book id=\"3\"><publisher>Wiley</publisher>"
         "<author>Doe</author><price>13</price></book>"
         "</biblio>";
}

// Batched emission must be observably identical to event-at-a-time: same
// displayed events, same text, for every query and any batch size.
TEST(BatchEquivalenceTest, QueriesMatchEventAtATimeForAllBatchSizes) {
  std::string doc = TestDocument();

  for (const char* query : kQueries) {
    // Reference: one event per Pipeline::Push.
    auto single = QuerySession::Open(query);
    ASSERT_TRUE(single.ok()) << single.status();
    SaxParser::Options token_options;
    token_options.stream_id = single.value()->source_id();
    auto tokens = SaxParser::Tokenize(doc, token_options);
    ASSERT_TRUE(tokens.ok()) << tokens.status();
    for (const Event& e : tokens.value()) single.value()->Push(e);
    auto single_text = single.value()->CurrentText();
    ASSERT_TRUE(single_text.ok()) << query << ": " << single_text.status();
    EventVec single_events = single.value()->CurrentEvents();

    for (size_t batch_size : {size_t{1}, size_t{3}, size_t{64}}) {
      auto batched = QuerySession::Open(query);
      ASSERT_TRUE(batched.ok()) << batched.status();
      SaxParser::Options options;
      options.stream_id = batched.value()->source_id();
      options.batch_size = batch_size;
      PipelineSource source(batched.value()->pipeline());
      SaxParser parser(options, &source);
      // Ragged chunks so batches straddle Feed boundaries.
      for (size_t at = 0; at < doc.size(); at += 97) {
        ASSERT_TRUE(parser.Feed(doc.substr(at, 97)).ok());
      }
      ASSERT_TRUE(parser.Finish().ok());

      auto batched_text = batched.value()->CurrentText();
      ASSERT_TRUE(batched_text.ok()) << query << ": " << batched_text.status();
      EXPECT_EQ(batched_text.value(), single_text.value())
          << query << " (batch_size " << batch_size << ")";
      EXPECT_EQ(StripOids(batched.value()->CurrentEvents()),
                StripOids(single_events))
          << query << " (batch_size " << batch_size << ")";
    }
  }
}

// PushBatch through a straight-through stage (TraceSink overrides
// DispatchBatch) must produce the identical sink sequence and trace window
// as per-event Push.
TEST(BatchEquivalenceTest, PushBatchMatchesPushThroughTraceSink) {
  EventVec events = GenerateStockTicker({});
  ASSERT_FALSE(events.empty());

  CollectingSink single_sink;
  Pipeline single;
  TraceSink* single_tap = single.AddStage<TraceSink>(single.context());
  single.SetSink(&single_sink);
  for (const Event& e : events) single.Push(e);

  CollectingSink batched_sink;
  Pipeline batched;
  TraceSink* batched_tap = batched.AddStage<TraceSink>(batched.context());
  batched.SetSink(&batched_sink);
  batched.PushBatch(EventBatch(events.begin(), events.end()));

  EXPECT_EQ(batched_sink.events(), single_sink.events());
  EXPECT_EQ(batched_tap->Snapshot(), single_tap->Snapshot());
  EXPECT_EQ(batched_tap->events_seen(), single_tap->events_seen());
}

// The default AcceptBatch loop and the metrics bookkeeping must agree
// between the two paths, not just the output events.
TEST(BatchEquivalenceTest, MetricsAgreeBetweenPaths) {
  std::string doc = TestDocument();
  const char* query = "X//book[publisher=\"Wiley\"]/author";

  auto single = QuerySession::Open(query);
  ASSERT_TRUE(single.ok());
  SaxParser::Options token_options;
  token_options.stream_id = single.value()->source_id();
  auto tokens = SaxParser::Tokenize(doc, token_options);
  ASSERT_TRUE(tokens.ok());
  for (const Event& e : tokens.value()) single.value()->Push(e);

  auto batched = QuerySession::Open(query);
  ASSERT_TRUE(batched.ok());
  ASSERT_TRUE(batched.value()->PushDocument(doc).ok());

  EXPECT_EQ(batched.value()->metrics()->transformer_calls(),
            single.value()->metrics()->transformer_calls());
  EXPECT_EQ(batched.value()->metrics()->events_emitted(),
            single.value()->metrics()->events_emitted());
}

}  // namespace
}  // namespace xflux
