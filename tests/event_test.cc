#include "core/event.h"

#include <gtest/gtest.h>

#include "core/well_formed.h"

namespace xflux {
namespace {

TEST(EventTest, FactoriesSetFields) {
  Event e = Event::StartElement(3, "book", 17);
  EXPECT_EQ(e.kind, EventKind::kStartElement);
  EXPECT_EQ(e.id, 3u);
  EXPECT_EQ(e.tag_name(), "book");
  EXPECT_EQ(e.oid, 17u);

  Event u = Event::StartReplace(1, 2);
  EXPECT_EQ(u.kind, EventKind::kStartReplace);
  EXPECT_EQ(u.id, 1u);
  EXPECT_EQ(u.uid, 2u);
}

TEST(EventTest, Classification) {
  EXPECT_TRUE(Event::Characters(0, "x").IsSimple());
  EXPECT_TRUE(Event::StartTuple(0).IsSimple());
  EXPECT_FALSE(Event::StartMutable(0, 1).IsSimple());
  EXPECT_TRUE(Event::StartMutable(0, 1).IsUpdateStart());
  EXPECT_TRUE(Event::EndInsertAfter(0, 1).IsUpdateEnd());
  EXPECT_TRUE(Event::Hide(1).IsUpdate());
  EXPECT_FALSE(Event::Hide(1).IsUpdateStart());
}

TEST(EventTest, EqualityComparesOid) {
  // Regression: operator== used to skip oid, so events differing only in
  // node identity compared equal — masking oid bugs in backward-axis joins.
  Event a = Event::StartElement(0, "name", 17);
  Event b = Event::StartElement(0, "name", 18);
  EXPECT_FALSE(a == b);
  b.oid = 17;
  EXPECT_TRUE(a == b);
}

TEST(EventTest, MatchingUpdateEnd) {
  EXPECT_EQ(MatchingUpdateEnd(EventKind::kStartMutable), EventKind::kEndMutable);
  EXPECT_EQ(MatchingUpdateEnd(EventKind::kStartReplace), EventKind::kEndReplace);
  EXPECT_EQ(MatchingUpdateEnd(EventKind::kStartInsertBefore),
            EventKind::kEndInsertBefore);
  EXPECT_EQ(MatchingUpdateEnd(EventKind::kStartInsertAfter),
            EventKind::kEndInsertAfter);
}

TEST(EventTest, TryMatchingUpdateEndIsTotal) {
  // The Try variant must classify *every* kind without trapping — it is
  // the form hostile-input paths (the protocol guard) are built on.
  for (int k = 0; k <= static_cast<int>(EventKind::kShow); ++k) {
    auto kind = static_cast<EventKind>(k);
    EventKind end = EventKind::kStartStream;
    bool is_start = TryMatchingUpdateEnd(kind, &end);
    if (is_start) {
      EXPECT_EQ(end, MatchingUpdateEnd(kind));
    } else {
      EXPECT_EQ(end, EventKind::kStartStream);  // untouched on failure
    }
  }
}

TEST(EventTest, MatchingUpdateEndOnNonStartTrapsEvenInRelease) {
  EXPECT_DEATH({ (void)MatchingUpdateEnd(EventKind::kCharacters); },
               "XFLUX_CHECK failed");
}

TEST(EventTest, ToStringMatchesPaperNotation) {
  EXPECT_EQ(Event::StartElement(0, "name").ToString(), "sE(0,\"name\")");
  EXPECT_EQ(Event::Characters(0, "Smith").ToString(), "cD(0,\"Smith\")");
  EXPECT_EQ(Event::StartReplace(1, 2).ToString(), "sR(1,2)");
  EXPECT_EQ(Event::Freeze(7).ToString(), "freeze(7)");
}

TEST(WellFormedTest, TokenizedElementIsWellFormed) {
  // <name>Smith</name> from Section II.
  EventVec v = {Event::StartElement(0, "name"), Event::Characters(0, "Smith"),
                Event::EndElement(0, "name")};
  EXPECT_TRUE(CheckWellFormed(v, 0).ok());
}

TEST(WellFormedTest, OtherStreamsAreIrrelevant) {
  EventVec v = {Event::StartElement(0, "a"), Event::StartElement(1, "b"),
                Event::EndElement(0, "a")};
  EXPECT_TRUE(CheckWellFormed(v, 0).ok());
  EXPECT_FALSE(CheckWellFormed(v, 1).ok());
}

TEST(WellFormedTest, MismatchedTagsRejected) {
  EventVec v = {Event::StartElement(0, "a"), Event::EndElement(0, "b")};
  EXPECT_FALSE(CheckWellFormed(v, 0).ok());
}

TEST(WellFormedTest, UnmatchedEndRejected) {
  EventVec v = {Event::EndElement(0, "a")};
  EXPECT_FALSE(CheckWellFormed(v, 0).ok());
}

TEST(WellFormedTest, ConcatenationOfWellFormedIsWellFormed) {
  EventVec a = {Event::StartElement(0, "a"), Event::EndElement(0, "a")};
  EventVec b = {Event::Characters(0, "t")};
  EventVec both = a;
  both.insert(both.end(), b.begin(), b.end());
  EXPECT_TRUE(CheckWellFormed(both, 0).ok());
}

TEST(ValidateUpdateStreamTest, PaperUpdateExampleValidates) {
  EventVec v = {
      Event::StartMutable(0, 1),      Event::Characters(1, "x"),
      Event::EndMutable(0, 1),        Event::StartReplace(1, 2),
      Event::Characters(2, "y"),      Event::EndReplace(1, 2),
      Event::StartInsertAfter(2, 3),  Event::Characters(3, "z"),
      Event::EndInsertAfter(2, 3),    Event::StartInsertBefore(1, 3),
      Event::Characters(3, "w"),      Event::EndInsertBefore(1, 3),
  };
  EXPECT_TRUE(ValidateUpdateStream(v).ok()) << ValidateUpdateStream(v);
}

TEST(ValidateUpdateStreamTest, InterleavedBracketsValidate) {
  // The concatenation example of Section VI-A: events of region 1 appear
  // between the brackets of region 0 and vice versa.
  EventVec v = {
      Event::StartTuple(2),           Event::StartMutable(2, 1),
      Event::StartInsertBefore(1, 0), Event::Characters(0, "x"),
      Event::Characters(1, "y"),      Event::Characters(0, "z"),
      Event::Characters(1, "w"),      Event::EndInsertBefore(1, 0),
      Event::EndMutable(2, 1),        Event::EndTuple(2),
  };
  EXPECT_TRUE(ValidateUpdateStream(v).ok()) << ValidateUpdateStream(v);
}

TEST(ValidateUpdateStreamTest, MismatchedBracketRejected) {
  EventVec v = {Event::StartMutable(0, 1), Event::EndReplace(0, 1)};
  EXPECT_FALSE(ValidateUpdateStream(v).ok());
}

TEST(ValidateUpdateStreamTest, UnclosedBracketRejected) {
  EventVec v = {Event::StartMutable(0, 1)};
  EXPECT_FALSE(ValidateUpdateStream(v).ok());
}

TEST(ValidateUpdateStreamTest, ContentAfterCloseRejected) {
  EventVec v = {Event::StartMutable(0, 1), Event::EndMutable(0, 1),
                Event::Characters(1, "late")};
  EXPECT_FALSE(ValidateUpdateStream(v).ok());
}

TEST(ValidateUpdateStreamTest, IdReuseIsLegal) {
  EventVec v = {Event::StartMutable(0, 1),     Event::EndMutable(0, 1),
                Event::StartInsertAfter(1, 3), Event::EndInsertAfter(1, 3),
                Event::StartInsertBefore(1, 3), Event::Characters(3, "w"),
                Event::EndInsertBefore(1, 3)};
  EXPECT_TRUE(ValidateUpdateStream(v).ok()) << ValidateUpdateStream(v);
}

}  // namespace
}  // namespace xflux
