#include <gtest/gtest.h>

#include "xquery/engine.h"
#include "xquery/parser.h"

namespace xflux {
namespace {

std::string RunQ(std::string_view query, std::string_view xml) {
  auto result = RunQueryOnXml(query, xml);
  EXPECT_TRUE(result.ok()) << result.status() << "\nquery: " << query;
  return result.ok() ? result.value() : "<error>";
}

// ---------------------------------------------------------------------------
// Parser

TEST(ParserTest, SimplePathParses) {
  auto ast = ParseQuery("X//item[location=\"Albania\"]/quantity");
  ASSERT_TRUE(ast.ok()) << ast.status();
  EXPECT_EQ(ast.value()->kind, AstKind::kStep);  // /quantity outermost
  EXPECT_EQ(ast.value()->name, "quantity");
  EXPECT_EQ(ast.value()->children[0]->kind, AstKind::kFilter);
}

TEST(ParserTest, BackwardAxesParse) {
  ASSERT_TRUE(ParseQuery("count(X//item/..)").ok());
  ASSERT_TRUE(ParseQuery("count(X//item/ancestor::europe)").ok());
  ASSERT_TRUE(ParseQuery("count(X//item/ancestor::*//location)").ok());
}

TEST(ParserTest, FlworParses) {
  auto ast = ParseQuery(
      "for $d in D//inproceedings where contains($d/author,\"Smith\") "
      "order by $d/year return ($d/year/text(),\": \",$d/title/text(),\"\\n\")");
  ASSERT_TRUE(ast.ok()) << ast.status();
  const AstNode& flwor = *ast.value();
  EXPECT_EQ(flwor.kind, AstKind::kFlwor);
  EXPECT_EQ(flwor.name, "d");
  EXPECT_GE(flwor.where_child, 0);
  EXPECT_GE(flwor.orderby_child, 0);
  EXPECT_GE(flwor.return_child, 0);
}

TEST(ParserTest, ElementConstructorParses) {
  auto ast = ParseQuery(
      "<result>{ for $c in X//item where $c/location = \"Albania\" "
      "return <item>{ $c/quantity, $c/payment }</item> }</result>");
  ASSERT_TRUE(ast.ok()) << ast.status();
  EXPECT_EQ(ast.value()->kind, AstKind::kElementCtor);
  EXPECT_EQ(ast.value()->name, "result");
}

TEST(ParserTest, MultiplePredicatesParse) {
  auto ast = ParseQuery(
      "X//item[location=\"Albania\"][payment=\"Cash\"]/location");
  ASSERT_TRUE(ast.ok()) << ast.status();
}

TEST(ParserTest, SyntaxErrorsAreReported) {
  EXPECT_FALSE(ParseQuery("").ok());
  EXPECT_FALSE(ParseQuery("X//item[").ok());
  EXPECT_FALSE(ParseQuery("for $x return 3").ok());
  EXPECT_FALSE(ParseQuery("X//item extra").ok());
  EXPECT_FALSE(ParseQuery("<a>{ X }</b>").ok());
  EXPECT_FALSE(ParseQuery("count(X//item").ok());
  EXPECT_FALSE(ParseQuery("X//item = unclosed\"").ok());
}

// ---------------------------------------------------------------------------
// End-to-end evaluation on miniature documents.

constexpr char kAuctions[] =
    "<site><regions>"
    "<europe>"
    "<item id=\"i1\"><location>Albania</location><quantity>2</quantity>"
    "<payment>Cash</payment><name>clock</name></item>"
    "<item id=\"i2\"><location>France</location><quantity>5</quantity>"
    "<payment>Credit</payment><name>vase</name></item>"
    "</europe>"
    "<asia>"
    "<item id=\"i3\"><location>Albania</location><quantity>7</quantity>"
    "<payment>Credit</payment><name>coin</name></item>"
    "</asia>"
    "</regions></site>";

TEST(QueryTest, Q1DescendantChainWithPredicate) {
  EXPECT_EQ(RunQ("X//europe//item[location=\"Albania\"]/quantity", kAuctions),
            "<quantity>2</quantity>");
}

TEST(QueryTest, Q2TwoPredicates) {
  EXPECT_EQ(RunQ("X//item[location=\"Albania\"][payment=\"Cash\"]/location",
                kAuctions),
            "<location>Albania</location>");
}

TEST(QueryTest, Q3WildcardWithPredicate) {
  // //*[location="Albania"]/quantity: every element with a matching
  // location child.
  EXPECT_EQ(RunQ("X//*[location=\"Albania\"]/quantity", kAuctions),
            "<quantity>2</quantity><quantity>7</quantity>");
}

TEST(QueryTest, Q4CountOfParents) {
  EXPECT_EQ(RunQ("count(X//item[location=\"Albania\"]/..)", kAuctions), "2");
}

TEST(QueryTest, Q5CountOfAncestorTag) {
  EXPECT_EQ(RunQ("count(X//item[location=\"Albania\"]/ancestor::europe)",
                kAuctions),
            "1");
}

TEST(QueryTest, Q6CountOfAncestorDescendants) {
  // Ancestors of the two Albania items, then //location under each
  // ancestor copy, counted.
  // europe (2 locations), asia (1), regions (3), plus none for hidden.
  EXPECT_EQ(RunQ("count(X//item[location=\"Albania\"]/ancestor::*//location)",
                kAuctions),
            "6");
}

TEST(QueryTest, Q7FlworConstruct) {
  EXPECT_EQ(
      RunQ("<result>{ for $c in X//item where $c/location = \"Albania\" "
          "return <item>{ $c/quantity, $c/payment }</item> }</result>",
          kAuctions),
      "<result><item><quantity>2</quantity><payment>Cash</payment></item>"
      "<item><quantity>7</quantity><payment>Credit</payment></item>"
      "</result>");
}

constexpr char kDblp[] =
    "<dblp>"
    "<inproceedings><author>John Smith</author><title>T1</title>"
    "<year>2001</year></inproceedings>"
    "<inproceedings><author>Jane Doe</author><title>T2</title>"
    "<year>1999</year></inproceedings>"
    "<inproceedings><author>Ann Smith</author><title>T3</title>"
    "<year>1997</year></inproceedings>"
    "</dblp>";

TEST(QueryTest, Q8AuthorTitle) {
  EXPECT_EQ(RunQ("D//inproceedings[author=\"John Smith\"]/title", kDblp),
            "<title>T1</title>");
}

TEST(QueryTest, Q9FlworContainsOrderBy) {
  EXPECT_EQ(
      RunQ("for $d in D//inproceedings where contains($d/author,\"Smith\") "
          "order by $d/year "
          "return ($d/year/text(),\": \",$d/title/text(),\"\\n\")",
          kDblp),
      "1997: T3\n2001: T1\n");
}

TEST(QueryTest, SimpleChildSteps) {
  EXPECT_EQ(RunQ("X/regions/europe/item/name", kAuctions),
            "<name>clock</name><name>vase</name>");
}

TEST(QueryTest, AttributeStep) {
  EXPECT_EQ(RunQ("X//item[location=\"Albania\"]/@id", kAuctions),
            "i1i3");  // attribute values render as text items
}

TEST(QueryTest, ExistencePredicate) {
  const char doc[] =
      "<l><a><flag/>x</a><b>y</b><a>z</a></l>";
  EXPECT_EQ(RunQ("X//a[flag]", doc), "<a><flag/>x</a>");
}

TEST(QueryTest, TextStep) {
  EXPECT_EQ(RunQ("X//item[payment=\"Cash\"]/name/text()", kAuctions), "clock");
}

TEST(QueryTest, CountWholeSets) {
  EXPECT_EQ(RunQ("count(X//item)", kAuctions), "3");
  EXPECT_EQ(RunQ("count(X//location)", kAuctions), "3");
  EXPECT_EQ(RunQ("count(X//item[location=\"Nowhere\"])", kAuctions), "0");
}

TEST(QueryTest, SumAggregates) {
  EXPECT_EQ(RunQ("sum(X//quantity)", kAuctions), "14");
}

TEST(QueryTest, AvgAggregates) {
  // quantities 2, 5, 7 -> mean 14/3.
  EXPECT_EQ(RunQ("avg(X//quantity/text())", kAuctions), "4.66667");
  EXPECT_EQ(RunQ("avg(X//nosuch)", kAuctions), "");
}

TEST(QueryTest, OrderByDescending) {
  EXPECT_EQ(RunQ("for $i in X//item order by $i/quantity descending "
                 "return $i/name",
                 kAuctions),
            "<name>coin</name><name>vase</name><name>clock</name>");
  // An explicit 'ascending' keyword parses too.
  EXPECT_EQ(RunQ("for $i in X//item order by $i/quantity ascending "
                 "return $i/name",
                 kAuctions),
            "<name>clock</name><name>vase</name><name>coin</name>");
}

TEST(QueryTest, OrderByNumericKeys) {
  EXPECT_EQ(RunQ("for $i in X//item order by $i/quantity return $i/name",
                kAuctions),
            "<name>clock</name><name>vase</name><name>coin</name>");
}

TEST(QueryTest, IntroBookstoreQuery) {
  // The paper's introduction query (flattened one level).
  const char books[] =
      "<biblio>"
      "<book><publisher>Wiley</publisher><author>Smith</author>"
      "<title>B1</title><price>30</price></book>"
      "<book><publisher>Other</publisher><author>Smith</author>"
      "<title>B2</title><price>10</price></book>"
      "<book><publisher>Wiley</publisher><author>Smith</author>"
      "<title>B3</title><price>20</price></book>"
      "<book><publisher>Wiley</publisher><author>Jones</author>"
      "<title>B4</title><price>5</price></book>"
      "</biblio>";
  EXPECT_EQ(
      RunQ("<books>{ for $b in X//book[publisher=\"Wiley\"] "
          "where $b/author = \"Smith\" order by $b/price "
          "return <book>{ $b/title, $b/price }</book> }</books>",
          books),
      "<books><book><title>B3</title><price>20</price></book>"
      "<book><title>B1</title><price>30</price></book></books>");
}

TEST(QueryTest, UnsupportedAndInvalidQueriesFail) {
  EXPECT_FALSE(RunQueryOnXml("X//item[", "<a/>").ok());
  EXPECT_FALSE(RunQueryOnXml("for $x in X//a return $y", "<a/>").ok());
}

// ---------------------------------------------------------------------------
// Continuous sessions: updates arriving after the document.

TEST(QuerySessionTest, ContinuousUpdateFlipsAnswer) {
  auto session = QuerySession::Open("X//stock[name=\"IBM\"]/quote");
  ASSERT_TRUE(session.ok()) << session.status();
  QuerySession& q = *session.value();
  q.PushAll({Event::StartStream(0),
             Event::StartElement(0, "ticker", 1),
             Event::StartElement(0, "stock", 2),
             Event::StartElement(0, "name", 3),
             Event::Characters(0, "IBM"),
             Event::EndElement(0, "name", 3),
             Event::StartElement(0, "quote", 4),
             Event::StartMutable(0, 1000),
             Event::Characters(1000, "120.00"),
             Event::EndMutable(0, 1000),
             Event::EndElement(0, "quote", 4),
             Event::EndElement(0, "stock", 2)});
  EXPECT_EQ(q.CurrentText().value(), "<quote>120.00</quote>");
  // A tick: the quote region is replaced.
  q.PushAll({Event::StartReplace(1000, 1001), Event::Characters(1001, "121.5"),
             Event::EndReplace(1000, 1001)});
  ASSERT_TRUE(q.display_status().ok()) << q.display_status();
  EXPECT_EQ(q.CurrentText().value(), "<quote>121.5</quote>");
}

TEST(QuerySessionTest, PredicateFlipsOnUpdate) {
  auto session = QuerySession::Open("X//stock[name=\"IBM\"]/quote");
  ASSERT_TRUE(session.ok()) << session.status();
  QuerySession& q = *session.value();
  q.PushAll({Event::StartStream(0),
             Event::StartElement(0, "ticker", 1),
             Event::StartElement(0, "stock", 2),
             Event::StartElement(0, "name", 3),
             Event::StartMutable(0, 1000),
             Event::Characters(1000, "HP"),
             Event::EndMutable(0, 1000),
             Event::EndElement(0, "name", 3),
             Event::StartElement(0, "quote", 4),
             Event::Characters(0, "55"),
             Event::EndElement(0, "quote", 4),
             Event::EndElement(0, "stock", 2)});
  EXPECT_EQ(q.CurrentText().value(), "");
  // The name changes to IBM: the quote appears retroactively.
  q.PushAll({Event::StartReplace(1000, 1001), Event::Characters(1001, "IBM"),
             Event::EndReplace(1000, 1001)});
  ASSERT_TRUE(q.display_status().ok()) << q.display_status();
  EXPECT_EQ(q.CurrentText().value(), "<quote>55</quote>");
}

}  // namespace
}  // namespace xflux
