#include "naive/naive_ops.h"

#include <gtest/gtest.h>

#include "core/result_display.h"
#include "core/transform_stage.h"
#include "ops/backward.h"
#include "ops/child_step.h"
#include "ops/clone.h"
#include "ops/descendant_step.h"
#include "ops/predicate.h"
#include "ops/sorter.h"
#include "ops/textops.h"
#include "ops/tuples.h"
#include "tests/test_util.h"
#include "util/prng.h"
#include "xml/serializer.h"

namespace xflux {
namespace {

std::string MatXml(const EventVec& raw) {
  auto m = Materialize(raw);
  EXPECT_TRUE(m.ok()) << m.status();
  if (!m.ok()) return "<error>";
  auto xml = XmlSerializer::ToXml(m.value());
  EXPECT_TRUE(xml.ok()) << xml.status();
  return xml.ok() ? xml.value() : "<error>";
}

// A well-formed random document built with an explicit stack.
std::string StackedRandomDocument(uint64_t seed, int node_budget) {
  Prng prng(seed);
  const std::vector<std::string> tags = {"book", "author", "title", "x"};
  const std::vector<std::string> texts = {"Smith", "Jones", "5", "17", "zz"};
  std::string out = "<root>";
  std::vector<std::string> stack;
  for (int i = 0; i < node_budget; ++i) {
    double roll = prng.NextDouble();
    if (roll < 0.40 && stack.size() < 6) {
      const std::string& tag = prng.Pick(tags);
      out += "<" + tag + ">";
      stack.push_back(tag);
    } else if (roll < 0.70 && !stack.empty()) {
      out += "</" + stack.back() + ">";
      stack.pop_back();
    } else {
      out += prng.Pick(texts);
    }
  }
  while (!stack.empty()) {
    out += "</" + stack.back() + ">";
    stack.pop_back();
  }
  out += "</root>";
  return out;
}

TEST(NaiveCountTest, CountsAtEndOfStream) {
  EventVec in = Tok("<l><a/><b/></l>");
  RunResult r = RunPipeline(in, [](PipelineContext*) {
    std::vector<std::unique_ptr<StateTransformer>> v;
    v.push_back(std::make_unique<ChildStep>(0, "*"));
    v.push_back(std::make_unique<NaiveCount>(0, CountMode::kTopLevelElements));
    return v;
  });
  EXPECT_EQ(r.materialized, EventVec{Event::Characters(0, "2")});
}

TEST(NaiveDescendantTest, MatchesUnblockedDescendant) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    std::string doc = StackedRandomDocument(seed, 60);
    EventVec in = Tok(doc);
    RunResult unblocked = RunPipeline(in, [](PipelineContext* c) {
      std::vector<std::unique_ptr<StateTransformer>> v;
      v.push_back(std::make_unique<DescendantStep>(c, 0, "*"));
      return v;
    });
    RunResult naive = RunPipeline(in, [](PipelineContext* c) {
      std::vector<std::unique_ptr<StateTransformer>> v;
      v.push_back(std::make_unique<NaiveDescendant>(c, 0, "*"));
      return v;
    });
    EXPECT_EQ(MatXml(unblocked.raw), MatXml(naive.raw))
        << "seed " << seed << " doc " << doc;
  }
}

TEST(NaiveDescendantTest, TagModeMatchesToo) {
  for (uint64_t seed = 21; seed <= 40; ++seed) {
    std::string doc = StackedRandomDocument(seed, 60);
    EventVec in = Tok(doc);
    RunResult unblocked = RunPipeline(in, [](PipelineContext* c) {
      std::vector<std::unique_ptr<StateTransformer>> v;
      v.push_back(std::make_unique<DescendantStep>(c, 0, "book"));
      return v;
    });
    RunResult naive = RunPipeline(in, [](PipelineContext* c) {
      std::vector<std::unique_ptr<StateTransformer>> v;
      v.push_back(std::make_unique<NaiveDescendant>(c, 0, "book"));
      return v;
    });
    EXPECT_EQ(MatXml(unblocked.raw), MatXml(naive.raw))
        << "seed " << seed << " doc " << doc;
  }
}

RunResult RunWithPredicate(const EventVec& in, bool naive) {
  Pipeline pipeline;
  PipelineContext* c = pipeline.context();
  pipeline.Add(std::make_unique<TransformStage>(
      c, std::make_unique<ChildStep>(0, "book")));
  pipeline.Add(std::make_unique<CloneFilter>(c, 0, 1));
  pipeline.Add(std::make_unique<TransformStage>(
      c, std::make_unique<ChildStep>(1, "author")));
  pipeline.Add(std::make_unique<TransformStage>(
      c, std::make_unique<TextCompare>(c, 1, TextMatch::kEquals, "Smith")));
  if (naive) {
    pipeline.Add(std::make_unique<TransformStage>(
        c, std::make_unique<NaivePredicate>(c, 0, 1)));
  } else {
    pipeline.Add(std::make_unique<TransformStage>(
        c, std::make_unique<PredicateOp>(c, 0, 1, PredicateScope::kElement)));
  }
  CollectingSink sink;
  pipeline.SetSink(&sink);
  pipeline.PushAll(in);
  RunResult result;
  result.raw = sink.Take();
  auto m = Materialize(result.raw);
  EXPECT_TRUE(m.ok()) << m.status();
  if (m.ok()) result.materialized = std::move(m).value();
  return result;
}

TEST(NaivePredicateTest, MatchesUnblockedPredicate) {
  for (uint64_t seed = 50; seed <= 80; ++seed) {
    std::string doc = StackedRandomDocument(seed, 80);
    EventVec in = Tok(doc);
    RunResult unblocked = RunWithPredicate(in, /*naive=*/false);
    RunResult naive = RunWithPredicate(in, /*naive=*/true);
    EXPECT_EQ(MatXml(unblocked.raw), MatXml(naive.raw))
        << "seed " << seed << " doc " << doc;
  }
}

TEST(NaivePredicateTest, BuffersWholeElements) {
  Pipeline pipeline;
  PipelineContext* c = pipeline.context();
  pipeline.Add(std::make_unique<TransformStage>(
      c, std::make_unique<ChildStep>(0, "book")));
  pipeline.Add(std::make_unique<CloneFilter>(c, 0, 1));
  pipeline.Add(std::make_unique<TransformStage>(
      c, std::make_unique<ChildStep>(1, "author")));
  pipeline.Add(std::make_unique<TransformStage>(
      c, std::make_unique<TextCompare>(c, 1, TextMatch::kEquals, "Smith")));
  pipeline.Add(std::make_unique<TransformStage>(
      c, std::make_unique<NaivePredicate>(c, 0, 1)));
  CollectingSink sink;
  pipeline.SetSink(&sink);
  pipeline.PushAll(
      Tok("<l><book><author>Smith</author><t>abc</t></book></l>"));
  EXPECT_GT(c->metrics()->max_buffered_events(), 0);
  EXPECT_EQ(c->metrics()->buffered_events(), 0);  // all released
}

RunResult RunWithSorter(const EventVec& in, bool naive) {
  Pipeline pipeline;
  PipelineContext* c = pipeline.context();
  pipeline.Add(std::make_unique<TransformStage>(
      c, std::make_unique<ChildStep>(0, "e")));
  pipeline.Add(std::make_unique<TransformStage>(
      c, std::make_unique<MakeTuples>(0)));
  pipeline.Add(std::make_unique<CloneFilter>(c, 0, 1));
  pipeline.Add(std::make_unique<TransformStage>(
      c, std::make_unique<ChildStep>(1, "k")));
  pipeline.Add(std::make_unique<TransformStage>(
      c, std::make_unique<StringValue>(1)));
  if (naive) {
    pipeline.Add(std::make_unique<TransformStage>(
        c, std::make_unique<NaiveSorter>(c, 0, 1)));
  } else {
    pipeline.Add(std::make_unique<SortFilter>(c, 1));
  }
  CollectingSink sink;
  pipeline.SetSink(&sink);
  pipeline.PushAll(in);
  RunResult result;
  result.raw = sink.Take();
  auto m = Materialize(result.raw);
  EXPECT_TRUE(m.ok()) << m.status();
  if (m.ok()) result.materialized = std::move(m).value();
  return result;
}

TEST(NaiveSorterTest, MatchesUnblockedSorter) {
  Prng prng(7);
  for (int round = 0; round < 15; ++round) {
    std::string doc = "<l>";
    int n = static_cast<int>(prng.Uniform(12)) + 1;
    for (int i = 0; i < n; ++i) {
      doc += "<e><k>" + std::to_string(prng.Uniform(20)) + "</k><v>" +
             std::to_string(i) + "</v></e>";
    }
    doc += "</l>";
    EventVec in = Tok(doc);
    RunResult unblocked = RunWithSorter(in, /*naive=*/false);
    RunResult naive = RunWithSorter(in, /*naive=*/true);
    EXPECT_EQ(MatXml(unblocked.raw), MatXml(naive.raw)) << doc;
  }
}

TEST(NaiveSorterTest, UnblockedEmitsBeforeEndOfStream) {
  // The headline behavioural difference: the unblocked sorter has produced
  // output before eS; the naive one has not.
  std::string doc = "<l><e><k>2</k></e><e><k>1</k></e></l>";
  EventVec in = Tok(doc);
  EventVec prefix(in.begin(), in.end() - 2);  // withhold </l> and eS

  auto run_prefix = [&](bool naive) {
    Pipeline pipeline;
    PipelineContext* c = pipeline.context();
    pipeline.Add(std::make_unique<TransformStage>(
        c, std::make_unique<ChildStep>(0, "e")));
    pipeline.Add(std::make_unique<TransformStage>(
        c, std::make_unique<MakeTuples>(0)));
    pipeline.Add(std::make_unique<CloneFilter>(c, 0, 1));
    pipeline.Add(std::make_unique<TransformStage>(
        c, std::make_unique<ChildStep>(1, "k")));
    pipeline.Add(std::make_unique<TransformStage>(
        c, std::make_unique<StringValue>(1)));
    if (naive) {
      pipeline.Add(std::make_unique<TransformStage>(
          c, std::make_unique<NaiveSorter>(c, 0, 1)));
    } else {
      pipeline.Add(std::make_unique<SortFilter>(c, 1));
    }
    ResultDisplay display;
    pipeline.SetSink(&display);
    pipeline.PushAll(prefix);
    return display.CurrentText().value();
  };

  EXPECT_NE(run_prefix(false), "");  // unblocked: partial sorted output
  EXPECT_EQ(run_prefix(true), "");   // naive: still blocking
}

}  // namespace
}  // namespace xflux
