// Tests for the owned-buffer / mapped-file zero-copy feed (DESIGN.md
// Section 12): the adopted and mmap'd ingest paths must be byte-for-byte
// observationally identical to the copy-in path on clean and corrupted
// input in both scan modes; adopted storage must outlive the parser for
// as long as any slice aliases it, with the deleter running exactly once;
// and the boundary splice must stay a rounding error on bulk feeds.

#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <random>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/event.h"
#include "core/event_sink.h"
#include "data/generators.h"
#include "testing/fault_injector.h"
#include "testing/traffic_gen.h"
#include "util/buffer_ledger.h"
#include "util/text_ref.h"
#include "xml/file_source.h"
#include "xml/sax_parser.h"
#include "xml/scan.h"

namespace xflux {
namespace {

struct ParseRun {
  Status status = Status::OK();
  EventVec events;
  SaxParser::IngestStats stats;
};

void NoopDeleter(void*, const char*, size_t) {}

/// Feeds `doc` split at `cuts` through the copy path (adopted=false) or
/// as adopted foreign chunks (adopted=true) over the same boundaries.
ParseRun ParseChunks(std::string_view doc, const std::vector<size_t>& cuts,
                     bool adopted, SaxParser::Options options = {}) {
  ParseRun run;
  CollectingSink sink;
  SaxParser parser(options, &sink);
  size_t at = 0;
  auto feed = [&](std::string_view piece) {
    if (piece.empty()) return Status::OK();
    if (adopted) {
      return parser.Feed(
          StableChunk::Adopt(piece.data(), piece.size(), NoopDeleter,
                             nullptr),
          piece.size());
    }
    return parser.Feed(piece);
  };
  for (size_t cut : cuts) {
    run.status = feed(doc.substr(at, cut - at));
    at = cut;
    if (!run.status.ok()) break;
  }
  if (run.status.ok()) run.status = feed(doc.substr(at));
  if (run.status.ok()) run.status = parser.Finish();
  run.stats = parser.ingest_stats();
  run.events = sink.Take();
  return run;
}

/// Writes `text` to a mkstemp file; the caller unlinks.
std::string WriteTempFile(const std::string& text) {
  char path[] = "/tmp/xflux_file_source_XXXXXX";
  int fd = ::mkstemp(path);
  EXPECT_GE(fd, 0);
  size_t off = 0;
  while (off < text.size()) {
    ssize_t n = ::write(fd, text.data() + off, text.size() - off);
    if (n <= 0) {
      ADD_FAILURE() << "temp write failed";
      break;
    }
    off += static_cast<size_t>(n);
  }
  ::close(fd);
  return path;
}

ParseRun ParseMapped(const std::string& path, MappedFileSource::Options mopt,
                     SaxParser::Options options = {}) {
  ParseRun run;
  CollectingSink sink;
  SaxParser parser(options, &sink);
  auto source = MappedFileSource::Open(path, mopt);
  if (!source.ok()) {
    run.status = source.status();
    return run;
  }
  for (;;) {
    auto chunk = source.value().Next();
    if (!chunk.ok()) {
      run.status = chunk.status();
      break;
    }
    if (!chunk.value().valid()) break;
    run.status = parser.Feed(std::move(chunk).value());
    if (!run.status.ok()) break;
  }
  if (run.status.ok()) run.status = parser.Finish();
  run.stats = parser.ingest_stats();
  run.events = sink.Take();
  return run;
}

void ExpectSameEvents(const EventVec& a, const EventVec& b,
                      const std::string& label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].kind, b[i].kind) << label << " event " << i;
    ASSERT_EQ(a[i].id, b[i].id) << label << " event " << i;
    ASSERT_EQ(a[i].tag, b[i].tag) << label << " event " << i;
    ASSERT_EQ(a[i].oid, b[i].oid) << label << " event " << i;
    ASSERT_EQ(a[i].chars(), b[i].chars()) << label << " event " << i;
  }
}

void ExpectSameRun(const ParseRun& a, const ParseRun& b,
                   const std::string& label) {
  ASSERT_EQ(a.status.code(), b.status.code()) << label;
  ASSERT_EQ(a.status.message(), b.status.message()) << label;
  ExpectSameEvents(a.events, b.events, label);
}

// The core differential guarantee: feeding the same bytes copied, adopted,
// and out of an mmap'd file yields identical events, text payloads, and
// error verdicts — on clean documents, malformed documents, and a corpus
// of randomly corrupted ones, in both scan modes.
TEST(FileSource, CopiedAdoptedAndMappedRunsAreIdentical) {
  std::vector<std::string> corpus = {
      GenerateXmark(XmarkOptionsForBytes(48 * 1024)),
      "<a><b>x</b><!--c--><![CDATA[<raw>]]><?pi d?></a>",
      "<a>fish &amp; chips &bogus;</a>",
      "<a><b>x</c></a>",
      "<biblio><book>text",
  };
  for (int seed = 0; seed < 24; ++seed) {
    corpus.push_back(CorruptBytes(
        serve::MakeBookDocument(static_cast<uint64_t>(seed), 768),
        static_cast<uint64_t>(seed), 0.02));
  }
  std::mt19937 rng(1212);
  for (int scalar = 0; scalar <= 1; ++scalar) {
    scan::SetForceScalar(scalar != 0);
    for (size_t i = 0; i < corpus.size(); ++i) {
      const std::string& doc = corpus[i];
      std::vector<size_t> cuts;
      size_t at = 0;
      while (at < doc.size()) {
        at += 1 + rng() % 4096;
        if (at >= doc.size()) break;
        cuts.push_back(at);
      }
      std::string label = std::string(scalar != 0 ? "scalar" : "simd") +
                          " corpus[" + std::to_string(i) + "]";
      // Tiny threshold so even small corrupted docs take the foreign-
      // window path — the point is the boundary machinery, not the size.
      SaxParser::Options adopt_all;
      adopt_all.adopt_min_bytes = 1;
      ParseRun copied = ParseChunks(doc, cuts, /*adopted=*/false);
      ParseRun adopted = ParseChunks(doc, cuts, /*adopted=*/true, adopt_all);
      ExpectSameRun(copied, adopted, label + " adopted");
      EXPECT_GT(adopted.stats.chunk_adoptions, 0u) << label;

      std::string path = WriteTempFile(doc);
      MappedFileSource::Options mopt;
      mopt.window_bytes = 4096;  // force windowed remap
      ParseRun mapped = ParseMapped(path, mopt, adopt_all);
      ExpectSameRun(copied, mapped, label + " mapped");
      ::unlink(path.c_str());
    }
  }
  scan::SetForceScalar(false);
}

TEST(FileSource, WindowedRemapWalksTheWholeFile) {
  std::string doc = GenerateXmark(XmarkOptionsForBytes(96 * 1024));
  std::string path = WriteTempFile(doc);
  MappedFileSource::Options mopt;
  mopt.window_bytes = 4096;  // rounds to one page; many windows
  auto source = MappedFileSource::Open(path, mopt);
  ASSERT_TRUE(source.ok()) << source.status();
  EXPECT_EQ(source.value().file_bytes(), doc.size());
  std::string rebuilt;
  for (;;) {
    auto chunk = source.value().Next();
    ASSERT_TRUE(chunk.ok()) << chunk.status();
    if (!chunk.value().valid()) break;
    rebuilt.append(chunk.value().data(), chunk.value().capacity());
  }
  EXPECT_EQ(rebuilt, doc);
  EXPECT_GT(source.value().mapped_windows(), 1u);
  EXPECT_EQ(source.value().fallback_windows(), 0u);
  ::unlink(path.c_str());
}

TEST(FileSource, PreadFallbackIsObservationallyIdenticalToMmap) {
  std::string doc = GenerateXmark(XmarkOptionsForBytes(64 * 1024));
  std::string path = WriteTempFile(doc);
  MappedFileSource::Options mopt;
  mopt.window_bytes = 8192;
  ParseRun mapped = ParseMapped(path, mopt);
  mopt.allow_mmap = false;
  ParseRun fallback = ParseMapped(path, mopt);
  ExpectSameRun(mapped, fallback, "pread fallback");

  auto probe = MappedFileSource::Open(path, mopt);
  ASSERT_TRUE(probe.ok());
  for (;;) {
    auto chunk = probe.value().Next();
    ASSERT_TRUE(chunk.ok());
    if (!chunk.value().valid()) break;
  }
  EXPECT_EQ(probe.value().mapped_windows(), 0u);
  EXPECT_GT(probe.value().fallback_windows(), 1u);
  ::unlink(path.c_str());
}

TEST(FileSource, PipeStreamsThroughChunkedSource) {
  std::string doc = GenerateXmark(XmarkOptionsForBytes(192 * 1024));
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  // The document is larger than the pipe buffer: a writer thread keeps the
  // stream moving while the source reads.
  std::thread writer([&] {
    size_t off = 0;
    while (off < doc.size()) {
      ssize_t n = ::write(fds[1], doc.data() + off, doc.size() - off);
      if (n <= 0) break;
      off += static_cast<size_t>(n);
    }
    ::close(fds[1]);
  });
  ChunkedFileSource::Options copt;
  copt.chunk_bytes = 32 * 1024;
  ChunkedFileSource source =
      ChunkedFileSource::FromFd(fds[0], /*owns_fd=*/true, copt);
  CollectingSink sink;
  SaxParser parser(SaxParser::Options(), &sink);
  uint64_t bytes = 0;
  for (;;) {
    auto chunk = source.Next();
    ASSERT_TRUE(chunk.ok()) << chunk.status();
    if (!chunk.value().valid()) break;
    bytes += chunk.value().capacity();
    ASSERT_TRUE(parser.Feed(std::move(chunk).value()).ok());
  }
  writer.join();
  ASSERT_TRUE(parser.Finish().ok());
  EXPECT_EQ(bytes, doc.size());
  EXPECT_GT(parser.ingest_stats().chunk_adoptions, 0u);

  ParseRun reference = ParseChunks(doc, {}, /*adopted=*/false);
  ExpectSameEvents(sink.Take(), reference.events, "pipe");
}

TEST(FileSource, MappedFileRejectsPipes) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  std::string path = "/proc/self/fd/" + std::to_string(fds[0]);
  auto source = MappedFileSource::Open(path);
  EXPECT_FALSE(source.ok());
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(FileSource, DeleterRunsExactlyOnceAfterLastReferenceDrops) {
  std::string doc = "<a><b>a comfortably aliasable text payload here</b>"
                    "<c>another aliasable run of characters</c></a>";
  std::atomic<int> deletions{0};
  auto deleter = [](void* user, const char*, size_t) {
    static_cast<std::atomic<int>*>(user)->fetch_add(1);
  };
  EventVec survivors;
  {
    CollectingSink sink;
    SaxParser::Options options;
    options.adopt_min_bytes = 1;
    options.min_alias_bytes = 8;
    SaxParser parser(options, &sink);
    ASSERT_TRUE(parser
                    .Feed(StableChunk::Adopt(doc.data(), doc.size(), deleter,
                                             &deletions),
                          doc.size())
                    .ok());
    ASSERT_TRUE(parser.Finish().ok());
    survivors = sink.Take();
  }
  // The parser and its window handle are gone, but collected events still
  // alias the adopted bytes: the deleter must not have fired.
  EXPECT_EQ(deletions.load(), 0);
  std::vector<std::string_view> texts;
  for (const Event& e : survivors) {
    if (e.kind == EventKind::kCharacters) texts.push_back(e.chars());
  }
  ASSERT_EQ(texts.size(), 2u);
  EXPECT_EQ(texts[0], "a comfortably aliasable text payload here");
  EXPECT_EQ(texts[1], "another aliasable run of characters");
  survivors.clear();
  EXPECT_EQ(deletions.load(), 1);
}

TEST(FileSource, SlicesKeepTheMappingAliveAfterParserTeardown) {
  // Same lifetime rule with a real mmap window: reading the aliased text
  // after parser, source, and every chunk handle are destroyed must be
  // valid (under ASan this is an actual use-after-unmap probe).
  std::string body(512, 'm');
  std::string doc = "<a><b>" + body + "</b></a>";
  std::string path = WriteTempFile(doc);
  EventVec survivors;
  {
    CollectingSink sink;
    SaxParser::Options options;
    options.adopt_min_bytes = 1;
    SaxParser parser(options, &sink);
    auto source = MappedFileSource::Open(path);
    ASSERT_TRUE(source.ok()) << source.status();
    for (;;) {
      auto chunk = source.value().Next();
      ASSERT_TRUE(chunk.ok());
      if (!chunk.value().valid()) break;
      ASSERT_TRUE(parser.Feed(std::move(chunk).value()).ok());
    }
    ASSERT_TRUE(parser.Finish().ok());
    survivors = sink.Take();
  }
  ::unlink(path.c_str());
  for (const Event& e : survivors) {
    if (e.kind == EventKind::kCharacters) {
      EXPECT_EQ(e.chars(), body);
      EXPECT_TRUE(e.text.is_slice());
    }
  }
}

TEST(FileSource, SmallChunksStayOnTheCopyPath) {
  // Below adopt_min_bytes the copy-in path wins; handing over a small
  // adopted chunk must not engage the foreign-window machinery.
  std::string doc = GenerateXmark(XmarkOptionsForBytes(32 * 1024));
  std::vector<size_t> cuts;
  for (size_t at = 4096; at < doc.size(); at += 4096) cuts.push_back(at);
  ParseRun adopted = ParseChunks(doc, cuts, /*adopted=*/true);  // default 8 KiB
  ASSERT_TRUE(adopted.status.ok()) << adopted.status;
  EXPECT_EQ(adopted.stats.chunk_adoptions, 0u);
  EXPECT_EQ(adopted.stats.adopted_bytes, 0u);
  ParseRun copied = ParseChunks(doc, cuts, /*adopted=*/false);
  ExpectSameRun(copied, adopted, "below threshold");
}

TEST(FileSource, SpliceBytesAreARoundingErrorOnBulkFeeds) {
  std::string doc = GenerateXmark(XmarkOptionsForBytes(512 * 1024));
  std::vector<size_t> cuts;
  for (size_t at = 64 * 1024; at < doc.size(); at += 64 * 1024) {
    cuts.push_back(at);
  }
  ParseRun adopted = ParseChunks(doc, cuts, /*adopted=*/true);
  ASSERT_TRUE(adopted.status.ok()) << adopted.status;
  // The trailing fragment may fall below the adoption threshold; every
  // full-sized window must adopt.
  EXPECT_GE(adopted.stats.chunk_adoptions, cuts.size());
  // The acceptance bar is "well under 1%": only boundary-straddling token
  // bytes may be copied.
  EXPECT_LT(adopted.stats.splice_bytes, doc.size() / 100);
  EXPECT_GT(adopted.stats.adopted_bytes, doc.size() * 96 / 100);
}

TEST(FileSource, AdoptionsAreNotCountedAsAllocations) {
  // With a draining consumer (nothing pins the splice window between
  // feeds) the owned scratch window cycles through the spare slot: a
  // couple of allocations at steady state, not one per boundary — and
  // adoptions themselves never count as allocations.
  std::string doc = GenerateXmark(XmarkOptionsForBytes(256 * 1024));
  NullSink sink;
  SaxParser parser(SaxParser::Options(), &sink);
  size_t boundaries = 0;
  for (size_t off = 0; off < doc.size(); off += 32 * 1024, ++boundaries) {
    size_t n = std::min<size_t>(32 * 1024, doc.size() - off);
    ASSERT_TRUE(parser
                    .Feed(StableChunk::Adopt(doc.data() + off, n,
                                             NoopDeleter, nullptr),
                          n)
                    .ok());
  }
  ASSERT_TRUE(parser.Finish().ok());
  const SaxParser::IngestStats& stats = parser.ingest_stats();
  EXPECT_GE(stats.chunk_adoptions, boundaries - 1);
  EXPECT_LE(stats.chunk_allocs, 3u);
}

TEST(FileSource, LedgerChargesAdoptedChunkOnceAtTrueSize) {
  // Adopted chunks have capacity == content size (no pow2 rounding), so
  // every slice reports the true adopted footprint — and the ledger
  // charges it once per chunk, not per slice.
  std::string doc = "<a><b>first aliased text run here</b>"
                    "<c>second aliased text run here</c></a>";
  CollectingSink sink;
  SaxParser::Options options;
  options.adopt_min_bytes = 1;
  options.min_alias_bytes = 8;
  SaxParser parser(options, &sink);
  ASSERT_TRUE(parser
                  .Feed(StableChunk::Adopt(doc.data(), doc.size(),
                                           NoopDeleter, nullptr),
                        doc.size())
                  .ok());
  ASSERT_TRUE(parser.Finish().ok());
  EventVec events = sink.Take();
  std::vector<const Event*> texts;
  for (const Event& e : events) {
    if (e.kind == EventKind::kCharacters) texts.push_back(&e);
  }
  ASSERT_EQ(texts.size(), 2u);
  ASSERT_TRUE(texts[0]->text.is_slice());
  ASSERT_EQ(texts[0]->text.buffer_id(), texts[1]->text.buffer_id());
  EXPECT_EQ(texts[0]->text.payload_bytes(), doc.size());

  BufferLedger ledger;
  int64_t first = ledger.Add(texts[0]->text, sizeof(Event));
  EXPECT_EQ(first, static_cast<int64_t>(sizeof(Event) + doc.size()));
  int64_t second = ledger.Add(texts[1]->text, sizeof(Event));
  EXPECT_EQ(second, static_cast<int64_t>(sizeof(Event)));
  ledger.Remove(texts[0]->text, sizeof(Event));
  ledger.Remove(texts[1]->text, sizeof(Event));
  EXPECT_EQ(ledger.bytes(), 0);
}

TEST(FileSource, IngestFileDrivesAParserToEof) {
  std::string doc = GenerateXmark(XmarkOptionsForBytes(64 * 1024));
  std::string path = WriteTempFile(doc);
  CollectingSink sink;
  SaxParser parser(SaxParser::Options(), &sink);
  auto report = IngestFile(path, &parser);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report.value().bytes, doc.size());
  EXPECT_TRUE(report.value().mapped);
  EXPECT_GE(report.value().chunks, 1u);
  ASSERT_TRUE(parser.Finish().ok());
  ::unlink(path.c_str());

  ParseRun reference = ParseChunks(doc, {}, /*adopted=*/false);
  ExpectSameEvents(sink.Take(), reference.events, "IngestFile");
}

TEST(FileSource, OpenFailuresAreStructuredErrors) {
  auto missing = MappedFileSource::Open("/nonexistent/xflux/file.xml");
  EXPECT_FALSE(missing.ok());
  auto missing_chunked =
      ChunkedFileSource::Open("/nonexistent/xflux/file.xml");
  EXPECT_FALSE(missing_chunked.ok());
  NullSink sink;
  SaxParser parser(SaxParser::Options(), &sink);
  auto report = IngestFile("/nonexistent/xflux/file.xml", &parser);
  EXPECT_FALSE(report.ok());
}

}  // namespace
}  // namespace xflux
