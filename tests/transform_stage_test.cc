#include "core/transform_stage.h"

#include <gtest/gtest.h>

#include "core/result_display.h"
#include "ops/aggregates.h"
#include "ops/child_step.h"
#include "tests/test_util.h"

namespace xflux {
namespace {

std::vector<std::unique_ptr<StateTransformer>> OneChildStep(
    PipelineContext*, const std::string& tag = "book") {
  std::vector<std::unique_ptr<StateTransformer>> v;
  v.push_back(std::make_unique<ChildStep>(0, tag));
  return v;
}

TEST(TransformStageTest, ChildStepSelectsMatchingChildren) {
  EventVec in = Tok("<lib><book>a</book><dvd>b</dvd><book>c</book></lib>");
  RunResult r = RunPipeline(in, [](PipelineContext* c) {
    return OneChildStep(c);
  });
  EventVec expect = {
      Event::StartElement(0, "book"),
      Event::Characters(0, "a"),   Event::EndElement(0, "book"),
      Event::StartElement(0, "book"), Event::Characters(0, "c"),
      Event::EndElement(0, "book")};
  EXPECT_EQ(StripOids(r.materialized), expect);
}

TEST(TransformStageTest, ChildStepWildcardSelectsAllElementChildren) {
  EventVec in = Tok("<lib><book>a</book><dvd id=\"1\">b</dvd></lib>");
  RunResult r = RunPipeline(in, [](PipelineContext* c) {
    return OneChildStep(c, "*");
  });
  // The wildcard selects both children but not the @id attribute child as a
  // top-level result (it stays inside dvd).
  ASSERT_GE(r.materialized.size(), 2u);
  EXPECT_EQ(StripOids(r.materialized)[0], Event::StartElement(0, "book"));
  // dvd keeps its attribute child.
  bool has_attr = false;
  for (const Event& e : r.materialized) {
    if (e.kind == EventKind::kStartElement && e.tag_name() == "@id") has_attr = true;
  }
  EXPECT_TRUE(has_attr);
}

TEST(TransformStageTest, ChildStepAttributeStep) {
  EventVec in = Tok("<lib><book id=\"b1\">a</book></lib>");
  RunResult r = RunPipeline(in, [](PipelineContext* c) {
    std::vector<std::unique_ptr<StateTransformer>> v;
    v.push_back(std::make_unique<ChildStep>(0, "book"));
    v.push_back(std::make_unique<ChildStep>(0, "@id"));
    return v;
  });
  EventVec expect = {Event::StartElement(0, "@id"),
                     Event::Characters(0, "b1"), Event::EndElement(0, "@id")};
  EXPECT_EQ(StripOids(r.materialized), expect);
}

// The central equivalence property: running an operator over an update
// stream and then applying the updates gives the same answer as applying
// the updates first and running the operator over the plain stream.
void CheckEquivalence(const EventVec& update_stream,
                      const std::string& tag = "book") {
  ASSERT_TRUE(ValidateUpdateStream(update_stream).ok())
      << ValidateUpdateStream(update_stream);
  RunResult streamed = RunPipeline(update_stream, [&](PipelineContext* c) {
    return OneChildStep(c, tag);
  });
  auto plain_in = Materialize(update_stream);
  ASSERT_TRUE(plain_in.ok()) << plain_in.status();
  RunResult plain = RunPipeline(plain_in.value(), [&](PipelineContext* c) {
    return OneChildStep(c, tag);
  });
  EXPECT_EQ(streamed.materialized, plain.materialized);
}

TEST(TransformStageTest, EquivalenceMutableRegionInline) {
  // <lib><book>x</book></lib> where the book content is mutable.
  EventVec in = {
      Event::StartStream(0),          Event::StartElement(0, "lib"),
      Event::StartMutable(0, 20),     Event::StartElement(20, "book"),
      Event::Characters(20, "x"),     Event::EndElement(20, "book"),
      Event::EndMutable(0, 20),       Event::EndElement(0, "lib"),
      Event::EndStream(0)};
  CheckEquivalence(in);
}

TEST(TransformStageTest, EquivalenceReplaceChangesSelection) {
  // The mutable region first holds a dvd (not selected); a replacement
  // turns it into a book (selected).  The child step must retroactively
  // produce the book.
  EventVec in = {
      Event::StartStream(0),       Event::StartElement(0, "lib"),
      Event::StartMutable(0, 20),  Event::StartElement(20, "dvd"),
      Event::Characters(20, "x"),  Event::EndElement(20, "dvd"),
      Event::EndMutable(0, 20),    Event::EndElement(0, "lib"),
      Event::StartReplace(20, 21), Event::StartElement(21, "book"),
      Event::Characters(21, "y"),  Event::EndElement(21, "book"),
      Event::EndReplace(20, 21),   Event::EndStream(0)};
  CheckEquivalence(in);
  RunResult r = RunPipeline(in, [](PipelineContext* c) {
    return OneChildStep(c);
  });
  EventVec expect = {Event::StartElement(0, "book"),
                     Event::Characters(0, "y"), Event::EndElement(0, "book")};
  EXPECT_EQ(r.materialized, expect);
}

TEST(TransformStageTest, EquivalenceReplaceRemovesSelection) {
  EventVec in = {
      Event::StartStream(0),       Event::StartElement(0, "lib"),
      Event::StartMutable(0, 20),  Event::StartElement(20, "book"),
      Event::Characters(20, "x"),  Event::EndElement(20, "book"),
      Event::EndMutable(0, 20),    Event::EndElement(0, "lib"),
      Event::StartReplace(20, 21), Event::EndReplace(20, 21),
      Event::EndStream(0)};
  CheckEquivalence(in);
  RunResult r = RunPipeline(in, [](PipelineContext* c) {
    return OneChildStep(c);
  });
  EventVec expect = {};
  EXPECT_EQ(r.materialized, expect);
}

TEST(TransformStageTest, EquivalenceInsertAfterAddsSelection) {
  EventVec in = {
      Event::StartStream(0),           Event::StartElement(0, "lib"),
      Event::StartMutable(0, 20),      Event::StartElement(20, "book"),
      Event::Characters(20, "x"),      Event::EndElement(20, "book"),
      Event::EndMutable(0, 20),        Event::EndElement(0, "lib"),
      Event::StartInsertAfter(20, 21), Event::StartElement(21, "book"),
      Event::Characters(21, "y"),      Event::EndElement(21, "book"),
      Event::EndInsertAfter(20, 21),   Event::EndStream(0)};
  CheckEquivalence(in);
  RunResult r = RunPipeline(in, [](PipelineContext* c) {
    return OneChildStep(c);
  });
  // Both books selected, x before y.
  EventVec expect = {
      Event::StartElement(0, "book"),
      Event::Characters(0, "x"),      Event::EndElement(0, "book"),
      Event::StartElement(0, "book"), Event::Characters(0, "y"),
      Event::EndElement(0, "book")};
  EXPECT_EQ(r.materialized, expect);
}

TEST(TransformStageTest, EquivalenceHideShow) {
  EventVec base = {
      Event::StartStream(0),      Event::StartElement(0, "lib"),
      Event::StartMutable(0, 20), Event::StartElement(20, "book"),
      Event::Characters(20, "x"), Event::EndElement(20, "book"),
      Event::EndMutable(0, 20),   Event::EndElement(0, "lib")};
  EventVec hidden = base;
  hidden.push_back(Event::Hide(20));
  hidden.push_back(Event::EndStream(0));
  CheckEquivalence(hidden);

  EventVec shown = base;
  shown.push_back(Event::Hide(20));
  shown.push_back(Event::Show(20));
  shown.push_back(Event::EndStream(0));
  CheckEquivalence(shown);
}

TEST(TransformStageTest, IgnoredSourceUpdatesAreDropped) {
  EventVec in = {
      Event::StartStream(0),       Event::StartElement(0, "lib"),
      Event::StartMutable(0, 20),  Event::StartElement(20, "book"),
      Event::Characters(20, "x"),  Event::EndElement(20, "book"),
      Event::EndMutable(0, 20),    Event::EndElement(0, "lib"),
      Event::StartReplace(20, 21), Event::StartElement(21, "book"),
      Event::Characters(21, "y"),  Event::EndElement(21, "book"),
      Event::EndReplace(20, 21),   Event::EndStream(0)};
  RunResult r = RunPipeline(
      in, [](PipelineContext* c) { return OneChildStep(c); },
      /*accept_source_updates=*/false);
  // The replace is ignored: the original book remains.
  EventVec expect = {Event::StartElement(0, "book"),
                     Event::Characters(0, "x"), Event::EndElement(0, "book")};
  EXPECT_EQ(r.materialized, expect);
}

TEST(TransformStageTest, FixedRegionStatesAreEvicted) {
  Pipeline pipeline;
  pipeline.set_accept_source_updates(false);
  auto* stage = pipeline.AddStage<TransformStage>(
      pipeline.context(), std::make_unique<ChildStep>(0, "b"));
  CollectingSink sink;
  pipeline.SetSink(&sink);
  pipeline.PushAll({Event::StartElement(0, "a"),
                    Event::StartMutable(0, 20), Event::StartElement(20, "b"),
                    Event::EndElement(20, "b"), Event::EndMutable(0, 20),
                    Event::EndElement(0, "a"), Event::EndStream(0)});
  // The ignored (fixed) region's state copies were evicted at its close.
  EXPECT_EQ(stage->tracked_region_count(), 0u);
}

TEST(TransformStageTest, AcceptedRegionStatesAreKept) {
  Pipeline pipeline;
  auto* stage = pipeline.AddStage<TransformStage>(
      pipeline.context(), std::make_unique<ChildStep>(0, "b"));
  CollectingSink sink;
  pipeline.SetSink(&sink);
  pipeline.PushAll({Event::StartElement(0, "a"),
                    Event::StartMutable(0, 20), Event::StartElement(20, "b"),
                    Event::EndElement(20, "b"), Event::EndMutable(0, 20),
                    Event::EndElement(0, "a"), Event::EndStream(0)});
  EXPECT_EQ(stage->tracked_region_count(), 1u);
  // An explicit freeze evicts.
  pipeline.Push(Event::Freeze(20));
  EXPECT_EQ(stage->tracked_region_count(), 0u);
}

// ---------------------------------------------------------------------------
// CountOp: the paper's canonical non-inert operator.

std::string DisplayedCount(const EventVec& raw) {
  auto m = Materialize(raw);
  EXPECT_TRUE(m.ok()) << m.status();
  std::string text;
  for (const Event& e : m.value()) {
    if (e.kind == EventKind::kCharacters) text += e.chars();
  }
  return text;
}

TEST(CountOpTest, CountsTopLevelElements) {
  EventVec in = Tok("<lib><a/><b/><c/></lib>");
  RunResult r = RunPipeline(in, [](PipelineContext* c) {
    std::vector<std::unique_ptr<StateTransformer>> v;
    v.push_back(std::make_unique<ChildStep>(0, "*"));
    v.push_back(std::make_unique<CountOp>(c, 0, CountMode::kTopLevelElements));
    return v;
  });
  EXPECT_EQ(DisplayedCount(r.raw), "3");
}

TEST(CountOpTest, CountIsContinuous) {
  // The display shows the running count after every element, not only at
  // end of stream.
  Pipeline pipeline;
  pipeline.Add(std::make_unique<TransformStage>(
      pipeline.context(),
      std::make_unique<CountOp>(pipeline.context(), 0,
                                CountMode::kTopLevelElements)));
  ResultDisplay display;
  pipeline.SetSink(&display);

  pipeline.Push(Event::StartStream(0));
  EXPECT_EQ(display.CurrentText().value(), "0");
  pipeline.Push(Event::StartElement(0, "a"));
  EXPECT_EQ(display.CurrentText().value(), "1");
  pipeline.Push(Event::EndElement(0, "a"));
  pipeline.Push(Event::StartElement(0, "b"));
  pipeline.Push(Event::EndElement(0, "b"));
  EXPECT_EQ(display.CurrentText().value(), "2");
}

TEST(CountOpTest, AdjustsForHiddenRegion) {
  // Count two mutable elements, then hide one: the displayed count drops.
  Pipeline pipeline;
  pipeline.Add(std::make_unique<TransformStage>(
      pipeline.context(),
      std::make_unique<CountOp>(pipeline.context(), 0,
                                CountMode::kTopLevelElements)));
  ResultDisplay display;
  pipeline.SetSink(&display);
  pipeline.PushAll({Event::StartStream(0), Event::StartMutable(0, 20),
                    Event::StartElement(20, "a"), Event::EndElement(20, "a"),
                    Event::EndMutable(0, 20), Event::StartMutable(0, 21),
                    Event::StartElement(21, "b"), Event::EndElement(21, "b"),
                    Event::EndMutable(0, 21)});
  EXPECT_EQ(display.CurrentText().value(), "2");
  pipeline.Push(Event::Hide(20));
  EXPECT_EQ(display.CurrentText().value(), "1");
  pipeline.Push(Event::Show(20));
  EXPECT_EQ(display.CurrentText().value(), "2");
}

TEST(CountOpTest, AdjustsForReplacedRegion) {
  Pipeline pipeline;
  pipeline.Add(std::make_unique<TransformStage>(
      pipeline.context(),
      std::make_unique<CountOp>(pipeline.context(), 0,
                                CountMode::kTopLevelElements)));
  ResultDisplay display;
  pipeline.SetSink(&display);
  pipeline.PushAll({Event::StartStream(0), Event::StartMutable(0, 20),
                    Event::StartElement(20, "a"), Event::EndElement(20, "a"),
                    Event::EndMutable(0, 20)});
  EXPECT_EQ(display.CurrentText().value(), "1");
  // Replace the single element with three.
  pipeline.PushAll({Event::StartReplace(20, 21), Event::StartElement(21, "x"),
                    Event::EndElement(21, "x"), Event::StartElement(21, "y"),
                    Event::EndElement(21, "y"), Event::StartElement(21, "z"),
                    Event::EndElement(21, "z"), Event::EndReplace(20, 21)});
  EXPECT_EQ(display.CurrentText().value(), "3");
  // And replace those three with nothing.
  pipeline.PushAll({Event::StartReplace(21, 22), Event::EndReplace(21, 22)});
  EXPECT_EQ(display.CurrentText().value(), "0");
}

TEST(CountOpTest, PaperSectionThreeCharacterDataCount) {
  // Section III's example: counting cData events at any depth, unblocked
  // by continuous replacement updates.
  Pipeline pipeline;
  pipeline.Add(std::make_unique<TransformStage>(
      pipeline.context(),
      std::make_unique<CountOp>(pipeline.context(), 0,
                                CountMode::kCharacterData)));
  ResultDisplay display;
  pipeline.SetSink(&display);
  pipeline.PushAll(Tok("<a><b>one</b><c>two<d>three</d></c></a>"));
  EXPECT_EQ(display.CurrentText().value(), "3");
}

TEST(TransformStageTest, EndReplaceAfterTargetFrozenRecoversGracefully) {
  // A hostile stream freezes the replace *target* while the replacement
  // bracket is still open, evicting the state the end-bracket fold needs.
  // The stage must degrade (counted as a stage recovery) instead of
  // reading a dead iterator — this path used to be an NDEBUG-stripped
  // assert, i.e. undefined behavior in Release builds.
  Pipeline pipeline;
  pipeline.set_accept_source_updates(true);
  pipeline.AddStage<TransformStage>(pipeline.context(),
                                    std::make_unique<ChildStep>(0, "book"));
  CollectingSink sink;
  pipeline.SetSink(&sink);
  EventVec in = {Event::StartStream(0),
                 Event::StartElement(0, "lib", 1),
                 Event::StartMutable(0, 100),
                 Event::StartElement(100, "book", 2),
                 Event::Characters(100, "a"),
                 Event::EndElement(100, "book"),
                 Event::EndMutable(0, 100),
                 Event::EndElement(0, "lib"),
                 Event::StartReplace(100, 200),
                 Event::StartElement(200, "book", 3),
                 Event::Characters(200, "b"),
                 Event::EndElement(200, "book"),
                 Event::Freeze(100),  // target evicted mid-bracket
                 Event::EndReplace(100, 200),
                 Event::EndStream(0)};
  // Per-event Push: batched PushAll pre-scans the fix registry, which
  // would drop the whole update before the stage sees the freeze race.
  for (const Event& e : in) pipeline.Push(e);
  EXPECT_TRUE(pipeline.status().ok()) << pipeline.status();
  EXPECT_GE(pipeline.context()->metrics()->stage_recoveries(), 1u);
}

}  // namespace
}  // namespace xflux
