#include "spex/spex_engine.h"

#include <gtest/gtest.h>

#include "util/prng.h"
#include "xml/sax_parser.h"
#include "xml/serializer.h"
#include "xquery/engine.h"

namespace xflux {
namespace {

std::string RunSpex(std::string_view xpath, std::string_view xml) {
  CollectingSink sink;
  auto engine = SpexEngine::Compile(xpath, &sink);
  EXPECT_TRUE(engine.ok()) << engine.status();
  if (!engine.ok()) return "<error>";
  auto events = SaxParser::Tokenize(xml);
  EXPECT_TRUE(events.ok()) << events.status();
  for (const Event& e : events.value()) engine.value()->Accept(e);
  auto xml_out = XmlSerializer::ToXml(sink.events());
  EXPECT_TRUE(xml_out.ok()) << xml_out.status();
  return xml_out.ok() ? xml_out.value() : "<error>";
}

constexpr char kDoc[] =
    "<site><regions>"
    "<europe>"
    "<item><location>Albania</location><quantity>2</quantity>"
    "<payment>Cash</payment></item>"
    "<item><location>France</location><quantity>5</quantity>"
    "<payment>Credit</payment></item>"
    "</europe>"
    "<asia>"
    "<item><location>Albania</location><quantity>7</quantity>"
    "<payment>Credit</payment></item>"
    "</asia>"
    "</regions></site>";

TEST(SpexTest, SimpleDescendant) {
  EXPECT_EQ(RunSpex("X//quantity", kDoc),
            "<quantity>2</quantity><quantity>5</quantity>"
            "<quantity>7</quantity>");
}

TEST(SpexTest, DescendantChain) {
  EXPECT_EQ(RunSpex("X//europe//quantity", kDoc),
            "<quantity>2</quantity><quantity>5</quantity>");
}

TEST(SpexTest, PredicateEquality) {
  EXPECT_EQ(RunSpex("X//item[location=\"Albania\"]/quantity", kDoc),
            "<quantity>2</quantity><quantity>7</quantity>");
}

TEST(SpexTest, TwoPredicates) {
  EXPECT_EQ(RunSpex("X//item[location=\"Albania\"][payment=\"Cash\"]/location",
                    kDoc),
            "<location>Albania</location>");
}

TEST(SpexTest, WildcardPredicate) {
  EXPECT_EQ(RunSpex("X//*[location=\"Albania\"]/quantity", kDoc),
            "<quantity>2</quantity><quantity>7</quantity>");
}

TEST(SpexTest, ExistencePredicate) {
  EXPECT_EQ(RunSpex("X//item[payment]/quantity", kDoc),
            "<quantity>2</quantity><quantity>5</quantity>"
            "<quantity>7</quantity>");
}

TEST(SpexTest, ChildSteps) {
  EXPECT_EQ(RunSpex("X/regions/europe/item/quantity", kDoc),
            "<quantity>2</quantity><quantity>5</quantity>");
}

TEST(SpexTest, NoMatchesIsEmpty) {
  EXPECT_EQ(RunSpex("X//item[location=\"Nowhere\"]/quantity", kDoc), "");
}

TEST(SpexTest, BuffersOnlyWhilePredicatesPending) {
  CollectingSink sink;
  auto engine = SpexEngine::Compile("X//item[location=\"Albania\"]/quantity",
                                    &sink);
  ASSERT_TRUE(engine.ok());
  auto events = SaxParser::Tokenize(kDoc);
  ASSERT_TRUE(events.ok());
  for (const Event& e : events.value()) engine.value()->Accept(e);
  EXPECT_GT(engine.value()->max_buffered_events(), 0u);
  EXPECT_GT(engine.value()->transitions(), 0u);
}

TEST(SpexTest, ParseErrorsReported) {
  CollectingSink sink;
  EXPECT_FALSE(SpexEngine::Compile("", &sink).ok());
  EXPECT_FALSE(SpexEngine::Compile("X//item[", &sink).ok());
  EXPECT_FALSE(SpexEngine::Compile("X//item[loc=\"x]", &sink).ok());
  EXPECT_FALSE(SpexEngine::Compile("X//", &sink).ok());
}

// Cross-check SPEX against the XFlux engine on random documents: both must
// produce the same materialized answers for the shared XPath subset.
TEST(SpexTest, AgreesWithXFluxOnRandomDocuments) {
  Prng prng(99);
  const std::vector<std::string> tags = {"item", "location", "quantity",
                                         "europe", "x"};
  for (int round = 0; round < 25; ++round) {
    std::string doc = "<site>";
    std::vector<std::string> stack;
    for (int i = 0; i < 80; ++i) {
      double roll = prng.NextDouble();
      if (roll < 0.40 && stack.size() < 5) {
        const std::string& tag = prng.Pick(tags);
        doc += "<" + tag + ">";
        stack.push_back(tag);
      } else if (roll < 0.70 && !stack.empty()) {
        doc += "</" + stack.back() + ">";
        stack.pop_back();
      } else {
        doc += prng.Chance(0.5) ? "Albania" : "France";
      }
    }
    while (!stack.empty()) {
      doc += "</" + stack.back() + ">";
      stack.pop_back();
    }
    doc += "</site>";

    // Only queries whose results cannot nest (both engines deduplicate
    // nested matches differently on pathological documents).
    const std::string query = "X//item[location=\"Albania\"]/quantity";
    std::string spex = RunSpex(query, doc);
    auto xflux = RunQueryOnXml(query, doc);
    ASSERT_TRUE(xflux.ok()) << xflux.status();
    EXPECT_EQ(spex, xflux.value()) << doc;
  }
}

}  // namespace
}  // namespace xflux
