// Differential tests for the wide-scan primitives (xml/scan.h): every
// accelerated implementation must agree byte-for-byte with the scalar
// reference on random buffers, on every starting offset, and especially
// around the 16-byte block boundaries where lane handling goes wrong.
// The suite runs each property in the compiled accelerated mode and under
// SetForceScalar(true); a third leg compares the two directly.

#include <cstdint>
#include <random>
#include <string>
#include <string_view>

#include <gtest/gtest.h>

#include "xml/scan.h"

namespace xflux {
namespace {

// The interesting bytes for every primitive, overweighted so random
// buffers actually exercise matches, plus plain filler.
std::string RandomBuffer(std::mt19937& rng, size_t len) {
  static constexpr char kAlphabet[] =
      "<>&]\"'/= \t\r\nabcdefghijklmnopqrstuvwxyz";
  std::uniform_int_distribution<size_t> pick(0, sizeof(kAlphabet) - 2);
  std::string s;
  s.reserve(len);
  for (size_t i = 0; i < len; ++i) s.push_back(kAlphabet[pick(rng)]);
  return s;
}

// Restores the accelerated mode however a test exits.
struct ScalarModeGuard {
  explicit ScalarModeGuard(bool on) { scan::SetForceScalar(on); }
  ~ScalarModeGuard() { scan::SetForceScalar(false); }
};

TEST(ScanTest, FindAnyOfMatchesScalarOnRandomBuffers) {
  std::mt19937 rng(20080401);
  for (int iter = 0; iter < 200; ++iter) {
    std::string buf = RandomBuffer(rng, 1 + iter % 97);
    for (size_t from = 0; from <= buf.size(); ++from) {
      size_t ref = scan::FindAnyOfScalar<'<', '&', '>'>(buf, from);
      EXPECT_EQ((scan::FindAnyOf<'<', '&', '>'>(buf, from)), ref)
          << "buf=" << buf << " from=" << from;
    }
  }
}

TEST(ScanTest, FindAnyOfBoundaryStraddle) {
  // A single target byte at every position of a 48-byte buffer: the match
  // must be found whether it lands in a full 16-byte block or the scalar
  // tail, from every starting offset at or before it.
  for (size_t at = 0; at < 48; ++at) {
    std::string buf(48, 'x');
    buf[at] = '>';
    for (size_t from = 0; from <= at; ++from) {
      EXPECT_EQ(scan::FindAnyOf<'>'>(buf, from), at) << "at=" << at;
    }
    EXPECT_EQ(scan::FindAnyOf<'>'>(buf, at + 1), scan::npos);
  }
}

TEST(ScanTest, ScanTextMatchesScalarIncludingFlags) {
  std::mt19937 rng(20080402);
  for (int iter = 0; iter < 200; ++iter) {
    std::string buf = RandomBuffer(rng, 1 + iter % 131);
    for (size_t from = 0; from <= buf.size(); ++from) {
      scan::TextScan ref = scan::ScanTextScalar(buf, from);
      scan::TextScan got = scan::ScanText(buf, from);
      EXPECT_EQ(got.stop, ref.stop) << "buf=" << buf << " from=" << from;
      EXPECT_EQ(got.amp, ref.amp) << "buf=" << buf << " from=" << from;
      EXPECT_EQ(got.rbracket, ref.rbracket)
          << "buf=" << buf << " from=" << from;
    }
  }
}

TEST(ScanTest, ScanTextFlagsOnlyCoverBytesBeforeTheStop) {
  // '&' and ']' after the '<' must not leak into the flags — the SIMD
  // path masks the lanes past the stop.
  std::string buf = "plain text here<&]]]";
  scan::TextScan r = scan::ScanText(buf, 0);
  EXPECT_EQ(r.stop, buf.find('<'));
  EXPECT_FALSE(r.amp);
  EXPECT_FALSE(r.rbracket);
  scan::TextScan s = scan::ScanText("a&b]c              <", 0);
  EXPECT_TRUE(s.amp);
  EXPECT_TRUE(s.rbracket);
}

TEST(ScanTest, FindTagEndMatchesScalarWithQuoteState) {
  std::mt19937 rng(20080403);
  for (int iter = 0; iter < 300; ++iter) {
    std::string buf = RandomBuffer(rng, 1 + iter % 113);
    for (char initial : {'\0', '"', '\''}) {
      char qa = initial;
      char qb = initial;
      size_t ref = scan::FindTagEndScalar(buf, 0, &qa);
      size_t got = scan::FindTagEnd(buf, 0, &qb);
      EXPECT_EQ(got, ref) << "buf=" << buf << " initial=" << int(initial);
      EXPECT_EQ(qb, qa) << "buf=" << buf << " initial=" << int(initial);
    }
  }
}

TEST(ScanTest, FindNameEndStopsAtEveryDelimiter) {
  // The name-character table's complement is exactly the ten delimiter
  // bytes; anything else (including NUL and bytes >= 0x80) is a name char.
  const std::string delims = " \t\r\n></=<\"'";
  for (int c = 0; c < 256; ++c) {
    std::string buf = "name";
    buf.push_back(static_cast<char>(c));
    buf += "rest";
    size_t end = scan::FindNameEnd(buf, 0);
    if (delims.find(static_cast<char>(c)) != std::string::npos) {
      EXPECT_EQ(end, 4u) << "c=" << c;
    } else {
      EXPECT_EQ(end, buf.size()) << "c=" << c;
    }
  }
  EXPECT_EQ(scan::FindNameEnd("noend", 0), 5u);
  EXPECT_EQ(scan::FindNameEnd(">", 0), 0u);
}

TEST(ScanTest, AllWhitespaceMatchesScalar) {
  std::mt19937 rng(20080404);
  for (int iter = 0; iter < 300; ++iter) {
    size_t len = iter % 67;
    std::string buf(len, ' ');
    // Mostly-whitespace buffers with an occasional intruder.
    std::uniform_int_distribution<int> ws(0, 3);
    for (char& c : buf) c = " \t\r\n"[ws(rng)];
    if (iter % 3 == 0 && !buf.empty()) {
      buf[static_cast<size_t>(rng() % buf.size())] = 'x';
    }
    EXPECT_EQ(scan::AllWhitespace(buf), scan::AllWhitespaceScalar(buf))
        << "buf=[" << buf << "]";
  }
  EXPECT_TRUE(scan::AllWhitespace(""));
}

TEST(ScanTest, ForcedScalarModeAgreesWithAccelerated) {
  std::mt19937 rng(20080405);
  for (int iter = 0; iter < 100; ++iter) {
    std::string buf = RandomBuffer(rng, 1 + iter % 173);
    size_t from = buf.size() > 1 ? rng() % buf.size() : 0;

    size_t fast_any = scan::FindAnyOf<'<', '>', '&'>(buf, from);
    scan::TextScan fast_text = scan::ScanText(buf, from);
    char fq = 0;
    size_t fast_tag = scan::FindTagEnd(buf, from, &fq);
    bool fast_ws = scan::AllWhitespace(buf);

    {
      ScalarModeGuard guard(true);
      EXPECT_EQ((scan::FindAnyOf<'<', '>', '&'>(buf, from)), fast_any);
      scan::TextScan t = scan::ScanText(buf, from);
      EXPECT_EQ(t.stop, fast_text.stop);
      EXPECT_EQ(t.amp, fast_text.amp);
      EXPECT_EQ(t.rbracket, fast_text.rbracket);
      char q = 0;
      EXPECT_EQ(scan::FindTagEnd(buf, from, &q), fast_tag);
      EXPECT_EQ(q, fq);
      EXPECT_EQ(scan::AllWhitespace(buf), fast_ws);
    }
  }
}

TEST(ScanTest, SimdKindIsStamped) {
  std::string kind = scan::SimdKind();
  EXPECT_TRUE(kind == "sse2" || kind == "neon" || kind == "swar") << kind;
}

}  // namespace
}  // namespace xflux
