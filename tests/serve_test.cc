// The service layer, bottom to top: frame codec, admission, load-shedder
// policy, open-request parsing, then end-to-end over a real unix socket —
// byte-identical answers vs a direct QuerySession, fault containment
// (a session fed the corruption corpus dies with a structured error while
// a concurrent clean session is untouched), admission rejection with
// retry-after, idle deadlines, tier-3 eviction, and --shared channels.
//
// Every e2e test runs a real ServeServer::Run() loop on its own thread
// against an AF_UNIX socket in the test's working directory.

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "serve/admission.h"
#include "serve/client.h"
#include "serve/frame.h"
#include "serve/load_shedder.h"
#include "serve/server.h"
#include "serve/session.h"
#include "testing/fault_injector.h"
#include "testing/traffic_gen.h"
#include "util/prng.h"
#include "xml/sax_parser.h"
#include "xquery/engine.h"

namespace xflux::serve {
namespace {

int SeedCount() {
  if (const char* env = std::getenv("XFLUX_FAULT_ITERS")) {
    int v = std::atoi(env);
    if (v > 0) return v;
  }
  return 120;
}

// ---------------------------------------------------------------------------
// Frame codec

TEST(FrameCodec, RoundTripSingleFrame) {
  std::string wire = EncodeFrame(FrameType::kFeedXml, "<a>x</a>");
  FrameDecoder decoder;
  decoder.Feed(wire);
  Frame frame;
  ASSERT_TRUE(decoder.Next(&frame));
  EXPECT_EQ(frame.type, FrameType::kFeedXml);
  EXPECT_EQ(frame.payload, "<a>x</a>");
  EXPECT_FALSE(decoder.Next(&frame));
  EXPECT_TRUE(decoder.error().ok());
}

TEST(FrameCodec, ByteAtATimeDeliveryReassembles) {
  std::string wire = EncodeFrame(FrameType::kOpen, "X//author\nguard=drop");
  wire += EncodeFrame(FrameType::kFinish, "");
  FrameDecoder decoder;
  std::vector<Frame> frames;
  for (char c : wire) {
    decoder.Feed(std::string_view(&c, 1));
    Frame frame;
    while (decoder.Next(&frame)) frames.push_back(frame);
  }
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].type, FrameType::kOpen);
  EXPECT_EQ(frames[0].payload, "X//author\nguard=drop");
  EXPECT_EQ(frames[1].type, FrameType::kFinish);
}

TEST(FrameCodec, LengthBombRefusedFromHeaderAlone) {
  // A header advertising 1 GiB must be rejected before any payload is
  // buffered — the decoder may never allocate toward the claimed size.
  FrameDecoder::Options options;
  options.max_frame_bytes = 1 << 20;
  FrameDecoder decoder(options);
  std::string header;
  AppendU32(&header, 0x40000000u);
  header.push_back(static_cast<char>(FrameType::kFeedXml));
  decoder.Feed(header);
  Frame frame;
  EXPECT_FALSE(decoder.Next(&frame));
  EXPECT_EQ(decoder.error().code(), StatusCode::kResourceExhausted);
  EXPECT_LT(decoder.buffered_bytes(), 64u);
}

TEST(FrameCodec, UnknownClientTypeLatchesProtocolViolation) {
  FrameDecoder::Options options;
  options.client_types_only = true;
  FrameDecoder decoder(options);
  std::string wire;
  AppendU32(&wire, 0);
  wire.push_back(static_cast<char>(0x7f));
  decoder.Feed(wire);
  Frame frame;
  EXPECT_FALSE(decoder.Next(&frame));
  EXPECT_EQ(decoder.error().code(), StatusCode::kProtocolViolation);
  // Errors latch: valid frames afterwards do not revive the stream.
  decoder.Feed(EncodeFrame(FrameType::kFinish, ""));
  EXPECT_FALSE(decoder.Next(&frame));
  EXPECT_EQ(decoder.error().code(), StatusCode::kProtocolViolation);
}

TEST(FrameCodec, EventRoundTripPreservesEverything) {
  EventVec events;
  events.push_back(Event::StartStream(0));
  events.push_back(Event::StartElement(0, "book", /*oid=*/42));
  events.push_back(Event::Characters(0, "Fegaras & co"));
  events.push_back(Event::StartMutable(3, 7));
  events.push_back(Event::EndMutable(3, 7));
  events.push_back(Event::EndElement(0, "book", /*oid=*/42));
  events.push_back(Event::EndStream(0));
  std::string wire = EncodeEvents(events);
  EventVec back;
  ASSERT_TRUE(DecodeEvents(wire, &back).ok());
  ASSERT_EQ(back.size(), events.size());
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(back[i].kind, events[i].kind) << i;
    EXPECT_EQ(back[i].id, events[i].id) << i;
    EXPECT_EQ(back[i].uid, events[i].uid) << i;
  }
  EXPECT_EQ(back[1].tag_name(), "book");
  EXPECT_EQ(back[1].oid, 42u);
  EXPECT_EQ(back[2].text.view(), "Fegaras & co");
}

TEST(FrameCodec, TruncatedEventPayloadRejected) {
  EventVec events;
  events.push_back(Event::StartElement(0, "long_tag_name"));
  std::string wire = EncodeEvents(events);
  for (size_t cut = 1; cut < wire.size(); ++cut) {
    EventVec back;
    Status s = DecodeEvents(std::string_view(wire.data(), cut), &back);
    EXPECT_EQ(s.code(), StatusCode::kProtocolViolation) << "cut=" << cut;
  }
}

// ---------------------------------------------------------------------------
// Policy objects

TEST(Admission, RejectsOverBudgetWithScalingRetryAfter) {
  Metrics metrics;
  AdmissionController::Options options;
  options.max_sessions = 2;
  options.retry_after_ms = 100;
  AdmissionController admission(options, &metrics);
  EXPECT_TRUE(admission.Offer().admit);
  EXPECT_TRUE(admission.Offer().admit);
  auto first = admission.Offer();
  auto second = admission.Offer();
  EXPECT_FALSE(first.admit);
  EXPECT_FALSE(second.admit);
  EXPECT_EQ(first.retry_after_ms, 100u);
  EXPECT_EQ(second.retry_after_ms, 200u);  // herd desync: later → longer
  EXPECT_EQ(metrics.admission_rejects(), 2u);
  admission.Release();
  EXPECT_TRUE(admission.Offer().admit);
  EXPECT_EQ(admission.active(), 2u);
}

TEST(LoadShed, TiersRiseInstantlyAndFallWithHysteresis) {
  LoadShedder::Options options;  // 0.70 / 0.85 / 0.95, margin 0.05
  LoadShedder shedder(options);
  LoadShedder::Gauges g;
  g.max_sessions = 100;
  g.active_sessions = 96;
  EXPECT_EQ(shedder.Update(g), 3);  // straight to the top
  g.active_sessions = 92;           // above tier3 - margin: no release
  EXPECT_EQ(shedder.Update(g), 3);
  g.active_sessions = 60;  // far below every threshold...
  EXPECT_EQ(shedder.Update(g), 2);  // ...but tiers step down one at a time
  EXPECT_EQ(shedder.Update(g), 1);
  EXPECT_EQ(shedder.Update(g), 0);
  EXPECT_EQ(shedder.Update(g), 0);
}

TEST(LoadShed, QueuedBytesAloneCanDrivePressure) {
  LoadShedder::Options options;
  options.max_total_queued_bytes = 1000;
  LoadShedder shedder(options);
  LoadShedder::Gauges g;
  g.max_sessions = 100;
  g.active_sessions = 1;  // sessions are idle...
  g.total_queued_bytes = 900;  // ...but outbound is jammed
  EXPECT_GE(shedder.Update(g), 2);
}

TEST(OpenRequestParse, FullOptionSet) {
  auto r = ParseOpenRequest(
      "X//book/price\nguard=failfast\npretty=1\npriority=3\nchannel=room1");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r.value().query, "X//book/price");
  EXPECT_TRUE(r.value().guard);
  EXPECT_EQ(r.value().guard_policy, ProtocolGuard::Policy::kFailFast);
  EXPECT_TRUE(r.value().pretty);
  EXPECT_EQ(r.value().priority, 3);
  EXPECT_EQ(r.value().channel, "room1");
}

TEST(OpenRequestParse, UnknownKeyRefused) {
  EXPECT_EQ(ParseOpenRequest("X//a\nbogus=1").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseOpenRequest("").status().code(),
            StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// End-to-end over a unix socket

/// Starts a real server on `path`, runs its loop on a thread, and tears
/// both down on destruction.
class ServerFixture {
 public:
  explicit ServerFixture(ServeServer::Options options) {
    options.unix_path = SocketPath();
    server_ = std::make_unique<ServeServer>(options);
    Status started = server_->Start();
    EXPECT_TRUE(started.ok()) << started;
    loop_ = std::thread([this] { server_->Run(); });
  }
  ~ServerFixture() {
    server_->Stop();
    loop_.join();
    ::unlink(SocketPath().c_str());
  }
  ServeServer& server() { return *server_; }
  std::string endpoint() const { return server_->endpoint(); }

 private:
  static std::string SocketPath() {
    // Keep well under sun_path's 108-byte bound regardless of the cwd.
    return "serve_test_" + std::to_string(::getpid()) + ".sock";
  }
  std::unique_ptr<ServeServer> server_;
  std::thread loop_;
};

std::string DirectAnswer(const std::string& query, const std::string& xml) {
  auto session = QuerySession::Open(query);
  EXPECT_TRUE(session.ok()) << session.status();
  if (!session.ok()) return "<compile error>";
  Status pushed = session.value()->PushDocument(xml);
  EXPECT_TRUE(pushed.ok()) << pushed;
  auto text = session.value()->CurrentText();
  EXPECT_TRUE(text.ok()) << text.status();
  return text.ok() ? text.value() : "<error>";
}

TEST(ServeE2E, ChunkedFeedMatchesDirectSessionByteForByte) {
  ServerFixture fixture{ServeServer::Options()};
  std::string doc = MakeBookDocument(/*seed=*/5, /*approx_bytes=*/4096);

  auto client = ServeClient::Connect(fixture.endpoint());
  ASSERT_TRUE(client.ok()) << client.status();
  ServeClient* c = client.value().get();
  ASSERT_TRUE(c->Open("X//author", "guard=off").ok());
  ASSERT_TRUE(c->Subscribe().ok());
  for (size_t off = 0; off < doc.size(); off += 101) {
    ASSERT_TRUE(
        c->FeedXml(std::string_view(doc).substr(off, 101)).ok());
  }
  ASSERT_TRUE(c->SendFinish().ok());
  ASSERT_TRUE(c->WaitFinished(10000).ok());
  EXPECT_EQ(c->text(), DirectAnswer("X//author", doc));
  EXPECT_GE(c->deltas_received(), 1u);
}

TEST(ServeE2E, EventModeFeedMatchesDirectSession) {
  ServerFixture fixture{ServeServer::Options()};
  const char* xml =
      "<biblio><book><author>Smith</author><price>12</price></book>"
      "<book><author>Jones</author><price>99</price></book></biblio>";
  // Parse the document locally into events, ship them in binary form.
  CollectingSink sink;
  {
    SaxParser parser(SaxParser::Options(), &sink);
    ASSERT_TRUE(parser.Feed(xml).ok());
    ASSERT_TRUE(parser.Finish().ok());
  }
  const EventVec& events = sink.events();
  auto client = ServeClient::Connect(fixture.endpoint());
  ASSERT_TRUE(client.ok()) << client.status();
  ServeClient* c = client.value().get();
  ASSERT_TRUE(c->Open("X//book/price", "guard=off").ok());
  ASSERT_TRUE(c->FeedEvents(events).ok());
  ASSERT_TRUE(c->SendFinish().ok());
  ASSERT_TRUE(c->WaitFinished(10000).ok());
  EXPECT_EQ(c->text(), DirectAnswer("X//book/price", xml));
}

TEST(ServeE2E, MixingFeedModesIsAStructuredError) {
  ServerFixture fixture{ServeServer::Options()};
  auto client = ServeClient::Connect(fixture.endpoint());
  ASSERT_TRUE(client.ok()) << client.status();
  ServeClient* c = client.value().get();
  ASSERT_TRUE(c->Open("X//author", "guard=off").ok());
  ASSERT_TRUE(c->FeedXml("<biblio>").ok());
  EventVec events;
  events.push_back(Event::StartStream(0));
  // The send itself may race the server's teardown; the structured error
  // is what matters.
  (void)c->FeedEvents(events);
  Status ending = c->WaitFinished(10000);
  EXPECT_EQ(ending.code(), StatusCode::kProtocolViolation) << ending;
}

// The containment criterion from the issue: a session fed the corruption
// corpus over the socket must terminate with a structured error frame
// while a concurrent clean session completes byte-identical to a direct
// QuerySession — and the server survives the whole sweep.
TEST(ServeE2E, FaultCorpusContainedWhileCleanSessionCompletes) {
  ServeServer::Options options;
  options.admission.max_sessions = 8;
  ServerFixture fixture{ServeServer::Options(options)};

  // The long-lived clean session: opened before the sweep, fed between
  // hostile batches, finished after — it overlaps every poisoned session.
  std::string clean_doc = MakeBookDocument(/*seed=*/77, /*approx_bytes=*/8192);
  auto clean = ServeClient::Connect(fixture.endpoint());
  ASSERT_TRUE(clean.ok()) << clean.status();
  ServeClient* cc = clean.value().get();
  ASSERT_TRUE(cc->Open("X//author", "guard=off").ok());
  ASSERT_TRUE(cc->Subscribe().ok());

  const int seeds = SeedCount();
  size_t clean_off = 0;
  const size_t clean_step =
      clean_doc.size() / static_cast<size_t>(seeds) + 1;
  int structured_errors = 0;
  for (int seed = 0; seed < seeds; ++seed) {
    // One poisoned session per seed, guard=failfast so corruption that
    // reaches the pipeline becomes a terminal protocol violation.
    auto hostile = ServeClient::Connect(fixture.endpoint());
    ASSERT_TRUE(hostile.ok()) << "seed " << seed;
    ServeClient* hc = hostile.value().get();
    ASSERT_TRUE(hc->Open("X//book/price", "guard=failfast").ok())
        << "seed " << seed;
    std::string doc = CorruptBytes(
        MakeBookDocument(static_cast<uint64_t>(seed), 1024),
        static_cast<uint64_t>(seed), 0.03);
    Status run = Status::OK();
    for (const std::string& chunk :
         SplitIntoRandomChunks(doc, static_cast<uint64_t>(seed))) {
      run = hc->FeedXml(chunk);
      if (!run.ok()) break;
    }
    if (run.ok()) run = hc->SendFinish();
    // Even when a send raced the teardown, the structured kError frame is
    // (or was) on the wire — drain to it rather than trusting the write
    // side's errno.
    Status ending = hc->WaitFinished(10000);
    if (!ending.ok() && ending.code() != StatusCode::kInternal &&
        ending.message().rfind("timed out", 0) != 0) {
      ++structured_errors;  // a structured frame, not a dropped socket
    }
    // Interleave a slice of the clean feed while the hostile session is
    // being torn down.
    if (clean_off < clean_doc.size()) {
      ASSERT_TRUE(cc->FeedXml(std::string_view(clean_doc)
                                  .substr(clean_off, clean_step))
                      .ok());
      clean_off += clean_step;
    }
  }
  // Some corrupted documents survive parsing by chance; the overwhelming
  // majority must die as structured errors, and none may crash the server.
  EXPECT_GE(structured_errors, seeds / 2);

  while (clean_off < clean_doc.size()) {
    ASSERT_TRUE(cc->FeedXml(std::string_view(clean_doc)
                                .substr(clean_off, clean_step))
                    .ok());
    clean_off += clean_step;
  }
  ASSERT_TRUE(cc->SendFinish().ok());
  ASSERT_TRUE(cc->WaitFinished(10000).ok());
  EXPECT_EQ(cc->text(), DirectAnswer("X//author", clean_doc));

  // The server is still alive and serving: a fresh session works.
  auto after = ServeClient::Connect(fixture.endpoint());
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_TRUE(after.value()->Open("count(X//book)", "guard=off").ok());
}

TEST(ServeE2E, AdmissionRejectionCarriesRetryAfter) {
  ServeServer::Options options;
  options.admission.max_sessions = 1;
  options.admission.retry_after_ms = 250;
  // Full occupancy is the point here; keep the shedder out of the way so
  // the one admitted session is not evicted under its own pressure.
  options.shed.tier1_pressure = 10.0;
  options.shed.tier2_pressure = 10.0;
  options.shed.tier3_pressure = 10.0;
  ServerFixture fixture{options};

  auto first = ServeClient::Connect(fixture.endpoint());
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first.value()->Open("X//author", "guard=off").ok());

  auto second = ServeClient::Connect(fixture.endpoint());
  ASSERT_TRUE(second.ok());
  Status opened = second.value()->Open("X//author", "guard=off");
  EXPECT_EQ(opened.code(), StatusCode::kResourceExhausted);
  EXPECT_GE(second.value()->rejected_retry_after_ms(), 250u);
}

TEST(ServeE2E, OversizedTokenCutOffByResourceEnvelope) {
  // The admission envelope's max_token_bytes reaches the tokenizer: a
  // never-closing tag is refused after the bound, as a structured error,
  // instead of buffering document text without limit.
  ServeServer::Options options;
  options.admission.session_limits.max_token_bytes = 1024;
  ServerFixture fixture{options};
  auto client = ServeClient::Connect(fixture.endpoint());
  ASSERT_TRUE(client.ok());
  ServeClient* c = client.value().get();
  ASSERT_TRUE(c->Open("X//author", "guard=off").ok());
  ASSERT_TRUE(c->FeedXml("<biblio><book ").ok());
  std::string junk(512, 'a');
  Status fed = Status::OK();
  for (int i = 0; fed.ok() && i < 64; ++i) {
    fed = c->FeedXml(junk);  // the send may race the server's error frame
  }
  Status ending = c->WaitFinished(10000);
  EXPECT_EQ(ending.code(), StatusCode::kResourceExhausted) << ending;
  EXPECT_NE(ending.message().find("max_token_bytes"), std::string::npos)
      << ending;
}

TEST(ServeE2E, BulkFeedTakesAdoptedPathAndMatchesDirectSession) {
  // FEED frames at or above the adoption threshold (8 KiB) are handed to
  // the backend as adopted chunks and scanned in place; the answer must
  // still be byte-identical to a direct QuerySession over the same bytes.
  ServerFixture fixture{ServeServer::Options()};
  std::string doc = MakeBookDocument(/*seed=*/11, /*approx_bytes=*/256 * 1024);

  auto client = ServeClient::Connect(fixture.endpoint());
  ASSERT_TRUE(client.ok()) << client.status();
  ServeClient* c = client.value().get();
  ASSERT_TRUE(c->Open("X//author", "guard=off").ok());
  constexpr size_t kFrame = 32 * 1024;  // well above the adoption threshold
  for (size_t off = 0; off < doc.size(); off += kFrame) {
    ASSERT_TRUE(c->FeedXml(std::string_view(doc).substr(off, kFrame)).ok());
  }
  ASSERT_TRUE(c->SendFinish().ok());
  ASSERT_TRUE(c->WaitFinished(10000).ok());
  EXPECT_EQ(c->text(), DirectAnswer("X//author", doc));
}

TEST(ServeE2E, OversizedTokenCutOffOnAdoptedFeedPath) {
  // The length bomb again, but in bulk frames that take the zero-copy
  // adopted path: max_token_bytes must bound the never-ending tag exactly
  // as it does on the copy path, as a structured error over the socket.
  ServeServer::Options options;
  options.admission.session_limits.max_token_bytes = 1024;
  ServerFixture fixture{options};
  auto client = ServeClient::Connect(fixture.endpoint());
  ASSERT_TRUE(client.ok());
  ServeClient* c = client.value().get();
  ASSERT_TRUE(c->Open("X//author", "guard=off").ok());
  // One 32 KiB adopted frame carries the whole bomb: an open tag that
  // never ends.  The tokenizer must refuse it at the bound even though the
  // bytes arrived in a single foreign window.
  std::string bomb = "<biblio><book ";
  bomb.append(32 * 1024, 'a');
  Status fed = c->FeedXml(bomb);  // the send may race the error frame
  (void)fed;
  Status ending = c->WaitFinished(10000);
  EXPECT_EQ(ending.code(), StatusCode::kResourceExhausted) << ending;
  EXPECT_NE(ending.message().find("max_token_bytes"), std::string::npos)
      << ending;
}

TEST(ServeE2E, IdleSessionTimedOutWithStructuredError) {
  ServeServer::Options options;
  options.idle_timeout_ms = 150;
  ServerFixture fixture{options};
  auto client = ServeClient::Connect(fixture.endpoint());
  ASSERT_TRUE(client.ok());
  ServeClient* c = client.value().get();
  ASSERT_TRUE(c->Open("X//author", "guard=off").ok());
  // Send nothing: the deadline sweep must cut us loose with kError.
  Status ending = c->WaitFinished(5000);
  EXPECT_EQ(ending.code(), StatusCode::kResourceExhausted) << ending;
  EXPECT_NE(ending.message().find("idle"), std::string::npos) << ending;
}

TEST(ServeE2E, OverloadEvictsLowestPriorityWithShedNotice) {
  ServeServer::Options options;
  options.admission.max_sessions = 4;
  options.shed.tier1_pressure = 0.20;
  options.shed.tier2_pressure = 0.40;
  options.shed.tier3_pressure = 0.90;  // 4/4 sessions crosses this
  ServerFixture fixture{options};

  std::vector<std::unique_ptr<ServeClient>> clients;
  for (int i = 0; i < 4; ++i) {
    auto client = ServeClient::Connect(fixture.endpoint());
    ASSERT_TRUE(client.ok());
    // Client 0 is the sacrificial low-priority session.
    std::string opts =
        i == 0 ? "guard=off\npriority=0" : "guard=off\npriority=5";
    ASSERT_TRUE(client.value()->Open("X//author", opts).ok()) << i;
    clients.push_back(std::move(client).value());
  }
  // At full occupancy the shedder reaches tier 3 and evicts exactly the
  // low-priority session, with a tier-3 shed notice before the cut.
  Status ending = clients[0]->WaitFinished(5000);
  EXPECT_EQ(ending.code(), StatusCode::kResourceExhausted) << ending;
  EXPECT_GE(clients[0]->last_shed_tier(), 3);
  // A high-priority session is still functional end to end.
  ASSERT_TRUE(clients[1]->FeedXml("<a><b>x</b></a>").ok());
  ASSERT_TRUE(clients[1]->SendFinish().ok());
  EXPECT_TRUE(clients[1]->WaitFinished(10000).ok());
}

TEST(ServeE2E, SharedChannelServesBothMembersAndRefusesLateJoin) {
  ServeServer::Options options;
  options.shared = true;
  ServerFixture fixture{options};
  const char* xml =
      "<biblio><book><author>Smith</author><price>12</price></book>"
      "</biblio>";

  auto a = ServeClient::Connect(fixture.endpoint());
  auto b = ServeClient::Connect(fixture.endpoint());
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(
      a.value()->Open("X//author", "guard=off\nchannel=room").ok());
  ASSERT_TRUE(
      b.value()->Open("X//book/price", "guard=off\nchannel=room").ok());
  ASSERT_TRUE(a.value()->Subscribe().ok());
  ASSERT_TRUE(b.value()->Subscribe().ok());

  // First feeder becomes the channel's stream owner.
  ASSERT_TRUE(a.value()->FeedXml(xml).ok());

  // Joining after streaming started violates the register-before-stream
  // rule and must come back as a structured error, not a hang.
  auto late = ServeClient::Connect(fixture.endpoint());
  ASSERT_TRUE(late.ok());
  Status joined =
      late.value()->Open("count(X//book)", "guard=off\nchannel=room");
  EXPECT_FALSE(joined.ok());

  ASSERT_TRUE(a.value()->SendFinish().ok());
  EXPECT_TRUE(a.value()->WaitFinished(10000).ok());
  EXPECT_TRUE(b.value()->WaitFinished(10000).ok());
  EXPECT_EQ(a.value()->text(), DirectAnswer("X//author", xml));
  EXPECT_EQ(b.value()->text(), DirectAnswer("X//book/price", xml));
}

TEST(ServeE2E, TrafficGeneratorHostileMixLeavesServerHealthy) {
  ServeServer::Options options;
  options.admission.max_sessions = 16;
  ServerFixture fixture{options};
  TrafficOptions traffic;
  traffic.endpoint = fixture.endpoint();
  traffic.honest = 3;
  traffic.hostile = 3;
  traffic.seed = 9;
  traffic.doc_bytes = 2048;
  TrafficReport report = RunTraffic(traffic);
  EXPECT_EQ(report.attempted, 6u);
  EXPECT_EQ(report.completed, 3u);
  EXPECT_EQ(report.errored, 3u);
  EXPECT_EQ(report.transport_errors, 0u);
  // And the server still serves.
  auto after = ServeClient::Connect(fixture.endpoint());
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(after.value()->Open("X//author", "guard=off").ok());
}

}  // namespace
}  // namespace xflux::serve
