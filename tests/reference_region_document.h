// Reference implementation of the region document, kept as the oracle for
// the slab-backed production version (core/region_document.h).
//
// This is the original std::list-based implementation, frozen verbatim:
// one heap node per item, iterators as cursors, intervals owned by a
// unique_ptr vector.  It has no arena, no incremental rendering and no
// performance ambitions — which is exactly what makes it a trustworthy
// oracle.  The memory-plane property suite drives both documents with the
// same (fault-injected) streams and requires byte-identical statuses and
// rendered output.
//
// The only deliberate edit: Feed(kFreeze) starts with dropping_.erase(id),
// mirroring the production document's lenient-mode bound on the dropping
// set, so the two stay comparable on hostile streams that freeze a region
// whose bracket is still being swallowed.

#ifndef XFLUX_TESTS_REFERENCE_REGION_DOCUMENT_H_
#define XFLUX_TESTS_REFERENCE_REGION_DOCUMENT_H_

#include <algorithm>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/event.h"
#include "core/region_document.h"
#include "util/status.h"

namespace xflux {

/// See file comment.
class ReferenceRegionDocument {
 public:
  explicit ReferenceRegionDocument(bool lenient = false)
      : lenient_(lenient) {}

  ReferenceRegionDocument(const ReferenceRegionDocument&) = delete;
  ReferenceRegionDocument& operator=(const ReferenceRegionDocument&) = delete;

  Status Feed(const Event& e) {
    switch (e.kind) {
      case EventKind::kStartStream:
      case EventKind::kEndStream:
        return Status::OK();

      case EventKind::kStartTuple:
      case EventKind::kEndTuple:
      case EventKind::kStartElement:
      case EventKind::kEndElement:
      case EventKind::kCharacters:
        if (dropping_.count(e.id) > 0) return Status::OK();
        items_.insert(InsertPos(e.id), {Item::Type::kEvent, e, nullptr});
        return Status::OK();

      case EventKind::kStartMutable: {
        if (dropping_.count(e.id) > 0) {
          dropping_.insert(e.uid);
          return Status::OK();
        }
        Interval* interval = OpenInterval(e.uid, InsertPos(e.id));
        cursors_[e.id].push_back(interval->end);
        return Status::OK();
      }

      case EventKind::kStartReplace: {
        auto it = active_.find(e.id);
        if (it == active_.end() || dropping_.count(e.id) > 0) {
          if (lenient_ || dropping_.count(e.id) > 0) {
            dropping_.insert(e.uid);
            return Status::OK();
          }
          return Status::InvalidArgument("replace targets unknown region " +
                                         std::to_string(e.id));
        }
        Interval* target = it->second;
        EraseRange(std::next(target->begin), target->end);
        OpenInterval(e.uid, target->end);
        return Status::OK();
      }

      case EventKind::kStartInsertBefore: {
        auto it = active_.find(e.id);
        if (it == active_.end() || dropping_.count(e.id) > 0) {
          if (lenient_ || dropping_.count(e.id) > 0) {
            dropping_.insert(e.uid);
            return Status::OK();
          }
          return Status::InvalidArgument(
              "insert-before targets unknown region " + std::to_string(e.id));
        }
        OpenInterval(e.uid, it->second->begin);
        return Status::OK();
      }

      case EventKind::kStartInsertAfter: {
        auto it = active_.find(e.id);
        if (it == active_.end() || dropping_.count(e.id) > 0) {
          if (lenient_ || dropping_.count(e.id) > 0) {
            dropping_.insert(e.uid);
            return Status::OK();
          }
          return Status::InvalidArgument(
              "insert-after targets unknown region " + std::to_string(e.id));
        }
        OpenInterval(e.uid, std::next(it->second->end));
        return Status::OK();
      }

      case EventKind::kEndMutable:
      case EventKind::kEndReplace:
      case EventKind::kEndInsertBefore:
      case EventKind::kEndInsertAfter: {
        if (dropping_.erase(e.uid) > 0) return Status::OK();
        auto it = cursors_.find(e.uid);
        if (it == cursors_.end() || it->second.empty()) {
          if (lenient_) return Status::OK();
          return Status::InvalidArgument("end bracket for region " +
                                         std::to_string(e.uid) +
                                         " that is not open");
        }
        it->second.pop_back();
        if (it->second.empty()) cursors_.erase(it);
        if (e.kind == EventKind::kEndMutable) {
          auto tit = cursors_.find(e.id);
          if (tit != cursors_.end() && !tit->second.empty()) {
            tit->second.pop_back();
            if (tit->second.empty()) cursors_.erase(tit);
          }
        }
        return Status::OK();
      }

      case EventKind::kHide: {
        auto it = active_.find(e.id);
        if (it == active_.end()) {
          if (lenient_) return Status::OK();
          return Status::InvalidArgument("hide targets unknown region " +
                                         std::to_string(e.id));
        }
        it->second->hidden = true;
        return Status::OK();
      }

      case EventKind::kShow: {
        auto it = active_.find(e.id);
        if (it == active_.end()) {
          if (lenient_) return Status::OK();
          return Status::InvalidArgument("show targets unknown region " +
                                         std::to_string(e.id));
        }
        it->second->hidden = false;
        return Status::OK();
      }

      case EventKind::kFreeze: {
        dropping_.erase(e.id);
        auto it = active_.find(e.id);
        if (it == active_.end()) return Status::OK();
        Interval* target = it->second;
        if (target->hidden) {
          EraseRange(target->begin, std::next(target->end));
        } else {
          Unbind(e.id);
        }
        return Status::OK();
      }
    }
    return Status::Internal("unhandled event kind");
  }

  Status FeedAll(const EventVec& events) {
    for (const Event& e : events) {
      XFLUX_RETURN_IF_ERROR(Feed(e));
    }
    return Status::OK();
  }

  EventVec RenderEvents(const RenderOptions& options = {}) const {
    EventVec out;
    int skip_depth = 0;
    for (const Item& item : items_) {
      if (item.type == Item::Type::kBegin) {
        if (skip_depth > 0 || item.interval->hidden) ++skip_depth;
        continue;
      }
      if (item.type == Item::Type::kEnd) {
        if (skip_depth > 0) --skip_depth;
        continue;
      }
      if (skip_depth > 0) continue;
      const Event& e = item.event;
      if (!options.keep_tuples && (e.kind == EventKind::kStartTuple ||
                                   e.kind == EventKind::kEndTuple)) {
        continue;
      }
      Event copy = e;
      copy.id = options.out_id;
      out.push_back(std::move(copy));
    }
    return out;
  }

  size_t live_region_count() const { return active_.size(); }
  size_t item_count() const { return items_.size(); }
  size_t dropping_count() const { return dropping_.size(); }

 private:
  struct Interval;

  struct Item {
    enum class Type : uint8_t { kEvent, kBegin, kEnd };
    Type type;
    Event event;
    Interval* interval;
  };
  using ItemList = std::list<Item>;
  using Iter = ItemList::iterator;

  struct Interval {
    StreamId id = 0;
    Iter begin;
    Iter end;
    bool hidden = false;
  };

  Iter InsertPos(StreamId id) {
    auto it = cursors_.find(id);
    if (it != cursors_.end() && !it->second.empty()) return it->second.back();
    return items_.end();
  }

  void Bind(StreamId id, Interval* interval) {
    auto [it, inserted] = active_.try_emplace(id, interval);
    if (!inserted) it->second = interval;
  }

  void Unbind(StreamId id) { active_.erase(id); }

  Interval* OpenInterval(StreamId uid, Iter pos) {
    intervals_.push_back(std::make_unique<Interval>());
    Interval* interval = intervals_.back().get();
    interval->id = uid;
    interval->begin = items_.insert(pos, {Item::Type::kBegin, {}, interval});
    interval->end = items_.insert(pos, {Item::Type::kEnd, {}, interval});
    Bind(uid, interval);
    cursors_[uid].push_back(interval->end);
    return interval;
  }

  void DropCursorsAt(Iter pos, StreamId uid) {
    for (auto it = cursors_.begin(); it != cursors_.end();) {
      auto& stack = it->second;
      size_t before = stack.size();
      stack.erase(std::remove(stack.begin(), stack.end(), pos), stack.end());
      if (it->first == uid && stack.size() != before) {
        dropping_.insert(uid);
      }
      it = stack.empty() ? cursors_.erase(it) : std::next(it);
    }
  }

  void EraseRange(Iter from, Iter to) {
    for (Iter i = from; i != to;) {
      if (i->type == Item::Type::kBegin) {
        auto it = active_.find(i->interval->id);
        if (it != active_.end() && it->second == i->interval) {
          Unbind(i->interval->id);
        }
      } else if (i->type == Item::Type::kEnd) {
        DropCursorsAt(i, i->interval->id);
      }
      i = items_.erase(i);
    }
  }

  ItemList items_;
  std::unordered_map<StreamId, Interval*> active_;
  std::unordered_map<StreamId, std::vector<Iter>> cursors_;
  std::vector<std::unique_ptr<Interval>> intervals_;
  std::unordered_set<StreamId> dropping_;
  bool lenient_;
};

}  // namespace xflux

#endif  // XFLUX_TESTS_REFERENCE_REGION_DOCUMENT_H_
