// QueryServer tests:
//
//  1. Prefix extraction — SplitForSharedPrefix lifts exactly the shareable
//     leading spine (and refuses what it must), with canonical
//     (op, Symbol) signatures; SpexPrefixDag merges signature paths and
//     counts reuse; SpexEngine::ParseSignatures exposes the same keys for
//     SPEX patterns.
//  2. The server contract: per-query answers byte-identical to N
//     independent QuerySessions over the same stream — across every query
//     class of the property sweeps, the accept/reject configurations, and
//     the hostile fault corpus under all three guard policies.
//  3. Isolation and lifecycle: a poisoned stream class leaves sibling
//     classes' answers (and the server itself) healthy; registration is
//     frozen at the first push; per-query knobs keep working under the
//     server.

#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/protocol_guard.h"
#include "spex/spex_engine.h"
#include "test_util.h"
#include "testing/fault_injector.h"
#include "xquery/compiler.h"
#include "xquery/engine.h"
#include "xquery/parser.h"
#include "xquery/query_server.h"

namespace xflux {
namespace {

// ---------------------------------------------------------------------------
// SplitForSharedPrefix.

std::vector<std::string> SplitSignatures(const char* query) {
  auto ast = ParseQuery(query);
  EXPECT_TRUE(ast.ok()) << query << ": " << ast.status();
  if (!ast.ok()) return {};
  PrefixSplit split = SplitForSharedPrefix(BuildPlan(*ast.value()));
  EXPECT_NE(split.residual, nullptr) << query;
  std::vector<std::string> keys;
  for (const PrefixStep& op : split.prefix) keys.push_back(op.signature);
  return keys;
}

TEST(PrefixSplit, LiftsWholeSpineWithCanonicalSignatures) {
  EXPECT_EQ(SplitSignatures("X//book[author=\"Smith\"]/title"),
            (std::vector<std::string>{"desc(book)",
                                      "pred(./child(author)=\"Smith\")",
                                      "child(title)"}));
  EXPECT_EQ(SplitSignatures("X//book/price"),
            (std::vector<std::string>{"desc(book)", "child(price)"}));
}

TEST(PrefixSplit, SpineUnderAggregatesAndFlworIsExtractable) {
  // The aggregate / FLWOR head stays in the residual; its input spine
  // lifts.
  EXPECT_EQ(SplitSignatures("count(X//book)"),
            (std::vector<std::string>{"desc(book)"}));
  EXPECT_EQ(SplitSignatures("for $b in X//book where $b/author = \"Smith\" "
                            "return <hit>{ $b/price }</hit>"),
            (std::vector<std::string>{"desc(book)"}));
}

TEST(PrefixSplit, PeeledFlworFiltersStayInResidual) {
  // Filters directly under a FLWOR `in` clause are peeled to tuple scope
  // by the compiler (they run after the return transform); extracting them
  // would change semantics, so the spine stops below them.
  EXPECT_EQ(SplitSignatures("for $b in X//book[author=\"Smith\"] "
                            "return $b/title"),
            (std::vector<std::string>{"desc(book)"}));
}

TEST(PrefixSplit, RefusesBackwardAxesAndBranchingQueries) {
  // A sequence constructor has two stream leaves: no single spine.
  EXPECT_TRUE(SplitSignatures("<r>{ X//a, X//b }</r>").empty());
}

TEST(PrefixSplit, EqualSpinesYieldEqualSignatures) {
  auto a = SplitSignatures("X//book[author=\"Smith\"]/title");
  auto b = SplitSignatures("X//book[author=\"Smith\"]/price");
  ASSERT_EQ(a.size(), 3u);
  ASSERT_EQ(b.size(), 3u);
  EXPECT_EQ(a[0], b[0]);
  EXPECT_EQ(a[1], b[1]);
  EXPECT_NE(a[2], b[2]);
}

TEST(PrefixSplit, ResidualCompilesAndAnswers) {
  // Splitting must never break the residual: compile it standalone and
  // make sure a full-extraction residual (bare stream) still wires up.
  auto ast = ParseQuery("X//book/price");
  ASSERT_TRUE(ast.ok());
  PrefixSplit split = SplitForSharedPrefix(BuildPlan(*ast.value()));
  EXPECT_EQ(split.prefix.size(), 2u);
  auto compiled = CompilePlan(*split.residual);
  ASSERT_TRUE(compiled.ok()) << compiled.status();
}

// ---------------------------------------------------------------------------
// SpexPrefixDag.

TEST(SpexPrefixDag, MergesCommonPrefixesAndCountsReuse) {
  SpexPrefixDag dag;
  auto first = dag.AddPath({"desc(a)", "child(b)", "child(c)"});
  EXPECT_EQ(first.reused, 0u);
  EXPECT_EQ(first.added, 3u);
  auto second = dag.AddPath({"desc(a)", "child(b)", "child(d)"});
  EXPECT_EQ(second.reused, 2u);
  EXPECT_EQ(second.added, 1u);
  EXPECT_EQ(dag.node_count(), 4u);
  EXPECT_EQ(dag.steps_seen(), 6u);
  EXPECT_EQ(dag.steps_reused(), 2u);
  EXPECT_DOUBLE_EQ(dag.SharedRatio(), 2.0 / 6.0);
  // Shared interior nodes are literally the same node ids.
  EXPECT_EQ(first.nodes[0], second.nodes[0]);
  EXPECT_EQ(first.nodes[1], second.nodes[1]);
  EXPECT_NE(first.nodes[2], second.nodes[2]);
  EXPECT_EQ(dag.key(first.nodes[1]), "child(b)");
  EXPECT_EQ(dag.parent(second.nodes[2]), second.nodes[1]);
  EXPECT_EQ(dag.hits(first.nodes[0]), 2u);
}

TEST(SpexPrefixDag, IdenticalPathsShareEverything) {
  SpexPrefixDag dag;
  dag.AddPath({"desc(a)", "child(b)"});
  auto again = dag.AddPath({"desc(a)", "child(b)"});
  EXPECT_EQ(again.reused, 2u);
  EXPECT_EQ(again.added, 0u);
  EXPECT_EQ(dag.node_count(), 2u);
}

TEST(SpexSignatures, PatternStepsExposeDagKeys) {
  auto sigs =
      SpexEngine::ParseSignatures("X//item[location=\"Albania\"]/quantity");
  ASSERT_TRUE(sigs.ok()) << sigs.status();
  ASSERT_EQ(sigs.value().size(), 2u);
  EXPECT_EQ(sigs.value()[0].Key(),
            "desc(item)[location=\"Albania\"]");
  EXPECT_EQ(sigs.value()[1].Key(), "child(quantity)");
  EXPECT_FALSE(sigs.value()[0].symbol.empty());
}

// ---------------------------------------------------------------------------
// Server vs N sessions: byte-identical answers.

struct QueryOutput {
  bool text_ok = false;
  std::string text;
  StatusCode code = StatusCode::kOk;
};

struct RunConfig {
  bool accept_source_updates = true;
  bool guard = false;
  ProtocolGuard::Policy policy = ProtocolGuard::Policy::kFailFast;
  bool instrumentation = false;
};

QueryOptions MakeOptions(const RunConfig& config) {
  QueryOptions options;
  options.accept_source_updates = config.accept_source_updates;
  options.guard = config.guard;
  options.guard_options.policy = config.policy;
  options.instrumentation = config.instrumentation;
  return options;
}

QueryOutput Capture(const StatusOr<std::string>& text, const Status& status) {
  QueryOutput out;
  out.text_ok = text.ok();
  if (text.ok()) out.text = text.value();
  out.code = status.code();
  return out;
}

std::vector<QueryOutput> RunSessions(const std::vector<const char*>& queries,
                                     const EventVec& input,
                                     const RunConfig& config) {
  std::vector<QueryOutput> outputs;
  for (const char* query : queries) {
    auto session = QuerySession::Open(query, MakeOptions(config));
    if (!session.ok()) {
      ADD_FAILURE() << query << ": " << session.status();
      outputs.emplace_back();
      continue;
    }
    session.value()->PushAll(input);
    session.value()->Finish();
    if (config.guard) session.value()->guard()->Finish();
    outputs.push_back(Capture(session.value()->CurrentText(),
                              session.value()->status()));
  }
  return outputs;
}

std::vector<QueryOutput> RunServer(const std::vector<const char*>& queries,
                                   const EventVec& input,
                                   const RunConfig& config) {
  QueryServer server;
  std::vector<QueryHandle*> handles;
  for (const char* query : queries) {
    auto handle = server.Register(query, MakeOptions(config));
    if (!handle.ok()) {
      ADD_FAILURE() << query << ": " << handle.status();
      return {};
    }
    handles.push_back(handle.value());
  }
  server.PushAll(input);
  server.Finish();
  std::vector<QueryOutput> outputs;
  for (QueryHandle* h : handles) {
    outputs.push_back(Capture(h->CurrentText(), h->status()));
  }
  return outputs;
}

void ExpectSameAnswers(const std::vector<const char*>& queries,
                       const EventVec& input, const RunConfig& config,
                       uint64_t seed) {
  std::vector<QueryOutput> sessions = RunSessions(queries, input, config);
  std::vector<QueryOutput> server = RunServer(queries, input, config);
  ASSERT_EQ(server.size(), sessions.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(server[i].text_ok, sessions[i].text_ok)
        << queries[i] << " seed " << seed;
    EXPECT_EQ(server[i].text, sessions[i].text) << queries[i] << " seed "
                                                << seed;
    EXPECT_EQ(server[i].code, sessions[i].code) << queries[i] << " seed "
                                                << seed;
  }
}

// Every query class from the property sweeps (see parallel_test.cc) — the
// sharing transformation must be invisible at the answer level for all of
// them, registered together on one server.
const std::vector<const char*>& AllQueryClasses() {
  static const std::vector<const char*> kQueries = {
      "X//book[author=\"Smith\"]/title",
      "count(X//book[author=\"Smith\"])",
      "X//book[publisher=\"Wiley\"][author=\"Smith\"]/price",
      "X//author",
      "X//book/price",
      "count(X//book)",
      "sum(X//price)",
      "for $b in X//book where $b/author = \"Smith\" "
      "return <hit>{ $b/price }</hit>",
      "for $b in X//book order by $b/price return $b/author",
      "<all>{ for $b in X//book return <b>{ $b/author, $b/price }</b> }</all>",
  };
  return kQueries;
}

TEST(QueryServerEquivalence, AllQueryClassesMatchSessionsByteForByte) {
  for (uint64_t seed = 1; seed <= 15; ++seed) {
    RandomStream stream = MakeRandomBookStream(seed);
    ExpectSameAnswers(AllQueryClasses(), stream.events, RunConfig{}, seed);
    if (HasNonfatalFailure()) return;  // first repro is enough
  }
}

TEST(QueryServerEquivalence, RejectedSourceUpdatesMatchSessions) {
  RunConfig config;
  config.accept_source_updates = false;
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    RandomStream stream = MakeRandomBookStream(seed);
    ExpectSameAnswers(AllQueryClasses(), stream.events, config, seed);
    if (HasNonfatalFailure()) return;
  }
}

TEST(QueryServerEquivalence, InstrumentedRunsMatchAndCount) {
  RunConfig config;
  config.instrumentation = true;
  RandomStream stream = MakeRandomBookStream(7);
  ExpectSameAnswers(AllQueryClasses(), stream.events, config, 7);

  QueryServer server;
  auto handle = server.Register("X//book/price", MakeOptions(config));
  ASSERT_TRUE(handle.ok());
  server.PushAll(stream.events);
  StatsRegistry stats = server.BuildStats();
  ASSERT_GT(stats.size(), 0u);
  uint64_t total_in = 0;
  for (size_t i = 0; i < stats.size(); ++i) total_in += stats.stage(i).events_in();
  EXPECT_GT(total_in, 0u);
  EXPECT_NE(server.StatsTable().find("shared/"), std::string::npos);
}

TEST(QueryServerEquivalence, UpdateStreamsMatchSessions) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    EventVec input = RandomUpdateStream(seed);
    ExpectSameAnswers(AllQueryClasses(), input, RunConfig{}, seed);
    if (HasNonfatalFailure()) return;
  }
}

// ---------------------------------------------------------------------------
// Fault corpus: hostile mutated streams, all three guard policies.

int FaultSeedCount() {
  if (const char* env = std::getenv("XFLUX_FAULT_ITERS")) {
    int v = std::atoi(env);
    if (v > 0) return v;
  }
  return 100;  // CI fuzz-smoke raises this to 500
}

class ServerFaultEquivalence : public ::testing::TestWithParam<const char*> {};

TEST_P(ServerFaultEquivalence, MutatedStreamsAnswerIdentically) {
  const char* query = GetParam();
  constexpr ProtocolGuard::Policy kPolicies[] = {
      ProtocolGuard::Policy::kFailFast, ProtocolGuard::Policy::kDropRegion,
      ProtocolGuard::Policy::kResync};
  const int seeds = FaultSeedCount();
  const std::vector<const char*> queries = {query};
  for (int seed = 1; seed <= seeds; ++seed) {
    EventVec clean = RandomUpdateStream(static_cast<uint64_t>(seed));
    FaultSpec spec = ParseFaultSpec(seed % 2 == 0 ? "heavy" : "light").value();
    for (ProtocolGuard::Policy policy : kPolicies) {
      EventVec mutated = MutateStream(
          clean, spec,
          static_cast<uint64_t>(seed) * 31 + static_cast<int>(policy),
          nullptr);
      RunConfig config;
      config.guard = true;
      config.policy = policy;
      ExpectSameAnswers(queries, mutated, config,
                        static_cast<uint64_t>(seed));
      if (HasFatalFailure() || HasNonfatalFailure()) return;  // first repro
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    HostileQueries, ServerFaultEquivalence,
    ::testing::Values("X//book[author=\"Smith\"]/title", "count(X//book)",
                      "for $b in X//book where $b/author = \"Smith\" "
                      "return <hit>{ $b/price }</hit>"),
    [](const auto& info) { return "q" + std::to_string(info.index); });

// ---------------------------------------------------------------------------
// Sharing introspection.

TEST(QueryServerSharing, CommonSpinesDeduplicate) {
  QueryServer server;
  auto a = server.Register("X//book[author=\"Smith\"]/title");
  auto b = server.Register("X//book[author=\"Smith\"]/price");
  auto c = server.Register("X//book/price");
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());

  QueryServer::SharingStats s = server.sharing();
  EXPECT_EQ(s.queries, 3u);
  EXPECT_EQ(s.classes, 1u);
  // Paths: desc(book)/pred/title, desc(book)/pred/price, desc(book)/price
  // → 5 distinct nodes out of 8 offered ops, 3 reused.
  EXPECT_EQ(s.prefix_nodes, 5u);
  EXPECT_EQ(s.prefix_ops_seen, 8u);
  EXPECT_EQ(s.prefix_ops_reused, 3u);
  EXPECT_GT(s.prefix_stages, 0u);
  EXPECT_NEAR(s.HitRatio(), 3.0 / 8.0, 1e-9);

  // The two pred-sharing queries walk the same first two signatures.
  ASSERT_EQ(a.value()->prefix_signature().size(), 3u);
  EXPECT_EQ(a.value()->prefix_signature()[0],
            b.value()->prefix_signature()[0]);
  EXPECT_EQ(a.value()->prefix_signature()[1],
            b.value()->prefix_signature()[1]);
  EXPECT_GT(a.value()->shared_stage_count(), 0u);

  // The rollup surfaces in JSON too.
  std::string json = server.ToJson();
  EXPECT_NE(json.find("\"prefix\""), std::string::npos);
  EXPECT_NE(json.find("\"hit_ratio\""), std::string::npos);
  EXPECT_NE(json.find("\"per_query\""), std::string::npos);
}

TEST(QueryServerSharing, IdenticalRegistrationsShareOneSuffixRuntime) {
  // Byte-identical registrations (same query, same options) collapse to
  // one suffix pipeline + display: both handles read the same answer
  // object, and the rollup counts the runtime once.
  QueryServer server;
  auto a = server.Register("X//book[author=\"Smith\"]/title");
  auto b = server.Register("X//book[author=\"Smith\"]/title");
  auto c = server.Register("X//book[author=\"Smith\"]/price");
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());

  EXPECT_TRUE(a.value()->shares_suffix());
  EXPECT_TRUE(b.value()->shares_suffix());
  EXPECT_FALSE(c.value()->shares_suffix());
  EXPECT_EQ(a.value()->display(), b.value()->display());
  EXPECT_NE(a.value()->display(), c.value()->display());

  QueryServer::SharingStats s = server.sharing();
  EXPECT_EQ(s.queries, 3u);
  EXPECT_EQ(s.distinct_suffixes, 2u);

  RandomStream stream = MakeRandomBookStream(5);
  server.PushAll(stream.events);
  auto ta = a.value()->CurrentText();
  auto tb = b.value()->CurrentText();
  ASSERT_TRUE(ta.ok() && tb.ok());
  EXPECT_EQ(ta.value(), tb.value());

  // A knob that changes the suffix surface (tracing) blocks the dedup.
  QueryServer server2;
  QueryOptions traced;
  traced.trace_capacity = 8;
  auto plain = server2.Register("X//book/price");
  auto with_trace = server2.Register("X//book/price", traced);
  ASSERT_TRUE(plain.ok() && with_trace.ok());
  EXPECT_FALSE(plain.value()->shares_suffix());
  EXPECT_FALSE(with_trace.value()->shares_suffix());
  EXPECT_EQ(plain.value()->trace(), nullptr);
  EXPECT_NE(with_trace.value()->trace(), nullptr);
}

TEST(QueryServerSharing, AggregateMetricsCoverAllSegments) {
  QueryServer server;
  ASSERT_TRUE(server.Register("X//book/price").ok());
  ASSERT_TRUE(server.Register("X//book/title").ok());
  RandomStream stream = MakeRandomBookStream(3);
  server.PushAll(stream.events);
  Metrics total = server.AggregateMetrics();
  EXPECT_GT(total.transformer_calls(), 0u);
}

// ---------------------------------------------------------------------------
// Isolation and lifecycle.

TEST(QueryServerIsolation, PoisonedClassLeavesSiblingsAnswering) {
  // One guarded fail-fast query and one unguarded query share a server; a
  // hostile stream poisons the guarded class only.
  EventVec clean = RandomUpdateStream(11);
  FaultSpec spec = ParseFaultSpec("heavy").value();
  EventVec mutated = MutateStream(clean, spec, 1234, nullptr);

  RunConfig guarded;
  guarded.guard = true;
  guarded.policy = ProtocolGuard::Policy::kFailFast;

  QueryServer server;
  auto bad = server.Register("X//book/price", MakeOptions(guarded));
  auto good = server.Register("count(X//book)");
  ASSERT_TRUE(bad.ok() && good.ok());
  server.PushAll(mutated);
  server.Finish();

  // The unguarded sibling matches its standalone run exactly.
  auto session = QuerySession::Open("count(X//book)");
  ASSERT_TRUE(session.ok());
  session.value()->PushAll(mutated);
  session.value()->Finish();
  EXPECT_EQ(good.value()->CurrentText().value(),
            session.value()->CurrentText().value());
  EXPECT_TRUE(good.value()->status().ok());

  // The guarded query reports its own failure; the server stays healthy.
  auto guarded_session =
      QuerySession::Open("X//book/price", MakeOptions(guarded));
  ASSERT_TRUE(guarded_session.ok());
  guarded_session.value()->PushAll(mutated);
  guarded_session.value()->Finish();
  guarded_session.value()->guard()->Finish();
  EXPECT_EQ(bad.value()->status().code(),
            guarded_session.value()->status().code());
  EXPECT_TRUE(server.status().ok());
}

TEST(QueryServerLifecycle, RegistrationFreezesAtFirstPush) {
  QueryServer server;
  ASSERT_TRUE(server.Register("X//book/price").ok());
  server.Push(Event::StartStream(0));
  auto late = server.Register("X//book/title");
  EXPECT_FALSE(late.ok());
  EXPECT_EQ(late.status().code(), StatusCode::kInvalidArgument);
}

TEST(QueryServerLifecycle, PushDocumentAnswersLikeASession) {
  const char* xml =
      "<bib><book><author>Smith</author><title>XML</title>"
      "<price>42</price></book><book><author>Jones</author>"
      "<title>Streams</title><price>7</price></book></bib>";
  QueryServer server;
  auto title = server.Register("X//book[author=\"Smith\"]/title");
  auto count = server.Register("count(X//book)");
  ASSERT_TRUE(title.ok() && count.ok());
  ASSERT_TRUE(server.PushDocument(xml).ok());

  auto expect_title = RunQueryOnXml("X//book[author=\"Smith\"]/title", xml);
  auto expect_count = RunQueryOnXml("count(X//book)", xml);
  ASSERT_TRUE(expect_title.ok() && expect_count.ok());
  EXPECT_EQ(title.value()->CurrentText().value(), expect_title.value());
  EXPECT_EQ(count.value()->CurrentText().value(), expect_count.value());
}

TEST(QueryServerLifecycle, PerQueryKnobsHonored) {
  QueryServer server;
  QueryOptions traced;
  traced.trace_capacity = 16;
  auto a = server.Register("X//book/price", traced);
  auto b = server.Register("X//book/title");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(a.value()->trace(), nullptr);
  EXPECT_EQ(b.value()->trace(), nullptr);
  EXPECT_EQ(a.value()->guard(), nullptr);

  QueryOptions guarded;
  guarded.guard = true;
  auto c = server.Register("count(X//book)", guarded);
  ASSERT_TRUE(c.ok());
  EXPECT_NE(c.value()->guard(), nullptr);
  EXPECT_EQ(server.sharing().classes, 2u);
}

}  // namespace
}  // namespace xflux
