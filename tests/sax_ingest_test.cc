// Property tests for the zero-copy ingest path (DESIGN.md Section 12):
// chunk boundaries must be invisible in the emitted events, aliased text
// must outlive the parser, slow drips must stay O(n) in scan work, the
// window must be recycled rather than reallocated, and the accelerated
// scan mode must be observationally identical to the forced-scalar
// reference on hostile input.

#include <cstdint>
#include <random>
#include <string>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "core/event.h"
#include "core/event_sink.h"
#include "data/generators.h"
#include "testing/fault_injector.h"
#include "testing/traffic_gen.h"
#include "util/buffer_ledger.h"
#include "util/text_ref.h"
#include "xml/sax_parser.h"
#include "xml/scan.h"

namespace xflux {
namespace {

struct ParseRun {
  Status status = Status::OK();
  EventVec events;
  SaxParser::IngestStats stats;
};

ParseRun ParseChunked(std::string_view doc, const std::vector<size_t>& cuts,
                      SaxParser::Options options = {}) {
  ParseRun run;
  CollectingSink sink;
  SaxParser parser(options, &sink);
  size_t at = 0;
  for (size_t cut : cuts) {
    run.status = parser.Feed(doc.substr(at, cut - at));
    at = cut;
    if (!run.status.ok()) break;
  }
  if (run.status.ok()) run.status = parser.Feed(doc.substr(at));
  if (run.status.ok()) run.status = parser.Finish();
  run.stats = parser.ingest_stats();
  run.events = sink.Take();
  return run;
}

void ExpectSameEvents(const EventVec& a, const EventVec& b,
                      const std::string& label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].kind, b[i].kind) << label << " event " << i;
    ASSERT_EQ(a[i].id, b[i].id) << label << " event " << i;
    ASSERT_EQ(a[i].tag, b[i].tag) << label << " event " << i;
    ASSERT_EQ(a[i].oid, b[i].oid) << label << " event " << i;
    ASSERT_EQ(a[i].chars(), b[i].chars()) << label << " event " << i;
  }
}

TEST(SaxIngest, RandomChunkSplitsAreInvisible) {
  std::string doc = GenerateXmark(XmarkOptionsForBytes(48 * 1024));
  ParseRun whole = ParseChunked(doc, {});
  ASSERT_TRUE(whole.status.ok()) << whole.status;
  std::mt19937 rng(2008);
  for (int iter = 0; iter < 12; ++iter) {
    std::vector<size_t> cuts;
    size_t at = 0;
    while (at < doc.size()) {
      // Mix tiny and page-sized pieces so tags, entities, and text runs
      // all get cut mid-token somewhere.
      at += 1 + rng() % (iter % 2 == 0 ? 7 : 4096);
      if (at >= doc.size()) break;
      cuts.push_back(at);
    }
    ParseRun split = ParseChunked(doc, cuts);
    ASSERT_TRUE(split.status.ok()) << split.status;
    ExpectSameEvents(split.events, whole.events,
                     "iter " + std::to_string(iter));
  }
}

TEST(SaxIngest, AliasedTextSurvivesTheParser) {
  // Zero-copy cD payloads (including ones whose slice headers live inside
  // the input chunk) must stay readable after the parser — and with it the
  // last chunk handle — is gone.
  std::string body(256, 'q');
  std::string doc = "<a><b>" + body + "</b><c>tiny but aliasable</c></a>";
  EventVec events;
  SaxParser::IngestStats stats;
  {
    CollectingSink sink;
    SaxParser::Options options;
    options.min_alias_bytes = 8;
    SaxParser parser(options, &sink);
    ASSERT_TRUE(parser.Feed(doc).ok());
    ASSERT_TRUE(parser.Finish().ok());
    stats = parser.ingest_stats();
    events = sink.Take();
  }
  EXPECT_GE(stats.aliased_texts, 2u);
  std::vector<std::string> texts;
  for (const Event& e : events) {
    if (e.kind == EventKind::kCharacters) texts.emplace_back(e.chars());
  }
  ASSERT_EQ(texts.size(), 2u);
  EXPECT_EQ(texts[0], body);
  EXPECT_EQ(texts[1], "tiny but aliasable");
}

TEST(SaxIngest, SliceOutlivesEveryOtherHandleToItsChunk) {
  // Keep exactly one aliased event alive, drop everything else, and make
  // sure the bytes are still there (the slice pins the chunk).
  TextRef survivor;
  {
    CollectingSink sink;
    SaxParser parser(SaxParser::Options(), &sink);
    std::string doc = "<a>0123456789 ten chars and then some</a>";
    ASSERT_TRUE(parser.Feed(doc).ok());
    ASSERT_TRUE(parser.Finish().ok());
    for (Event& e : sink.Take()) {
      if (e.kind == EventKind::kCharacters) survivor = std::move(e.text);
    }
  }
  EXPECT_EQ(survivor.view(), "0123456789 ten chars and then some");
  EXPECT_TRUE(survivor.is_slice());
}

TEST(SaxIngest, SlowDripScanWorkStaysLinear) {
  // A large comment fed one byte at a time used to rescan the buffered
  // prefix for "-->" on every Feed — O(n^2) bytes examined.  The resume
  // offset must keep total scan work within a small constant of the
  // document size.  (At 256 KiB the quadratic behavior would examine
  // ~8 GiB; the bound below fails fast if it ever comes back.)
  std::string doc = "<a><!--";
  doc.append(256 * 1024, 'c');
  doc += "--><b>x</b></a>";
  NullSink sink;
  SaxParser parser(SaxParser::Options(), &sink);
  for (size_t i = 0; i < doc.size(); ++i) {
    ASSERT_TRUE(parser.Feed(std::string_view(doc).substr(i, 1)).ok()) << i;
  }
  ASSERT_TRUE(parser.Finish().ok());
  EXPECT_LE(parser.ingest_stats().bytes_scanned, 8 * doc.size());
}

TEST(SaxIngest, WindowIsRecycledNotReallocated) {
  // Feeding page-sized chunks of a large document must settle into
  // in-place compaction of one window, not a fresh allocation per Feed.
  std::string doc = GenerateXmark(XmarkOptionsForBytes(256 * 1024));
  NullSink sink;
  SaxParser parser(SaxParser::Options(), &sink);
  std::string_view d(doc);
  for (size_t off = 0; off < d.size(); off += 4096) {
    ASSERT_TRUE(parser.Feed(d.substr(off, 4096)).ok());
  }
  ASSERT_TRUE(parser.Finish().ok());
  const SaxParser::IngestStats& stats = parser.ingest_stats();
  EXPECT_GT(stats.compactions, 0u);
  // Allocations happen only when live slices pin the current chunk; that
  // is bounded by the feed count, and in practice far below it.
  EXPECT_LT(stats.chunk_allocs, doc.size() / 4096 / 2);
}

TEST(SaxIngest, LedgerChargesASharedChunkOnce) {
  // Every aliased cD in one window shares one pinned chunk: the ledger
  // must charge the chunk's bytes once, not per slice.
  CollectingSink sink;
  SaxParser::Options options;
  options.min_alias_bytes = 8;
  SaxParser parser(options, &sink);
  ASSERT_TRUE(
      parser.Feed("<a><b>first aliased text run</b>"
                  "<c>second aliased text run</c>"
                  "<d>third aliased text run</d></a>")
          .ok());
  ASSERT_TRUE(parser.Finish().ok());
  EventVec events = sink.Take();
  std::vector<const Event*> texts;
  for (const Event& e : events) {
    if (e.kind == EventKind::kCharacters) texts.push_back(&e);
  }
  ASSERT_EQ(texts.size(), 3u);
  ASSERT_TRUE(texts[0]->text.is_slice());
  ASSERT_EQ(texts[0]->text.buffer_id(), texts[1]->text.buffer_id());
  ASSERT_EQ(texts[1]->text.buffer_id(), texts[2]->text.buffer_id());

  BufferLedger ledger;
  int64_t first = ledger.Add(texts[0]->text, sizeof(Event));
  EXPECT_EQ(first, static_cast<int64_t>(sizeof(Event) +
                                        texts[0]->text.payload_bytes()));
  int64_t second = ledger.Add(texts[1]->text, sizeof(Event));
  EXPECT_EQ(second, static_cast<int64_t>(sizeof(Event)));
  int64_t third = ledger.Add(texts[2]->text, sizeof(Event));
  EXPECT_EQ(third, static_cast<int64_t>(sizeof(Event)));
  ledger.Remove(texts[0]->text, sizeof(Event));
  ledger.Remove(texts[1]->text, sizeof(Event));
  ledger.Remove(texts[2]->text, sizeof(Event));
  EXPECT_EQ(ledger.bytes(), 0);
}

TEST(SaxIngest, AliasingDisabledCopiesEverything) {
  CollectingSink sink;
  SaxParser::Options options;
  options.min_alias_bytes = SIZE_MAX;
  SaxParser parser(options, &sink);
  ASSERT_TRUE(
      parser.Feed("<a>a text run comfortably past the inline limit</a>")
          .ok());
  ASSERT_TRUE(parser.Finish().ok());
  EXPECT_EQ(parser.ingest_stats().aliased_texts, 0u);
  EXPECT_GE(parser.ingest_stats().copied_texts, 1u);
  for (const Event& e : sink.events()) {
    if (e.kind == EventKind::kCharacters) EXPECT_FALSE(e.text.is_slice());
  }
}

// Both scan modes must produce byte-identical verdicts and events on a
// corpus of well-formed, malformed, and randomly corrupted documents, at
// hostile chunkings.  This is the runtime guarantee behind the
// XFLUX_FORCE_SCALAR escape hatch.
TEST(SaxIngest, ScalarAndAcceleratedModesAreObservationallyIdentical) {
  std::vector<std::string> corpus = {
      GenerateXmark(XmarkOptionsForBytes(16 * 1024)),
      "<a><b>x</b><!--c--><![CDATA[<raw>]]><?pi d?></a>",
      "<a>fish &amp; chips &bogus;</a>",
      "<a><b>x</c></a>",
      "<biblio><book>text",
      "<a>x]]>y</a>",
  };
  for (int seed = 0; seed < 24; ++seed) {
    corpus.push_back(CorruptBytes(
        serve::MakeBookDocument(static_cast<uint64_t>(seed), 768),
        static_cast<uint64_t>(seed), 0.02));
  }
  std::mt19937 rng(4242);
  for (size_t i = 0; i < corpus.size(); ++i) {
    const std::string& doc = corpus[i];
    std::vector<size_t> cuts;
    size_t at = 0;
    while (at < doc.size()) {
      at += 1 + rng() % 97;
      if (at >= doc.size()) break;
      cuts.push_back(at);
    }
    scan::SetForceScalar(false);
    ParseRun fast = ParseChunked(doc, cuts);
    scan::SetForceScalar(true);
    ParseRun slow = ParseChunked(doc, cuts);
    scan::SetForceScalar(false);
    ASSERT_EQ(fast.status.code(), slow.status.code()) << "corpus[" << i << "]";
    ASSERT_EQ(fast.status.message(), slow.status.message())
        << "corpus[" << i << "]";
    ExpectSameEvents(fast.events, slow.events,
                     "corpus[" + std::to_string(i) + "]");
    // Observable side effects beyond events must match too.
    EXPECT_EQ(fast.stats.aliased_texts, slow.stats.aliased_texts);
    EXPECT_EQ(fast.stats.copied_texts, slow.stats.copied_texts);
    EXPECT_EQ(fast.stats.inlined_texts, slow.stats.inlined_texts);
  }
}

TEST(SaxIngest, MaxTokenBytesAppliesToDrippedText) {
  SaxParser::Options options;
  options.max_token_bytes = 1024;
  NullSink sink;
  SaxParser parser(options, &sink);
  std::string big(4096, 't');
  Status s = Status::OK();
  ASSERT_TRUE(parser.Feed("<a>").ok());
  for (size_t i = 0; s.ok() && i < big.size(); ++i) {
    s = parser.Feed(std::string_view(big).substr(i, 1));
  }
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted) << s;
}

}  // namespace
}  // namespace xflux
