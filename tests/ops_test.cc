#include <gtest/gtest.h>

#include "core/result_display.h"
#include "core/transform_stage.h"
#include "ops/aggregates.h"
#include "ops/backward.h"
#include "ops/child_step.h"
#include "ops/clone.h"
#include "ops/concat.h"
#include "ops/descendant_step.h"
#include "ops/predicate.h"
#include "ops/sorter.h"
#include "ops/textops.h"
#include "ops/tuples.h"
#include "tests/test_util.h"
#include "xml/serializer.h"

namespace xflux {
namespace {

std::string MaterializedXml(const EventVec& raw) {
  auto m = Materialize(raw);
  EXPECT_TRUE(m.ok()) << m.status();
  if (!m.ok()) return "<error>";
  auto xml = XmlSerializer::ToXml(m.value());
  EXPECT_TRUE(xml.ok()) << xml.status();
  return xml.ok() ? xml.value() : "<error>";
}

// ---------------------------------------------------------------------------
// DescendantStep

TEST(DescendantStepTest, PaperExamplePostorder) {
  // Section VI-C: //* over the two-branch document yields postorder.
  EventVec in = Tok(
      "<a><b><c><d>X</d><d>Y</d></c></b><b><c><d>Z</d></c></b></a>");
  RunResult r = RunPipeline(in, [](PipelineContext* c) {
    std::vector<std::unique_ptr<StateTransformer>> v;
    v.push_back(std::make_unique<DescendantStep>(c, 0, "*"));
    return v;
  });
  EXPECT_EQ(MaterializedXml(r.raw),
            "<d>X</d><d>Y</d><c><d>X</d><d>Y</d></c>"
            "<b><c><d>X</d><d>Y</d></c></b>"
            "<d>Z</d><c><d>Z</d></c><b><c><d>Z</d></c></b>");
}

TEST(DescendantStepTest, SmallPaperExample) {
  // <a><b><c>x</c></b></a> //* == <c>x</c><b><c>x</c></b>.
  EventVec in = Tok("<a><b><c>x</c></b></a>");
  RunResult r = RunPipeline(in, [](PipelineContext* c) {
    std::vector<std::unique_ptr<StateTransformer>> v;
    v.push_back(std::make_unique<DescendantStep>(c, 0, "*"));
    return v;
  });
  EXPECT_EQ(MaterializedXml(r.raw), "<c>x</c><b><c>x</c></b>");
}

TEST(DescendantStepTest, TagStepSelectsAllDepths) {
  EventVec in = Tok("<a><x><item>1</item></x><item>2</item></a>");
  RunResult r = RunPipeline(in, [](PipelineContext* c) {
    std::vector<std::unique_ptr<StateTransformer>> v;
    v.push_back(std::make_unique<DescendantStep>(c, 0, "item"));
    return v;
  });
  EXPECT_EQ(MaterializedXml(r.raw), "<item>1</item><item>2</item>");
}

TEST(DescendantStepTest, RecursiveTagPostorder) {
  // //part over recursive parts: inner copies come first.
  EventVec in = Tok("<doc><part>a<part>b</part></part></doc>");
  RunResult r = RunPipeline(in, [](PipelineContext* c) {
    std::vector<std::unique_ptr<StateTransformer>> v;
    v.push_back(std::make_unique<DescendantStep>(c, 0, "part"));
    return v;
  });
  EXPECT_EQ(MaterializedXml(r.raw),
            "<part>b</part><part>a<part>b</part></part>");
}

TEST(DescendantStepTest, NonRecursiveTagGeneratesNoUpdates) {
  // For non-recursive data //tag is as cheap as /tag: no update events.
  EventVec in = Tok("<a><b><item>1</item></b><item>2</item></a>");
  RunResult r = RunPipeline(in, [](PipelineContext* c) {
    std::vector<std::unique_ptr<StateTransformer>> v;
    v.push_back(std::make_unique<DescendantStep>(c, 0, "item"));
    return v;
  });
  int inserts = 0;
  for (const Event& e : r.raw) {
    if (e.kind == EventKind::kStartInsertBefore) ++inserts;
  }
  EXPECT_EQ(inserts, 0);
}

TEST(DescendantStepTest, WildcardSkipsAttributes) {
  EventVec in = Tok("<a><b id=\"1\">x</b></a>");
  RunResult r = RunPipeline(in, [](PipelineContext* c) {
    std::vector<std::unique_ptr<StateTransformer>> v;
    v.push_back(std::make_unique<DescendantStep>(c, 0, "*"));
    return v;
  });
  // The attribute is preserved inside b's copy but no standalone @id copy
  // appears.
  EXPECT_EQ(MaterializedXml(r.raw), "<b id=\"1\">x</b>");
}

TEST(DescendantStepTest, DeepNestingStressPostorder) {
  // A chain a/b1/b2/.../b6: //* returns copies innermost-first.
  EventVec in = Tok("<a><n><n><n><n><n>x</n></n></n></n></n></a>");
  RunResult r = RunPipeline(in, [](PipelineContext* c) {
    std::vector<std::unique_ptr<StateTransformer>> v;
    v.push_back(std::make_unique<DescendantStep>(c, 0, "n"));
    return v;
  });
  std::string xml = MaterializedXml(r.raw);
  // Five copies, sizes strictly increasing (postorder).
  EXPECT_EQ(xml,
            "<n>x</n><n><n>x</n></n><n><n><n>x</n></n></n>"
            "<n><n><n><n>x</n></n></n></n>"
            "<n><n><n><n><n>x</n></n></n></n></n>");
}

// ---------------------------------------------------------------------------
// Clone + TextCompare

TEST(CloneTest, DuplicatesOntoSecondStream) {
  Pipeline pipeline;
  pipeline.AddStage<CloneFilter>(pipeline.context(), 0, 1);
  CollectingSink sink;
  pipeline.SetSink(&sink);
  pipeline.PushAll(Tok("<a>x</a>"));
  int zeros = 0, ones = 0;
  for (const Event& e : sink.events()) {
    if (e.kind == EventKind::kStartElement) {
      if (e.id == 0) ++zeros;
      if (e.id == 1) ++ones;
    }
  }
  EXPECT_EQ(zeros, 1);
  EXPECT_EQ(ones, 1);
}

TEST(CloneTest, UpdateBracketsGetParallelRegions) {
  Pipeline pipeline;
  pipeline.AddStage<CloneFilter>(pipeline.context(), 0, 1);
  CollectingSink sink;
  pipeline.SetSink(&sink);
  pipeline.PushAll({Event::StartStream(0), Event::StartMutable(0, 20),
                    Event::Characters(20, "x"), Event::EndMutable(0, 20),
                    Event::EndStream(0)});
  EventVec out = sink.Take();
  ASSERT_TRUE(ValidateUpdateStream(out).ok()) << ValidateUpdateStream(out);
  // Two distinct mutable regions, one rooted at each base.
  std::vector<Event> starts;
  for (const Event& e : out) {
    if (e.kind == EventKind::kStartMutable) starts.push_back(e);
  }
  ASSERT_EQ(starts.size(), 2u);
  EXPECT_EQ(starts[0].id, 0u);
  EXPECT_EQ(starts[1].id, 1u);
  EXPECT_NE(starts[0].uid, starts[1].uid);
  // Both regions carry the text.
  int texts = 0;
  for (const Event& e : out) {
    if (e.kind == EventKind::kCharacters) ++texts;
  }
  EXPECT_EQ(texts, 2);
}

TEST(TextCompareTest, EqualsEmitsBooleanCData) {
  EventVec in = Tok("<lib><author>Smith</author><author>Jones</author></lib>");
  RunResult r = RunPipeline(in, [](PipelineContext* c) {
    std::vector<std::unique_ptr<StateTransformer>> v;
    v.push_back(std::make_unique<ChildStep>(0, "author"));
    v.push_back(
        std::make_unique<TextCompare>(c, 0, TextMatch::kEquals, "Smith"));
    return v;
  });
  EventVec expect = {Event::Characters(0, "1"), Event::Characters(0, "")};
  EXPECT_EQ(r.materialized, expect);
}

TEST(TextCompareTest, ContainsMatchesSubstring) {
  EventVec in = Tok("<l><a>John Smith</a><a>Jane Doe</a></l>");
  RunResult r = RunPipeline(in, [](PipelineContext* c) {
    std::vector<std::unique_ptr<StateTransformer>> v;
    v.push_back(std::make_unique<ChildStep>(0, "a"));
    v.push_back(
        std::make_unique<TextCompare>(c, 0, TextMatch::kContains, "Smith"));
    return v;
  });
  EventVec expect = {Event::Characters(0, "1"), Event::Characters(0, "")};
  EXPECT_EQ(r.materialized, expect);
}

TEST(TextCompareTest, StringValueConcatenatesNestedText) {
  EventVec in = Tok("<l><a><first>John </first><last>Smith</last></a></l>");
  RunResult r = RunPipeline(in, [](PipelineContext* c) {
    std::vector<std::unique_ptr<StateTransformer>> v;
    v.push_back(std::make_unique<ChildStep>(0, "a"));
    v.push_back(
        std::make_unique<TextCompare>(c, 0, TextMatch::kEquals, "John Smith"));
    return v;
  });
  EXPECT_EQ(r.materialized, EventVec{Event::Characters(0, "1")});
}

TEST(TextExtractTest, SelectsTextChildren) {
  EventVec in = Tok("<l><t>hello<b>bold</b> world</t></l>");
  RunResult r = RunPipeline(in, [](PipelineContext* c) {
    std::vector<std::unique_ptr<StateTransformer>> v;
    v.push_back(std::make_unique<ChildStep>(0, "t"));
    v.push_back(std::make_unique<TextExtract>(0));
    return v;
  });
  EventVec expect = {Event::Characters(0, "hello"),
                     Event::Characters(0, " world")};
  EXPECT_EQ(r.materialized, expect);
}

// ---------------------------------------------------------------------------
// PredicateOp: full //book[author="Smith"] pipelines.

std::vector<std::unique_ptr<StateTransformer>> BookByAuthorStages(
    PipelineContext* c, const std::string& author) {
  std::vector<std::unique_ptr<StateTransformer>> v;
  v.push_back(std::make_unique<DescendantStep>(c, 0, "book"));
  return v;
}

// Builds the full pipeline //book[author=<name>] with the clone-based
// condition branch, mirroring how the query compiler wires predicates.
RunResult RunBookPredicate(const EventVec& in, const std::string& author,
                           size_t* predicate_tracked_regions = nullptr) {
  Pipeline pipeline;
  PipelineContext* c = pipeline.context();
  pipeline.AddStage<TransformStage>(
      c, std::make_unique<DescendantStep>(c, 0, "book"));
  pipeline.AddStage<CloneFilter>(c, 0, 1);
  pipeline.AddStage<TransformStage>(
      c, std::make_unique<ChildStep>(1, "author"));
  pipeline.AddStage<TransformStage>(
      c, std::make_unique<TextCompare>(c, 1, TextMatch::kEquals, author));
  auto* stage = pipeline.AddStage<TransformStage>(
      c, std::make_unique<PredicateOp>(c, 0, 1, PredicateScope::kElement));
  CollectingSink sink;
  pipeline.SetSink(&sink);
  pipeline.PushAll(in);
  // Read before the pipeline (which owns the stage) is destroyed.
  if (predicate_tracked_regions != nullptr) {
    *predicate_tracked_regions = stage->tracked_region_count();
  }
  RunResult result;
  result.raw = sink.Take();
  auto m = Materialize(result.raw);
  EXPECT_TRUE(m.ok()) << m.status();
  if (m.ok()) result.materialized = std::move(m).value();
  return result;
}

TEST(PredicateTest, SelectsMatchingElementsOnPlainStream) {
  EventVec in = Tok(
      "<lib><book><author>Smith</author><title>A</title></book>"
      "<book><author>Jones</author><title>B</title></book>"
      "<book><author>Smith</author><title>C</title></book></lib>");
  RunResult r = RunBookPredicate(in, "Smith");
  EXPECT_EQ(MaterializedXml(r.raw),
            "<book><author>Smith</author><title>A</title></book>"
            "<book><author>Smith</author><title>C</title></book>");
}

TEST(PredicateTest, NoMatchesYieldsEmpty) {
  EventVec in = Tok("<lib><book><author>Jones</author></book></lib>");
  RunResult r = RunBookPredicate(in, "Smith");
  EXPECT_EQ(MaterializedXml(r.raw), "");
}

TEST(PredicateTest, ElementWithoutConditionChildIsFalse) {
  EventVec in = Tok("<lib><book><title>NoAuthor</title></book></lib>");
  RunResult r = RunBookPredicate(in, "Smith");
  EXPECT_EQ(MaterializedXml(r.raw), "");
}

TEST(PredicateTest, FixedOutcomesFreeStateImmediately) {
  // On a plain (immutable) stream every predicate decision is fixed, so
  // the predicate stage ends with zero tracked regions (Section V).
  EventVec in = Tok(
      "<lib><book><author>Smith</author></book>"
      "<book><author>Jones</author></book></lib>");
  size_t tracked = ~size_t{0};
  RunBookPredicate(in, "Smith", &tracked);
  EXPECT_EQ(tracked, 0u);
}

TEST(PredicateTest, UpdateFlipsDecisionToTrue) {
  // The author is mutable and initially Jones (book hidden); a replacement
  // to Smith must make the book appear retroactively.
  EventVec in = {
      Event::StartStream(0),
      Event::StartElement(0, "lib"),
      Event::StartElement(0, "book"),
      Event::StartElement(0, "author"),
      Event::StartMutable(0, 60),
      Event::Characters(60, "Jones"),
      Event::EndMutable(0, 60),
      Event::EndElement(0, "author"),
      Event::StartElement(0, "title"),
      Event::Characters(0, "T"),
      Event::EndElement(0, "title"),
      Event::EndElement(0, "book"),
      Event::EndElement(0, "lib"),
  };
  Pipeline pipeline;
  PipelineContext* c = pipeline.context();
  pipeline.AddStage<TransformStage>(
      c, std::make_unique<DescendantStep>(c, 0, "book"));
  pipeline.AddStage<CloneFilter>(c, 0, 1);
  pipeline.AddStage<TransformStage>(
      c, std::make_unique<ChildStep>(1, "author"));
  pipeline.AddStage<TransformStage>(
      c, std::make_unique<TextCompare>(c, 1, TextMatch::kEquals, "Smith"));
  pipeline.AddStage<TransformStage>(
      c, std::make_unique<PredicateOp>(c, 0, 1, PredicateScope::kElement));
  ResultDisplay display;
  pipeline.SetSink(&display);
  pipeline.PushAll(in);
  ASSERT_TRUE(display.status().ok()) << display.status();
  EXPECT_EQ(display.CurrentText().value(), "");  // Jones: hidden

  pipeline.PushAll({Event::StartReplace(60, 61), Event::Characters(61, "Smith"),
                    Event::EndReplace(60, 61)});
  ASSERT_TRUE(display.status().ok()) << display.status();
  EXPECT_EQ(display.CurrentText().value(),
            "<book><author>Smith</author><title>T</title></book>");

  // And flip it back off again.
  pipeline.PushAll({Event::StartReplace(61, 62), Event::Characters(62, "Jones"),
                    Event::EndReplace(61, 62)});
  ASSERT_TRUE(display.status().ok()) << display.status();
  EXPECT_EQ(display.CurrentText().value(), "");
}

TEST(PredicateTest, UpdateFlipsDecisionToFalse) {
  EventVec in = {
      Event::StartStream(0),
      Event::StartElement(0, "lib"),
      Event::StartElement(0, "book"),
      Event::StartElement(0, "author"),
      Event::StartMutable(0, 60),
      Event::Characters(60, "Smith"),
      Event::EndMutable(0, 60),
      Event::EndElement(0, "author"),
      Event::EndElement(0, "book"),
      Event::EndElement(0, "lib"),
  };
  Pipeline pipeline;
  PipelineContext* c = pipeline.context();
  pipeline.AddStage<TransformStage>(
      c, std::make_unique<DescendantStep>(c, 0, "book"));
  pipeline.AddStage<CloneFilter>(c, 0, 1);
  pipeline.AddStage<TransformStage>(
      c, std::make_unique<ChildStep>(1, "author"));
  pipeline.AddStage<TransformStage>(
      c, std::make_unique<TextCompare>(c, 1, TextMatch::kEquals, "Smith"));
  pipeline.AddStage<TransformStage>(
      c, std::make_unique<PredicateOp>(c, 0, 1, PredicateScope::kElement));
  ResultDisplay display;
  pipeline.SetSink(&display);
  pipeline.PushAll(in);
  EXPECT_EQ(display.CurrentText().value(),
            "<book><author>Smith</author></book>");
  pipeline.PushAll({Event::StartReplace(60, 61), Event::Characters(61, "Doe"),
                    Event::EndReplace(60, 61)});
  ASSERT_TRUE(display.status().ok()) << display.status();
  EXPECT_EQ(display.CurrentText().value(), "");
}

TEST(PredicateTest, WhereClauseScopesTuples) {
  // for $b in /book where $b/author = "Smith" return $b
  EventVec in = Tok(
      "<lib><book><author>Smith</author><t>A</t></book>"
      "<book><author>Jones</author><t>B</t></book></lib>");
  Pipeline pipeline;
  PipelineContext* c = pipeline.context();
  pipeline.AddStage<TransformStage>(
      c, std::make_unique<ChildStep>(0, "book"));
  pipeline.AddStage<TransformStage>(
      c, std::make_unique<MakeTuples>(0));
  pipeline.AddStage<CloneFilter>(c, 0, 1);
  pipeline.AddStage<TransformStage>(
      c, std::make_unique<ChildStep>(1, "author"));
  pipeline.AddStage<TransformStage>(
      c, std::make_unique<TextCompare>(c, 1, TextMatch::kEquals, "Smith"));
  pipeline.AddStage<TransformStage>(
      c, std::make_unique<PredicateOp>(c, 0, 1, PredicateScope::kTuple));
  CollectingSink sink;
  pipeline.SetSink(&sink);
  pipeline.PushAll(in);
  EXPECT_EQ(MaterializedXml(sink.events()),
            "<book><author>Smith</author><t>A</t></book>");
}

// ---------------------------------------------------------------------------
// ConcatOp

TEST(ConcatTest, LeftContentPrecedesRightPerTuple) {
  // Hand-built tuple streams: left (0) arrives *after* right (1) within
  // the tuple, but must be displayed first.
  EventVec in = {
      Event::StartStream(0),     Event::StartStream(1),
      Event::StartTuple(1),      Event::Characters(1, "R1"),
      Event::StartTuple(0),      Event::Characters(0, "L1"),
      Event::EndTuple(0),        Event::Characters(1, "R2"),
      Event::EndTuple(1),        Event::EndStream(1),
      Event::EndStream(0),
  };
  RunResult r = RunPipeline(in, [](PipelineContext* c) {
    std::vector<std::unique_ptr<StateTransformer>> v;
    v.push_back(std::make_unique<ConcatOp>(c, 0, 1));
    return v;
  });
  EventVec expect = {Event::Characters(0, "L1"), Event::Characters(0, "R1"),
                     Event::Characters(0, "R2")};
  EXPECT_EQ(r.materialized, expect);
}

TEST(ConcatTest, PaperExampleStreamShape) {
  // Section VI-A's example: the right tuple becomes a mutable region and
  // the left stream an insert-before update.
  EventVec in = {
      Event::StartTuple(0),      Event::StartTuple(1),
      Event::Characters(0, "x"), Event::Characters(1, "y"),
      Event::Characters(0, "z"), Event::Characters(1, "w"),
      Event::EndTuple(0),        Event::EndTuple(1),
  };
  RunResult r = RunPipeline(in, [](PipelineContext* c) {
    std::vector<std::unique_ptr<StateTransformer>> v;
    v.push_back(std::make_unique<ConcatOp>(c, 0, 1));
    return v;
  });
  EventVec expect = {Event::Characters(0, "x"), Event::Characters(0, "z"),
                     Event::Characters(0, "y"), Event::Characters(0, "w")};
  EXPECT_EQ(r.materialized, expect);
}

// ---------------------------------------------------------------------------
// SortOp

RunResult RunOrderBy(const EventVec& in, const std::string& item_tag,
                     const std::string& key_tag) {
  Pipeline pipeline;
  PipelineContext* c = pipeline.context();
  pipeline.AddStage<TransformStage>(
      c, std::make_unique<ChildStep>(0, item_tag));
  pipeline.AddStage<TransformStage>(
      c, std::make_unique<MakeTuples>(0));
  pipeline.AddStage<CloneFilter>(c, 0, 1);
  pipeline.AddStage<TransformStage>(
      c, std::make_unique<ChildStep>(1, key_tag));
  pipeline.AddStage<TransformStage>(
      c, std::make_unique<StringValue>(1));
  pipeline.AddStage<SortFilter>(c, 1);
  CollectingSink sink;
  pipeline.SetSink(&sink);
  pipeline.PushAll(in);
  RunResult result;
  result.raw = sink.Take();
  auto m = Materialize(result.raw);
  EXPECT_TRUE(m.ok()) << m.status() << "\n" << ToString(result.raw);
  if (m.ok()) result.materialized = std::move(m).value();
  return result;
}

TEST(SortTest, SortsNumericKeys) {
  EventVec in = Tok(
      "<shop><book><price>30</price><t>c</t></book>"
      "<book><price>9.5</price><t>a</t></book>"
      "<book><price>120</price><t>d</t></book>"
      "<book><price>10</price><t>b</t></book></shop>");
  RunResult r = RunOrderBy(in, "book", "price");
  EXPECT_EQ(MaterializedXml(r.raw),
            "<book><price>9.5</price><t>a</t></book>"
            "<book><price>10</price><t>b</t></book>"
            "<book><price>30</price><t>c</t></book>"
            "<book><price>120</price><t>d</t></book>");
}

TEST(SortTest, SortsStringKeysStable) {
  EventVec in = Tok(
      "<l><e><k>b</k><v>1</v></e><e><k>a</k><v>2</v></e>"
      "<e><k>b</k><v>3</v></e></l>");
  RunResult r = RunOrderBy(in, "e", "k");
  EXPECT_EQ(MaterializedXml(r.raw),
            "<e><k>a</k><v>2</v></e><e><k>b</k><v>1</v></e>"
            "<e><k>b</k><v>3</v></e>");
}

TEST(SortTest, MissingKeySortsFirst) {
  EventVec in = Tok(
      "<l><e><k>5</k></e><e><nokey>x</nokey></e><e><k>1</k></e></l>");
  RunResult r = RunOrderBy(in, "e", "k");
  EXPECT_EQ(MaterializedXml(r.raw),
            "<e><nokey>x</nokey></e><e><k>1</k></e><e><k>5</k></e>");
}

TEST(SortTest, EncodeSortKeyOrdersNumbers) {
  EXPECT_LT(EncodeSortKey("2"), EncodeSortKey("10"));
  EXPECT_LT(EncodeSortKey("-5"), EncodeSortKey("3"));
  EXPECT_LT(EncodeSortKey("-10"), EncodeSortKey("-2"));
  EXPECT_LT(EncodeSortKey("9.5"), EncodeSortKey("10"));
  EXPECT_LT(EncodeSortKey("10"), EncodeSortKey("abc"));  // numbers first
  EXPECT_LT(EncodeSortKey("abc"), EncodeSortKey("abd"));
}

// ---------------------------------------------------------------------------
// ElementConstruct / MakeTuples / literals

TEST(ConstructTest, WholeStreamWrap) {
  EventVec in = Tok("<l><a>1</a><a>2</a></l>");
  RunResult r = RunPipeline(in, [](PipelineContext* c) {
    std::vector<std::unique_ptr<StateTransformer>> v;
    v.push_back(std::make_unique<ChildStep>(0, "a"));
    v.push_back(std::make_unique<ElementConstruct>(
        std::vector<StreamId>{0}, "result", ConstructScope::kWholeStream));
    return v;
  });
  EXPECT_EQ(MaterializedXml(r.raw), "<result><a>1</a><a>2</a></result>");
}

TEST(ConstructTest, PerTupleWrap) {
  EventVec in = Tok("<l><a>1</a><a>2</a></l>");
  RunResult r = RunPipeline(in, [](PipelineContext* c) {
    std::vector<std::unique_ptr<StateTransformer>> v;
    v.push_back(std::make_unique<ChildStep>(0, "a"));
    v.push_back(std::make_unique<MakeTuples>(0));
    v.push_back(std::make_unique<ElementConstruct>(
        std::vector<StreamId>{0}, "item", ConstructScope::kPerTuple));
    return v;
  });
  EXPECT_EQ(MaterializedXml(r.raw),
            "<item><a>1</a></item><item><a>2</a></item>");
}

TEST(ConstructTest, TextLiteralPerTuple) {
  EventVec in = Tok("<l><a>1</a><a>2</a></l>");
  RunResult r = RunPipeline(in, [](PipelineContext* c) {
    std::vector<std::unique_ptr<StateTransformer>> v;
    v.push_back(std::make_unique<ChildStep>(0, "a"));
    v.push_back(std::make_unique<MakeTuples>(0));
    v.push_back(std::make_unique<TextLiteral>(0, ": ", ConstructScope::kPerTuple));
    return v;
  });
  EventVec expect = {Event::Characters(0, ": "), Event::Characters(0, ": ")};
  EXPECT_EQ(r.materialized, expect);
}

// ---------------------------------------------------------------------------
// BackwardAxisOp

RunResult RunBackward(const EventVec& in, const std::string& data_tag,
                      const std::string& candidate_tag, BackwardMode mode) {
  Pipeline pipeline;
  PipelineContext* c = pipeline.context();
  pipeline.AddStage<CloneFilter>(c, 0, 1);
  pipeline.AddStage<TransformStage>(
      c, std::make_unique<DescendantStep>(c, 0, data_tag));
  pipeline.AddStage<TransformStage>(
      c, std::make_unique<DescendantStep>(c, 1, candidate_tag));
  pipeline.AddStage<TransformStage>(
      c, std::make_unique<BackwardAxisOp>(c, 0, 1, mode));
  CollectingSink sink;
  pipeline.SetSink(&sink);
  pipeline.PushAll(in);
  RunResult result;
  result.raw = sink.Take();
  auto m = Materialize(result.raw);
  EXPECT_TRUE(m.ok()) << m.status();
  if (m.ok()) result.materialized = std::move(m).value();
  return result;
}

TEST(BackwardTest, AncestorStarFindsAllAncestors) {
  EventVec in = Tok("<a><b><c><item>x</item></c></b><d>y</d></a>");
  RunResult r = RunBackward(in, "item", "*", BackwardMode::kAncestor);
  // Ancestors of item: c and b (postorder: c first); d does not contain it.
  EXPECT_EQ(MaterializedXml(r.raw),
            "<c><item>x</item></c><b><c><item>x</item></c></b>");
}

TEST(BackwardTest, ParentFindsOnlyDirectParent) {
  EventVec in = Tok("<a><b><c><item>x</item></c></b></a>");
  RunResult r = RunBackward(in, "item", "*", BackwardMode::kParent);
  EXPECT_EQ(MaterializedXml(r.raw), "<c><item>x</item></c>");
}

TEST(BackwardTest, AncestorTagSelectsByName) {
  EventVec in = Tok(
      "<site><europe><x><item>1</item></x></europe>"
      "<asia><item>2</item></asia></site>");
  RunResult r = RunBackward(in, "item", "europe", BackwardMode::kAncestor);
  EXPECT_EQ(MaterializedXml(r.raw),
            "<europe><x><item>1</item></x></europe>");
}

TEST(BackwardTest, CountOfParents) {
  // count(//item/..) style: two items under distinct parents.
  EventVec in = Tok("<a><p><item>1</item></p><q><item>2</item></q></a>");
  Pipeline pipeline;
  PipelineContext* c = pipeline.context();
  pipeline.AddStage<CloneFilter>(c, 0, 1);
  pipeline.AddStage<TransformStage>(
      c, std::make_unique<DescendantStep>(c, 0, "item"));
  pipeline.AddStage<TransformStage>(
      c, std::make_unique<DescendantStep>(c, 1, "*"));
  pipeline.AddStage<TransformStage>(
      c, std::make_unique<BackwardAxisOp>(c, 0, 1, BackwardMode::kParent));
  pipeline.AddStage<TransformStage>(
      c, std::make_unique<CountOp>(c, 1, CountMode::kTopLevelElements));
  ResultDisplay display;
  pipeline.SetSink(&display);
  pipeline.PushAll(in);
  ASSERT_TRUE(display.status().ok()) << display.status();
  EXPECT_EQ(display.CurrentText().value(), "2");
}

}  // namespace
}  // namespace xflux
