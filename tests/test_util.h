// Shared helpers for pipeline tests: run a stage chain over an event
// sequence and observe both the raw output update stream and the
// materialized (display-equivalent) answer.

#ifndef XFLUX_TESTS_TEST_UTIL_H_
#define XFLUX_TESTS_TEST_UTIL_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "core/region_document.h"
#include "core/state_transformer.h"
#include "core/transform_stage.h"
#include "core/well_formed.h"
#include "xml/sax_parser.h"

namespace xflux {

/// Raw and materialized output of one pipeline run.
struct RunResult {
  EventVec raw;           // the update stream reaching the sink
  EventVec materialized;  // after applying all updates
};

/// Runs `input` through a pipeline made of the given stages.
/// `make_stages` receives the context and returns the transformer chain.
template <typename MakeStages>
RunResult RunPipeline(const EventVec& input, MakeStages make_stages,
                      bool accept_source_updates = true) {
  Pipeline pipeline;
  pipeline.set_accept_source_updates(accept_source_updates);
  std::vector<std::unique_ptr<StateTransformer>> transformers =
      make_stages(pipeline.context());
  for (auto& t : transformers) {
    pipeline.AddStage<TransformStage>(pipeline.context(),
                                                  std::move(t));
  }
  CollectingSink sink;
  pipeline.SetSink(&sink);
  pipeline.PushAll(input);

  RunResult result;
  result.raw = sink.Take();
  auto mat = Materialize(result.raw);
  EXPECT_TRUE(mat.ok()) << mat.status() << "\nraw: " << ToString(result.raw);
  if (mat.ok()) result.materialized = std::move(mat).value();
  return result;
}

/// Tokenizes `xml` as stream 0 (with sS/eS brackets).
inline EventVec Tok(std::string_view xml) {
  auto r = SaxParser::Tokenize(xml);
  EXPECT_TRUE(r.ok()) << r.status();
  return r.ok() ? std::move(r).value() : EventVec{};
}

/// Strips OIDs so event sequences can be compared structurally.
inline EventVec StripOids(EventVec v) {
  for (Event& e : v) e.oid = 0;
  return v;
}

}  // namespace xflux

#endif  // XFLUX_TESTS_TEST_UTIL_H_
