// Shared helpers for pipeline tests: run a stage chain over an event
// sequence and observe both the raw output update stream and the
// materialized (display-equivalent) answer.

#ifndef XFLUX_TESTS_TEST_UTIL_H_
#define XFLUX_TESTS_TEST_UTIL_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "core/region_document.h"
#include "core/state_transformer.h"
#include "core/transform_stage.h"
#include "core/well_formed.h"
#include "util/prng.h"
#include "xml/sax_parser.h"
#include "xml/serializer.h"

namespace xflux {

/// Raw and materialized output of one pipeline run.
struct RunResult {
  EventVec raw;           // the update stream reaching the sink
  EventVec materialized;  // after applying all updates
};

/// Runs `input` through a pipeline made of the given stages.
/// `make_stages` receives the context and returns the transformer chain.
template <typename MakeStages>
RunResult RunPipeline(const EventVec& input, MakeStages make_stages,
                      bool accept_source_updates = true) {
  Pipeline pipeline;
  pipeline.set_accept_source_updates(accept_source_updates);
  std::vector<std::unique_ptr<StateTransformer>> transformers =
      make_stages(pipeline.context());
  for (auto& t : transformers) {
    pipeline.AddStage<TransformStage>(pipeline.context(),
                                                  std::move(t));
  }
  CollectingSink sink;
  pipeline.SetSink(&sink);
  pipeline.PushAll(input);

  RunResult result;
  result.raw = sink.Take();
  auto mat = Materialize(result.raw);
  EXPECT_TRUE(mat.ok()) << mat.status() << "\nraw: " << ToString(result.raw);
  if (mat.ok()) result.materialized = std::move(mat).value();
  return result;
}

/// Tokenizes `xml` as stream 0 (with sS/eS brackets).
inline EventVec Tok(std::string_view xml) {
  auto r = SaxParser::Tokenize(xml);
  EXPECT_TRUE(r.ok()) << r.status();
  return r.ok() ? std::move(r).value() : EventVec{};
}

/// Strips OIDs so event sequences can be compared structurally.
inline EventVec StripOids(EventVec v) {
  for (Event& e : v) e.oid = 0;
  return v;
}

/// A random bookstore stream: books with mutable author/price regions,
/// followed by a tail of updates that flip some of them.  Shared by the
/// property sweeps and the serial/parallel equivalence suite.
struct RandomStream {
  EventVec events;        // with sS/eS and embedded updates
  std::string plain_xml;  // the eagerly-updated equivalent document
};

inline RandomStream MakeRandomBookStream(uint64_t seed) {
  Prng prng(seed);
  const std::vector<std::string> authors = {"Smith", "Jones", "Doe"};
  const std::vector<std::string> publishers = {"Wiley", "Other"};
  EventVec ev;
  StreamId next_region = 100;
  std::vector<StreamId> author_regions;
  std::vector<StreamId> price_regions;

  ev.push_back(Event::StartStream(0));
  ev.push_back(Event::StartElement(0, "biblio", 1));
  Oid oid = 2;
  int books = static_cast<int>(prng.Uniform(6)) + 2;
  for (int b = 0; b < books; ++b) {
    ev.push_back(Event::StartElement(0, "book", oid++));
    ev.push_back(Event::StartElement(0, "publisher", oid++));
    ev.push_back(Event::Characters(0, prng.Pick(publishers)));
    ev.push_back(Event::EndElement(0, "publisher"));
    ev.push_back(Event::StartElement(0, "author", oid++));
    bool mutable_author = prng.Chance(0.7);
    if (mutable_author) {
      StreamId region = next_region++;
      author_regions.push_back(region);
      ev.push_back(Event::StartMutable(0, region));
      ev.push_back(Event::Characters(region, prng.Pick(authors)));
      ev.push_back(Event::EndMutable(0, region));
    } else {
      ev.push_back(Event::Characters(0, prng.Pick(authors)));
    }
    ev.push_back(Event::EndElement(0, "author"));
    ev.push_back(Event::StartElement(0, "price", oid++));
    if (prng.Chance(0.5)) {
      StreamId region = next_region++;
      price_regions.push_back(region);
      ev.push_back(Event::StartMutable(0, region));
      ev.push_back(Event::Characters(
          region, std::to_string(prng.Uniform(90) + 10)));
      ev.push_back(Event::EndMutable(0, region));
    } else {
      ev.push_back(Event::Characters(
          0, std::to_string(prng.Uniform(90) + 10)));
    }
    ev.push_back(Event::EndElement(0, "price"));
    ev.push_back(Event::EndElement(0, "book"));
  }
  ev.push_back(Event::EndElement(0, "biblio"));

  // The update tail: author flips and price replacements, with chains.
  int updates = static_cast<int>(prng.Uniform(8));
  for (int u = 0; u < updates; ++u) {
    bool do_author = !author_regions.empty() &&
                     (price_regions.empty() || prng.Chance(0.6));
    std::vector<StreamId>& pool = do_author ? author_regions : price_regions;
    if (pool.empty()) break;
    size_t idx = prng.Uniform(pool.size());
    StreamId fresh = next_region++;
    ev.push_back(Event::StartReplace(pool[idx], fresh));
    ev.push_back(Event::Characters(
        fresh, do_author ? prng.Pick(authors)
                         : std::to_string(prng.Uniform(90) + 10)));
    ev.push_back(Event::EndReplace(pool[idx], fresh));
    pool[idx] = fresh;  // later updates address the newest id
  }
  ev.push_back(Event::EndStream(0));

  RandomStream result;
  auto plain = Materialize(ev);
  EXPECT_TRUE(plain.ok()) << plain.status();
  auto xml = XmlSerializer::ToXml(plain.value());
  EXPECT_TRUE(xml.ok()) << xml.status();
  result.events = std::move(ev);
  result.plain_xml = xml.ok() ? xml.value() : "";
  return result;
}

/// A compact random bookstore stream with embedded mutable regions and an
/// update tail — the same shape as MakeRandomBookStream, sized for volume.
/// Shared by the fault-injection and serial/parallel equivalence suites.
inline EventVec RandomUpdateStream(uint64_t seed) {
  Prng prng(seed);
  const std::vector<std::string> authors = {"Smith", "Jones"};
  EventVec ev;
  StreamId next_region = 100;
  std::vector<StreamId> regions;
  ev.push_back(Event::StartStream(0));
  ev.push_back(Event::StartElement(0, "biblio", 1));
  Oid oid = 2;
  int books = static_cast<int>(prng.Uniform(4)) + 1;
  for (int b = 0; b < books; ++b) {
    ev.push_back(Event::StartElement(0, "book", oid++));
    ev.push_back(Event::StartElement(0, "author", oid++));
    if (prng.Chance(0.6)) {
      StreamId region = next_region++;
      regions.push_back(region);
      ev.push_back(Event::StartMutable(0, region));
      ev.push_back(Event::Characters(region, prng.Pick(authors)));
      ev.push_back(Event::EndMutable(0, region));
    } else {
      ev.push_back(Event::Characters(0, prng.Pick(authors)));
    }
    ev.push_back(Event::EndElement(0, "author"));
    ev.push_back(Event::StartElement(0, "price", oid++));
    ev.push_back(Event::Characters(0, std::to_string(prng.Uniform(90) + 10)));
    ev.push_back(Event::EndElement(0, "price"));
    ev.push_back(Event::EndElement(0, "book"));
  }
  ev.push_back(Event::EndElement(0, "biblio"));
  int updates = static_cast<int>(prng.Uniform(4));
  for (int u = 0; u < updates && !regions.empty(); ++u) {
    size_t idx = prng.Uniform(regions.size());
    StreamId fresh = next_region++;
    ev.push_back(Event::StartReplace(regions[idx], fresh));
    ev.push_back(Event::Characters(fresh, prng.Pick(authors)));
    ev.push_back(Event::EndReplace(regions[idx], fresh));
    regions[idx] = fresh;
  }
  ev.push_back(Event::EndStream(0));
  return ev;
}

}  // namespace xflux

#endif  // XFLUX_TESTS_TEST_UTIL_H_
