// ProtocolGuard unit tests: clean streams pass untouched; every violation
// class is detected online; each recovery policy leaves the downstream
// stream valid (or cleanly poisons the pipeline).

#include <gtest/gtest.h>

#include "core/protocol_guard.h"
#include "core/region_document.h"
#include "core/well_formed.h"
#include "tests/test_util.h"
#include "xquery/engine.h"

namespace xflux {
namespace {

struct GuardRun {
  EventVec out;
  Status pipeline_status;
  uint64_t violations = 0;
  uint64_t dropped_events = 0;
  uint64_t dropped_regions = 0;
  uint64_t resyncs = 0;
  Status last_violation;
};

GuardRun RunGuard(const EventVec& input, ProtocolGuard::Options options,
                  bool batched = true) {
  Pipeline pipeline;
  auto* guard =
      pipeline.AddStage<ProtocolGuard>(pipeline.context(), options);
  CollectingSink sink;
  pipeline.SetSink(&sink);
  if (batched) {
    pipeline.PushAll(input);
  } else {
    for (const Event& e : input) pipeline.Push(e);
  }
  GuardRun run;
  run.out = sink.Take();
  run.pipeline_status = pipeline.status();
  run.violations = guard->violations();
  run.dropped_events = guard->dropped_events();
  run.dropped_regions = guard->dropped_regions();
  run.resyncs = guard->resyncs();
  run.last_violation = guard->last_violation();
  return run;
}

EventVec CleanStream() {
  EventVec ev;
  ev.push_back(Event::StartStream(0));
  ev.push_back(Event::StartElement(0, "a", 1));
  ev.push_back(Event::StartMutable(0, 100));
  ev.push_back(Event::Characters(100, "x"));
  ev.push_back(Event::EndMutable(0, 100));
  ev.push_back(Event::EndElement(0, "a"));
  ev.push_back(Event::StartReplace(100, 101));
  ev.push_back(Event::Characters(101, "y"));
  ev.push_back(Event::EndReplace(100, 101));
  ev.push_back(Event::EndStream(0));
  return ev;
}

TEST(ProtocolGuard, CleanStreamPassesUntouched) {
  EventVec input = CleanStream();
  for (bool batched : {true, false}) {
    GuardRun run = RunGuard(input, {}, batched);
    EXPECT_TRUE(run.pipeline_status.ok()) << run.pipeline_status;
    EXPECT_EQ(run.violations, 0u);
    EXPECT_EQ(StripOids(run.out), StripOids(input));
  }
}

TEST(ProtocolGuard, ParsePolicy) {
  EXPECT_EQ(ProtocolGuard::ParsePolicy("failfast").value(),
            ProtocolGuard::Policy::kFailFast);
  EXPECT_EQ(ProtocolGuard::ParsePolicy("drop").value(),
            ProtocolGuard::Policy::kDropRegion);
  EXPECT_EQ(ProtocolGuard::ParsePolicy("resync").value(),
            ProtocolGuard::Policy::kResync);
  EXPECT_FALSE(ProtocolGuard::ParsePolicy("bogus").ok());
}

TEST(ProtocolGuard, FailFastPoisonsOnMismatchedEndElement) {
  EventVec ev;
  ev.push_back(Event::StartStream(0));
  ev.push_back(Event::StartElement(0, "a", 1));
  ev.push_back(Event::EndElement(0, "b"));  // mismatched
  ev.push_back(Event::EndElement(0, "a"));
  ev.push_back(Event::EndStream(0));

  GuardRun run = RunGuard(ev, {});
  EXPECT_EQ(run.pipeline_status.code(), StatusCode::kProtocolViolation)
      << run.pipeline_status;
  EXPECT_EQ(run.violations, 1u);
  // The clean prefix reached the sink; nothing after the violation did.
  EXPECT_EQ(run.out.size(), 2u);
}

TEST(ProtocolGuard, DropPolicySkipsGarbageEvent) {
  EventVec ev = CleanStream();
  // An end bracket no one opened, spliced into the middle.
  ev.insert(ev.begin() + 2, Event::EndReplace(7, 77));

  ProtocolGuard::Options options;
  options.policy = ProtocolGuard::Policy::kDropRegion;
  GuardRun run = RunGuard(ev, options);
  EXPECT_TRUE(run.pipeline_status.ok()) << run.pipeline_status;
  EXPECT_EQ(run.violations, 1u);
  EXPECT_EQ(run.dropped_events, 1u);
  EXPECT_EQ(run.dropped_regions, 0u);
  EXPECT_EQ(StripOids(run.out), StripOids(CleanStream()));
}

TEST(ProtocolGuard, DropPolicyRetractsCorruptRegion) {
  EventVec ev;
  ev.push_back(Event::StartStream(0));
  ev.push_back(Event::StartElement(0, "a", 1));
  ev.push_back(Event::StartMutable(0, 100));
  ev.push_back(Event::StartElement(100, "u", 2));
  ev.push_back(Event::EndElement(100, "wrong"));  // corrupt inside region
  ev.push_back(Event::Characters(100, "gone"));   // swallowed with region
  ev.push_back(Event::EndMutable(0, 100));        // swallowed (real end)
  ev.push_back(Event::EndElement(0, "a"));
  ev.push_back(Event::EndStream(0));

  ProtocolGuard::Options options;
  options.policy = ProtocolGuard::Policy::kDropRegion;
  GuardRun run = RunGuard(ev, options);
  EXPECT_TRUE(run.pipeline_status.ok()) << run.pipeline_status;
  EXPECT_EQ(run.dropped_regions, 1u);
  EXPECT_TRUE(ValidateUpdateStream(run.out).ok())
      << ValidateUpdateStream(run.out) << "\n" << ToString(run.out);
  // The partial region was closed, hidden, and frozen downstream.
  EventVec expect_tail = {Event::EndElement(100, "u"),
                          Event::EndMutable(0, 100), Event::Hide(100),
                          Event::Freeze(100)};
  ASSERT_GE(run.out.size(), 4u + 3u);
  EventVec tail(run.out.begin() + 4, run.out.begin() + 8);
  EXPECT_EQ(StripOids(tail), StripOids(expect_tail)) << ToString(run.out);
  // Materialization drops the hidden region's partial content.
  auto mat = Materialize(run.out, RenderOptions(), /*lenient=*/true);
  ASSERT_TRUE(mat.ok()) << mat.status();
}

TEST(ProtocolGuard, DropPolicyHandlesDoubleOpen) {
  EventVec ev;
  ev.push_back(Event::StartStream(0));
  ev.push_back(Event::StartElement(0, "a", 1));
  ev.push_back(Event::StartMutable(0, 100));
  ev.push_back(Event::Characters(100, "x"));
  ev.push_back(Event::StartMutable(0, 100));  // double open
  ev.push_back(Event::Characters(100, "y"));  // swallowed
  ev.push_back(Event::EndMutable(0, 100));    // swallowed (inner end)
  ev.push_back(Event::EndMutable(0, 100));    // swallowed (outer end)
  ev.push_back(Event::EndElement(0, "a"));
  ev.push_back(Event::EndStream(0));

  ProtocolGuard::Options options;
  options.policy = ProtocolGuard::Policy::kDropRegion;
  GuardRun run = RunGuard(ev, options);
  EXPECT_TRUE(run.pipeline_status.ok()) << run.pipeline_status;
  EXPECT_EQ(run.dropped_regions, 1u);
  EXPECT_TRUE(ValidateUpdateStream(run.out).ok())
      << ValidateUpdateStream(run.out) << "\n" << ToString(run.out);
}

TEST(ProtocolGuard, DropPolicyEscalatesBaseStreamBreakage) {
  EventVec ev;
  ev.push_back(Event::StartStream(0));
  ev.push_back(Event::StartElement(0, "a", 1));
  ev.push_back(Event::EndStream(0));  // stream ends with <a> open

  ProtocolGuard::Options options;
  options.policy = ProtocolGuard::Policy::kDropRegion;
  GuardRun run = RunGuard(ev, options);
  EXPECT_EQ(run.pipeline_status.code(), StatusCode::kProtocolViolation);
}

TEST(ProtocolGuard, ResyncSkipsToNextStream) {
  EventVec ev;
  ev.push_back(Event::StartStream(0));
  ev.push_back(Event::StartElement(0, "a", 1));
  ev.push_back(Event::StartMutable(0, 100));
  ev.push_back(Event::EndElement(0, "b"));     // base-stream corruption
  ev.push_back(Event::Characters(0, "junk"));  // swallowed during resync
  ev.push_back(Event::EndStream(0));           // swallowed; ends resync
  ev.push_back(Event::StartStream(1));         // fresh stream: processed
  ev.push_back(Event::StartElement(1, "c", 2));
  ev.push_back(Event::EndElement(1, "c"));
  ev.push_back(Event::EndStream(1));

  ProtocolGuard::Options options;
  options.policy = ProtocolGuard::Policy::kResync;
  GuardRun run = RunGuard(ev, options);
  EXPECT_TRUE(run.pipeline_status.ok()) << run.pipeline_status;
  EXPECT_EQ(run.resyncs, 1u);
  EXPECT_TRUE(ValidateUpdateStream(run.out).ok())
      << ValidateUpdateStream(run.out) << "\n" << ToString(run.out);
  EXPECT_TRUE(CheckWellFormed(run.out, 0).ok()) << ToString(run.out);
  EXPECT_TRUE(CheckWellFormed(run.out, 1).ok()) << ToString(run.out);
  // The fresh stream made it through intact.
  EventVec tail(run.out.end() - 4, run.out.end());
  EventVec expect = {Event::StartStream(1), Event::StartElement(1, "c"),
                     Event::EndElement(1, "c"), Event::EndStream(1)};
  EXPECT_EQ(StripOids(tail), StripOids(expect)) << ToString(run.out);
}

TEST(ProtocolGuard, ResyncResumesAtStartStreamViolation) {
  // A second sS for an already-open stream is itself the balanced point:
  // resync closes stream 0, then the offending sS restarts it.
  EventVec ev;
  ev.push_back(Event::StartStream(0));
  ev.push_back(Event::StartElement(0, "a", 1));
  ev.push_back(Event::StartStream(0));  // violation and restart point
  ev.push_back(Event::StartElement(0, "b", 2));
  ev.push_back(Event::EndElement(0, "b"));
  ev.push_back(Event::EndStream(0));

  ProtocolGuard::Options options;
  options.policy = ProtocolGuard::Policy::kResync;
  GuardRun run = RunGuard(ev, options);
  EXPECT_TRUE(run.pipeline_status.ok()) << run.pipeline_status;
  EXPECT_TRUE(CheckWellFormed(run.out, 0).ok()) << ToString(run.out);
}

TEST(ProtocolGuard, MaxDepthEnforced) {
  EventVec ev;
  ev.push_back(Event::StartStream(0));
  ev.push_back(Event::StartElement(0, "a", 1));
  ev.push_back(Event::StartElement(0, "a", 2));
  ev.push_back(Event::StartElement(0, "a", 3));  // depth 3 > limit 2

  ProtocolGuard::Options options;
  options.limits.max_depth = 2;
  GuardRun run = RunGuard(ev, options);
  EXPECT_EQ(run.pipeline_status.code(), StatusCode::kResourceExhausted)
      << run.pipeline_status;
  EXPECT_EQ(run.out.size(), 3u);  // the offending sE never got through
}

TEST(ProtocolGuard, MaxOpenRegionsDroppedUnderDropPolicy) {
  EventVec ev;
  ev.push_back(Event::StartStream(0));
  ev.push_back(Event::StartElement(0, "a", 1));
  ev.push_back(Event::StartMutable(0, 100));
  ev.push_back(Event::StartMutable(0, 101));  // second open region: over limit
  ev.push_back(Event::Characters(101, "x"));  // swallowed
  ev.push_back(Event::EndMutable(0, 101));    // swallowed
  ev.push_back(Event::EndMutable(0, 100));
  ev.push_back(Event::EndElement(0, "a"));
  ev.push_back(Event::EndStream(0));

  ProtocolGuard::Options options;
  options.policy = ProtocolGuard::Policy::kDropRegion;
  options.limits.max_open_regions = 1;
  GuardRun run = RunGuard(ev, options);
  EXPECT_TRUE(run.pipeline_status.ok()) << run.pipeline_status;
  EXPECT_EQ(run.dropped_regions, 1u);
  EXPECT_EQ(run.last_violation.code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(ValidateUpdateStream(run.out).ok())
      << ValidateUpdateStream(run.out) << "\n" << ToString(run.out);
}

TEST(ProtocolGuard, CountersMirroredIntoMetrics) {
  EventVec ev = CleanStream();
  ev.insert(ev.begin() + 2, Event::EndReplace(7, 77));

  Pipeline pipeline;
  ProtocolGuard::Options options;
  options.policy = ProtocolGuard::Policy::kDropRegion;
  pipeline.AddStage<ProtocolGuard>(pipeline.context(), options);
  CollectingSink sink;
  pipeline.SetSink(&sink);
  pipeline.PushAll(ev);
  const Metrics& m = *pipeline.context()->metrics();
  EXPECT_EQ(m.guard_violations(), 1u);
  EXPECT_EQ(m.guard_dropped_events(), 1u);
  EXPECT_NE(m.ToString().find("guard_violations=1"), std::string::npos)
      << m.ToString();
}

TEST(ProtocolGuard, GuardedSessionSurvivesTruncatedUpdateTail) {
  // End-to-end: a query session with a drop-policy guard keeps serving an
  // answer when the update tail is cut mid-bracket by the source vanishing.
  QuerySession::Options options;
  options.guard = true;
  options.guard_options.policy = ProtocolGuard::Policy::kDropRegion;
  auto session = QuerySession::Open("X//author", options);
  ASSERT_TRUE(session.ok()) << session.status();

  EventVec ev;
  ev.push_back(Event::StartStream(0));
  ev.push_back(Event::StartElement(0, "biblio", 1));
  ev.push_back(Event::StartElement(0, "author", 2));
  ev.push_back(Event::StartMutable(0, 100));
  ev.push_back(Event::Characters(100, "Smith"));
  ev.push_back(Event::EndMutable(0, 100));
  ev.push_back(Event::EndElement(0, "author"));
  ev.push_back(Event::EndElement(0, "biblio"));
  // Corrupt tail: a replace that never closes, then the stream just ends
  // with the bracket dangling.
  ev.push_back(Event::StartReplace(100, 101));
  ev.push_back(Event::Characters(101, "Jo"));
  ev.push_back(Event::EndStream(0));

  session.value()->PushAll(ev);
  ASSERT_TRUE(session.value()->status().ok()) << session.value()->status();
  EXPECT_EQ(session.value()->guard()->violations(), 1u);
  auto text = session.value()->CurrentText();
  ASSERT_TRUE(text.ok()) << text.status();
  // Bounded damage, not rollback: the guard cannot restore content a
  // replace already consumed (that would require buffering the original),
  // but the half-received replacement never leaks into the answer and the
  // session stays live.
  EXPECT_EQ(text.value().find("Jo"), std::string::npos) << text.value();
  EXPECT_NE(text.value().find("author"), std::string::npos) << text.value();
}

// ---------------------------------------------------------------------------
// Tier-2 load shedding (set_shed_updates, the xflux_serve degradation hook).

TEST(ProtocolGuard, SheddingDropsRetroactiveUpdatesKeepsBaseContent) {
  Pipeline pipeline;
  auto* guard = pipeline.AddStage<ProtocolGuard>(pipeline.context(),
                                                 ProtocolGuard::Options{});
  guard->set_shed_updates(true);
  CollectingSink sink;
  pipeline.SetSink(&sink);
  pipeline.PushAll(CleanStream());

  // The base document — including its sM region — flowed; the retroactive
  // replace (and the replacement text) did not.
  EXPECT_TRUE(pipeline.status().ok()) << pipeline.status();
  EXPECT_EQ(guard->violations(), 0u);  // shedding is policy, not an offense
  EXPECT_EQ(guard->shed_regions(), 1u);
  EventVec out = sink.Take();
  auto mat = Materialize(out);
  ASSERT_TRUE(mat.ok()) << mat.status();
  std::string flat;
  for (const Event& e : mat.value()) flat += e.chars();
  EXPECT_NE(flat.find('x'), std::string::npos) << ToString(out);
  EXPECT_EQ(flat.find('y'), std::string::npos) << ToString(out);
}

TEST(ProtocolGuard, SheddingSwallowsChainedUpdatesAndControlsSilently) {
  Pipeline pipeline;
  auto* guard = pipeline.AddStage<ProtocolGuard>(pipeline.context(),
                                                 ProtocolGuard::Options{});
  CollectingSink sink;
  pipeline.SetSink(&sink);

  EventVec head;
  head.push_back(Event::StartStream(0));
  head.push_back(Event::StartElement(0, "a", 1));
  head.push_back(Event::StartMutable(0, 100));
  head.push_back(Event::Characters(100, "x"));
  head.push_back(Event::EndMutable(0, 100));
  head.push_back(Event::EndElement(0, "a"));
  pipeline.PushAll(head);

  guard->set_shed_updates(true);  // pressure arrived mid-stream
  EventVec tail;
  tail.push_back(Event::StartReplace(100, 101));
  tail.push_back(Event::Characters(101, "y"));
  tail.push_back(Event::EndReplace(100, 101));
  // A chain addressing the shed region, plus controls for it: all of it
  // must die silently — no violations, no poisoning.
  tail.push_back(Event::StartReplace(101, 102));
  tail.push_back(Event::Characters(102, "z"));
  tail.push_back(Event::EndReplace(101, 102));
  tail.push_back(Event::Hide(101));
  tail.push_back(Event::Freeze(101));
  tail.push_back(Event::EndStream(0));
  pipeline.PushAll(tail);

  EXPECT_TRUE(pipeline.status().ok()) << pipeline.status();
  EXPECT_EQ(guard->violations(), 0u);
  EXPECT_EQ(guard->shed_regions(), 2u);
  EXPECT_EQ(pipeline.context()->metrics()->shed_tier(2), 2u);
  EventVec out = sink.Take();
  ASSERT_TRUE(ValidateUpdateStream(out).ok()) << ToString(out);
  auto mat = Materialize(out);
  ASSERT_TRUE(mat.ok()) << mat.status();
  std::string flat;
  for (const Event& e : mat.value()) flat += e.chars();
  EXPECT_EQ(flat, "x");  // stale-but-exact: the shed tail never landed
}

TEST(ProtocolGuard, SheddingTogglesOffCleanly) {
  Pipeline pipeline;
  auto* guard = pipeline.AddStage<ProtocolGuard>(pipeline.context(),
                                                 ProtocolGuard::Options{});
  CollectingSink sink;
  pipeline.SetSink(&sink);

  EventVec head;
  head.push_back(Event::StartStream(0));
  head.push_back(Event::StartElement(0, "a", 1));
  head.push_back(Event::StartMutable(0, 100));
  head.push_back(Event::Characters(100, "x"));
  head.push_back(Event::EndMutable(0, 100));
  head.push_back(Event::EndElement(0, "a"));
  pipeline.PushAll(head);

  guard->set_shed_updates(true);
  pipeline.Push(Event::StartReplace(100, 101));
  pipeline.Push(Event::Characters(101, "y"));
  pipeline.Push(Event::EndReplace(100, 101));
  guard->set_shed_updates(false);  // pressure receded

  // A later update to the still-live original region flows again.
  pipeline.Push(Event::StartReplace(100, 102));
  pipeline.Push(Event::Characters(102, "z"));
  pipeline.Push(Event::EndReplace(100, 102));
  pipeline.Push(Event::EndStream(0));

  EXPECT_TRUE(pipeline.status().ok()) << pipeline.status();
  EXPECT_EQ(guard->shed_regions(), 1u);
  auto mat = Materialize(sink.Take());
  ASSERT_TRUE(mat.ok()) << mat.status();
  std::string flat;
  for (const Event& e : mat.value()) flat += e.chars();
  EXPECT_EQ(flat, "z");
}

}  // namespace
}  // namespace xflux
