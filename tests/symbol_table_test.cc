// SymbolTable: interning, round-trips, and the '@' attribute convention.

#include "util/symbol_table.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace xflux {
namespace {

TEST(SymbolTableTest, DefaultSymbolIsEmptySpelling) {
  Symbol s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.value(), 0u);
  EXPECT_EQ(TagSpelling(s), "");
  EXPECT_EQ(InternTag(""), s);
}

TEST(SymbolTableTest, InternRoundTripsSpelling) {
  Symbol book = InternTag("st_book");
  EXPECT_FALSE(book.empty());
  EXPECT_EQ(TagSpelling(book), "st_book");
}

TEST(SymbolTableTest, SameSpellingCollidesToOneSymbol) {
  // Interning the same spelling twice — including via a differently-backed
  // string — must yield the identical handle: tag equality IS spelling
  // equality.
  Symbol a = InternTag("st_collide");
  std::string spelled = std::string("st_") + "collide";
  Symbol b = InternTag(spelled);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.value(), b.value());
}

TEST(SymbolTableTest, DistinctSpellingsGetDistinctSymbols) {
  Symbol a = InternTag("st_alpha");
  Symbol b = InternTag("st_beta");
  EXPECT_NE(a, b);
  EXPECT_NE(TagSpelling(a), TagSpelling(b));
}

TEST(SymbolTableTest, AttributeSpellingsAreFlagged) {
  Symbol attr = InternTag("@st_id");
  Symbol elem = InternTag("st_id");
  EXPECT_TRUE(SymbolTable::Global().IsAttribute(attr));
  EXPECT_FALSE(SymbolTable::Global().IsAttribute(elem));
  EXPECT_FALSE(SymbolTable::Global().IsAttribute(Symbol()));
  EXPECT_NE(attr, elem);
}

TEST(SymbolTableTest, SpellingViewsStayValidAcrossGrowth) {
  // The table promises process-lifetime stability: views taken early must
  // survive arbitrarily many later interns.
  Symbol first = InternTag("st_stable_first");
  std::string_view view = TagSpelling(first);
  std::vector<Symbol> later;
  for (int i = 0; i < 1000; ++i) {
    later.push_back(InternTag("st_grow_" + std::to_string(i)));
  }
  EXPECT_EQ(view, "st_stable_first");
  EXPECT_EQ(TagSpelling(later[500]), "st_grow_500");
  EXPECT_GE(SymbolTable::Global().size(), 1000u);
}

TEST(SymbolTableTest, SymbolsOrderByHandleForMapKeys) {
  Symbol a = InternTag("st_order_a");
  Symbol b = InternTag("st_order_b");
  // Interned later => larger handle; only used as a strict weak order.
  EXPECT_TRUE(a < b);
  EXPECT_FALSE(b < a);
}

}  // namespace
}  // namespace xflux
