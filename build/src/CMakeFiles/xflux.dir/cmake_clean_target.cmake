file(REMOVE_RECURSE
  "libxflux.a"
)
