# Empty dependencies file for xflux.
# This may be replaced when dependencies are built.
