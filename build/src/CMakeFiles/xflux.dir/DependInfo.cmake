
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/event.cc" "src/CMakeFiles/xflux.dir/core/event.cc.o" "gcc" "src/CMakeFiles/xflux.dir/core/event.cc.o.d"
  "/root/repo/src/core/pipeline.cc" "src/CMakeFiles/xflux.dir/core/pipeline.cc.o" "gcc" "src/CMakeFiles/xflux.dir/core/pipeline.cc.o.d"
  "/root/repo/src/core/region_document.cc" "src/CMakeFiles/xflux.dir/core/region_document.cc.o" "gcc" "src/CMakeFiles/xflux.dir/core/region_document.cc.o.d"
  "/root/repo/src/core/result_display.cc" "src/CMakeFiles/xflux.dir/core/result_display.cc.o" "gcc" "src/CMakeFiles/xflux.dir/core/result_display.cc.o.d"
  "/root/repo/src/core/trace_sink.cc" "src/CMakeFiles/xflux.dir/core/trace_sink.cc.o" "gcc" "src/CMakeFiles/xflux.dir/core/trace_sink.cc.o.d"
  "/root/repo/src/core/transform_stage.cc" "src/CMakeFiles/xflux.dir/core/transform_stage.cc.o" "gcc" "src/CMakeFiles/xflux.dir/core/transform_stage.cc.o.d"
  "/root/repo/src/core/well_formed.cc" "src/CMakeFiles/xflux.dir/core/well_formed.cc.o" "gcc" "src/CMakeFiles/xflux.dir/core/well_formed.cc.o.d"
  "/root/repo/src/data/generators.cc" "src/CMakeFiles/xflux.dir/data/generators.cc.o" "gcc" "src/CMakeFiles/xflux.dir/data/generators.cc.o.d"
  "/root/repo/src/naive/naive_ops.cc" "src/CMakeFiles/xflux.dir/naive/naive_ops.cc.o" "gcc" "src/CMakeFiles/xflux.dir/naive/naive_ops.cc.o.d"
  "/root/repo/src/ops/aggregates.cc" "src/CMakeFiles/xflux.dir/ops/aggregates.cc.o" "gcc" "src/CMakeFiles/xflux.dir/ops/aggregates.cc.o.d"
  "/root/repo/src/ops/backward.cc" "src/CMakeFiles/xflux.dir/ops/backward.cc.o" "gcc" "src/CMakeFiles/xflux.dir/ops/backward.cc.o.d"
  "/root/repo/src/ops/child_step.cc" "src/CMakeFiles/xflux.dir/ops/child_step.cc.o" "gcc" "src/CMakeFiles/xflux.dir/ops/child_step.cc.o.d"
  "/root/repo/src/ops/clone.cc" "src/CMakeFiles/xflux.dir/ops/clone.cc.o" "gcc" "src/CMakeFiles/xflux.dir/ops/clone.cc.o.d"
  "/root/repo/src/ops/concat.cc" "src/CMakeFiles/xflux.dir/ops/concat.cc.o" "gcc" "src/CMakeFiles/xflux.dir/ops/concat.cc.o.d"
  "/root/repo/src/ops/descendant_step.cc" "src/CMakeFiles/xflux.dir/ops/descendant_step.cc.o" "gcc" "src/CMakeFiles/xflux.dir/ops/descendant_step.cc.o.d"
  "/root/repo/src/ops/predicate.cc" "src/CMakeFiles/xflux.dir/ops/predicate.cc.o" "gcc" "src/CMakeFiles/xflux.dir/ops/predicate.cc.o.d"
  "/root/repo/src/ops/sorter.cc" "src/CMakeFiles/xflux.dir/ops/sorter.cc.o" "gcc" "src/CMakeFiles/xflux.dir/ops/sorter.cc.o.d"
  "/root/repo/src/ops/textops.cc" "src/CMakeFiles/xflux.dir/ops/textops.cc.o" "gcc" "src/CMakeFiles/xflux.dir/ops/textops.cc.o.d"
  "/root/repo/src/ops/tuples.cc" "src/CMakeFiles/xflux.dir/ops/tuples.cc.o" "gcc" "src/CMakeFiles/xflux.dir/ops/tuples.cc.o.d"
  "/root/repo/src/spex/spex_engine.cc" "src/CMakeFiles/xflux.dir/spex/spex_engine.cc.o" "gcc" "src/CMakeFiles/xflux.dir/spex/spex_engine.cc.o.d"
  "/root/repo/src/util/json.cc" "src/CMakeFiles/xflux.dir/util/json.cc.o" "gcc" "src/CMakeFiles/xflux.dir/util/json.cc.o.d"
  "/root/repo/src/util/metrics.cc" "src/CMakeFiles/xflux.dir/util/metrics.cc.o" "gcc" "src/CMakeFiles/xflux.dir/util/metrics.cc.o.d"
  "/root/repo/src/util/order_key.cc" "src/CMakeFiles/xflux.dir/util/order_key.cc.o" "gcc" "src/CMakeFiles/xflux.dir/util/order_key.cc.o.d"
  "/root/repo/src/util/stage_stats.cc" "src/CMakeFiles/xflux.dir/util/stage_stats.cc.o" "gcc" "src/CMakeFiles/xflux.dir/util/stage_stats.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/xflux.dir/util/status.cc.o" "gcc" "src/CMakeFiles/xflux.dir/util/status.cc.o.d"
  "/root/repo/src/xml/escape.cc" "src/CMakeFiles/xflux.dir/xml/escape.cc.o" "gcc" "src/CMakeFiles/xflux.dir/xml/escape.cc.o.d"
  "/root/repo/src/xml/sax_parser.cc" "src/CMakeFiles/xflux.dir/xml/sax_parser.cc.o" "gcc" "src/CMakeFiles/xflux.dir/xml/sax_parser.cc.o.d"
  "/root/repo/src/xml/serializer.cc" "src/CMakeFiles/xflux.dir/xml/serializer.cc.o" "gcc" "src/CMakeFiles/xflux.dir/xml/serializer.cc.o.d"
  "/root/repo/src/xquery/ast.cc" "src/CMakeFiles/xflux.dir/xquery/ast.cc.o" "gcc" "src/CMakeFiles/xflux.dir/xquery/ast.cc.o.d"
  "/root/repo/src/xquery/compiler.cc" "src/CMakeFiles/xflux.dir/xquery/compiler.cc.o" "gcc" "src/CMakeFiles/xflux.dir/xquery/compiler.cc.o.d"
  "/root/repo/src/xquery/engine.cc" "src/CMakeFiles/xflux.dir/xquery/engine.cc.o" "gcc" "src/CMakeFiles/xflux.dir/xquery/engine.cc.o.d"
  "/root/repo/src/xquery/parser.cc" "src/CMakeFiles/xflux.dir/xquery/parser.cc.o" "gcc" "src/CMakeFiles/xflux.dir/xquery/parser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
