
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/event_test.cc" "tests/CMakeFiles/xflux_tests.dir/event_test.cc.o" "gcc" "tests/CMakeFiles/xflux_tests.dir/event_test.cc.o.d"
  "/root/repo/tests/generators_test.cc" "tests/CMakeFiles/xflux_tests.dir/generators_test.cc.o" "gcc" "tests/CMakeFiles/xflux_tests.dir/generators_test.cc.o.d"
  "/root/repo/tests/naive_test.cc" "tests/CMakeFiles/xflux_tests.dir/naive_test.cc.o" "gcc" "tests/CMakeFiles/xflux_tests.dir/naive_test.cc.o.d"
  "/root/repo/tests/ops_test.cc" "tests/CMakeFiles/xflux_tests.dir/ops_test.cc.o" "gcc" "tests/CMakeFiles/xflux_tests.dir/ops_test.cc.o.d"
  "/root/repo/tests/order_key_test.cc" "tests/CMakeFiles/xflux_tests.dir/order_key_test.cc.o" "gcc" "tests/CMakeFiles/xflux_tests.dir/order_key_test.cc.o.d"
  "/root/repo/tests/property_test.cc" "tests/CMakeFiles/xflux_tests.dir/property_test.cc.o" "gcc" "tests/CMakeFiles/xflux_tests.dir/property_test.cc.o.d"
  "/root/repo/tests/region_document_test.cc" "tests/CMakeFiles/xflux_tests.dir/region_document_test.cc.o" "gcc" "tests/CMakeFiles/xflux_tests.dir/region_document_test.cc.o.d"
  "/root/repo/tests/spex_test.cc" "tests/CMakeFiles/xflux_tests.dir/spex_test.cc.o" "gcc" "tests/CMakeFiles/xflux_tests.dir/spex_test.cc.o.d"
  "/root/repo/tests/stats_test.cc" "tests/CMakeFiles/xflux_tests.dir/stats_test.cc.o" "gcc" "tests/CMakeFiles/xflux_tests.dir/stats_test.cc.o.d"
  "/root/repo/tests/transform_stage_test.cc" "tests/CMakeFiles/xflux_tests.dir/transform_stage_test.cc.o" "gcc" "tests/CMakeFiles/xflux_tests.dir/transform_stage_test.cc.o.d"
  "/root/repo/tests/util_test.cc" "tests/CMakeFiles/xflux_tests.dir/util_test.cc.o" "gcc" "tests/CMakeFiles/xflux_tests.dir/util_test.cc.o.d"
  "/root/repo/tests/xml_test.cc" "tests/CMakeFiles/xflux_tests.dir/xml_test.cc.o" "gcc" "tests/CMakeFiles/xflux_tests.dir/xml_test.cc.o.d"
  "/root/repo/tests/xquery_test.cc" "tests/CMakeFiles/xflux_tests.dir/xquery_test.cc.o" "gcc" "tests/CMakeFiles/xflux_tests.dir/xquery_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/xflux.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
