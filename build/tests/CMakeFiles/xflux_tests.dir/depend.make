# Empty dependencies file for xflux_tests.
# This may be replaced when dependencies are built.
