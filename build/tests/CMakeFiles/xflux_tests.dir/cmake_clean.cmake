file(REMOVE_RECURSE
  "CMakeFiles/xflux_tests.dir/event_test.cc.o"
  "CMakeFiles/xflux_tests.dir/event_test.cc.o.d"
  "CMakeFiles/xflux_tests.dir/generators_test.cc.o"
  "CMakeFiles/xflux_tests.dir/generators_test.cc.o.d"
  "CMakeFiles/xflux_tests.dir/naive_test.cc.o"
  "CMakeFiles/xflux_tests.dir/naive_test.cc.o.d"
  "CMakeFiles/xflux_tests.dir/ops_test.cc.o"
  "CMakeFiles/xflux_tests.dir/ops_test.cc.o.d"
  "CMakeFiles/xflux_tests.dir/order_key_test.cc.o"
  "CMakeFiles/xflux_tests.dir/order_key_test.cc.o.d"
  "CMakeFiles/xflux_tests.dir/property_test.cc.o"
  "CMakeFiles/xflux_tests.dir/property_test.cc.o.d"
  "CMakeFiles/xflux_tests.dir/region_document_test.cc.o"
  "CMakeFiles/xflux_tests.dir/region_document_test.cc.o.d"
  "CMakeFiles/xflux_tests.dir/spex_test.cc.o"
  "CMakeFiles/xflux_tests.dir/spex_test.cc.o.d"
  "CMakeFiles/xflux_tests.dir/stats_test.cc.o"
  "CMakeFiles/xflux_tests.dir/stats_test.cc.o.d"
  "CMakeFiles/xflux_tests.dir/transform_stage_test.cc.o"
  "CMakeFiles/xflux_tests.dir/transform_stage_test.cc.o.d"
  "CMakeFiles/xflux_tests.dir/util_test.cc.o"
  "CMakeFiles/xflux_tests.dir/util_test.cc.o.d"
  "CMakeFiles/xflux_tests.dir/xml_test.cc.o"
  "CMakeFiles/xflux_tests.dir/xml_test.cc.o.d"
  "CMakeFiles/xflux_tests.dir/xquery_test.cc.o"
  "CMakeFiles/xflux_tests.dir/xquery_test.cc.o.d"
  "xflux_tests"
  "xflux_tests.pdb"
  "xflux_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xflux_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
