file(REMOVE_RECURSE
  "../bench/bench_table2_queries"
  "../bench/bench_table2_queries.pdb"
  "CMakeFiles/bench_table2_queries.dir/bench_table2_queries.cc.o"
  "CMakeFiles/bench_table2_queries.dir/bench_table2_queries.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
