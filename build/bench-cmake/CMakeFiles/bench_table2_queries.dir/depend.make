# Empty dependencies file for bench_table2_queries.
# This may be replaced when dependencies are built.
