file(REMOVE_RECURSE
  "../bench/bench_ablation_blocking"
  "../bench/bench_ablation_blocking.pdb"
  "CMakeFiles/bench_ablation_blocking.dir/bench_ablation_blocking.cc.o"
  "CMakeFiles/bench_ablation_blocking.dir/bench_ablation_blocking.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_blocking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
