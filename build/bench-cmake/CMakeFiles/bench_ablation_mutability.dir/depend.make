# Empty dependencies file for bench_ablation_mutability.
# This may be replaced when dependencies are built.
