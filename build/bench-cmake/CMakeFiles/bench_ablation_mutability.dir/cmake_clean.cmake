file(REMOVE_RECURSE
  "../bench/bench_ablation_mutability"
  "../bench/bench_ablation_mutability.pdb"
  "CMakeFiles/bench_ablation_mutability.dir/bench_ablation_mutability.cc.o"
  "CMakeFiles/bench_ablation_mutability.dir/bench_ablation_mutability.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_mutability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
