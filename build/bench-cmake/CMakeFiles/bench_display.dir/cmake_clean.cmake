file(REMOVE_RECURSE
  "../bench/bench_display"
  "../bench/bench_display.pdb"
  "CMakeFiles/bench_display.dir/bench_display.cc.o"
  "CMakeFiles/bench_display.dir/bench_display.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_display.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
