# Empty dependencies file for bench_display.
# This may be replaced when dependencies are built.
