# Empty compiler generated dependencies file for bench_ablation_updates.
# This may be replaced when dependencies are built.
