file(REMOVE_RECURSE
  "../bench/bench_ablation_updates"
  "../bench/bench_ablation_updates.pdb"
  "CMakeFiles/bench_ablation_updates.dir/bench_ablation_updates.cc.o"
  "CMakeFiles/bench_ablation_updates.dir/bench_ablation_updates.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_updates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
