# Empty dependencies file for bookstore.
# This may be replaced when dependencies are built.
