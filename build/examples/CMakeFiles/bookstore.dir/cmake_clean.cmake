file(REMOVE_RECURSE
  "CMakeFiles/bookstore.dir/bookstore.cpp.o"
  "CMakeFiles/bookstore.dir/bookstore.cpp.o.d"
  "bookstore"
  "bookstore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bookstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
