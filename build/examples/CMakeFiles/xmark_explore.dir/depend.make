# Empty dependencies file for xmark_explore.
# This may be replaced when dependencies are built.
