file(REMOVE_RECURSE
  "CMakeFiles/xmark_explore.dir/xmark_explore.cpp.o"
  "CMakeFiles/xmark_explore.dir/xmark_explore.cpp.o.d"
  "xmark_explore"
  "xmark_explore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xmark_explore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
