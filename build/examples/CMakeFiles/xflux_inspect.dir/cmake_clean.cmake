file(REMOVE_RECURSE
  "CMakeFiles/xflux_inspect.dir/xflux_inspect.cc.o"
  "CMakeFiles/xflux_inspect.dir/xflux_inspect.cc.o.d"
  "xflux_inspect"
  "xflux_inspect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xflux_inspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
