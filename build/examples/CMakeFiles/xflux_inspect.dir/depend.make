# Empty dependencies file for xflux_inspect.
# This may be replaced when dependencies are built.
