# Empty compiler generated dependencies file for stock_ticker.
# This may be replaced when dependencies are built.
