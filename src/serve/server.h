// The xflux_serve service: a long-running epoll loop multiplexing many
// client sessions over localhost sockets.
//
// Architecture (DESIGN.md §11): one thread, one epoll instance, N
// sessions.  Every query pipeline runs serially inside the loop — the
// engine's serial mode is deterministic and allocation-tight, and a
// single-writer loop means zero locks anywhere in the service.  The
// robustness mechanisms are explicit policy objects, each independently
// testable:
//
//   AdmissionController  — who gets a session at all (admission.h)
//   LoadShedder          — three-tier degradation under load (load_shedder.h)
//   ServeSession         — per-client state machine + crash containment
//                          (session.h)
//   deadlines            — idle-read and slow-consumer write timeouts,
//                          enforced here from one monotonic clock
//
// The server owns the sockets and the clock; the sessions own the query
// state; the policies own the decisions.  Nothing a client sends — or
// fails to send — can take down more than its own session: every exit
// path (parse error, guard escalation, resource bound, timeout, eviction,
// hangup) funnels through CloseSession, which emits whatever structured
// frame the cause calls for, merges the session's metrics into the
// service rollup, and releases the admission slot.
//
// In --shared mode, sessions carrying a `channel=NAME` open option join a
// shared QueryServer (work sharing across queries, ROADMAP item 1 / PR 6):
// the first member to feed becomes the channel's stream owner, every
// member's answer is maintained by the shared prefix DAG, and a member
// joining after streaming started is refused with a structured error
// (QueryServer registration freezes at streaming start).

#ifndef XFLUX_SERVE_SERVER_H_
#define XFLUX_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "serve/admission.h"
#include "serve/load_shedder.h"
#include "serve/session.h"
#include "util/metrics.h"
#include "util/status.h"
#include "xquery/session_builder.h"

namespace xflux::serve {

/// See file comment.
class ServeServer {
 public:
  struct Options {
    /// AF_UNIX listening path; when non-empty this wins over TCP.
    std::string unix_path;
    /// Loopback TCP port when unix_path is empty; 0 picks an ephemeral
    /// port (read it back from endpoint()).
    uint16_t tcp_port = 0;
    AdmissionController::Options admission;
    LoadShedder::Options shed;
    ServeSession::Config session;
    /// A session that sends nothing for this long is timed out.
    int64_t idle_timeout_ms = 30000;
    /// A consumer that accepts no outbound bytes for this long is dropped.
    int64_t write_timeout_ms = 5000;
    /// Enables channel=NAME open options backed by a shared QueryServer.
    bool shared = false;
    /// Per-session query defaults; the open request's own options
    /// (guard policy, pretty) are applied on top.
    QueryOptions base_query;
  };

  explicit ServeServer(const Options& options);
  ~ServeServer();

  ServeServer(const ServeServer&) = delete;
  ServeServer& operator=(const ServeServer&) = delete;

  /// Binds, listens, and readies the epoll loop.
  Status Start();

  /// Serves until Stop().  Run this on a dedicated thread (or as the
  /// process main loop); everything session-related happens here.
  void Run();

  /// Thread- and signal-safe shutdown request.
  void Stop();

  /// "unix:<path>" or "tcp:127.0.0.1:<port>" (valid after Start()).
  std::string endpoint() const;

  /// Service-level rollup: admission rejects, shed tiers, timeouts, plus
  /// every closed session's pipeline counters (merged at close).  Stable
  /// to read only while Run() is not executing (before Start, or after
  /// Run returned).
  const Metrics& metrics() const { return metrics_; }

  int shed_tier() const { return shedder_.tier(); }
  size_t active_sessions() const { return sessions_.size(); }
  uint64_t sessions_served() const { return next_session_id_ - 1; }

  /// Shared-mode execution group (defined in server.cc; public so the
  /// channel backend can reach it, opaque to everyone else).
  struct Channel;

 private:

  int64_t NowMs() const;
  Status StartUnix();
  Status StartTcp();

  void AcceptPending();
  void OnReadable(ServeSession* session);
  void TryWrite(ServeSession* session);
  void UpdateWriteInterest(ServeSession* session);
  void FlushDeltas();
  void ApplyShedding();
  void SweepDeadlines();
  /// Emits nothing itself — callers have already queued any final frame —
  /// then best-effort flushes, releases admission, merges metrics, and
  /// reaps the socket.
  void CloseSession(int fd);
  void ReapFinished();

  /// The BackendFactory handed to every session: builds a direct
  /// QuerySession backend, or a channel registration in --shared mode.
  StatusOr<std::unique_ptr<SessionBackend>> MakeBackend(
      ServeSession& session, const OpenRequest& request);

  Channel* FindChannel(const std::string& name);
  void MarkChannelDirty(const std::string& name);
  void FinishChannelMembers(Channel* channel, uint64_t finisher);
  void DropChannelMember(const std::string& name, uint64_t session_id);

  Options options_;
  Metrics metrics_;
  AdmissionController admission_;
  LoadShedder shedder_;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fds_[2] = {-1, -1};  // self-pipe for Stop()
  uint16_t bound_port_ = 0;
  std::atomic<bool> stop_{false};
  bool started_ = false;

  uint64_t next_session_id_ = 1;
  int64_t now_ms_ = 0;
  std::unordered_map<int, std::unique_ptr<ServeSession>> sessions_;  // by fd
  std::unordered_map<uint64_t, ServeSession*> session_by_id_;
  std::unordered_map<std::string, std::unique_ptr<Channel>> channels_;
  bool shed_updates_applied_ = false;  // tier-2 toggle state
};

}  // namespace xflux::serve

#endif  // XFLUX_SERVE_SERVER_H_
