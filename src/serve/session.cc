#include "serve/session.h"

#include <unistd.h>

#include <cstdlib>

namespace xflux::serve {

StatusOr<OpenRequest> ParseOpenRequest(std::string_view payload) {
  OpenRequest req;
  size_t line_start = 0;
  bool first = true;
  while (line_start <= payload.size()) {
    size_t eol = payload.find('\n', line_start);
    std::string_view line = payload.substr(
        line_start, eol == std::string_view::npos ? std::string_view::npos
                                                  : eol - line_start);
    if (first) {
      if (line.empty())
        return Status::InvalidArgument("open request has no query");
      req.query.assign(line);
      first = false;
    } else if (!line.empty()) {
      size_t eq = line.find('=');
      if (eq == std::string_view::npos)
        return Status::InvalidArgument("open option is not key=value: " +
                                       std::string(line));
      std::string_view key = line.substr(0, eq);
      std::string_view value = line.substr(eq + 1);
      if (key == "guard") {
        if (value == "off") {
          req.guard = false;
        } else {
          auto policy = ProtocolGuard::ParsePolicy(value);
          if (!policy.ok()) return policy.status();
          req.guard = true;
          req.guard_policy = policy.value();
        }
      } else if (key == "pretty") {
        req.pretty = value == "1";
      } else if (key == "priority") {
        req.priority = std::atoi(std::string(value).c_str());
      } else if (key == "channel") {
        if (value.empty())
          return Status::InvalidArgument("empty channel name");
        req.channel.assign(value);
      } else {
        return Status::InvalidArgument("unknown open option: " +
                                       std::string(key));
      }
    }
    if (eol == std::string_view::npos) break;
    line_start = eol + 1;
  }
  if (first) return Status::InvalidArgument("open request has no query");
  return req;
}

ServeSession::ServeSession(uint64_t id, int fd, const Config& config,
                           BackendFactory factory)
    : id_(id),
      fd_(fd),
      config_(config),
      factory_(std::move(factory)),
      decoder_(FrameDecoder::Options{config.max_frame_bytes,
                                     /*client_types_only=*/true}) {}

ServeSession::~ServeSession() {
  if (fd_ >= 0) ::close(fd_);
}

Status ServeSession::HandleFrame(Frame& frame) {
  switch (state_) {
    case State::kAwaitOpen:
      if (frame.type != FrameType::kOpen)
        return Status::ProtocolViolation("first frame must be OPEN");
      return HandleOpen(frame);
    case State::kStreaming:
      switch (frame.type) {
        case FrameType::kOpen:
          return Status::ProtocolViolation("duplicate OPEN");
        case FrameType::kFeedXml:
        case FrameType::kFeedEvents:
          return HandleFeed(frame);
        case FrameType::kSubscribe:
          subscribed_ = true;
          dirty_ = true;  // ship the current answer as the first delta
          return Status::OK();
        case FrameType::kFinish:
          HandleFinish();
          return Status::OK();
        case FrameType::kClose:
          state_ = State::kClosed;
          return Status::OK();
        default:
          return Status::ProtocolViolation("unexpected frame type");
      }
    case State::kFinished:
      // The client may have pipelined feeds before seeing our final frame;
      // swallow them so the ending flushes cleanly.
      if (frame.type == FrameType::kClose) state_ = State::kClosed;
      return Status::OK();
    case State::kClosed:
      return Status::OK();
  }
  return Status::Internal("unreachable session state");
}

Status ServeSession::HandleOpen(const Frame& frame) {
  auto request = ParseOpenRequest(frame.payload);
  if (!request.ok()) {
    // A malformed or uncompilable open is the client's failure, reported
    // in-band; the framing itself is still intact.
    FailSession(request.status());
    return Status::OK();
  }
  priority_ = request.value().priority;
  channel_ = request.value().channel;
  auto backend = factory_(*this, request.value());
  if (!backend.ok()) {
    FailSession(backend.status());
    return Status::OK();
  }
  backend_ = std::move(backend).value();
  state_ = State::kStreaming;
  AppendFrame(&outbound_, FrameType::kOpened, std::to_string(id_));
  return Status::OK();
}

Status ServeSession::HandleFeed(Frame& frame) {
  FeedMode mode = frame.type == FrameType::kFeedXml ? FeedMode::kXml
                                                    : FeedMode::kEvents;
  if (feed_mode_ == FeedMode::kNone) {
    feed_mode_ = mode;
  } else if (feed_mode_ != mode) {
    // Mixing encodings would interleave two id spaces into one stream.
    FailSession(Status::ProtocolViolation(
        "session already committed to the other feed encoding"));
    return Status::OK();
  }
  Status fed;
  if (mode == FeedMode::kXml) {
    // A complete FEED payload is already its own buffer; adoption-sized
    // ones move to the backend as adopted chunks so the parser scans them
    // in place instead of copying them into its window.  Small frames
    // keep the copy path (adoption bookkeeping costs more than the copy).
    constexpr size_t kAdoptFeedBytes = 8 * 1024;
    if (frame.payload.size() >= kAdoptFeedBytes) {
      fed = backend_->FeedXml(
          StableChunk::AdoptString(std::move(frame.payload)));
    } else {
      fed = backend_->FeedXml(std::string_view(frame.payload));
    }
  } else {
    EventVec events;
    fed = DecodeEvents(frame.payload, &events);
    if (fed.ok()) fed = backend_->FeedEvents(events);
  }
  if (fed.ok()) fed = backend_->query_status();
  if (!fed.ok()) {
    // The containment boundary: a poisoned parser/pipeline ends THIS
    // session with a structured error; the server never sees it.
    FailSession(fed);
    return Status::OK();
  }
  MarkDirty();
  return Status::OK();
}

void ServeSession::HandleFinish() {
  Status finished = backend_->Finish();
  if (finished.ok()) finished = backend_->query_status();
  if (!finished.ok()) {
    FailSession(finished);
    return;
  }
  // Final answer delivery bypasses the subscribe flag and the backlog
  // bound: every clean session ends with its full answer on the wire
  // (one delta — bounded — then the final status).
  subscribed_ = true;
  dirty_ = true;
  auto delta = backend_->display()->TextDeltaSince(client_stable_len_,
                                                   client_restarts_);
  std::string payload;
  AppendU32(&payload, static_cast<uint32_t>(delta.keep));
  payload.append(delta.append);
  AppendFrame(&outbound_, FrameType::kDelta, payload);
  client_stable_len_ = delta.stable_len;
  client_restarts_ = delta.restarts;
  ++deltas_sent_;
  dirty_ = false;
  AppendFinishedFrame(Status::OK());
  state_ = State::kFinished;
}

bool ServeSession::FlushDelta(bool defer) {
  if (!subscribed_ || !dirty_ || backend_ == nullptr) return false;
  if (state_ != State::kStreaming) return false;
  if (defer) {
    // Tier-1 shedding: the answer keeps evolving server-side; the dirty
    // flag survives, so one catch-up delta covers the whole deferral.
    // Counted once per dirty period, not once per server tick.
    if (!defer_counted_) {
      ++deltas_deferred_;
      defer_counted_ = true;
    }
    return false;
  }
  if (outbound_.size() >= config_.max_outbound_bytes) return false;
  auto delta = backend_->display()->TextDeltaSince(client_stable_len_,
                                                   client_restarts_);
  dirty_ = false;
  size_t new_text_len = delta.keep + delta.append.size();
  bool no_change = delta.append.empty() && delta.keep == client_text_len_;
  if (no_change) return false;
  std::string payload;
  AppendU32(&payload, static_cast<uint32_t>(delta.keep));
  payload.append(delta.append);
  AppendFrame(&outbound_, FrameType::kDelta, payload);
  client_stable_len_ = delta.stable_len;
  client_restarts_ = delta.restarts;
  client_text_len_ = new_text_len;
  ++deltas_sent_;
  return true;
}

void ServeSession::AppendErrorFrame(const Status& error) {
  std::string payload;
  AppendU32(&payload, static_cast<uint32_t>(error.code()));
  payload.append(error.message());
  AppendFrame(&outbound_, FrameType::kError, payload);
}

void ServeSession::AppendShedNotice(int tier, std::string_view note) {
  std::string payload;
  AppendU32(&payload, static_cast<uint32_t>(tier));
  payload.append(note);
  AppendFrame(&outbound_, FrameType::kShedNotice, payload);
}

void ServeSession::AppendFinishedFrame(const Status& status) {
  std::string payload;
  AppendU32(&payload, static_cast<uint32_t>(status.code()));
  payload.append(status.message());
  AppendFrame(&outbound_, FrameType::kFinished, payload);
}

void ServeSession::FailSession(const Status& error) {
  AppendErrorFrame(error);
  state_ = State::kFinished;
}

}  // namespace xflux::serve
