#include "serve/frame.h"

#include <cstring>

namespace xflux::serve {

namespace {

constexpr size_t kHeaderBytes = 5;  // u32 length + u8 type

bool IsServerFrameType(uint8_t type) {
  return type >= static_cast<uint8_t>(FrameType::kOpened) &&
         type <= static_cast<uint8_t>(FrameType::kShedNotice);
}

void AppendU16(std::string* out, uint16_t v) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
}

bool ReadU16(std::string_view buf, size_t pos, uint16_t* v) {
  if (pos + 2 > buf.size()) return false;
  const auto* p = reinterpret_cast<const unsigned char*>(buf.data() + pos);
  *v = static_cast<uint16_t>(p[0] | (p[1] << 8));
  return true;
}

}  // namespace

bool IsClientFrameType(uint8_t type) {
  return type >= static_cast<uint8_t>(FrameType::kOpen) &&
         type <= static_cast<uint8_t>(FrameType::kClose);
}

void AppendU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

bool ReadU32(std::string_view buf, size_t pos, uint32_t* v) {
  if (pos + 4 > buf.size()) return false;
  const auto* p = reinterpret_cast<const unsigned char*>(buf.data() + pos);
  *v = static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
       (static_cast<uint32_t>(p[2]) << 16) | (static_cast<uint32_t>(p[3]) << 24);
  return true;
}

void AppendU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

bool ReadU64(std::string_view buf, size_t pos, uint64_t* v) {
  if (pos + 8 > buf.size()) return false;
  const auto* p = reinterpret_cast<const unsigned char*>(buf.data() + pos);
  uint64_t r = 0;
  for (int i = 7; i >= 0; --i) r = (r << 8) | p[i];
  *v = r;
  return true;
}

void AppendFrame(std::string* out, FrameType type, std::string_view payload) {
  AppendU32(out, static_cast<uint32_t>(payload.size()));
  out->push_back(static_cast<char>(type));
  out->append(payload);
}

std::string EncodeFrame(FrameType type, std::string_view payload) {
  std::string out;
  out.reserve(kHeaderBytes + payload.size());
  AppendFrame(&out, type, payload);
  return out;
}

void FrameDecoder::Feed(std::string_view chunk) {
  if (!error_.ok()) return;
  // Compact lazily: only when the consumed prefix dominates the buffer, so
  // steady-state streaming pays one memmove per buffer's worth, not per
  // frame.
  if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(chunk);
}

bool FrameDecoder::Next(Frame* out) {
  if (!error_.ok()) return false;
  std::string_view buf(buffer_);
  uint32_t len = 0;
  if (!ReadU32(buf, consumed_, &len)) return false;
  // Bound checked from the prefix alone, before the payload is buffered:
  // a hostile length must not translate into a hostile allocation.
  if (len > options_.max_frame_bytes) {
    error_ = Status::ResourceExhausted(
        "frame payload of " + std::to_string(len) + " bytes exceeds limit of " +
        std::to_string(options_.max_frame_bytes));
    return false;
  }
  if (consumed_ + kHeaderBytes + len > buf.size()) return false;
  uint8_t type = static_cast<uint8_t>(buf[consumed_ + 4]);
  bool known = options_.client_types_only ? IsClientFrameType(type)
                                          : IsClientFrameType(type) ||
                                                IsServerFrameType(type);
  if (!known) {
    error_ = Status::ProtocolViolation("unknown frame type " +
                                       std::to_string(static_cast<int>(type)));
    return false;
  }
  out->type = static_cast<FrameType>(type);
  out->payload.assign(buf.substr(consumed_ + kHeaderBytes, len));
  consumed_ += kHeaderBytes + len;
  if (consumed_ == buffer_.size()) {
    buffer_.clear();
    consumed_ = 0;
  }
  return true;
}

void AppendEvent(std::string* out, const Event& e) {
  out->push_back(static_cast<char>(e.kind));
  AppendU32(out, e.id);
  AppendU32(out, e.uid);
  if (e.kind == EventKind::kStartElement || e.kind == EventKind::kEndElement) {
    AppendU64(out, e.oid);
    std::string_view tag = e.tag_name();
    AppendU16(out, static_cast<uint16_t>(tag.size()));
    out->append(tag);
  } else if (e.kind == EventKind::kCharacters) {
    std::string_view text = e.chars();
    AppendU32(out, static_cast<uint32_t>(text.size()));
    out->append(text);
  }
}

void AppendEvents(std::string* out, const EventVec& events) {
  for (const Event& e : events) AppendEvent(out, e);
}

std::string EncodeEvents(const EventVec& events) {
  std::string out;
  AppendEvents(&out, events);
  return out;
}

Status DecodeEvents(std::string_view payload, EventVec* out) {
  size_t pos = 0;
  while (pos < payload.size()) {
    if (pos + 9 > payload.size())
      return Status::ProtocolViolation("truncated event entry");
    uint8_t kind = static_cast<uint8_t>(payload[pos]);
    if (kind > static_cast<uint8_t>(EventKind::kShow))
      return Status::ProtocolViolation("event kind " + std::to_string(kind) +
                                       " out of range");
    uint32_t id = 0;
    uint32_t uid = 0;
    ReadU32(payload, pos + 1, &id);
    ReadU32(payload, pos + 5, &uid);
    pos += 9;
    Event e;
    e.kind = static_cast<EventKind>(kind);
    e.id = id;
    e.uid = uid;
    if (e.kind == EventKind::kStartElement ||
        e.kind == EventKind::kEndElement) {
      uint64_t oid = 0;
      uint16_t tag_len = 0;
      if (!ReadU64(payload, pos, &oid) || !ReadU16(payload, pos + 8, &tag_len))
        return Status::ProtocolViolation("truncated element entry");
      pos += 10;
      if (pos + tag_len > payload.size())
        return Status::ProtocolViolation("truncated element tag");
      e.oid = oid;
      e.tag = InternTag(payload.substr(pos, tag_len));
      pos += tag_len;
    } else if (e.kind == EventKind::kCharacters) {
      uint32_t text_len = 0;
      if (!ReadU32(payload, pos, &text_len))
        return Status::ProtocolViolation("truncated characters entry");
      pos += 4;
      if (pos + text_len > payload.size())
        return Status::ProtocolViolation("truncated character data");
      e.text = TextRef::Copy(payload.substr(pos, text_len));
      pos += text_len;
    }
    out->push_back(std::move(e));
  }
  return Status::OK();
}

}  // namespace xflux::serve
