// Graceful load shedding for xflux_serve (explicit policy object).
//
// When the server cannot keep up, it degrades in three deliberate tiers
// rather than letting queues grow until the OS kills it.  The shedder is
// pure policy: the server feeds it load gauges each loop iteration, it
// answers with the tier currently in force, and the server applies the
// tier's mechanism:
//
//   tier 1 — defer delta pushes.  Subscribed clients stop receiving
//            per-feed answer deltas; the answer is still maintained and
//            deltas resume (with full catch-up, the delta protocol is
//            self-healing) once pressure drops.  Costs latency only.
//   tier 2 — shed retroactive updates.  Every admitted session's
//            ProtocolGuard starts discarding update regions that address
//            already-streamed content (ProtocolGuard::set_shed_updates):
//            answers remain exact for the content consumed but go *stale*
//            with respect to the update tail.  Costs freshness.
//   tier 3 — evict.  The lowest-priority streaming session is closed with
//            a structured kShedNotice so its client knows this was policy,
//            not a crash.  Costs whole sessions — last resort.
//
// Pressure is the max of the session-slot ratio and the queued-output
// ratio, so either dimension of overload (too many clients, or few
// clients consuming too slowly) triggers the same ladder.  Tier
// transitions use a small hysteresis margin so the server does not
// flap-toggle guards at a threshold boundary.

#ifndef XFLUX_SERVE_LOAD_SHEDDER_H_
#define XFLUX_SERVE_LOAD_SHEDDER_H_

#include <cstddef>

namespace xflux::serve {

/// See file comment.
class LoadShedder {
 public:
  struct Options {
    double tier1_pressure = 0.70;  ///< defer delta pushes
    double tier2_pressure = 0.85;  ///< shed retroactive updates
    double tier3_pressure = 0.95;  ///< evict lowest-priority sessions
    /// Queued-output budget across all sessions; the second pressure
    /// dimension (slow consumers).
    size_t max_total_queued_bytes = 8u << 20;
    /// A tier disengages only this far below its threshold (hysteresis).
    double release_margin = 0.05;
  };

  struct Gauges {
    size_t active_sessions = 0;
    size_t max_sessions = 1;
    size_t total_queued_bytes = 0;
  };

  explicit LoadShedder(const Options& options) : options_(options) {}
  LoadShedder() : LoadShedder(Options()) {}

  /// The scalar load measure: max of the two utilization ratios.
  double Pressure(const Gauges& g) const {
    double sessions = g.max_sessions == 0
                          ? 1.0
                          : static_cast<double>(g.active_sessions) /
                                static_cast<double>(g.max_sessions);
    double queued = options_.max_total_queued_bytes == 0
                        ? 0.0
                        : static_cast<double>(g.total_queued_bytes) /
                              static_cast<double>(
                                  options_.max_total_queued_bytes);
    return sessions > queued ? sessions : queued;
  }

  /// Updates and returns the tier in force (0 = none, 1..3 as above).
  int Update(const Gauges& g) {
    double p = Pressure(g);
    int target = p >= options_.tier3_pressure   ? 3
                 : p >= options_.tier2_pressure ? 2
                 : p >= options_.tier1_pressure ? 1
                                                : 0;
    if (target > tier_) {
      tier_ = target;
    } else if (target < tier_) {
      // Drop one tier at a time, and only once clear of the threshold by
      // the hysteresis margin.
      double threshold = tier_ == 3   ? options_.tier3_pressure
                         : tier_ == 2 ? options_.tier2_pressure
                                      : options_.tier1_pressure;
      if (p < threshold - options_.release_margin) --tier_;
    }
    return tier_;
  }

  int tier() const { return tier_; }
  const Options& options() const { return options_; }

 private:
  Options options_;
  int tier_ = 0;
};

}  // namespace xflux::serve

#endif  // XFLUX_SERVE_LOAD_SHEDDER_H_
