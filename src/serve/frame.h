// Wire framing for the xflux_serve session protocol.
//
// Everything a client and the server exchange travels in frames:
//
//   u32 LE payload length | u8 frame type | payload bytes
//
// The framing is deliberately dumb — no versioning, no flags — because the
// service only speaks to the bundled client (tests, traffic generator,
// xflux_inspect).  What matters for robustness is that the *decoder* is
// hostile-input safe: it consumes arbitrary chunk boundaries, enforces a
// hard payload-size bound before buffering (a 4 GiB length prefix must not
// allocate 4 GiB), and rejects unknown frame types, so a garbage-spewing
// or malicious client costs the server O(max_frame_bytes) memory at worst
// and is answered with a structured error, never a crash.
//
// Two feed encodings exist because the XML layer has no update-stream
// markup: FEED_XML carries document text for the server-side SAX parser,
// FEED_EVENTS carries the binary event codec below (the only way to ship
// sM/sR/freeze traffic over the wire).  A session commits to one encoding
// at its first feed.

#ifndef XFLUX_SERVE_FRAME_H_
#define XFLUX_SERVE_FRAME_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "core/event.h"
#include "util/status.h"

namespace xflux::serve {

/// Frame type tags.  Client-to-server types live below 16, server-to-client
/// types at 16 and up, so a direction mix-up is caught as an unknown type.
enum class FrameType : uint8_t {
  // -- client -> server --
  kOpen = 1,        ///< query text + options; must be the first frame
  kFeedXml = 2,     ///< a chunk of XML document text
  kFeedEvents = 3,  ///< a batch of binary-coded update-stream events
  kSubscribe = 4,   ///< request delta pushes as the answer evolves
  kFinish = 5,      ///< end of input: finalize and report the answer
  kClose = 6,       ///< drop the session without finishing
  // -- server -> client --
  kOpened = 16,      ///< session admitted; payload = session id (decimal)
  kDelta = 17,       ///< answer delta: u32 keep length + append bytes
  kError = 18,       ///< structured error: u32 status code + message
  kRejected = 19,    ///< admission refused: u32 retry-after ms
  kFinished = 20,    ///< final status: u32 status code + message
  kShedNotice = 21,  ///< load shed applied: u32 tier + note
};

/// True for the types a client is allowed to send.
bool IsClientFrameType(uint8_t type);

/// One decoded frame.
struct Frame {
  FrameType type = FrameType::kClose;
  std::string payload;
};

// -- little-endian scalar helpers (shared by the codec and the session
//    payloads; exposed because tests and the client build payloads too) --
void AppendU32(std::string* out, uint32_t v);
/// Reads a u32 at `pos`; false when fewer than 4 bytes remain.
bool ReadU32(std::string_view buf, size_t pos, uint32_t* v);
void AppendU64(std::string* out, uint64_t v);
bool ReadU64(std::string_view buf, size_t pos, uint64_t* v);

/// Serializes one frame onto `out`.
void AppendFrame(std::string* out, FrameType type, std::string_view payload);
std::string EncodeFrame(FrameType type, std::string_view payload);

/// Incremental frame decoder.  Feed arbitrary byte chunks; Next() yields
/// complete frames until it returns false.  Errors (oversized payload,
/// unknown type) latch: the connection is unrecoverable past the first
/// malformed frame because framing has lost sync.
class FrameDecoder {
 public:
  struct Options {
    /// Hard bound on a single payload, enforced from the length prefix
    /// alone.  Servers keep this small; clients need room for deltas.
    size_t max_frame_bytes = 1 << 20;
    /// When true (server side), only client->server types are accepted.
    bool client_types_only = false;
  };

  explicit FrameDecoder(const Options& options) : options_(options) {}
  FrameDecoder() : FrameDecoder(Options()) {}

  /// Buffers the next chunk of raw bytes.  No-op after an error.
  void Feed(std::string_view chunk);

  /// Extracts the next complete frame.  Returns true and fills `out` when
  /// one is available; false when more input is needed OR the decoder has
  /// latched an error (check error() to tell the cases apart).
  bool Next(Frame* out);

  const Status& error() const { return error_; }

  /// Bytes currently buffered (the slow-consumer / hostile-client gauge).
  size_t buffered_bytes() const { return buffer_.size() - consumed_; }

 private:
  Options options_;
  std::string buffer_;
  size_t consumed_ = 0;  // prefix of buffer_ already handed out
  Status error_;
};

// -- binary event codec (the kFeedEvents payload) --
//
// Per event: u8 kind | u32 id | u32 uid, then for sE/eE a u64 oid plus a
// u16-length-prefixed tag spelling (re-interned on decode; symbols are
// process-local and cannot cross the wire), and for cD a u32-length-
// prefixed text.  A batch is just events concatenated.

void AppendEvent(std::string* out, const Event& e);
void AppendEvents(std::string* out, const EventVec& events);
std::string EncodeEvents(const EventVec& events);

/// Decodes a whole kFeedEvents payload.  Rejects truncated entries and
/// out-of-range kinds with kProtocolViolation — the payload is untrusted.
Status DecodeEvents(std::string_view payload, EventVec* out);

}  // namespace xflux::serve

#endif  // XFLUX_SERVE_FRAME_H_
