// One client session of the xflux_serve service.
//
// A session is the unit of crash containment: everything fallible about
// one client — its frames, its document bytes, its update events, its
// query pipeline — is wrapped here, and every failure mode ends the same
// way: a structured frame (kError / kFinished / kShedNotice) on this
// session's socket and a state transition to kFinished or kClosed.  No
// failure path reaches the server loop as anything but "this session is
// done"; a poisoned pipeline poisons exactly one session.
//
// The session is also where the delta push path lives.  Outbound data is
// bounded *by construction*: at most one answer delta is materialized at a
// time (a dirty flag coalesces any number of feeds into the next delta),
// and a delta is only materialized when the previous outbound bytes have
// drained below the configured bound.  A slow consumer therefore costs
// O(max_outbound_bytes + one delta), never an unbounded queue — the
// server's write-timeout deadline handles the rest.
//
// Execution is pluggable through SessionBackend so the same state machine
// serves both a private QuerySession (direct mode) and a QueryHandle on a
// shared QueryServer channel (--shared mode, wired in server.cc).

#ifndef XFLUX_SERVE_SESSION_H_
#define XFLUX_SERVE_SESSION_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "core/protocol_guard.h"
#include "core/result_display.h"
#include "serve/frame.h"
#include "util/metrics.h"
#include "util/status.h"
#include "util/text_ref.h"

namespace xflux::serve {

/// What a session needs from its query execution, direct or shared.
class SessionBackend {
 public:
  virtual ~SessionBackend() = default;
  virtual Status FeedXml(std::string_view chunk) = 0;
  /// Zero-copy feed: a complete FEED payload handed over as an adopted
  /// chunk, scanned in place by the backend's parser.  Must enforce the
  /// same admission limits (max_token_bytes et al.) as the copying
  /// overload.
  virtual Status FeedXml(StableChunk chunk) = 0;
  virtual Status FeedEvents(const EventVec& events) = 0;
  /// End of input: closes truncated regions, settles the answer.
  virtual Status Finish() = 0;
  virtual ResultDisplay* display() = 0;
  /// The query's combined health (pipeline error or display latch).
  virtual Status query_status() const = 0;
  /// The protocol guard, or nullptr when the session opened unguarded.
  virtual ProtocolGuard* guard() = 0;
  /// The query's metrics (merged into the server rollup at close).
  virtual Metrics* metrics() = 0;
};

/// The parsed kOpen payload: first line is the query text, every further
/// line is `key=value`.  Keys: guard (failfast|drop|resync|off, default
/// drop), pretty (0|1), priority (int, higher survives longer), channel
/// (shared-mode execution group).
struct OpenRequest {
  std::string query;
  bool guard = true;
  ProtocolGuard::Policy guard_policy = ProtocolGuard::Policy::kDropRegion;
  bool pretty = false;
  int priority = 1;
  std::string channel;
};

StatusOr<OpenRequest> ParseOpenRequest(std::string_view payload);

/// See file comment.
class ServeSession {
 public:
  enum class State {
    kAwaitOpen,  ///< connected, kOpen not yet seen
    kStreaming,  ///< open; accepting feeds
    kFinished,   ///< logically done; outbound still flushing
    kClosed,     ///< dead; server reaps the socket
  };
  enum class FeedMode { kNone, kXml, kEvents };

  struct Config {
    size_t max_frame_bytes = 1 << 20;
    /// Outbound backlog above which no further delta is materialized.
    size_t max_outbound_bytes = 1 << 20;
  };

  /// Turns a parsed kOpen into a query execution; installed by the server
  /// (this is where direct vs channel mode is decided).
  using BackendFactory = std::function<StatusOr<std::unique_ptr<SessionBackend>>(
      ServeSession& session, const OpenRequest& request)>;

  ServeSession(uint64_t id, int fd, const Config& config,
               BackendFactory factory);
  ~ServeSession();

  ServeSession(const ServeSession&) = delete;
  ServeSession& operator=(const ServeSession&) = delete;

  // -- socket plumbing (driven by the server's epoll loop) --
  int fd() const { return fd_; }
  uint64_t id() const { return id_; }
  FrameDecoder& decoder() { return decoder_; }
  /// Bytes waiting to be written to the socket.
  std::string& outbound() { return outbound_; }
  size_t outbound_bytes() const { return outbound_.size(); }

  // -- state --
  State state() const { return state_; }
  FeedMode feed_mode() const { return feed_mode_; }
  int priority() const { return priority_; }
  bool subscribed() const { return subscribed_; }
  const std::string& channel() const { return channel_; }
  SessionBackend* backend() { return backend_.get(); }

  /// Consumes one decoded frame.  A non-OK return is a *framing-level*
  /// violation (wrong state, wrong direction): the server answers with a
  /// final kError and closes.  Query-level failures are handled in-band —
  /// the session emits its own error frame and moves to kFinished — and
  /// return OK here.  The frame is mutable so a bulk FEED payload can move
  /// to the backend as an adopted chunk instead of being copied; only
  /// frame.type is meaningful afterwards.
  Status HandleFrame(Frame& frame);

  // -- delta push path --
  bool dirty() const { return dirty_; }
  void MarkDirty() {
    dirty_ = true;
    defer_counted_ = false;
  }
  /// Materializes one coalesced answer delta into the outbound buffer, if
  /// the session is subscribed, dirty, and the backlog allows.  Returns
  /// true when a delta was emitted.  With `defer` (shed tier >= 1) the
  /// delta stays pending and is counted as deferred instead.
  bool FlushDelta(bool defer);

  // -- structured endings (also used by the server for timeouts/evictions) --
  void AppendErrorFrame(const Status& error);
  void AppendShedNotice(int tier, std::string_view note);
  void AppendFinishedFrame(const Status& status);
  /// Emits kError and moves to kFinished: the in-band failure path.
  void FailSession(const Status& error);
  void set_state(State s) { state_ = s; }

  // -- deadlines (bookkept by the server, in its monotonic clock) --
  int64_t last_read_ms = 0;
  int64_t write_pending_since_ms = -1;

  // -- per-session counters for the service rollup --
  uint64_t deltas_sent() const { return deltas_sent_; }
  uint64_t deltas_deferred() const { return deltas_deferred_; }

 private:
  Status HandleOpen(const Frame& frame);
  Status HandleFeed(Frame& frame);
  void HandleFinish();

  uint64_t id_;
  int fd_;
  Config config_;
  BackendFactory factory_;
  FrameDecoder decoder_;
  std::string outbound_;
  State state_ = State::kAwaitOpen;
  FeedMode feed_mode_ = FeedMode::kNone;
  bool subscribed_ = false;
  bool dirty_ = false;
  bool defer_counted_ = false;  // one deferral count per dirty period
  int priority_ = 1;
  std::string channel_;
  std::unique_ptr<SessionBackend> backend_;
  // Delta protocol state: what the client last acknowledged implicitly —
  // the stable length and restart count of the delta last shipped.
  size_t client_stable_len_ = 0;
  uint64_t client_restarts_ = 0;
  size_t client_text_len_ = 0;  // the client's reconstructed text length
  uint64_t deltas_sent_ = 0;
  uint64_t deltas_deferred_ = 0;
};

}  // namespace xflux::serve

#endif  // XFLUX_SERVE_SESSION_H_
