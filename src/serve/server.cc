#include "serve/server.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "xml/sax_parser.h"
#include "xquery/engine.h"
#include "xquery/query_server.h"

namespace xflux::serve {

namespace {

/// Direct mode: the session owns a private QuerySession plus a persistent
/// incremental SAX parser (PushDocument's wiring, but chunk-at-a-time
/// across FEED frames).
class DirectBackend : public SessionBackend {
 public:
  DirectBackend(std::unique_ptr<QuerySession> session, size_t max_token_bytes)
      : session_(std::move(session)),
        source_(session_->pipeline()),
        max_token_bytes_(max_token_bytes) {}

  Status FeedXml(std::string_view chunk) override {
    EnsureParser();
    return parser_->Feed(chunk);
  }

  Status FeedXml(StableChunk chunk) override {
    // Same parser, same resource envelope: the adopted path differs only
    // in scanning the frame payload in place.
    EnsureParser();
    size_t size = chunk.capacity();
    return parser_->Feed(std::move(chunk), size);
  }

  Status FeedEvents(const EventVec& events) override {
    session_->PushAll(events);
    return Status::OK();
  }

  Status Finish() override {
    Status parse;
    if (parser_ != nullptr) parse = parser_->Finish();
    // Event-mode truncation (a dropped client never sends its closing
    // brackets) is the guard's end-of-input case; Pipeline::Finish alone
    // does not signal it.
    if (session_->guard() != nullptr) session_->guard()->Finish();
    Status run = session_->Finish();
    return parse.ok() ? run : parse;
  }

  ResultDisplay* display() override { return session_->display(); }
  Status query_status() const override { return session_->status(); }
  ProtocolGuard* guard() override { return session_->guard(); }
  Metrics* metrics() override { return session_->metrics(); }

 private:
  void EnsureParser() {
    if (parser_ != nullptr) return;
    SaxParser::Options o;
    o.stream_id = session_->source_id();
    o.errors = session_->pipeline()->context()->errors();
    // The session's resource envelope bounds the tokenizer too: a
    // never-closing tag fails with kResourceExhausted instead of
    // buffering without limit.
    o.max_token_bytes = max_token_bytes_;
    parser_ = std::make_unique<SaxParser>(o, &source_);
  }

  std::unique_ptr<QuerySession> session_;
  PipelineSource source_;
  std::unique_ptr<SaxParser> parser_;
  size_t max_token_bytes_;
};

/// Bridges the channel's SAX parser into the shared QueryServer.
class QueryServerSink : public EventSink {
 public:
  explicit QueryServerSink(QueryServer* qs) : qs_(qs) {}
  void Accept(Event event) override { qs_->Push(std::move(event)); }
  void AcceptBatch(EventBatch batch) override {
    qs_->PushBatch(std::move(batch));
  }

 private:
  QueryServer* qs_;
};

}  // namespace

/// Shared-mode execution group: one QueryServer, one input stream, many
/// member sessions.  The first member to feed becomes the stream owner.
struct ServeServer::Channel {
  std::string name;
  QueryServer qserver;
  bool streaming = false;
  bool finished = false;
  uint64_t feeder_session = 0;
  std::unique_ptr<QueryServerSink> sink;
  std::unique_ptr<SaxParser> parser;
  std::vector<uint64_t> members;
};

namespace {

/// Shared mode: the session holds a QueryHandle registered on its
/// channel's QueryServer.  Only the channel's stream owner may feed.
class ChannelBackend : public SessionBackend {
 public:
  ChannelBackend(ServeServer::Channel* channel, QueryHandle* handle,
                 uint64_t session_id, size_t max_token_bytes)
      : channel_(channel),
        handle_(handle),
        session_id_(session_id),
        max_token_bytes_(max_token_bytes) {}

  Status FeedXml(std::string_view chunk) override {
    XFLUX_RETURN_IF_ERROR(PrepareXmlFeed());
    return channel_->parser->Feed(chunk);
  }

  Status FeedXml(StableChunk chunk) override {
    XFLUX_RETURN_IF_ERROR(PrepareXmlFeed());
    size_t size = chunk.capacity();
    return channel_->parser->Feed(std::move(chunk), size);
  }

  Status FeedEvents(const EventVec& events) override {
    XFLUX_RETURN_IF_ERROR(ClaimFeeder());
    channel_->streaming = true;
    channel_->qserver.PushAll(events);
    return Status::OK();
  }

  Status Finish() override {
    // A non-owner's FINISH ends only its own subscription; the shared
    // stream belongs to the owner.
    if (channel_->feeder_session != session_id_ || channel_->finished)
      return Status::OK();
    channel_->finished = true;
    Status parse;
    if (channel_->parser != nullptr) parse = channel_->parser->Finish();
    Status run = channel_->qserver.Finish();
    return parse.ok() ? run : parse;
  }

  ResultDisplay* display() override { return handle_->display(); }
  Status query_status() const override { return handle_->status(); }
  ProtocolGuard* guard() override { return handle_->guard(); }
  Metrics* metrics() override { return handle_->metrics(); }

 private:
  Status PrepareXmlFeed() {
    XFLUX_RETURN_IF_ERROR(ClaimFeeder());
    if (channel_->parser == nullptr) {
      channel_->sink = std::make_unique<QueryServerSink>(&channel_->qserver);
      SaxParser::Options o;
      o.stream_id = channel_->qserver.source_id();
      o.max_token_bytes = max_token_bytes_;
      channel_->parser = std::make_unique<SaxParser>(o, channel_->sink.get());
    }
    channel_->streaming = true;
    return Status::OK();
  }

  Status ClaimFeeder() {
    if (channel_->feeder_session == 0)
      channel_->feeder_session = session_id_;
    if (channel_->feeder_session != session_id_)
      return Status::InvalidArgument(
          "channel already has a stream owner; only session " +
          std::to_string(channel_->feeder_session) + " may feed");
    if (channel_->finished)
      return Status::InvalidArgument("channel stream already finished");
    return Status::OK();
  }

  ServeServer::Channel* channel_;
  QueryHandle* handle_;
  uint64_t session_id_;
  size_t max_token_bytes_;
};

}  // namespace

ServeServer::ServeServer(const Options& options)
    : options_(options),
      admission_(options.admission, &metrics_),
      shedder_(options.shed) {}

ServeServer::~ServeServer() {
  sessions_.clear();
  session_by_id_.clear();
  channels_.clear();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (wake_fds_[0] >= 0) ::close(wake_fds_[0]);
  if (wake_fds_[1] >= 0) ::close(wake_fds_[1]);
  if (!options_.unix_path.empty()) ::unlink(options_.unix_path.c_str());
}

int64_t ServeServer::NowMs() const {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Status ServeServer::StartUnix() {
  if (options_.unix_path.size() >= sizeof(sockaddr_un{}.sun_path))
    return Status::InvalidArgument("unix socket path too long: " +
                                   options_.unix_path);
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0)
    return Status::Internal("socket(AF_UNIX): " +
                            std::string(std::strerror(errno)));
  ::unlink(options_.unix_path.c_str());
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, options_.unix_path.c_str(),
               sizeof(addr.sun_path) - 1);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0)
    return Status::Internal("bind(" + options_.unix_path +
                            "): " + std::string(std::strerror(errno)));
  return Status::OK();
}

Status ServeServer::StartTcp() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0)
    return Status::Internal("socket(AF_INET): " +
                            std::string(std::strerror(errno)));
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.tcp_port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0)
    return Status::Internal("bind(127.0.0.1:" +
                            std::to_string(options_.tcp_port) +
                            "): " + std::string(std::strerror(errno)));
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  bound_port_ = ntohs(bound.sin_port);
  return Status::OK();
}

Status ServeServer::Start() {
  if (started_) return Status::InvalidArgument("server already started");
  Status bound = options_.unix_path.empty() ? StartTcp() : StartUnix();
  if (!bound.ok()) return bound;
  if (::listen(listen_fd_, 128) < 0)
    return Status::Internal("listen: " + std::string(std::strerror(errno)));
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0)
    return Status::Internal("epoll_create1: " +
                            std::string(std::strerror(errno)));
  if (::pipe2(wake_fds_, O_NONBLOCK | O_CLOEXEC) < 0)
    return Status::Internal("pipe2: " + std::string(std::strerror(errno)));
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.fd = wake_fds_[0];
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fds_[0], &ev);
  started_ = true;
  return Status::OK();
}

void ServeServer::Stop() {
  stop_.store(true);
  // Async-signal-safe wakeup (the example binary calls this from SIGINT).
  if (wake_fds_[1] >= 0) {
    char b = 1;
    [[maybe_unused]] ssize_t n = ::write(wake_fds_[1], &b, 1);
  }
}

std::string ServeServer::endpoint() const {
  if (!options_.unix_path.empty()) return "unix:" + options_.unix_path;
  return "tcp:127.0.0.1:" + std::to_string(bound_port_);
}

void ServeServer::Run() {
  constexpr int kTickMs = 20;  // deadline/shedding granularity
  std::vector<epoll_event> events(64);
  while (!stop_.load()) {
    int n = ::epoll_wait(epoll_fd_, events.data(),
                         static_cast<int>(events.size()), kTickMs);
    now_ms_ = NowMs();
    for (int i = 0; i < n; ++i) {
      int fd = events[i].data.fd;
      uint32_t mask = events[i].events;
      if (fd == listen_fd_) {
        AcceptPending();
        continue;
      }
      if (fd == wake_fds_[0]) {
        char drain[64];
        while (::read(wake_fds_[0], drain, sizeof(drain)) > 0) {
        }
        continue;
      }
      auto it = sessions_.find(fd);
      if (it == sessions_.end()) continue;  // reaped earlier this sweep
      ServeSession* s = it->second.get();
      if ((mask & (EPOLLHUP | EPOLLERR)) != 0) {
        s->set_state(ServeSession::State::kClosed);
        continue;
      }
      if ((mask & EPOLLIN) != 0) OnReadable(s);
      if ((mask & EPOLLOUT) != 0 &&
          sessions_.find(fd) != sessions_.end()) {
        TryWrite(s);
        UpdateWriteInterest(s);
      }
    }
    ApplyShedding();
    FlushDeltas();
    SweepDeadlines();
    ReapFinished();
  }
  // Orderly shutdown: every remaining client gets a structured ending.
  std::vector<int> fds;
  fds.reserve(sessions_.size());
  for (auto& [fd, s] : sessions_) {
    if (s->state() == ServeSession::State::kAwaitOpen ||
        s->state() == ServeSession::State::kStreaming)
      s->AppendErrorFrame(Status::NotSupported("server shutting down"));
    fds.push_back(fd);
  }
  for (int fd : fds) CloseSession(fd);
}

void ServeServer::AcceptPending() {
  for (;;) {
    int cfd = ::accept4(listen_fd_, nullptr, nullptr,
                        SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (cfd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN or transient accept failure: next tick retries
    }
    AdmissionController::Decision d = admission_.Offer();
    if (!d.admit) {
      // The one frame a rejected connection gets.  Best-effort: it fits
      // any socket buffer, and a client too broken to read it was not
      // going to honor retry-after anyway.
      std::string payload;
      AppendU32(&payload, d.retry_after_ms);
      std::string frame = EncodeFrame(FrameType::kRejected, payload);
      [[maybe_unused]] ssize_t n =
          ::send(cfd, frame.data(), frame.size(), MSG_NOSIGNAL);
      ::close(cfd);
      continue;
    }
    uint64_t id = next_session_id_++;
    auto session = std::make_unique<ServeSession>(
        id, cfd, options_.session,
        [this](ServeSession& s, const OpenRequest& r) {
          return MakeBackend(s, r);
        });
    session->last_read_ms = now_ms_;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = cfd;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, cfd, &ev);
    session_by_id_[id] = session.get();
    sessions_[cfd] = std::move(session);
  }
}

StatusOr<std::unique_ptr<SessionBackend>> ServeServer::MakeBackend(
    ServeSession& session, const OpenRequest& request) {
  QueryOptions qo = options_.base_query;
  qo.display.pretty = request.pretty;
  qo.guard = request.guard;
  qo.guard_options.policy = request.guard_policy;
  qo.guard_options.limits = admission_.session_limits();
  qo.threads = 0;  // the epoll thread is the only writer anywhere
  std::unique_ptr<SessionBackend> backend;
  if (!request.channel.empty()) {
    if (!options_.shared)
      return Status::InvalidArgument(
          "channel= requires a server started with --shared");
    auto& slot = channels_[request.channel];
    if (slot == nullptr) {
      slot = std::make_unique<Channel>();
      slot->name = request.channel;
    }
    if (slot->streaming)
      return Status::InvalidArgument(
          "channel '" + request.channel +
          "' is already streaming; registration is closed");
    auto handle = slot->qserver.Register(request.query, qo);
    if (!handle.ok()) return handle.status();
    slot->members.push_back(session.id());
    backend = std::make_unique<ChannelBackend>(
        slot.get(), handle.value(), session.id(),
        admission_.session_limits().max_token_bytes);
  } else {
    auto qs = QuerySession::Open(request.query, qo);
    if (!qs.ok()) return qs.status();
    backend = std::make_unique<DirectBackend>(
        std::move(qs).value(), admission_.session_limits().max_token_bytes);
  }
  // A session born under tier-2 pressure starts shedding immediately.
  if (shed_updates_applied_ && backend->guard() != nullptr)
    backend->guard()->set_shed_updates(true);
  return backend;
}

void ServeServer::OnReadable(ServeSession* session) {
  char buf[65536];
  bool eof = false;
  for (;;) {
    ssize_t n = ::read(session->fd(), buf, sizeof(buf));
    if (n > 0) {
      session->decoder().Feed(std::string_view(buf, static_cast<size_t>(n)));
      session->last_read_ms = now_ms_;
      continue;
    }
    if (n == 0) {
      eof = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    eof = true;  // hard socket error: the connection is gone
    break;
  }
  Frame frame;
  while (session->state() != ServeSession::State::kClosed &&
         session->decoder().Next(&frame)) {
    bool was_finish = frame.type == FrameType::kFinish;
    Status handled = session->HandleFrame(frame);
    if (!handled.ok()) {
      // Framing-level violation: one structured error, then the session
      // is done.  The decoder has lost sync anyway.
      session->AppendErrorFrame(handled);
      session->set_state(ServeSession::State::kFinished);
      break;
    }
    if (!session->channel().empty()) {
      if (frame.type == FrameType::kFeedXml ||
          frame.type == FrameType::kFeedEvents)
        MarkChannelDirty(session->channel());
      if (was_finish) {
        Channel* ch = FindChannel(session->channel());
        if (ch != nullptr && ch->feeder_session == session->id() &&
            ch->finished)
          FinishChannelMembers(ch, session->id());
      }
    }
  }
  if (!session->decoder().error().ok() &&
      (session->state() == ServeSession::State::kAwaitOpen ||
       session->state() == ServeSession::State::kStreaming)) {
    session->AppendErrorFrame(session->decoder().error());
    session->set_state(ServeSession::State::kFinished);
  }
  if (eof) session->set_state(ServeSession::State::kClosed);
  TryWrite(session);
  UpdateWriteInterest(session);
}

void ServeServer::TryWrite(ServeSession* session) {
  std::string& out = session->outbound();
  size_t written = 0;
  while (written < out.size()) {
    // MSG_NOSIGNAL: a hung-up client must surface as EPIPE here, not
    // kill the process with SIGPIPE.
    ssize_t n = ::send(session->fd(), out.data() + written,
                       out.size() - written, MSG_NOSIGNAL);
    if (n > 0) {
      written += static_cast<size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    session->set_state(ServeSession::State::kClosed);  // peer is gone
    out.clear();
    return;
  }
  out.erase(0, written);
  if (out.empty()) {
    session->write_pending_since_ms = -1;
  } else if (session->write_pending_since_ms < 0) {
    session->write_pending_since_ms = now_ms_;
  }
}

void ServeServer::UpdateWriteInterest(ServeSession* session) {
  epoll_event ev{};
  ev.events = EPOLLIN | (session->outbound_bytes() > 0 ? EPOLLOUT : 0u);
  ev.data.fd = session->fd();
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, session->fd(), &ev);
}

void ServeServer::FlushDeltas() {
  int tier = shedder_.tier();
  for (auto& [fd, session] : sessions_) {
    ServeSession* s = session.get();
    if (s->state() != ServeSession::State::kStreaming) continue;
    if (tier >= 1) {
      uint64_t before = s->deltas_deferred();
      s->FlushDelta(/*defer=*/true);
      if (s->deltas_deferred() > before) metrics_.CountShedTier(1);
    } else if (s->FlushDelta(/*defer=*/false)) {
      TryWrite(s);
      UpdateWriteInterest(s);
    }
  }
}

void ServeServer::ApplyShedding() {
  LoadShedder::Gauges gauges;
  gauges.active_sessions = sessions_.size();
  gauges.max_sessions = admission_.max_sessions();
  for (auto& [fd, s] : sessions_)
    gauges.total_queued_bytes += s->outbound_bytes();
  int tier = shedder_.Update(gauges);
  bool want_shed_updates = tier >= 2;
  if (want_shed_updates != shed_updates_applied_) {
    for (auto& [fd, s] : sessions_) {
      if (s->backend() != nullptr && s->backend()->guard() != nullptr)
        s->backend()->guard()->set_shed_updates(want_shed_updates);
    }
    shed_updates_applied_ = want_shed_updates;
  }
  if (tier >= 3) {
    // One eviction per tick: enough to relieve pressure monotonically,
    // gradual enough to stop as soon as the gauges recover.
    ServeSession* victim = nullptr;
    for (auto& [fd, s] : sessions_) {
      if (s->state() != ServeSession::State::kStreaming &&
          s->state() != ServeSession::State::kAwaitOpen)
        continue;
      if (victim == nullptr || s->priority() < victim->priority() ||
          (s->priority() == victim->priority() && s->id() < victim->id()))
        victim = s.get();
    }
    if (victim != nullptr) {
      metrics_.CountShedTier(3);
      victim->AppendShedNotice(3, "evicted: server overloaded");
      victim->set_state(ServeSession::State::kFinished);
      TryWrite(victim);
      UpdateWriteInterest(victim);
    }
  }
}

void ServeServer::SweepDeadlines() {
  for (auto& [fd, session] : sessions_) {
    ServeSession* s = session.get();
    bool live = s->state() == ServeSession::State::kAwaitOpen ||
                s->state() == ServeSession::State::kStreaming;
    if (live && options_.idle_timeout_ms > 0 &&
        now_ms_ - s->last_read_ms > options_.idle_timeout_ms) {
      metrics_.CountSessionTimeout();
      s->AppendErrorFrame(
          Status::ResourceExhausted("idle timeout: no frames received"));
      s->set_state(ServeSession::State::kFinished);
      TryWrite(s);
      UpdateWriteInterest(s);
      continue;
    }
    if (s->outbound_bytes() > 0 && options_.write_timeout_ms > 0 &&
        s->write_pending_since_ms >= 0 &&
        now_ms_ - s->write_pending_since_ms > options_.write_timeout_ms) {
      // The consumer stopped reading; its socket is jammed, so there is
      // no way to say goodbye.  Cut it loose.
      metrics_.CountSessionTimeout();
      s->set_state(ServeSession::State::kClosed);
    }
  }
}

void ServeServer::ReapFinished() {
  std::vector<int> done;
  for (auto& [fd, s] : sessions_) {
    if (s->state() == ServeSession::State::kClosed ||
        (s->state() == ServeSession::State::kFinished &&
         s->outbound_bytes() == 0))
      done.push_back(fd);
  }
  for (int fd : done) CloseSession(fd);
}

void ServeServer::CloseSession(int fd) {
  auto it = sessions_.find(fd);
  if (it == sessions_.end()) return;
  ServeSession* s = it->second.get();
  TryWrite(s);  // last chance for any queued final frame
  // Direct sessions fold their pipeline counters into the service rollup
  // here; channel members share suffix metrics, folded when the channel
  // itself is torn down (QueryServer::AggregateMetrics covers them).
  if (s->backend() != nullptr && s->channel().empty())
    metrics_.MergeFrom(*s->backend()->metrics());
  if (!s->channel().empty()) DropChannelMember(s->channel(), s->id());
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  admission_.Release();
  session_by_id_.erase(s->id());
  sessions_.erase(it);  // destructor closes the fd
}

ServeServer::Channel* ServeServer::FindChannel(const std::string& name) {
  auto it = channels_.find(name);
  return it == channels_.end() ? nullptr : it->second.get();
}

void ServeServer::MarkChannelDirty(const std::string& name) {
  Channel* ch = FindChannel(name);
  if (ch == nullptr) return;
  for (uint64_t id : ch->members) {
    auto it = session_by_id_.find(id);
    if (it != session_by_id_.end() &&
        it->second->state() == ServeSession::State::kStreaming)
      it->second->MarkDirty();
  }
}

void ServeServer::FinishChannelMembers(Channel* channel, uint64_t finisher) {
  Frame finish;
  finish.type = FrameType::kFinish;
  for (uint64_t id : channel->members) {
    if (id == finisher) continue;
    auto it = session_by_id_.find(id);
    if (it == session_by_id_.end() ||
        it->second->state() != ServeSession::State::kStreaming)
      continue;
    // Replaying FINISH through the member's own state machine gives it
    // the same ending the owner got: final delta, then kFinished.
    [[maybe_unused]] Status st = it->second->HandleFrame(finish);
    TryWrite(it->second);
    UpdateWriteInterest(it->second);
  }
}

void ServeServer::DropChannelMember(const std::string& name,
                                    uint64_t session_id) {
  Channel* ch = FindChannel(name);
  if (ch == nullptr) return;
  auto& m = ch->members;
  for (size_t i = 0; i < m.size(); ++i) {
    if (m[i] == session_id) {
      m.erase(m.begin() + i);
      break;
    }
  }
  if (m.empty()) {
    metrics_.MergeFrom(ch->qserver.AggregateMetrics());
    channels_.erase(name);
  }
}

}  // namespace xflux::serve
