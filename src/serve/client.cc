#include "serve/client.h"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>

namespace xflux::serve {

namespace {

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

ServeClient::ServeClient(int fd) : fd_(fd) {
  // Clients decode server frames; deltas for a large answer need headroom
  // well past the server's inbound bound.
  FrameDecoder::Options opts;
  opts.max_frame_bytes = 64u << 20;
  decoder_ = FrameDecoder(opts);
}

ServeClient::~ServeClient() {
  if (fd_ >= 0) ::close(fd_);
}

StatusOr<std::unique_ptr<ServeClient>> ServeClient::Connect(
    const std::string& endpoint) {
  int fd = -1;
  if (endpoint.rfind("unix:", 0) == 0) {
    std::string path = endpoint.substr(5);
    if (path.size() >= sizeof(sockaddr_un{}.sun_path))
      return Status::InvalidArgument("unix socket path too long: " + path);
    fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0)
      return Status::Internal("socket: " + std::string(std::strerror(errno)));
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
      int err = errno;
      ::close(fd);
      return Status::Internal("connect(" + path +
                              "): " + std::string(std::strerror(err)));
    }
  } else if (endpoint.rfind("tcp:", 0) == 0) {
    std::string hostport = endpoint.substr(4);
    size_t colon = hostport.rfind(':');
    if (colon == std::string::npos)
      return Status::InvalidArgument("tcp endpoint needs host:port: " +
                                     endpoint);
    int port = std::atoi(hostport.substr(colon + 1).c_str());
    fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0)
      return Status::Internal("socket: " + std::string(std::strerror(errno)));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(port));
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
      int err = errno;
      ::close(fd);
      return Status::Internal("connect(" + hostport +
                              "): " + std::string(std::strerror(err)));
    }
  } else {
    return Status::InvalidArgument("endpoint must be unix:<path> or "
                                   "tcp:127.0.0.1:<port>, got: " +
                                   endpoint);
  }
  return std::unique_ptr<ServeClient>(new ServeClient(fd));
}

Status ServeClient::SendRaw(std::string_view bytes) {
  size_t written = 0;
  while (written < bytes.size()) {
    ssize_t n = ::send(fd_, bytes.data() + written, bytes.size() - written,
                       MSG_NOSIGNAL);
    if (n > 0) {
      written += static_cast<size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    return Status::Internal("write: " + std::string(std::strerror(errno)));
  }
  return Status::OK();
}

Status ServeClient::SendFrame(FrameType type, std::string_view payload) {
  return SendRaw(EncodeFrame(type, payload));
}

Status ServeClient::Open(const std::string& query,
                         const std::string& option_lines) {
  std::string payload = query;
  if (!option_lines.empty()) {
    payload.push_back('\n');
    payload.append(option_lines);
  }
  XFLUX_RETURN_IF_ERROR(SendFrame(FrameType::kOpen, payload));
  auto frame = ReadFrame(10000);
  if (!frame.ok()) return frame.status();
  switch (frame.value().type) {
    case FrameType::kOpened:
      session_id_ = std::strtoull(frame.value().payload.c_str(), nullptr, 10);
      return Status::OK();
    case FrameType::kRejected: {
      ReadU32(frame.value().payload, 0, &retry_after_ms_);
      return Status::ResourceExhausted(
          "admission rejected; retry after " +
          std::to_string(retry_after_ms_) + "ms");
    }
    case FrameType::kError: {
      uint32_t code = 0;
      ReadU32(frame.value().payload, 0, &code);
      return Status(static_cast<StatusCode>(code),
                    frame.value().payload.size() > 4
                        ? frame.value().payload.substr(4)
                        : std::string());
    }
    default:
      return Status::ProtocolViolation("unexpected reply to OPEN");
  }
}

Status ServeClient::FeedXml(std::string_view chunk) {
  XFLUX_RETURN_IF_ERROR(SendFrame(FrameType::kFeedXml, chunk));
  return DrainPushed();
}

Status ServeClient::FeedEvents(const EventVec& events) {
  XFLUX_RETURN_IF_ERROR(SendFrame(FrameType::kFeedEvents,
                                  EncodeEvents(events)));
  return DrainPushed();
}

Status ServeClient::Subscribe() {
  return SendFrame(FrameType::kSubscribe, "");
}

Status ServeClient::SendFinish() { return SendFrame(FrameType::kFinish, ""); }

Status ServeClient::SendClose() { return SendFrame(FrameType::kClose, ""); }

void ServeClient::ApplyFrame(const Frame& frame) {
  switch (frame.type) {
    case FrameType::kDelta: {
      uint32_t keep = 0;
      if (!ReadU32(frame.payload, 0, &keep)) return;
      if (keep < text_.size()) text_.resize(keep);
      text_.append(frame.payload, 4, std::string::npos);
      ++deltas_received_;
      return;
    }
    case FrameType::kShedNotice: {
      uint32_t tier = 0;
      ReadU32(frame.payload, 0, &tier);
      ++shed_notices_;
      last_shed_tier_ = static_cast<int>(tier);
      return;
    }
    default:
      return;
  }
}

StatusOr<Frame> ServeClient::ReadFrame(int timeout_ms) {
  if (!pending_.empty()) {
    Frame frame = std::move(pending_.front());
    pending_.pop_front();
    return frame;
  }
  int64_t deadline = NowMs() + timeout_ms;
  for (;;) {
    Frame frame;
    if (decoder_.Next(&frame)) {
      ApplyFrame(frame);
      return frame;
    }
    if (!decoder_.error().ok()) return decoder_.error();
    if (eof_) return Status::Internal("connection closed by server");
    int64_t remaining = deadline - NowMs();
    if (remaining < 0) remaining = 0;
    pollfd pfd{fd_, POLLIN, 0};
    int ready = ::poll(&pfd, 1, static_cast<int>(remaining));
    if (ready == 0)
      return Status::ResourceExhausted("timed out waiting for a frame");
    if (ready < 0) {
      if (errno == EINTR) continue;
      return Status::Internal("poll: " + std::string(std::strerror(errno)));
    }
    char buf[65536];
    ssize_t n = ::read(fd_, buf, sizeof(buf));
    if (n > 0) {
      decoder_.Feed(std::string_view(buf, static_cast<size_t>(n)));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    eof_ = true;
    return Status::Internal("connection closed by server");
  }
}

Status ServeClient::DrainPushed() {
  for (;;) {
    Frame frame;
    if (decoder_.Next(&frame)) {
      ApplyFrame(frame);
      // Push frames (deltas, shed notices) are fully handled by
      // ApplyFrame; anything else — an error, the final status — must
      // reach the caller's next ReadFrame/WaitFinished intact.
      if (frame.type != FrameType::kDelta &&
          frame.type != FrameType::kShedNotice) {
        pending_.push_back(std::move(frame));
      }
      continue;
    }
    if (!decoder_.error().ok()) return decoder_.error();
    if (eof_) return Status::OK();
    pollfd pfd{fd_, POLLIN, 0};
    int ready = ::poll(&pfd, 1, 0);
    if (ready <= 0) return Status::OK();
    char buf[65536];
    ssize_t n = ::read(fd_, buf, sizeof(buf));
    if (n > 0) {
      decoder_.Feed(std::string_view(buf, static_cast<size_t>(n)));
      continue;
    }
    if (n < 0 && (errno == EINTR || errno == EAGAIN)) return Status::OK();
    // EOF mid-feed: whatever structured ending arrived before the close is
    // already queued; report the hangup only when someone tries to read
    // past it.
    eof_ = true;
    return Status::OK();
  }
}

Status ServeClient::WaitFinished(int timeout_ms) {
  int64_t deadline = NowMs() + timeout_ms;
  for (;;) {
    int64_t remaining = deadline - NowMs();
    if (remaining <= 0)
      return Status::ResourceExhausted("timed out waiting for FINISHED");
    auto frame = ReadFrame(static_cast<int>(remaining));
    if (!frame.ok()) return frame.status();
    switch (frame.value().type) {
      case FrameType::kFinished: {
        uint32_t code = 0;
        ReadU32(frame.value().payload, 0, &code);
        if (code == 0) return Status::OK();
        return Status(static_cast<StatusCode>(code),
                      frame.value().payload.size() > 4
                          ? frame.value().payload.substr(4)
                          : std::string());
      }
      case FrameType::kError: {
        uint32_t code = 0;
        ReadU32(frame.value().payload, 0, &code);
        return Status(static_cast<StatusCode>(code),
                      frame.value().payload.size() > 4
                          ? frame.value().payload.substr(4)
                          : std::string());
      }
      case FrameType::kShedNotice:
        // Applied by ApplyFrame; a tier-3 notice means eviction.
        if (last_shed_tier_ >= 3)
          return Status::ResourceExhausted("evicted by load shedding");
        continue;
      default:
        continue;  // deltas and anything else: keep draining
    }
  }
}

}  // namespace xflux::serve
