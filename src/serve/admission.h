// Admission control for xflux_serve (explicit policy object).
//
// Overload protection starts before a session exists: the controller
// decides at accept time whether a new connection may become a session at
// all, and what resource envelope it gets if so.  Rejection is a
// first-class, structured answer — a kRejected frame carrying a
// retry-after hint — not a dropped connection, so honest clients back off
// instead of hammering the listener.
//
// The controller is deliberately simple state (it runs on the single
// server thread): an active-session count against a hard cap, plus the
// per-session ResourceLimits every admitted session's ProtocolGuard is
// armed with.  The retry-after hint scales with how far over budget the
// offered load is, so a thundering herd is spread out instead of
// resynchronized.

#ifndef XFLUX_SERVE_ADMISSION_H_
#define XFLUX_SERVE_ADMISSION_H_

#include <cstddef>
#include <cstdint>

#include "core/protocol_guard.h"
#include "util/metrics.h"

namespace xflux::serve {

/// See file comment.
class AdmissionController {
 public:
  struct Options {
    /// Hard cap on concurrently-admitted sessions.
    size_t max_sessions = 64;
    /// Base retry-after hint for a rejected client, scaled up by how many
    /// rejections are already outstanding.
    uint32_t retry_after_ms = 100;
    /// Resource envelope stamped on every admitted session's guard.
    ResourceLimits session_limits{/*max_depth=*/256,
                                  /*max_open_regions=*/4096,
                                  /*max_buffered_bytes=*/0,
                                  /*max_token_bytes=*/8u << 20};
  };

  struct Decision {
    bool admit = false;
    uint32_t retry_after_ms = 0;  ///< meaningful when !admit
  };

  AdmissionController(const Options& options, Metrics* metrics)
      : options_(options), metrics_(metrics) {}

  /// Decides the fate of one new connection.  Counts rejects into the
  /// server metrics.
  Decision Offer() {
    if (active_ < options_.max_sessions) {
      ++active_;
      consecutive_rejects_ = 0;
      return {true, 0};
    }
    ++consecutive_rejects_;
    if (metrics_ != nullptr) metrics_->CountAdmissionReject();
    // Under a herd, later arrivals get pushed further out — a crude but
    // effective desynchronizer (capped so the hint stays honest).
    uint64_t scale = consecutive_rejects_ < 8 ? consecutive_rejects_ : 8;
    return {false, static_cast<uint32_t>(options_.retry_after_ms * scale)};
  }

  /// Returns one admitted session's slot (on close, however it closed).
  void Release() {
    if (active_ > 0) --active_;
  }

  size_t active() const { return active_; }
  size_t max_sessions() const { return options_.max_sessions; }
  const ResourceLimits& session_limits() const {
    return options_.session_limits;
  }

 private:
  Options options_;
  Metrics* metrics_;
  size_t active_ = 0;
  uint64_t consecutive_rejects_ = 0;
};

}  // namespace xflux::serve

#endif  // XFLUX_SERVE_ADMISSION_H_
