// Blocking convenience client for the xflux_serve frame protocol.
//
// The in-tree consumers of the service (tests, the traffic generator,
// xflux_inspect probes) all speak the protocol through this class: a
// blocking socket, a FrameDecoder, and the client half of the delta
// protocol — `text_` is maintained as `text_[0:keep] + append` per kDelta,
// so after a clean FINISH `text()` is byte-identical to the answer a
// direct QuerySession would have produced.
//
// The class deliberately does NOT hide the frame loop: ReadFrame exposes
// raw frames (tests assert on exact frame types and payloads), while
// WaitFinished is the packaged happy path.  Nothing here is thread-safe;
// one client, one thread.

#ifndef XFLUX_SERVE_CLIENT_H_
#define XFLUX_SERVE_CLIENT_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <string_view>

#include "serve/frame.h"
#include "util/status.h"

namespace xflux::serve {

/// See file comment.
class ServeClient {
 public:
  /// Connects to "unix:<path>" or "tcp:127.0.0.1:<port>" (the string
  /// ServeServer::endpoint() returns).
  static StatusOr<std::unique_ptr<ServeClient>> Connect(
      const std::string& endpoint);

  ~ServeClient();
  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;

  /// Sends kOpen and waits for the verdict.  OK on kOpened; the server's
  /// error on kError; kResourceExhausted ("admission rejected...") on
  /// kRejected, with the hint in rejected_retry_after_ms().
  /// `option_lines` is the raw key=value block ("guard=drop\npretty=1").
  Status Open(const std::string& query, const std::string& option_lines = "");

  // -- feed path (write-only; each drains pushed frames opportunistically
  //    so an honest client never jams the server's outbound queue) --
  Status FeedXml(std::string_view chunk);
  Status FeedEvents(const EventVec& events);
  Status Subscribe();
  Status SendFinish();
  Status SendClose();

  /// Reads one frame, waiting up to `timeout_ms`.  kDelta frames are
  /// applied to text() before being returned.  kResourceExhausted on
  /// timeout, kProtocolViolation on a broken stream, kInternal on EOF.
  StatusOr<Frame> ReadFrame(int timeout_ms);

  /// Drives the read loop until kFinished (returns the server's final
  /// status), kError (returns it), or a tier-3 kShedNotice (returns
  /// kResourceExhausted).  Deltas accumulate into text() along the way.
  Status WaitFinished(int timeout_ms);

  /// The answer as reconstructed from deltas so far.
  const std::string& text() const { return text_; }

  uint64_t session_id() const { return session_id_; }
  uint32_t rejected_retry_after_ms() const { return retry_after_ms_; }
  uint64_t deltas_received() const { return deltas_received_; }
  uint64_t shed_notices() const { return shed_notices_; }
  int last_shed_tier() const { return last_shed_tier_; }

  /// Raw socket access for hostile-client tests (byte dribbling, garbage).
  Status SendRaw(std::string_view bytes);
  int fd() const { return fd_; }

 private:
  explicit ServeClient(int fd);

  Status SendFrame(FrameType type, std::string_view payload);
  /// Non-blocking drain of any already-arrived frames.  Terminal frames
  /// (kError, kFinished, ...) are queued for the next ReadFrame, never
  /// dropped: a feed racing the server's teardown must not lose the
  /// structured ending.
  Status DrainPushed();
  void ApplyFrame(const Frame& frame);

  int fd_ = -1;
  FrameDecoder decoder_;
  std::deque<Frame> pending_;  ///< non-push frames seen during a drain
  bool eof_ = false;
  std::string text_;
  uint64_t session_id_ = 0;
  uint32_t retry_after_ms_ = 0;
  uint64_t deltas_received_ = 0;
  uint64_t shed_notices_ = 0;
  int last_shed_tier_ = 0;
};

}  // namespace xflux::serve

#endif  // XFLUX_SERVE_CLIENT_H_
