#include "xquery/parser.h"

#include <cctype>

namespace xflux {

namespace {

bool IsNameStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-';
}

// A tiny cursor-based parser; errors carry the byte offset.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  StatusOr<AstPtr> Parse() {
    auto expr = ParseExpr();
    if (!expr.ok()) return expr.status();
    SkipSpace();
    if (pos_ != text_.size()) {
      return Error("trailing input after query");
    }
    return expr;
  }

 private:
  Status Error(const std::string& message) {
    return Status::ParseError(message + " at offset " + std::to_string(pos_));
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Peek(std::string_view token) {
    SkipSpace();
    return text_.substr(pos_, token.size()) == token;
  }

  bool Consume(std::string_view token) {
    if (!Peek(token)) return false;
    pos_ += token.size();
    return true;
  }

  // Peeks a whole identifier/keyword (not a prefix of a longer name).
  bool PeekWord(std::string_view word) {
    SkipSpace();
    if (text_.substr(pos_, word.size()) != word) return false;
    size_t after = pos_ + word.size();
    return after >= text_.size() || !IsNameChar(text_[after]);
  }

  bool ConsumeWord(std::string_view word) {
    if (!PeekWord(word)) return false;
    pos_ += word.size();
    return true;
  }

  StatusOr<std::string> ParseName() {
    SkipSpace();
    if (pos_ >= text_.size() || !IsNameStart(text_[pos_])) {
      return Error("expected a name");
    }
    size_t start = pos_;
    while (pos_ < text_.size() && IsNameChar(text_[pos_])) ++pos_;
    return std::string(text_.substr(start, pos_ - start));
  }

  StatusOr<std::string> ParseStringLiteral() {
    SkipSpace();
    if (pos_ >= text_.size() || (text_[pos_] != '"' && text_[pos_] != '\'')) {
      return Error("expected a string literal");
    }
    char quote = text_[pos_++];
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != quote) {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) {
        char esc = text_[pos_++];
        switch (esc) {
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case '\\': out += '\\'; break;
          case '"': out += '"'; break;
          case '\'': out += '\''; break;
          default: out += esc;
        }
      } else {
        out += c;
      }
    }
    if (pos_ >= text_.size()) return Error("unterminated string literal");
    ++pos_;  // closing quote
    return out;
  }

  // Expr := Flwor | ElementCtor | '(' Expr (',' Expr)* ')' | StringLit
  //       | count(Expr) | sum(Expr) | contains(Path, Lit) | Path ['=' Lit]
  StatusOr<AstPtr> ParseExpr() {
    SkipSpace();
    if (PeekWord("for")) return ParseFlwor();
    if (Peek("<")) return ParseElementCtor();
    if (Peek("\"") || Peek("'")) {
      auto lit = ParseStringLiteral();
      if (!lit.ok()) return lit.status();
      auto node = std::make_unique<AstNode>(AstKind::kStringLiteral);
      node->name = std::move(lit).value();
      return AstPtr(std::move(node));
    }
    if (Consume("(")) {
      auto seq = std::make_unique<AstNode>(AstKind::kSequence);
      do {
        auto item = ParseExpr();
        if (!item.ok()) return item.status();
        seq->children.push_back(std::move(item).value());
      } while (Consume(","));
      if (!Consume(")")) return Error("expected ')'");
      if (seq->children.size() == 1) return std::move(seq->children[0]);
      return AstPtr(std::move(seq));
    }
    if (PeekWord("count") || PeekWord("sum") || PeekWord("avg")) {
      AstKind kind = PeekWord("count")
                         ? AstKind::kCount
                         : (PeekWord("sum") ? AstKind::kSum : AstKind::kAvg);
      (void)(kind == AstKind::kCount
                 ? ConsumeWord("count")
                 : (kind == AstKind::kSum ? ConsumeWord("sum")
                                          : ConsumeWord("avg")));
      if (!Consume("(")) return Error("expected '(' after aggregate");
      auto arg = ParseExpr();
      if (!arg.ok()) return arg.status();
      if (!Consume(")")) return Error("expected ')' after aggregate");
      auto node = std::make_unique<AstNode>(kind);
      node->children.push_back(std::move(arg).value());
      return AstPtr(std::move(node));
    }
    if (PeekWord("contains")) return ParseContains();
    return ParseComparableTail(ParsePath());
  }

  // contains(path, "lit")
  StatusOr<AstPtr> ParseContains() {
    ConsumeWord("contains");
    if (!Consume("(")) return Error("expected '(' after contains");
    auto path = ParsePath();
    if (!path.ok()) return path.status();
    if (!Consume(",")) return Error("expected ',' in contains");
    auto lit = ParseStringLiteral();
    if (!lit.ok()) return lit.status();
    if (!Consume(")")) return Error("expected ')' after contains");
    auto node = std::make_unique<AstNode>(AstKind::kCompare);
    node->match = AstMatch::kContains;
    node->name = std::move(lit).value();
    node->children.push_back(std::move(path).value());
    return AstPtr(std::move(node));
  }

  // Wraps a parsed path in a kCompare when followed by '= "lit"'.
  StatusOr<AstPtr> ParseComparableTail(StatusOr<AstPtr> path) {
    if (!path.ok()) return path.status();
    if (!Consume("=")) return path;
    auto lit = ParseStringLiteral();
    if (!lit.ok()) return lit.status();
    auto node = std::make_unique<AstNode>(AstKind::kCompare);
    node->match = AstMatch::kEquals;
    node->name = std::move(lit).value();
    node->children.push_back(std::move(path).value());
    return AstPtr(std::move(node));
  }

  // Path := ('$'var | Name ['(' ')'] | RelativeStep) Step*
  StatusOr<AstPtr> ParsePath() {
    SkipSpace();
    AstPtr current;
    if (Consume("$")) {
      auto name = ParseName();
      if (!name.ok()) return name.status();
      current = std::make_unique<AstNode>(AstKind::kVarRef);
      current->name = std::move(name).value();
    } else if (pos_ < text_.size() &&
               (IsNameStart(text_[pos_]) || text_[pos_] == '@' ||
                text_[pos_] == '*')) {
      // A relative path inside a predicate starts with a step; a document
      // source is a bare name (optionally called like stream()).  We treat
      // a leading name as the source only at the start of an absolute
      // path, which the caller distinguishes by context: here a bare name
      // followed by '/' '//' '=' ']' ')' ',' or end is ambiguous, so the
      // convention is: inside predicates ParseRelativePath is used instead.
      auto name = ParseName();
      if (!name.ok()) return name.status();
      if (Consume("(")) {
        if (!Consume(")")) return Error("expected ')' after stream()");
      }
      current = std::make_unique<AstNode>(AstKind::kStream);
      current->name = std::move(name).value();
    } else {
      return Error("expected a path expression");
    }
    return ParseSteps(std::move(current));
  }

  // A path relative to the context item (predicate conditions).
  StatusOr<AstPtr> ParseRelativePath() {
    auto context = std::make_unique<AstNode>(AstKind::kVarRef);
    context->name = "";  // the context item
    auto step = ParseOneStep(std::move(context), /*descendant=*/false);
    if (!step.ok()) return step.status();
    return ParseSteps(std::move(step).value());
  }

  // Parses one axis step applied to `input`.
  StatusOr<AstPtr> ParseOneStep(AstPtr input, bool descendant) {
    SkipSpace();
    auto node = std::make_unique<AstNode>(AstKind::kStep);
    node->children.push_back(std::move(input));
    if (descendant) {
      node->axis = AstAxis::kDescendant;
      if (Consume("*")) {
        node->name = "*";
        return AstPtr(std::move(node));
      }
      auto name = ParseName();
      if (!name.ok()) return name.status();
      node->name = std::move(name).value();
      return AstPtr(std::move(node));
    }
    if (Consume("..")) {
      node->axis = AstAxis::kParent;
      return AstPtr(std::move(node));
    }
    if (Consume("@")) {
      node->axis = AstAxis::kAttribute;
      auto name = ParseName();
      if (!name.ok()) return name.status();
      node->name = std::move(name).value();
      return AstPtr(std::move(node));
    }
    if (PeekWord("ancestor")) {
      ConsumeWord("ancestor");
      if (!Consume("::")) return Error("expected '::' after ancestor");
      node->axis = AstAxis::kAncestor;
      if (Consume("*")) {
        node->name = "*";
      } else {
        auto name = ParseName();
        if (!name.ok()) return name.status();
        node->name = std::move(name).value();
      }
      return AstPtr(std::move(node));
    }
    if (PeekWord("text")) {
      size_t save = pos_;
      ConsumeWord("text");
      if (Consume("(")) {
        if (!Consume(")")) return Error("expected ')' after text(");
        node->axis = AstAxis::kText;
        return AstPtr(std::move(node));
      }
      pos_ = save;  // a child element named "text"
    }
    node->axis = AstAxis::kChild;
    if (Consume("*")) {
      node->name = "*";
      return AstPtr(std::move(node));
    }
    auto name = ParseName();
    if (!name.ok()) return name.status();
    node->name = std::move(name).value();
    return AstPtr(std::move(node));
  }

  // Step* := ('//' | '/') step, plus '[' predicate ']' filters.
  StatusOr<AstPtr> ParseSteps(AstPtr current) {
    for (;;) {
      SkipSpace();
      if (Consume("//")) {
        auto step = ParseOneStep(std::move(current), /*descendant=*/true);
        if (!step.ok()) return step.status();
        current = std::move(step).value();
      } else if (Consume("/")) {
        auto step = ParseOneStep(std::move(current), /*descendant=*/false);
        if (!step.ok()) return step.status();
        current = std::move(step).value();
      } else if (Consume("[")) {
        auto cond = ParsePredicateCondition();
        if (!cond.ok()) return cond.status();
        if (!Consume("]")) return Error("expected ']'");
        auto filter = std::make_unique<AstNode>(AstKind::kFilter);
        filter->children.push_back(std::move(current));
        filter->children.push_back(std::move(cond).value());
        current = std::move(filter);
      } else {
        return current;
      }
    }
  }

  // Predicate condition: relative path, optionally compared to a literal,
  // or contains(relative-path, "lit").
  StatusOr<AstPtr> ParsePredicateCondition() {
    SkipSpace();
    if (PeekWord("contains")) {
      ConsumeWord("contains");
      if (!Consume("(")) return Error("expected '(' after contains");
      auto path = ParseRelativePath();
      if (!path.ok()) return path.status();
      if (!Consume(",")) return Error("expected ',' in contains");
      auto lit = ParseStringLiteral();
      if (!lit.ok()) return lit.status();
      if (!Consume(")")) return Error("expected ')' after contains");
      auto node = std::make_unique<AstNode>(AstKind::kCompare);
      node->match = AstMatch::kContains;
      node->name = std::move(lit).value();
      node->children.push_back(std::move(path).value());
      return AstPtr(std::move(node));
    }
    auto path = ParseRelativePath();
    if (!path.ok()) return path.status();
    auto node = std::make_unique<AstNode>(AstKind::kCompare);
    node->children.push_back(std::move(path).value());
    if (Consume("=")) {
      node->match = AstMatch::kEquals;
      auto lit = ParseStringLiteral();
      if (!lit.ok()) return lit.status();
      node->name = std::move(lit).value();
    } else {
      node->match = AstMatch::kExists;
    }
    return AstPtr(std::move(node));
  }

  // for $v in Expr [where Cond] [order by Expr] return Expr
  StatusOr<AstPtr> ParseFlwor() {
    ConsumeWord("for");
    if (!Consume("$")) return Error("expected '$' after for");
    auto var = ParseName();
    if (!var.ok()) return var.status();
    if (!ConsumeWord("in")) return Error("expected 'in'");
    auto node = std::make_unique<AstNode>(AstKind::kFlwor);
    node->name = std::move(var).value();

    auto in_expr = ParseExpr();
    if (!in_expr.ok()) return in_expr.status();
    node->in_child = static_cast<int>(node->children.size());
    node->children.push_back(std::move(in_expr).value());

    if (ConsumeWord("where")) {
      auto cond = ParseExpr();  // a kCompare over a $var path, typically
      if (!cond.ok()) return cond.status();
      node->where_child = static_cast<int>(node->children.size());
      node->children.push_back(std::move(cond).value());
    }
    if (ConsumeWord("order")) {
      if (!ConsumeWord("by")) return Error("expected 'by' after order");
      auto key = ParseExpr();
      if (!key.ok()) return key.status();
      node->orderby_child = static_cast<int>(node->children.size());
      node->children.push_back(std::move(key).value());
      if (ConsumeWord("descending")) {
        node->descending = true;
      } else {
        (void)ConsumeWord("ascending");
      }
    }
    if (!ConsumeWord("return")) return Error("expected 'return'");
    auto ret = ParseExpr();
    if (!ret.ok()) return ret.status();
    node->return_child = static_cast<int>(node->children.size());
    node->children.push_back(std::move(ret).value());
    return AstPtr(std::move(node));
  }

  // <tag>{ Expr (',' Expr)* }</tag>
  StatusOr<AstPtr> ParseElementCtor() {
    if (!Consume("<")) return Error("expected '<'");
    auto tag = ParseName();
    if (!tag.ok()) return tag.status();
    if (!Consume(">")) return Error("expected '>' in constructor");
    if (!Consume("{")) return Error("expected '{' in constructor");
    auto node = std::make_unique<AstNode>(AstKind::kElementCtor);
    node->name = tag.value();
    auto content = std::make_unique<AstNode>(AstKind::kSequence);
    do {
      auto item = ParseExpr();
      if (!item.ok()) return item.status();
      content->children.push_back(std::move(item).value());
    } while (Consume(","));
    if (!Consume("}")) return Error("expected '}' in constructor");
    if (!Consume("</")) return Error("expected '</' in constructor");
    auto close = ParseName();
    if (!close.ok()) return close.status();
    if (close.value() != tag.value()) {
      return Error("constructor close tag mismatch: <" + tag.value() +
                   "> vs </" + close.value() + ">");
    }
    if (!Consume(">")) return Error("expected '>' after close tag");
    if (content->children.size() == 1) {
      node->children.push_back(std::move(content->children[0]));
    } else {
      node->children.push_back(std::move(content));
    }
    return AstPtr(std::move(node));
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<AstPtr> ParseQuery(std::string_view query) {
  Parser parser(query);
  return parser.Parse();
}

}  // namespace xflux
