// One-call conveniences for running queries: the public entry point most
// applications use.

#ifndef XFLUX_XQUERY_ENGINE_H_
#define XFLUX_XQUERY_ENGINE_H_

#include <memory>
#include <string>
#include <string_view>

#include "core/pipeline.h"
#include "core/protocol_guard.h"
#include "core/result_display.h"
#include "core/trace_sink.h"
#include "util/status.h"
#include "xquery/compiler.h"

namespace xflux {

/// Bridges an event producer (e.g. the SAX tokenizer) to a pipeline.
class PipelineSource : public EventSink {
 public:
  explicit PipelineSource(Pipeline* pipeline) : pipeline_(pipeline) {}
  void Accept(Event event) override { pipeline_->Push(std::move(event)); }
  void AcceptBatch(EventBatch batch) override {
    pipeline_->PushBatch(std::move(batch));
  }

 private:
  Pipeline* pipeline_;
};

/// A compiled query wired to a live result display.  Feed events (or whole
/// documents) and read the continuously-maintained answer.
class QuerySession {
 public:
  /// Everything configurable about a session, in one place.
  struct Options {
    ResultDisplay::Options display;  ///< rendering of the live answer
    /// When false, mutable regions from the source are classified fixed at
    /// injection — source updates are ignored (Section V).
    bool accept_source_updates = true;
    /// First stream id the pipeline allocates; must be above every id the
    /// source uses.
    StreamId first_dynamic_id = kDefaultFirstDynamicId;
    /// Per-stage StageStats counting/timing (see util/stage_stats.h).
    bool instrumentation = false;
    /// When > 0, a TraceSink tap with this ring capacity is inserted just
    /// before the display and its window is dumped to stderr if the display
    /// latches a protocol error.
    size_t trace_capacity = 0;
    /// When true, a ProtocolGuard is spliced in front of the compiled
    /// pipeline: source events are validated against WF_i and the
    /// update-bracket discipline before any operator sees them, and
    /// `guard_options` decides what happens on a violation.
    bool guard = false;
    ProtocolGuard::Options guard_options;
    /// Worker threads for pipeline-parallel execution (0 = serial, the
    /// default).  Parallel output is deterministically identical to
    /// serial; with threads > 0 the live answer (CurrentText /
    /// CurrentEvents / metrics) is only defined once Finish() has drained
    /// the run — PushDocument drains internally, so whole-document callers
    /// never notice.
    int threads = 0;
    /// Queue sizing for threads > 0 (bounded SPSC batch queues).
    size_t queue_capacity = 64;
    size_t batch_events = 64;
  };

  /// Compiles `query` and attaches a display, per `options`.
  static StatusOr<std::unique_ptr<QuerySession>> Open(
      std::string_view query, const Options& options);
  static StatusOr<std::unique_ptr<QuerySession>> Open(std::string_view query);

  /// Deprecated shim for the old two-overload API; display-only options.
  [[deprecated("use Open(query, QuerySession::Options)")]]
  static StatusOr<std::unique_ptr<QuerySession>> Open(
      std::string_view query, const ResultDisplay::Options& display_options);

  /// Pushes one source event.
  void Push(Event event) { pipeline_->Push(std::move(event)); }
  void PushAll(const EventVec& events) { pipeline_->PushAll(events); }

  /// Tokenizes and pushes a whole XML document (emits sS/eS brackets).
  Status PushDocument(std::string_view xml);

  /// Drains a threaded run — flushes in-flight batches, joins the workers
  /// and folds their metrics/registry shards into the session-visible
  /// services — then returns status().  No-op (beyond the status read) in
  /// serial mode; idempotent.  After Finish the session dispatches any
  /// further events serially.
  Status Finish() {
    pipeline_->Finish();
    return status();
  }

  /// The current answer text.
  StatusOr<std::string> CurrentText() const { return display_->CurrentText(); }
  EventVec CurrentEvents() const { return display_->CurrentEvents(); }

  Pipeline* pipeline() { return pipeline_.get(); }
  ResultDisplay* display() { return display_.get(); }
  StreamId source_id() const { return source_id_; }

  /// Whole-pipeline counters and per-stage records (the latter only
  /// advance with Options::instrumentation on).
  Metrics* metrics() { return pipeline_->context()->metrics(); }
  StatsRegistry* stats() { return pipeline_->context()->stats(); }

  /// The trace tap, or nullptr when Options::trace_capacity was 0.
  TraceSink* trace() { return trace_; }

  /// The protocol guard, or nullptr when Options::guard was false.
  ProtocolGuard* guard() { return guard_; }

  /// Errors latched by the display (protocol violations).
  const Status& display_status() const { return display_->status(); }

  /// The session's combined health: the pipeline's sticky first error
  /// (guard fail-fast, stage-reported corruption) or, failing that, the
  /// display's latched protocol error.  OK means the answer is live.
  const Status& status() const {
    return pipeline_->status().ok() ? display_->status() : pipeline_->status();
  }

 private:
  QuerySession() = default;

  std::unique_ptr<Pipeline> pipeline_;
  std::unique_ptr<ResultDisplay> display_;
  TraceSink* trace_ = nullptr;       // owned by the pipeline
  ProtocolGuard* guard_ = nullptr;   // owned by the pipeline
  StreamId source_id_ = 0;
};

/// Parses `query`, evaluates it over `xml`, and returns the final answer —
/// the simplest way to use the engine.
StatusOr<std::string> RunQueryOnXml(std::string_view query,
                                    std::string_view xml);

}  // namespace xflux

#endif  // XFLUX_XQUERY_ENGINE_H_
