// One-call conveniences for running queries: the public entry point most
// applications use.

#ifndef XFLUX_XQUERY_ENGINE_H_
#define XFLUX_XQUERY_ENGINE_H_

#include <memory>
#include <string>
#include <string_view>

#include "core/pipeline.h"
#include "core/protocol_guard.h"
#include "core/result_display.h"
#include "core/trace_sink.h"
#include "util/status.h"
#include "xquery/compiler.h"
#include "xquery/session_builder.h"

namespace xflux {

/// A compiled query wired to a live result display.  Feed events (or whole
/// documents) and read the continuously-maintained answer.
class QuerySession {
 public:
  /// Everything configurable about a session, in one place — the same
  /// struct QueryServer::Register takes (see session_builder.h for the
  /// field docs and for which knobs a server scopes differently).
  using Options = QueryOptions;

  /// Compiles `query` and attaches a display, per `options`.
  static StatusOr<std::unique_ptr<QuerySession>> Open(
      std::string_view query, const Options& options);
  static StatusOr<std::unique_ptr<QuerySession>> Open(std::string_view query);

  /// Pushes one source event.
  void Push(Event event) { pipeline_->Push(std::move(event)); }
  void PushAll(const EventVec& events) { pipeline_->PushAll(events); }

  /// Tokenizes and pushes a whole XML document (emits sS/eS brackets).
  Status PushDocument(std::string_view xml);

  /// Drains a threaded run — flushes in-flight batches, joins the workers
  /// and folds their metrics/registry shards into the session-visible
  /// services — then returns status().  No-op (beyond the status read) in
  /// serial mode; idempotent.  After Finish the session dispatches any
  /// further events serially.
  Status Finish() {
    pipeline_->Finish();
    return status();
  }

  /// The current answer text.
  StatusOr<std::string> CurrentText() const { return display_->CurrentText(); }
  EventVec CurrentEvents() const { return display_->CurrentEvents(); }

  Pipeline* pipeline() { return pipeline_.get(); }
  ResultDisplay* display() { return display_.get(); }
  StreamId source_id() const { return source_id_; }

  /// Whole-pipeline counters and per-stage records (the latter only
  /// advance with Options::instrumentation on).
  Metrics* metrics() { return pipeline_->context()->metrics(); }
  StatsRegistry* stats() { return pipeline_->context()->stats(); }

  /// The trace tap, or nullptr when Options::trace_capacity was 0.
  TraceSink* trace() { return trace_; }

  /// The protocol guard, or nullptr when Options::guard was false.
  ProtocolGuard* guard() { return guard_; }

  /// The annotated plan the session was lowered from (immunity verdicts,
  /// selectivities, lowered stage ids — see plan.h), or nullptr when
  /// Options::optimize was false.
  const PlanNode* plan() const { return plan_.get(); }

  /// Errors latched by the display (protocol violations).
  const Status& display_status() const { return display_->status(); }

  /// The session's combined health: the pipeline's sticky first error
  /// (guard fail-fast, stage-reported corruption) or, failing that, the
  /// display's latched protocol error.  OK means the answer is live.
  const Status& status() const {
    return pipeline_->status().ok() ? display_->status() : pipeline_->status();
  }

 private:
  QuerySession() = default;

  std::unique_ptr<Pipeline> pipeline_;
  std::unique_ptr<ResultDisplay> display_;
  TraceSink* trace_ = nullptr;       // owned by the pipeline
  ProtocolGuard* guard_ = nullptr;   // owned by the pipeline
  PlanPtr plan_;                     // optimized opens only
  StreamId source_id_ = 0;
};

/// Parses `query`, evaluates it over `xml`, and returns the final answer —
/// the simplest way to use the engine.
StatusOr<std::string> RunQueryOnXml(std::string_view query,
                                    std::string_view xml);

}  // namespace xflux

#endif  // XFLUX_XQUERY_ENGINE_H_
