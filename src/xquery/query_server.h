// Shared multi-query execution over one update stream (ROADMAP item 1;
// DESIGN.md §9).
//
// N standing queries over the same stream mostly differ in their tails:
// the leading descendant/child spine — the part the paper's SPEX
// comparator evaluates as an automaton prefix — is shared vocabulary
// (`X//europe//item[location="Albania"]/…`).  A QueryServer exploits
// that: each registered query is split into a shareable leading spine and
// a private residual (SplitForSharedPrefix), the spines are merged into a
// prefix DAG keyed by canonical `(op, Symbol)` signatures (SpexPrefixDag),
// and every input batch is dispatched exactly once per DAG node.  Each DAG
// node runs the exact stage group the standalone compiler would have
// emitted (CompilePrefixStep), rooted at stream 0 on both sides, so
// chaining nodes and then a query's suffix pipeline reproduces the
// standalone session's event stream — and therefore its answer — byte for
// byte.  A FanoutSink at each node hands the node's output to every
// consumer in deterministic registration order; each fan-out edge buffers
// (BatchTap) and is flushed once per source batch, so cross-pipeline
// hand-off cost is paid per batch, not per event.  Registrations that are
// identical end to end share their suffix runtime outright (SuffixRuntime)
// — result sharing on top of prefix sharing.
//
// Queries whose guard/accept configuration differs cannot share a stream
// (a kDropRegion guard rewrites what its queries see), so the server
// groups registrations into *stream classes*: one optional ProtocolGuard
// plus one prefix DAG per distinct (guard, guard options,
// accept_source_updates) tuple.  A guard failure poisons its class only;
// sibling queries in other classes — and other queries' suffixes in the
// same class — keep running (suffix errors stay per-suffix).
//
// Id management: every pipeline segment mints region ids from a disjoint
// band — prefix nodes at depth d from
// [kNodeBandBase + d·kNodeBandSpan, …), suffixes from kSuffixFirstDynamicId
// up — so an id observed downstream means the same thing it meant in the
// segment that minted it.  Segment-crossing registry knowledge that does
// not travel with events (SetImmutable/AddPartner declarations, raw
// source-event bookkeeping) is forwarded explicitly: per-node fact buses
// deliver stage-asserted facts to the node's transitive consumers, and the
// server replays source update-bracket/freeze bookkeeping into every
// member context of a class before dispatching the batch — the same
// full-push lookahead a serial session's root loop provides.

#ifndef XFLUX_XQUERY_QUERY_SERVER_H_
#define XFLUX_XQUERY_QUERY_SERVER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/fanout_sink.h"
#include "core/pipeline.h"
#include "core/protocol_guard.h"
#include "core/result_display.h"
#include "core/trace_sink.h"
#include "spex/spex_engine.h"
#include "util/error_channel.h"
#include "util/metrics.h"
#include "util/stage_stats.h"
#include "util/status.h"
#include "xquery/compiler.h"
#include "xquery/session_builder.h"

namespace xflux {

class QueryServer;

/// A buffering edge between a fan-out point and a consumer pipeline.
/// Events accumulate as the producer emits; the server delivers the
/// buffer with one PushSegment per source batch (Flush).  Each consumer
/// still observes exactly the sequence the producer emitted, event by
/// event — buffering only amortizes the per-event cross-pipeline entry
/// cost, it never introduces registry lookahead (see PushSegment).
class BatchTap : public EventSink {
 public:
  explicit BatchTap(Pipeline* pipeline) : pipeline_(pipeline) {}

  void Accept(Event event) override { buffer_.push_back(std::move(event)); }
  void AcceptBatch(EventBatch batch) override {
    if (buffer_.empty()) {
      buffer_ = std::move(batch);
    } else {
      buffer_.insert(buffer_.end(), std::make_move_iterator(batch.begin()),
                     std::make_move_iterator(batch.end()));
    }
  }

  /// Delivers everything buffered since the last flush; no-op when empty.
  void Flush() {
    if (buffer_.empty()) return;
    EventBatch out = std::move(buffer_);
    buffer_.clear();
    pipeline_->PushSegment(std::move(out));
  }

 private:
  Pipeline* pipeline_;
  EventBatch buffer_;
};

/// Accumulates a pipeline segment's output between flushes, so a fan-out
/// point receives one AcceptBatch per source batch instead of one
/// virtual Accept per event per consumer.
class CollectorSink : public EventSink {
 public:
  void Accept(Event event) override { buffer_.push_back(std::move(event)); }
  void AcceptBatch(EventBatch batch) override {
    if (buffer_.empty()) {
      buffer_ = std::move(batch);
    } else {
      buffer_.insert(buffer_.end(), std::make_move_iterator(batch.begin()),
                     std::make_move_iterator(batch.end()));
    }
  }

  /// Hands everything collected to `sink` as one batch; no-op when empty.
  void DrainInto(EventSink* sink) {
    if (buffer_.empty()) return;
    EventBatch out = std::move(buffer_);
    buffer_.clear();
    sink->AcceptBatch(std::move(out));
  }

 private:
  EventBatch buffer_;
};

/// One materialized residual pipeline with its display — the private part
/// of a registered query.  Registrations that are byte-identical in
/// suffix-relevant configuration (query text, display options,
/// instrumentation, trace capacity) within one stream class share a
/// single runtime: their handles expose the same pipeline/display (and
/// therefore the same answer object), and the suffix work is paid once.
struct SuffixRuntime {
  std::string key;  ///< query text + suffix-relevant options tuple
  std::unique_ptr<Pipeline> pipe;
  std::unique_ptr<BatchTap> tap;  ///< parent fanout → suffix bridge
  std::unique_ptr<ResultDisplay> display;
  TraceSink* trace = nullptr;  ///< owned by the pipeline; may be null
  size_t handle_count = 0;     ///< handles sharing this runtime
};

/// Lowest id a shared prefix node at depth 0 allocates from; depth d nodes
/// use kNodeBandBase + d * kNodeBandSpan.  Must clear the source id range
/// and the construction span of any default-banded pipeline.
inline constexpr StreamId kNodeBandBase = 1u << 26;
inline constexpr StreamId kNodeBandSpan = 1u << 25;
/// Id band shared by every per-query suffix pipeline, above all node
/// bands.  Suffixes of different queries never exchange events, so one
/// band serves them all.
inline constexpr StreamId kSuffixFirstDynamicId = 1u << 31;

/// One registered query's view of the server: the same answer / status /
/// metrics surface a QuerySession exposes, plus what the query shares.
/// Owned by the server; valid until the server is destroyed.
class QueryHandle {
 public:
  const std::string& query() const { return query_; }

  /// The current answer text / events.  Handles of identical
  /// registrations read from one shared display (see SuffixRuntime).
  StatusOr<std::string> CurrentText() const {
    return suffix_->display->CurrentText();
  }
  EventVec CurrentEvents() const { return suffix_->display->CurrentEvents(); }

  /// This query's combined health, worst-first: a server-level error, the
  /// stream class's guard error, an error in a shared prefix node on this
  /// query's path, the suffix pipeline's first error, or the display's
  /// latched protocol error.  OK means the answer is live.
  const Status& status() const;

  /// The query's suffix pipeline (its metrics/stats cover the suffix
  /// stages only; shared-prefix work is accounted at the server).  Shared
  /// with any handle registered identically — see shares_suffix().
  Pipeline* pipeline() { return suffix_->pipe.get(); }
  ResultDisplay* display() { return suffix_->display.get(); }
  Metrics* metrics() { return suffix_->pipe->context()->metrics(); }
  StatsRegistry* stats() { return suffix_->pipe->context()->stats(); }

  /// True when another identical registration shares this query's suffix
  /// runtime (pipeline, display, metrics).
  bool shares_suffix() const { return suffix_->handle_count > 1; }

  /// The trace tap, or nullptr when Options::trace_capacity was 0.
  TraceSink* trace() { return suffix_->trace; }

  /// The *shared* protocol guard of this query's stream class, or nullptr
  /// when the query registered unguarded.
  ProtocolGuard* guard();

  /// Errors latched by the display (protocol violations).
  const Status& display_status() const { return suffix_->display->status(); }

  /// The canonical signatures of the prefix ops this query shares, in
  /// execution order; empty when nothing was extractable.
  const std::vector<std::string>& prefix_signature() const {
    return prefix_signature_;
  }
  /// Stages the shared DAG runs on this query's behalf (its path through
  /// the prefix), vs the stages in its private suffix.
  size_t shared_stage_count() const { return shared_stage_count_; }
  size_t suffix_stage_count() const { return suffix_->pipe->stage_count(); }

 private:
  friend class QueryServer;
  QueryHandle() = default;

  QueryServer* server_ = nullptr;
  size_t class_index_ = 0;
  std::vector<size_t> path_;       // DAG node ids, execution order
  SuffixRuntime* suffix_ = nullptr;  // owned by the stream class
  std::string query_;
  std::vector<std::string> prefix_signature_;
  size_t shared_stage_count_ = 0;
};

/// Executes N registered queries over one input stream, evaluating shared
/// leading work once.  Usage:
///
///   QueryServer server;
///   auto* q1 = server.Register("X//item[location=\"Albania\"]/quantity");
///   auto* q2 = server.Register("X//item[location=\"Albania\"]/name");
///   server.PushDocument(xml);           // one pass, both answers
///   q1.value()->CurrentText();
///
/// Registration must complete before the first event (the fan-out wiring
/// freezes at streaming start).  Dispatch is serial: sharing, not thread
/// parallelism, is where the aggregate speedup comes from — see
/// session_builder.h for which QueryOptions knobs the server overrides.
class QueryServer {
 public:
  QueryServer();
  ~QueryServer();
  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// Compiles and wires one query; the handle stays valid for the
  /// server's lifetime.  Fails after streaming has started.
  StatusOr<QueryHandle*> Register(std::string_view query,
                                  const QueryOptions& options = {});

  size_t query_count() const { return handles_.size(); }
  QueryHandle* handle(size_t i) { return handles_[i].get(); }

  /// Injects source events; each batch traverses every shared prefix node
  /// exactly once.  All registered queries consume the same stream.
  void Push(Event event);
  void PushBatch(EventBatch batch);
  void PushAll(const EventVec& events);

  /// Tokenizes and pushes a whole XML document (stream 0, sS/eS
  /// brackets).  Returns the first parse or server error.
  Status PushDocument(std::string_view xml);

  /// End-of-input: lets every stream class's guard close truncated
  /// regions, then returns status().
  Status Finish();

  /// Server-level health (registration/parse failures).  Per-query health
  /// lives on the handles — one query's guard escalation does not poison
  /// the server.
  const Status& status() const { return errors_.status(); }

  StreamId source_id() const { return 0; }

  /// Work-sharing rollup across all stream classes.
  struct SharingStats {
    size_t queries = 0;
    size_t classes = 0;
    size_t prefix_nodes = 0;       ///< distinct shared DAG nodes
    size_t prefix_stages = 0;      ///< dedup'd stages those nodes run
    size_t distinct_suffixes = 0;  ///< suffix runtimes after dedup
    size_t suffix_stages = 0;      ///< stages across distinct suffixes
    uint64_t prefix_ops_seen = 0;  ///< spine ops offered at Register time
    uint64_t prefix_ops_reused = 0;  ///< … that landed on existing nodes
    /// Shared-prefix hit ratio: reused / seen, 0 while empty.
    double HitRatio() const {
      return prefix_ops_seen == 0 ? 0.0
                                  : static_cast<double>(prefix_ops_reused) /
                                        static_cast<double>(prefix_ops_seen);
    }
  };
  SharingStats sharing() const;

  /// Counters summed over every segment the server runs: class guards,
  /// shared prefix nodes, and all per-query suffixes (incl. displays).
  Metrics AggregateMetrics() const;

  /// Two-level stats rollup: one row per shared node stage (prefixed with
  /// its DAG signature), plus per-stage rows aggregated across all
  /// suffixes by stage name ("suffix/<name>", StageStats::MergeFrom).
  /// Counters only advance for queries registered with instrumentation.
  StatsRegistry BuildStats() const;

  /// The server-level stats table `xflux_inspect --server` prints:
  /// sharing summary plus the BuildStats rows.
  std::string StatsTable() const;

  /// Server rollup as one JSON object: sharing counters, aggregate
  /// metrics, and a per-query array (query, prefix signature, stage
  /// split, status).
  std::string ToJson() const;

 private:
  friend class QueryHandle;

  /// Delivers one prefix node's stage-asserted registry facts
  /// (SetImmutable / AddPartner) to the contexts consuming that node's
  /// output: its transitive descendant nodes and their suffixes.  Members
  /// only receive — suffixes have no bus installed, so nothing loops.
  class SubtreeBus : public FactBroadcaster {
   public:
    void AddMember(PipelineContext* ctx) { members_.push_back(ctx); }
    void Broadcast(const RegistryFact& fact) override;

   private:
    std::vector<PipelineContext*> members_;
  };

  /// One node of a class's prefix DAG (parallel to SpexPrefixDag ids).
  struct NodeRuntime {
    std::unique_ptr<Pipeline> pipe;
    std::unique_ptr<CollectorSink> out;  // the pipe's sink
    std::unique_ptr<FanoutSink> fanout;  // consumers; fed from `out`
    std::unique_ptr<BatchTap> tap;       // parent fanout → pipe bridge
    std::unique_ptr<SubtreeBus> bus;
    size_t depth = 0;
  };

  /// Queries sharing one input configuration: one optional guard, one
  /// prefix DAG, one fan-out root.
  struct StreamClass {
    std::string key;  // serialized (guard, guard options, accept) tuple
    bool accept_source_updates = true;
    std::unique_ptr<Pipeline> guard_pipe;  // nullptr when unguarded
    ProtocolGuard* guard = nullptr;        // owned by guard_pipe
    std::unique_ptr<FanoutSink> root_fanout;
    SpexPrefixDag dag;
    /// nodes[id] for DAG node id; [0] (the root) stays null.  Trie
    /// children always carry a larger id than their parent, so ascending
    /// id order is a topological order — FlushTaps relies on that.
    std::vector<std::unique_ptr<NodeRuntime>> nodes;
    /// Distinct suffix runtimes, in first-registration order (dedup key
    /// in SuffixRuntime::key).
    std::vector<std::unique_ptr<SuffixRuntime>> suffixes;
    /// Every context fed from this class (guard, nodes, suffixes): the
    /// targets of the per-push raw source-event bookkeeping replay.
    std::vector<PipelineContext*> members;
  };

  StreamClass* ClassFor(const QueryOptions& options);

  /// Drains every buffered fan-out edge of `cls`, parents before
  /// children (ascending node id), suffixes last — one call delivers a
  /// whole source batch through the entire DAG.
  static void FlushTaps(StreamClass& cls);

  /// Replays one raw source event's registry effects into every member
  /// context of `cls` — the cross-pipeline equivalent of the serial root
  /// loop in Pipeline::PushBatch, including the born-fixed rule when the
  /// class rejects source updates.  Only sS / update-start / freeze events
  /// touch registries, so plain element/text traffic pays nothing here.
  static void ApplySourceBookkeeping(StreamClass& cls, const Event& e);

  std::vector<std::unique_ptr<StreamClass>> classes_;
  std::vector<std::unique_ptr<QueryHandle>> handles_;
  ErrorChannel errors_;
  bool started_ = false;
  bool any_instrumentation_ = false;
};

}  // namespace xflux

#endif  // XFLUX_XQUERY_QUERY_SERVER_H_
