#include "xquery/engine.h"

#include <cstdio>

#include "xml/sax_parser.h"

namespace xflux {

StatusOr<std::unique_ptr<QuerySession>> QuerySession::Open(
    std::string_view query, const Options& options) {
  auto compiled = CompileQuery(query, options.first_dynamic_id);
  if (!compiled.ok()) return compiled.status();
  auto session = std::unique_ptr<QuerySession>(new QuerySession());
  session->pipeline_ = std::move(compiled.value().pipeline);
  session->source_id_ = compiled.value().source_id;
  Pipeline* pipeline = session->pipeline_.get();
  pipeline->set_accept_source_updates(options.accept_source_updates);
  pipeline->context()->set_instrumentation(options.instrumentation);
  if (options.trace_capacity > 0) {
    session->trace_ = pipeline->AddStage<TraceSink>(
        pipeline->context(),
        TraceSink::Options{options.trace_capacity, "trace"});
  }
  if (options.guard) {
    auto guard = std::make_unique<ProtocolGuard>(pipeline->context(),
                                                 options.guard_options);
    session->guard_ = guard.get();
    pipeline->InsertFront(std::move(guard));
  }
  session->display_ = std::make_unique<ResultDisplay>(
      options.display, pipeline->context()->metrics());
  if (session->trace_ != nullptr) {
    TraceSink* trace = session->trace_;
    session->display_->SetOnError([trace](const Status& status) {
      std::fprintf(stderr, "display protocol error: %s\n%s",
                   status.ToString().c_str(), trace->Dump().c_str());
    });
  }
  pipeline->SetSink(session->display_.get());
  if (options.threads > 0) {
    ParallelOptions parallel;
    parallel.threads = options.threads;
    parallel.queue_capacity = options.queue_capacity;
    parallel.batch_events = options.batch_events;
    pipeline->EnableParallel(parallel);
  }
  return session;
}

StatusOr<std::unique_ptr<QuerySession>> QuerySession::Open(
    std::string_view query) {
  return Open(query, Options());
}

StatusOr<std::unique_ptr<QuerySession>> QuerySession::Open(
    std::string_view query, const ResultDisplay::Options& display_options) {
  Options options;
  options.display = display_options;
  return Open(query, options);
}

Status QuerySession::PushDocument(std::string_view xml) {
  PipelineSource source(pipeline_.get());
  SaxParser::Options options;
  options.stream_id = source_id_;
  options.errors = pipeline_->context()->errors();
  SaxParser parser(options, &source);
  Status parse = parser.Feed(xml);
  if (parse.ok()) parse = parser.Finish();
  // A threaded run must always drain — even when parsing failed — so no
  // worker outlives this call's stream and the answer below is settled.
  pipeline_->Finish();
  XFLUX_RETURN_IF_ERROR(parse);
  return status();
}

StatusOr<std::string> RunQueryOnXml(std::string_view query,
                                    std::string_view xml) {
  auto session = QuerySession::Open(query);
  if (!session.ok()) return session.status();
  XFLUX_RETURN_IF_ERROR(session.value()->PushDocument(xml));
  return session.value()->CurrentText();
}

}  // namespace xflux
