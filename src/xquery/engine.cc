#include "xquery/engine.h"

#include "xml/sax_parser.h"

namespace xflux {

StatusOr<std::unique_ptr<QuerySession>> QuerySession::Open(
    std::string_view query, const ResultDisplay::Options& display_options) {
  auto compiled = CompileQuery(query);
  if (!compiled.ok()) return compiled.status();
  auto session = std::unique_ptr<QuerySession>(new QuerySession());
  session->pipeline_ = std::move(compiled.value().pipeline);
  session->source_id_ = compiled.value().source_id;
  session->display_ = std::make_unique<ResultDisplay>(
      display_options, session->pipeline_->context()->metrics());
  session->pipeline_->SetSink(session->display_.get());
  return session;
}

Status QuerySession::PushDocument(std::string_view xml) {
  PipelineSource source(pipeline_.get());
  SaxParser::Options options;
  options.stream_id = source_id_;
  SaxParser parser(options, &source);
  XFLUX_RETURN_IF_ERROR(parser.Feed(xml));
  XFLUX_RETURN_IF_ERROR(parser.Finish());
  return display_->status();
}

StatusOr<std::string> RunQueryOnXml(std::string_view query,
                                    std::string_view xml) {
  auto session = QuerySession::Open(query);
  if (!session.ok()) return session.status();
  XFLUX_RETURN_IF_ERROR(session.value()->PushDocument(xml));
  return session.value()->CurrentText();
}

}  // namespace xflux
