#include "xquery/engine.h"

#include "xml/sax_parser.h"

namespace xflux {

namespace {

OptimizerOptions OptimizerFrom(const QueryOptions& options) {
  OptimizerOptions opt;
  opt.enabled = options.optimize;
  opt.schema = options.schema;
  opt.cost_profile = options.cost_profile;
  opt.reorder = options.optimize_reorder;
  opt.independence = options.optimize_independence;
  return opt;
}

}  // namespace

StatusOr<std::unique_ptr<QuerySession>> QuerySession::Open(
    std::string_view query, const Options& options) {
  PlanPtr plan;
  auto compiled =
      options.optimize
          ? CompileQueryOptimized(query, OptimizerFrom(options),
                                  options.first_dynamic_id, &plan)
          : CompileQuery(query, options.first_dynamic_id);
  if (!compiled.ok()) return compiled.status();
  auto session = std::unique_ptr<QuerySession>(new QuerySession());
  session->plan_ = std::move(plan);
  session->pipeline_ = std::move(compiled.value().pipeline);
  session->source_id_ = compiled.value().source_id;
  SessionWiring wiring = WireSessionPipeline(session->pipeline_.get(), options);
  session->display_ = std::move(wiring.display);
  session->trace_ = wiring.trace;
  session->guard_ = wiring.guard;
  return session;
}

StatusOr<std::unique_ptr<QuerySession>> QuerySession::Open(
    std::string_view query) {
  return Open(query, Options());
}

Status QuerySession::PushDocument(std::string_view xml) {
  PipelineSource source(pipeline_.get());
  SaxParser::Options options;
  options.stream_id = source_id_;
  options.errors = pipeline_->context()->errors();
  SaxParser parser(options, &source);
  Status parse = parser.Feed(xml);
  if (parse.ok()) parse = parser.Finish();
  // A threaded run must always drain — even when parsing failed — so no
  // worker outlives this call's stream and the answer below is settled.
  pipeline_->Finish();
  XFLUX_RETURN_IF_ERROR(parse);
  return status();
}

StatusOr<std::string> RunQueryOnXml(std::string_view query,
                                    std::string_view xml) {
  auto session = QuerySession::Open(query);
  if (!session.ok()) return session.status();
  XFLUX_RETURN_IF_ERROR(session.value()->PushDocument(xml));
  return session.value()->CurrentText();
}

}  // namespace xflux
