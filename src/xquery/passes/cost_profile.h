// Measured selectivities for the predicate-reorder pass.
//
// A CostProfile maps condition keys — the TextCompare stage names a query
// compiles to, e.g. `eq("Albania")` or `contains("Creditcard")` — to the
// fraction of evaluations that matched.  Profiles are seeded from a prior
// run's `BENCH_*.json` (or any StatsRegistry::ToJson dump): a TextCompare
// row's out_simple / in_simple ratio is exactly the fraction of condition
// values that produced a non-empty verdict, which is the selectivity of
// the predicate it feeds.
//
// The loader is a tolerant scanner, not a JSON validator: it walks the
// text for `"name"` string fields and attributes the nearest following
// `in_simple` / `out_simple` numbers to that stage.  Rows that are not
// compare stages, malformed fragments, and unrelated JSON simply
// contribute nothing — a missing or garbage profile degrades to the
// heuristic defaults, never to an error at query time.

#ifndef XFLUX_XQUERY_PASSES_COST_PROFILE_H_
#define XFLUX_XQUERY_PASSES_COST_PROFILE_H_

#include <map>
#include <string>
#include <string_view>

#include "util/status.h"
#include "xquery/plan.h"

namespace xflux {

/// See file comment.
class CostProfile {
 public:
  /// Records (or overwrites) the selectivity for a condition key.
  void Set(const std::string& key, double selectivity) {
    selectivity_[key] = selectivity;
  }

  bool Has(const std::string& key) const {
    return selectivity_.count(key) > 0;
  }

  /// The recorded selectivity, or `fallback` when the key is unknown.
  double Lookup(const std::string& key, double fallback) const {
    auto it = selectivity_.find(key);
    return it == selectivity_.end() ? fallback : it->second;
  }

  size_t size() const { return selectivity_.size(); }

  /// Scans a BENCH_*.json / StatsRegistry::ToJson text for compare-stage
  /// rows and merges their measured selectivities (see file comment).
  /// Returns the number of keys merged.
  size_t MergeBenchJson(std::string_view json);

  /// Reads `path` and merges it; fails only on I/O errors (unparseable
  /// content merges zero keys, by design).
  static StatusOr<CostProfile> LoadFromFile(const std::string& path);

 private:
  std::map<std::string, double> selectivity_;
};

/// The profile key for a condition node (kCompare): the exact name of the
/// TextCompare stage its lowering emits.
std::string ConditionProfileKey(const PlanNode& compare);

}  // namespace xflux

#endif  // XFLUX_XQUERY_PASSES_COST_PROFILE_H_
