// The optimizer pass layer: analysis / rewrite passes over the plan IR.
//
// Pass contract (pinned by DESIGN.md §10 and the pass-manager tests):
//
//  - a pass mutates only annotation slots and/or permutes provably
//    commuting subtrees; it never changes what the query computes,
//  - a pass must be a no-op (beyond annotations) when its enabling inputs
//    are absent — no Schema means no immunity marks, no CostProfile means
//    heuristic selectivities only,
//  - annotations are monotone hints for lowering: a plan with all
//    annotations at their defaults lowers byte-identically to the direct
//    AST compilation, so "passes off" is always a valid (just slower)
//    configuration,
//  - passes run in the order they were added; each sees the previous
//    pass's rewrites.

#ifndef XFLUX_XQUERY_PASSES_PASS_H_
#define XFLUX_XQUERY_PASSES_PASS_H_

#include <memory>
#include <string>
#include <vector>

#include "xquery/plan.h"

namespace xflux {

class Schema;
class CostProfile;

/// Inputs shared by all passes of one run.
struct PassContext {
  /// Document schema; nullptr disables schema-dependent analysis.
  const Schema* schema = nullptr;
  /// Measured selectivities from a prior run; nullptr falls back to
  /// per-operator heuristics.
  const CostProfile* profile = nullptr;
};

/// See file comment for the contract.
class Pass {
 public:
  virtual ~Pass() = default;
  virtual std::string name() const = 0;
  virtual void Run(PlanNode& plan, const PassContext& context) = 0;
};

/// Runs passes in registration order.
class PassManager {
 public:
  void Add(std::unique_ptr<Pass> pass) { passes_.push_back(std::move(pass)); }

  void Run(PlanNode& plan, const PassContext& context) {
    for (auto& pass : passes_) pass->Run(plan, context);
  }

  size_t size() const { return passes_.size(); }

  /// The standard optimizer pipeline: predicate reorder (rewrites the
  /// plan shape) followed by update independence (annotates the final
  /// shape).  Either pass can be toggled for ablation runs.
  static PassManager Standard(bool reorder, bool independence);

 private:
  std::vector<std::unique_ptr<Pass>> passes_;
};

}  // namespace xflux

#endif  // XFLUX_XQUERY_PASSES_PASS_H_
