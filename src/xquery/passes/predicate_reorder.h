// The stats-driven predicate-reorder pass (ROADMAP item 3b's compile-time
// half; cf. hyrise's performance_data-driven operator reordering).
//
// Adjacent predicates over the same item commute when each condition is a
// kCompare over a forward relative path — evaluation is confined to the
// item's own content, so applying them in any order keeps exactly the
// same items.  For every such chain (nested kFilter nodes, and the filter
// chain a FLWOR peels off its `in` clause) the pass permutes the
// *condition subtrees* among the fixed chain of filter nodes so the most
// selective condition runs first, estimated from the PassContext's
// CostProfile (a prior run's measured TextCompare hit rates) with
// per-match-kind heuristic fallbacks.
//
// Chains containing any non-commuting member (backward axes, non-compare
// conditions, FLWOR-variable references) are left untouched, as are
// chains already in best order — only genuinely permuted filter nodes get
// `reordered = true`, which is what tells lowering to pre-allocate the
// group's condition ids in source-ordinal order (see compiler.cc).

#ifndef XFLUX_XQUERY_PASSES_PREDICATE_REORDER_H_
#define XFLUX_XQUERY_PASSES_PREDICATE_REORDER_H_

#include "xquery/passes/pass.h"

namespace xflux {

/// Heuristic selectivities used when no profile entry matches.
inline constexpr double kEqualsSelectivity = 0.1;
inline constexpr double kContainsSelectivity = 0.3;
inline constexpr double kExistsSelectivity = 0.5;

/// See file comment.
class PredicateReorderPass : public Pass {
 public:
  std::string name() const override { return "predicate-reorder"; }
  void Run(PlanNode& plan, const PassContext& context) override;
};

}  // namespace xflux

#endif  // XFLUX_XQUERY_PASSES_PREDICATE_REORDER_H_
