#include "xquery/passes/pass.h"

#include "xquery/passes/predicate_reorder.h"
#include "xquery/passes/update_independence.h"

namespace xflux {

PassManager PassManager::Standard(bool reorder, bool independence) {
  PassManager manager;
  // Reorder first: independence annotates the plan's final shape.
  if (reorder) manager.Add(std::make_unique<PredicateReorderPass>());
  if (independence) manager.Add(std::make_unique<UpdateIndependencePass>());
  return manager;
}

}  // namespace xflux
