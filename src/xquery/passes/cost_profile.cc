#include "xquery/passes/cost_profile.h"

#include <cctype>
#include <fstream>
#include <sstream>

namespace xflux {

namespace {

// Reads one JSON string starting at the opening quote `pos`; returns the
// unescaped value and leaves `pos` just past the closing quote.  Returns
// false on an unterminated string (scan stops there).
bool ReadJsonString(std::string_view json, size_t* pos, std::string* out) {
  out->clear();
  size_t i = *pos + 1;  // skip opening quote
  while (i < json.size()) {
    char c = json[i];
    if (c == '"') {
      *pos = i + 1;
      return true;
    }
    if (c == '\\' && i + 1 < json.size()) {
      char esc = json[i + 1];
      switch (esc) {
        case 'n': out->push_back('\n'); break;
        case 't': out->push_back('\t'); break;
        case 'r': out->push_back('\r'); break;
        default: out->push_back(esc); break;  // \" \\ \/ and friends
      }
      i += 2;
      continue;
    }
    out->push_back(c);
    ++i;
  }
  return false;
}

size_t SkipWhitespace(std::string_view json, size_t pos) {
  while (pos < json.size() &&
         std::isspace(static_cast<unsigned char>(json[pos]))) {
    ++pos;
  }
  return pos;
}

bool IsCompareStageName(const std::string& name) {
  return name.rfind("eq(\"", 0) == 0 || name.rfind("contains(\"", 0) == 0;
}

}  // namespace

size_t CostProfile::MergeBenchJson(std::string_view json) {
  // Accumulated in/out counts per compare stage; multiple rows for the
  // same stage name (several benches in one file) pool their counts.
  std::map<std::string, std::pair<double, double>> counts;
  std::string current_name;
  size_t pos = 0;
  while (pos < json.size()) {
    if (json[pos] != '"') {
      ++pos;
      continue;
    }
    std::string key;
    if (!ReadJsonString(json, &pos, &key)) break;
    size_t after = SkipWhitespace(json, pos);
    if (after >= json.size() || json[after] != ':') continue;
    after = SkipWhitespace(json, after + 1);
    if (after >= json.size()) break;
    if (key == "name") {
      if (json[after] != '"') continue;
      pos = after;
      if (!ReadJsonString(json, &pos, &current_name)) break;
      continue;
    }
    if (key != "in_simple" && key != "out_simple") continue;
    if (!IsCompareStageName(current_name)) continue;
    double value = 0;
    size_t end = after;
    while (end < json.size() &&
           (std::isdigit(static_cast<unsigned char>(json[end])) ||
            json[end] == '.' || json[end] == '-' || json[end] == '+' ||
            json[end] == 'e' || json[end] == 'E')) {
      ++end;
    }
    if (end == after) continue;
    value = std::stod(std::string(json.substr(after, end - after)));
    auto& entry = counts[current_name];
    (key == "in_simple" ? entry.first : entry.second) += value;
    pos = end;
  }

  size_t merged = 0;
  for (const auto& [name, in_out] : counts) {
    if (in_out.first <= 0) continue;
    double selectivity = in_out.second / in_out.first;
    if (selectivity < 0) selectivity = 0;
    if (selectivity > 1) selectivity = 1;
    Set(name, selectivity);
    ++merged;
  }
  return merged;
}

StatusOr<CostProfile> CostProfile::LoadFromFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::InvalidArgument("cannot open cost profile: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  CostProfile profile;
  profile.MergeBenchJson(buffer.str());
  return profile;
}

std::string ConditionProfileKey(const PlanNode& compare) {
  switch (compare.match) {
    case AstMatch::kEquals:
      return "eq(\"" + compare.name + "\")";
    case AstMatch::kContains:
      return "contains(\"" + compare.name + "\")";
    case AstMatch::kExists:
      // Existence lowers to contains("") — see Compiler::CompileCondition.
      return "contains(\"\")";
  }
  return "";
}

}  // namespace xflux
