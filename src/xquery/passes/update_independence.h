// The update-independence analysis pass (schema-based, compile-time
// fix/freeze — ROADMAP item 3a; cf. Koch et al.'s schema-based scheduling
// and Bidoit/Colazzo/Ulliana's type-based query-update independence).
//
// Given a document Schema, the pass computes for every plan node the
// *stream shape* reaching it — which element tags can appear as top-level
// items and anywhere in the content — and marks a node `immune` when
//
//   (1) its reachable content is disjoint from the schema's updatable
//       closure (no update bracket can ever wrap, create, or remove
//       anything the node's stages match), and
//   (2) its input is *pure*: no upstream node may mint revisable output
//       regions (an optimistic predicate's hide/show traffic is a
//       retroactive update in its own right, so anything downstream of a
//       non-immune predicate stays tracked).
//
// Soundness (the full argument is DESIGN.md §10): under (1), any update
// content that does flow through an immune stage is balanced markup with
// no stage-matched tags, so processing it against the live state is
// state-neutral and produces no output; every per-region snapshot the S5
// wrapper would have taken is value-equal to the live state, making every
// adjust / hide-fold the identity.  Eliding the wrapper therefore cannot
// change any observable output.  The first stage over the raw document is
// never immune while `updatable` is non-empty (the document's content
// closure intersects it by construction), so the tracked first stage keeps
// swallowing updates addressed to fixed regions before any immune stage
// sees them.
//
// Without a Schema in the PassContext the pass is a no-op.

#ifndef XFLUX_XQUERY_PASSES_UPDATE_INDEPENDENCE_H_
#define XFLUX_XQUERY_PASSES_UPDATE_INDEPENDENCE_H_

#include "xquery/passes/pass.h"

namespace xflux {

/// See file comment.
class UpdateIndependencePass : public Pass {
 public:
  std::string name() const override { return "update-independence"; }
  void Run(PlanNode& plan, const PassContext& context) override;
};

}  // namespace xflux

#endif  // XFLUX_XQUERY_PASSES_UPDATE_INDEPENDENCE_H_
