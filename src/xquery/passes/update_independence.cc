#include "xquery/passes/update_independence.h"

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "xquery/schema.h"

namespace xflux {

namespace {

// The stream shape reaching a plan node: which tags may appear as
// top-level items (`roots`) and anywhere in the content (`content`,
// a superset of roots), whether the analysis gave up (`any`), and whether
// the stream is free of upstream-minted revisable regions (`pure`).
struct Shape {
  bool any = false;
  std::set<std::string> roots;
  std::set<std::string> content;
  bool pure = true;
};

Shape GiveUp() {
  Shape s;
  s.any = true;
  s.pure = false;
  return s;
}

// True when the condition is a kCompare over a forward relative path —
// the only conditions whose evaluation is confined to the item's own
// content (so schema disjointness of the data stream covers them too).
// `loop_var` names the enclosing FLWOR's variable, which is exactly the
// context item for that FLWOR's tuple predicates; references to any
// *other* variable leave the item's scope and disqualify the path.
bool ForwardConditionPath(const PlanNode& n, const std::string& loop_var) {
  switch (n.kind) {
    case AstKind::kVarRef:
      return n.name.empty() || n.name == loop_var;
    case AstKind::kStream:
      return true;
    case AstKind::kStep:
      switch (n.axis) {
        case AstAxis::kChild:
        case AstAxis::kDescendant:
        case AstAxis::kAttribute:
        case AstAxis::kText:
          return ForwardConditionPath(*n.children[0], loop_var);
        default:
          return false;
      }
    default:
      return false;
  }
}

bool ReorderableCondition(const PlanNode& cmp,
                          const std::string& loop_var = std::string()) {
  return cmp.kind == AstKind::kCompare && cmp.children.size() == 1 &&
         ForwardConditionPath(*cmp.children[0], loop_var);
}

class Analyzer {
 public:
  explicit Analyzer(const Schema& schema) : schema_(schema) {
    doc_.roots.insert(schema.root());
    doc_.content = schema.ContentClosure(schema.root());
    doc_.content.insert(schema.root());
  }

  void Run(PlanNode& plan) { AnalyzeTop(plan); }

 private:
  bool Immune(const Shape& s) const {
    return !s.any && s.pure && schema_.UpdateDisjoint(s.content);
  }

  Shape AnalyzeTop(PlanNode& n) {
    switch (n.kind) {
      case AstKind::kElementCtor: {
        Shape content = AnalyzeTop(*n.children[0]);
        n.immune = Immune(content);
        return CtorShape(n, content);
      }
      case AstKind::kCount:
      case AstKind::kSum:
      case AstKind::kAvg: {
        Shape in = AnalyzeTop(*n.children[0]);
        n.immune = Immune(in);
        Shape out;
        out.any = in.any;
        // A revisable aggregate wraps its running value in a region.
        out.pure = in.pure && n.immune;
        return out;
      }
      case AstKind::kFlwor:
        return AnalyzeFlwor(n);
      case AstKind::kStream:
      case AstKind::kVarRef:
      case AstKind::kStep:
      case AstKind::kFilter:
        return AnalyzePath(n, doc_);
      default:
        return GiveUp();
    }
  }

  Shape AnalyzePath(PlanNode& n, const Shape& context) {
    switch (n.kind) {
      case AstKind::kStream:
      case AstKind::kVarRef:
        return context;
      case AstKind::kStep:
        return AnalyzeStep(n, context);
      case AstKind::kFilter:
        return AnalyzeFilter(n, context);
      default:
        return GiveUp();
    }
  }

  Shape AnalyzeStep(PlanNode& n, const Shape& context) {
    Shape in = AnalyzePath(*n.children[0], context);
    switch (n.axis) {
      case AstAxis::kParent:
      case AstAxis::kAncestor:
        // Backward steps consume clones of the raw source; nothing on
        // their output is proven about anything.
        n.immune = false;
        return GiveUp();
      default:
        break;
    }
    n.immune = Immune(in);
    if (in.any) return GiveUp();
    Shape out;
    out.pure = in.pure;
    switch (n.axis) {
      case AstAxis::kChild:
      case AstAxis::kAttribute: {
        std::string test =
            n.axis == AstAxis::kAttribute ? "@" + n.name : n.name;
        for (const std::string& r : in.roots) {
          for (const std::string& c : schema_.ChildrenOf(r)) {
            if (test == "*" || c == test) out.roots.insert(c);
          }
        }
        break;
      }
      case AstAxis::kDescendant:
        for (const std::string& t : in.content) {
          if (n.name == "*" || t == n.name) out.roots.insert(t);
        }
        break;
      case AstAxis::kText:
        // Text values only: no element structure flows on.
        return out;
      default:
        return GiveUp();  // unreachable
    }
    out.content = out.roots;
    for (const std::string& r : out.roots) {
      std::set<std::string> closure = schema_.ContentClosure(r);
      out.content.insert(closure.begin(), closure.end());
    }
    return out;
  }

  Shape AnalyzeFilter(PlanNode& n, const Shape& context) {
    Shape data = AnalyzePath(*n.children[0], context);
    PlanNode& cmp = *n.children[1];
    bool cond_ok = ReorderableCondition(cmp);
    if (cond_ok) {
      // Annotate the condition path's steps; they run on a clone of the
      // data stream, so the item shape is the data shape.
      AnalyzePath(*cmp.children[0], data);
    }
    n.immune = cond_ok && Immune(data);
    cmp.immune = n.immune;
    Shape out = data;
    // An optimistic predicate wraps every surviving item in a revisable
    // region (hide/show may arrive later): downstream loses purity.  The
    // eager (immune) variant drops items for good and mints nothing.
    out.pure = data.pure && n.immune;
    return out;
  }

  Shape AnalyzeFlwor(PlanNode& n) {
    PlanNode* in_node = n.children[static_cast<size_t>(n.in_child)].get();
    std::vector<PlanNode*> peeled;
    while (in_node->kind == AstKind::kFilter) {
      peeled.push_back(in_node);
      in_node = in_node->children[0].get();
    }
    std::reverse(peeled.begin(), peeled.end());

    Shape loop = AnalyzeTop(*in_node);
    n.immune = Immune(loop);  // governs the MakeTuples stage

    PlanNode& ret_node = *n.children[static_cast<size_t>(n.return_child)];
    Shape ret = AnalyzeReturn(ret_node, loop);
    // Sequence returns feed the tuple predicates several data branches;
    // the eager variant is only proven for the single-stream case.
    bool seq_return = ret_node.kind == AstKind::kSequence;

    if (n.orderby_child >= 0) {
      AnalyzePath(*n.children[static_cast<size_t>(n.orderby_child)], loop);
    }

    // Tuple predicates run in peeled order, then the where clause.  The
    // condition is read from a clone of the raw tuples (loop shape); the
    // buffered data is the constructed return output (ret shape).  A
    // non-immune predicate mints regions around every tuple, so every
    // later predicate — and everything above the FLWOR — loses purity.
    bool pure_so_far = true;
    auto mark_condition = [&](PlanNode* filter, PlanNode& cmp) {
      bool immune = ReorderableCondition(cmp, n.name) && Immune(loop) &&
                    !ret.any &&
                    ret.pure && schema_.UpdateDisjoint(ret.content) &&
                    !seq_return && pure_so_far;
      if (filter != nullptr) filter->immune = immune;
      cmp.immune = immune;
      if (cmp.children.size() == 1) AnalyzePath(*cmp.children[0], loop);
      if (!immune) pure_so_far = false;
    };
    for (PlanNode* pf : peeled) mark_condition(pf, *pf->children[1]);
    if (n.where_child >= 0) {
      mark_condition(nullptr,
                     *n.children[static_cast<size_t>(n.where_child)]);
    }

    Shape out = ret;
    out.pure = ret.pure && pure_so_far;
    if (n.orderby_child >= 0) out.pure = false;  // SortFilter: conservative
    return out;
  }

  Shape AnalyzeReturn(PlanNode& n, const Shape& loop) {
    switch (n.kind) {
      case AstKind::kVarRef:
        return loop;
      case AstKind::kStep:
      case AstKind::kFilter:
        return AnalyzePath(n, loop);
      case AstKind::kElementCtor: {
        Shape content = AnalyzeReturn(*n.children[0], loop);
        n.immune = Immune(content);
        return CtorShape(n, content);
      }
      case AstKind::kStringLiteral: {
        n.immune = Immune(loop);
        Shape out;
        out.pure = loop.pure;
        return out;
      }
      case AstKind::kSequence: {
        Shape out;
        bool all_immune = true;
        for (auto& c : n.children) {
          Shape branch = AnalyzeReturn(*c, loop);
          out.any = out.any || branch.any;
          out.pure = out.pure && branch.pure;
          out.roots.insert(branch.roots.begin(), branch.roots.end());
          out.content.insert(branch.content.begin(), branch.content.end());
          all_immune = all_immune && Immune(branch);
        }
        n.immune = !out.any && out.pure && all_immune;  // the ConcatOp
        out.pure = out.pure && n.immune;
        return out;
      }
      default:
        return GiveUp();
    }
  }

  Shape CtorShape(const PlanNode& n, const Shape& content) {
    Shape out = content;
    out.roots.clear();
    out.roots.insert(n.name);
    out.content.insert(n.name);
    return out;
  }

  const Schema& schema_;
  Shape doc_;
};

}  // namespace

void UpdateIndependencePass::Run(PlanNode& plan, const PassContext& context) {
  if (context.schema == nullptr) return;
  Analyzer(*context.schema).Run(plan);
}

}  // namespace xflux
