#include "xquery/passes/predicate_reorder.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "xquery/passes/cost_profile.h"

namespace xflux {

namespace {

bool ForwardConditionPath(const PlanNode& n) {
  switch (n.kind) {
    case AstKind::kVarRef:
      return n.name.empty();
    case AstKind::kStream:
      return true;
    case AstKind::kStep:
      switch (n.axis) {
        case AstAxis::kChild:
        case AstAxis::kDescendant:
        case AstAxis::kAttribute:
        case AstAxis::kText:
          return ForwardConditionPath(*n.children[0]);
        default:
          return false;
      }
    default:
      return false;
  }
}

bool Commutes(const PlanNode& cmp) {
  return cmp.kind == AstKind::kCompare && cmp.children.size() == 1 &&
         ForwardConditionPath(*cmp.children[0]);
}

double Estimate(const PlanNode& cmp, const PassContext& ctx) {
  double fallback = kExistsSelectivity;
  switch (cmp.match) {
    case AstMatch::kEquals: fallback = kEqualsSelectivity; break;
    case AstMatch::kContains: fallback = kContainsSelectivity; break;
    case AstMatch::kExists: fallback = kExistsSelectivity; break;
  }
  if (ctx.profile == nullptr) return fallback;
  return ctx.profile->Lookup(ConditionProfileKey(cmp), fallback);
}

// `head` is the topmost kFilter of a chain.  Chain nodes are fixed; only
// the condition subtrees move between them.
void HandleChain(PlanNode& head, const PassContext& ctx) {
  std::vector<PlanNode*> chain;  // top-down
  for (PlanNode* cur = &head; cur->kind == AstKind::kFilter;
       cur = cur->children[0].get()) {
    chain.push_back(cur);
  }
  // Execution order: the innermost filter's stages compile (and run)
  // first.
  std::reverse(chain.begin(), chain.end());

  bool all_commute = true;
  std::vector<double> sel(chain.size());
  for (size_t i = 0; i < chain.size(); ++i) {
    PlanNode& cmp = *chain[i]->children[1];
    all_commute = all_commute && Commutes(cmp);
    sel[i] = Estimate(cmp, ctx);
    cmp.selectivity = sel[i];
    chain[i]->selectivity = sel[i];
  }
  if (!all_commute || chain.size() < 2) return;

  std::vector<size_t> order(chain.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](size_t a, size_t b) { return sel[a] < sel[b]; });
  bool identity = true;
  for (size_t j = 0; j < order.size(); ++j) identity &= order[j] == j;
  if (identity) return;

  std::vector<PlanPtr> conds;
  conds.reserve(chain.size());
  for (PlanNode* f : chain) conds.push_back(std::move(f->children[1]));
  for (size_t j = 0; j < chain.size(); ++j) {
    chain[j]->children[1] = std::move(conds[order[j]]);
    chain[j]->selectivity = sel[order[j]];
    if (order[j] != j) chain[j]->reordered = true;
  }
}

void Visit(PlanNode& n, const PassContext& ctx) {
  if (n.kind == AstKind::kFilter) {
    // Generic recursion only reaches a kFilter at the top of its chain
    // (chain interiors are walked here, not by the loop below).
    HandleChain(n, ctx);
    PlanNode* cur = &n;
    while (cur->kind == AstKind::kFilter) {
      Visit(*cur->children[1], ctx);
      cur = cur->children[0].get();
    }
    Visit(*cur, ctx);
    return;
  }
  for (auto& c : n.children) Visit(*c, ctx);
}

}  // namespace

void PredicateReorderPass::Run(PlanNode& plan, const PassContext& context) {
  Visit(plan, context);
}

}  // namespace xflux
