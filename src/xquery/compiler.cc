#include "xquery/compiler.h"

#include <algorithm>
#include <deque>
#include <unordered_map>
#include <vector>

#include "core/transform_stage.h"
#include "ops/aggregates.h"
#include "ops/backward.h"
#include "ops/child_step.h"
#include "ops/clone.h"
#include "ops/concat.h"
#include "ops/descendant_step.h"
#include "ops/predicate.h"
#include "ops/sorter.h"
#include "ops/textops.h"
#include "ops/tuples.h"
#include "xquery/parser.h"
#include "xquery/passes/pass.h"

namespace xflux {

namespace {

// Counts backward steps so the source can be cloned before anything else
// consumes it ("cloning the stream source immediately after it is
// generated", Section VI-E).
int CountBackwardSteps(const PlanNode& n) {
  int count = 0;
  if (n.kind == AstKind::kStep &&
      (n.axis == AstAxis::kParent || n.axis == AstAxis::kAncestor)) {
    ++count;
  }
  for (const auto& c : n.children) count += CountBackwardSteps(*c);
  return count;
}

class Compiler {
 public:
  explicit Compiler(StreamId first_dynamic_id)
      : pipeline_(std::make_unique<Pipeline>(first_dynamic_id)) {}

  StatusOr<CompiledQuery> Run(PlanNode& plan) {
    PipelineContext* ctx = pipeline_->context();
    ctx->streams()->RegisterBase(kSource);
    int backward = CountBackwardSteps(plan);
    for (int i = 0; i < backward; ++i) {
      StreamId clone = NewBase();
      pipeline_->AddStage<CloneFilter>(ctx, kSource, clone);
      source_clones_.push_back(clone);
    }
    auto out = CompileTop(plan);
    if (!out.ok()) return out.status();
    CompiledQuery result;
    result.pipeline = std::move(pipeline_);
    result.source_id = kSource;
    return result;
  }

 private:
  static constexpr StreamId kSource = 0;
  using Roots = std::vector<StreamId>;

  PipelineContext* ctx() { return pipeline_->context(); }

  StreamId NewBase() {
    StreamId id = ctx()->NewStreamId();
    ctx()->streams()->RegisterBase(id);
    return id;
  }

  // Appends a stage lowering `n`: the update-independence verdict picks the
  // stage variant, and the stage index is recorded for --explain.
  void AddStage(std::unique_ptr<StateTransformer> op, PlanNode* n) {
    pipeline_->AddStage<TransformStage>(ctx(), std::move(op),
                                        n != nullptr && n->immune);
    RecordStage(n);
  }

  void RecordStage(PlanNode* n) {
    if (n != nullptr) n->stage_ids.push_back(pipeline_->stage_count() - 1);
  }

  // The deterministic-id contract for reordered predicate chains (see the
  // file comment in compiler.h): when the reorder pass permuted a chain,
  // every condition base id is allocated here — consecutively, in source-
  // ordinal order — before any of the chain's condition groups compile.
  // The allocation point and the ordinal order are both invariant under
  // the permutation, so a profile change that re-sorts the chain moves
  // stages around but every condition keeps its base stream id.  Chains
  // the pass left alone take the historical lazy allocations and stay
  // byte-identical to the passes-off compile.
  void PreallocateConditions(std::vector<PlanNode*> conds) {
    std::sort(conds.begin(), conds.end(),
              [](const PlanNode* a, const PlanNode* b) {
                return a->ordinal < b->ordinal;
              });
    for (PlanNode* c : conds) preallocated_cond_[c] = NewBase();
  }

  void MaybePreallocateChain(PlanNode& head) {
    if (preallocated_cond_.count(head.children[1].get()) != 0) {
      return;  // interior of a chain the head already handled
    }
    std::vector<PlanNode*> conds;
    bool reordered = false;
    for (PlanNode* f = &head; f->kind == AstKind::kFilter;
         f = f->children[0].get()) {
      conds.push_back(f->children[1].get());
      reordered = reordered || f->reordered;
    }
    if (reordered) PreallocateConditions(std::move(conds));
  }

  // Top-level expressions (whole-stream scope).  The result is the set of
  // base streams the output events root at.
  StatusOr<Roots> CompileTop(PlanNode& n) {
    switch (n.kind) {
      case AstKind::kElementCtor: {
        auto content = CompileTop(*n.children[0]);
        if (!content.ok()) return content.status();
        AddStage(std::make_unique<ElementConstruct>(
                     content.value(), n.name, ConstructScope::kWholeStream),
                 &n);
        return content;
      }
      case AstKind::kCount:
      case AstKind::kSum:
      case AstKind::kAvg: {
        auto in = CompileTop(*n.children[0]);
        if (!in.ok()) return in.status();
        if (n.kind == AstKind::kCount) {
          AddStage(std::make_unique<CountOp>(ctx(), in.value(),
                                             CountMode::kTopLevelElements),
                   &n);
        } else if (n.kind == AstKind::kSum) {
          AddStage(std::make_unique<SumOp>(ctx(), in.value()), &n);
        } else {
          AddStage(std::make_unique<AvgOp>(ctx(), in.value()), &n);
        }
        return in;
      }
      case AstKind::kFlwor:
        return CompileFlwor(n);
      case AstKind::kStream:
      case AstKind::kVarRef:
      case AstKind::kStep:
      case AstKind::kFilter: {
        auto out = CompilePathOn(n, kSource);
        if (!out.ok()) return out.status();
        return Roots{out.value()};
      }
      default:
        return Status::NotSupported("expression kind not supported here");
    }
  }

  // Paths: a step/filter chain; every leaf (stream or variable reference)
  // resolves to `context_stream`.
  StatusOr<StreamId> CompilePathOn(PlanNode& n, StreamId context_stream) {
    switch (n.kind) {
      case AstKind::kStream:
        return context_stream;
      case AstKind::kVarRef:
        if (!n.name.empty() && variables_.count(n.name) == 0) {
          return Status::InvalidArgument("unbound variable $" + n.name);
        }
        // A variable's path is evaluated on whatever stream the caller
        // routed the tuples to (a clone branch or the loop stream itself).
        return context_stream;
      case AstKind::kStep:
        return CompileStep(n, context_stream);
      case AstKind::kFilter:
        return CompileFilter(n, context_stream);
      default:
        return Status::NotSupported("unsupported expression inside a path");
    }
  }

  StatusOr<StreamId> CompileStep(PlanNode& n, StreamId context_stream) {
    auto in = CompilePathOn(*n.children[0], context_stream);
    if (!in.ok()) return in.status();
    StreamId s = in.value();
    switch (n.axis) {
      case AstAxis::kChild:
        AddStage(std::make_unique<ChildStep>(s, n.name), &n);
        return s;
      case AstAxis::kAttribute:
        AddStage(std::make_unique<ChildStep>(s, "@" + n.name), &n);
        return s;
      case AstAxis::kText:
        AddStage(std::make_unique<TextExtract>(s), &n);
        return s;
      case AstAxis::kDescendant:
        AddStage(std::make_unique<DescendantStep>(ctx(), s, n.name), &n);
        return s;
      case AstAxis::kParent:
      case AstAxis::kAncestor: {
        if (source_clones_.empty()) {
          return Status::Internal("backward step without a source clone");
        }
        StreamId candidates = source_clones_.front();
        source_clones_.pop_front();
        // parent needs every element as a candidate; ancestor::tag only
        // the matching ones.
        std::string candidate_tag =
            n.axis == AstAxis::kParent ? "*" : n.name;
        AddStage(
            std::make_unique<DescendantStep>(ctx(), candidates, candidate_tag),
            &n);
        AddStage(std::make_unique<BackwardAxisOp>(
                     ctx(), s, candidates,
                     n.axis == AstAxis::kParent ? BackwardMode::kParent
                                                : BackwardMode::kAncestor),
                 &n);
        return candidates;
      }
    }
    return Status::Internal("unhandled axis");
  }

  // e1[e2]: clone e1's output, run the condition on the clone, join.  An
  // immune filter joins with the eager one-item-buffer predicate instead
  // of the optimistic region-minting one.
  StatusOr<StreamId> CompileFilter(PlanNode& n, StreamId context_stream) {
    MaybePreallocateChain(n);
    auto in = CompilePathOn(*n.children[0], context_stream);
    if (!in.ok()) return in.status();
    StreamId data = in.value();
    auto cond = CompileCondition(*n.children[1], data);
    if (!cond.ok()) return cond.status();
    if (n.immune) {
      AddStage(std::make_unique<EagerPredicateOp>(data, cond.value(),
                                                  PredicateScope::kElement),
               &n);
    } else {
      AddStage(std::make_unique<PredicateOp>(ctx(), data, cond.value(),
                                             PredicateScope::kElement),
               &n);
    }
    return data;
  }

  // Compiles a kCompare condition against a clone of `data`; returns the
  // condition stream.
  StatusOr<StreamId> CompileCondition(PlanNode& cmp, StreamId data) {
    if (cmp.kind != AstKind::kCompare) {
      return Status::NotSupported("unsupported predicate condition");
    }
    StreamId cond;
    auto pre = preallocated_cond_.find(&cmp);
    if (pre != preallocated_cond_.end()) {
      cond = pre->second;
    } else {
      cond = NewBase();
    }
    pipeline_->AddStage<CloneFilter>(ctx(), data, cond);
    RecordStage(&cmp);
    auto path = CompilePathOn(*cmp.children[0], cond);
    if (!path.ok()) return path.status();
    switch (cmp.match) {
      case AstMatch::kEquals:
        AddStage(std::make_unique<TextCompare>(ctx(), path.value(),
                                               TextMatch::kEquals, cmp.name),
                 &cmp);
        break;
      case AstMatch::kContains:
        AddStage(std::make_unique<TextCompare>(ctx(), path.value(),
                                               TextMatch::kContains, cmp.name),
                 &cmp);
        break;
      case AstMatch::kExists:
        // Existence: any delivered item matches (contains the empty
        // string); absent items deliver nothing.
        AddStage(std::make_unique<TextCompare>(ctx(), path.value(),
                                               TextMatch::kContains, ""),
                 &cmp);
        break;
    }
    return path;
  }

  StatusOr<Roots> CompileFlwor(PlanNode& n) {
    // Predicates on the binding path are peeled into tuple scope: the
    // region then wraps the whole tuple (not an element straddling tuple
    // markers), which keeps it relocatable by a later sort.
    PlanNode* in_node = n.children[static_cast<size_t>(n.in_child)].get();
    std::vector<PlanNode*> peeled_filters;
    std::vector<PlanNode*> peeled_conditions;
    while (in_node->kind == AstKind::kFilter) {
      peeled_filters.push_back(in_node);
      peeled_conditions.push_back(in_node->children[1].get());
      in_node = in_node->children[0].get();
    }
    std::reverse(peeled_filters.begin(), peeled_filters.end());
    std::reverse(peeled_conditions.begin(), peeled_conditions.end());

    auto in = CompileTop(*in_node);
    if (!in.ok()) return in.status();
    if (in.value().size() != 1) {
      return Status::NotSupported("for-binding over a multi-branch sequence");
    }
    StreamId loop = in.value().front();
    variables_[n.name] = loop;
    AddStage(std::make_unique<MakeTuples>(loop), &n);

    // The sort key comes from a clone of the raw tuples, before filtering
    // and the return transform.
    StreamId sort_key = 0;
    if (n.orderby_child >= 0) {
      sort_key = NewBase();
      pipeline_->AddStage<CloneFilter>(ctx(), loop, sort_key);
      auto key = CompilePathOn(
          *n.children[static_cast<size_t>(n.orderby_child)], sort_key);
      if (!key.ok()) return key.status();
      AddStage(std::make_unique<StringValue>(key.value()), nullptr);
    }

    // The where condition is extracted from a clone of the raw tuples, but
    // the tuple-scoped predicate itself runs after the return transform so
    // that its region wraps the *constructed* tuple output (and the whole
    // structure can be relocated by a later sort).
    bool chain_reordered = false;
    for (PlanNode* f : peeled_filters) {
      chain_reordered = chain_reordered || f->reordered;
    }
    if (chain_reordered) PreallocateConditions(peeled_conditions);
    std::vector<StreamId> tuple_conditions;
    std::vector<PlanNode*> tuple_condition_nodes;
    for (PlanNode* cond_node : peeled_conditions) {
      auto cond = CompileCondition(*cond_node, loop);
      if (!cond.ok()) return cond.status();
      tuple_conditions.push_back(cond.value());
      tuple_condition_nodes.push_back(cond_node);
    }
    if (n.where_child >= 0) {
      PlanNode* where = n.children[static_cast<size_t>(n.where_child)].get();
      auto cond = CompileCondition(*where, loop);
      if (!cond.ok()) return cond.status();
      tuple_conditions.push_back(cond.value());
      tuple_condition_nodes.push_back(where);
    }

    auto ret = CompileReturn(*n.children[static_cast<size_t>(n.return_child)],
                             loop);
    if (!ret.ok()) return ret.status();

    for (size_t i = 0; i < tuple_conditions.size(); ++i) {
      PlanNode* cond_node = tuple_condition_nodes[i];
      if (cond_node->immune && ret.value().size() == 1) {
        AddStage(std::make_unique<EagerPredicateOp>(ret.value().front(),
                                                    tuple_conditions[i],
                                                    PredicateScope::kTuple),
                 cond_node);
      } else {
        AddStage(std::make_unique<PredicateOp>(ctx(), ret.value(),
                                               tuple_conditions[i],
                                               PredicateScope::kTuple),
                 cond_node);
      }
    }
    if (n.orderby_child >= 0) {
      pipeline_->AddStage<SortFilter>(ctx(), sort_key, n.descending);
      RecordStage(&n);
    }
    variables_.erase(n.name);
    return ret;
  }

  // Return clauses run per tuple.  Returns all base streams the per-tuple
  // output roots at.
  StatusOr<Roots> CompileReturn(PlanNode& n, StreamId loop) {
    switch (n.kind) {
      case AstKind::kVarRef:
        if (!n.name.empty() && variables_.count(n.name) == 0) {
          return Status::InvalidArgument("unbound variable $" + n.name);
        }
        return Roots{loop};
      case AstKind::kStep:
      case AstKind::kFilter: {
        auto out = CompilePathOn(n, loop);
        if (!out.ok()) return out.status();
        return Roots{out.value()};
      }
      case AstKind::kElementCtor: {
        auto content = CompileReturn(*n.children[0], loop);
        if (!content.ok()) return content.status();
        AddStage(std::make_unique<ElementConstruct>(
                     content.value(), n.name, ConstructScope::kPerTuple),
                 &n);
        return content;
      }
      case AstKind::kStringLiteral:
        AddStage(std::make_unique<TextLiteral>(loop, n.name,
                                               ConstructScope::kPerTuple),
                 &n);
        return Roots{loop};
      case AstKind::kSequence: {
        // Branch 0 transforms the loop stream in place; the others run on
        // clones created before any branch's stages.
        Roots branches;
        branches.push_back(loop);
        for (size_t i = 1; i < n.children.size(); ++i) {
          StreamId b = NewBase();
          pipeline_->AddStage<CloneFilter>(ctx(), loop, b);
          branches.push_back(b);
        }
        Roots outs;
        for (size_t i = 0; i < n.children.size(); ++i) {
          auto out = CompileReturn(*n.children[i], branches[i]);
          if (!out.ok()) return out.status();
          if (out.value().size() != 1) {
            return Status::NotSupported("nested sequences in return clauses");
          }
          outs.push_back(out.value().front());
        }
        AddStage(std::make_unique<ConcatOp>(ctx(), outs), &n);
        return outs;
      }
      default:
        return Status::NotSupported("unsupported return clause");
    }
  }

  std::unique_ptr<Pipeline> pipeline_;
  std::unordered_map<std::string, StreamId> variables_;
  std::deque<StreamId> source_clones_;
  // Condition base ids pre-allocated for reordered chains, keyed by the
  // kCompare node (see PreallocateConditions).
  std::unordered_map<const PlanNode*, StreamId> preallocated_cond_;
};

// ---------------------------------------------------------------------------
// Shared-prefix extraction (QueryServer).

// Bounds chosen so one extracted op always compiles into a stage group
// small enough for the server's per-depth id band: a predicate group is
// 1 clone + |condition path| steps + 1 compare + 1 join.
constexpr size_t kMaxPrefixOps = 24;
constexpr size_t kMaxConditionSteps = 4;

int CountStreamLeaves(const PlanNode& n) {
  int count = n.kind == AstKind::kStream ? 1 : 0;
  for (const auto& c : n.children) count += CountStreamLeaves(*c);
  return count;
}

// A condition path is sharable when it is a chain of forward steps over
// the context item — exactly what CompileCondition turns into clone-local
// stages with no reference to anything outside the predicate group.
bool IsSharableConditionPath(const PlanNode& n, size_t steps) {
  if (steps > kMaxConditionSteps) return false;
  switch (n.kind) {
    case AstKind::kVarRef:
      return n.name.empty();  // the context item, not a FLWOR variable
    case AstKind::kStep:
      switch (n.axis) {
        case AstAxis::kChild:
        case AstAxis::kDescendant:
        case AstAxis::kAttribute:
        case AstAxis::kText:
          return IsSharableConditionPath(*n.children[0], steps + 1);
        default:
          return false;
      }
    default:
      return false;
  }
}

bool IsSharableCondition(const PlanNode& cmp) {
  return cmp.kind == AstKind::kCompare && cmp.children.size() == 1 &&
         IsSharableConditionPath(*cmp.children[0], 1);
}

void AppendConditionPathSignature(const PlanNode& n, std::string* out) {
  switch (n.kind) {
    case AstKind::kVarRef:
      out->append(".");
      return;
    case AstKind::kStep:
      AppendConditionPathSignature(*n.children[0], out);
      switch (n.axis) {
        case AstAxis::kChild:
          out->append("/child(").append(n.name).append(")");
          return;
        case AstAxis::kDescendant:
          out->append("/desc(").append(n.name).append(")");
          return;
        case AstAxis::kAttribute:
          out->append("/child(@").append(n.name).append(")");
          return;
        case AstAxis::kText:
          out->append("/text()");
          return;
        default:
          out->append("/?");
          return;
      }
    default:
      out->append("?");
      return;
  }
}

std::string ConditionSignature(const PlanNode& cmp) {
  std::string sig = "pred(";
  AppendConditionPathSignature(*cmp.children[0], &sig);
  switch (cmp.match) {
    case AstMatch::kEquals:
      sig.append("=\"").append(cmp.name).append("\"");
      break;
    case AstMatch::kContains:
      sig.append("~\"").append(cmp.name).append("\"");
      break;
    case AstMatch::kExists:
      sig.append("?");
      break;
  }
  sig.append(")");
  return sig;
}

PrefixStep MakeStepOp(const PlanNode& n) {
  PrefixStep op;
  op.name = n.name;
  switch (n.axis) {
    case AstAxis::kChild:
      op.kind = PrefixStep::Kind::kChild;
      op.symbol = InternTag(n.name);
      op.signature = "child(" + n.name + ")";
      break;
    case AstAxis::kDescendant:
      op.kind = PrefixStep::Kind::kDescendant;
      op.symbol = InternTag(n.name);
      op.signature = "desc(" + n.name + ")";
      break;
    case AstAxis::kAttribute:
      op.kind = PrefixStep::Kind::kAttribute;
      op.symbol = InternTag("@" + n.name);
      op.signature = "child(@" + n.name + ")";
      break;
    case AstAxis::kText:
      op.kind = PrefixStep::Kind::kText;
      op.signature = "text()";
      break;
    default:
      break;  // unreachable: backward axes disable extraction entirely
  }
  // An immune op lowers to a different stage group than the tracked one;
  // the "!" keeps the two from deduping onto the same DAG node.
  op.immune = n.immune;
  if (n.immune) op.signature.append("!");
  return op;
}

}  // namespace

void OptimizePlan(PlanNode& plan, const OptimizerOptions& options) {
  if (!options.enabled) return;
  PassManager manager =
      PassManager::Standard(options.reorder, options.independence);
  PassContext context;
  context.schema = options.schema;
  context.profile = options.cost_profile;
  manager.Run(plan, context);
}

PrefixSplit SplitForSharedPrefix(PlanPtr plan) {
  PrefixSplit out;
  if (plan == nullptr) return out;
  // Backward axes make the compiled pipeline clone the *raw* source before
  // any other stage; a prefix transformation ahead of those clones would
  // feed them something else.  Multiple stream leaves (or none) mean there
  // is no single spine to lift.
  if (CountBackwardSteps(*plan) != 0 || CountStreamLeaves(*plan) != 1) {
    out.residual = std::move(plan);
    return out;
  }

  // Descend from the root to the unique kStream leaf, recording the owning
  // slot at every level.  `peeled[i]` marks filters the FLWOR compiler
  // peels to tuple scope (consecutive filters directly under an `in`
  // clause) — those must stay in the residual.
  std::vector<PlanPtr*> slots;
  std::vector<bool> peeled;
  PlanPtr* slot = &plan;
  bool under_flwor_in = false;
  while (true) {
    PlanNode* n = slot->get();
    slots.push_back(slot);
    peeled.push_back(under_flwor_in && n->kind == AstKind::kFilter);
    if (n->kind == AstKind::kStream) break;
    PlanPtr* next = nullptr;
    switch (n->kind) {
      case AstKind::kElementCtor:
      case AstKind::kCount:
      case AstKind::kSum:
      case AstKind::kAvg:
        next = &n->children[0];
        under_flwor_in = false;
        break;
      case AstKind::kFlwor:
        next = &n->children[static_cast<size_t>(n->in_child)];
        under_flwor_in = true;
        break;
      case AstKind::kStep:
        next = &n->children[0];
        under_flwor_in = false;
        break;
      case AstKind::kFilter:
        next = &n->children[0];
        // Peeling continues through consecutive filters.
        break;
      default:
        next = nullptr;
        break;
    }
    if (next == nullptr || CountStreamLeaves(**next) != 1) {
      // The leaf hides somewhere this walk cannot follow (a sequence
      // branch, a condition); leave the query whole.
      out.residual = std::move(plan);
      return out;
    }
    slot = next;
  }

  // The maximal extractable run ends at the leaf's parent and extends
  // upward while every node stays eligible.
  const size_t leaf = slots.size() - 1;
  size_t first = leaf;  // index of the topmost extracted node
  while (first > 0) {
    const PlanNode& n = *slots[first - 1]->get();
    bool eligible = false;
    if (n.kind == AstKind::kStep) {
      eligible = n.axis == AstAxis::kChild || n.axis == AstAxis::kDescendant ||
                 n.axis == AstAxis::kAttribute || n.axis == AstAxis::kText;
    } else if (n.kind == AstKind::kFilter) {
      eligible = !peeled[first - 1] && IsSharableCondition(*n.children[1]);
    }
    if (!eligible || leaf - (first - 1) > kMaxPrefixOps) break;
    --first;
  }
  if (first == leaf) {  // nothing extractable above the leaf
    out.residual = std::move(plan);
    return out;
  }

  // Detach: leaf out of the chain, chain out of the tree, leaf back into
  // the chain's old slot.  Interior slot pointers stay valid — moving a
  // unique_ptr moves the pointer, never the pointee.
  PlanPtr stream_leaf = std::move(*slots[leaf]);
  PlanPtr chain = std::move(*slots[first]);
  *slots[first] = std::move(stream_leaf);
  out.residual = std::move(plan);

  // Emit ops leaf-first: the node nearest the source compiles (and runs)
  // first, so this is execution order.
  for (size_t i = leaf; i-- > first;) {
    PlanNode* n = i == first ? chain.get() : slots[i]->get();
    if (n->kind == AstKind::kStep) {
      out.prefix.push_back(MakeStepOp(*n));
    } else {
      PrefixStep op;
      op.kind = PrefixStep::Kind::kPredicate;
      op.signature = ConditionSignature(*n->children[1]);
      op.immune = n->immune;
      if (n->immune) op.signature.append("!");
      op.condition = std::move(n->children[1]);
      out.prefix.push_back(std::move(op));
    }
  }
  return out;
}

StatusOr<CompiledQuery> CompilePrefixStep(PrefixStep op,
                                          StreamId first_dynamic_id) {
  auto stream = std::make_unique<PlanNode>(AstKind::kStream);
  PlanPtr node;
  switch (op.kind) {
    case PrefixStep::Kind::kChild:
    case PrefixStep::Kind::kDescendant:
    case PrefixStep::Kind::kAttribute:
    case PrefixStep::Kind::kText: {
      node = std::make_unique<PlanNode>(AstKind::kStep);
      switch (op.kind) {
        case PrefixStep::Kind::kChild:
          node->axis = AstAxis::kChild;
          break;
        case PrefixStep::Kind::kDescendant:
          node->axis = AstAxis::kDescendant;
          break;
        case PrefixStep::Kind::kAttribute:
          node->axis = AstAxis::kAttribute;
          break;
        default:
          node->axis = AstAxis::kText;
          break;
      }
      node->name = op.name;
      node->symbol = op.symbol;
      node->children.push_back(std::move(stream));
      break;
    }
    case PrefixStep::Kind::kPredicate: {
      if (op.condition == nullptr) {
        return Status::InvalidArgument("prefix predicate without a condition");
      }
      node = std::make_unique<PlanNode>(AstKind::kFilter);
      node->children.push_back(std::move(stream));
      node->children.push_back(std::move(op.condition));
      break;
    }
  }
  // The extracted node carries the full plan's optimizer verdict: the
  // standalone segment must lower to the exact stage group the whole
  // pipeline would have contained.  (The condition subtree kept its own
  // annotations through the move.)
  node->immune = op.immune;
  return CompilePlan(*node, first_dynamic_id);
}

StatusOr<CompiledQuery> CompilePlan(PlanNode& plan,
                                    StreamId first_dynamic_id) {
  Compiler compiler(first_dynamic_id);
  return compiler.Run(plan);
}

StatusOr<CompiledQuery> CompileAst(const AstNode& ast,
                                   StreamId first_dynamic_id) {
  PlanPtr plan = BuildPlan(ast);
  return CompilePlan(*plan, first_dynamic_id);
}

StatusOr<CompiledQuery> CompileQuery(std::string_view query,
                                     StreamId first_dynamic_id) {
  auto ast = ParseQuery(query);
  if (!ast.ok()) return ast.status();
  return CompileAst(*ast.value(), first_dynamic_id);
}

StatusOr<CompiledQuery> CompileQueryOptimized(std::string_view query,
                                              const OptimizerOptions& options,
                                              StreamId first_dynamic_id,
                                              PlanPtr* plan_out) {
  auto ast = ParseQuery(query);
  if (!ast.ok()) return ast.status();
  PlanPtr plan = BuildPlan(*ast.value());
  OptimizePlan(*plan, options);
  auto compiled = CompilePlan(*plan, first_dynamic_id);
  if (plan_out != nullptr) *plan_out = std::move(plan);
  return compiled;
}

}  // namespace xflux
