// The logical query-plan IR sitting between the AST and stage lowering.
//
// The parser's AST is a faithful record of the query text; the plan is the
// optimizer's working copy.  A PlanNode mirrors the AST shape one-to-one
// (same kinds, axes, and FLWOR slots), carries the interned Symbol for
// named ops, and adds per-node annotation slots that analysis passes write
// and lowering reads:
//
//  - `ordinal`   — stable pre-order position assigned by BuildPlan; the
//    source-order key passes must use when they permute siblings (see the
//    deterministic-id contract in compiler.cc),
//  - `immune`    — set by the update-independence pass when the node's
//    matched regions can never intersect an update target under the
//    document Schema; lowering then emits the fast-path stage variant,
//  - `selectivity` — estimated fraction of items surviving a predicate,
//    seeded from a CostProfile (negative = unknown),
//  - `reordered` — the predicate-reorder pass permuted this node's
//    condition; lowering pre-allocates the group's ids in ordinal order,
//  - `stage_ids` — filled during lowering with the pipeline stage indexes
//    the node compiled into (for `xflux_inspect --explain`).
//
// PlanToString is the stable printer the golden tests pin: without
// annotations it renders exactly the structural shape, with annotations it
// appends the optimizer's verdict per node.

#ifndef XFLUX_XQUERY_PLAN_H_
#define XFLUX_XQUERY_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "util/symbol_table.h"
#include "xquery/ast.h"

namespace xflux {

/// One node of the logical plan; shape semantics follow AstKind (see
/// ast.h), annotations follow the file comment above.
struct PlanNode {
  AstKind kind;
  AstAxis axis = AstAxis::kChild;
  AstMatch match = AstMatch::kEquals;
  std::string name;  // step name / variable / tag / literal text
  Symbol symbol;     // interned `name` for steps and constructors
  std::vector<std::unique_ptr<PlanNode>> children;

  /// FLWOR: order by ... descending.
  bool descending = false;

  // FLWOR child slots (indexes into children; -1 when absent).
  int in_child = -1;
  int where_child = -1;
  int orderby_child = -1;
  int return_child = -1;

  // --- annotation slots (see file comment) ---
  int ordinal = -1;
  bool immune = false;
  double selectivity = -1.0;
  bool reordered = false;
  std::vector<size_t> stage_ids;

  explicit PlanNode(AstKind k) : kind(k) {}

  /// Stable multi-line rendering; `annotations` appends the optimizer
  /// verdicts (immune / selectivity / reordered / lowered stages).
  std::string ToString(bool annotations = false, int indent = 0) const;
};

using PlanPtr = std::unique_ptr<PlanNode>;

/// Builds the plan for an AST: a structural copy with pre-order ordinals
/// assigned and step/constructor names interned.  Annotations start at
/// their defaults, so lowering an un-optimized plan reproduces the direct
/// AST compilation exactly.
PlanPtr BuildPlan(const AstNode& ast);

/// Deep copy, annotations included.
PlanPtr ClonePlan(const PlanNode& plan);

/// Convenience wrapper over PlanNode::ToString.
std::string PlanToString(const PlanNode& plan, bool annotations = false);

}  // namespace xflux

#endif  // XFLUX_XQUERY_PLAN_H_
