#include "xquery/plan.h"

#include <cstdio>

namespace xflux {

namespace {

const char* KindName(AstKind k) {
  switch (k) {
    case AstKind::kStream: return "stream";
    case AstKind::kVarRef: return "var";
    case AstKind::kStep: return "step";
    case AstKind::kFilter: return "filter";
    case AstKind::kCompare: return "compare";
    case AstKind::kFlwor: return "flwor";
    case AstKind::kElementCtor: return "element";
    case AstKind::kSequence: return "sequence";
    case AstKind::kCount: return "count";
    case AstKind::kSum: return "sum";
    case AstKind::kAvg: return "avg";
    case AstKind::kStringLiteral: return "literal";
  }
  return "?";
}

const char* AxisName(AstAxis a) {
  switch (a) {
    case AstAxis::kChild: return "child";
    case AstAxis::kDescendant: return "descendant";
    case AstAxis::kAttribute: return "attribute";
    case AstAxis::kText: return "text";
    case AstAxis::kParent: return "parent";
    case AstAxis::kAncestor: return "ancestor";
  }
  return "?";
}

const char* MatchName(AstMatch m) {
  switch (m) {
    case AstMatch::kEquals: return "equals";
    case AstMatch::kContains: return "contains";
    case AstMatch::kExists: return "exists";
  }
  return "?";
}

PlanPtr BuildPlanImpl(const AstNode& n, int* next_ordinal) {
  auto p = std::make_unique<PlanNode>(n.kind);
  p->ordinal = (*next_ordinal)++;
  p->axis = n.axis;
  p->match = n.match;
  p->name = n.name;
  if ((n.kind == AstKind::kStep || n.kind == AstKind::kElementCtor) &&
      !n.name.empty()) {
    p->symbol = InternTag(n.axis == AstAxis::kAttribute &&
                                  n.kind == AstKind::kStep
                              ? "@" + n.name
                              : n.name);
  }
  p->descending = n.descending;
  p->in_child = n.in_child;
  p->where_child = n.where_child;
  p->orderby_child = n.orderby_child;
  p->return_child = n.return_child;
  p->children.reserve(n.children.size());
  for (const auto& c : n.children) {
    p->children.push_back(BuildPlanImpl(*c, next_ordinal));
  }
  return p;
}

}  // namespace

PlanPtr BuildPlan(const AstNode& ast) {
  int next_ordinal = 0;
  return BuildPlanImpl(ast, &next_ordinal);
}

PlanPtr ClonePlan(const PlanNode& n) {
  auto p = std::make_unique<PlanNode>(n.kind);
  p->axis = n.axis;
  p->match = n.match;
  p->name = n.name;
  p->symbol = n.symbol;
  p->descending = n.descending;
  p->in_child = n.in_child;
  p->where_child = n.where_child;
  p->orderby_child = n.orderby_child;
  p->return_child = n.return_child;
  p->ordinal = n.ordinal;
  p->immune = n.immune;
  p->selectivity = n.selectivity;
  p->reordered = n.reordered;
  p->stage_ids = n.stage_ids;
  p->children.reserve(n.children.size());
  for (const auto& c : n.children) p->children.push_back(ClonePlan(*c));
  return p;
}

std::string PlanNode::ToString(bool annotations, int indent) const {
  std::string out(static_cast<size_t>(indent) * 2, ' ');
  out += KindName(kind);
  if (kind == AstKind::kStep) {
    out += "(";
    out += AxisName(axis);
    out += "::" + name + ")";
  } else if (kind == AstKind::kCompare) {
    out += "(";
    out += MatchName(match);
    out += " \"" + name + "\")";
  } else if (!name.empty()) {
    out += "(" + name + ")";
  }
  if (annotations) {
    if (immune) out += " [immune]";
    if (selectivity >= 0.0) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), " [sel=%.3f]", selectivity);
      out += buf;
    }
    if (reordered) out += " [reordered]";
    if (!stage_ids.empty()) {
      out += " [stages ";
      for (size_t i = 0; i < stage_ids.size(); ++i) {
        if (i > 0) out += ",";
        out += std::to_string(stage_ids[i]);
      }
      out += "]";
    }
  }
  out += "\n";
  for (const auto& c : children) out += c->ToString(annotations, indent + 1);
  return out;
}

std::string PlanToString(const PlanNode& plan, bool annotations) {
  return plan.ToString(annotations, 0);
}

}  // namespace xflux
