#include "xquery/query_server.h"

#include <cstdio>
#include <utility>

#include "util/json.h"
#include "xml/sax_parser.h"
#include "xquery/parser.h"

namespace xflux {
namespace {

/// Queries may only share a stream when they agree on everything that
/// shapes what the stream *is* before the first operator: guarding, the
/// guard's recovery policy and limits, and the accept-source-updates
/// classification.  Serializing the tuple gives the class lookup key.
std::string StreamClassKey(const QueryOptions& options) {
  std::string key = options.accept_source_updates ? "accept;" : "reject;";
  if (!options.guard) return key + "unguarded";
  const ProtocolGuard::Options& g = options.guard_options;
  key += "guard:policy=" + std::to_string(static_cast<int>(g.policy));
  key += ",depth=" + std::to_string(g.limits.max_depth);
  key += ",regions=" + std::to_string(g.limits.max_open_regions);
  key += ",bytes=" + std::to_string(g.limits.max_buffered_bytes);
  key += ",label=" + g.label;
  return key;
}

/// Two registrations may share one suffix runtime only when everything
/// the suffix's behavior or surface depends on matches: the query text
/// (same residual, same path through the class DAG) and every per-query
/// knob the server honors (display shape, instrumentation, tracing).
std::string SuffixKey(std::string_view query, const QueryOptions& options,
                      const PlanNode& residual) {
  std::string key(query);
  key += "\x1f";
  key += options.display.pretty ? "p" : "-";
  key += options.display.keep_tuples ? "t" : "-";
  key += options.instrumentation ? "i" : "-";
  key += ";trace=" + std::to_string(options.trace_capacity);
  if (options.optimize) {
    // The residual's annotations (immunity, reorder marks) change what it
    // lowers to, so differently-optimized registrations of the same text
    // must not share a runtime.  The annotated plan string is the
    // content-based fingerprint.
    key += "\x1f";
    key += PlanToString(residual, /*annotations=*/true);
  }
  return key;
}

OptimizerOptions OptimizerFrom(const QueryOptions& options) {
  OptimizerOptions opt;
  opt.enabled = options.optimize;
  opt.schema = options.schema;
  opt.cost_profile = options.cost_profile;
  opt.reorder = options.optimize_reorder;
  opt.independence = options.optimize_independence;
  return opt;
}

}  // namespace

void QueryServer::SubtreeBus::Broadcast(const RegistryFact& fact) {
  // Direct registry application on each member — facts never re-enter a
  // bus, so a member that itself owns a bus cannot echo.
  for (PipelineContext* ctx : members_) {
    switch (fact.kind) {
      case RegistryFact::kSetImmutable:
        ctx->fix()->SetImmutable(fact.a);
        break;
      case RegistryFact::kAddPartner:
        ctx->streams()->AddPartner(fact.a, fact.b);
        break;
      case RegistryFact::kRegisterBase:
        ctx->streams()->RegisterBase(fact.a);
        break;
      case RegistryFact::kSetFixed:
        ctx->fix()->SetFixed(fact.a, fact.b != 0);
        break;
      default:
        // kOpenRegion/kDeriveRegion/kFreezeRegion are parallel-executor
        // replay forms of source bookkeeping; the server replays raw
        // source events itself (ApplySourceBookkeeping), and events
        // traveling the fan-out re-register downstream via Accept.
        break;
    }
  }
}

QueryServer::QueryServer() = default;
QueryServer::~QueryServer() = default;

QueryServer::StreamClass* QueryServer::ClassFor(const QueryOptions& options) {
  std::string key = StreamClassKey(options);
  for (auto& cls : classes_) {
    if (cls->key == key) return cls.get();
  }
  auto cls = std::make_unique<StreamClass>();
  cls->key = std::move(key);
  cls->accept_source_updates = options.accept_source_updates;
  cls->root_fanout = std::make_unique<FanoutSink>();
  cls->nodes.emplace_back();  // [0]: the DAG root (the raw class stream)
  if (options.guard) {
    cls->guard_pipe = std::make_unique<Pipeline>();
    cls->guard = cls->guard_pipe->AddStage<ProtocolGuard>(
        cls->guard_pipe->context(), options.guard_options);
    cls->guard_pipe->set_accept_source_updates(options.accept_source_updates);
    cls->guard_pipe->context()->set_instrumentation(any_instrumentation_);
    cls->guard_pipe->SetSink(cls->root_fanout.get());
    cls->members.push_back(cls->guard_pipe->context());
  }
  classes_.push_back(std::move(cls));
  return classes_.back().get();
}

StatusOr<QueryHandle*> QueryServer::Register(std::string_view query,
                                             const QueryOptions& options) {
  if (started_) {
    return Status::InvalidArgument(
        "QueryServer::Register after streaming started: the fan-out wiring "
        "is frozen at the first push");
  }
  auto ast = ParseQuery(query);
  if (!ast.ok()) return ast.status();
  PlanPtr plan = BuildPlan(*ast.value());
  OptimizePlan(*plan, OptimizerFrom(options));
  PrefixSplit split = SplitForSharedPrefix(std::move(plan));

  // An identical earlier registration (same class, same suffix key) means
  // the whole runtime already exists — the new handle just joins it.
  std::string class_key = StreamClassKey(options);
  std::string suffix_key = SuffixKey(query, options, *split.residual);
  SuffixRuntime* suffix = nullptr;
  for (auto& existing : classes_) {
    if (existing->key != class_key) continue;
    for (auto& s : existing->suffixes) {
      if (s->key == suffix_key) {
        suffix = s.get();
        break;
      }
    }
    break;
  }

  // Compile the private residual first: a query that cannot compile must
  // not leave nodes behind in any class's DAG.  A dedup hit skips the
  // compile — the runtime it joins already proved the query.
  std::unique_ptr<Pipeline> residual_pipe;
  if (suffix == nullptr) {
    auto residual = CompilePlan(*split.residual, kSuffixFirstDynamicId);
    if (!residual.ok()) return residual.status();
    residual_pipe = std::move(residual.value().pipeline);
  }

  if (options.instrumentation && !any_instrumentation_) {
    // Shared segments serve every query, so one instrumented registrant
    // turns their counters on — retroactively for segments already built.
    any_instrumentation_ = true;
    for (auto& cls : classes_) {
      if (cls->guard_pipe != nullptr) {
        cls->guard_pipe->context()->set_instrumentation(true);
      }
      for (auto& node : cls->nodes) {
        if (node != nullptr) node->pipe->context()->set_instrumentation(true);
      }
    }
  }

  StreamClass* cls = ClassFor(options);
  size_t class_index = 0;
  while (classes_[class_index].get() != cls) ++class_index;

  std::vector<std::string> keys;
  keys.reserve(split.prefix.size());
  for (const PrefixStep& op : split.prefix) keys.push_back(op.signature);
  SpexPrefixDag::AddResult merged = cls->dag.AddPath(keys);
  if (cls->nodes.size() < cls->dag.node_count() + 1) {
    cls->nodes.resize(cls->dag.node_count() + 1);
  }

  // Materialize a runtime for every node on the path that lacks one (new
  // nodes, or leftovers of a previously failed Register).
  for (size_t depth = 0; depth < merged.nodes.size(); ++depth) {
    size_t id = merged.nodes[depth];
    if (cls->nodes[id] != nullptr) continue;
    StreamId band =
        kNodeBandBase + static_cast<StreamId>(depth) * kNodeBandSpan;
    auto compiled = CompilePrefixStep(std::move(split.prefix[depth]), band);
    if (!compiled.ok()) return compiled.status();
    auto node = std::make_unique<NodeRuntime>();
    node->pipe = std::move(compiled.value().pipeline);
    if (kConstructionIdSpan + node->pipe->stage_count() * kStageIdBlock >
        kNodeBandSpan) {
      return Status::Internal("prefix op '" + keys[depth] +
                              "' overflows its node id band");
    }
    // Prefix stages mint their own update brackets mid-chain; those must
    // never be classified born-fixed downstream, so every shared node runs
    // with accept on — raw-source classification for reject classes is
    // replayed by ApplySourceBookkeeping instead.
    node->pipe->set_accept_source_updates(true);
    node->pipe->context()->set_instrumentation(any_instrumentation_);
    node->out = std::make_unique<CollectorSink>();
    node->fanout = std::make_unique<FanoutSink>();
    node->pipe->SetSink(node->out.get());
    node->bus = std::make_unique<SubtreeBus>();
    node->pipe->context()->SetFactBus(node->bus.get());
    node->tap = std::make_unique<BatchTap>(node->pipe.get());
    node->depth = depth;
    FanoutSink* parent = depth == 0
                             ? cls->root_fanout.get()
                             : cls->nodes[merged.nodes[depth - 1]]->fanout.get();
    parent->AddTarget(node->tap.get());
    cls->members.push_back(node->pipe->context());
    // Facts asserted by the ancestors must reach this new consumer too.
    for (size_t d = 0; d < depth; ++d) {
      cls->nodes[merged.nodes[d]]->bus->AddMember(node->pipe->context());
    }
    cls->nodes[id] = std::move(node);
  }

  // The private suffix: the residual query wired exactly like a session,
  // minus the server-scoped knobs (one guard per class, serial dispatch,
  // server-assigned id bands — see session_builder.h).  Built once per
  // distinct (class, suffix key); identical registrations join it.
  if (suffix == nullptr) {
    auto rt = std::make_unique<SuffixRuntime>();
    rt->key = std::move(suffix_key);
    rt->pipe = std::move(residual_pipe);
    QueryOptions suffix_options = options;
    suffix_options.guard = false;
    suffix_options.threads = 0;
    suffix_options.accept_source_updates = true;
    SessionWiring wiring = WireSessionPipeline(rt->pipe.get(), suffix_options);
    rt->display = std::move(wiring.display);
    rt->trace = wiring.trace;
    rt->tap = std::make_unique<BatchTap>(rt->pipe.get());
    FanoutSink* parent = merged.nodes.empty()
                             ? cls->root_fanout.get()
                             : cls->nodes[merged.nodes.back()]->fanout.get();
    parent->AddTarget(rt->tap.get());
    cls->members.push_back(rt->pipe->context());
    for (size_t id : merged.nodes) {
      cls->nodes[id]->bus->AddMember(rt->pipe->context());
    }
    cls->suffixes.push_back(std::move(rt));
    suffix = cls->suffixes.back().get();
  }
  suffix->handle_count++;

  auto handle = std::unique_ptr<QueryHandle>(new QueryHandle());
  handle->server_ = this;
  handle->class_index_ = class_index;
  handle->path_ = merged.nodes;
  handle->suffix_ = suffix;
  handle->query_ = std::string(query);
  handle->prefix_signature_ = std::move(keys);
  for (size_t id : merged.nodes) {
    handle->shared_stage_count_ += cls->nodes[id]->pipe->stage_count();
  }
  handles_.push_back(std::move(handle));
  return handles_.back().get();
}

void QueryServer::FlushTaps(StreamClass& cls) {
  // Ascending node id is topological for the trie, so every node's
  // buffered input is complete (all ancestors drained) when it flushes;
  // suffixes only consume node (or root) output, so they go last.
  for (auto& node : cls.nodes) {
    if (node == nullptr) continue;
    node->tap->Flush();
    node->out->DrainInto(node->fanout.get());
  }
  for (auto& suffix : cls.suffixes) suffix->tap->Flush();
}

void QueryServer::ApplySourceBookkeeping(StreamClass& cls, const Event& e) {
  // The cross-pipeline mirror of the serial root loop in Pipeline::Push:
  // every member context must know raw-source lineage and mutability
  // before the event (or anything after it) is dispatched — including for
  // events a guard or a prefix step later withholds from that member.
  // Only these three shapes touch the registries at all, so plain
  // element/text traffic skips the member fan-out entirely.
  if (e.kind == EventKind::kStartStream) {
    for (PipelineContext* ctx : cls.members) {
      ctx->streams()->RegisterBase(e.id);
    }
    return;
  }
  if (e.IsUpdateStart()) {
    bool born_fixed =
        !cls.accept_source_updates && e.kind == EventKind::kStartMutable;
    for (PipelineContext* ctx : cls.members) {
      if (born_fixed) ctx->fix()->SetFixed(e.uid, true);
      ctx->fix()->OnEvent(e);
      ctx->streams()->OnEvent(e);
    }
    return;
  }
  if (e.kind == EventKind::kFreeze) {
    for (PipelineContext* ctx : cls.members) ctx->fix()->OnEvent(e);
  }
}

void QueryServer::Push(Event event) {
  PushBatch(EventBatch{std::move(event)});
}

void QueryServer::PushBatch(EventBatch batch) {
  started_ = true;
  if (!errors_.ok()) return;
  for (size_t c = 0; c < classes_.size(); ++c) {
    StreamClass& cls = *classes_[c];
    for (const Event& e : batch) ApplySourceBookkeeping(cls, e);
    // Copy per class, move into the last — the common one-class server
    // pays nothing extra.
    EventBatch run = c + 1 == classes_.size() ? std::move(batch)
                                              : EventBatch(batch);
    if (cls.guard_pipe != nullptr) {
      cls.guard_pipe->PushBatch(std::move(run));
    } else {
      cls.root_fanout->AcceptBatch(std::move(run));
    }
    // The dispatch above only filled the fan-out edge buffers; one flush
    // pass walks the batch through the DAG and into every answer.
    FlushTaps(cls);
  }
}

void QueryServer::PushAll(const EventVec& events) {
  PushBatch(EventBatch(events.begin(), events.end()));
}

Status QueryServer::PushDocument(std::string_view xml) {
  // Same adapter role PipelineSource plays for a session, but fanned out
  // through the server's dispatch (and its per-class bookkeeping replay).
  class ServerSink : public EventSink {
   public:
    explicit ServerSink(QueryServer* server) : server_(server) {}
    void Accept(Event event) override { server_->Push(std::move(event)); }
    void AcceptBatch(EventBatch batch) override {
      server_->PushBatch(std::move(batch));
    }

   private:
    QueryServer* server_;
  } sink(this);
  SaxParser::Options options;
  options.stream_id = source_id();
  options.errors = &errors_;
  SaxParser parser(options, &sink);
  Status parse = parser.Feed(xml);
  if (parse.ok()) parse = parser.Finish();
  XFLUX_RETURN_IF_ERROR(parse);
  return status();
}

Status QueryServer::Finish() {
  started_ = true;
  for (auto& cls : classes_) {
    if (cls->guard != nullptr) cls->guard->Finish();
    // A closing guard may emit repair events (truncated-region closes);
    // walk them through the DAG like any batch.
    FlushTaps(*cls);
  }
  return status();
}

const Status& QueryHandle::status() const {
  // Worst-first, upstream-first: an error anywhere on this query's event
  // path invalidates the answer, and the most upstream one is the cause.
  const Status& server = server_->errors_.status();
  if (!server.ok()) return server;
  const QueryServer::StreamClass& cls = *server_->classes_[class_index_];
  if (cls.guard_pipe != nullptr && !cls.guard_pipe->status().ok()) {
    return cls.guard_pipe->status();
  }
  for (size_t id : path_) {
    const Status& s = cls.nodes[id]->pipe->status();
    if (!s.ok()) return s;
  }
  if (!suffix_->pipe->status().ok()) return suffix_->pipe->status();
  return suffix_->display->status();
}

ProtocolGuard* QueryHandle::guard() {
  return server_->classes_[class_index_]->guard;
}

QueryServer::SharingStats QueryServer::sharing() const {
  SharingStats s;
  s.queries = handles_.size();
  s.classes = classes_.size();
  for (const auto& cls : classes_) {
    s.prefix_nodes += cls->dag.node_count();
    s.prefix_ops_seen += cls->dag.steps_seen();
    s.prefix_ops_reused += cls->dag.steps_reused();
    for (const auto& node : cls->nodes) {
      if (node != nullptr) s.prefix_stages += node->pipe->stage_count();
    }
    for (const auto& suffix : cls->suffixes) {
      s.distinct_suffixes++;
      s.suffix_stages += suffix->pipe->stage_count();
    }
  }
  return s;
}

Metrics QueryServer::AggregateMetrics() const {
  Metrics total;
  for (const auto& cls : classes_) {
    if (cls->guard_pipe != nullptr) {
      total.MergeFrom(*cls->guard_pipe->context()->metrics());
    }
    for (const auto& node : cls->nodes) {
      if (node != nullptr) total.MergeFrom(*node->pipe->context()->metrics());
    }
    for (const auto& suffix : cls->suffixes) {
      total.MergeFrom(*suffix->pipe->context()->metrics());
    }
  }
  return total;
}

StatsRegistry QueryServer::BuildStats() const {
  StatsRegistry out;
  for (size_t c = 0; c < classes_.size(); ++c) {
    const StreamClass& cls = *classes_[c];
    if (cls.guard_pipe != nullptr) {
      out.Absorb(*cls.guard_pipe->context()->stats(),
                 "class" + std::to_string(c) + "/");
    }
    for (size_t id = 1; id < cls.nodes.size(); ++id) {
      if (cls.nodes[id] == nullptr) continue;
      out.Absorb(*cls.nodes[id]->pipe->context()->stats(),
                 "shared/" + cls.dag.key(id) + "/");
    }
    // Structurally identical suffixes fold into one row per stage name.
    for (const auto& suffix : cls.suffixes) {
      out.Absorb(*suffix->pipe->context()->stats(), "suffix/",
                 /*merge_same_name=*/true);
    }
  }
  return out;
}

std::string QueryServer::StatsTable() const {
  SharingStats s = sharing();
  char head[256];
  std::snprintf(head, sizeof(head),
                "queries: %zu  stream classes: %zu\n"
                "shared prefix: %zu nodes, %zu stages "
                "(hit ratio %.3f: %llu/%llu ops reused)\n"
                "private suffixes: %zu distinct (%zu stages)\n",
                s.queries, s.classes, s.prefix_nodes, s.prefix_stages,
                s.HitRatio(),
                static_cast<unsigned long long>(s.prefix_ops_reused),
                static_cast<unsigned long long>(s.prefix_ops_seen),
                s.distinct_suffixes, s.suffix_stages);
  return std::string(head) + BuildStats().ToTable();
}

std::string QueryServer::ToJson() const {
  SharingStats s = sharing();
  JsonWriter w = JsonWriter::Object();
  w.Field("queries", static_cast<uint64_t>(s.queries));
  w.Field("stream_classes", static_cast<uint64_t>(s.classes));
  JsonWriter prefix = JsonWriter::Object();
  prefix.Field("nodes", static_cast<uint64_t>(s.prefix_nodes));
  prefix.Field("stages", static_cast<uint64_t>(s.prefix_stages));
  prefix.Field("ops_seen", s.prefix_ops_seen);
  prefix.Field("ops_reused", s.prefix_ops_reused);
  prefix.Field("hit_ratio", s.HitRatio());
  w.Raw("prefix", prefix.Close());
  w.Field("distinct_suffixes", static_cast<uint64_t>(s.distinct_suffixes));
  w.Field("suffix_stages", static_cast<uint64_t>(s.suffix_stages));
  w.Raw("metrics", AggregateMetrics().ToJson());
  JsonWriter queries = JsonWriter::Array();
  for (const auto& h : handles_) {
    JsonWriter q = JsonWriter::Object();
    q.Field("query", h->query());
    JsonWriter sig = JsonWriter::Array();
    for (const std::string& op : h->prefix_signature_) sig.Element(op);
    q.Raw("prefix_signature", sig.Close());
    q.Field("shared_stages", static_cast<uint64_t>(h->shared_stage_count()));
    q.Field("suffix_stages", static_cast<uint64_t>(h->suffix_stage_count()));
    q.Field("status", h->status().ToString());
    queries.RawElement(q.Close());
  }
  w.Raw("per_query", queries.Close());
  return w.Close();
}

}  // namespace xflux
