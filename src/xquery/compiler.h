// Compiles the XQuery-subset AST into a pipeline of state transformers
// (the translation the paper references from its earlier work [4]): each
// XPath step, predicate, FLWOR clause, constructor, and aggregate becomes
// one stage, all wrapped by the state-adjustment machinery.

#ifndef XFLUX_XQUERY_COMPILER_H_
#define XFLUX_XQUERY_COMPILER_H_

#include <memory>
#include <string_view>

#include "core/pipeline.h"
#include "util/status.h"
#include "xquery/ast.h"

namespace xflux {

/// A compiled query: an assembled pipeline awaiting a sink and then source
/// events on stream `source_id`.
struct CompiledQuery {
  std::unique_ptr<Pipeline> pipeline;
  StreamId source_id = 0;
};

/// Compiles a parsed AST.  `first_dynamic_id` seeds the pipeline's id
/// allocator (see PipelineContext); the compiler itself draws clone/branch
/// ids from it, so it must be fixed at compile time.
StatusOr<CompiledQuery> CompileAst(
    const AstNode& ast, StreamId first_dynamic_id = kDefaultFirstDynamicId);

/// Parses and compiles in one step.
StatusOr<CompiledQuery> CompileQuery(
    std::string_view query,
    StreamId first_dynamic_id = kDefaultFirstDynamicId);

}  // namespace xflux

#endif  // XFLUX_XQUERY_COMPILER_H_
