// Compiles queries into pipelines of state transformers, in three layers
// (DESIGN.md §10): parse to AST, build the logical plan IR (plan.h), run
// optimizer passes over it (passes/*), then lower the plan to stages —
// each XPath step, predicate, FLWOR clause, constructor, and aggregate
// becomes one stage, wrapped by the state-adjustment machinery unless the
// update-independence pass proved the node immune (then the fast-path
// stage variant is emitted).
//
// Lowering an unannotated plan is byte-identical to the historical direct
// AST compilation: same stages, same construction order, same StreamId
// allocations.  The only annotation that changes id allocation is
// `reordered`: for a permuted predicate chain the compiler pre-allocates
// the chain's condition base streams in source-ordinal order before any
// chain stage is built, so each condition keeps the id it would have had
// in source order no matter how the pass permuted execution — the PR 6 id
// bands (and anything keyed on condition stream ids) stay stable across
// profile changes.

#ifndef XFLUX_XQUERY_COMPILER_H_
#define XFLUX_XQUERY_COMPILER_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/pipeline.h"
#include "util/status.h"
#include "util/symbol_table.h"
#include "xquery/ast.h"
#include "xquery/plan.h"

namespace xflux {

class Schema;
class CostProfile;

/// A compiled query: an assembled pipeline awaiting a sink and then source
/// events on stream `source_id`.
struct CompiledQuery {
  std::unique_ptr<Pipeline> pipeline;
  StreamId source_id = 0;
};

/// Optimizer configuration for the plan-based entry points.  The default
/// (`enabled = false`) lowers the unannotated plan — byte-identical to the
/// pre-optimizer compiler.
struct OptimizerOptions {
  /// Master switch; off means no pass runs regardless of the rest.
  bool enabled = false;
  /// Document schema for the update-independence pass (nullptr disables
  /// that pass even when `independence` is set).
  const Schema* schema = nullptr;
  /// Measured selectivities for predicate reorder; nullptr falls back to
  /// heuristics.
  const CostProfile* cost_profile = nullptr;
  /// Per-pass toggles (for ablation).
  bool reorder = true;
  bool independence = true;
};

/// Runs the standard pass pipeline over `plan` in place (no-op when
/// options.enabled is false).
void OptimizePlan(PlanNode& plan, const OptimizerOptions& options);

/// Lowers a plan to a pipeline.  Mutates only the plan's `stage_ids`
/// annotations (which stages each node compiled into).
StatusOr<CompiledQuery> CompilePlan(
    PlanNode& plan, StreamId first_dynamic_id = kDefaultFirstDynamicId);

/// Compiles a parsed AST (plan built internally, no passes).
/// `first_dynamic_id` seeds the pipeline's id allocator (see
/// PipelineContext); the compiler itself draws clone/branch ids from it,
/// so it must be fixed at compile time.
StatusOr<CompiledQuery> CompileAst(
    const AstNode& ast, StreamId first_dynamic_id = kDefaultFirstDynamicId);

/// Parses and compiles in one step (no passes).
StatusOr<CompiledQuery> CompileQuery(
    std::string_view query,
    StreamId first_dynamic_id = kDefaultFirstDynamicId);

/// Parses, builds the plan, runs the optimizer, and lowers.  When
/// `plan_out` is non-null it receives the annotated plan (immunity,
/// selectivities, lowered stage ids) — the input to `xflux_inspect
/// --explain`.
StatusOr<CompiledQuery> CompileQueryOptimized(
    std::string_view query, const OptimizerOptions& options,
    StreamId first_dynamic_id = kDefaultFirstDynamicId,
    PlanPtr* plan_out = nullptr);

/// One operation lifted off the leading spine of a query for shared
/// execution: a forward step or an eligible predicate group, identified by
/// a canonical `(op, Symbol)` signature.  Two queries whose spines yield
/// equal signature sequences compute identical intermediate streams, which
/// is what lets the QueryServer's prefix DAG evaluate the shared spine
/// once (see DESIGN.md §9).  An immune op appends "!" to its signature —
/// the fast-path stage group is a different pipeline from the tracked one,
/// so differently-optimized registrations must not dedup together.
struct PrefixStep {
  enum class Kind {
    kChild,       // /name, /*
    kDescendant,  // //name, //*
    kAttribute,   // /@name
    kText,        // /text()
    kPredicate,   // [path op "lit"] — the full clone/compare/join group
  };
  Kind kind = Kind::kChild;
  std::string name;        // step name test; empty for kPredicate / kText
  Symbol symbol;           // interned name ("@name" for attributes)
  PlanPtr condition;       // kPredicate only: the kCompare subtree (owned)
  bool immune = false;     // lowers to the update-independent fast path
  std::string signature;   // canonical dedup key, e.g. `desc(item)`,
                           // `pred(./child(location)="Albania")`, with a
                           // trailing "!" when immune
};

/// Result of SplitForSharedPrefix: the extracted spine (in execution
/// order, i.e. the step nearest the source first) plus the residual plan
/// with the spine replaced by the bare stream leaf.  When nothing is
/// extractable, `prefix` is empty and `residual` is the original plan.
struct PrefixSplit {
  std::vector<PrefixStep> prefix;
  PlanPtr residual;
};

/// Splits `plan` (consumed, annotations preserved) into a maximal
/// shareable leading chain and the residual query.  Extraction covers
/// forward child / descendant / attribute / text steps and predicates
/// whose condition is a kCompare over a short relative forward path; it
/// refuses
///  - queries containing any backward axis (their compiled form clones the
///    raw source first, so no prefix transformation may precede them),
///  - filter chains sitting directly under a FLWOR `in` clause (the
///    compiler peels those to tuple scope, where they run *after* the
///    return transform — extracting them at element scope would change
///    semantics), and
///  - anything it cannot prove compiles to the same stage group in both
///    the standalone and the shared pipeline.
PrefixSplit SplitForSharedPrefix(PlanPtr plan);

/// Compiles one extracted prefix op into a standalone pipeline segment:
/// the exact stage group the full compiler would have emitted for it, with
/// both input and output rooted at stream 0.  Chaining such segments in
/// spine order therefore reproduces the standalone pipeline's intermediate
/// stream byte for byte.  Consumes `op` (the predicate condition moves
/// into the compiled stages).
StatusOr<CompiledQuery> CompilePrefixStep(PrefixStep op,
                                          StreamId first_dynamic_id);

}  // namespace xflux

#endif  // XFLUX_XQUERY_COMPILER_H_
