// Compiles the XQuery-subset AST into a pipeline of state transformers
// (the translation the paper references from its earlier work [4]): each
// XPath step, predicate, FLWOR clause, constructor, and aggregate becomes
// one stage, all wrapped by the state-adjustment machinery.

#ifndef XFLUX_XQUERY_COMPILER_H_
#define XFLUX_XQUERY_COMPILER_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/pipeline.h"
#include "util/status.h"
#include "util/symbol_table.h"
#include "xquery/ast.h"

namespace xflux {

/// A compiled query: an assembled pipeline awaiting a sink and then source
/// events on stream `source_id`.
struct CompiledQuery {
  std::unique_ptr<Pipeline> pipeline;
  StreamId source_id = 0;
};

/// Compiles a parsed AST.  `first_dynamic_id` seeds the pipeline's id
/// allocator (see PipelineContext); the compiler itself draws clone/branch
/// ids from it, so it must be fixed at compile time.
StatusOr<CompiledQuery> CompileAst(
    const AstNode& ast, StreamId first_dynamic_id = kDefaultFirstDynamicId);

/// Parses and compiles in one step.
StatusOr<CompiledQuery> CompileQuery(
    std::string_view query,
    StreamId first_dynamic_id = kDefaultFirstDynamicId);

/// One operation lifted off the leading spine of a query for shared
/// execution: a forward step or an eligible predicate group, identified by
/// a canonical `(op, Symbol)` signature.  Two queries whose spines yield
/// equal signature sequences compute identical intermediate streams, which
/// is what lets the QueryServer's prefix DAG evaluate the shared spine
/// once (see DESIGN.md §9).
struct PrefixStep {
  enum class Kind {
    kChild,       // /name, /*
    kDescendant,  // //name, //*
    kAttribute,   // /@name
    kText,        // /text()
    kPredicate,   // [path op "lit"] — the full clone/compare/join group
  };
  Kind kind = Kind::kChild;
  std::string name;        // step name test; empty for kPredicate / kText
  Symbol symbol;           // interned name ("@name" for attributes)
  AstPtr condition;        // kPredicate only: the kCompare subtree (owned)
  std::string signature;   // canonical dedup key, e.g. `desc(item)`,
                           // `pred(./child(location)="Albania")`
};

/// Result of SplitForSharedPrefix: the extracted spine (in execution
/// order, i.e. the step nearest the source first) plus the residual query
/// with the spine replaced by the bare stream leaf.  When nothing is
/// extractable, `prefix` is empty and `residual` is the original AST.
struct PrefixSplit {
  std::vector<PrefixStep> prefix;
  AstPtr residual;
};

/// Splits `ast` (consumed) into a maximal shareable leading chain and the
/// residual query.  Extraction covers forward child / descendant /
/// attribute / text steps and predicates whose condition is a kCompare
/// over a short relative forward path; it refuses
///  - queries containing any backward axis (their compiled form clones the
///    raw source first, so no prefix transformation may precede them),
///  - filter chains sitting directly under a FLWOR `in` clause (the
///    compiler peels those to tuple scope, where they run *after* the
///    return transform — extracting them at element scope would change
///    semantics), and
///  - anything it cannot prove compiles to the same stage group in both
///    the standalone and the shared pipeline.
PrefixSplit SplitForSharedPrefix(AstPtr ast);

/// Compiles one extracted prefix op into a standalone pipeline segment:
/// the exact stage group the full compiler would have emitted for it, with
/// both input and output rooted at stream 0.  Chaining such segments in
/// spine order therefore reproduces the standalone pipeline's intermediate
/// stream byte for byte.  Consumes `op` (the predicate condition moves
/// into the compiled stages).
StatusOr<CompiledQuery> CompilePrefixStep(PrefixStep op,
                                          StreamId first_dynamic_id);

}  // namespace xflux

#endif  // XFLUX_XQUERY_COMPILER_H_
