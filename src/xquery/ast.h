// Abstract syntax for the supported XQuery subset.
//
// The subset covers the constructs the paper's engine implements (Section
// VII): XPath paths with all forward steps, general predicates, the
// backward steps parent and ancestor, FLWOR loops with where / order by,
// element construction, sequences, string comparison and contains(), and
// the count/sum aggregates.

#ifndef XFLUX_XQUERY_AST_H_
#define XFLUX_XQUERY_AST_H_

#include <memory>
#include <string>
#include <vector>

namespace xflux {

/// Node discriminator.
enum class AstKind {
  kStream,     // the input stream (a bare name such as X, or stream())
  kVarRef,     // $v               [name]
  kStep,       // axis step        [axis, name; children: {input}]
  kFilter,     // e1[e2]           [children: {input, condition}]
  kCompare,    // e = "lit" / contains(e, "lit")  [name=literal; {input}]
  kFlwor,      // for $v in e where c order by k return r
               //                  [name=var; {in, where?, orderby?, return}]
  kElementCtor,  // <tag>{e}</tag> [name=tag; {content}]
  kSequence,   // (e1, e2, ...)    [children]
  kCount,      // count(e)         [children: {input}]
  kSum,        // sum(e)           [children: {input}]
  kAvg,        // avg(e)           [children: {input}]
  kStringLiteral,  // "text"       [name=text]
};

/// XPath axes of the subset.
enum class AstAxis {
  kChild,       // /name, /*
  kDescendant,  // //name, //*
  kAttribute,   // /@name
  kText,        // /text()
  kParent,      // /..
  kAncestor,    // /ancestor::name, /ancestor::*
};

/// How a kCompare matches.
enum class AstMatch {
  kEquals,    // e = "lit"
  kContains,  // contains(e, "lit")
  kExists,    // bare predicate path: [e]
};

/// One AST node; shape depends on `kind` (see AstKind comments).
struct AstNode {
  AstKind kind;
  AstAxis axis = AstAxis::kChild;
  AstMatch match = AstMatch::kEquals;
  std::string name;  // step name / variable / tag / literal text
  std::vector<std::unique_ptr<AstNode>> children;

  /// FLWOR: order by ... descending.
  bool descending = false;

  // FLWOR child slots (indexes into children; -1 when absent).
  int in_child = -1;
  int where_child = -1;
  int orderby_child = -1;
  int return_child = -1;

  explicit AstNode(AstKind k) : kind(k) {}

  /// Multi-line structural rendering for tests and diagnostics.
  std::string ToString(int indent = 0) const;
};

using AstPtr = std::unique_ptr<AstNode>;

}  // namespace xflux

#endif  // XFLUX_XQUERY_AST_H_
