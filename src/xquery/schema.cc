#include "xquery/schema.h"

#include <deque>

namespace xflux {

Schema::Schema(std::string root,
               std::map<std::string, std::vector<std::string>> children,
               std::set<std::string> updatable)
    : root_(std::move(root)),
      children_(std::move(children)),
      updatable_(std::move(updatable)) {
  for (const std::string& tag : updatable_) {
    std::set<std::string> closure = ContentClosure(tag);
    // An updatable tag the children map has never heard of is still a
    // threat at its own name (the stream asserts regions there).
    closure.insert(tag);
    updatable_closure_.insert(closure.begin(), closure.end());
  }
}

const std::vector<std::string>& Schema::ChildrenOf(
    const std::string& tag) const {
  static const std::vector<std::string> kEmpty;
  auto it = children_.find(tag);
  return it == children_.end() ? kEmpty : it->second;
}

std::set<std::string> Schema::ContentClosure(const std::string& tag) const {
  std::set<std::string> closure;
  if (children_.count(tag) == 0 && updatable_.count(tag) == 0) {
    // Unknown tag: matches nothing in a conforming stream.
    return closure;
  }
  std::deque<std::string> frontier{tag};
  closure.insert(tag);
  while (!frontier.empty()) {
    std::string cur = std::move(frontier.front());
    frontier.pop_front();
    for (const std::string& child : ChildrenOf(cur)) {
      if (closure.insert(child).second) frontier.push_back(child);
    }
  }
  return closure;
}

bool Schema::UpdateDisjoint(const std::set<std::string>& tags) const {
  for (const std::string& tag : tags) {
    if (updatable_closure_.count(tag) > 0) return false;
  }
  return true;
}

Schema XMarkSchema() {
  std::map<std::string, std::vector<std::string>> children;
  children["site"] = {"regions", "categories", "people", "open_auctions",
                      "closed_auctions"};
  children["regions"] = {"africa", "asia",     "australia",
                         "europe", "namerica", "samerica"};
  for (const char* region :
       {"africa", "asia", "australia", "europe", "namerica", "samerica"}) {
    children[region] = {"item"};
  }
  children["item"] = {"@id",     "location",    "quantity", "name",
                      "payment", "description", "shipping"};
  children["description"] = {"parlist", "text"};
  children["parlist"] = {"listitem"};
  children["listitem"] = {"text"};
  children["categories"] = {"category"};
  children["category"] = {"@id", "name", "description"};
  children["people"] = {"person"};
  children["person"] = {"@id", "name", "emailaddress"};
  children["open_auctions"] = {"open_auction"};
  children["open_auction"] = {"@id", "bidder", "current"};
  children["bidder"] = {"personref", "increase"};
  children["personref"] = {"@person"};
  children["closed_auctions"] = {"closed_auction"};
  children["closed_auction"] = {"price", "date"};
  return Schema("site", std::move(children), {});
}

Schema DblpSchema() {
  std::map<std::string, std::vector<std::string>> children;
  children["dblp"] = {"inproceedings", "article"};
  children["inproceedings"] = {"author", "title", "year", "booktitle",
                               "pages"};
  children["article"] = {"author", "title", "year", "journal", "volume"};
  return Schema("dblp", std::move(children), {});
}

Schema BookstoreSchema() {
  std::map<std::string, std::vector<std::string>> children;
  children["biblio"] = {"book"};
  children["book"] = {"publisher", "author", "price"};
  return Schema("biblio", std::move(children), {"author", "price"});
}

Schema StockTickerSchema() {
  std::map<std::string, std::vector<std::string>> children;
  children["ticker"] = {"stock"};
  children["stock"] = {"name", "quote"};
  return Schema("ticker", std::move(children), {"quote"});
}

}  // namespace xflux
