#include "xquery/ast.h"

namespace xflux {

namespace {

const char* KindName(AstKind k) {
  switch (k) {
    case AstKind::kStream: return "stream";
    case AstKind::kVarRef: return "var";
    case AstKind::kStep: return "step";
    case AstKind::kFilter: return "filter";
    case AstKind::kCompare: return "compare";
    case AstKind::kFlwor: return "flwor";
    case AstKind::kElementCtor: return "element";
    case AstKind::kSequence: return "sequence";
    case AstKind::kCount: return "count";
    case AstKind::kSum: return "sum";
    case AstKind::kAvg: return "avg";
    case AstKind::kStringLiteral: return "literal";
  }
  return "?";
}

const char* AxisName(AstAxis a) {
  switch (a) {
    case AstAxis::kChild: return "child";
    case AstAxis::kDescendant: return "descendant";
    case AstAxis::kAttribute: return "attribute";
    case AstAxis::kText: return "text";
    case AstAxis::kParent: return "parent";
    case AstAxis::kAncestor: return "ancestor";
  }
  return "?";
}

const char* MatchName(AstMatch m) {
  switch (m) {
    case AstMatch::kEquals: return "equals";
    case AstMatch::kContains: return "contains";
    case AstMatch::kExists: return "exists";
  }
  return "?";
}

}  // namespace

std::string AstNode::ToString(int indent) const {
  std::string out(static_cast<size_t>(indent) * 2, ' ');
  out += KindName(kind);
  if (kind == AstKind::kStep) {
    out += "(";
    out += AxisName(axis);
    out += "::" + name + ")";
  } else if (kind == AstKind::kCompare) {
    out += "(";
    out += MatchName(match);
    out += " \"" + name + "\")";
  } else if (!name.empty()) {
    out += "(" + name + ")";
  }
  out += "\n";
  for (const auto& c : children) out += c->ToString(indent + 1);
  return out;
}

}  // namespace xflux
