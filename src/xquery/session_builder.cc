#include "xquery/session_builder.h"

#include <cstdio>
#include <utility>

namespace xflux {

SessionWiring WireSessionPipeline(Pipeline* pipeline,
                                  const QueryOptions& options) {
  SessionWiring wiring;
  pipeline->set_accept_source_updates(options.accept_source_updates);
  pipeline->context()->set_instrumentation(options.instrumentation);
  if (options.trace_capacity > 0) {
    wiring.trace = pipeline->AddStage<TraceSink>(
        pipeline->context(),
        TraceSink::Options{options.trace_capacity, "trace"});
  }
  if (options.guard) {
    auto guard = std::make_unique<ProtocolGuard>(pipeline->context(),
                                                 options.guard_options);
    wiring.guard = guard.get();
    pipeline->InsertFront(std::move(guard));
  }
  wiring.display = std::make_unique<ResultDisplay>(
      options.display, pipeline->context()->metrics());
  if (wiring.trace != nullptr) {
    TraceSink* trace = wiring.trace;
    wiring.display->SetOnError([trace](const Status& status) {
      std::fprintf(stderr, "display protocol error: %s\n%s",
                   status.ToString().c_str(), trace->Dump().c_str());
    });
  }
  pipeline->SetSink(wiring.display.get());
  if (options.threads > 0) {
    ParallelOptions parallel;
    parallel.threads = options.threads;
    parallel.queue_capacity = options.queue_capacity;
    parallel.batch_events = options.batch_events;
    pipeline->EnableParallel(parallel);
  }
  return wiring;
}

}  // namespace xflux
