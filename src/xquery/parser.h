// Recursive-descent parser for the supported XQuery subset (see ast.h).

#ifndef XFLUX_XQUERY_PARSER_H_
#define XFLUX_XQUERY_PARSER_H_

#include <string_view>

#include "util/status.h"
#include "xquery/ast.h"

namespace xflux {

/// Parses a query; returns the AST or a parse error with position info.
StatusOr<AstPtr> ParseQuery(std::string_view query);

}  // namespace xflux

#endif  // XFLUX_XQUERY_PARSER_H_
