// The one place a query pipeline gets wired into a runnable session: the
// shared options struct, the guard → trace → display splice, and the
// producer→pipeline bridge.  Both QuerySession::Open and
// QueryServer::Register build on this, so the two entry points cannot
// drift apart in how they assemble a query.

#ifndef XFLUX_XQUERY_SESSION_BUILDER_H_
#define XFLUX_XQUERY_SESSION_BUILDER_H_

#include <cstddef>
#include <memory>

#include "core/pipeline.h"
#include "core/protocol_guard.h"
#include "core/result_display.h"
#include "core/trace_sink.h"

namespace xflux {

class Schema;
class CostProfile;

/// Everything configurable about one query, in one place.  Used verbatim
/// by QuerySession::Open (as `QuerySession::Options`) and by
/// QueryServer::Register.
///
/// Under a server, per-query knobs (display, instrumentation,
/// trace_capacity) are honored for the query's private suffix pipeline,
/// while execution-level knobs are server-scoped and override the
/// per-query values:
///  - `threads` / `queue_capacity` / `batch_events`: the server dispatches
///    the shared prefix serially (work sharing, not thread parallelism),
///    so these are ignored per query;
///  - `first_dynamic_id`: the server assigns each pipeline segment its own
///    id band, so this is ignored per query;
///  - `guard` / `guard_options` / `accept_source_updates`: honored, but
///    shared — queries with equal values share one guarded stream class
///    (and one ProtocolGuard instance; its ResourceLimits meter that
///    class, not a single query).
struct QueryOptions {
  ResultDisplay::Options display;  ///< rendering of the live answer
  /// When false, mutable regions from the source are classified fixed at
  /// injection — source updates are ignored (Section V).
  bool accept_source_updates = true;
  /// First stream id the pipeline allocates; must be above every id the
  /// source uses.
  StreamId first_dynamic_id = kDefaultFirstDynamicId;
  /// Per-stage StageStats counting/timing (see util/stage_stats.h).
  bool instrumentation = false;
  /// When > 0, a TraceSink tap with this ring capacity is inserted just
  /// before the display and its window is dumped to stderr if the display
  /// latches a protocol error.
  size_t trace_capacity = 0;
  /// When true, a ProtocolGuard is spliced in front of the compiled
  /// pipeline: source events are validated against WF_i and the
  /// update-bracket discipline before any operator sees them, and
  /// `guard_options` decides what happens on a violation.
  bool guard = false;
  ProtocolGuard::Options guard_options;
  /// Worker threads for pipeline-parallel execution (0 = serial, the
  /// default).  Parallel output is deterministically identical to
  /// serial; with threads > 0 the live answer (CurrentText /
  /// CurrentEvents / metrics) is only defined once Finish() has drained
  /// the run — PushDocument drains internally, so whole-document callers
  /// never notice.
  int threads = 0;
  /// Queue sizing for threads > 0 (bounded SPSC batch queues).
  size_t queue_capacity = 64;
  size_t batch_events = 64;
  /// --- optimizer (DESIGN.md §10) ---
  /// When true, the query is lowered through the plan IR with the
  /// standard optimizer passes: predicate reorder (selectivities from
  /// `cost_profile`, per-operator heuristics otherwise) and update
  /// independence (needs `schema`).  Off by default — the unoptimized
  /// lowering is byte-identical to the pre-optimizer compiler.  Under a
  /// server this knob is per-query: each registration's plan is optimized
  /// on its own, and differently-optimized registrations never share a
  /// prefix node or suffix runtime.
  bool optimize = false;
  /// DTD-lite document schema for the update-independence pass; nullptr
  /// leaves every stage update-tracked.  Must outlive Open/Register.
  const Schema* schema = nullptr;
  /// Measured stage selectivities (e.g. loaded from a prior run's
  /// BENCH_*.json via CostProfile::LoadFromFile) for predicate reorder;
  /// nullptr falls back to heuristics.  Must outlive Open/Register.
  const CostProfile* cost_profile = nullptr;
  /// Per-pass toggles for ablation runs (honored only with `optimize`).
  bool optimize_reorder = true;
  bool optimize_independence = true;
};

/// Bridges an event producer (e.g. the SAX tokenizer) to a pipeline.
/// Engine plumbing, not public API — sessions and the server expose
/// Push/PushDocument instead.
class PipelineSource : public EventSink {
 public:
  explicit PipelineSource(Pipeline* pipeline) : pipeline_(pipeline) {}
  void Accept(Event event) override { pipeline_->Push(std::move(event)); }
  void AcceptBatch(EventBatch batch) override {
    pipeline_->PushBatch(std::move(batch));
  }

 private:
  Pipeline* pipeline_;
};

/// The stages WireSessionPipeline spliced in, for the caller to surface.
/// The display is owned by the caller (it is the pipeline's sink, not a
/// stage); trace and guard are owned by the pipeline.
struct SessionWiring {
  std::unique_ptr<ResultDisplay> display;
  TraceSink* trace = nullptr;
  ProtocolGuard* guard = nullptr;
};

/// Applies `options` to a compiled pipeline: accept/instrumentation
/// flags, the optional trace tap, the optional protocol guard in front,
/// the result display as sink (with the trace-dump error hook), and —
/// when options.threads > 0 — the threaded executor.  The pipeline is
/// ready for events on return.
SessionWiring WireSessionPipeline(Pipeline* pipeline,
                                  const QueryOptions& options);

}  // namespace xflux

#endif  // XFLUX_XQUERY_SESSION_BUILDER_H_
