// DTD-lite document schemas for the optimizer (update-independence pass).
//
// A Schema records, per element tag, which child tags may appear under it,
// plus the set of *updatable* tags — tags whose content the stream may wrap
// in mutable regions and later address with replace / insert updates.  The
// contract is directional: the schema asserts facts about the stream, and
// the update-independence pass only ever *relaxes* bookkeeping for stages
// whose matched content provably cannot intersect an update target under
// those facts.  A stream that violates its declared schema voids the
// analysis (exactly as a violated DTD voids validation); the honest
// factory schemas below therefore declare `updatable` to match what the
// corresponding generators actually emit.
//
// Tags the schema has never heard of have no children and are never
// updatable — unknown names make the analysis *more* conservative upstream
// (an unknown step matches nothing, so nothing is proven about it) and are
// simply absent from reachability sets.

#ifndef XFLUX_XQUERY_SCHEMA_H_
#define XFLUX_XQUERY_SCHEMA_H_

#include <map>
#include <set>
#include <string>
#include <vector>

namespace xflux {

/// See file comment.
class Schema {
 public:
  Schema() = default;
  Schema(std::string root,
         std::map<std::string, std::vector<std::string>> children,
         std::set<std::string> updatable);

  const std::string& root() const { return root_; }
  const std::set<std::string>& updatable() const { return updatable_; }

  /// Declared child tags of `tag` (empty for leaves / unknown tags).
  const std::vector<std::string>& ChildrenOf(const std::string& tag) const;

  /// All tags reachable at or below `tag` (including `tag` itself, when
  /// known).  Unknown tags yield the empty set.
  std::set<std::string> ContentClosure(const std::string& tag) const;

  /// Union of ContentClosure over every updatable tag: every tag whose
  /// instances an update can create, remove, or sit inside.  A stage whose
  /// reachable content is disjoint from this set can never observe an
  /// update-dependent value.
  const std::set<std::string>& UpdatableClosure() const {
    return updatable_closure_;
  }

  /// True when no tag in `tags` intersects the updatable closure.
  bool UpdateDisjoint(const std::set<std::string>& tags) const;

 private:
  std::string root_;
  std::map<std::string, std::vector<std::string>> children_;
  std::set<std::string> updatable_;
  std::set<std::string> updatable_closure_;
};

/// XMark auction documents as emitted by GenerateXmark (plain XML, no
/// update regions): `updatable` is empty, so every stage over a conforming
/// stream is eligible for immunity.
Schema XMarkSchema();

/// DBLP bibliography documents as emitted by GenerateDblp (plain XML).
Schema DblpSchema();

/// The bookstore corpus used by the fault-injection tests: mutable regions
/// wrap text inside author and price elements, and updates re-address
/// those regions — `updatable` = {author, price}.
Schema BookstoreSchema();

/// The stock-ticker corpus (GenerateStockTicker): quote text is updatable.
Schema StockTickerSchema();

}  // namespace xflux

#endif  // XFLUX_XQUERY_SCHEMA_H_
