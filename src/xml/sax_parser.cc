#include "xml/sax_parser.h"

#include <algorithm>
#include <cctype>
#include <utility>

#include "util/text_ref.h"
#include "xml/escape.h"

namespace xflux {

namespace {

bool IsSpace(char c) {
  return c == ' ' || c == '\t' || c == '\r' || c == '\n';
}

bool IsNameChar(char c) {
  return !IsSpace(c) && c != '>' && c != '/' && c != '=' && c != '<';
}

bool AllWhitespace(std::string_view s) {
  return std::all_of(s.begin(), s.end(), [](char c) { return IsSpace(c); });
}

}  // namespace

SaxParser::SaxParser(const Options& options, EventSink* sink)
    : options_(options), sink_(sink), next_oid_(options.first_oid) {
  if (options_.batch_size > 0) batch_.reserve(options_.batch_size);
}

void SaxParser::Emit(Event e) {
  ++events_emitted_;
  if (options_.batch_size == 0) {
    sink_->Accept(std::move(e));
    return;
  }
  batch_.push_back(std::move(e));
  if (batch_.size() >= options_.batch_size) FlushBatch();
}

void SaxParser::FlushBatch() {
  if (batch_.empty()) return;
  EventBatch out;
  out.reserve(options_.batch_size);
  out.swap(batch_);
  sink_->AcceptBatch(std::move(out));
}

Status SaxParser::Latch(Status status) {
  if (status.ok() && options_.errors != nullptr && !options_.errors->ok()) {
    // The pipeline downstream was poisoned while we were pushing events;
    // surface its first error as ours.
    status = options_.errors->status();
  }
  if (!status.ok() && error_.ok()) error_ = status;
  return status;
}

Status SaxParser::Feed(std::string_view chunk) {
  if (!error_.ok()) return error_;
  if (finished_) return Status::InvalidArgument("Feed after Finish");
  if (!started_) {
    started_ = true;
    if (options_.emit_stream_brackets) {
      Emit(Event::StartStream(options_.stream_id));
    }
  }
  // Drop the already-consumed prefix before appending, keeping the buffer
  // bounded by the largest single token.
  if (pos_ > 0) {
    buffer_.erase(0, pos_);
    pos_ = 0;
  }
  buffer_.append(chunk);
  Status status = Consume();
  // Completed events must reach the sink before Feed returns, error or not
  // (callers observe the display between chunks).
  FlushBatch();
  return Latch(std::move(status));
}

Status SaxParser::Finish() {
  if (!error_.ok()) return error_;
  if (finished_) return Status::OK();
  finished_ = true;
  Status status = [&]() -> Status {
    if (pos_ < buffer_.size()) {
      // Leftover input that never completed a token.
      std::string_view rest(buffer_.data() + pos_, buffer_.size() - pos_);
      if (rest.find('<') != std::string_view::npos) {
        return Status::ParseError("unterminated markup at end of document");
      }
      pending_text_.append(rest);
    }
    XFLUX_RETURN_IF_ERROR(FlushText());
    if (!open_elements_.empty()) {
      return Status::ParseError(
          "unclosed element <" +
          std::string(TagSpelling(open_elements_.back().tag)) +
          "> at end of document");
    }
    if (options_.emit_stream_brackets) {
      Emit(Event::EndStream(options_.stream_id));
    }
    return Status::OK();
  }();
  FlushBatch();
  return Latch(std::move(status));
}

Status SaxParser::FlushText() {
  if (pending_text_.empty()) return Status::OK();
  std::string raw;
  raw.swap(pending_text_);
  // "]]>" may not appear literally in character data (XML 1.0 §2.4); it is
  // usually the tail of a corrupted CDATA section.  pending_text_ spans
  // chunk boundaries, so a split "]]>" is still caught here.
  if (raw.find("]]>") != std::string::npos) {
    return Status::ParseError("']]>' in character data");
  }
  if (!options_.keep_whitespace && AllWhitespace(raw)) return Status::OK();
  // Entity-free text (the common case) goes straight into a shared buffer.
  std::string_view chars = raw;
  std::string decoded;
  if (raw.find('&') != std::string::npos) {
    auto status = DecodeEntities(raw);
    if (!status.ok()) return status.status();
    decoded = std::move(status).value();
    chars = decoded;
  }
  if (open_elements_.empty()) {
    // Text outside the document element: only whitespace is legal.
    if (!AllWhitespace(chars)) {
      return Status::ParseError("character data outside document element");
    }
    return Status::OK();
  }
  Emit(Event::Characters(options_.stream_id, TextRef::Copy(chars)));
  return Status::OK();
}

Status SaxParser::Consume() {
  while (pos_ < buffer_.size()) {
    if (buffer_[pos_] != '<') {
      size_t lt = buffer_.find('<', pos_);
      if (lt == std::string::npos) {
        // Text may continue in the next chunk; keep accumulating.
        pending_text_.append(buffer_, pos_, buffer_.size() - pos_);
        pos_ = buffer_.size();
        if (options_.max_token_bytes > 0 &&
            pending_text_.size() > options_.max_token_bytes) {
          return Status::ResourceExhausted(
              "character data exceeds max_token_bytes=" +
              std::to_string(options_.max_token_bytes));
        }
        return Status::OK();
      }
      pending_text_.append(buffer_, pos_, lt - pos_);
      pos_ = lt;
      continue;
    }
    auto consumed = ConsumeMarkup();
    if (!consumed.ok()) return consumed.status();
    if (!consumed.value()) {
      // Need more input.  An unterminated token must not grow the buffer
      // without bound ("<tag " followed by gigabytes of attribute noise).
      if (options_.max_token_bytes > 0 &&
          buffer_.size() - pos_ > options_.max_token_bytes) {
        return Status::ResourceExhausted(
            "markup token exceeds max_token_bytes=" +
            std::to_string(options_.max_token_bytes));
      }
      return Status::OK();
    }
  }
  return Status::OK();
}

StatusOr<bool> SaxParser::ConsumeMarkup() {
  std::string_view buf(buffer_.data() + pos_, buffer_.size() - pos_);
  // Comments.
  if (buf.rfind("<!--", 0) == 0) {
    size_t end = buf.find("-->", 4);
    if (end == std::string_view::npos) return false;
    pos_ += end + 3;
    return true;
  }
  // CDATA: raw character data, no entity decoding.
  if (buf.rfind("<![CDATA[", 0) == 0) {
    size_t end = buf.find("]]>", 9);
    if (end == std::string_view::npos) return false;
    XFLUX_RETURN_IF_ERROR(FlushText());
    std::string_view literal = buf.substr(9, end - 9);
    if (open_elements_.empty() && !AllWhitespace(literal)) {
      return Status::ParseError("character data outside document element");
    }
    if (!open_elements_.empty()) {
      Emit(Event::Characters(options_.stream_id, TextRef::Copy(literal)));
    }
    pos_ += end + 3;
    return true;
  }
  // DOCTYPE and other declarations: skip, honoring an internal subset.
  if (buf.rfind("<!", 0) == 0) {
    int bracket_depth = 0;
    for (size_t i = 2; i < buf.size(); ++i) {
      char c = buf[i];
      if (c == '[') ++bracket_depth;
      if (c == ']') --bracket_depth;
      if (c == '>' && bracket_depth == 0) {
        pos_ += i + 1;
        return true;
      }
    }
    return false;
  }
  // Processing instructions and the XML declaration.
  if (buf.rfind("<?", 0) == 0) {
    size_t end = buf.find("?>", 2);
    if (end == std::string_view::npos) return false;
    pos_ += end + 2;
    return true;
  }
  // End tag.
  if (buf.rfind("</", 0) == 0) {
    size_t end = buf.find('>', 2);
    if (end == std::string_view::npos) return false;
    std::string_view name = buf.substr(2, end - 2);
    while (!name.empty() && IsSpace(name.back())) name.remove_suffix(1);
    XFLUX_RETURN_IF_ERROR(FlushText());
    if (open_elements_.empty()) {
      return Status::ParseError("unmatched end tag </" + std::string(name) +
                                ">");
    }
    // The end tag reuses the matching start tag's symbol: one spelling
    // compare, no intern lookup.
    const OpenElement& open = open_elements_.back();
    if (TagSpelling(open.tag) != name) {
      return Status::ParseError("mismatched end tag </" + std::string(name) +
                                ">, expected </" +
                                std::string(TagSpelling(open.tag)) + ">");
    }
    Emit(Event::EndElement(options_.stream_id, open.tag, open.oid));
    open_elements_.pop_back();
    pos_ += end + 1;
    return true;
  }
  // Start tag: find the terminating '>', skipping quoted attribute values.
  char quote = 0;
  for (size_t i = 1; i < buf.size(); ++i) {
    char c = buf[i];
    if (quote != 0) {
      if (c == quote) quote = 0;
      continue;
    }
    if (c == '"' || c == '\'') {
      quote = c;
      continue;
    }
    if (c == '<') {
      return Status::ParseError("'<' inside tag");
    }
    if (c == '>') {
      XFLUX_RETURN_IF_ERROR(FlushText());
      XFLUX_RETURN_IF_ERROR(EmitStartTag(buf.substr(1, i - 1)));
      pos_ += i + 1;
      return true;
    }
  }
  return false;
}

Status SaxParser::EmitStartTag(std::string_view body) {
  bool self_closing = false;
  if (!body.empty() && body.back() == '/') {
    self_closing = true;
    body.remove_suffix(1);
  }
  size_t i = 0;
  while (i < body.size() && IsNameChar(body[i])) ++i;
  if (i == 0) return Status::ParseError("empty tag name");
  std::string_view name = body.substr(0, i);
  Symbol tag = InternTag(name);

  Oid oid = next_oid_++;
  Emit(Event::StartElement(options_.stream_id, tag, oid));

  // Attributes, tokenized as '@name' child elements.
  std::string attr_tag;
  while (i < body.size()) {
    while (i < body.size() && IsSpace(body[i])) ++i;
    if (i >= body.size()) break;
    size_t ns = i;
    while (i < body.size() && IsNameChar(body[i])) ++i;
    if (i == ns) {
      return Status::ParseError("bad attribute in <" + std::string(name) +
                                ">");
    }
    std::string_view attr = body.substr(ns, i - ns);
    while (i < body.size() && IsSpace(body[i])) ++i;
    if (i >= body.size() || body[i] != '=') {
      return Status::ParseError("attribute '" + std::string(attr) +
                                "' missing '='");
    }
    ++i;
    while (i < body.size() && IsSpace(body[i])) ++i;
    if (i >= body.size() || (body[i] != '"' && body[i] != '\'')) {
      return Status::ParseError("attribute '" + std::string(attr) +
                                "' missing quote");
    }
    char quote = body[i++];
    size_t vs = i;
    while (i < body.size() && body[i] != quote) ++i;
    if (i >= body.size()) {
      return Status::ParseError("unterminated attribute value in <" +
                                std::string(name) + ">");
    }
    auto value = DecodeEntities(body.substr(vs, i - vs));
    if (!value.ok()) return value.status();
    ++i;  // closing quote

    attr_tag.assign(1, '@');
    attr_tag.append(attr);
    Symbol attr_sym = InternTag(attr_tag);
    Oid attr_oid = next_oid_++;
    Emit(Event::StartElement(options_.stream_id, attr_sym, attr_oid));
    Emit(Event::Characters(options_.stream_id, TextRef::Copy(value.value())));
    Emit(Event::EndElement(options_.stream_id, attr_sym, attr_oid));
  }

  if (self_closing) {
    Emit(Event::EndElement(options_.stream_id, tag, oid));
  } else {
    open_elements_.push_back(OpenElement{tag, oid});
  }
  return Status::OK();
}

StatusOr<EventVec> SaxParser::Tokenize(std::string_view document,
                                       const Options& options) {
  CollectingSink sink;
  SaxParser parser(options, &sink);
  XFLUX_RETURN_IF_ERROR(parser.Feed(document));
  XFLUX_RETURN_IF_ERROR(parser.Finish());
  return sink.Take();
}

}  // namespace xflux
