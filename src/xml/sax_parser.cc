#include "xml/sax_parser.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "xml/escape.h"
#include "xml/scan.h"

namespace xflux {

namespace {

// Initial chunk capacity; rollovers allocate NextPow2(tail + incoming) when
// larger, so slow-drip feeds amortize to O(n) total copying.
constexpr size_t kMinChunkBytes = 16 * 1024;

size_t NextPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

// True when the available bytes of buf are consistent with lit (i.e. buf
// may still turn out to start with lit once more input arrives).
bool CouldBePrefix(std::string_view buf, std::string_view lit) {
  size_t n = std::min(buf.size(), lit.size());
  return std::memcmp(buf.data(), lit.data(), n) == 0;
}

// Equality for names whose lengths already matched: word loads beat a libc
// memcmp call at tag-name sizes.
bool NameEq(const char* a, const char* b, size_t n) {
  if (n >= 4) {
    uint32_t a0;
    uint32_t a1;
    uint32_t b0;
    uint32_t b1;
    std::memcpy(&a0, a, 4);
    std::memcpy(&b0, b, 4);
    std::memcpy(&a1, a + n - 4, 4);
    std::memcpy(&b1, b + n - 4, 4);
    if (((a0 ^ b0) | (a1 ^ b1)) != 0) return false;
    return n <= 8 || std::memcmp(a + 4, b + 4, n - 8) == 0;
  }
  for (size_t i = 0; i < n; ++i) {
    if (a[i] != b[i]) return false;
  }
  return true;
}

}  // namespace

SaxParser::SaxParser(const Options& options, EventSink* sink)
    : options_(options), sink_(sink), next_oid_(options.first_oid) {
  if (options_.batch_size > 0) batch_.reserve(options_.batch_size);
}

void SaxParser::Emit(Event e) {
  ++events_emitted_;
  if (options_.batch_size == 0) {
    sink_->Accept(std::move(e));
    return;
  }
  batch_.push_back(std::move(e));
  if (batch_.size() >= options_.batch_size) FlushBatch();
}

void SaxParser::FlushBatch() {
  if (batch_.empty()) return;
  EventBatch out;
  out.reserve(options_.batch_size);
  out.swap(batch_);
  sink_->AcceptBatch(std::move(out));
}

Status SaxParser::Latch(Status status) {
  if (status.ok() && options_.errors != nullptr && !options_.errors->ok()) {
    // The pipeline downstream was poisoned while we were pushing events;
    // surface its first error as ours.
    status = options_.errors->status();
  }
  if (!status.ok() && error_.ok()) error_ = status;
  return status;
}

void SaxParser::SpillTextRun() {
  if (pos_ > text_start_) {
    pending_text_.append(chunk_.data() + text_start_, pos_ - text_start_);
  }
  text_start_ = pos_;
}

TextRef SaxParser::MakeText(std::string_view raw_in_chunk) {
  if (raw_in_chunk.empty()) return TextRef();
  if (raw_in_chunk.size() >= options_.min_alias_bytes) {
    ++stats_.aliased_texts;
    if (window_foreign_) {
      // Adopted storage is not ours to write: headers bump-allocate from
      // the chunk's sidecar arena (same lifetime — reclaimed with the
      // chunk), overflowing to heap reps if the arena fills.
      if (sidecar_used_ + TextRef::kSliceRepBytes <=
          chunk_.sidecar_capacity()) {
        void* storage = chunk_.sidecar_data() + sidecar_used_;
        sidecar_used_ += TextRef::kSliceRepBytes;
        return TextRef::EmbeddedSlice(chunk_, storage, raw_in_chunk.data(),
                                      raw_in_chunk.size());
      }
      return TextRef::Slice(chunk_, raw_in_chunk.data(), raw_in_chunk.size());
    }
    // Carve the slice header from the top of the window itself — the
    // common case costs a bump-pointer, not a malloc.  A full arena (the
    // window caught up with the carved headers) falls back to a heap rep.
    if (arena_floor_ >= TextRef::kSliceRepBytes &&
        arena_floor_ - TextRef::kSliceRepBytes >= written_) {
      arena_floor_ -= TextRef::kSliceRepBytes;
      return TextRef::EmbeddedSlice(chunk_,
                                    chunk_.mutable_data() + arena_floor_,
                                    raw_in_chunk.data(), raw_in_chunk.size());
    }
    return TextRef::Slice(chunk_, raw_in_chunk.data(), raw_in_chunk.size());
  }
  if (raw_in_chunk.size() <= TextRef::kInlineBytes) {
    ++stats_.inlined_texts;
  } else {
    ++stats_.copied_texts;
  }
  return TextRef::Copy(raw_in_chunk);
}

void SaxParser::EnsureWindow(size_t incoming) {
  const bool foreign = window_foreign_;
  if (!foreign && chunk_.valid() && written_ + incoming <= arena_floor_) {
    return;
  }
  if (!chunk_.valid() && incoming == 0) return;
  // The in-chunk text run cannot survive a move of the window; park it in
  // the owned spill.  Only the incomplete markup tail stays live.
  size_t run = pos_ - text_start_;
  SpillTextRun();
  size_t tail = written_ - pos_;
  size_t need = tail + incoming;
  if (!foreign && chunk_.valid() && chunk_.use_count() == 1 &&
      chunk_.capacity() >= need) {
    // Sole owner: no slices pin these bytes, so reuse the storage in place.
    if (pos_ > 0 && tail > 0) {
      std::memmove(chunk_.mutable_data(), chunk_.data() + pos_, tail);
    }
    ++stats_.compactions;
  } else {
    // An adopted window is never compacted (the bytes are not ours): its
    // unconsumed tail is spliced into an owned window instead.
    StableChunk fresh;
    if (spare_.valid() && spare_.use_count() == 1 &&
        spare_.capacity() >= need) {
      fresh = std::move(spare_);
    } else {
      fresh = StableChunk::Allocate(std::max(kMinChunkBytes, NextPow2(need)));
      ++stats_.chunk_allocs;
    }
    if (tail > 0) std::memcpy(fresh.mutable_data(), chunk_.data() + pos_, tail);
    if (foreign) stats_.splice_bytes += tail + run;
    if (!foreign && chunk_.valid()) {
      // Park the replaced window even if in-flight events still pin it:
      // by the next replacement the batch has flushed and the reuse check
      // (sole ownership) usually passes — steady-state streaming then
      // cycles one scratch window instead of allocating per boundary.
      spare_ = std::move(chunk_);
    }
    chunk_ = std::move(fresh);
    window_foreign_ = false;
  }
  written_ = tail;
  pos_ = 0;
  text_start_ = 0;
  // Either path leaves the storage free of live embedded headers (sole
  // ownership means every slice died; a fresh chunk starts empty).
  arena_floor_ = chunk_.capacity() & ~size_t{7};
}

Status SaxParser::Feed(std::string_view chunk) {
  if (!error_.ok()) return error_;
  if (finished_) return Status::InvalidArgument("Feed after Finish");
  if (!started_) {
    started_ = true;
    if (options_.emit_stream_brackets) {
      Emit(Event::StartStream(options_.stream_id));
    }
  }
  // Large inputs are copied in and consumed in cache-sized slices: copying
  // a whole megabyte into the window before scanning it would evict every
  // byte from L1/L2 right before the scan loops read it back.
  constexpr size_t kFeedSlice = 64 * 1024;
  Status status;
  do {
    std::string_view piece = chunk.substr(0, kFeedSlice);
    chunk.remove_prefix(piece.size());
    if (!piece.empty()) {
      EnsureWindow(piece.size());
      std::memcpy(chunk_.mutable_data() + written_, piece.data(),
                  piece.size());
      written_ += piece.size();
    }
    status = Consume();
  } while (status.ok() && !chunk.empty());
  // Completed events must reach the sink before Feed returns, error or not
  // (callers observe the display between chunks).
  FlushBatch();
  return Latch(std::move(status));
}

Status SaxParser::Feed(StableChunk chunk, size_t size) {
  XFLUX_CHECK(size <= chunk.capacity());
  if (!chunk.valid() || size == 0) return Feed(std::string_view());
  if (size < options_.adopt_min_bytes) {
    // Below the adoption threshold the copy-in path wins: it keeps PR 9's
    // cache-resident pinned window and skips per-chunk boundary splicing.
    return Feed(std::string_view(chunk.data(), size));
  }
  if (!error_.ok()) return error_;
  if (finished_) return Status::InvalidArgument("Feed after Finish");
  if (!started_) {
    started_ = true;
    if (options_.emit_stream_brackets) {
      Emit(Event::StartStream(options_.stream_id));
    }
  }
  Status status;
  // A markup token the previous feed left incomplete cannot be parsed
  // across two buffers; complete it by copy — the splice.  Bytes drip from
  // the adopted chunk into the owned window in small steps until the
  // window drains (text always consumes to the window end, so a non-empty
  // unconsumed tail is always markup).
  constexpr size_t kSpliceStep = 256;
  size_t offset = 0;
  // The drain ends when every byte of the *previous* feed is consumed —
  // the straddling token completed — not when the window is fully
  // consumed: a splice step usually ends mid-token itself, and chasing
  // that tail would drain the whole chunk by copy.
  size_t old_remaining = written_ - pos_;
  while (status.ok() && old_remaining > 0 && offset < size) {
    size_t n = std::min(kSpliceStep, size - offset);
    EnsureWindow(n);
    std::memcpy(chunk_.mutable_data() + written_, chunk.data() + offset, n);
    written_ += n;
    offset += n;
    stats_.splice_bytes += n;
    size_t tail_before = written_ - pos_;
    status = Consume();
    size_t consumed = tail_before - (written_ - pos_);
    old_remaining -= std::min(old_remaining, consumed);
  }
  if (status.ok() && old_remaining == 0 && offset < size && pos_ < written_) {
    // The last splice step itself ended mid-token.  Those unconsumed bytes
    // are all from the new chunk (old_remaining is zero), so rewind them:
    // they will be scanned in place instead.
    size_t rewind = written_ - pos_;
    written_ -= rewind;
    offset -= rewind;
    stats_.splice_bytes -= rewind;
  }
  if (status.ok() && offset < size) {
    // Install the adopted chunk as the scan window and consume in place.
    // Any text run in the old window spills (it cannot span windows); the
    // old owned window is parked for reuse as the next splice buffer.
    if (window_foreign_ && pos_ > text_start_) {
      stats_.splice_bytes += pos_ - text_start_;
    }
    SpillTextRun();
    if (!window_foreign_ && chunk_.valid()) {
      // Parked even if still pinned by in-flight events; see EnsureWindow.
      spare_ = std::move(chunk_);
    }
    chunk_ = std::move(chunk);
    window_foreign_ = true;
    sidecar_used_ = 0;
    written_ = size;
    pos_ = offset;
    text_start_ = offset;
    arena_floor_ = size;  // unused while foreign; reset on demotion
    ++stats_.chunk_adoptions;
    stats_.adopted_bytes += size - offset;
    status = Consume();
  }
  FlushBatch();
  return Latch(std::move(status));
}

Status SaxParser::MarkupTooBigError() const {
  return Status::ResourceExhausted("markup token exceeds max_token_bytes=" +
                                   std::to_string(options_.max_token_bytes));
}

Status SaxParser::TextTooBigError() const {
  return Status::ResourceExhausted("character data exceeds max_token_bytes=" +
                                   std::to_string(options_.max_token_bytes));
}

Status SaxParser::Finish() {
  if (!error_.ok()) return error_;
  if (finished_) return Status::OK();
  finished_ = true;
  Status status = [&]() -> Status {
    if (pos_ < written_) {
      // Text is always consumed to the window's end, so an unconsumed tail
      // is an incomplete markup token.
      return Status::ParseError("unterminated markup at end of document");
    }
    XFLUX_RETURN_IF_ERROR(FlushText());
    if (!open_elements_.empty()) {
      return Status::ParseError(
          "unclosed element <" +
          std::string(TagSpelling(open_elements_.back().tag)) +
          "> at end of document");
    }
    if (options_.emit_stream_brackets) {
      Emit(Event::EndStream(options_.stream_id));
    }
    return Status::OK();
  }();
  FlushBatch();
  return Latch(std::move(status));
}

Status SaxParser::FlushText() {
  size_t span_len = pos_ - text_start_;
  if (pending_text_.empty() && span_len == 0) return Status::OK();
  // Fast path: an uninterrupted, entity-free, ']'-free in-chunk run inside
  // the document element — no spill merge, no "]]>" search, no decode, and
  // no std::string traffic at all.
  if (pending_text_.empty() && !text_amp_ && !text_rbracket_ &&
      !open_elements_.empty()) {
    std::string_view span(chunk_.data() + text_start_, span_len);
    text_start_ = pos_;
    if (!options_.keep_whitespace && scan::AllWhitespace(span)) {
      return Status::OK();
    }
    TextRef text = MakeText(span);
    EmitWith([&](Event& e) {
      e.kind = EventKind::kCharacters;
      e.id = options_.stream_id;
      e.text = std::move(text);
    });
    return Status::OK();
  }
  std::string_view span =
      span_len > 0 ? std::string_view(chunk_.data() + text_start_, span_len)
                   : std::string_view();
  bool has_amp = text_amp_;
  bool has_rbracket = text_rbracket_;
  text_amp_ = false;
  text_rbracket_ = false;
  text_start_ = pos_;
  std::string spilled;
  spilled.swap(pending_text_);

  // The raw run is spilled-prefix + in-chunk-tail; merge only when a spill
  // exists (the rare interrupted-run case).
  bool in_chunk = spilled.empty();
  std::string merged;
  std::string_view raw;
  if (in_chunk) {
    raw = span;
  } else {
    merged.reserve(spilled.size() + span.size());
    merged = std::move(spilled);
    merged.append(span);
    raw = merged;
  }
  // "]]>" may not appear literally in character data (XML 1.0 §2.4); it is
  // usually the tail of a corrupted CDATA section.  The run's ']' flag
  // covers every scanned byte, so the substring search runs only when a
  // ']' actually occurred.
  if (has_rbracket && raw.find("]]>") != std::string_view::npos) {
    return Status::ParseError("']]>' in character data");
  }
  if (!options_.keep_whitespace && scan::AllWhitespace(raw)) {
    return Status::OK();
  }
  // Entity-free text (the common case) skips the decode pass entirely.
  std::string_view chars = raw;
  std::string decoded;
  if (has_amp) {
    auto status = DecodeEntities(raw);
    if (!status.ok()) return status.status();
    decoded = std::move(status).value();
    chars = decoded;
  }
  if (open_elements_.empty()) {
    // Text outside the document element: only whitespace is legal.
    if (!scan::AllWhitespace(chars)) {
      return Status::ParseError("character data outside document element");
    }
    return Status::OK();
  }
  TextRef text;
  if (in_chunk && !has_amp) {
    text = MakeText(chars);
  } else {
    if (chars.size() <= TextRef::kInlineBytes) {
      ++stats_.inlined_texts;
    } else {
      ++stats_.copied_texts;
    }
    text = TextRef::Copy(chars);
  }
  EmitWith([&](Event& e) {
    e.kind = EventKind::kCharacters;
    e.id = options_.stream_id;
    e.text = std::move(text);
  });
  return Status::OK();
}

Status SaxParser::Consume() {
  // The hot loop keeps the cursor and the scan counter in locals and
  // handles the dominant tokens (character data, start tags, end tags)
  // inline; pos_ is synchronized before anything that reads it (FlushText,
  // ConsumeMarkup, every return).  Cold markup ('<!', '<?') and tokens
  // resumed across a Feed boundary take the general ConsumeMarkup path.
  std::string_view win = window();
  const char* data = win.data();
  const size_t size = win.size();
  size_t pos = pos_;
  uint64_t scanned = 0;

  if (token_kind_ != TokenKind::kNone && pos < size) {
    auto consumed = ConsumeMarkup();
    if (!consumed.ok()) return consumed.status();
    if (!consumed.value()) {
      if (options_.max_token_bytes > 0 &&
          written_ - pos_ > options_.max_token_bytes) {
        return MarkupTooBigError();
      }
      return Status::OK();
    }
    pos = pos_;
  }

  while (pos < size) {
    if (data[pos] != '<') {
      scan::TextScan ts = scan::ScanText(win, pos);
      size_t stop = ts.stop == scan::npos ? size : ts.stop;
      scanned += stop - pos;
      text_amp_ |= ts.amp;
      text_rbracket_ |= ts.rbracket;
      pos = stop;
      if (ts.stop == scan::npos) {
        // Text may continue in the next chunk; the run stays in the window.
        pos_ = pos;
        stats_.bytes_scanned += scanned;
        if (options_.max_token_bytes > 0 &&
            pending_text_.size() + (pos - text_start_) >
                options_.max_token_bytes) {
          return TextTooBigError();
        }
        return Status::OK();
      }
      // The run's length is final (markup follows); bound it here so huge
      // windows (adopted chunks) fail exactly like the same bytes dripped
      // through the copy path's window-end check above.
      if (options_.max_token_bytes > 0 &&
          pending_text_.size() + (pos - text_start_) >
              options_.max_token_bytes) {
        pos_ = pos;
        stats_.bytes_scanned += scanned;
        return TextTooBigError();
      }
      continue;
    }
    if (pos + 1 >= size) break;  // kind needs two bytes; resume next Feed
    const char c2 = data[pos + 1];
    if (c2 == '/') {
      // ---- end tag, complete within the window ----
      // The well-formed case is fully predicted by the open stack: the tag
      // must spell "</" + top.spelling + ">", so one length-guided compare
      // resolves it with no delimiter scan and no whitespace trim.  Any
      // mismatch (or a tag cut by the window edge) falls through to the
      // general scan below.
      if (!open_elements_.empty()) {
        const OpenElement& open = open_elements_.back();
        const size_t n = open.spelling.size();
        if (pos + 2 + n < size && data[pos + 2 + n] == '>' &&
            NameEq(open.spelling.data(), data + pos + 2, n)) {
          scanned += n + 1;
          pos_ = pos;
          if (pos != text_start_ || !pending_text_.empty()) {
            if (Status s = FlushText(); !s.ok()) {
              stats_.bytes_scanned += scanned;
              return s;
            }
          }
          EmitWith([&](Event& e) {
            e.kind = EventKind::kEndElement;
            e.id = options_.stream_id;
            e.tag = open.tag;
            e.oid = open.oid;
          });
          open_elements_.pop_back();
          pos += n + 3;
          text_start_ = pos;
          continue;
        }
      }
      size_t gt = scan::FindAnyOf<'>'>(win, pos + 2);
      if (gt == scan::npos) {
        token_kind_ = TokenKind::kEndTag;
        scan_done_ = size - pos;
        scanned += size - pos - 2;
        break;
      }
      size_t end = gt - pos;  // '>' offset relative to pos
      scanned += end - 1;
      if (TokenTooBig(end + 1)) {
        pos_ = pos;
        stats_.bytes_scanned += scanned;
        return MarkupTooBigError();
      }
      std::string_view name(data + pos + 2, end - 2);
      while (!name.empty() && scan::IsSpaceChar(name.back())) {
        name.remove_suffix(1);
      }
      pos_ = pos;
      if (pos != text_start_ || !pending_text_.empty()) {
        if (Status s = FlushText(); !s.ok()) {
          stats_.bytes_scanned += scanned;
          return s;
        }
      }
      if (open_elements_.empty()) {
        stats_.bytes_scanned += scanned;
        return Status::ParseError("unmatched end tag </" + std::string(name) +
                                  ">");
      }
      const OpenElement& open = open_elements_.back();
      if (open.spelling.size() != name.size() ||
          !NameEq(open.spelling.data(), name.data(), name.size())) {
        stats_.bytes_scanned += scanned;
        return Status::ParseError("mismatched end tag </" + std::string(name) +
                                  ">, expected </" +
                                  std::string(open.spelling) + ">");
      }
      EmitWith([&](Event& e) {
        e.kind = EventKind::kEndElement;
        e.id = options_.stream_id;
        e.tag = open.tag;
        e.oid = open.oid;
      });
      open_elements_.pop_back();
      pos += end + 1;
      text_start_ = pos;
      continue;
    }
    if (c2 != '!' && c2 != '?') {
      // ---- start tag ----
      // Attribute-less tags (<name> and <name/>) are the dominant shape in
      // data-oriented XML; one name scan resolves them with no body rescan
      // and no EmitStartTag call.
      size_t name_end = scan::FindNameEnd(win, pos + 1);
      if (name_end > pos + 1 && name_end < size) {
        const char after = data[name_end];
        const bool simple = after == '>';
        const bool self_closing = !simple && after == '/' &&
                                  name_end + 1 < size &&
                                  data[name_end + 1] == '>';
        if (simple || self_closing) {
          scanned += name_end + (simple ? 0 : 1) - pos;
          if (TokenTooBig(name_end + (simple ? 1 : 2) - pos)) {
            pos_ = pos;
            stats_.bytes_scanned += scanned;
            return MarkupTooBigError();
          }
          pos_ = pos;
          if (pos != text_start_ || !pending_text_.empty()) {
            if (Status s = FlushText(); !s.ok()) {
              stats_.bytes_scanned += scanned;
              return s;
            }
          }
          TagCache::Interned tag = tag_cache_.Intern(
              std::string_view(data + pos + 1, name_end - pos - 1),
              /*attribute=*/false, &stats_);
          Oid oid = next_oid_++;
          EmitWith([&](Event& e) {
            e.kind = EventKind::kStartElement;
            e.id = options_.stream_id;
            e.tag = tag.symbol;
            e.oid = oid;
          });
          if (self_closing) {
            EmitWith([&](Event& e) {
              e.kind = EventKind::kEndElement;
              e.id = options_.stream_id;
              e.tag = tag.symbol;
              e.oid = oid;
            });
          } else {
            open_elements_.push_back(OpenElement{tag.symbol, oid,
                                                 tag.spelling});
          }
          pos = name_end + (simple ? 1 : 2);
          text_start_ = pos;
          continue;
        }
      }
      // General form: attributes, whitespace, or a tag split across the
      // window end.  The terminator scan resumes past the name.
      char quote = 0;
      size_t end = scan::FindTagEnd(win.substr(pos),
                                    name_end > pos + 1 ? name_end - pos : 1,
                                    &quote);
      if (end == scan::npos) {
        token_kind_ = TokenKind::kStartTag;
        scan_done_ = size - pos;
        tag_quote_ = quote;
        scanned += size - pos - 1;
        break;
      }
      scanned += end;
      if (data[pos + end] == '<') {
        pos_ = pos;
        stats_.bytes_scanned += scanned;
        return Status::ParseError("'<' inside tag");
      }
      if (TokenTooBig(end + 1)) {
        pos_ = pos;
        stats_.bytes_scanned += scanned;
        return MarkupTooBigError();
      }
      pos_ = pos;
      if (pos != text_start_ || !pending_text_.empty()) {
        if (Status s = FlushText(); !s.ok()) {
          stats_.bytes_scanned += scanned;
          return s;
        }
      }
      if (Status s = EmitStartTag(std::string_view(data + pos + 1, end - 1));
          !s.ok()) {
        stats_.bytes_scanned += scanned;
        return s;
      }
      pos += end + 1;
      text_start_ = pos;
      continue;
    }
    // ---- cold markup: comment / CDATA / DOCTYPE / PI ----
    pos_ = pos;
    stats_.bytes_scanned += scanned;
    scanned = 0;
    auto consumed = ConsumeMarkup();
    if (!consumed.ok()) return consumed.status();
    if (!consumed.value()) {
      // Need more input.  An unterminated token must not grow the buffer
      // without bound ("<tag " followed by gigabytes of attribute noise).
      if (options_.max_token_bytes > 0 &&
          written_ - pos_ > options_.max_token_bytes) {
        return MarkupTooBigError();
      }
      return Status::OK();
    }
    pos = pos_;
  }

  pos_ = pos;
  stats_.bytes_scanned += scanned;
  if (pos < size && options_.max_token_bytes > 0 &&
      written_ - pos > options_.max_token_bytes) {
    return MarkupTooBigError();
  }
  return Status::OK();
}

void SaxParser::AdvanceToken(size_t token_len) {
  // scan_done_/tag_quote_/doctype_depth_ are (re)initialized when the next
  // token's kind is committed, so only the cursor state resets here.
  pos_ += token_len;
  token_kind_ = TokenKind::kNone;
  // Any text run before the token was flushed or spilled by now.
  text_start_ = pos_;
}

StatusOr<bool> SaxParser::ConsumeMarkup() {
  std::string_view win = window();
  std::string_view buf = win.substr(pos_);
  if (token_kind_ == TokenKind::kNone) {
    // Commit to a token kind only once the prefix is unambiguous ("<!-"
    // may still become a comment, "<![CD" a CDATA section); commitment is
    // what lets the per-kind scans below resume instead of rescanning.
    if (buf.size() < 2) return false;
    switch (buf[1]) {
      case '!': {
        constexpr std::string_view kCommentOpen = "<!--";
        constexpr std::string_view kCdataOpen = "<![CDATA[";
        if (CouldBePrefix(buf, kCommentOpen)) {
          if (buf.size() < kCommentOpen.size()) return false;
          token_kind_ = TokenKind::kComment;
          scan_done_ = kCommentOpen.size();
        } else if (CouldBePrefix(buf, kCdataOpen)) {
          if (buf.size() < kCdataOpen.size()) return false;
          token_kind_ = TokenKind::kCdata;
          scan_done_ = kCdataOpen.size();
        } else {
          token_kind_ = TokenKind::kDoctype;
          scan_done_ = 2;
          doctype_depth_ = 0;
        }
        break;
      }
      case '?':
        token_kind_ = TokenKind::kPi;
        scan_done_ = 2;
        break;
      case '/':
        token_kind_ = TokenKind::kEndTag;
        scan_done_ = 2;
        break;
      default:
        token_kind_ = TokenKind::kStartTag;
        scan_done_ = 1;
        tag_quote_ = 0;
        break;
    }
  }

  switch (token_kind_) {
    case TokenKind::kComment: {
      size_t end = buf.find("-->", scan_done_);
      if (end == std::string_view::npos) {
        stats_.bytes_scanned += buf.size() - scan_done_;
        // Keep a 2-byte overlap: the terminator may straddle the boundary.
        scan_done_ = std::max(buf.size(), size_t{6}) - 2;
        return false;
      }
      stats_.bytes_scanned += end + 3 - scan_done_;
      if (TokenTooBig(end + 3)) return MarkupTooBigError();
      // Comments do not break a text run; park the prefix and continue.
      SpillTextRun();
      AdvanceToken(end + 3);
      return true;
    }
    case TokenKind::kCdata: {
      size_t end = buf.find("]]>", scan_done_);
      if (end == std::string_view::npos) {
        stats_.bytes_scanned += buf.size() - scan_done_;
        scan_done_ = std::max(buf.size(), size_t{11}) - 2;
        return false;
      }
      stats_.bytes_scanned += end + 3 - scan_done_;
      if (TokenTooBig(end + 3)) return MarkupTooBigError();
      XFLUX_RETURN_IF_ERROR(FlushText());
      std::string_view literal = buf.substr(9, end - 9);
      if (open_elements_.empty() && !scan::AllWhitespace(literal)) {
        return Status::ParseError("character data outside document element");
      }
      if (!open_elements_.empty()) {
        // CDATA is raw: no entity decoding, aliasing always safe.
        Emit(Event::Characters(options_.stream_id, MakeText(literal)));
      }
      AdvanceToken(end + 3);
      return true;
    }
    case TokenKind::kDoctype: {
      // DOCTYPE and other declarations: skip, honoring an internal subset.
      size_t i = scan_done_;
      for (; i < buf.size(); ++i) {
        char c = buf[i];
        if (c == '[') ++doctype_depth_;
        if (c == ']') --doctype_depth_;
        if (c == '>' && doctype_depth_ == 0) {
          stats_.bytes_scanned += i + 1 - scan_done_;
          if (TokenTooBig(i + 1)) return MarkupTooBigError();
          SpillTextRun();
          AdvanceToken(i + 1);
          return true;
        }
      }
      stats_.bytes_scanned += buf.size() - scan_done_;
      scan_done_ = buf.size();  // depth carries the state; nothing to rescan
      return false;
    }
    case TokenKind::kPi: {
      // Processing instructions and the XML declaration.
      size_t end = buf.find("?>", scan_done_);
      if (end == std::string_view::npos) {
        stats_.bytes_scanned += buf.size() - scan_done_;
        scan_done_ = std::max(buf.size(), size_t{3}) - 1;
        return false;
      }
      stats_.bytes_scanned += end + 2 - scan_done_;
      if (TokenTooBig(end + 2)) return MarkupTooBigError();
      SpillTextRun();
      AdvanceToken(end + 2);
      return true;
    }
    case TokenKind::kEndTag: {
      size_t end = buf.find('>', scan_done_);
      if (end == std::string_view::npos) {
        stats_.bytes_scanned += buf.size() - scan_done_;
        scan_done_ = buf.size();
        return false;
      }
      stats_.bytes_scanned += end + 1 - scan_done_;
      if (TokenTooBig(end + 1)) return MarkupTooBigError();
      std::string_view name = buf.substr(2, end - 2);
      while (!name.empty() && scan::IsSpaceChar(name.back())) {
        name.remove_suffix(1);
      }
      XFLUX_RETURN_IF_ERROR(FlushText());
      if (open_elements_.empty()) {
        return Status::ParseError("unmatched end tag </" + std::string(name) +
                                  ">");
      }
      // The end tag reuses the matching start tag's symbol and cached
      // spelling: one memcmp, no intern or symbol-table lookup.
      const OpenElement& open = open_elements_.back();
      if (open.spelling.size() != name.size() ||
          !NameEq(open.spelling.data(), name.data(), name.size())) {
        return Status::ParseError("mismatched end tag </" + std::string(name) +
                                  ">, expected </" + std::string(open.spelling) +
                                  ">");
      }
      EmitWith([&](Event& e) {
        e.kind = EventKind::kEndElement;
        e.id = options_.stream_id;
        e.tag = open.tag;
        e.oid = open.oid;
      });
      open_elements_.pop_back();
      AdvanceToken(end + 1);
      return true;
    }
    case TokenKind::kStartTag: {
      size_t end = scan::FindTagEnd(buf, scan_done_, &tag_quote_);
      if (end == scan::npos) {
        stats_.bytes_scanned += buf.size() - scan_done_;
        scan_done_ = buf.size();
        return false;
      }
      stats_.bytes_scanned += end + 1 - scan_done_;
      if (buf[end] == '<') {
        return Status::ParseError("'<' inside tag");
      }
      if (TokenTooBig(end + 1)) return MarkupTooBigError();
      XFLUX_RETURN_IF_ERROR(FlushText());
      XFLUX_RETURN_IF_ERROR(EmitStartTag(buf.substr(1, end - 1)));
      AdvanceToken(end + 1);
      return true;
    }
    case TokenKind::kNone:
      break;
  }
  return Status::Internal("unreachable markup state");
}

Status SaxParser::EmitStartTag(std::string_view body) {
  bool self_closing = false;
  if (!body.empty() && body.back() == '/') {
    self_closing = true;
    body.remove_suffix(1);
  }
  size_t i = scan::FindNameEnd(body, 0);
  if (i == 0) return Status::ParseError("empty tag name");
  std::string_view name = body.substr(0, i);
  TagCache::Interned tag =
      tag_cache_.Intern(name, /*attribute=*/false, &stats_);

  Oid oid = next_oid_++;
  EmitWith([&](Event& e) {
    e.kind = EventKind::kStartElement;
    e.id = options_.stream_id;
    e.tag = tag.symbol;
    e.oid = oid;
  });

  // Attributes, tokenized as '@name' child elements.
  while (i < body.size()) {
    while (i < body.size() && scan::IsSpaceChar(body[i])) ++i;
    if (i >= body.size()) break;
    size_t ns = i;
    i = scan::FindNameEnd(body, i);
    if (i == ns) {
      return Status::ParseError("bad attribute in <" + std::string(name) +
                                ">");
    }
    std::string_view attr = body.substr(ns, i - ns);
    while (i < body.size() && scan::IsSpaceChar(body[i])) ++i;
    if (i >= body.size() || body[i] != '=') {
      return Status::ParseError("attribute '" + std::string(attr) +
                                "' missing '='");
    }
    ++i;
    while (i < body.size() && scan::IsSpaceChar(body[i])) ++i;
    if (i >= body.size() || (body[i] != '"' && body[i] != '\'')) {
      return Status::ParseError("attribute '" + std::string(attr) +
                                "' missing quote");
    }
    char quote = body[i++];
    size_t vs = i;
    const void* q = std::memchr(body.data() + i, quote, body.size() - i);
    if (q == nullptr) {
      return Status::ParseError("unterminated attribute value in <" +
                                std::string(name) + ">");
    }
    i = static_cast<size_t>(static_cast<const char*>(q) - body.data());
    std::string_view raw = body.substr(vs, i - vs);
    ++i;  // closing quote

    // Entity-free values (decode is the identity) alias the input.
    TextRef value;
    if (!raw.empty() &&
        std::memchr(raw.data(), '&', raw.size()) != nullptr) {
      auto decoded = DecodeEntities(raw);
      if (!decoded.ok()) return decoded.status();
      if (decoded.value().size() <= TextRef::kInlineBytes) {
        ++stats_.inlined_texts;
      } else {
        ++stats_.copied_texts;
      }
      value = TextRef::Copy(decoded.value());
    } else {
      value = MakeText(raw);
    }

    Symbol attr_sym =
        tag_cache_.Intern(attr, /*attribute=*/true, &stats_).symbol;
    Oid attr_oid = next_oid_++;
    EmitWith([&](Event& e) {
      e.kind = EventKind::kStartElement;
      e.id = options_.stream_id;
      e.tag = attr_sym;
      e.oid = attr_oid;
    });
    EmitWith([&](Event& e) {
      e.kind = EventKind::kCharacters;
      e.id = options_.stream_id;
      e.text = std::move(value);
    });
    EmitWith([&](Event& e) {
      e.kind = EventKind::kEndElement;
      e.id = options_.stream_id;
      e.tag = attr_sym;
      e.oid = attr_oid;
    });
  }

  if (self_closing) {
    EmitWith([&](Event& e) {
      e.kind = EventKind::kEndElement;
      e.id = options_.stream_id;
      e.tag = tag.symbol;
      e.oid = oid;
    });
  } else {
    open_elements_.push_back(OpenElement{tag.symbol, oid, tag.spelling});
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// TagCache

namespace {

// Ends-mix hash: the first and last 8 bytes cover realistic tag names
// whole; only very long names with identical ends collide into the same
// probe sequence (resolved by the memcmp).
uint32_t HashName(std::string_view s) {
  uint64_t a = 0;
  uint64_t b = 0;
  if (s.size() >= 8) {
    std::memcpy(&a, s.data(), 8);
    std::memcpy(&b, s.data() + s.size() - 8, 8);
  } else if (s.size() >= 4) {
    // Two overlapping word loads cover 4..7 bytes without a byte loop
    // (realistic tag names live here).
    uint32_t lo;
    uint32_t hi;
    std::memcpy(&lo, s.data(), 4);
    std::memcpy(&hi, s.data() + s.size() - 4, 4);
    a = (static_cast<uint64_t>(hi) << 32) | lo;
  } else if (!s.empty()) {
    a = (static_cast<uint64_t>(static_cast<uint8_t>(s[0])) << 16) |
        (static_cast<uint64_t>(static_cast<uint8_t>(s[s.size() / 2])) << 8) |
        static_cast<uint8_t>(s[s.size() - 1]);
  }
  uint64_t h = (a ^ (b * 0x9E3779B97F4A7C15ull)) + s.size();
  h ^= h >> 29;
  h *= 0xBF58476D1CE4E5B9ull;
  h ^= h >> 32;
  return static_cast<uint32_t>(h);
}

}  // namespace

SaxParser::TagCache::Interned SaxParser::TagCache::Intern(
    std::string_view name, bool attribute, IngestStats* stats) {
  // The low hash bit carries the attribute flag, so "x" the element and
  // "x" the attribute never alias an entry.
  uint32_t h = (HashName(name) << 1) | (attribute ? 1u : 0u);
  size_t home = h & (kSlots - 1);
  for (size_t probe = 0; probe < kMaxProbe; ++probe) {
    Entry& e = entries_[(home + probe) & (kSlots - 1)];
    if (e.data == nullptr) {
      ++stats->tag_cache_misses;
      return Fill(&e, name, attribute, h);
    }
    if (e.hash == h && e.len == name.size() &&
        NameEq(e.data, name.data(), name.size())) {
      ++stats->tag_cache_hits;
      return Interned{e.symbol, std::string_view(e.data, e.len)};
    }
  }
  // Probe window full: evict the home slot (recency beats retention for
  // the document-local reuse this cache targets).
  ++stats->tag_cache_misses;
  return Fill(&entries_[home], name, attribute, h);
}

SaxParser::TagCache::Interned SaxParser::TagCache::Fill(Entry* e,
                                                        std::string_view name,
                                                        bool attribute,
                                                        uint32_t hash) {
  Symbol sym;
  std::string_view spelling;
  if (attribute) {
    attr_scratch_.assign(1, '@');
    attr_scratch_.append(name);
    sym = InternTag(attr_scratch_);
    spelling = TagSpelling(sym).substr(1);  // cache key omits the '@'
  } else {
    sym = InternTag(name);
    spelling = TagSpelling(sym);
  }
  // SymbolTable spellings are process-stable, so the entry may point at
  // them directly.
  *e = Entry{spelling.data(), static_cast<uint32_t>(spelling.size()), hash,
             sym};
  return Interned{sym, spelling};
}

StatusOr<EventVec> SaxParser::Tokenize(std::string_view document,
                                       const Options& options) {
  CollectingSink sink;
  SaxParser parser(options, &sink);
  XFLUX_RETURN_IF_ERROR(parser.Feed(document));
  XFLUX_RETURN_IF_ERROR(parser.Finish());
  return sink.Take();
}

}  // namespace xflux
