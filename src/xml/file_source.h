// Bulk document ingest from files and pipes (DESIGN.md Section 12).
//
// MappedFileSource mmaps a regular file and hands out adopted StableChunks
// over the mapping, so SaxParser::Feed(StableChunk) scans the page cache in
// place — no read() copy, no window copy-in.  Each window is an independent
// mapping whose unmap is the chunk's deleter: TextRef slices that alias the
// window keep exactly that window mapped (not the whole file) until the
// last slice drops.  Huge files stream as a sequence of windows; mmap
// failure (filesystem without mmap support, resource limits) degrades to a
// pread-into-heap fallback with identical parse results.
//
// ChunkedFileSource covers the non-seekable cases (pipes, FIFOs, sockets,
// /dev/stdin): it reads into heap buffers that are adopted the same way.
//
// IngestFile() picks the right source for a path and drives a parser to
// end-of-file (without calling Finish(), so callers may keep feeding).

#ifndef XFLUX_XML_FILE_SOURCE_H_
#define XFLUX_XML_FILE_SOURCE_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "util/status.h"
#include "util/text_ref.h"
#include "xml/sax_parser.h"

namespace xflux {

/// Streams a regular file as adopted chunks over mmap'd windows.
class MappedFileSource {
 public:
  struct Options {
    /// Bytes per mapped window; rounded up to the page size.  Files larger
    /// than one window are remapped window by window (each an independent
    /// mapping, unmapped when its last reference drops).
    size_t window_bytes = 64u << 20;
    /// Test hook: pretend mmap is unavailable and use the pread fallback.
    bool allow_mmap = true;
  };

  /// Opens `path` (must be a regular, non-empty-capable file).
  static StatusOr<MappedFileSource> Open(const std::string& path,
                                         const Options& options);
  static StatusOr<MappedFileSource> Open(const std::string& path) {
    return Open(path, Options());
  }

  MappedFileSource() = default;
  MappedFileSource(MappedFileSource&& other) noexcept { *this = std::move(other); }
  MappedFileSource& operator=(MappedFileSource&& other) noexcept;
  MappedFileSource(const MappedFileSource&) = delete;
  MappedFileSource& operator=(const MappedFileSource&) = delete;
  ~MappedFileSource();

  /// The next window as an adopted chunk, or the invalid chunk at EOF.
  /// The chunk (and any TextRef slice into it) keeps its window mapped —
  /// independent of this source and of the parser it is fed to.
  StatusOr<StableChunk> Next();

  size_t file_bytes() const { return file_bytes_; }
  /// Windows handed out so far via mmap / via the pread fallback.
  uint64_t mapped_windows() const { return mapped_windows_; }
  uint64_t fallback_windows() const { return fallback_windows_; }

 private:
  int fd_ = -1;
  size_t file_bytes_ = 0;
  size_t offset_ = 0;
  size_t window_bytes_ = 0;
  bool allow_mmap_ = true;
  uint64_t mapped_windows_ = 0;
  uint64_t fallback_windows_ = 0;
};

/// Streams a non-seekable fd (pipe, FIFO, socket, tty) as adopted heap
/// chunks.  Also works on regular files; MappedFileSource is faster there.
class ChunkedFileSource {
 public:
  struct Options {
    /// Target bytes per chunk; reads accumulate until the buffer fills or
    /// EOF, so pipes still produce adoption-sized chunks.
    size_t chunk_bytes = 256u << 10;
  };

  static StatusOr<ChunkedFileSource> Open(const std::string& path,
                                          const Options& options);
  static StatusOr<ChunkedFileSource> Open(const std::string& path) {
    return Open(path, Options());
  }
  /// Wraps an existing descriptor.  When `owns_fd`, the source closes it.
  static ChunkedFileSource FromFd(int fd, bool owns_fd,
                                  const Options& options);
  static ChunkedFileSource FromFd(int fd, bool owns_fd) {
    return FromFd(fd, owns_fd, Options());
  }

  ChunkedFileSource() = default;
  ChunkedFileSource(ChunkedFileSource&& other) noexcept { *this = std::move(other); }
  ChunkedFileSource& operator=(ChunkedFileSource&& other) noexcept;
  ChunkedFileSource(const ChunkedFileSource&) = delete;
  ChunkedFileSource& operator=(const ChunkedFileSource&) = delete;
  ~ChunkedFileSource();

  /// The next filled chunk, or the invalid chunk at EOF.
  StatusOr<StableChunk> Next();

 private:
  int fd_ = -1;
  bool owns_fd_ = false;
  bool eof_ = false;
  size_t chunk_bytes_ = 0;
};

struct FileIngestOptions {
  MappedFileSource::Options mapped;
  ChunkedFileSource::Options chunked;
};

/// Counters for one IngestFile run.
struct FileIngestReport {
  uint64_t bytes = 0;
  uint64_t chunks = 0;
  bool mapped = false;  // true when the mmap source served the file
};

/// Feeds the whole of `path` into `parser`: mmap'd windows for regular
/// files, chunked reads for pipes and other non-seekable inputs.  Does not
/// call parser->Finish().
StatusOr<FileIngestReport> IngestFile(const std::string& path,
                                      SaxParser* parser,
                                      const FileIngestOptions& options);
inline StatusOr<FileIngestReport> IngestFile(const std::string& path,
                                             SaxParser* parser) {
  return IngestFile(path, parser, FileIngestOptions());
}

}  // namespace xflux

#endif  // XFLUX_XML_FILE_SOURCE_H_
