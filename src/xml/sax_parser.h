// Streaming XML tokenizer (the paper's stream source, Section II).
//
// Breaks an XML document into the event vocabulary of core/event.h, one
// chunk at a time — the equivalent of the SAX parser the paper uses to feed
// XFlux.  Attributes are tokenized as child elements whose tag begins with
// '@' (so XPath attribute steps are ordinary child steps); the serializer
// reverses the encoding.
//
// Tags are interned into the global SymbolTable as they are parsed, and
// completed events are handed to the sink in EventBatch runs (one virtual
// call per Options::batch_size events) — the producing end of the batched
// data plane.

#ifndef XFLUX_XML_SAX_PARSER_H_
#define XFLUX_XML_SAX_PARSER_H_

#include <string>
#include <string_view>
#include <vector>

#include "core/event.h"
#include "core/event_sink.h"
#include "util/error_channel.h"
#include "util/status.h"
#include "util/symbol_table.h"

namespace xflux {

/// Incremental SAX-style tokenizer.  Feed() may be called with arbitrary
/// chunk boundaries; events are pushed to the sink no later than the end of
/// the Feed() call that completes them.  Finish() must be called once at
/// end of input.
class SaxParser {
 public:
  struct Options {
    /// Stream number stamped on every emitted event.
    StreamId stream_id = 0;
    /// Emit sS/eS brackets around the document.
    bool emit_stream_brackets = true;
    /// Keep whitespace-only character data (dropped by default, as is usual
    /// for data-oriented XML).
    bool keep_whitespace = false;
    /// First OID to assign; element OIDs increase in document order.
    Oid first_oid = 1;
    /// Events accumulated before one AcceptBatch call to the sink.  0
    /// disables batching (every event goes through sink->Accept singly);
    /// any pending run is always flushed at the end of Feed()/Finish().
    size_t batch_size = 64;
    /// Resource bound on hostile input: fail with kResourceExhausted when a
    /// single unfinished token (open markup or accumulated character data)
    /// exceeds this many buffered bytes.  0 = unlimited.
    size_t max_token_bytes = 0;
    /// When set (usually to the pipeline's context()->errors()), Feed and
    /// Finish surface the first downstream error as their return Status, so
    /// drivers see a poisoned pipeline without polling it separately.
    const ErrorChannel* errors = nullptr;
  };

  SaxParser(const Options& options, EventSink* sink);

  SaxParser(const SaxParser&) = delete;
  SaxParser& operator=(const SaxParser&) = delete;

  /// Consumes the next chunk of document text.  Errors latch: after the
  /// first non-OK return, further Feed/Finish calls return the same error
  /// without consuming input (a parser mid-broken-token must not resume).
  Status Feed(std::string_view chunk);

  /// Flushes trailing text and validates that every element was closed.
  Status Finish();

  /// The latched error, or OK.
  const Status& error() const { return error_; }

  /// Number of events emitted so far (Table 1's "events" column).
  uint64_t events_emitted() const { return events_emitted_; }

  /// One-shot convenience: tokenizes a whole document into a vector.
  static StatusOr<EventVec> Tokenize(std::string_view document,
                                     const Options& options);
  static StatusOr<EventVec> Tokenize(std::string_view document) {
    return Tokenize(document, Options());
  }

 private:
  struct OpenElement {
    Symbol tag;
    Oid oid;
  };

  // Consumes as many complete tokens from buffer_ as possible.
  Status Consume();
  // Handles the markup starting at buffer_[pos_] == '<'.  Returns true if a
  // complete token was consumed, false if more input is needed.
  StatusOr<bool> ConsumeMarkup();
  // Parses the inside of a start tag (between '<' and '>').
  Status EmitStartTag(std::string_view body);
  Status FlushText();
  void Emit(Event e);
  // Hands any accumulated batch to the sink.
  void FlushBatch();
  // Latches the first non-OK status (also consulting Options::errors).
  Status Latch(Status status);

  Options options_;
  EventSink* sink_;
  std::string buffer_;
  size_t pos_ = 0;
  std::string pending_text_;  // raw (undecoded) character data
  std::vector<OpenElement> open_elements_;
  EventBatch batch_;
  Oid next_oid_;
  uint64_t events_emitted_ = 0;
  bool started_ = false;
  bool finished_ = false;
  Status error_;
};

}  // namespace xflux

#endif  // XFLUX_XML_SAX_PARSER_H_
