// Streaming XML tokenizer (the paper's stream source, Section II).
//
// Breaks an XML document into the event vocabulary of core/event.h, one
// chunk at a time — the equivalent of the SAX parser the paper uses to feed
// XFlux.  Attributes are tokenized as child elements whose tag begins with
// '@' (so XPath attribute steps are ordinary child steps); the serializer
// reverses the encoding.
//
// The ingest path (DESIGN.md Section 12) is built to run at memory speed:
//  - Hot loops scan 16 bytes per step through xml/scan.h (SSE2/NEON/SWAR,
//    with an XFLUX_FORCE_SCALAR escape hatch).
//  - Input is pinned in refcounted StableChunks; entity-free character
//    data that lands inside one chunk is emitted as a zero-copy TextRef
//    slice of the input instead of being copied out.
//  - A per-document tag cache sits in front of the global SymbolTable, so
//    steady-state start tags intern without taking the global lock.
//  - Incomplete tokens carry scan-resume state across Feed() calls, so a
//    token drip-fed byte-at-a-time costs O(token), not O(token^2).
//
// Tags are interned into the global SymbolTable as they are parsed, and
// completed events are handed to the sink in EventBatch runs (one virtual
// call per Options::batch_size events) — the producing end of the batched
// data plane.

#ifndef XFLUX_XML_SAX_PARSER_H_
#define XFLUX_XML_SAX_PARSER_H_

#include <array>
#include <string>
#include <string_view>
#include <vector>

#include "core/event.h"
#include "core/event_sink.h"
#include "util/error_channel.h"
#include "util/status.h"
#include "util/symbol_table.h"
#include "util/text_ref.h"

namespace xflux {

/// Incremental SAX-style tokenizer.  Feed() may be called with arbitrary
/// chunk boundaries; events are pushed to the sink no later than the end of
/// the Feed() call that completes them.  Finish() must be called once at
/// end of input.
class SaxParser {
 public:
  struct Options {
    /// Stream number stamped on every emitted event.
    StreamId stream_id = 0;
    /// Emit sS/eS brackets around the document.
    bool emit_stream_brackets = true;
    /// Keep whitespace-only character data (dropped by default, as is usual
    /// for data-oriented XML).
    bool keep_whitespace = false;
    /// First OID to assign; element OIDs increase in document order.
    Oid first_oid = 1;
    /// Events accumulated before one AcceptBatch call to the sink.  0
    /// disables batching (every event goes through sink->Accept singly);
    /// any pending run is always flushed at the end of Feed()/Finish().
    size_t batch_size = 128;
    /// Resource bound on hostile input: fail with kResourceExhausted when a
    /// single unfinished token (open markup or accumulated character data)
    /// exceeds this many buffered bytes.  0 = unlimited.
    size_t max_token_bytes = 0;
    /// Character data at least this long that needs no entity decoding and
    /// lies inside one input chunk is emitted as a zero-copy slice of the
    /// pinned input (aliasing keeps the chunk alive; see
    /// TextRef::payload_bytes for the accounting).  Slice headers are
    /// bump-allocated from the top of the input window itself, so aliased
    /// text performs no heap allocation at all; text shorter than this
    /// either packs inline (<= TextRef::kInlineBytes) or is copied into an
    /// owned buffer.  SIZE_MAX disables aliasing entirely.
    size_t min_alias_bytes = 8;
    /// Feed(StableChunk) scans chunks at least this large in place
    /// (adoption: zero copy-in, slices alias the caller's memory).
    /// Smaller chunks take the same copy-in path as Feed(string_view) —
    /// drip feeds must keep PR 9's cache-friendly pinned window rather
    /// than pay per-chunk adoption bookkeeping.  SIZE_MAX disables
    /// adoption entirely.
    size_t adopt_min_bytes = 8 * 1024;
    /// When set (usually to the pipeline's context()->errors()), Feed and
    /// Finish surface the first downstream error as their return Status, so
    /// drivers see a poisoned pipeline without polling it separately.
    const ErrorChannel* errors = nullptr;
  };

  /// Observability counters for the ingest path (bench_parse rows, the
  /// slow-drip and compaction regression tests).
  struct IngestStats {
    uint64_t bytes_scanned = 0;   // bytes examined by scan loops (~O(input))
    uint64_t chunk_allocs = 0;    // StableChunk allocations (not adoptions)
    uint64_t chunk_adoptions = 0; // caller-owned chunks scanned in place
    uint64_t compactions = 0;     // in-place tail memmoves (chunk reused)
    uint64_t adopted_bytes = 0;   // bytes scanned in place, never copied in
    uint64_t splice_bytes = 0;    // boundary bytes copied off adopted chunks
    uint64_t aliased_texts = 0;   // cD payloads emitted as chunk slices
    uint64_t copied_texts = 0;    // cD payloads emitted as owned copies
    uint64_t inlined_texts = 0;   // cD payloads packed inline (no heap)
    uint64_t tag_cache_hits = 0;
    uint64_t tag_cache_misses = 0;
  };

  SaxParser(const Options& options, EventSink* sink);

  SaxParser(const SaxParser&) = delete;
  SaxParser& operator=(const SaxParser&) = delete;

  /// Consumes the next chunk of document text.  Errors latch: after the
  /// first non-OK return, further Feed/Finish calls return the same error
  /// without consuming input (a parser mid-broken-token must not resume).
  Status Feed(std::string_view chunk);

  /// Zero-copy variant: adopts the chunk and scans its first `size` bytes
  /// (default: all of them) in place — no copy into the pinned window;
  /// TextRef slices alias the adopted storage directly and keep it alive
  /// (for mmap'd chunks, mapped) until the last slice drops.  The chunk is
  /// handed over: the caller must treat its bytes as immutable and may not
  /// assume anything about when they are released.  Only the bytes of a
  /// token straddling a feed boundary are copied (IngestStats::
  /// splice_bytes); chunks below Options::adopt_min_bytes fall back to the
  /// copy-in path.  Event and error behavior is byte-identical to feeding
  /// the same bytes through Feed(string_view).
  Status Feed(StableChunk chunk, size_t size);
  Status Feed(StableChunk chunk) {
    size_t size = chunk.capacity();
    return Feed(std::move(chunk), size);
  }

  /// Flushes trailing text and validates that every element was closed.
  Status Finish();

  /// The latched error, or OK.
  const Status& error() const { return error_; }

  /// Number of events emitted so far (Table 1's "events" column).
  uint64_t events_emitted() const { return events_emitted_; }

  const IngestStats& ingest_stats() const { return stats_; }

  /// One-shot convenience: tokenizes a whole document into a vector.
  static StatusOr<EventVec> Tokenize(std::string_view document,
                                     const Options& options);
  static StatusOr<EventVec> Tokenize(std::string_view document) {
    return Tokenize(document, Options());
  }

 private:
  struct OpenElement {
    Symbol tag;
    Oid oid;
    // The interned spelling (process-stable), kept here so the end-tag
    // match is a plain memcmp with no symbol-table lookup.
    std::string_view spelling;
  };

  /// The markup token being scanned at pos_ (kNone between tokens).
  /// Committing to a kind requires enough bytes to disambiguate ("<![CD"
  /// may still become CDATA), after which per-kind resume state makes the
  /// scan incremental across Feed() calls.
  enum class TokenKind : uint8_t {
    kNone,
    kComment,
    kCdata,
    kDoctype,
    kPi,
    kEndTag,
    kStartTag,
  };

  /// Per-document spelling -> Symbol cache in front of the global intern
  /// table (open-addressed, fixed size, reset per parser).  Attribute
  /// names are cached without their '@' prefix; the prefixed spelling is
  /// built only on a miss.
  class TagCache {
   public:
    struct Interned {
      Symbol symbol;
      std::string_view spelling;  // interned storage (past '@' for attrs)
    };
    Interned Intern(std::string_view name, bool attribute,
                    IngestStats* stats);

   private:
    static constexpr size_t kSlots = 512;  // power of two
    static constexpr size_t kMaxProbe = 4;
    struct Entry {
      const char* data = nullptr;  // interned spelling (past '@' for attrs)
      uint32_t len = 0;
      uint32_t hash = 0;
      Symbol symbol;
    };
    Interned Fill(Entry* e, std::string_view name, bool attribute,
                  uint32_t hash);
    std::array<Entry, kSlots> entries_;
    std::string attr_scratch_;
  };

  // Consumes as many complete tokens from the window as possible.
  Status Consume();
  // Handles the markup starting at pos_ ('<').  Returns true if a complete
  // token was consumed, false if more input is needed.
  StatusOr<bool> ConsumeMarkup();
  // Parses the inside of a start tag (between '<' and '>').
  Status EmitStartTag(std::string_view body);
  // Advances past a completed token and resets the scan-resume state.
  void AdvanceToken(size_t token_len);
  Status FlushText();
  // Moves the in-chunk text run into the owned pending_text_ spill (a
  // comment/PI/rollover interrupted the contiguous run).
  void SpillTextRun();
  // Emits raw (already-decoded) in-chunk text as a slice or an owned copy
  // per the aliasing policy.
  TextRef MakeText(std::string_view raw_in_chunk);
  // Makes room for `incoming` more bytes: reuses the current chunk in
  // place when it is sole-owned and large enough, otherwise pins a fresh
  // (or recycled spare) chunk and carries the unconsumed tail over.  An
  // adopted window is never written into or reused: its tail is spliced
  // out into an owned window instead.
  void EnsureWindow(size_t incoming);
  // Exact per-token resource bound, applied when a token completes so
  // enforcement is independent of chunk boundaries (copied and adopted
  // feeds fail identically).  The window-end checks still bound tokens
  // that never complete.
  bool TokenTooBig(size_t token_len) const {
    return options_.max_token_bytes > 0 &&
           token_len > options_.max_token_bytes;
  }
  Status MarkupTooBigError() const;
  Status TextTooBigError() const;
  void Emit(Event e);
  // Hot-path emission: constructs the event in place in the batch (no
  // temporary Event, no extra move/destroy pair).  `fill` runs with a
  // reference to a default-constructed event; the batch is flushed only
  // after the fill completes.
  template <typename Fill>
  void EmitWith(Fill&& fill) {
    ++events_emitted_;
    if (options_.batch_size == 0) {
      Event e;
      fill(e);
      sink_->Accept(std::move(e));
      return;
    }
    batch_.emplace_back();
    fill(batch_.back());
    if (batch_.size() >= options_.batch_size) FlushBatch();
  }
  // Hands any accumulated batch to the sink.
  void FlushBatch();
  // Latches the first non-OK status (also consulting Options::errors).
  Status Latch(Status status);

  std::string_view window() const {
    return chunk_.valid() ? std::string_view(chunk_.data(), written_)
                          : std::string_view();
  }

  Options options_;
  EventSink* sink_;

  // Pinned input window.  Live bytes are [text_start_, written_):
  // [text_start_, pos_) is the unflushed in-chunk text run (empty when
  // text_start_ == pos_), [pos_, written_) the incomplete markup token.
  // [arena_floor_, capacity) holds embedded slice-rep headers, carved
  // downward from the top; input may grow only up to arena_floor_.
  //
  // When window_foreign_ is set the window is an adopted chunk scanned in
  // place: its bytes are caller-owned (possibly a read-only mapping), so
  // nothing is ever written into it, slice headers are carved from the
  // chunk's sidecar arena instead of [arena_floor_, capacity), and
  // EnsureWindow splices the unconsumed tail into an owned window rather
  // than compacting.
  StableChunk chunk_;
  size_t written_ = 0;
  size_t pos_ = 0;
  size_t text_start_ = 0;
  size_t arena_floor_ = 0;
  bool window_foreign_ = false;
  size_t sidecar_used_ = 0;
  // Owned window parked while an adopted chunk is being scanned; recycled
  // by the next EnsureWindow so steady-state adopted streaming re-uses one
  // splice buffer instead of allocating per boundary.
  StableChunk spare_;

  // Owned spill for text runs a slice cannot represent (interrupted by a
  // comment/PI or a chunk rollover), plus content flags accumulated over
  // every scanned text byte: '&' forces the decode path, ']' forces the
  // "]]>" check.
  std::string pending_text_;
  bool text_amp_ = false;
  bool text_rbracket_ = false;

  // Scan-resume state for the incomplete markup token at pos_.
  TokenKind token_kind_ = TokenKind::kNone;
  size_t scan_done_ = 0;  // offset from pos_ already cleared of terminator
  char tag_quote_ = 0;    // start-tag scanner: open quote char, 0 = none
  int doctype_depth_ = 0; // DOCTYPE internal-subset bracket depth

  TagCache tag_cache_;
  IngestStats stats_;

  std::vector<OpenElement> open_elements_;
  EventBatch batch_;
  Oid next_oid_;
  uint64_t events_emitted_ = 0;
  bool started_ = false;
  bool finished_ = false;
  Status error_;
};

}  // namespace xflux

#endif  // XFLUX_XML_SAX_PARSER_H_
