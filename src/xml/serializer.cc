#include "xml/serializer.h"

#include "xml/escape.h"

namespace xflux {

void XmlSerializer::CloseOpenTag() {
  if (tag_open_) {
    *out_ += '>';
    tag_open_ = false;
  }
}

void XmlSerializer::Indent() {
  if (!options_.pretty) return;
  if (!out_->empty()) *out_ += '\n';
  out_->append(static_cast<size_t>(depth_) * 2, ' ');
}

void XmlSerializer::Accept(Event event) {
  if (!status_.ok()) return;
  switch (event.kind) {
    case EventKind::kStartStream:
    case EventKind::kEndStream:
    case EventKind::kStartTuple:
    case EventKind::kEndTuple:
      return;

    case EventKind::kStartElement:
      if (in_attribute_) {
        status_ = Status::InvalidArgument("element inside attribute value");
        return;
      }
      if (event.HasAttributeTag()) {
        // Inside a start tag this is an attribute; selected standalone (an
        // XPath attribute step result) it renders as its string value.
        in_attribute_ = true;
        detached_attribute_ = !tag_open_;
        attribute_name_ = event.tag_name().substr(1);
        attribute_value_.clear();
        return;
      }
      CloseOpenTag();
      Indent();
      *out_ += '<';
      *out_ += event.tag_name();
      tag_open_ = true;
      if (!had_child_elements_.empty()) had_child_elements_.back() = true;
      had_child_elements_.push_back(false);
      ++depth_;
      return;

    case EventKind::kEndElement:
      if (in_attribute_) {
        if (detached_attribute_) {
          *out_ += EscapeText(attribute_value_);
        } else {
          *out_ += ' ';
          *out_ += attribute_name_;
          *out_ += "=\"";
          *out_ += EscapeAttribute(attribute_value_);
          *out_ += '"';
        }
        in_attribute_ = false;
        detached_attribute_ = false;
        return;
      }
      --depth_;
      if (tag_open_) {
        *out_ += "/>";
        tag_open_ = false;
      } else {
        if (!had_child_elements_.empty() && had_child_elements_.back()) {
          Indent();
        }
        *out_ += "</";
        *out_ += event.tag_name();
        *out_ += '>';
      }
      if (!had_child_elements_.empty()) had_child_elements_.pop_back();
      return;

    case EventKind::kCharacters:
      if (in_attribute_) {
        attribute_value_ += event.chars();
        return;
      }
      CloseOpenTag();
      *out_ += EscapeText(event.chars());
      return;

    default:
      status_ = Status::InvalidArgument(
          "update event reached the serializer: " + event.ToString() +
          "; materialize the stream first");
      return;
  }
}

std::string XmlSerializer::Take() {
  std::string result = std::move(*out_);
  Reset();
  return result;
}

void XmlSerializer::Reset() {
  out_->clear();
  status_ = Status::OK();
  tag_open_ = false;
  in_attribute_ = false;
  detached_attribute_ = false;
  attribute_name_.clear();
  attribute_value_.clear();
  depth_ = 0;
  had_child_elements_.clear();
}

StatusOr<std::string> XmlSerializer::ToXml(const EventVec& events,
                                           const Options& options) {
  XmlSerializer writer(options);
  for (const Event& e : events) writer.Accept(e);
  if (!writer.status().ok()) return writer.status();
  return writer.Take();
}

}  // namespace xflux
