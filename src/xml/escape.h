// XML text escaping and entity decoding.

#ifndef XFLUX_XML_ESCAPE_H_
#define XFLUX_XML_ESCAPE_H_

#include <string>
#include <string_view>

#include "util/status.h"

namespace xflux {

/// Escapes character data for element content: & < >.
std::string EscapeText(std::string_view text);

/// Escapes an attribute value for a double-quoted attribute: & < > ".
std::string EscapeAttribute(std::string_view text);

/// Decodes the five predefined entities plus decimal/hex character
/// references; unknown entities are a parse error.
StatusOr<std::string> DecodeEntities(std::string_view text);

}  // namespace xflux

#endif  // XFLUX_XML_ESCAPE_H_
