// Wide-scan primitives for the ingest path (DESIGN.md Section 12).
//
// The SAX tokenizer spends its time answering four questions: where does
// this text run end ('<'), where does this tag end ('>' outside quotes),
// is this span all whitespace, and where does this name end.  Each is
// answered here over 16 bytes per step (SSE2/NEON) or 8 (SWAR uint64
// tricks) instead of one, with a byte-at-a-time reference implementation
// kept as the differential-testing oracle and runtime escape hatch.
//
// Mode selection: the accelerated path is chosen at compile time
// (SSE2 > NEON > SWAR); setting XFLUX_FORCE_SCALAR=1 in the environment
// (or calling SetForceScalar) routes every primitive through the scalar
// reference at runtime — CI runs the hostile-input suites in both modes
// and the verdicts must be identical.

#ifndef XFLUX_XML_SCAN_H_
#define XFLUX_XML_SCAN_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string_view>

#if defined(__SSE2__)
#include <emmintrin.h>
#define XFLUX_SCAN_SSE2 1
#elif (defined(__ARM_NEON) || defined(__ARM_NEON__)) && defined(__aarch64__)
// vshrn/vminvq are A64 instructions; 32-bit NEON falls back to SWAR.
#include <arm_neon.h>
#define XFLUX_SCAN_NEON 1
#endif

namespace xflux::scan {

inline constexpr size_t npos = static_cast<size_t>(-1);

/// Name of the accelerated implementation compiled in ("sse2", "neon",
/// "swar") — stamped into BENCH_parse.json so runs are comparable.
inline const char* SimdKind() {
#if defined(XFLUX_SCAN_SSE2)
  return "sse2";
#elif defined(XFLUX_SCAN_NEON)
  return "neon";
#else
  return "swar";
#endif
}

// -1 = env not consulted yet, 0 = accelerated, 1 = forced scalar.
inline std::atomic<int> g_force_scalar{-1};

/// True when every primitive must take the byte-at-a-time reference path.
/// Consults XFLUX_FORCE_SCALAR once; SetForceScalar overrides (tests and
/// benches flip modes within one process).
inline bool ForceScalar() {
  int v = g_force_scalar.load(std::memory_order_relaxed);
  if (v < 0) {
    const char* env = std::getenv("XFLUX_FORCE_SCALAR");
    v = (env != nullptr && *env != '\0' && *env != '0') ? 1 : 0;
    g_force_scalar.store(v, std::memory_order_relaxed);
  }
  return v == 1;
}

inline void SetForceScalar(bool on) {
  g_force_scalar.store(on ? 1 : 0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Character classes (must match the tokenizer's historical definitions
// exactly: IsSpace is the XML S production, IsNameChar is everything a tag
// or attribute name may contain — the tokenizer is permissive by design).
// Quote characters are NOT name characters: a name scan stopping at a
// quote is what lets the tokenizer's fused tag fast path stay consistent
// with FindTagEnd's quote tracking on hostile input.

inline bool IsSpaceChar(char c) {
  return c == ' ' || c == '\t' || c == '\r' || c == '\n';
}

inline constexpr std::array<unsigned char, 256> kNameCharTable = [] {
  std::array<unsigned char, 256> t{};
  for (int i = 0; i < 256; ++i) {
    char c = static_cast<char>(i);
    bool space = c == ' ' || c == '\t' || c == '\r' || c == '\n';
    t[i] = !(space || c == '>' || c == '/' || c == '=' || c == '<' ||
             c == '"' || c == '\'');
  }
  return t;
}();

inline bool IsNameChar(char c) {
  return kNameCharTable[static_cast<unsigned char>(c)] != 0;
}

// FindNameEnd is defined after FindAnyOf (it is the same scan phrased as
// "first of the ten delimiter bytes").

namespace detail {

inline constexpr uint64_t kOnes = 0x0101010101010101ull;
inline constexpr uint64_t kHighs = 0x8080808080808080ull;
inline constexpr uint64_t kLows7 = 0x7f7f7f7f7f7f7f7full;

inline uint64_t Load64(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

constexpr uint64_t Broadcast(char c) {
  return kOnes * static_cast<uint8_t>(c);
}

/// Exact per-byte zero detector: bit 7 of each byte of the result is set
/// iff that byte of v is zero.  (The classic (v-1)&~v&0x80 trick leaks
/// carry garbage above the first zero byte; this form has no cross-byte
/// carries, so it is safe for presence masks, not just find-first.)
inline uint64_t ZeroBytes(uint64_t v) {
  return ~(((v & kLows7) + kLows7) | v | kLows7);
}

template <char... Cs>
inline uint64_t MatchMask64(uint64_t v) {
  uint64_t m = 0;
  ((m |= ZeroBytes(v ^ Broadcast(Cs))), ...);
  return m;
}

#if defined(XFLUX_SCAN_NEON)
/// 4 bits per byte lane, LSB-first — ctz(mask)>>2 is the first match.
inline uint64_t NeonMask(uint8x16_t eq) {
  uint8x8_t n = vshrn_n_u16(vreinterpretq_u16_u8(eq), 4);
  return vget_lane_u64(vreinterpret_u64_u8(n), 0);
}
#endif

}  // namespace detail

// ---------------------------------------------------------------------------
// FindAnyOf: first index >= from of any of the template-parameter bytes.

template <char... Cs>
inline size_t FindAnyOfScalar(std::string_view s, size_t from) {
  for (size_t i = from; i < s.size(); ++i) {
    char c = s[i];
    if (((c == Cs) || ...)) return i;
  }
  return npos;
}

template <char... Cs>
inline size_t FindAnyOf(std::string_view s, size_t from) {
  if (ForceScalar()) return FindAnyOfScalar<Cs...>(s, from);
  const char* p = s.data();
  size_t n = s.size();
  size_t i = from;
#if defined(XFLUX_SCAN_SSE2)
  for (; i + 16 <= n; i += 16) {
    __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + i));
    __m128i m = _mm_setzero_si128();
    ((m = _mm_or_si128(m, _mm_cmpeq_epi8(v, _mm_set1_epi8(Cs)))), ...);
    int mask = _mm_movemask_epi8(m);
    if (mask != 0) return i + static_cast<size_t>(__builtin_ctz(mask));
  }
#elif defined(XFLUX_SCAN_NEON)
  for (; i + 16 <= n; i += 16) {
    uint8x16_t v = vld1q_u8(reinterpret_cast<const uint8_t*>(p + i));
    uint8x16_t m = vdupq_n_u8(0);
    ((m = vorrq_u8(m, vceqq_u8(v, vdupq_n_u8(static_cast<uint8_t>(Cs))))),
     ...);
    uint64_t mask = detail::NeonMask(m);
    if (mask != 0) {
      return i + (static_cast<size_t>(__builtin_ctzll(mask)) >> 2);
    }
  }
#else
  for (; i + 8 <= n; i += 8) {
    uint64_t mask = detail::MatchMask64<Cs...>(detail::Load64(p + i));
    if (mask != 0) {
      return i + (static_cast<size_t>(__builtin_ctzll(mask)) >> 3);
    }
  }
#endif
  for (; i < n; ++i) {
    char c = p[i];
    if (((c == Cs) || ...)) return i;
  }
  return npos;
}

/// First index >= from whose byte is not a name character, or s.size().
/// Kept scalar on purpose: realistic tag names end within a handful of
/// bytes, where a table lookup per byte beats any vector setup cost (the
/// table's complement is exactly the ten delimiter bytes space \t \r \n
/// > / = < " ').
inline size_t FindNameEnd(std::string_view s, size_t from) {
  size_t i = from;
  for (; i < s.size(); ++i) {
    if (!IsNameChar(s[i])) break;
  }
  return i;
}

// ---------------------------------------------------------------------------
// ScanText: advance through character data to the next '<', reporting
// whether the scanned prefix (bytes [from, stop)) contained '&' (entity:
// the text needs the decode path) or ']' (possible "]]>": the text needs
// the full check).  One pass replaces the tokenizer's former find('<') +
// find('&') + find("]]>") triple.

struct TextScan {
  size_t stop = npos;  // index of the '<', or npos when the window ends
  bool amp = false;
  bool rbracket = false;
};

inline TextScan ScanTextScalar(std::string_view s, size_t from) {
  TextScan r;
  for (size_t i = from; i < s.size(); ++i) {
    char c = s[i];
    if (c == '<') {
      r.stop = i;
      return r;
    }
    r.amp |= c == '&';
    r.rbracket |= c == ']';
  }
  return r;
}

inline TextScan ScanText(std::string_view s, size_t from) {
  if (ForceScalar()) return ScanTextScalar(s, from);
  TextScan r;
  const char* p = s.data();
  size_t n = s.size();
  size_t i = from;
#if defined(XFLUX_SCAN_SSE2)
  const __m128i lt = _mm_set1_epi8('<');
  const __m128i amp = _mm_set1_epi8('&');
  const __m128i rb = _mm_set1_epi8(']');
  for (; i + 16 <= n; i += 16) {
    __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + i));
    int mlt = _mm_movemask_epi8(_mm_cmpeq_epi8(v, lt));
    int mam = _mm_movemask_epi8(_mm_cmpeq_epi8(v, amp));
    int mrb = _mm_movemask_epi8(_mm_cmpeq_epi8(v, rb));
    if (mlt != 0) {
      int idx = __builtin_ctz(mlt);
      int below = (1 << idx) - 1;
      r.amp |= (mam & below) != 0;
      r.rbracket |= (mrb & below) != 0;
      r.stop = i + static_cast<size_t>(idx);
      return r;
    }
    r.amp |= mam != 0;
    r.rbracket |= mrb != 0;
  }
#elif defined(XFLUX_SCAN_NEON)
  const uint8x16_t lt = vdupq_n_u8('<');
  const uint8x16_t amp = vdupq_n_u8('&');
  const uint8x16_t rb = vdupq_n_u8(']');
  for (; i + 16 <= n; i += 16) {
    uint8x16_t v = vld1q_u8(reinterpret_cast<const uint8_t*>(p + i));
    uint64_t mlt = detail::NeonMask(vceqq_u8(v, lt));
    uint64_t mam = detail::NeonMask(vceqq_u8(v, amp));
    uint64_t mrb = detail::NeonMask(vceqq_u8(v, rb));
    if (mlt != 0) {
      int bit = __builtin_ctzll(mlt);
      uint64_t below = (bit == 0) ? 0 : ((1ull << bit) - 1);
      r.amp |= (mam & below) != 0;
      r.rbracket |= (mrb & below) != 0;
      r.stop = i + (static_cast<size_t>(bit) >> 2);
      return r;
    }
    r.amp |= mam != 0;
    r.rbracket |= mrb != 0;
  }
#else
  for (; i + 8 <= n; i += 8) {
    uint64_t v = detail::Load64(p + i);
    uint64_t mlt = detail::ZeroBytes(v ^ detail::Broadcast('<'));
    uint64_t mam = detail::ZeroBytes(v ^ detail::Broadcast('&'));
    uint64_t mrb = detail::ZeroBytes(v ^ detail::Broadcast(']'));
    if (mlt != 0) {
      int bit = __builtin_ctzll(mlt);
      uint64_t below = (1ull << bit) - 1;
      r.amp |= (mam & below) != 0;
      r.rbracket |= (mrb & below) != 0;
      r.stop = i + (static_cast<size_t>(bit) >> 3);
      return r;
    }
    r.amp |= mam != 0;
    r.rbracket |= mrb != 0;
  }
#endif
  for (; i < n; ++i) {
    char c = p[i];
    if (c == '<') {
      r.stop = i;
      return r;
    }
    r.amp |= c == '&';
    r.rbracket |= c == ']';
  }
  return r;
}

// ---------------------------------------------------------------------------
// FindTagEnd: first unquoted '>' or '<' at index >= from (the caller
// treats '>' as the tag terminator and '<' as a parse error), honoring
// single- and double-quoted attribute values.  *quote carries the open
// quote character across calls (0 = outside quotes) so an incomplete tag
// resumes mid-state on the next Feed without rescanning.

inline size_t FindTagEndScalar(std::string_view s, size_t from, char* quote) {
  for (size_t i = from; i < s.size(); ++i) {
    char c = s[i];
    if (*quote != 0) {
      if (c == *quote) *quote = 0;
      continue;
    }
    if (c == '"' || c == '\'') {
      *quote = c;
      continue;
    }
    if (c == '>' || c == '<') return i;
  }
  return npos;
}

inline size_t FindTagEnd(std::string_view s, size_t from, char* quote) {
  if (ForceScalar()) return FindTagEndScalar(s, from, quote);
  size_t i = from;
  while (true) {
    if (*quote != 0) {
      if (i >= s.size()) return npos;
      const void* q = std::memchr(s.data() + i, *quote, s.size() - i);
      if (q == nullptr) return npos;
      i = static_cast<size_t>(static_cast<const char*>(q) - s.data()) + 1;
      *quote = 0;
    }
    size_t hit = FindAnyOf<'>', '"', '\'', '<'>(s, i);
    if (hit == npos) return npos;
    char c = s[hit];
    if (c == '"' || c == '\'') {
      *quote = c;
      i = hit + 1;
      continue;
    }
    return hit;
  }
}

// ---------------------------------------------------------------------------
// AllWhitespace: true when every byte of s is in the XML S production.

inline bool AllWhitespaceScalar(std::string_view s) {
  for (char c : s) {
    if (!IsSpaceChar(c)) return false;
  }
  return true;
}

inline bool AllWhitespace(std::string_view s) {
  if (ForceScalar()) return AllWhitespaceScalar(s);
  const char* p = s.data();
  size_t n = s.size();
  size_t i = 0;
#if defined(XFLUX_SCAN_SSE2)
  for (; i + 16 <= n; i += 16) {
    __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + i));
    __m128i ws = _mm_or_si128(
        _mm_or_si128(_mm_cmpeq_epi8(v, _mm_set1_epi8(' ')),
                     _mm_cmpeq_epi8(v, _mm_set1_epi8('\t'))),
        _mm_or_si128(_mm_cmpeq_epi8(v, _mm_set1_epi8('\r')),
                     _mm_cmpeq_epi8(v, _mm_set1_epi8('\n'))));
    if (_mm_movemask_epi8(ws) != 0xFFFF) return false;
  }
#elif defined(XFLUX_SCAN_NEON)
  for (; i + 16 <= n; i += 16) {
    uint8x16_t v = vld1q_u8(reinterpret_cast<const uint8_t*>(p + i));
    uint8x16_t ws = vorrq_u8(
        vorrq_u8(vceqq_u8(v, vdupq_n_u8(' ')), vceqq_u8(v, vdupq_n_u8('\t'))),
        vorrq_u8(vceqq_u8(v, vdupq_n_u8('\r')),
                 vceqq_u8(v, vdupq_n_u8('\n'))));
    if (vminvq_u8(ws) == 0) return false;
  }
#else
  for (; i + 8 <= n; i += 8) {
    uint64_t v = detail::Load64(p + i);
    uint64_t ws = detail::ZeroBytes(v ^ detail::Broadcast(' ')) |
                  detail::ZeroBytes(v ^ detail::Broadcast('\t')) |
                  detail::ZeroBytes(v ^ detail::Broadcast('\r')) |
                  detail::ZeroBytes(v ^ detail::Broadcast('\n'));
    if (ws != detail::kHighs) return false;
  }
#endif
  for (; i < n; ++i) {
    if (!IsSpaceChar(p[i])) return false;
  }
  return true;
}

}  // namespace xflux::scan

#endif  // XFLUX_XML_SCAN_H_
