#include "xml/escape.h"

#include <cstdint>

namespace xflux {

namespace {

// Appends the UTF-8 encoding of `cp` to `out`.
void AppendUtf8(uint32_t cp, std::string* out) {
  if (cp < 0x80) {
    out->push_back(static_cast<char>(cp));
  } else if (cp < 0x800) {
    out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else if (cp < 0x10000) {
    out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else {
    out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  }
}

std::string EscapeImpl(std::string_view text, bool quote) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        if (quote) {
          out += "&quot;";
        } else {
          out.push_back(c);
        }
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

}  // namespace

std::string EscapeText(std::string_view text) {
  return EscapeImpl(text, /*quote=*/false);
}

std::string EscapeAttribute(std::string_view text) {
  return EscapeImpl(text, /*quote=*/true);
}

StatusOr<std::string> DecodeEntities(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  size_t i = 0;
  while (i < text.size()) {
    char c = text[i];
    if (c != '&') {
      out.push_back(c);
      ++i;
      continue;
    }
    size_t semi = text.find(';', i + 1);
    if (semi == std::string_view::npos || semi - i > 12) {
      return Status::ParseError("unterminated entity reference");
    }
    std::string_view name = text.substr(i + 1, semi - i - 1);
    if (name == "amp") {
      out.push_back('&');
    } else if (name == "lt") {
      out.push_back('<');
    } else if (name == "gt") {
      out.push_back('>');
    } else if (name == "quot") {
      out.push_back('"');
    } else if (name == "apos") {
      out.push_back('\'');
    } else if (!name.empty() && name[0] == '#') {
      uint32_t cp = 0;
      bool hex = name.size() > 1 && (name[1] == 'x' || name[1] == 'X');
      std::string_view digits = name.substr(hex ? 2 : 1);
      if (digits.empty()) return Status::ParseError("empty character reference");
      for (char d : digits) {
        uint32_t v;
        if (d >= '0' && d <= '9') {
          v = static_cast<uint32_t>(d - '0');
        } else if (hex && d >= 'a' && d <= 'f') {
          v = static_cast<uint32_t>(d - 'a' + 10);
        } else if (hex && d >= 'A' && d <= 'F') {
          v = static_cast<uint32_t>(d - 'A' + 10);
        } else {
          return Status::ParseError("bad character reference &" +
                                    std::string(name) + ";");
        }
        cp = cp * (hex ? 16 : 10) + v;
        if (cp > 0x10FFFF) {
          return Status::ParseError("character reference out of range");
        }
      }
      AppendUtf8(cp, &out);
    } else {
      return Status::ParseError("unknown entity &" + std::string(name) + ";");
    }
    i = semi + 1;
  }
  return out;
}

}  // namespace xflux
