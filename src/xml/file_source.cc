#include "xml/file_source.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

namespace xflux {

namespace {

Status Errno(const std::string& what, const std::string& path) {
  return Status::Internal(what + " '" + path + "': " + std::strerror(errno));
}

size_t PageSize() {
  long page = ::sysconf(_SC_PAGESIZE);
  return page > 0 ? static_cast<size_t>(page) : 4096;
}

// read()s until `want` bytes or EOF; returns bytes read or -1 on error.
ssize_t ReadFull(int fd, char* dst, size_t want) {
  size_t got = 0;
  while (got < want) {
    ssize_t n = ::read(fd, dst + got, want - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    if (n == 0) break;
    got += static_cast<size_t>(n);
  }
  return static_cast<ssize_t>(got);
}

ssize_t PreadFull(int fd, char* dst, size_t want, off_t off) {
  size_t got = 0;
  while (got < want) {
    ssize_t n = ::pread(fd, dst + got, want - got, off + got);
    if (n < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    if (n == 0) break;
    got += static_cast<size_t>(n);
  }
  return static_cast<ssize_t>(got);
}

void UnmapDeleter(void*, const char* data, size_t size) {
  ::munmap(const_cast<char*>(data), size);
}

void HeapDeleter(void*, const char* data, size_t) {
  ::operator delete(const_cast<char*>(data));
}

// Reads [off, off+len) into an adopted heap chunk — the mmap fallback and
// the pipe source share it.
StatusOr<StableChunk> ReadChunkAt(int fd, off_t off, size_t len) {
  char* buf = static_cast<char*>(::operator new(len));
  ssize_t n = PreadFull(fd, buf, len, off);
  if (n != static_cast<ssize_t>(len)) {
    ::operator delete(buf);
    return Status::Internal("short read from file source");
  }
  return StableChunk::Adopt(buf, len, HeapDeleter, nullptr);
}

}  // namespace

// ---------------------------------------------------------------------------
// MappedFileSource

StatusOr<MappedFileSource> MappedFileSource::Open(const std::string& path,
                                                 const Options& options) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return Errno("cannot open", path);
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Errno("cannot stat", path);
  }
  if (!S_ISREG(st.st_mode)) {
    ::close(fd);
    return Status::InvalidArgument("'" + path +
                                   "' is not a regular file; use "
                                   "ChunkedFileSource for pipes");
  }
  MappedFileSource source;
  source.fd_ = fd;
  source.file_bytes_ = static_cast<size_t>(st.st_size);
  size_t page = PageSize();
  source.window_bytes_ =
      std::max(page, (options.window_bytes + page - 1) / page * page);
  source.allow_mmap_ = options.allow_mmap;
  return source;
}

MappedFileSource& MappedFileSource::operator=(
    MappedFileSource&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    file_bytes_ = other.file_bytes_;
    offset_ = other.offset_;
    window_bytes_ = other.window_bytes_;
    allow_mmap_ = other.allow_mmap_;
    mapped_windows_ = other.mapped_windows_;
    fallback_windows_ = other.fallback_windows_;
  }
  return *this;
}

MappedFileSource::~MappedFileSource() {
  if (fd_ >= 0) ::close(fd_);
}

StatusOr<StableChunk> MappedFileSource::Next() {
  if (offset_ >= file_bytes_) return StableChunk();
  size_t len = std::min(window_bytes_, file_bytes_ - offset_);
  // Window offsets are multiples of window_bytes_ (itself page-aligned),
  // so the mmap offset is always valid.
  if (allow_mmap_) {
    // MAP_POPULATE prefaults the window in one pass — the scan is strictly
    // sequential, so paying the readahead up front beats 4 KiB-granular
    // minor faults in the scan loop.
#ifdef MAP_POPULATE
    constexpr int kMapFlags = MAP_PRIVATE | MAP_POPULATE;
#else
    constexpr int kMapFlags = MAP_PRIVATE;
#endif
    void* p = ::mmap(nullptr, len, PROT_READ, kMapFlags, fd_,
                     static_cast<off_t>(offset_));
    if (p != MAP_FAILED) {
      // Advisory only; ignore failure (the scan is sequential regardless).
      ::madvise(p, len, MADV_SEQUENTIAL);
      offset_ += len;
      ++mapped_windows_;
      return StableChunk::Adopt(static_cast<const char*>(p), len,
                                UnmapDeleter, nullptr);
    }
  }
  // mmap unavailable: fall back to pread into an adopted heap buffer.
  auto chunk = ReadChunkAt(fd_, static_cast<off_t>(offset_), len);
  if (!chunk.ok()) return chunk.status();
  offset_ += len;
  ++fallback_windows_;
  return std::move(chunk).value();
}

// ---------------------------------------------------------------------------
// ChunkedFileSource

StatusOr<ChunkedFileSource> ChunkedFileSource::Open(const std::string& path,
                                                    const Options& options) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return Errno("cannot open", path);
  return FromFd(fd, /*owns_fd=*/true, options);
}

ChunkedFileSource ChunkedFileSource::FromFd(int fd, bool owns_fd,
                                            const Options& options) {
  ChunkedFileSource source;
  source.fd_ = fd;
  source.owns_fd_ = owns_fd;
  source.chunk_bytes_ = std::max<size_t>(options.chunk_bytes, 1);
  return source;
}

ChunkedFileSource& ChunkedFileSource::operator=(
    ChunkedFileSource&& other) noexcept {
  if (this != &other) {
    if (owns_fd_ && fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    owns_fd_ = std::exchange(other.owns_fd_, false);
    eof_ = other.eof_;
    chunk_bytes_ = other.chunk_bytes_;
  }
  return *this;
}

ChunkedFileSource::~ChunkedFileSource() {
  if (owns_fd_ && fd_ >= 0) ::close(fd_);
}

StatusOr<StableChunk> ChunkedFileSource::Next() {
  if (eof_) return StableChunk();
  char* buf = static_cast<char*>(::operator new(chunk_bytes_));
  ssize_t n = ReadFull(fd_, buf, chunk_bytes_);
  if (n < 0) {
    ::operator delete(buf);
    return Status::Internal(std::string("read from file source failed: ") +
                            std::strerror(errno));
  }
  if (static_cast<size_t>(n) < chunk_bytes_) eof_ = true;
  if (n == 0) {
    ::operator delete(buf);
    return StableChunk();
  }
  return StableChunk::Adopt(buf, static_cast<size_t>(n), HeapDeleter,
                            nullptr);
}

// ---------------------------------------------------------------------------
// IngestFile

StatusOr<FileIngestReport> IngestFile(const std::string& path,
                                      SaxParser* parser,
                                      const FileIngestOptions& options) {
  FileIngestReport report;
  struct stat st;
  bool regular = ::stat(path.c_str(), &st) == 0 && S_ISREG(st.st_mode) &&
                 st.st_size > 0;
  if (regular) {
    auto source = MappedFileSource::Open(path, options.mapped);
    if (!source.ok()) return source.status();
    report.mapped = true;
    for (;;) {
      auto chunk = source.value().Next();
      if (!chunk.ok()) return chunk.status();
      if (!chunk.value().valid()) break;
      size_t len = chunk.value().capacity();
      XFLUX_RETURN_IF_ERROR(parser->Feed(std::move(chunk).value()));
      report.bytes += len;
      ++report.chunks;
    }
    return report;
  }
  auto source = ChunkedFileSource::Open(path, options.chunked);
  if (!source.ok()) return source.status();
  for (;;) {
    auto chunk = source.value().Next();
    if (!chunk.ok()) return chunk.status();
    if (!chunk.value().valid()) break;
    size_t len = chunk.value().capacity();
    XFLUX_RETURN_IF_ERROR(parser->Feed(std::move(chunk).value()));
    report.bytes += len;
    ++report.chunks;
  }
  return report;
}

}  // namespace xflux
