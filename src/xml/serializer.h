// Event-stream -> XML text serializer (the inverse of the tokenizer).
//
// '@'-tagged child elements are rendered back as attributes.  Tuple and
// stream brackets are dropped.  Update events are rejected: callers must
// materialize the stream (core/region_document.h) first — the result
// display does exactly that.

#ifndef XFLUX_XML_SERIALIZER_H_
#define XFLUX_XML_SERIALIZER_H_

#include <string>
#include <vector>

#include "core/event.h"
#include "core/event_sink.h"
#include "util/status.h"

namespace xflux {

/// Streaming XML writer.
///
/// By default the writer owns its output buffer; passing `sink` binds it
/// to an external std::string instead (appended in place, no copy on
/// read) — the result display renders its live answer this way.  Copying
/// a writer forks the serialization state: the copy continues mid-document
/// from the same position, sharing an external sink (the incremental
/// renderer's volatile-tail pass) or owning a copy of an internal one.
class XmlSerializer : public EventSink {
 public:
  struct Options {
    /// Insert newlines and two-space indentation between elements.
    bool pretty = false;
  };

  XmlSerializer() : XmlSerializer(Options()) {}
  explicit XmlSerializer(const Options& options, std::string* sink = nullptr)
      : options_(options), out_(sink != nullptr ? sink : &owned_) {}

  XmlSerializer(const XmlSerializer& other)
      : options_(other.options_),
        owned_(other.owned_),
        status_(other.status_),
        tag_open_(other.tag_open_),
        in_attribute_(other.in_attribute_),
        detached_attribute_(other.detached_attribute_),
        attribute_name_(other.attribute_name_),
        attribute_value_(other.attribute_value_),
        depth_(other.depth_),
        had_child_elements_(other.had_child_elements_),
        out_(other.out_ == &other.owned_ ? &owned_ : other.out_) {}
  XmlSerializer& operator=(const XmlSerializer&) = delete;

  /// Appends the rendering of one event.  Errors latch into status().
  void Accept(Event event) override;

  /// First error encountered, if any.
  const Status& status() const { return status_; }

  /// The text produced so far.
  const std::string& text() const { return *out_; }

  /// Moves the text out and resets the writer.
  std::string Take();

  /// Back to the start-of-document state; clears the output buffer
  /// (external sinks included) but keeps the binding and options.
  void Reset();

  /// One-shot convenience: renders a whole simple-event sequence.
  static StatusOr<std::string> ToXml(const EventVec& events,
                                     const Options& options);
  static StatusOr<std::string> ToXml(const EventVec& events) {
    return ToXml(events, Options());
  }

 private:
  void CloseOpenTag();
  void Indent();

  Options options_;
  std::string owned_;
  Status status_;
  bool tag_open_ = false;        // "<name" emitted, ">" pending
  bool in_attribute_ = false;       // inside an '@' child
  bool detached_attribute_ = false; // '@' child selected as a result item
  std::string attribute_name_;
  std::string attribute_value_;
  int depth_ = 0;
  std::vector<bool> had_child_elements_;
  std::string* out_;  // == &owned_ unless bound to an external sink
};

}  // namespace xflux

#endif  // XFLUX_XML_SERIALIZER_H_
