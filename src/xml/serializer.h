// Event-stream -> XML text serializer (the inverse of the tokenizer).
//
// '@'-tagged child elements are rendered back as attributes.  Tuple and
// stream brackets are dropped.  Update events are rejected: callers must
// materialize the stream (core/region_document.h) first — the result
// display does exactly that.

#ifndef XFLUX_XML_SERIALIZER_H_
#define XFLUX_XML_SERIALIZER_H_

#include <string>
#include <vector>

#include "core/event.h"
#include "core/event_sink.h"
#include "util/status.h"

namespace xflux {

/// Streaming XML writer.
class XmlSerializer : public EventSink {
 public:
  struct Options {
    /// Insert newlines and two-space indentation between elements.
    bool pretty = false;
  };

  XmlSerializer() : XmlSerializer(Options()) {}
  explicit XmlSerializer(const Options& options) : options_(options) {}

  /// Appends the rendering of one event.  Errors latch into status().
  void Accept(Event event) override;

  /// First error encountered, if any.
  const Status& status() const { return status_; }

  /// The text produced so far.
  const std::string& text() const { return out_; }

  /// Moves the text out and resets the writer.
  std::string Take();

  /// One-shot convenience: renders a whole simple-event sequence.
  static StatusOr<std::string> ToXml(const EventVec& events,
                                     const Options& options);
  static StatusOr<std::string> ToXml(const EventVec& events) {
    return ToXml(events, Options());
  }

 private:
  void CloseOpenTag();
  void Indent();

  Options options_;
  std::string out_;
  Status status_;
  bool tag_open_ = false;        // "<name" emitted, ">" pending
  bool in_attribute_ = false;       // inside an '@' child
  bool detached_attribute_ = false; // '@' child selected as a result item
  std::string attribute_name_;
  std::string attribute_value_;
  int depth_ = 0;
  std::vector<bool> had_child_elements_;
};

}  // namespace xflux

#endif  // XFLUX_XML_SERIALIZER_H_
