#include "spex/spex_engine.h"

#include <algorithm>

namespace xflux {

namespace {

bool IsNameChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == '-' || c == '@';
}

}  // namespace

StatusOr<std::vector<SpexEngine::Step>> SpexEngine::ParseSteps(
    std::string_view xpath) {
  std::vector<Step> steps;
  size_t i = 0;
  // An optional leading source name (the benchmark queries write X//...).
  while (i < xpath.size() && IsNameChar(xpath[i])) ++i;
  while (i < xpath.size()) {
    Step step;
    if (xpath.substr(i, 2) == "//") {
      step.descendant = true;
      i += 2;
    } else if (xpath[i] == '/') {
      i += 1;
    } else {
      return Status::ParseError("expected '/' in XPath at offset " +
                                std::to_string(i));
    }
    if (i < xpath.size() && xpath[i] == '*') {
      step.name = "*";
      step.wildcard = true;
      ++i;
    } else {
      size_t start = i;
      while (i < xpath.size() && IsNameChar(xpath[i])) ++i;
      if (i == start) {
        return Status::ParseError("expected a name test at offset " +
                                  std::to_string(i));
      }
      step.name = std::string(xpath.substr(start, i - start));
      step.name_sym = InternTag(step.name);
    }
    while (i < xpath.size() && xpath[i] == '[') {
      ++i;
      Predicate pred;
      size_t start = i;
      while (i < xpath.size() && IsNameChar(xpath[i])) ++i;
      if (i == start) {
        return Status::ParseError("expected a predicate child name");
      }
      pred.child = std::string(xpath.substr(start, i - start));
      pred.child_sym = InternTag(pred.child);
      if (i < xpath.size() && xpath[i] == '=') {
        ++i;
        if (i >= xpath.size() || xpath[i] != '"') {
          return Status::ParseError("expected a quoted literal in predicate");
        }
        ++i;
        size_t lit_start = i;
        while (i < xpath.size() && xpath[i] != '"') ++i;
        if (i >= xpath.size()) {
          return Status::ParseError("unterminated predicate literal");
        }
        pred.literal = std::string(xpath.substr(lit_start, i - lit_start));
        pred.has_literal = true;
        ++i;
      }
      if (i >= xpath.size() || xpath[i] != ']') {
        return Status::ParseError("expected ']' in predicate");
      }
      ++i;
      step.predicates.push_back(std::move(pred));
    }
    steps.push_back(std::move(step));
  }
  if (steps.empty()) return Status::ParseError("empty XPath");
  return steps;
}

StatusOr<std::unique_ptr<SpexEngine>> SpexEngine::Compile(
    std::string_view xpath, EventSink* out) {
  auto steps = ParseSteps(xpath);
  if (!steps.ok()) return steps.status();
  return std::unique_ptr<SpexEngine>(
      new SpexEngine(std::move(steps).value(), out));
}

std::string SpexStepSig::Key() const {
  std::string key = descendant ? "desc(" : "child(";
  key.append(name).append(")").append(predicates);
  return key;
}

StatusOr<std::vector<SpexStepSig>> SpexEngine::ParseSignatures(
    std::string_view xpath) {
  auto steps = ParseSteps(xpath);
  if (!steps.ok()) return steps.status();
  std::vector<SpexStepSig> sigs;
  sigs.reserve(steps.value().size());
  for (const Step& step : steps.value()) {
    SpexStepSig sig;
    sig.descendant = step.descendant;
    sig.name = step.name;
    if (!step.wildcard) sig.symbol = step.name_sym;
    for (const Predicate& pred : step.predicates) {
      sig.predicates.append("[").append(pred.child);
      if (pred.has_literal) {
        sig.predicates.append("=\"").append(pred.literal).append("\"");
      }
      sig.predicates.append("]");
    }
    sigs.push_back(std::move(sig));
  }
  return sigs;
}

SpexPrefixDag::AddResult SpexPrefixDag::AddPath(
    const std::vector<std::string>& keys) {
  AddResult result;
  result.nodes.reserve(keys.size());
  size_t at = 0;  // the root
  for (const std::string& key : keys) {
    ++steps_seen_;
    auto it = nodes_[at].children.find(key);
    if (it != nodes_[at].children.end()) {
      at = it->second;
      ++result.reused;
      ++steps_reused_;
    } else {
      Node node;
      node.key = key;
      node.parent = at;
      size_t id = nodes_.size();
      nodes_[at].children.emplace(key, id);
      nodes_.push_back(std::move(node));
      at = id;
      ++result.added;
    }
    ++nodes_[at].hits;
    result.nodes.push_back(at);
  }
  return result;
}

bool SpexEngine::NameMatches(const Step& step, Symbol tag) const {
  if (step.wildcard) return !SymbolTable::Global().IsAttribute(tag);
  return step.name_sym == tag;
}

void SpexEngine::EmitOut(const Event& e) {
  if (output_candidate_ >= 0) {
    candidates_[static_cast<size_t>(output_candidate_)].buffer.push_back(e);
    ++buffered_;
    max_buffered_ = std::max(max_buffered_, buffered_);
  } else {
    out_->Accept(e);
  }
}

void SpexEngine::Accept(Event e) {
  switch (e.kind) {
    case EventKind::kStartElement: {
      Frame frame;
      if (stack_.empty()) {
        // The document element: matching starts at its children.
        frame.active.push_back(0);
        stack_.push_back(std::move(frame));
        return;
      }
      const Frame& parent = stack_.back();
      bool inside_output = output_depth_ > 0;
      if (inside_output) EmitOut(e);
      // Predicate children of candidates sitting at the parent element.
      if (!inside_output && capture_targets_.empty()) {
        for (size_t ci = 0; ci < candidates_.size(); ++ci) {
          const Candidate& cand = candidates_[ci];
          if (cand.depth != static_cast<int>(stack_.size())) continue;
          for (size_t pi = 0; pi < steps_[cand.step].predicates.size();
               ++pi) {
            if (steps_[cand.step].predicates[pi].child_sym == e.tag) {
              capture_targets_.emplace_back(ci, pi);
              frame.pred_capture = 1;
            }
          }
        }
        if (frame.pred_capture != 0) capture_text_.clear();
      }
      // Automaton transitions.
      for (size_t p : parent.active) {
        ++transitions_;
        const Step& step = steps_[p];
        if (step.descendant) frame.active.push_back(p);
        if (!NameMatches(step, e.tag)) continue;
        frame.matched.push_back(p);
        if (p + 1 == steps_.size()) {
          // A result node: stream its subtree (deduplicated when nested
          // inside an already-matched result).  It waits on the predicates
          // of the candidate on its own derivation path: the candidate at
          // its parent element occupying the previous step.
          if (!inside_output) {
            if (output_depth_ == 0) {
              output_candidate_ = -1;
              for (size_t ci = 0; ci < candidates_.size(); ++ci) {
                if (candidates_[ci].depth ==
                        static_cast<int>(stack_.size()) &&
                    candidates_[ci].step + 1 == p) {
                  output_candidate_ = static_cast<int>(ci);
                }
              }
            }
            EmitOut(e);
          }
          ++output_depth_;
          ++frame.outputs_opened;
        } else {
          frame.active.push_back(p + 1);
          if (!steps_[p].predicates.empty() && !inside_output) {
            Candidate cand;
            cand.step = p;
            cand.depth = static_cast<int>(stack_.size()) + 1;
            cand.predicate_ok.assign(steps_[p].predicates.size(), false);
            candidates_.push_back(std::move(cand));
            ++frame.candidates_opened;
          }
        }
      }
      stack_.push_back(std::move(frame));
      return;
    }

    case EventKind::kEndElement: {
      if (stack_.empty()) return;
      Frame frame = std::move(stack_.back());
      stack_.pop_back();
      if (stack_.empty()) return;  // the document element closed
      bool was_inside_output = output_depth_ > 0;
      output_depth_ -= frame.outputs_opened;
      bool closes_output = was_inside_output && output_depth_ == 0;
      // Resolve a predicate-child capture ending here.
      if (frame.pred_capture != 0) {
        for (auto& [ci, pi] : capture_targets_) {
          Candidate& cand = candidates_[ci];
          const Predicate& pred = steps_[cand.step].predicates[pi];
          if (!pred.has_literal || capture_text_ == pred.literal) {
            cand.predicate_ok[pi] = true;
          }
        }
        capture_targets_.clear();
      }
      if (was_inside_output) EmitOut(e);
      if (closes_output) output_candidate_ = -1;
      // Close candidates opened by this element.
      for (int k = 0; k < frame.candidates_opened; ++k) {
        Candidate cand = std::move(candidates_.back());
        candidates_.pop_back();
        buffered_ -= cand.buffer.size();
        bool ok = std::all_of(cand.predicate_ok.begin(),
                              cand.predicate_ok.end(),
                              [](bool b) { return b; });
        if (ok) {
          // The governing predicates held: the results are final.
          for (Event& b : cand.buffer) out_->Accept(std::move(b));
          buffered_ -= 0;
        }
      }
      return;
    }

    case EventKind::kCharacters:
      if (!capture_targets_.empty()) capture_text_ += e.chars();
      if (output_depth_ > 0) EmitOut(e);
      return;

    default:
      return;  // stream/tuple brackets and updates are not supported
  }
}

}  // namespace xflux
