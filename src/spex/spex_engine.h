// A reimplementation of the automata-based streaming XPath evaluation that
// SPEX [16] represents in the paper's evaluation (Section VII).
//
// The engine compiles an XPath expression — child and descendant steps,
// name tests and wildcards, and simple predicates [child], [child="text"]
// — into a step sequence evaluated as a stack automaton: each open element
// carries the set of step positions it occupies, descendant steps stay
// active below their match point, and elements matching a predicated step
// open a candidate scope whose matched output subtrees are buffered until
// the predicates resolve at the element's end tag.
//
// This is the style of system the paper calls "optimal for a restricted
// subset of XPath": it does no update processing and supports no XQuery
// constructs, but evaluates //-heavy paths in one pass with no update
// machinery — the comparison point for benchmark queries 1-3 and 8.

#ifndef XFLUX_SPEX_SPEX_ENGINE_H_
#define XFLUX_SPEX_SPEX_ENGINE_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/event.h"
#include "core/event_sink.h"
#include "util/status.h"
#include "util/symbol_table.h"

namespace xflux {

/// See file comment.  Consumes a plain tokenized XML stream and pushes the
/// matching elements' events to `out`.
class SpexEngine : public EventSink {
 public:
  /// Compiles the XPath subset: ("//" | "/") (name | "*")
  /// ("[" name ("=" "\"lit\"")? "]")* ...
  static StatusOr<std::unique_ptr<SpexEngine>> Compile(std::string_view xpath,
                                                       EventSink* out);

  void Accept(Event event) override;

  /// Automaton transitions taken (the throughput cost driver).
  uint64_t transitions() const { return transitions_; }
  /// High-water mark of buffered candidate events.
  size_t max_buffered_events() const { return max_buffered_; }

 private:
  struct Predicate {
    std::string child;
    Symbol child_sym;  // interned at compile time
    std::string literal;
    bool has_literal = false;
  };
  struct Step {
    bool descendant = false;
    std::string name;   // "*" matches any element
    bool wildcard = false;
    Symbol name_sym;    // interned at compile time (unset for "*")
    std::vector<Predicate> predicates;
  };

  // A predicated element whose output subtrees wait for its predicates.
  struct Candidate {
    size_t step = 0;
    int depth = 0;  // stack depth of the candidate element
    std::vector<bool> predicate_ok;
    EventVec buffer;
  };

  struct Frame {
    std::vector<size_t> active;   // step positions live for this element
    std::vector<size_t> matched;  // step positions this element occupies
    int candidates_opened = 0;
    int outputs_opened = 0;   // final-step matches rooted at this element
    int pred_capture = 0;     // >0: capturing text for parent candidates
  };

  SpexEngine(std::vector<Step> steps, EventSink* out)
      : steps_(std::move(steps)), out_(out) {}

  bool NameMatches(const Step& step, Symbol tag) const;
  void EmitOut(const Event& e);

  std::vector<Step> steps_;
  EventSink* out_;
  std::vector<Frame> stack_;
  std::vector<Candidate> candidates_;
  // Capture state for predicate children of open candidates: indexes into
  // candidates_ paired with predicate slots, for the currently-open
  // predicate child.
  std::vector<std::pair<size_t, size_t>> capture_targets_;
  std::string capture_text_;
  int output_depth_ = 0;  // >0: inside a final-step match, pass events
  // Index of the candidate governing the open output subtree (-1: none);
  // results are buffered against the candidate on their own match path,
  // not whatever candidate happens to be innermost.
  int output_candidate_ = -1;
  uint64_t transitions_ = 0;
  size_t buffered_ = 0;
  size_t max_buffered_ = 0;
};

}  // namespace xflux

#endif  // XFLUX_SPEX_SPEX_ENGINE_H_
