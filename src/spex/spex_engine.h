// A reimplementation of the automata-based streaming XPath evaluation that
// SPEX [16] represents in the paper's evaluation (Section VII).
//
// The engine compiles an XPath expression — child and descendant steps,
// name tests and wildcards, and simple predicates [child], [child="text"]
// — into a step sequence evaluated as a stack automaton: each open element
// carries the set of step positions it occupies, descendant steps stay
// active below their match point, and elements matching a predicated step
// open a candidate scope whose matched output subtrees are buffered until
// the predicates resolve at the element's end tag.
//
// This is the style of system the paper calls "optimal for a restricted
// subset of XPath": it does no update processing and supports no XQuery
// constructs, but evaluates //-heavy paths in one pass with no update
// machinery — the comparison point for benchmark queries 1-3 and 8.

#ifndef XFLUX_SPEX_SPEX_ENGINE_H_
#define XFLUX_SPEX_SPEX_ENGINE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/event.h"
#include "core/event_sink.h"
#include "util/status.h"
#include "util/symbol_table.h"

namespace xflux {

/// One step of the SPEX XPath subset rendered canonically — the
/// `(op, Symbol)` unit the shared prefix DAG merges on.  Two steps with
/// equal Key() compile to interchangeable automaton states: same axis,
/// same interned name test, same predicate set.
struct SpexStepSig {
  bool descendant = false;
  std::string name;        // "*" for the wildcard test
  Symbol symbol;           // interned name (unset for "*")
  std::string predicates;  // canonical `[child="lit"]...` rendering, or ""

  /// The dedup key, e.g. `desc(item)[location="Albania"]`.
  std::string Key() const;
};

/// See file comment.  Consumes a plain tokenized XML stream and pushes the
/// matching elements' events to `out`.
class SpexEngine : public EventSink {
 public:
  /// Compiles the XPath subset: ("//" | "/") (name | "*")
  /// ("[" name ("=" "\"lit\"")? "]")* ...
  static StatusOr<std::unique_ptr<SpexEngine>> Compile(std::string_view xpath,
                                                       EventSink* out);

  /// Parses the same subset into canonical step signatures without
  /// building an automaton — the mergeable-prefix view of a query.
  static StatusOr<std::vector<SpexStepSig>> ParseSignatures(
      std::string_view xpath);

  void Accept(Event event) override;

  /// Automaton transitions taken (the throughput cost driver).
  uint64_t transitions() const { return transitions_; }
  /// High-water mark of buffered candidate events.
  size_t max_buffered_events() const { return max_buffered_; }

 private:
  struct Predicate {
    std::string child;
    Symbol child_sym;  // interned at compile time
    std::string literal;
    bool has_literal = false;
  };
  struct Step {
    bool descendant = false;
    std::string name;   // "*" matches any element
    bool wildcard = false;
    Symbol name_sym;    // interned at compile time (unset for "*")
    std::vector<Predicate> predicates;
  };

  /// Shared front end for Compile and ParseSignatures.
  static StatusOr<std::vector<Step>> ParseSteps(std::string_view xpath);

  // A predicated element whose output subtrees wait for its predicates.
  struct Candidate {
    size_t step = 0;
    int depth = 0;  // stack depth of the candidate element
    std::vector<bool> predicate_ok;
    EventVec buffer;
  };

  struct Frame {
    std::vector<size_t> active;   // step positions live for this element
    std::vector<size_t> matched;  // step positions this element occupies
    int candidates_opened = 0;
    int outputs_opened = 0;   // final-step matches rooted at this element
    int pred_capture = 0;     // >0: capturing text for parent candidates
  };

  SpexEngine(std::vector<Step> steps, EventSink* out)
      : steps_(std::move(steps)), out_(out) {}

  bool NameMatches(const Step& step, Symbol tag) const;
  void EmitOut(const Event& e);

  std::vector<Step> steps_;
  EventSink* out_;
  std::vector<Frame> stack_;
  std::vector<Candidate> candidates_;
  // Capture state for predicate children of open candidates: indexes into
  // candidates_ paired with predicate slots, for the currently-open
  // predicate child.
  std::vector<std::pair<size_t, size_t>> capture_targets_;
  std::string capture_text_;
  int output_depth_ = 0;  // >0: inside a final-step match, pass events
  // Index of the candidate governing the open output subtree (-1: none);
  // results are buffered against the candidate on their own match path,
  // not whatever candidate happens to be innermost.
  int output_candidate_ = -1;
  uint64_t transitions_ = 0;
  size_t buffered_ = 0;
  size_t max_buffered_ = 0;
};

/// A mergeable prefix trie over step-signature sequences: the shared-DAG
/// index of N registered queries.  AddPath walks one query's leading
/// signatures from the root, reusing an existing node when the key
/// matches and appending a fresh one otherwise; the returned node ids
/// identify the merged automaton states.  The reuse counters quantify
/// work sharing: `steps_reused() / steps_seen()` is the shared-prefix hit
/// ratio the QueryServer reports.
class SpexPrefixDag {
 public:
  struct AddResult {
    std::vector<size_t> nodes;  // one id per key, in path order
    size_t reused = 0;          // keys that landed on existing nodes
    size_t added = 0;           // keys that created new nodes
  };

  /// Merges one key sequence into the DAG.  Deterministic: equal key
  /// sequences map to equal node-id sequences regardless of add order.
  AddResult AddPath(const std::vector<std::string>& keys);

  /// Distinct automaton states (excluding the implicit root).
  size_t node_count() const { return nodes_.size() - 1; }
  /// Total keys ever offered / keys resolved to an existing node.
  uint64_t steps_seen() const { return steps_seen_; }
  uint64_t steps_reused() const { return steps_reused_; }
  /// steps_reused / steps_seen, 0 while empty.
  double SharedRatio() const {
    return steps_seen_ == 0
               ? 0.0
               : static_cast<double>(steps_reused_) /
                     static_cast<double>(steps_seen_);
  }

  const std::string& key(size_t node) const { return nodes_[node].key; }
  size_t parent(size_t node) const { return nodes_[node].parent; }
  /// Number of registered paths that traverse `node`.
  size_t hits(size_t node) const { return nodes_[node].hits; }

 private:
  struct Node {
    std::string key;
    size_t parent = 0;
    size_t hits = 0;
    std::map<std::string, size_t> children;
  };
  std::vector<Node> nodes_ = std::vector<Node>(1);  // [0] is the root
  uint64_t steps_seen_ = 0;
  uint64_t steps_reused_ = 0;
};

}  // namespace xflux

#endif  // XFLUX_SPEX_SPEX_ENGINE_H_
