#include "ops/child_step.h"

namespace xflux {

namespace {

// The paper's /tag state: the current element depth and whether events are
// being passed through.
struct ChildStepState : StateBase<ChildStepState> {
  int depth = 0;
  bool pass = false;
};

}  // namespace

std::unique_ptr<OperatorState> ChildStep::InitialState() const {
  return std::make_unique<ChildStepState>();
}

bool ChildStep::Matches(Symbol tag) const {
  if (wildcard_) return !SymbolTable::Global().IsAttribute(tag);
  return tag == tag_sym_;
}

void ChildStep::Process(const Event& e, StreamId /*root*/,
                        OperatorState* state, EventVec* out) {
  auto* s = static_cast<ChildStepState*>(state);
  switch (e.kind) {
    case EventKind::kStartStream:
    case EventKind::kEndStream:
    case EventKind::kStartTuple:
    case EventKind::kEndTuple:
      out->push_back(e);
      return;
    case EventKind::kStartElement:
      if (s->depth == 1 && Matches(e.tag)) s->pass = true;
      ++s->depth;
      break;
    case EventKind::kEndElement:
      --s->depth;
      if (s->depth == 1 && s->pass) {
        s->pass = false;
        out->push_back(e);
        return;
      }
      break;
    default:
      break;
  }
  if (s->pass) out->push_back(e);
}

}  // namespace xflux
