#include "ops/descendant_step.h"

#include <vector>

namespace xflux {

namespace {

// The paper's (depth, m[·]) state: the element depth plus the stack of open
// copy regions (the m mapping restricted to currently-open levels).
struct DescendantState : StateBase<DescendantState> {
  int depth = 0;  // number of open elements, document element included
  // match_stack[k] = copy region of the k-th enclosing match; the first
  // entry is the mutable base copy (original ids), deeper entries are
  // insert-before regions.
  std::vector<StreamId> copies;
};

}  // namespace

std::unique_ptr<OperatorState> DescendantStep::InitialState() const {
  return std::make_unique<DescendantState>();
}

bool DescendantStep::Matches(Symbol tag, int level) const {
  if (level < 1) return false;  // the document element itself is not a match
  if (wildcard_) return !SymbolTable::Global().IsAttribute(tag);
  return tag == tag_sym_;
}

void DescendantStep::Process(const Event& e, StreamId /*root*/,
                             OperatorState* state, EventVec* out) {
  auto* s = static_cast<DescendantState*>(state);
  switch (e.kind) {
    case EventKind::kStartStream:
    case EventKind::kEndStream:
    case EventKind::kStartTuple:
    case EventKind::kEndTuple:
      out->push_back(e);
      return;

    case EventKind::kStartElement: {
      int level = s->depth;
      ++s->depth;
      bool in_copy = !s->copies.empty();
      if (Matches(e.tag, level)) {
        if (!in_copy) {
          // Outermost match: the base copy, wrapped so deeper copies can be
          // inserted before it.
          StreamId base_copy = stage()->NewStreamId();
          // The copy's content is re-tagged: nothing can address it, so its
          // content is immutable from birth (predicates over it may take
          // the irrevocable cheap path).
          stage()->SetImmutable(base_copy);
          out->push_back(Event::StartMutable(e.id, base_copy));
          out->push_back(e);
          s->copies.push_back(base_copy);
        } else {
          // Replicate the start into the enclosing copies (all but the
          // base, which receives the original event)...
          out->push_back(e);
          for (size_t i = 1; i < s->copies.size(); ++i) {
            out->push_back(Event::StartElement(s->copies[i], e.tag, e.oid));
          }
          // ...then open this element's own copy, in front of the copy of
          // its nearest enclosing match (postorder placement).
          StreamId nid = stage()->NewStreamId();
          stage()->SetImmutable(nid);
          out->push_back(Event::StartInsertBefore(s->copies.back(), nid));
          out->push_back(Event::StartElement(nid, e.tag, e.oid));
          s->copies.push_back(nid);
        }
      } else if (in_copy) {
        out->push_back(e);
        for (size_t i = 1; i < s->copies.size(); ++i) {
          out->push_back(Event::StartElement(s->copies[i], e.tag, e.oid));
        }
      }
      return;
    }

    case EventKind::kEndElement: {
      --s->depth;
      int level = s->depth;
      if (s->copies.empty()) return;
      if (Matches(e.tag, level)) {
        StreamId closing = s->copies.back();
        s->copies.pop_back();
        if (s->copies.empty()) {
          // The base copy closes with its mutable wrapper.  Its scope is
          // complete: no operator will ever address the copy region again,
          // so it is frozen immediately and every stage (and the display)
          // can evict its state (Section V).
          out->push_back(e);
          out->push_back(Event::EndMutable(e.id, closing));
          out->push_back(Event::Freeze(closing));
        } else {
          out->push_back(Event::EndElement(closing, e.tag, e.oid));
          out->push_back(
              Event::EndInsertBefore(s->copies.back(), closing));
          out->push_back(Event::Freeze(closing));
          out->push_back(e);
          for (size_t i = 1; i < s->copies.size(); ++i) {
            out->push_back(Event::EndElement(s->copies[i], e.tag, e.oid));
          }
        }
      } else {
        out->push_back(e);
        for (size_t i = 1; i < s->copies.size(); ++i) {
          out->push_back(Event::EndElement(s->copies[i], e.tag, e.oid));
        }
      }
      return;
    }

    case EventKind::kCharacters:
      if (s->copies.empty()) return;
      out->push_back(e);
      for (size_t i = 1; i < s->copies.size(); ++i) {
        out->push_back(Event::Characters(s->copies[i], e.text));
      }
      return;

    default:
      return;
  }
}

}  // namespace xflux
