#include "ops/aggregates.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace xflux {

std::string FormatNumber(double value) {
  if (value == std::floor(value) && std::abs(value) < 1e15) {
    return std::to_string(static_cast<long long>(value));
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", value);
  return buf;
}

namespace {

struct CountState : StateBase<CountState> {
  int depth = 0;
  int64_t count = 0;
  bool started = false;
};

struct SumState : StateBase<SumState> {
  int depth = 0;
  double sum = 0;
  bool started = false;
};

struct AvgState : StateBase<AvgState> {
  int depth = 0;
  double sum = 0;
  int64_t count = 0;
  bool started = false;
};

}  // namespace

// ---------------------------------------------------------------------------
// CountOp

std::unique_ptr<OperatorState> CountOp::InitialState() const {
  return std::make_unique<CountState>();
}

void CountOp::EmitReplace(int64_t value, EventVec* out) const {
  out->push_back(Event::StartReplace(region_id_, replace_id_));
  out->push_back(Event::Characters(replace_id_, std::to_string(value)));
  out->push_back(Event::EndReplace(region_id_, replace_id_));
}

void CountOp::Process(const Event& e, StreamId /*root*/, OperatorState* state,
                      EventVec* out) {
  auto* s = static_cast<CountState*>(state);
  switch (e.kind) {
    case EventKind::kStartStream:
      s->started = true;
      out->push_back(e);
      out->push_back(Event::StartMutable(e.id, region_id_));
      out->push_back(Event::Characters(region_id_, "0"));
      out->push_back(Event::EndMutable(e.id, region_id_));
      return;
    case EventKind::kEndStream:
      out->push_back(e);
      return;
    case EventKind::kStartElement:
      if (s->depth == 0 && mode_ == CountMode::kTopLevelElements) {
        ++s->count;
        EmitReplace(s->count, out);
      }
      ++s->depth;
      return;
    case EventKind::kEndElement:
      --s->depth;
      return;
    case EventKind::kCharacters:
      if (mode_ == CountMode::kCharacterData) {
        ++s->count;
        EmitReplace(s->count, out);
      }
      return;
    default:
      return;  // tuples and everything else are swallowed
  }
}

void CountOp::Adjust(OperatorState* state, const OperatorState& s1,
                     const OperatorState& s2, AdjustTarget target,
                     StreamId /*region*/, EventVec* out) {
  auto* s = static_cast<CountState*>(state);
  int64_t delta = static_cast<const CountState&>(s2).count -
                  static_cast<const CountState&>(s1).count;
  if (delta == 0) return;
  s->count += delta;
  if (target == AdjustTarget::kLiveTail && s->started) {
    EmitReplace(s->count, out);
  }
}

// ---------------------------------------------------------------------------
// SumOp

std::unique_ptr<OperatorState> SumOp::InitialState() const {
  return std::make_unique<SumState>();
}

void SumOp::EmitReplace(double value, EventVec* out) const {
  out->push_back(Event::StartReplace(region_id_, replace_id_));
  out->push_back(Event::Characters(replace_id_, FormatNumber(value)));
  out->push_back(Event::EndReplace(region_id_, replace_id_));
}

void SumOp::Process(const Event& e, StreamId /*root*/, OperatorState* state,
                    EventVec* out) {
  auto* s = static_cast<SumState*>(state);
  switch (e.kind) {
    case EventKind::kStartStream:
      s->started = true;
      out->push_back(e);
      out->push_back(Event::StartMutable(e.id, region_id_));
      out->push_back(Event::Characters(region_id_, "0"));
      out->push_back(Event::EndMutable(e.id, region_id_));
      return;
    case EventKind::kEndStream:
      out->push_back(e);
      return;
    case EventKind::kStartElement:
      ++s->depth;
      return;
    case EventKind::kEndElement:
      --s->depth;
      return;
    case EventKind::kCharacters: {
      double v = 0;
      ParseLeadingDouble(e.text.view(), &v);
      if (v != 0) {
        s->sum += v;
        EmitReplace(s->sum, out);
      }
      return;
    }
    default:
      return;
  }
}

void SumOp::Adjust(OperatorState* state, const OperatorState& s1,
                   const OperatorState& s2, AdjustTarget target,
                   StreamId /*region*/, EventVec* out) {
  auto* s = static_cast<SumState*>(state);
  double delta = static_cast<const SumState&>(s2).sum -
                 static_cast<const SumState&>(s1).sum;
  if (delta == 0) return;
  s->sum += delta;
  if (target == AdjustTarget::kLiveTail && s->started) {
    EmitReplace(s->sum, out);
  }
}

// ---------------------------------------------------------------------------
// AvgOp

std::unique_ptr<OperatorState> AvgOp::InitialState() const {
  return std::make_unique<AvgState>();
}

void AvgOp::EmitReplace(double sum, int64_t count, EventVec* out) const {
  out->push_back(Event::StartReplace(region_id_, replace_id_));
  out->push_back(Event::Characters(
      replace_id_, count == 0 ? "" : FormatNumber(sum / count)));
  out->push_back(Event::EndReplace(region_id_, replace_id_));
}

void AvgOp::Process(const Event& e, StreamId /*root*/, OperatorState* state,
                    EventVec* out) {
  auto* s = static_cast<AvgState*>(state);
  switch (e.kind) {
    case EventKind::kStartStream:
      s->started = true;
      out->push_back(e);
      out->push_back(Event::StartMutable(e.id, region_id_));
      out->push_back(Event::Characters(region_id_, ""));
      out->push_back(Event::EndMutable(e.id, region_id_));
      return;
    case EventKind::kEndStream:
      out->push_back(e);
      return;
    case EventKind::kStartElement:
      ++s->depth;
      return;
    case EventKind::kEndElement:
      --s->depth;
      return;
    case EventKind::kCharacters: {
      double v = 0;
      if (ParseLeadingDouble(e.text.view(), &v)) {
        s->sum += v;
        ++s->count;
        EmitReplace(s->sum, s->count, out);
      }
      return;
    }
    default:
      return;
  }
}

void AvgOp::Adjust(OperatorState* state, const OperatorState& s1,
                   const OperatorState& s2, AdjustTarget target,
                   StreamId /*region*/, EventVec* out) {
  auto* s = static_cast<AvgState*>(state);
  const auto& a = static_cast<const AvgState&>(s1);
  const auto& b = static_cast<const AvgState&>(s2);
  double dsum = b.sum - a.sum;
  int64_t dcount = b.count - a.count;
  if (dsum == 0 && dcount == 0) return;
  s->sum += dsum;
  s->count += dcount;
  if (target == AdjustTarget::kLiveTail && s->started) {
    EmitReplace(s->sum, s->count, out);
  }
}

}  // namespace xflux
