#include "ops/textops.h"

#include "core/pipeline.h"

namespace xflux {

namespace {

struct AccumState : StateBase<AccumState> {
  int depth = 0;
  std::string value;  // accumulated string value of the current item
};

// TextCompare's state: the accumulated value plus the bookkeeping needed to
// re-emit a verdict when an update changes the value retroactively.
struct CompareState : StateBase<CompareState> {
  int depth = 0;
  std::string value;
  bool mutable_contrib = false;  // any contributing text was non-fixed
  StreamId verdict_region = 0;   // the emitted verdict's mutable region
  bool at_item_end = false;      // snapshot taken right after a verdict
  uint64_t seq = 0;              // monotone event counter (position proxy)
  uint64_t item_start_seq = 0;
};

}  // namespace

// ---------------------------------------------------------------------------
// TextCompare

std::unique_ptr<OperatorState> TextCompare::InitialState() const {
  return std::make_unique<CompareState>();
}

bool TextCompare::Matches(const std::string& value) const {
  if (match_ == TextMatch::kEquals) return value == literal_;
  return value.find(literal_) != std::string::npos;
}

void TextCompare::EmitVerdict(const Event& e, OperatorState* state,
                              EventVec* out) {
  auto* s = static_cast<CompareState*>(state);
  std::string verdict = Matches(s->value) ? "1" : "";
  s->at_item_end = true;
  if (!s->mutable_contrib) {
    // All contributing text was fixed: a plain, fixed verdict — the
    // consumer's decision is irrevocable (Section V's cheap path).
    s->verdict_region = 0;
    out->push_back(Event::Characters(e.id, std::move(verdict)));
    return;
  }
  // Mutable input: the verdict itself must be open for updates.
  s->verdict_region = stage()->NewStreamId();
  out->push_back(Event::StartMutable(e.id, s->verdict_region));
  out->push_back(Event::Characters(s->verdict_region, std::move(verdict)));
  out->push_back(Event::EndMutable(e.id, s->verdict_region));
}

void TextCompare::Process(const Event& e, StreamId /*root*/,
                          OperatorState* state, EventVec* out) {
  auto* s = static_cast<CompareState*>(state);
  ++s->seq;
  switch (e.kind) {
    case EventKind::kStartStream:
    case EventKind::kEndStream:
    case EventKind::kStartTuple:
    case EventKind::kEndTuple:
      out->push_back(e);
      return;
    case EventKind::kStartElement:
      if (s->depth == 0) {
        s->value.clear();
        s->mutable_contrib = false;
        s->at_item_end = false;
        s->item_start_seq = s->seq;
      }
      ++s->depth;
      return;
    case EventKind::kEndElement:
      --s->depth;
      if (s->depth == 0) EmitVerdict(e, state, out);
      return;
    case EventKind::kCharacters:
      if (s->depth == 0) {
        // A bare text item is compared directly.
        s->value = std::string(e.chars());
        s->mutable_contrib = !stage()->fix()->IsEffectivelyImmutable(e.id);
        EmitVerdict(e, state, out);
      } else {
        s->value += e.chars();
        if (!stage()->fix()->IsEffectivelyImmutable(e.id)) {
          s->mutable_contrib = true;
        }
      }
      return;
    default:
      return;
  }
}

void TextCompare::Adjust(OperatorState* state, const OperatorState& s1,
                         const OperatorState& s2, AdjustTarget target,
                         StreamId region, EventVec* out) {
  auto* s = static_cast<CompareState*>(state);
  const auto& a = static_cast<const CompareState&>(s1);
  const auto& b = static_cast<const CompareState&>(s2);
  if (a.value == b.value) return;
  if (s->item_start_seq > a.seq) return;  // update precedes this item
  // The update rewrote the value's tail: a.value extends the adjusted
  // state's prefix (accumulation is append-only), so splice in b's tail.
  if (s->value.rfind(a.value, 0) != 0) return;  // unrelated item
  bool before = Matches(s->value);
  s->value = b.value + s->value.substr(a.value.size());
  bool after = Matches(s->value);
  if (target == AdjustTarget::kEndSnapshot && region == s->verdict_region &&
      s->at_item_end && s->verdict_region != 0 && before != after) {
    // Replacements keep targeting the original verdict region: it stays
    // addressable across cascaded corrections.
    StreamId rid = stage()->NewStreamId();
    out->push_back(Event::StartReplace(s->verdict_region, rid));
    out->push_back(Event::Characters(rid, after ? "1" : ""));
    out->push_back(Event::EndReplace(s->verdict_region, rid));
  }
}

// ---------------------------------------------------------------------------
// TextExtract

std::unique_ptr<OperatorState> TextExtract::InitialState() const {
  return std::make_unique<AccumState>();
}

void TextExtract::Process(const Event& e, StreamId /*root*/,
                          OperatorState* state, EventVec* out) {
  auto* s = static_cast<AccumState*>(state);
  switch (e.kind) {
    case EventKind::kStartStream:
    case EventKind::kEndStream:
    case EventKind::kStartTuple:
    case EventKind::kEndTuple:
      out->push_back(e);
      return;
    case EventKind::kStartElement:
      ++s->depth;
      return;
    case EventKind::kEndElement:
      --s->depth;
      return;
    case EventKind::kCharacters:
      // text() selects the text children of each top-level element (depth
      // 1) and keeps bare top-level text items.
      if (s->depth <= 1) out->push_back(e);
      return;
    default:
      return;
  }
}

// ---------------------------------------------------------------------------
// StringValue

std::unique_ptr<OperatorState> StringValue::InitialState() const {
  return std::make_unique<AccumState>();
}

void StringValue::Process(const Event& e, StreamId /*root*/,
                          OperatorState* state, EventVec* out) {
  auto* s = static_cast<AccumState*>(state);
  switch (e.kind) {
    case EventKind::kStartStream:
    case EventKind::kEndStream:
    case EventKind::kStartTuple:
    case EventKind::kEndTuple:
      out->push_back(e);
      return;
    case EventKind::kStartElement:
      if (s->depth == 0) s->value.clear();
      ++s->depth;
      return;
    case EventKind::kEndElement:
      --s->depth;
      if (s->depth == 0) {
        out->push_back(Event::Characters(e.id, s->value));
        s->value.clear();
      }
      return;
    case EventKind::kCharacters:
      if (s->depth == 0) {
        out->push_back(e);
      } else {
        s->value += e.chars();
      }
      return;
    default:
      return;
  }
}

}  // namespace xflux
