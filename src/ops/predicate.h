// The general XPath predicate e1[e2] and the FLWOR where-clause
// (paper Section VI-B).
//
// A naive predicate must cache each top-level element of e1 until the
// condition e2 resolves — potentially the whole stream, and with update
// streams the outcome can flip at any future time, forcing unbounded
// caching.  This operator instead:
//
//  - wraps every top-level e1 element in its own mutable region and lets it
//    flow through immediately ("optimistically display any possible
//    output"),
//  - counts the condition's non-empty cData deliveries; at element end the
//    element is hidden if the outcome is (so far) false,
//  - when the condition's outcome is *fixed* — the condition data is
//    immutable (Section V's mutability analysis) — the decision is
//    irrevocable: the region is frozen and all state for it is evicted,
//  - otherwise the element's region stays open, and a retroactive update to
//    the condition reaches this operator's Adjust, which emits show/hide to
//    flip the decision in the display.
//
// The where-clause is the same machinery with tuple scope: the region wraps
// a whole FLWOR tuple instead of one element.

#ifndef XFLUX_OPS_PREDICATE_H_
#define XFLUX_OPS_PREDICATE_H_

#include <algorithm>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "core/state_transformer.h"

namespace xflux {

/// What one predicate decision covers.
enum class PredicateScope {
  kElement,  // XPath predicate: each top-level element of e1
  kTuple,    // FLWOR where-clause: each sT/eT tuple
};

/// See file comment.  Binary: consumes the data stream (e1's output) and
/// the condition stream (e2's output, typically produced by CloneFilter +
/// steps + TextCompare).
class PredicateOp : public StateTransformer {
 public:
  PredicateOp(PipelineContext* context, std::vector<StreamId> data_inputs,
              StreamId condition_input, PredicateScope scope)
      : context_(context),
        data_inputs_(std::move(data_inputs)),
        condition_input_(condition_input),
        scope_(scope) {}
  PredicateOp(PipelineContext* context, StreamId data_input,
              StreamId condition_input, PredicateScope scope)
      : PredicateOp(context, std::vector<StreamId>{data_input},
                    condition_input, scope) {}

  std::string Name() const override {
    return scope_ == PredicateScope::kElement ? "predicate" : "where";
  }
  bool Consumes(StreamId base_id) const override {
    return base_id == condition_input_ ||
           std::find(data_inputs_.begin(), data_inputs_.end(), base_id) !=
               data_inputs_.end();
  }
  std::unique_ptr<OperatorState> InitialState() const override;
  void Process(const Event& e, StreamId root, OperatorState* state,
               EventVec* out) override;
  void Adjust(OperatorState* state, const OperatorState& s1,
              const OperatorState& s2, AdjustTarget target, StreamId region,
              EventVec* out) override;
  bool IsInert() const override { return false; }

 private:
  void OnItemStart(const Event& e, OperatorState* state, EventVec* out);
  void OnItemEnd(const Event& e, OperatorState* state, EventVec* out);

  PipelineContext* context_;
  std::vector<StreamId> data_inputs_;
  StreamId condition_input_;
  PredicateScope scope_;
};

/// The update-independent fast-path predicate (DESIGN.md §10).  Valid only
/// when the update-independence pass proved the condition's outcome is
/// fixed by the time the item closes and that no update or hide/show can
/// ever revisit the decision.  Instead of the optimistic
/// emit-now-revoke-later protocol, it buffers one item (bounded by item
/// size) until its end event, then either emits the whole item or drops
/// it — no mutable region is minted, no hide/freeze traffic is produced,
/// and downstream stages see only the surviving fraction of the input.
/// Single data stream only (the compiler falls back to PredicateOp for
/// multi-branch sequence returns).
class EagerPredicateOp : public StateTransformer {
 public:
  EagerPredicateOp(StreamId data_input, StreamId condition_input,
                   PredicateScope scope)
      : data_input_(data_input),
        condition_input_(condition_input),
        scope_(scope) {}

  std::string Name() const override {
    return scope_ == PredicateScope::kElement ? "predicate(eager)"
                                              : "where(eager)";
  }
  bool Consumes(StreamId base_id) const override {
    return base_id == condition_input_ || base_id == data_input_;
  }
  std::unique_ptr<OperatorState> InitialState() const override;
  void Process(const Event& e, StreamId root, OperatorState* state,
               EventVec* out) override;
  // Inert: no output regions, no revisable decisions, nothing to adjust.

 private:
  StreamId data_input_;
  StreamId condition_input_;
  PredicateScope scope_;
};

}  // namespace xflux

#endif  // XFLUX_OPS_PREDICATE_H_
