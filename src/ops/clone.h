// Stream cloning (paper Sections VI-B and VI-E).
//
// Predicates and backward axes are binary: they combine a data stream with
// a condition stream derived from the same source.  Cloning duplicates
// every event of one base stream onto a second base stream — "each event is
// repeated twice under different substream numbers" — including update
// brackets, which are replicated with a parallel set of fresh region ids so
// updates replay identically on both branches.  Cloning is a raw filter
// (its id map is monotone and position-independent, so it needs no state
// adjustment).

#ifndef XFLUX_OPS_CLONE_H_
#define XFLUX_OPS_CLONE_H_

#include <unordered_map>

#include "core/pipeline.h"

namespace xflux {

/// Duplicates base stream `input` as base stream `clone_base`.
class CloneFilter : public Filter {
 public:
  CloneFilter(PipelineContext* context, StreamId input, StreamId clone_base)
      : Filter(context), input_(input), clone_base_(clone_base) {
    context->streams()->RegisterBase(clone_base);
  }

 protected:
  void Dispatch(Event event) override;

  std::string StageName() const override {
    return "clone " + std::to_string(input_) + "->" +
           std::to_string(clone_base_);
  }

 private:
  // Maps an id of the input lineage to its clone-side parallel id.
  StreamId MapId(StreamId id);

  StreamId input_;
  StreamId clone_base_;
  std::unordered_map<StreamId, StreamId> map_;
};

}  // namespace xflux

#endif  // XFLUX_OPS_CLONE_H_
