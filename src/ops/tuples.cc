#include "ops/tuples.h"

namespace xflux {

namespace {

struct DepthState : StateBase<DepthState> {
  int depth = 0;
};

struct ConstructState : StateBase<ConstructState> {
  bool opened = false;  // whole-stream wrapper emitted
  bool closed = false;
};

}  // namespace

// ---------------------------------------------------------------------------
// MakeTuples

std::unique_ptr<OperatorState> MakeTuples::InitialState() const {
  return std::make_unique<DepthState>();
}

void MakeTuples::Process(const Event& e, StreamId /*root*/,
                         OperatorState* state, EventVec* out) {
  auto* s = static_cast<DepthState*>(state);
  switch (e.kind) {
    case EventKind::kStartStream:
    case EventKind::kEndStream:
      out->push_back(e);
      return;
    case EventKind::kStartTuple:
    case EventKind::kEndTuple:
      return;  // re-binding an already tupled stream replaces the brackets
    case EventKind::kStartElement:
      if (s->depth == 0) out->push_back(Event::StartTuple(e.id));
      ++s->depth;
      out->push_back(e);
      return;
    case EventKind::kEndElement:
      --s->depth;
      out->push_back(e);
      if (s->depth == 0) out->push_back(Event::EndTuple(e.id));
      return;
    case EventKind::kCharacters:
      if (s->depth == 0) {
        // A bare text item binds as a singleton tuple.
        out->push_back(Event::StartTuple(e.id));
        out->push_back(e);
        out->push_back(Event::EndTuple(e.id));
      } else {
        out->push_back(e);
      }
      return;
    default:
      return;
  }
}

// ---------------------------------------------------------------------------
// StripTuples

std::unique_ptr<OperatorState> StripTuples::InitialState() const {
  return std::make_unique<DepthState>();
}

void StripTuples::Process(const Event& e, StreamId /*root*/,
                          OperatorState* /*state*/, EventVec* out) {
  if (e.kind == EventKind::kStartTuple || e.kind == EventKind::kEndTuple) {
    return;
  }
  out->push_back(e);
}

// ---------------------------------------------------------------------------
// ElementConstruct

std::unique_ptr<OperatorState> ElementConstruct::InitialState() const {
  return std::make_unique<ConstructState>();
}

void ElementConstruct::Process(const Event& e, StreamId /*root*/,
                               OperatorState* state, EventVec* out) {
  auto* s = static_cast<ConstructState*>(state);
  switch (e.kind) {
    case EventKind::kStartStream:
      out->push_back(e);
      // Several consumed base streams (clone branches) deliver their own
      // sS/eS; the wrapper opens once and closes once.
      if (scope_ == ConstructScope::kWholeStream && !s->opened) {
        s->opened = true;
        out->push_back(Event::StartElement(e.id, tag_sym_));
      }
      return;
    case EventKind::kEndStream:
      if (scope_ == ConstructScope::kWholeStream && !s->closed) {
        s->closed = true;
        out->push_back(Event::EndElement(e.id, tag_sym_));
      }
      out->push_back(e);
      return;
    case EventKind::kStartTuple:
      out->push_back(e);
      if (scope_ == ConstructScope::kPerTuple) {
        out->push_back(Event::StartElement(e.id, tag_sym_));
      }
      return;
    case EventKind::kEndTuple:
      if (scope_ == ConstructScope::kPerTuple) {
        out->push_back(Event::EndElement(e.id, tag_sym_));
      }
      out->push_back(e);
      return;
    default:
      out->push_back(e);
      return;
  }
}

// ---------------------------------------------------------------------------
// TextLiteral

std::unique_ptr<OperatorState> TextLiteral::InitialState() const {
  return std::make_unique<DepthState>();
}

void TextLiteral::Process(const Event& e, StreamId /*root*/,
                          OperatorState* /*state*/, EventVec* out) {
  switch (e.kind) {
    case EventKind::kStartStream:
      out->push_back(e);
      if (scope_ == ConstructScope::kWholeStream) {
        out->push_back(Event::Characters(e.id, text_ref_));
      }
      return;
    case EventKind::kEndStream:
      out->push_back(e);
      return;
    case EventKind::kStartTuple:
      out->push_back(e);
      if (scope_ == ConstructScope::kPerTuple) {
        out->push_back(Event::Characters(e.id, text_ref_));
      }
      return;
    case EventKind::kEndTuple:
      out->push_back(e);
      return;
    default:
      return;  // the literal replaces the branch's content
  }
}

}  // namespace xflux
