// The descendant steps //* and //tag (paper Section VI-C).
//
// A naive //* must buffer every element of depth 2 so that inner elements
// can be emitted (in postorder) before their enclosing elements.  This
// operator instead emits every nested copy the moment its events arrive,
// wrapped in insert-before updates that retroactively move each inner copy
// in front of its enclosing copy:
//
//  - the outermost matching element's copy passes through with its original
//    stream ids, wrapped in a mutable region, so deeper copies have an
//    anchor to insert before,
//  - each deeper matching element opens a fresh region inserted before the
//    copy of its nearest enclosing match,
//  - every event inside a match is replicated into all open copy regions.
//
// For //tag only elements with a matching tag open copies, so non-recursive
// documents generate no updates at all — //tag is then as cheap as /tag.

#ifndef XFLUX_OPS_DESCENDANT_STEP_H_
#define XFLUX_OPS_DESCENDANT_STEP_H_

#include <string>

#include "core/pipeline.h"
#include "core/state_transformer.h"
#include "util/symbol_table.h"

namespace xflux {

/// Streams the matching descendants of the document element, innermost
/// copies first (postorder), using insert-before updates instead of
/// buffering.  `tag` is an element name or "*" for every element
/// (attributes are never matched by "*").
class DescendantStep : public StateTransformer {
 public:
  DescendantStep(PipelineContext* context, StreamId input, std::string tag)
      : context_(context),
        input_(input),
        tag_(std::move(tag)),
        wildcard_(tag_ == "*"),
        tag_sym_(wildcard_ ? Symbol() : InternTag(tag_)) {}

  std::string Name() const override { return "descendant(" + tag_ + ")"; }
  bool Consumes(StreamId base_id) const override { return base_id == input_; }
  std::unique_ptr<OperatorState> InitialState() const override;
  void Process(const Event& e, StreamId root, OperatorState* state,
               EventVec* out) override;

 private:
  bool Matches(Symbol tag, int level) const;

  PipelineContext* context_;
  StreamId input_;
  std::string tag_;
  bool wildcard_;
  Symbol tag_sym_;
};

}  // namespace xflux

#endif  // XFLUX_OPS_DESCENDANT_STEP_H_
