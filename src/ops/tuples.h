// FLWOR tuple plumbing and element construction.
//
// A FLWOR loop `for $x in e` turns every top-level item of e's stream into
// a tuple (the paper's sT/eT events); the where-clause, order-by, and
// return clauses then operate tuple-at-a-time, and the tuple markers are
// stripped before the final output.

#ifndef XFLUX_OPS_TUPLES_H_
#define XFLUX_OPS_TUPLES_H_

#include <algorithm>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "core/state_transformer.h"
#include "util/symbol_table.h"
#include "util/text_ref.h"

namespace xflux {

/// Wraps each top-level item of the input in sT/eT brackets
/// (the binding step of `for $x in e`).
class MakeTuples : public StateTransformer {
 public:
  explicit MakeTuples(StreamId input) : input_(input) {}

  std::string Name() const override { return "for"; }
  bool Consumes(StreamId base_id) const override { return base_id == input_; }
  std::unique_ptr<OperatorState> InitialState() const override;
  void Process(const Event& e, StreamId root, OperatorState* state,
               EventVec* out) override;

 private:
  StreamId input_;
};

/// Removes sT/eT markers (end of a FLWOR pipeline, and the concatenation
/// F1 transformer of Section VI-A).
class StripTuples : public StateTransformer {
 public:
  explicit StripTuples(std::vector<StreamId> inputs)
      : inputs_(std::move(inputs)) {}

  std::string Name() const override { return "strip-tuples"; }
  bool Consumes(StreamId base_id) const override {
    return std::find(inputs_.begin(), inputs_.end(), base_id) !=
           inputs_.end();
  }
  std::unique_ptr<OperatorState> InitialState() const override;
  void Process(const Event& e, StreamId root, OperatorState* state,
               EventVec* out) override;

 private:
  std::vector<StreamId> inputs_;
};

/// What an ElementConstruct wraps.
enum class ConstructScope {
  kPerTuple,     // return <tag>{...}</tag> inside a FLWOR loop
  kWholeStream,  // <tag>{ ...whole query... }</tag> around the result
};

/// Element construction <tag>{e}</tag>.
class ElementConstruct : public StateTransformer {
 public:
  ElementConstruct(std::vector<StreamId> inputs, std::string tag,
                   ConstructScope scope)
      : inputs_(std::move(inputs)),
        tag_(std::move(tag)),
        tag_sym_(InternTag(tag_)),
        scope_(scope) {}

  std::string Name() const override { return "<" + tag_ + ">{...}"; }
  bool Consumes(StreamId base_id) const override {
    return std::find(inputs_.begin(), inputs_.end(), base_id) !=
           inputs_.end();
  }
  std::unique_ptr<OperatorState> InitialState() const override;
  void Process(const Event& e, StreamId root, OperatorState* state,
               EventVec* out) override;

 private:
  std::vector<StreamId> inputs_;
  std::string tag_;
  Symbol tag_sym_;
  ConstructScope scope_;
};

/// Emits a fixed text literal once per tuple (or once per stream), used for
/// string literals in return clauses, e.g. `return (..., ": ", ...)`.
class TextLiteral : public StateTransformer {
 public:
  TextLiteral(StreamId input, std::string text, ConstructScope scope)
      : input_(input),
        text_(std::move(text)),
        text_ref_(TextRef::Copy(text_)),
        scope_(scope) {}

  std::string Name() const override { return "literal"; }
  bool Consumes(StreamId base_id) const override { return base_id == input_; }
  std::unique_ptr<OperatorState> InitialState() const override;
  void Process(const Event& e, StreamId root, OperatorState* state,
               EventVec* out) override;

 private:
  StreamId input_;
  std::string text_;
  TextRef text_ref_;  // shared payload, refcount-bumped per emission
  ConstructScope scope_;
};

}  // namespace xflux

#endif  // XFLUX_OPS_TUPLES_H_
