#include "ops/concat.h"

namespace xflux {

namespace {

struct ConcatState : StateBase<ConcatState> {
  StreamId anchor = 0;  // the current tuple's capture region
};

}  // namespace

std::unique_ptr<OperatorState> ConcatOp::InitialState() const {
  return std::make_unique<ConcatState>();
}

void ConcatOp::Process(const Event& e, StreamId root, OperatorState* state,
                       EventVec* out) {
  auto* s = static_cast<ConcatState*>(state);
  bool is_last_branch = root == branches_.back();
  if (e.kind == EventKind::kStartTuple) {
    if (!is_last_branch) return;  // earlier branches' markers are stripped
    // The last branch's tuple anchors the chain: a fresh mutable region
    // captures its content (the sM target-capture rule: the marker id is
    // the last branch's stream), and each earlier branch is an
    // insert-before against its successor, so branch 0's content ends up
    // first.  The output tuple keeps the incoming marker id so the whole
    // structure stays nested in whatever encloses it.
    s->anchor = stage()->NewStreamId();
    out->push_back(e);
    out->push_back(Event::StartMutable(e.id, s->anchor));
    StreamId successor = s->anchor;
    for (size_t i = branches_.size() - 1; i > 0; --i) {
      out->push_back(Event::StartInsertBefore(successor, branches_[i - 1]));
      successor = branches_[i - 1];
    }
    return;
  }
  if (e.kind == EventKind::kEndTuple) {
    if (!is_last_branch) return;
    // Close the insert-before chain in reverse order of opening.
    for (size_t i = 1; i < branches_.size(); ++i) {
      StreamId successor =
          i < branches_.size() - 1 ? branches_[i] : s->anchor;
      out->push_back(Event::EndInsertBefore(successor, branches_[i - 1]));
    }
    out->push_back(Event::EndMutable(e.id, s->anchor));
    // The anchor's scope is the tuple, which is now complete; updates to
    // concatenated content target the branch regions, never the anchor.
    out->push_back(Event::Freeze(s->anchor));
    out->push_back(e);
    return;
  }
  // Content flows through untouched; each branch's events fall into its own
  // region because the region ids *are* the branch stream ids (and the last
  // branch is captured by the anchor's sM).
  out->push_back(e);
}

}  // namespace xflux
