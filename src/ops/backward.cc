#include "ops/backward.h"

namespace xflux {

namespace {

struct BackwardState : StateBase<BackwardState> {
  int depth = 0;       // candidate-stream element depth
  int ddepth = 0;      // data-stream element depth
  StreamId nid = 0;    // current candidate's output region
  int outcome = 0;     // matches seen inside the current candidate
  Oid last_item_oid = 0;  // data side: last top-level item closed
};

}  // namespace

std::unique_ptr<OperatorState> BackwardAxisOp::InitialState() const {
  return std::make_unique<BackwardState>();
}

void BackwardAxisOp::Process(const Event& e, StreamId root,
                             OperatorState* state, EventVec* out) {
  auto* s = static_cast<BackwardState*>(state);
  if (root == data_input_) {
    // The data stream is consumed; it only drives the match target.
    switch (e.kind) {
      case EventKind::kStartElement:
        ++s->ddepth;
        break;
      case EventKind::kEndElement:
        --s->ddepth;
        if (s->ddepth == 0) {
          right_end_ = e.oid;
          s->last_item_oid = e.oid;
        }
        break;
      default:
        break;
    }
    return;
  }
  // Candidate stream.
  switch (e.kind) {
    case EventKind::kStartStream:
    case EventKind::kEndStream:
    case EventKind::kStartTuple:
    case EventKind::kEndTuple:
      out->push_back(e);
      return;
    case EventKind::kStartElement:
      if (s->depth == 0) {
        s->nid = stage()->NewStreamId();
        s->outcome = 0;
        out->push_back(Event::StartMutable(e.id, s->nid));
        out->push_back(e);
      } else {
        out->push_back(e);
      }
      ++s->depth;
      return;
    case EventKind::kEndElement:
      --s->depth;
      if (s->depth >= 1 &&
          (mode_ == BackwardMode::kAncestor || s->depth == 1) &&
          e.oid != 0 && e.oid == right_end_) {
        ++s->outcome;
      }
      out->push_back(e);
      if (s->depth == 0) {
        out->push_back(Event::EndMutable(e.id, s->nid));
        if (s->outcome == 0) out->push_back(Event::Hide(s->nid));
        // Every potential match has already closed (nesting), so the
        // decision is final: evict all state for the candidate.
        out->push_back(Event::Freeze(s->nid));
      }
      return;
    default:
      out->push_back(e);
      return;
  }
}

void BackwardAxisOp::Adjust(OperatorState* /*state*/, const OperatorState& s1,
                            const OperatorState& s2, AdjustTarget target,
                            StreamId /*region*/, EventVec* /*out*/) {
  // A data item retracted before its cloned copies arrive (the fixed
  // predicate path) must not match: clear the target.  The clearing is an
  // instance-level, idempotent side effect, so it runs for whichever
  // snapshot the wrapper adjusts first.
  (void)target;
  const auto& a = static_cast<const BackwardState&>(s1);
  const auto& b = static_cast<const BackwardState&>(s2);
  if (a.last_item_oid != b.last_item_oid && right_end_ == a.last_item_oid) {
    right_end_ = 0;
  }
}

}  // namespace xflux
