#include "ops/clone.h"

namespace xflux {

StreamId CloneFilter::MapId(StreamId id) {
  if (id == input_) return clone_base_;
  auto it = map_.find(id);
  return it != map_.end() ? it->second : clone_base_;
}

void CloneFilter::Dispatch(Event event) {
  if (context()->streams()->RootOf(event.id) != input_) {
    Emit(std::move(event));
    return;
  }
  Event copy = event;
  if (event.IsUpdateStart()) {
    // Open a parallel region on the clone side.
    StreamId mapped_uid = context()->NewStreamId();
    copy.id = MapId(event.id);
    copy.uid = mapped_uid;
    map_[event.uid] = mapped_uid;
    context()->AddPartner(mapped_uid, event.uid);
    if (context()->fix()->IsEffectivelyImmutable(event.uid)) {
      // The parallel of immutable operator structure (a descendant step's
      // copies) is itself immutable content.
      context()->SetImmutable(mapped_uid);
    }
  } else if (event.IsUpdateEnd()) {
    copy.id = MapId(event.id);
    copy.uid = MapId(event.uid);
  } else {
    copy.id = MapId(event.id);
    if (event.kind == EventKind::kFreeze) {
      // The clone-side region also closes; drop the mapping afterwards.
      StreamId original = event.id;
      Emit(std::move(event));
      Emit(std::move(copy));
      map_.erase(original);  // safe: freeze means no further references
      return;
    }
  }
  Emit(std::move(event));
  Emit(std::move(copy));
}

}  // namespace xflux
