// Text-valued operators: string comparison, substring test, text
// extraction.  These feed predicate condition streams ("e2 delivers a
// non-empty cData event" means true) and sorting key streams.

#ifndef XFLUX_OPS_TEXTOPS_H_
#define XFLUX_OPS_TEXTOPS_H_

#include <string>

#include "core/state_transformer.h"

namespace xflux {

/// How a TextCompare op matches the string value of each item.
enum class TextMatch {
  kEquals,    // string value == literal
  kContains,  // literal is a substring of the string value
};

/// For every top-level item of the input (an element or a bare text node),
/// emits one cData verdict at depth 0: non-empty ("1") if the item's string
/// value matches, empty ("") otherwise.  This is exactly the shape the
/// general predicate's condition transformer expects.
///
/// Mutability is propagated: if any mutable text contributed to the value,
/// the verdict is wrapped in its own (non-fixed) mutable region, and when a
/// retroactive update changes the value, the operator's Adjust re-emits the
/// verdict as a replacement — so the predicate downstream sees its
/// condition flip.  When all contributing text was fixed, a plain (fixed)
/// cData verdict is emitted and the decision downstream is irrevocable.
class TextCompare : public StateTransformer {
 public:
  TextCompare(PipelineContext* context, StreamId input, TextMatch match,
              std::string literal)
      : context_(context),
        input_(input),
        match_(match),
        literal_(std::move(literal)) {}

  std::string Name() const override {
    return match_ == TextMatch::kEquals ? "eq(\"" + literal_ + "\")"
                                        : "contains(\"" + literal_ + "\")";
  }
  bool Consumes(StreamId base_id) const override { return base_id == input_; }
  std::unique_ptr<OperatorState> InitialState() const override;
  void Process(const Event& e, StreamId root, OperatorState* state,
               EventVec* out) override;
  void Adjust(OperatorState* state, const OperatorState& s1,
              const OperatorState& s2, AdjustTarget target, StreamId region,
              EventVec* out) override;
  bool IsInert() const override { return false; }

 private:
  bool Matches(const std::string& value) const;
  void EmitVerdict(const Event& e, OperatorState* state, EventVec* out);

  PipelineContext* context_;
  StreamId input_;
  TextMatch match_;
  std::string literal_;
};

/// The XPath text() step: emits the immediate text children of every
/// top-level element (and passes bare top-level text through).
class TextExtract : public StateTransformer {
 public:
  explicit TextExtract(StreamId input) : input_(input) {}

  std::string Name() const override { return "text()"; }
  bool Consumes(StreamId base_id) const override { return base_id == input_; }
  std::unique_ptr<OperatorState> InitialState() const override;
  void Process(const Event& e, StreamId root, OperatorState* state,
               EventVec* out) override;

 private:
  StreamId input_;
};

/// Collapses every top-level item to one cData event carrying its full
/// string value (all text at any depth, concatenated).  Used to extract
/// sorting keys.
class StringValue : public StateTransformer {
 public:
  explicit StringValue(StreamId input) : input_(input) {}

  std::string Name() const override { return "string()"; }
  bool Consumes(StreamId base_id) const override { return base_id == input_; }
  std::unique_ptr<OperatorState> InitialState() const override;
  void Process(const Event& e, StreamId root, OperatorState* state,
               EventVec* out) override;

 private:
  StreamId input_;
};

}  // namespace xflux

#endif  // XFLUX_OPS_TEXTOPS_H_
