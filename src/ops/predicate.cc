#include "ops/predicate.h"

namespace xflux {

namespace {

// The paper's predicate state, with one refinement: `outcome` is kept as a
// *cumulative* firing count plus the count observed at the current item's
// start, so that the generic state adjustment can tell whether an update
// lands inside the current item (flips its truth) or before it entirely
// (shifts both counters, truth unchanged).  `seq` is a monotone per-event
// counter used to order update positions against item starts.
// The eager variant's state: one buffered item plus the condition counts.
// The buffer is bounded by the item's own size — the unbounded-caching
// objection the optimistic protocol answers does not apply here, because
// immunity guarantees the outcome is final at item end.
struct EagerPredicateState : StateBase<EagerPredicateState> {
  int depth = 0;   // data-stream element depth
  int cdepth = 0;  // condition-stream element depth
  bool in_item = false;
  int64_t outcome_total = 0;  // cumulative count of true condition firings
  int64_t item_base = 0;      // outcome_total at the current item's start
  EventVec buffer;
};

struct PredicateState : StateBase<PredicateState> {
  int depth = 0;        // data-stream element depth inside the current item
  int cdepth = 0;       // condition-stream element depth
  bool in_item = false;
  StreamId nid = 0;     // the current/last item's output region
  int64_t outcome_total = 0;  // cumulative count of true condition firings
  int64_t item_base = 0;      // outcome_total at the current item's start
  uint64_t seq = 0;           // monotone event counter
  uint64_t item_start_seq = 0;
  bool fixed_true = false;
  bool fixed_false = true;
  bool at_item_end = false;  // set on the snapshot taken right after an item

  bool Truth() const { return fixed_true || outcome_total - item_base > 0; }
};

}  // namespace

std::unique_ptr<OperatorState> PredicateOp::InitialState() const {
  return std::make_unique<PredicateState>();
}

void PredicateOp::OnItemStart(const Event& e, OperatorState* state,
                              EventVec* out) {
  auto* s = static_cast<PredicateState*>(state);
  s->nid = stage()->NewStreamId();
  s->item_base = s->outcome_total;
  s->item_start_seq = s->seq;
  s->fixed_true = false;
  s->fixed_false = true;
  s->in_item = true;
  s->at_item_end = false;
  if (scope_ == PredicateScope::kTuple) {
    // Tuple scope: the markers stay outside the region (they are stripped
    // by the display), so the whole bracket structure travels inside the
    // tuple span and can be relocated by a later sort.
    out->push_back(e);
    out->push_back(Event::StartMutable(e.id, s->nid));
  } else {
    out->push_back(Event::StartMutable(e.id, s->nid));
    out->push_back(e);
  }
}

void PredicateOp::OnItemEnd(const Event& e, OperatorState* state,
                            EventVec* out) {
  auto* s = static_cast<PredicateState*>(state);
  s->in_item = false;
  s->at_item_end = true;
  if (scope_ == PredicateScope::kTuple) {
    out->push_back(Event::EndMutable(e.id, s->nid));
  } else {
    out->push_back(e);
    out->push_back(Event::EndMutable(e.id, s->nid));
  }
  if (s->fixed_true) {
    // Certain to be true: keep, and close the region for updates.
    out->push_back(Event::Freeze(s->nid));
  } else if (s->outcome_total - s->item_base > 0) {
    // True, but a future update may revoke it: keep the region open.
  } else if (s->fixed_false) {
    // Certain to be false: remove irrevocably (no buffering, Section V).
    out->push_back(Event::Hide(s->nid));
    out->push_back(Event::Freeze(s->nid));
  } else {
    // False for now; a future update may flip it.
    out->push_back(Event::Hide(s->nid));
  }
  if (scope_ == PredicateScope::kTuple) out->push_back(e);
}

void PredicateOp::Process(const Event& e, StreamId root, OperatorState* state,
                          EventVec* out) {
  auto* s = static_cast<PredicateState*>(state);
  ++s->seq;
  if (root == condition_input_) {
    // The paper's F2: count non-empty top-level condition deliveries.
    switch (e.kind) {
      case EventKind::kStartElement:
        ++s->cdepth;
        break;
      case EventKind::kEndElement:
        --s->cdepth;
        break;
      case EventKind::kCharacters:
        if (s->cdepth == 0) {
          bool fixed = stage()->fix()->IsEffectivelyImmutable(e.id);
          s->fixed_false = s->fixed_false && e.text.empty() && fixed;
          if (!e.text.empty()) {
            if (fixed) {
              s->fixed_true = true;
            } else {
              ++s->outcome_total;
            }
          }
        }
        break;
      default:
        break;
    }
    return;  // condition events are consumed
  }
  // The paper's F1: the data stream.
  switch (e.kind) {
    case EventKind::kStartStream:
    case EventKind::kEndStream:
      out->push_back(e);
      return;
    case EventKind::kStartTuple:
      if (scope_ == PredicateScope::kTuple) {
        OnItemStart(e, state, out);
      } else {
        out->push_back(e);
      }
      return;
    case EventKind::kEndTuple:
      if (scope_ == PredicateScope::kTuple) {
        OnItemEnd(e, state, out);
      } else {
        out->push_back(e);
      }
      return;
    case EventKind::kStartElement:
      if (scope_ == PredicateScope::kElement && s->depth == 0) {
        ++s->depth;
        OnItemStart(e, state, out);
        return;
      }
      ++s->depth;
      if (s->in_item) out->push_back(e);
      return;
    case EventKind::kEndElement:
      --s->depth;
      if (scope_ == PredicateScope::kElement && s->depth == 0) {
        OnItemEnd(e, state, out);
        return;
      }
      if (s->in_item) out->push_back(e);
      return;
    case EventKind::kCharacters:
      if (s->in_item) out->push_back(e);
      return;
    default:
      return;
  }
}

std::unique_ptr<OperatorState> EagerPredicateOp::InitialState() const {
  return std::make_unique<EagerPredicateState>();
}

void EagerPredicateOp::Process(const Event& e, StreamId root,
                               OperatorState* state, EventVec* out) {
  auto* s = static_cast<EagerPredicateState*>(state);
  if (root == condition_input_) {
    // Same counting as the optimistic predicate's F2, minus the fixedness
    // bookkeeping: immunity already proved every verdict final.
    switch (e.kind) {
      case EventKind::kStartElement:
        ++s->cdepth;
        break;
      case EventKind::kEndElement:
        --s->cdepth;
        break;
      case EventKind::kCharacters:
        if (s->cdepth == 0 && !e.text.empty()) ++s->outcome_total;
        break;
      default:
        break;
    }
    return;
  }
  auto begin_item = [&](const Event& ev) {
    s->in_item = true;
    s->item_base = s->outcome_total;
    s->buffer.clear();
    s->buffer.push_back(ev);
  };
  auto end_item = [&](const Event& ev) {
    s->in_item = false;
    s->buffer.push_back(ev);
    // The condition path runs upstream of this stage and its content lies
    // inside the item, so every firing for this item has arrived by now.
    if (s->outcome_total - s->item_base > 0) {
      for (Event& buffered : s->buffer) out->push_back(std::move(buffered));
    }
    s->buffer.clear();
  };
  switch (e.kind) {
    case EventKind::kStartStream:
    case EventKind::kEndStream:
      out->push_back(e);
      return;
    case EventKind::kStartTuple:
      if (scope_ == PredicateScope::kTuple) {
        // Tuple markers pass through (the optimistic variant keeps them
        // outside the region for the same reason); only content is
        // buffered and possibly dropped.
        out->push_back(e);
        begin_item(e);
        s->buffer.clear();
      } else if (s->in_item) {
        s->buffer.push_back(e);
      } else {
        out->push_back(e);
      }
      return;
    case EventKind::kEndTuple:
      if (scope_ == PredicateScope::kTuple) {
        s->in_item = false;
        if (s->outcome_total - s->item_base > 0) {
          for (Event& buffered : s->buffer) {
            out->push_back(std::move(buffered));
          }
        }
        s->buffer.clear();
        out->push_back(e);
      } else if (s->in_item) {
        s->buffer.push_back(e);
      } else {
        out->push_back(e);
      }
      return;
    case EventKind::kStartElement:
      if (scope_ == PredicateScope::kElement && s->depth == 0) {
        ++s->depth;
        begin_item(e);
        return;
      }
      ++s->depth;
      if (s->in_item) s->buffer.push_back(e);
      return;
    case EventKind::kEndElement:
      --s->depth;
      if (scope_ == PredicateScope::kElement && s->depth == 0) {
        end_item(e);
        return;
      }
      if (s->in_item) s->buffer.push_back(e);
      return;
    case EventKind::kCharacters:
      if (s->in_item) s->buffer.push_back(e);
      return;
    default:
      return;
  }
}

void PredicateOp::Adjust(OperatorState* state, const OperatorState& s1,
                         const OperatorState& s2, AdjustTarget target,
                         StreamId region, EventVec* out) {
  auto* s = static_cast<PredicateState*>(state);
  const auto& a = static_cast<const PredicateState&>(s1);
  const auto& b = static_cast<const PredicateState&>(s2);
  int64_t delta = b.outcome_total - a.outcome_total;
  if (delta == 0) return;
  bool was_true = s->Truth();
  s->outcome_total += delta;
  if (s->item_start_seq > a.seq) {
    // The update lies entirely before this item: its truth is unaffected.
    s->item_base += delta;
  }
  bool now_true = s->Truth();
  if (target == AdjustTarget::kEndSnapshot && region == s->nid &&
      s->at_item_end && was_true != now_true) {
    out->push_back(now_true ? Event::Show(s->nid) : Event::Hide(s->nid));
  }
}

}  // namespace xflux
