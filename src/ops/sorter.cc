#include "ops/sorter.h"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstdlib>
#include <cstring>

namespace xflux {

std::string EncodeSortKey(std::string_view raw) {
  // Empty keys first ("empty least"), then numbers numerically (prefix '0'
  // + order-preserving IEEE bits), then everything else lexicographically
  // (prefix '1').
  if (raw.empty()) return "\x01";
  // strtod needs NUL termination; keys longer than the scratch buffer are
  // never numeric in practice and sort as strings.
  char scratch[64];
  bool numeric = false;
  double v = 0;
  if (raw.size() < sizeof(scratch)) {
    std::memcpy(scratch, raw.data(), raw.size());
    scratch[raw.size()] = '\0';
    char* end = nullptr;
    v = std::strtod(scratch, &end);
    numeric = end != scratch && *end == '\0';
  }
  if (!numeric) return "1" + std::string(raw);
  uint64_t bits = std::bit_cast<uint64_t>(v);
  bits = (bits & 0x8000000000000000ULL) ? ~bits : (bits | 0x8000000000000000ULL);
  std::string out = "0";
  for (int shift = 56; shift >= 0; shift -= 8) {
    out.push_back(static_cast<char>((bits >> shift) & 0xFF));
  }
  return out;
}

StreamId SortFilter::MapId(StreamId id, bool inside_tuple) const {
  auto it = rename_.find(id);
  if (it != rename_.end()) return it->second;
  // Unmapped ids inside a tuple are the tuple's own substreams: they live
  // in the current sort region.  Outside a tuple they are left alone.
  return inside_tuple ? region_ : id;
}

Event SortFilter::Rename(Event e, bool inside_tuple) {
  if (e.IsUpdateStart()) {
    StreamId fresh = context()->NewStreamId();
    e.id = MapId(e.id, inside_tuple);
    auto [it, inserted] = rename_.insert_or_assign(e.uid, fresh);
    (void)it;
    if (inserted) {
      rename_hwm_ = std::max(rename_hwm_, rename_.size());
      if (StageStats* s = stats()) s->OnAuxEntries(+1);
    }
    e.uid = fresh;
    return e;
  }
  if (e.IsUpdateEnd()) {
    e.id = MapId(e.id, inside_tuple);
    e.uid = MapId(e.uid, inside_tuple);
    return e;
  }
  if (e.kind == EventKind::kFreeze) {
    // A frozen region can never be re-addressed again, so its rename entry
    // is dead: evict it to keep the map bounded by the live-region count.
    auto it = rename_.find(e.id);
    if (it != rename_.end()) {
      e.id = it->second;
      rename_.erase(it);
      if (StageStats* s = stats()) s->OnAuxEntries(-1);
      return e;
    }
  }
  e.id = MapId(e.id, inside_tuple);  // simple events and hide/show
  return e;
}

void SortFilter::Release(std::string_view raw_key) {
  std::string key = EncodeSortKey(raw_key);
  // Insert after the last already-placed tuple whose key is <= ours; the
  // anchor region's "" key is below every encoded key.
  auto it = keys_.upper_bound(key);
  --it;
  mid_ = it->second;
  region_ = context()->NewStreamId();
  keys_.emplace(key, region_);
  found_key_ = true;
  Emit(Event::StartInsertAfter(mid_, region_));
  int64_t held = queue_ledger_.Clear();
  context()->metrics()->OnUnbuffered(static_cast<int64_t>(queue_.size()),
                                     held);
  if (StageStats* s = stats()) {
    s->OnUnbuffered(static_cast<int64_t>(queue_.size()), held);
  }
  for (Event& q : queue_) Emit(Rename(std::move(q), /*inside_tuple=*/true));
  queue_.clear();
}

void SortFilter::Dispatch(Event e) {
  if (context()->streams()->RootOf(e.id) == key_input_) {
    switch (e.kind) {
      case EventKind::kStartElement:
        ++kdepth_;
        break;
      case EventKind::kEndElement:
        --kdepth_;
        break;
      case EventKind::kCharacters:
        if (kdepth_ == 0 && in_tuple_ && !found_key_) Release(e.chars());
        break;
      default:
        break;
    }
    return;  // the key stream is consumed
  }
  switch (e.kind) {
    case EventKind::kStartStream:
      Emit(e);
      if (!started_) {
        started_ = true;
        anchor_ = context()->NewStreamId();
        // The anchor sorts before everything in the chosen direction
        // (encoded keys are non-empty and start below 0x7F).
        keys_.emplace(descending_ ? "\x7F" : "", anchor_);
        Emit(Event::StartMutable(e.id, anchor_));
        Emit(Event::EndMutable(e.id, anchor_));
      }
      return;
    case EventKind::kEndStream:
      Emit(e);
      return;
    case EventKind::kStartTuple:
      in_tuple_ = true;
      found_key_ = false;
      return;
    case EventKind::kEndTuple:
      if (!found_key_) {
        // No key was delivered for this tuple: it sorts with the empty key.
        Release("");
      }
      Emit(Event::EndInsertAfter(mid_, region_));
      in_tuple_ = false;
      return;
    default:
      if (!in_tuple_) {
        // Between tuples only control events addressed to renamed regions
        // flow (a where-clause's trailing hide, late source updates); remap
        // them, leave unknown ids alone.
        Emit(Rename(std::move(e), /*inside_tuple=*/false));
        return;
      }
      if (found_key_) {
        Emit(Rename(std::move(e), /*inside_tuple=*/true));
      } else {
        int64_t delta = queue_ledger_.Add(e.text, sizeof(Event));
        context()->metrics()->OnBuffered(1, delta);
        if (StageStats* s = stats()) {
          s->OnBuffered(1, delta);
        }
        queue_.push_back(std::move(e));
      }
      return;
  }
}

}  // namespace xflux
