#include "ops/sorter.h"

#include <bit>
#include <cstdint>
#include <cstdlib>

namespace xflux {

std::string EncodeSortKey(const std::string& raw) {
  // Empty keys first ("empty least"), then numbers numerically (prefix '0'
  // + order-preserving IEEE bits), then everything else lexicographically
  // (prefix '1').
  if (raw.empty()) return "\x01";
  const char* begin = raw.c_str();
  char* end = nullptr;
  double v = std::strtod(begin, &end);
  bool numeric = end != begin && *end == '\0';
  if (!numeric) return "1" + raw;
  uint64_t bits = std::bit_cast<uint64_t>(v);
  bits = (bits & 0x8000000000000000ULL) ? ~bits : (bits | 0x8000000000000000ULL);
  std::string out = "0";
  for (int shift = 56; shift >= 0; shift -= 8) {
    out.push_back(static_cast<char>((bits >> shift) & 0xFF));
  }
  return out;
}

StreamId SortFilter::MapId(StreamId id, bool inside_tuple) const {
  auto it = rename_.find(id);
  if (it != rename_.end()) return it->second;
  // Unmapped ids inside a tuple are the tuple's own substreams: they live
  // in the current sort region.  Outside a tuple they are left alone.
  return inside_tuple ? region_ : id;
}

Event SortFilter::Rename(Event e, bool inside_tuple) {
  if (e.IsUpdateStart()) {
    StreamId fresh = context()->NewStreamId();
    e.id = MapId(e.id, inside_tuple);
    rename_[e.uid] = fresh;
    e.uid = fresh;
    return e;
  }
  if (e.IsUpdateEnd()) {
    e.id = MapId(e.id, inside_tuple);
    e.uid = MapId(e.uid, inside_tuple);
    return e;
  }
  e.id = MapId(e.id, inside_tuple);  // simple events and freeze/hide/show
  return e;
}

void SortFilter::Release(const std::string& raw_key) {
  std::string key = EncodeSortKey(raw_key);
  // Insert after the last already-placed tuple whose key is <= ours; the
  // anchor region's "" key is below every encoded key.
  auto it = keys_.upper_bound(key);
  --it;
  mid_ = it->second;
  region_ = context()->NewStreamId();
  keys_.emplace(key, region_);
  found_key_ = true;
  Emit(Event::StartInsertAfter(mid_, region_));
  context()->metrics()->OnUnbuffered(
      static_cast<int64_t>(queue_.size()),
      static_cast<int64_t>(queue_.size() * sizeof(Event)));
  if (StageStats* s = stats()) {
    s->OnUnbuffered(static_cast<int64_t>(queue_.size()),
                    static_cast<int64_t>(queue_.size() * sizeof(Event)));
  }
  for (Event& q : queue_) Emit(Rename(std::move(q), /*inside_tuple=*/true));
  queue_.clear();
}

void SortFilter::Dispatch(Event e) {
  if (context()->streams()->RootOf(e.id) == key_input_) {
    switch (e.kind) {
      case EventKind::kStartElement:
        ++kdepth_;
        break;
      case EventKind::kEndElement:
        --kdepth_;
        break;
      case EventKind::kCharacters:
        if (kdepth_ == 0 && in_tuple_ && !found_key_) Release(e.text);
        break;
      default:
        break;
    }
    return;  // the key stream is consumed
  }
  switch (e.kind) {
    case EventKind::kStartStream:
      Emit(e);
      if (!started_) {
        started_ = true;
        anchor_ = context()->NewStreamId();
        // The anchor sorts before everything in the chosen direction
        // (encoded keys are non-empty and start below 0x7F).
        keys_.emplace(descending_ ? "\x7F" : "", anchor_);
        Emit(Event::StartMutable(e.id, anchor_));
        Emit(Event::EndMutable(e.id, anchor_));
      }
      return;
    case EventKind::kEndStream:
      Emit(e);
      return;
    case EventKind::kStartTuple:
      in_tuple_ = true;
      found_key_ = false;
      return;
    case EventKind::kEndTuple:
      if (!found_key_) {
        // No key was delivered for this tuple: it sorts with the empty key.
        Release("");
      }
      Emit(Event::EndInsertAfter(mid_, region_));
      in_tuple_ = false;
      return;
    default:
      if (!in_tuple_) {
        // Between tuples only control events addressed to renamed regions
        // flow (a where-clause's trailing hide, late source updates); remap
        // them, leave unknown ids alone.
        Emit(Rename(std::move(e), /*inside_tuple=*/false));
        return;
      }
      if (found_key_) {
        Emit(Rename(std::move(e), /*inside_tuple=*/true));
      } else {
        context()->metrics()->OnBuffered(1,
                                         static_cast<int64_t>(sizeof(Event)));
        if (StageStats* s = stats()) {
          s->OnBuffered(1, static_cast<int64_t>(sizeof(Event)));
        }
        queue_.push_back(std::move(e));
      }
      return;
  }
}

}  // namespace xflux
