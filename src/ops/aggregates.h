// Unblocked aggregation operators (paper Section III's counting example).
//
// A blocking aggregate would wait for end-of-stream to reveal its value.
// These operators instead emit a mutable region holding the running value
// at stream start, and a replacement update each time the value changes —
// the result display continuously shows the current aggregate.  Their
// Adjust functions shift the running value by the update's delta and, from
// the live tail, re-emit the replacement so retroactive changes (a hidden
// element, a replaced subtree) immediately correct the displayed number.

#ifndef XFLUX_OPS_AGGREGATES_H_
#define XFLUX_OPS_AGGREGATES_H_

#include <algorithm>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "core/state_transformer.h"

namespace xflux {

/// What a CountOp counts.
enum class CountMode {
  kTopLevelElements,  // sE events at depth 0: count(e) over a node sequence
  kCharacterData,     // cD events at any depth: the paper's Section III F
};

/// Unblocked count.  Output: a single mutable region whose content is the
/// current count as character data, continuously replaced.
class CountOp : public StateTransformer {
 public:
  CountOp(PipelineContext* context, std::vector<StreamId> inputs,
          CountMode mode)
      : context_(context),
        inputs_(std::move(inputs)),
        mode_(mode),
        region_id_(context->NewStreamId()),
        replace_id_(context->NewStreamId()) {}
  CountOp(PipelineContext* context, StreamId input, CountMode mode)
      : CountOp(context, std::vector<StreamId>{input}, mode) {}

  std::string Name() const override { return "count"; }
  bool Consumes(StreamId base_id) const override {
    return std::find(inputs_.begin(), inputs_.end(), base_id) !=
           inputs_.end();
  }
  std::unique_ptr<OperatorState> InitialState() const override;
  void Process(const Event& e, StreamId root, OperatorState* state,
               EventVec* out) override;
  void Adjust(OperatorState* state, const OperatorState& s1,
              const OperatorState& s2, AdjustTarget target, StreamId region,
              EventVec* out) override;
  bool IsInert() const override { return false; }

 private:
  void EmitReplace(int64_t value, EventVec* out) const;

  PipelineContext* context_;
  std::vector<StreamId> inputs_;
  CountMode mode_;
  StreamId region_id_;   // the displayed mutable region (nid)
  StreamId replace_id_;  // reused for every replacement (rid): the paper's
                         // "only the latest update with an id is active"
};

/// Unblocked sum over numeric character data at depth 0 of the input (the
/// key stream typically comes from a path step).  Same output protocol as
/// CountOp.
class SumOp : public StateTransformer {
 public:
  SumOp(PipelineContext* context, std::vector<StreamId> inputs)
      : context_(context),
        inputs_(std::move(inputs)),
        region_id_(context->NewStreamId()),
        replace_id_(context->NewStreamId()) {}
  SumOp(PipelineContext* context, StreamId input)
      : SumOp(context, std::vector<StreamId>{input}) {}

  std::string Name() const override { return "sum"; }
  bool Consumes(StreamId base_id) const override {
    return std::find(inputs_.begin(), inputs_.end(), base_id) !=
           inputs_.end();
  }
  std::unique_ptr<OperatorState> InitialState() const override;
  void Process(const Event& e, StreamId root, OperatorState* state,
               EventVec* out) override;
  void Adjust(OperatorState* state, const OperatorState& s1,
              const OperatorState& s2, AdjustTarget target, StreamId region,
              EventVec* out) override;
  bool IsInert() const override { return false; }

 private:
  void EmitReplace(double value, EventVec* out) const;

  PipelineContext* context_;
  std::vector<StreamId> inputs_;
  StreamId region_id_;
  StreamId replace_id_;
};

/// Unblocked average over numeric character data of the input; emits the
/// running mean with the same replace protocol.
class AvgOp : public StateTransformer {
 public:
  AvgOp(PipelineContext* context, std::vector<StreamId> inputs)
      : context_(context),
        inputs_(std::move(inputs)),
        region_id_(context->NewStreamId()),
        replace_id_(context->NewStreamId()) {}
  AvgOp(PipelineContext* context, StreamId input)
      : AvgOp(context, std::vector<StreamId>{input}) {}

  std::string Name() const override { return "avg"; }
  bool Consumes(StreamId base_id) const override {
    return std::find(inputs_.begin(), inputs_.end(), base_id) !=
           inputs_.end();
  }
  std::unique_ptr<OperatorState> InitialState() const override;
  void Process(const Event& e, StreamId root, OperatorState* state,
               EventVec* out) override;
  void Adjust(OperatorState* state, const OperatorState& s1,
              const OperatorState& s2, AdjustTarget target, StreamId region,
              EventVec* out) override;
  bool IsInert() const override { return false; }

 private:
  void EmitReplace(double sum, int64_t count, EventVec* out) const;

  PipelineContext* context_;
  std::vector<StreamId> inputs_;
  StreamId region_id_;
  StreamId replace_id_;
};

/// Renders a double the way the engine prints aggregate values (integers
/// without a decimal point).
std::string FormatNumber(double value);

}  // namespace xflux

#endif  // XFLUX_OPS_AGGREGATES_H_
