// Unblocked sorting (paper Section VI-D).
//
// Naive sorting buffers the whole sequence.  This filter instead inserts
// every incoming tuple at its correct place retroactively with an
// insert-after update: a tuple with key k is inserted after the
// already-emitted tuple holding the largest key <= k (an empty anchor
// region emitted at stream start catches keys smaller than everything).
// Tuple events are suspended in a queue only until the tuple's key arrives
// (the key may trail the data), then released immediately.  Sorting is
// thereby non-blocking, though its key table still grows with the stream —
// the unbounded-state caveat the paper acknowledges.
//
// The filter is a raw pipeline stage (not a wrapped state transformer): it
// must see and relocate update brackets that ride inside tuples, which it
// does by renaming each tuple's substream ids into its insert-after region
// (a consistent renaming preserves all update structure, so retroactive
// updates keep working against the sorted output).

#ifndef XFLUX_OPS_SORTER_H_
#define XFLUX_OPS_SORTER_H_

#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <unordered_map>

#include "core/pipeline.h"
#include "util/buffer_ledger.h"

namespace xflux {

/// Sorts the tuples of the stream by the string key delivered once per
/// tuple on the key input (typically CloneFilter + steps + StringValue).
/// Output is the re-ordered tuple content (tuple markers stripped); keys
/// compare as numbers when both are numeric, as strings otherwise.
class SortFilter : public Filter {
 public:
  SortFilter(PipelineContext* context, StreamId key_input,
             bool descending = false)
      : Filter(context),
        key_input_(key_input),
        descending_(descending),
        keys_([descending](const std::string& a, const std::string& b) {
          return descending ? b < a : a < b;
        }) {}

  /// Update-region ids currently renamed into sorted regions.  Entries are
  /// evicted when their region freezes (it can never be re-addressed), so
  /// the map tracks only still-live regions instead of growing with the
  /// stream.
  size_t rename_map_size() const { return rename_.size(); }
  size_t rename_map_hwm() const { return rename_hwm_; }

 protected:
  void Dispatch(Event event) override;

  std::string StageName() const override {
    return descending_ ? "sort desc" : "sort";
  }

 private:
  StreamId MapId(StreamId id, bool inside_tuple) const;
  Event Rename(Event e, bool inside_tuple);
  void Release(std::string_view raw_key);

  using KeyOrder = std::function<bool(const std::string&, const std::string&)>;

  StreamId key_input_;
  bool descending_ = false;
  StreamId anchor_ = 0;
  bool started_ = false;
  // Encoded key -> insert region holding a tuple with that key, ordered by
  // the sort direction; the anchor's sentinel key precedes every encoded
  // key in that order.
  std::multimap<std::string, StreamId, KeyOrder> keys_;
  EventVec queue_;  // suspended events of the current tuple
  BufferLedger queue_ledger_;  // bytes held by queue_, shared payloads once
  bool in_tuple_ = false;
  bool found_key_ = false;
  StreamId region_ = 0;  // current tuple's insert-after region
  StreamId mid_ = 0;     // its target
  int kdepth_ = 0;       // key-stream element depth
  // Update-region ids renamed into sorted regions.  Bounded: an entry dies
  // with its region's freeze (only the keys_ table is truly unbounded, the
  // caveat the paper acknowledges).
  std::unordered_map<StreamId, StreamId> rename_;
  size_t rename_hwm_ = 0;  // high-water mark of rename_.size()
};

/// Encodes a sort key so that lexicographic byte order matches numeric
/// order for numbers and string order otherwise (empty keys first, then
/// numbers, then strings).  Exposed for testing.
std::string EncodeSortKey(std::string_view raw);

}  // namespace xflux

#endif  // XFLUX_OPS_SORTER_H_
