// Backward axes: ancestor::* / ancestor::tag and parent (paper
// Section VI-E).
//
// Backward steps can reach anything already streamed, so the source is
// cloned before the pipeline; the clone passes through a descendant step
// (so every candidate ancestor's subtree is available as a copy), and this
// operator joins the candidate stream against the data stream on element
// identity (OID): a candidate is an ancestor of a data item exactly when
// the item's closing event appears (same OID) inside the candidate's copy.
// Each candidate is wrapped in a mutable region, kept if it matched at
// least one data item, hidden otherwise — the same optimistic emit/retract
// discipline as the general predicate.
//
// Decisions are frozen at candidate close: every potential match closes
// before the candidate does (nesting), so on streams without late updates
// the outcome is final and its state can be evicted.  A data item retracted
// *before* its copies arrive (the fixed predicate path: hide+freeze is
// emitted at the item's end tag, ahead of the cloned copies) is handled by
// clearing the match target during state adjustment; later retractions are
// out of scope, as in the paper's simplified presentation.

#ifndef XFLUX_OPS_BACKWARD_H_
#define XFLUX_OPS_BACKWARD_H_

#include <string>

#include "core/pipeline.h"
#include "core/state_transformer.h"

namespace xflux {

/// Which backward axis to evaluate.
enum class BackwardMode {
  kAncestor,  // ancestor::* / ancestor::tag (candidates chosen upstream)
  kParent,    // parent (..): only direct children count as matches
};

/// See file comment.  `candidate_input` must carry the cloned source after
/// the appropriate descendant step (//* for ancestor::*/parent, //tag for
/// ancestor::tag).
class BackwardAxisOp : public StateTransformer {
 public:
  BackwardAxisOp(PipelineContext* context, StreamId data_input,
                 StreamId candidate_input, BackwardMode mode)
      : context_(context),
        data_input_(data_input),
        candidate_input_(candidate_input),
        mode_(mode) {}

  std::string Name() const override {
    return mode_ == BackwardMode::kAncestor ? "ancestor" : "parent";
  }
  bool Consumes(StreamId base_id) const override {
    return base_id == data_input_ || base_id == candidate_input_;
  }
  std::unique_ptr<OperatorState> InitialState() const override;
  void Process(const Event& e, StreamId root, OperatorState* state,
               EventVec* out) override;
  void Adjust(OperatorState* state, const OperatorState& s1,
              const OperatorState& s2, AdjustTarget target, StreamId region,
              EventVec* out) override;
  bool IsInert() const override { return false; }

 private:
  PipelineContext* context_;
  StreamId data_input_;
  StreamId candidate_input_;
  BackwardMode mode_;
  // The OID of the last top-level data item that closed (the paper's
  // right_end).  Instance-level: matching is an alignment property of the
  // live stream, not of any one region.
  Oid right_end_ = 0;
};

}  // namespace xflux

#endif  // XFLUX_OPS_BACKWARD_H_
