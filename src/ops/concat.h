// Sequence concatenation (paper Section VI-A), generalized to n branches.
//
// Concatenating tuple streams is blocking and unbounded when done naively:
// all of branch i must precede branch i+1 inside each tuple, but events
// arrive interleaved.  Following the paper, the last branch's tuple is
// wrapped in a mutable region and every earlier branch is declared an
// insert-before update against its successor, so all branches flow
// immediately and the display splices them into the correct order
// retroactively.  The paper's trick of reusing the input stream numbers as
// the update region ids is kept: each branch's events fall into its own
// region by id, and the source's own update regions (nested inside any
// branch) keep working.

#ifndef XFLUX_OPS_CONCAT_H_
#define XFLUX_OPS_CONCAT_H_

#include <algorithm>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "core/state_transformer.h"

namespace xflux {

/// Per-tuple concatenation of two or more input streams, in the order
/// given.  The output's tuple markers carry fresh ids aliased to the first
/// branch; a consumer of the concatenation must consume all branch ids.
class ConcatOp : public StateTransformer {
 public:
  ConcatOp(PipelineContext* context, std::vector<StreamId> branches)
      : context_(context), branches_(std::move(branches)) {
    for (StreamId b : branches_) {
      // The branch ids double as update-region ids; they must never be
      // re-rooted by that reuse.
      context_->streams()->RegisterBase(b);
    }
  }

  /// Binary convenience: the paper's left/right form.
  ConcatOp(PipelineContext* context, StreamId left, StreamId right)
      : ConcatOp(context, std::vector<StreamId>{left, right}) {}

  std::string Name() const override { return "concat"; }
  bool Consumes(StreamId base_id) const override {
    return std::find(branches_.begin(), branches_.end(), base_id) !=
           branches_.end();
  }
  std::unique_ptr<OperatorState> InitialState() const override;
  void Process(const Event& e, StreamId root, OperatorState* state,
               EventVec* out) override;

 private:
  PipelineContext* context_;
  std::vector<StreamId> branches_;
};

}  // namespace xflux

#endif  // XFLUX_OPS_CONCAT_H_
