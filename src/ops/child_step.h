// The XPath child step /tag (paper Section II's worked example), plus the
// wildcard /* and attribute steps /@attr (attributes are '@'-tagged child
// elements in this engine).

#ifndef XFLUX_OPS_CHILD_STEP_H_
#define XFLUX_OPS_CHILD_STEP_H_

#include <string>

#include "core/state_transformer.h"
#include "util/symbol_table.h"

namespace xflux {

/// Selects the children of every top-level element of the input stream
/// whose tag matches (or all children for "*").  Inert: for well-formed
/// content the depth/pass state returns to its starting value.
class ChildStep : public StateTransformer {
 public:
  /// `tag` is an element name, "@name" for an attribute, or "*" for any
  /// non-attribute child.
  ChildStep(StreamId input, std::string tag)
      : input_(input),
        tag_(std::move(tag)),
        wildcard_(tag_ == "*"),
        tag_sym_(wildcard_ ? Symbol() : InternTag(tag_)) {}

  std::string Name() const override { return "child(" + tag_ + ")"; }
  bool Consumes(StreamId base_id) const override { return base_id == input_; }
  std::unique_ptr<OperatorState> InitialState() const override;
  void Process(const Event& e, StreamId root, OperatorState* state,
               EventVec* out) override;

 private:
  bool Matches(Symbol tag) const;

  StreamId input_;
  std::string tag_;
  bool wildcard_;
  Symbol tag_sym_;
};

}  // namespace xflux

#endif  // XFLUX_OPS_CHILD_STEP_H_
