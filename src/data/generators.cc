#include "data/generators.h"

#include <cstdio>

#include "util/prng.h"

namespace xflux {

namespace {

const std::vector<std::string> kLocations = {
    "United States", "Germany", "France",  "Japan",   "Brazil",
    "Kenya",         "India",   "Albania", "Iceland", "Peru"};

const std::vector<std::string> kWords = {
    "antique", "rare",   "vintage", "classic", "modern",  "ornate",
    "carved",  "gilded", "signed",  "limited", "original", "restored",
    "pristine", "unique", "exotic",  "handmade"};

const std::vector<std::string> kNouns = {
    "clock", "vase",   "painting", "sculpture", "coin",  "stamp",
    "book",  "camera", "watch",    "lamp",      "chair", "mirror"};

const std::vector<std::string> kFirstNames = {
    "John", "Jane", "Ann",  "Bob",   "Carol", "David",
    "Eve",  "Fred", "Gina", "Henry", "Irene", "Jack"};

const std::vector<std::string> kLastNames = {
    "Jones", "Brown", "Davis",  "Miller", "Wilson",   "Moore",
    "Clark", "Lewis", "Walker", "Young",  "Anderson", "Harris"};

const std::vector<std::string> kRegions = {"africa",   "asia",     "australia",
                                           "europe",   "namerica", "samerica"};

std::string Sentence(Prng* prng, int words) {
  std::string out;
  for (int i = 0; i < words; ++i) {
    if (i > 0) out += ' ';
    out += prng->Pick(kWords);
  }
  return out;
}

// The recursive parlist/listitem description: XMark's //*-heavy part.
void AppendParlist(Prng* prng, int depth, std::string* out) {
  *out += "<parlist>";
  int items = static_cast<int>(prng->Uniform(3)) + 1;
  for (int i = 0; i < items; ++i) {
    *out += "<listitem>";
    if (depth > 0 && prng->Chance(0.4)) {
      AppendParlist(prng, depth - 1, out);
    } else {
      *out += "<text>" + Sentence(prng, 4) + "</text>";
    }
    *out += "</listitem>";
  }
  *out += "</parlist>";
}

void AppendItem(Prng* prng, const XmarkOptions& options, int id,
                std::string* out) {
  *out += "<item id=\"item" + std::to_string(id) + "\">";
  const std::string& location = prng->Chance(options.albania_fraction)
                                    ? kLocations[7]  // Albania
                                    : prng->Pick(kLocations);
  *out += "<location>" + location + "</location>";
  *out += "<quantity>" + std::to_string(prng->Uniform(5) + 1) + "</quantity>";
  *out += "<name>" + prng->Pick(kWords) + " " + prng->Pick(kNouns) + "</name>";
  *out += "<payment>" +
          std::string(prng->Chance(0.4) ? "Cash" : "Creditcard") +
          "</payment>";
  *out += "<description>";
  AppendParlist(prng, options.max_description_depth, out);
  *out += "</description>";
  *out += "<shipping>" + Sentence(prng, 3) + "</shipping>";
  *out += "</item>";
}

}  // namespace

std::string GenerateXmark(const XmarkOptions& options) {
  Prng prng(options.seed);
  std::string out = "<site>";

  out += "<regions>";
  int item_id = 0;
  for (const std::string& region : kRegions) {
    out += "<" + region + ">";
    for (int i = 0; i < options.items_per_region; ++i) {
      AppendItem(&prng, options, item_id++, &out);
    }
    out += "</" + region + ">";
  }
  out += "</regions>";

  out += "<categories>";
  for (int i = 0; i < options.categories; ++i) {
    out += "<category id=\"cat" + std::to_string(i) + "\"><name>" +
           prng.Pick(kWords) + "</name><description><text>" +
           Sentence(&prng, 6) + "</text></description></category>";
  }
  out += "</categories>";

  out += "<people>";
  for (int i = 0; i < options.people; ++i) {
    out += "<person id=\"person" + std::to_string(i) + "\"><name>" +
           prng.Pick(kFirstNames) + " " + prng.Pick(kLastNames) +
           "</name><emailaddress>mailto:p" + std::to_string(i) +
           "@example.com</emailaddress></person>";
  }
  out += "</people>";

  out += "<open_auctions>";
  for (int i = 0; i < options.open_auctions; ++i) {
    out += "<open_auction id=\"open" + std::to_string(i) + "\">";
    int bids = static_cast<int>(prng.Uniform(4)) + 1;
    for (int b = 0; b < bids; ++b) {
      out += "<bidder><personref person=\"person" +
             std::to_string(prng.Uniform(
                 static_cast<uint64_t>(options.people) + 1)) +
             "\"/><increase>" + std::to_string(prng.Uniform(50) + 1) +
             "</increase></bidder>";
    }
    out += "<current>" + std::to_string(prng.Uniform(1000) + 10) +
           "</current></open_auction>";
  }
  out += "</open_auctions>";

  out += "<closed_auctions>";
  for (int i = 0; i < options.closed_auctions; ++i) {
    out += "<closed_auction><price>" +
           std::to_string(prng.Uniform(1000) + 10) +
           "</price><date>2008-01-" +
           std::to_string(prng.Uniform(28) + 1) + "</date></closed_auction>";
  }
  out += "</closed_auctions>";

  out += "</site>";
  return out;
}

XmarkOptions XmarkOptionsForBytes(size_t approx_bytes, uint64_t seed) {
  XmarkOptions options;
  options.seed = seed;
  // An item averages ~450 bytes with the default description depth; the
  // fixed sections are small at scale.
  int items_total = static_cast<int>(approx_bytes / 450);
  options.items_per_region =
      items_total / static_cast<int>(kRegions.size()) + 1;
  options.people = options.items_per_region / 2 + 5;
  options.open_auctions = options.items_per_region / 2 + 5;
  options.closed_auctions = options.items_per_region / 4 + 5;
  return options;
}

std::string GenerateDblp(const DblpOptions& options) {
  Prng prng(options.seed);
  std::string out = "<dblp>";
  const std::vector<std::string> venues = {
      "ICDE", "SIGMOD", "VLDB", "PODS", "EDBT", "CIKM"};
  for (int i = 0; i < options.entries; ++i) {
    bool inproc = prng.Chance(0.7);
    out += inproc ? "<inproceedings>" : "<article>";
    std::string author;
    if (prng.Chance(options.john_smith_fraction)) {
      author = "John Smith";
    } else if (prng.Chance(options.smith_fraction)) {
      author = prng.Pick(kFirstNames) + " Smith";
    } else {
      author = prng.Pick(kFirstNames) + " " + prng.Pick(kLastNames);
    }
    out += "<author>" + author + "</author>";
    if (prng.Chance(0.5)) {
      out += "<author>" + prng.Pick(kFirstNames) + " " +
             prng.Pick(kLastNames) + "</author>";
    }
    out += "<title>" + Sentence(&prng, 6) + "</title>";
    out += "<year>" + std::to_string(1985 + prng.Uniform(23)) + "</year>";
    if (inproc) {
      out += "<booktitle>" + prng.Pick(venues) + "</booktitle>";
      out += "<pages>" + std::to_string(prng.Uniform(400)) + "-" +
             std::to_string(prng.Uniform(400) + 400) + "</pages>";
      out += "</inproceedings>";
    } else {
      out += "<journal>" + prng.Pick(venues) + " Journal</journal>";
      out += "<volume>" + std::to_string(prng.Uniform(40) + 1) + "</volume>";
      out += "</article>";
    }
  }
  out += "</dblp>";
  return out;
}

DblpOptions DblpOptionsForBytes(size_t approx_bytes, uint64_t seed) {
  DblpOptions options;
  options.seed = seed;
  options.entries = static_cast<int>(approx_bytes / 180) + 1;  // ~180 B/entry
  return options;
}

EventVec GenerateStockTicker(const StockTickerOptions& options) {
  Prng prng(options.seed);
  EventVec out;
  const std::vector<std::string> names = {
      "IBM",  "AAPL", "MSFT", "GOOG", "AMZN", "ORCL", "HPQ",  "DELL",
      "TXN",  "AMD",  "NVDA", "CSCO", "EMC",  "SAP",  "SUNW", "YHOO",
      "EBAY", "ADBE", "INTC", "MOT"};
  StreamId next_region = options.first_region_id;
  std::vector<StreamId> active_quote_region(
      static_cast<size_t>(options.symbols));
  std::vector<double> price(static_cast<size_t>(options.symbols));

  auto format_price = [](double p) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2f", p);
    return std::string(buf);
  };

  out.push_back(Event::StartStream(0));
  out.push_back(Event::StartElement(0, "ticker", 1));
  Oid oid = 2;
  for (int s = 0; s < options.symbols; ++s) {
    price[static_cast<size_t>(s)] = 20.0 + prng.NextDouble() * 200.0;
    out.push_back(Event::StartElement(0, "stock", oid));
    out.push_back(Event::StartElement(0, "name", oid + 1));
    out.push_back(Event::Characters(
        0, names[static_cast<size_t>(s) % names.size()] +
               (s < static_cast<int>(names.size())
                    ? ""
                    : std::to_string(s / static_cast<int>(names.size())))));
    out.push_back(Event::EndElement(0, "name", oid + 1));
    // The quote is the mutable part (Section V: names immutable, quotes
    // mutable).
    StreamId region = next_region++;
    active_quote_region[static_cast<size_t>(s)] = region;
    out.push_back(Event::StartMutable(0, region));
    out.push_back(Event::StartElement(region, "quote", oid + 2));
    out.push_back(Event::Characters(
        region, format_price(price[static_cast<size_t>(s)])));
    out.push_back(Event::EndElement(region, "quote", oid + 2));
    out.push_back(Event::EndMutable(0, region));
    out.push_back(Event::EndElement(0, "stock", oid));
    oid += 3;
  }
  out.push_back(Event::EndElement(0, "ticker", 1));

  // The continuous tail: quote replacements.
  for (int u = 0; u < options.updates; ++u) {
    auto s = static_cast<size_t>(prng.Uniform(
        static_cast<uint64_t>(options.symbols)));
    price[s] *= 1.0 + (prng.NextDouble() - 0.5) * 0.04;
    StreamId target = active_quote_region[s];
    StreamId fresh = next_region++;
    out.push_back(Event::StartReplace(target, fresh));
    out.push_back(Event::StartElement(fresh, "quote", oid));
    out.push_back(Event::Characters(fresh, format_price(price[s])));
    out.push_back(Event::EndElement(fresh, "quote", oid));
    out.push_back(Event::EndReplace(target, fresh));
    // The ticker always addresses the newest quote region: the replaced
    // one is closed so consumers can evict its state (Section V: "we often
    // know exactly the scope of a generated update").
    out.push_back(Event::Freeze(target));
    active_quote_region[s] = fresh;
    ++oid;
  }
  out.push_back(Event::EndStream(0));
  return out;
}

}  // namespace xflux
