// Synthetic dataset generators (substitutes for the paper's evaluation
// inputs, see DESIGN.md Section 2).
//
//  - GenerateXmark: an XMark-like auction document (the paper's X): six
//    regions with items (location / quantity / payment / name and a
//    recursive parlist description), categories, people, and auctions.
//  - GenerateDblp: a DBLP-like bibliography (the paper's D):
//    inproceedings/article entries with authors, titles and years.
//  - GenerateStockTicker: a continuous update stream (Section V's stock
//    example): an initial listing whose quote regions are mutable, followed
//    by a stream of replacement updates.
//
// All generators are fully deterministic in their seed.

#ifndef XFLUX_DATA_GENERATORS_H_
#define XFLUX_DATA_GENERATORS_H_

#include <cstdint>
#include <string>

#include "core/event.h"

namespace xflux {

/// Scale and selectivity knobs for the XMark-like document.
struct XmarkOptions {
  uint64_t seed = 42;
  int items_per_region = 50;
  int people = 25;
  int open_auctions = 25;
  int closed_auctions = 10;
  int categories = 10;
  /// Maximum nesting of the recursive parlist/listitem description (drives
  /// the //* workload; 0 disables recursion).
  int max_description_depth = 3;
  /// Fraction of items located in Albania (the benchmark predicate).
  double albania_fraction = 0.05;
};

/// Renders an XMark-like document.
std::string GenerateXmark(const XmarkOptions& options);

/// Scales items_per_region so the document is roughly `approx_bytes` long.
XmarkOptions XmarkOptionsForBytes(size_t approx_bytes, uint64_t seed = 42);

/// Scale knobs for the DBLP-like bibliography.
struct DblpOptions {
  uint64_t seed = 7;
  int entries = 500;
  /// Fraction of entries with an author whose name contains "Smith".
  double smith_fraction = 0.02;
  /// Fraction of entries whose author is exactly "John Smith".
  double john_smith_fraction = 0.005;
};

/// Renders a DBLP-like document.
std::string GenerateDblp(const DblpOptions& options);

/// Scales entries so the document is roughly `approx_bytes` long.
DblpOptions DblpOptionsForBytes(size_t approx_bytes, uint64_t seed = 7);

/// Scale knobs for the stock-ticker update stream.
struct StockTickerOptions {
  uint64_t seed = 3;
  int symbols = 20;
  int updates = 200;
  /// First region id to allocate for the mutable quote regions (source ids
  /// must stay below the pipeline's dynamic-id range, which starts at 2^20).
  StreamId first_region_id = 1000;
};

/// Builds the ticker as an event stream with embedded updates: the stream
/// ends after the initial listing plus `updates` quote replacements.
EventVec GenerateStockTicker(const StockTickerOptions& options);

}  // namespace xflux

#endif  // XFLUX_DATA_GENERATORS_H_
