// The consumer side of an event stream.

#ifndef XFLUX_CORE_EVENT_SINK_H_
#define XFLUX_CORE_EVENT_SINK_H_

#include <utility>

#include "core/event.h"

namespace xflux {

/// Receives stream events one at a time.  The XML tokenizer, every pipeline
/// stage, and the result display all speak this interface (the paper's
/// push-based "dispatch" method).
class EventSink {
 public:
  virtual ~EventSink() = default;

  /// Consumes one event.
  virtual void Accept(Event event) = 0;
};

/// An EventSink that appends everything into an EventVec (testing, oracles).
class CollectingSink : public EventSink {
 public:
  void Accept(Event event) override { events_.push_back(std::move(event)); }

  const EventVec& events() const { return events_; }
  EventVec Take() { return std::move(events_); }
  void Clear() { events_.clear(); }

 private:
  EventVec events_;
};

/// An EventSink that counts and discards (throughput benchmarks).
class NullSink : public EventSink {
 public:
  void Accept(Event) override { ++count_; }
  uint64_t count() const { return count_; }

 private:
  uint64_t count_ = 0;
};

/// Feeds a whole sequence into a sink.
inline void FeedAll(const EventVec& events, EventSink* sink) {
  for (const Event& e : events) sink->Accept(e);
}

}  // namespace xflux

#endif  // XFLUX_CORE_EVENT_SINK_H_
