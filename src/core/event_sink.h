// The consumer side of an event stream.

#ifndef XFLUX_CORE_EVENT_SINK_H_
#define XFLUX_CORE_EVENT_SINK_H_

#include <iterator>
#include <utility>

#include "core/event.h"

namespace xflux {

/// Receives stream events one at a time — the paper's push-based
/// "dispatch" method — or, for producers that emit runs of events, a whole
/// EventBatch per virtual call.  The XML tokenizer, every pipeline stage,
/// and the result display all speak this interface.
class EventSink {
 public:
  virtual ~EventSink() = default;

  /// Consumes one event.
  virtual void Accept(Event event) = 0;

  /// Consumes a run of events, in order.  Semantically identical to
  /// Accept-ing each element; the default does exactly that.  Straight-line
  /// sinks override it to amortize the virtual hop over the whole run.
  virtual void AcceptBatch(EventBatch batch) {
    for (Event& e : batch) Accept(std::move(e));
  }
};

/// An EventSink that appends everything into an EventVec (testing, oracles).
class CollectingSink : public EventSink {
 public:
  void Accept(Event event) override { events_.push_back(std::move(event)); }
  void AcceptBatch(EventBatch batch) override {
    events_.insert(events_.end(), std::make_move_iterator(batch.begin()),
                   std::make_move_iterator(batch.end()));
  }

  const EventVec& events() const { return events_; }
  EventVec Take() { return std::move(events_); }
  void Clear() { events_.clear(); }

 private:
  EventVec events_;
};

/// An EventSink that counts and discards (throughput benchmarks).
class NullSink : public EventSink {
 public:
  void Accept(Event) override { ++count_; }
  void AcceptBatch(EventBatch batch) override { count_ += batch.size(); }
  uint64_t count() const { return count_; }

 private:
  uint64_t count_ = 0;
};

/// Feeds a whole sequence into a sink.
inline void FeedAll(const EventVec& events, EventSink* sink) {
  for (const Event& e : events) sink->Accept(e);
}

}  // namespace xflux

#endif  // XFLUX_CORE_EVENT_SINK_H_
