// A pass-through trace tap for debugging pipelines.
//
// Insertable between any two stages (Pipeline::InsertAfter) or at the end
// of the chain: forwards every event unchanged while keeping a bounded
// ring buffer of the most recent ones.  When something downstream goes
// wrong — typically the result display latching a protocol-error Status —
// the ring is dumped in the paper's event notation, showing the exact
// stream window that led up to the failure.

#ifndef XFLUX_CORE_TRACE_SINK_H_
#define XFLUX_CORE_TRACE_SINK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/pipeline.h"

namespace xflux {

/// See file comment.
class TraceSink : public Filter {
 public:
  struct Options {
    size_t capacity = 256;        ///< ring size; at least 1 is kept
    std::string label = "trace";  ///< stage name in stats and dumps
  };

  // (Two constructors rather than one defaulted Options argument: a nested
  // aggregate's member initializers are not available for default args
  // inside the enclosing class.)
  explicit TraceSink(PipelineContext* context)
      : TraceSink(context, Options()) {}
  TraceSink(PipelineContext* context, Options options)
      : Filter(context), options_(std::move(options)) {
    if (options_.capacity == 0) options_.capacity = 1;
    ring_.reserve(options_.capacity);
  }

  /// Total events that passed through the tap.
  uint64_t events_seen() const { return seen_; }

  /// Events that have already been overwritten in the ring.
  uint64_t events_dropped() const {
    return seen_ - std::min<uint64_t>(seen_, ring_.size());
  }

  /// The retained window, oldest first.
  EventVec Snapshot() const;

  /// Multi-line rendering of the window in paper notation, each event
  /// prefixed with its global sequence number.
  std::string Dump() const;

 protected:
  void Dispatch(Event event) override {
    Record(event);
    Emit(std::move(event));
  }

  // Straight-through: record each event, forward the run in one call.
  void DispatchBatch(EventBatch batch) override {
    for (const Event& e : batch) Record(e);
    EmitBatch(std::move(batch));
  }

  std::string StageName() const override { return options_.label; }

 private:
  void Record(const Event& event);

  Options options_;
  EventVec ring_;     // filled up to capacity, then overwritten at head_
  size_t head_ = 0;   // next slot to overwrite once the ring is full
  uint64_t seen_ = 0;
};

}  // namespace xflux

#endif  // XFLUX_CORE_TRACE_SINK_H_
