#include "core/region_document.h"

#include <algorithm>
#include <cassert>

namespace xflux {

RegionDocument::Iter RegionDocument::InsertPos(StreamId id) {
  auto it = cursors_.find(id);
  if (it != cursors_.end() && !it->second.empty()) return it->second.back();
  return items_.end();
}

void RegionDocument::Bind(StreamId id, Interval* interval) {
  auto [it, inserted] = active_.try_emplace(id, interval);
  if (!inserted) {
    it->second = interval;  // id reuse rebinds to the newest interval
  } else if (metrics_ != nullptr) {
    metrics_->OnDisplayRegion(+1);
  }
}

void RegionDocument::Unbind(StreamId id) {
  if (active_.erase(id) > 0 && metrics_ != nullptr) {
    metrics_->OnDisplayRegion(-1);
  }
}

RegionDocument::Interval* RegionDocument::OpenInterval(StreamId uid,
                                                       Iter pos) {
  intervals_.push_back(std::make_unique<Interval>());
  Interval* interval = intervals_.back().get();
  interval->id = uid;
  interval->begin = items_.insert(pos, {Item::Type::kBegin, {}, interval});
  interval->end = items_.insert(pos, {Item::Type::kEnd, {}, interval});
  Bind(uid, interval);
  cursors_[uid].push_back(interval->end);
  return interval;
}

void RegionDocument::DropCursorsAt(Iter pos, StreamId uid) {
  for (auto it = cursors_.begin(); it != cursors_.end();) {
    auto& stack = it->second;
    size_t before = stack.size();
    stack.erase(std::remove(stack.begin(), stack.end(), pos), stack.end());
    if (it->first == uid && stack.size() != before) {
      // The bracket was still open; swallow the rest of its input.
      dropping_.insert(uid);
    }
    it = stack.empty() ? cursors_.erase(it) : std::next(it);
  }
}

void RegionDocument::EraseRange(Iter from, Iter to) {
  for (Iter i = from; i != to;) {
    if (i->type == Item::Type::kBegin) {
      auto it = active_.find(i->interval->id);
      if (it != active_.end() && it->second == i->interval) {
        Unbind(i->interval->id);
      }
    } else if (i->type == Item::Type::kEnd) {
      // A nested interval whose bracket may still be open: every insertion
      // cursor parked on this sentinel is about to dangle.  Drop those
      // cursors (the matching target-stream cursor pushed by sM included)
      // before the erase, or a later insert corrupts the list.
      DropCursorsAt(i, i->interval->id);
    }
    i = items_.erase(i);
  }
}

Status RegionDocument::Feed(const Event& e) {
  switch (e.kind) {
    case EventKind::kStartStream:
    case EventKind::kEndStream:
      return Status::OK();

    case EventKind::kStartTuple:
    case EventKind::kEndTuple:
    case EventKind::kStartElement:
    case EventKind::kEndElement:
    case EventKind::kCharacters:
      if (dropping_.count(e.id) > 0) return Status::OK();
      items_.insert(InsertPos(e.id), {Item::Type::kEvent, e, nullptr});
      return Status::OK();

    case EventKind::kStartMutable: {
      if (dropping_.count(e.id) > 0) {
        dropping_.insert(e.uid);
        return Status::OK();
      }
      Interval* interval = OpenInterval(e.uid, InsertPos(e.id));
      // A mutable region wraps inline data: events of the *target* stream
      // arriving while the bracket is open are part of the region (this is
      // how operators wrap pass-through content, e.g. the predicate's
      // per-element regions and the descendant step's base copies).
      cursors_[e.id].push_back(interval->end);
      return Status::OK();
    }

    case EventKind::kStartReplace: {
      auto it = active_.find(e.id);
      if (it == active_.end() || dropping_.count(e.id) > 0) {
        if (lenient_ || dropping_.count(e.id) > 0) {
          dropping_.insert(e.uid);
          return Status::OK();
        }
        return Status::InvalidArgument("replace targets unknown region " +
                                       std::to_string(e.id));
      }
      Interval* target = it->second;
      EraseRange(std::next(target->begin), target->end);
      OpenInterval(e.uid, target->end);
      return Status::OK();
    }

    case EventKind::kStartInsertBefore: {
      auto it = active_.find(e.id);
      if (it == active_.end() || dropping_.count(e.id) > 0) {
        if (lenient_ || dropping_.count(e.id) > 0) {
          dropping_.insert(e.uid);
          return Status::OK();
        }
        return Status::InvalidArgument("insert-before targets unknown region " +
                                       std::to_string(e.id));
      }
      OpenInterval(e.uid, it->second->begin);
      return Status::OK();
    }

    case EventKind::kStartInsertAfter: {
      auto it = active_.find(e.id);
      if (it == active_.end() || dropping_.count(e.id) > 0) {
        if (lenient_ || dropping_.count(e.id) > 0) {
          dropping_.insert(e.uid);
          return Status::OK();
        }
        return Status::InvalidArgument("insert-after targets unknown region " +
                                       std::to_string(e.id));
      }
      OpenInterval(e.uid, std::next(it->second->end));
      return Status::OK();
    }

    case EventKind::kEndMutable:
    case EventKind::kEndReplace:
    case EventKind::kEndInsertBefore:
    case EventKind::kEndInsertAfter: {
      if (dropping_.erase(e.uid) > 0) return Status::OK();
      auto it = cursors_.find(e.uid);
      if (it == cursors_.end() || it->second.empty()) {
        // In lenient mode the bracket may have been reclaimed out from
        // under us (its enclosing region was replaced or frozen).
        if (lenient_) return Status::OK();
        return Status::InvalidArgument("end bracket for region " +
                                       std::to_string(e.uid) +
                                       " that is not open");
      }
      it->second.pop_back();
      if (it->second.empty()) cursors_.erase(it);
      if (e.kind == EventKind::kEndMutable) {
        // Pop the target-stream cursor pushed by the matching sM.
        auto tit = cursors_.find(e.id);
        if (tit != cursors_.end() && !tit->second.empty()) {
          tit->second.pop_back();
          if (tit->second.empty()) cursors_.erase(tit);
        }
      }
      return Status::OK();
    }

    case EventKind::kHide: {
      auto it = active_.find(e.id);
      if (it == active_.end()) {
        if (lenient_) return Status::OK();
        return Status::InvalidArgument("hide targets unknown region " +
                                       std::to_string(e.id));
      }
      it->second->hidden = true;
      return Status::OK();
    }

    case EventKind::kShow: {
      auto it = active_.find(e.id);
      if (it == active_.end()) {
        if (lenient_) return Status::OK();
        return Status::InvalidArgument("show targets unknown region " +
                                       std::to_string(e.id));
      }
      it->second->hidden = false;
      return Status::OK();
    }

    case EventKind::kFreeze: {
      auto it = active_.find(e.id);
      if (it == active_.end()) {
        // Freezing an already-frozen or unknown region is a no-op: the
        // source and the operators may both close the same region.
        return Status::OK();
      }
      Interval* target = it->second;
      if (target->hidden) {
        // Irrevocably removed: reclaim the content immediately (Section V).
        Iter from = target->begin;
        Iter to = std::next(target->end);
        EraseRange(from, to);
      } else {
        Unbind(e.id);
      }
      return Status::OK();
    }
  }
  return Status::Internal("unhandled event kind");
}

Status RegionDocument::FeedAll(const EventVec& events) {
  for (const Event& e : events) {
    XFLUX_RETURN_IF_ERROR(Feed(e));
  }
  return Status::OK();
}

EventVec RegionDocument::RenderEvents(const RenderOptions& options) const {
  EventVec out;
  int skip_depth = 0;
  for (const Item& item : items_) {
    if (item.type == Item::Type::kBegin) {
      if (skip_depth > 0 || item.interval->hidden) ++skip_depth;
      continue;
    }
    if (item.type == Item::Type::kEnd) {
      if (skip_depth > 0) --skip_depth;
      continue;
    }
    if (skip_depth > 0) continue;
    const Event& e = item.event;
    if (!options.keep_tuples && (e.kind == EventKind::kStartTuple ||
                                 e.kind == EventKind::kEndTuple)) {
      continue;
    }
    Event copy = e;
    copy.id = options.out_id;
    out.push_back(std::move(copy));
  }
  return out;
}

StatusOr<EventVec> Materialize(const EventVec& stream,
                               const RenderOptions& options, bool lenient) {
  RegionDocument doc(nullptr, lenient);
  XFLUX_RETURN_IF_ERROR(doc.FeedAll(stream));
  return doc.RenderEvents(options);
}

}  // namespace xflux
