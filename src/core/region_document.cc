#include "core/region_document.h"

#include <algorithm>

namespace xflux {

RegionDocument::~RegionDocument() {
  // Arena slabs are reclaimed without running destructors; items hold
  // refcounted event payloads, so destroy them explicitly.
  for (Item* i = end_.next; i != &end_;) {
    Item* next = i->next;
    if (i->type == Item::Type::kEnd) interval_arena_.Destroy(i->interval);
    item_arena_.Destroy(i);
    i = next;
  }
}

RegionDocument::Iter RegionDocument::InsertPos(StreamId id) {
  auto it = cursors_.find(id);
  if (it != cursors_.end() && !it->second.empty()) return it->second.back();
  return &end_;
}

RegionDocument::Iter RegionDocument::InsertBefore(Iter pos, Item::Type type,
                                                  const Event& e,
                                                  Interval* interval) {
  Item* node = item_arena_.Create(type, e, interval);
  node->prev = pos->prev;
  node->next = pos;
  pos->prev->next = node;
  pos->prev = node;
  ++epoch_;
  // An insert before an already-rendered position lands inside the stable
  // prefix; before anything else (the tail sentinel included) it is part
  // of the volatile tail and costs nothing.
  if (pos->rendered) MarkStructural();
  return node;
}

RegionDocument::Iter RegionDocument::RemoveItem(Iter i) {
  Item* next = i->next;
  i->prev->next = next;
  next->prev = i->prev;
  ++epoch_;
  if (i->rendered) MarkStructural();
  if (i->type == Item::Type::kEnd) interval_arena_.Destroy(i->interval);
  item_arena_.Destroy(i);
  return next;
}

void RegionDocument::Bind(StreamId id, Interval* interval) {
  auto [it, inserted] = active_.try_emplace(id, interval);
  if (!inserted) {
    it->second = interval;  // id reuse rebinds to the newest interval
  } else if (metrics_ != nullptr) {
    metrics_->OnDisplayRegion(+1);
  }
}

void RegionDocument::Unbind(StreamId id) {
  if (active_.erase(id) > 0 && metrics_ != nullptr) {
    metrics_->OnDisplayRegion(-1);
  }
}

void RegionDocument::PushCursor(StreamId id, Iter pos) {
  cursors_[id].push_back(pos);
  ++pos->interval->pending_inserts;
}

void RegionDocument::PopCursor(StreamId id) {
  auto it = cursors_.find(id);
  if (it == cursors_.end() || it->second.empty()) return;
  --it->second.back()->interval->pending_inserts;
  it->second.pop_back();
  if (it->second.empty()) cursors_.erase(it);
}

RegionDocument::Interval* RegionDocument::OpenInterval(StreamId uid,
                                                       Iter pos) {
  Interval* interval = interval_arena_.Create();
  interval->id = uid;
  interval->begin = InsertBefore(pos, Item::Type::kBegin, Event(), interval);
  interval->end = InsertBefore(pos, Item::Type::kEnd, Event(), interval);
  Bind(uid, interval);
  PushCursor(uid, interval->end);
  return interval;
}

void RegionDocument::DropCursorsAt(Iter pos, StreamId uid) {
  for (auto it = cursors_.begin(); it != cursors_.end();) {
    auto& stack = it->second;
    size_t before = stack.size();
    stack.erase(std::remove(stack.begin(), stack.end(), pos), stack.end());
    size_t removed = before - stack.size();
    // Keep the pending count exact until the sentinel is destroyed.
    pos->interval->pending_inserts -= static_cast<int>(removed);
    if (it->first == uid && removed > 0) {
      // The bracket was still open; swallow the rest of its input.
      dropping_.insert(uid);
    }
    it = stack.empty() ? cursors_.erase(it) : std::next(it);
  }
}

void RegionDocument::EraseRange(Iter from, Iter to) {
  for (Iter i = from; i != to;) {
    if (i->type == Item::Type::kBegin) {
      auto it = active_.find(i->interval->id);
      if (it != active_.end() && it->second == i->interval) {
        Unbind(i->interval->id);
      }
    } else if (i->type == Item::Type::kEnd) {
      // A nested interval whose bracket may still be open: every insertion
      // cursor parked on this sentinel is about to dangle.  Drop those
      // cursors (the matching target-stream cursor pushed by sM included)
      // before the erase, or a later insert corrupts the list.
      DropCursorsAt(i, i->interval->id);
    }
    i = RemoveItem(i);
  }
}

Status RegionDocument::Feed(const Event& e) {
  switch (e.kind) {
    case EventKind::kStartStream:
    case EventKind::kEndStream:
      return Status::OK();

    case EventKind::kStartTuple:
    case EventKind::kEndTuple:
    case EventKind::kStartElement:
    case EventKind::kEndElement:
    case EventKind::kCharacters:
      if (dropping_.count(e.id) > 0) return Status::OK();
      InsertBefore(InsertPos(e.id), Item::Type::kEvent, e, nullptr);
      return Status::OK();

    case EventKind::kStartMutable: {
      if (dropping_.count(e.id) > 0) {
        dropping_.insert(e.uid);
        return Status::OK();
      }
      Interval* interval = OpenInterval(e.uid, InsertPos(e.id));
      // A mutable region wraps inline data: events of the *target* stream
      // arriving while the bracket is open are part of the region (this is
      // how operators wrap pass-through content, e.g. the predicate's
      // per-element regions and the descendant step's base copies).
      PushCursor(e.id, interval->end);
      return Status::OK();
    }

    case EventKind::kStartReplace: {
      auto it = active_.find(e.id);
      if (it == active_.end() || dropping_.count(e.id) > 0) {
        if (lenient_ || dropping_.count(e.id) > 0) {
          dropping_.insert(e.uid);
          return Status::OK();
        }
        return Status::InvalidArgument("replace targets unknown region " +
                                       std::to_string(e.id));
      }
      Interval* target = it->second;
      EraseRange(target->begin->next, target->end);
      OpenInterval(e.uid, target->end);
      return Status::OK();
    }

    case EventKind::kStartInsertBefore: {
      auto it = active_.find(e.id);
      if (it == active_.end() || dropping_.count(e.id) > 0) {
        if (lenient_ || dropping_.count(e.id) > 0) {
          dropping_.insert(e.uid);
          return Status::OK();
        }
        return Status::InvalidArgument("insert-before targets unknown region " +
                                       std::to_string(e.id));
      }
      OpenInterval(e.uid, it->second->begin);
      return Status::OK();
    }

    case EventKind::kStartInsertAfter: {
      auto it = active_.find(e.id);
      if (it == active_.end() || dropping_.count(e.id) > 0) {
        if (lenient_ || dropping_.count(e.id) > 0) {
          dropping_.insert(e.uid);
          return Status::OK();
        }
        return Status::InvalidArgument("insert-after targets unknown region " +
                                       std::to_string(e.id));
      }
      OpenInterval(e.uid, it->second->end->next);
      return Status::OK();
    }

    case EventKind::kEndMutable:
    case EventKind::kEndReplace:
    case EventKind::kEndInsertBefore:
    case EventKind::kEndInsertAfter: {
      if (dropping_.erase(e.uid) > 0) return Status::OK();
      auto it = cursors_.find(e.uid);
      if (it == cursors_.end() || it->second.empty()) {
        // In lenient mode the bracket may have been reclaimed out from
        // under us (its enclosing region was replaced or frozen).
        if (lenient_) return Status::OK();
        return Status::InvalidArgument("end bracket for region " +
                                       std::to_string(e.uid) +
                                       " that is not open");
      }
      PopCursor(e.uid);
      if (e.kind == EventKind::kEndMutable) {
        // Pop the target-stream cursor pushed by the matching sM.
        PopCursor(e.id);
      }
      return Status::OK();
    }

    case EventKind::kHide: {
      auto it = active_.find(e.id);
      if (it == active_.end()) {
        if (lenient_) return Status::OK();
        return Status::InvalidArgument("hide targets unknown region " +
                                       std::to_string(e.id));
      }
      Interval* target = it->second;
      if (!target->hidden) {
        target->hidden = true;
        ++epoch_;
        // Re-veiling content the renderer already consumed invalidates
        // the stable prefix; a still-volatile region costs nothing.
        if (target->begin->rendered) MarkStructural();
      }
      return Status::OK();
    }

    case EventKind::kShow: {
      auto it = active_.find(e.id);
      if (it == active_.end()) {
        if (lenient_) return Status::OK();
        return Status::InvalidArgument("show targets unknown region " +
                                       std::to_string(e.id));
      }
      Interval* target = it->second;
      if (target->hidden) {
        target->hidden = false;
        ++epoch_;
        if (target->begin->rendered) MarkStructural();
      }
      return Status::OK();
    }

    case EventKind::kFreeze: {
      dropping_.erase(e.id);  // a dropped region can never be re-addressed
      auto it = active_.find(e.id);
      if (it == active_.end()) {
        // Freezing an already-frozen or unknown region is a no-op: the
        // source and the operators may both close the same region.
        return Status::OK();
      }
      Interval* target = it->second;
      if (target->hidden) {
        // Irrevocably removed: reclaim the content immediately (Section V).
        EraseRange(target->begin, target->end->next);
      } else {
        Unbind(e.id);
      }
      return Status::OK();
    }
  }
  return Status::Internal("unhandled event kind");
}

Status RegionDocument::FeedAll(const EventVec& events) {
  for (const Event& e : events) {
    XFLUX_RETURN_IF_ERROR(Feed(e));
  }
  return Status::OK();
}

EventVec RegionDocument::RenderEvents(const RenderOptions& options) const {
  EventVec out;
  int skip_depth = 0;
  const Item* end = &end_;
  for (Item* i = end_.next; i != end; i = i->next) {
    EmitVisible(*i, options, &skip_depth,
                [&out](const Event& e) { out.push_back(e); });
  }
  return out;
}

StatusOr<EventVec> Materialize(const EventVec& stream,
                               const RenderOptions& options, bool lenient) {
  RegionDocument doc(nullptr, lenient);
  XFLUX_RETURN_IF_ERROR(doc.FeedAll(stream));
  return doc.RenderEvents(options);
}

}  // namespace xflux
