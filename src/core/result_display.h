// The query result display (paper Sections I and IV).
//
// The final consumer of a pipeline: applies every update event to the
// displayed answer, "replacing old results with new", so that the current
// text is always the exact answer for the stream consumed so far.  This is
// the one component the paper implements with explicit update handling
// rather than a state transformer; here it delegates to RegionDocument and
// renders through the XML serializer.

#ifndef XFLUX_CORE_RESULT_DISPLAY_H_
#define XFLUX_CORE_RESULT_DISPLAY_H_

#include <functional>
#include <string>

#include "core/event_sink.h"
#include "core/region_document.h"
#include "util/metrics.h"
#include "util/status.h"

namespace xflux {

/// See file comment.
class ResultDisplay : public EventSink {
 public:
  struct Options {
    bool pretty = false;       ///< pretty-print the rendered answer
    bool keep_tuples = false;  ///< keep sT/eT markers in CurrentEvents()
  };

  explicit ResultDisplay(Metrics* metrics = nullptr)
      : ResultDisplay(Options(), metrics) {}
  explicit ResultDisplay(const Options& options, Metrics* metrics = nullptr)
      : options_(options), document_(metrics, /*lenient=*/true) {}

  void Accept(Event event) override;

  /// First protocol error, if any.
  const Status& status() const { return status_; }

  /// The current answer as an event sequence.
  EventVec CurrentEvents() const;

  /// The current answer rendered as XML text.
  StatusOr<std::string> CurrentText() const;

  /// Invoked after every event that may have changed the answer — live
  /// displays re-render from here.
  void SetOnChange(std::function<void(const ResultDisplay&)> on_change) {
    on_change_ = std::move(on_change);
  }

  /// Invoked exactly once, when the first protocol error latches — trace
  /// taps dump their event window from here.
  void SetOnError(std::function<void(const Status&)> on_error) {
    on_error_ = std::move(on_error);
  }

  /// Live regions still open to updates (display-side buffering cost).
  size_t live_region_count() const { return document_.live_region_count(); }
  size_t item_count() const { return document_.item_count(); }

 private:
  Options options_;
  RegionDocument document_;
  Status status_;
  std::function<void(const ResultDisplay&)> on_change_;
  std::function<void(const Status&)> on_error_;
};

}  // namespace xflux

#endif  // XFLUX_CORE_RESULT_DISPLAY_H_
