// The query result display (paper Sections I and IV).
//
// The final consumer of a pipeline: applies every update event to the
// displayed answer, "replacing old results with new", so that the current
// text is always the exact answer for the stream consumed so far.  This is
// the one component the paper implements with explicit update handling
// rather than a state transformer; here it delegates to RegionDocument and
// renders through the XML serializer.
//
// Rendering is incremental: the display keeps the document's stable prefix
// serialized once (a persistent writer bound to the live text buffer) and
// re-renders only the volatile tail per refresh — append-only streams pay
// O(1) amortized per CurrentText call.  When the document restructures
// already-rendered content it signals a restart and the display replays
// from the top; FullRender{Events,Text} bypass the incremental state
// entirely and are the oracle the fast path is cross-checked against.

#ifndef XFLUX_CORE_RESULT_DISPLAY_H_
#define XFLUX_CORE_RESULT_DISPLAY_H_

#include <functional>
#include <string>

#include "core/event_sink.h"
#include "core/region_document.h"
#include "util/metrics.h"
#include "util/status.h"
#include "xml/serializer.h"

namespace xflux {

/// See file comment.
class ResultDisplay : public EventSink {
 public:
  struct Options {
    bool pretty = false;       ///< pretty-print the rendered answer
    bool keep_tuples = false;  ///< keep sT/eT markers in CurrentEvents()
  };

  explicit ResultDisplay(Metrics* metrics = nullptr)
      : ResultDisplay(Options(), metrics) {}
  explicit ResultDisplay(const Options& options, Metrics* metrics = nullptr)
      : options_(options),
        document_(metrics, /*lenient=*/true),
        stable_writer_(XmlSerializer::Options{options.pretty}, &live_text_) {}

  void Accept(Event event) override;

  /// First protocol error, if any.
  const Status& status() const { return status_; }

  /// The current answer as an event sequence (incremental render).
  EventVec CurrentEvents() const;

  /// The current answer rendered as XML text (incremental render).
  StatusOr<std::string> CurrentText() const;

  /// Copy-free variants of the above: references stay valid until the next
  /// event is accepted.  What a per-event live display should call.
  /// Serialization errors (none on well-formed content) are reported via
  /// render_status(); the text is partial while it is not OK.
  const EventVec& LiveEvents() const;
  const std::string& LiveText() const;
  const Status& render_status() const { return render_status_; }

  /// Full re-render from the document, ignoring all incremental state —
  /// the fallback path and the oracle the live path is checked against.
  EventVec FullRenderEvents() const;
  StatusOr<std::string> FullRenderText() const;

  /// One answer-text delta for a remote consumer (the xflux_serve push
  /// path).  The stable-prefix/volatile-tail split maps directly onto a
  /// wire delta: bytes the consumer received while they were part of the
  /// stable prefix never change again (the prefix is append-only between
  /// structural restarts), while bytes received from the volatile tail
  /// must be resent.  The caller therefore remembers, per consumer, the
  /// `stable_len` and `restarts` values of the delta it last shipped and
  /// passes them back here; the consumer's new text is
  /// `old_text[0:keep] + append`.
  struct TextDelta {
    size_t keep = 0;          ///< prefix of the consumer's text still valid
    std::string_view append;  ///< bytes after `keep`; valid until next event
    size_t stable_len = 0;    ///< remember for the next TextDeltaSince call
    uint64_t restarts = 0;    ///< remember for the next TextDeltaSince call
  };
  TextDelta TextDeltaSince(size_t last_stable_len,
                           uint64_t last_restarts) const;

  /// Invoked after every event that may have changed the answer — live
  /// displays re-render from here.
  void SetOnChange(std::function<void(const ResultDisplay&)> on_change) {
    on_change_ = std::move(on_change);
  }

  /// Invoked exactly once, when the first protocol error latches — trace
  /// taps dump their event window from here.
  void SetOnError(std::function<void(const Status&)> on_error) {
    on_error_ = std::move(on_error);
  }

  /// Live regions still open to updates (display-side buffering cost).
  size_t live_region_count() const { return document_.live_region_count(); }
  size_t item_count() const { return document_.item_count(); }

  /// Times the incremental renderer had to fall back to a full replay.
  uint64_t full_rescans() const { return document_.full_rescans(); }

  /// The backing document (slab occupancy diagnostics).
  const RegionDocument& document() const { return document_; }

 private:
  // Brings live_text_/live_events_ up to date with the document: advances
  // the stable prefix, then recomputes the volatile tail.  O(tail) unless
  // the document restructured.
  void SyncLive() const;

  Options options_;
  RegionDocument document_;
  Status status_;
  std::function<void(const ResultDisplay&)> on_change_;
  std::function<void(const Status&)> on_error_;

  // Incremental render state (logically const: caches of document state).
  mutable std::string live_text_;
  mutable EventVec live_events_;
  mutable XmlSerializer stable_writer_;  // bound to live_text_
  mutable size_t stable_text_len_ = 0;
  mutable size_t stable_event_count_ = 0;
  mutable Status render_status_;  // stable-prefix or volatile-tail error
  mutable uint64_t synced_epoch_ = 0;
  mutable bool synced_once_ = false;
};

}  // namespace xflux

#endif  // XFLUX_CORE_RESULT_DISPLAY_H_
