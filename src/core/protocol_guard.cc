#include "core/protocol_guard.h"

#include <utility>

namespace xflux {

namespace {

Event MakeUpdateEnd(EventKind start_kind, StreamId target, StreamId uid) {
  switch (start_kind) {
    case EventKind::kStartMutable: return Event::EndMutable(target, uid);
    case EventKind::kStartReplace: return Event::EndReplace(target, uid);
    case EventKind::kStartInsertBefore:
      return Event::EndInsertBefore(target, uid);
    default:
      return Event::EndInsertAfter(target, uid);
  }
}

std::string Describe(const Event& e) { return e.ToString(); }

}  // namespace

StatusOr<ProtocolGuard::Policy> ProtocolGuard::ParsePolicy(
    std::string_view name) {
  if (name == "failfast" || name == "fail-fast") return Policy::kFailFast;
  if (name == "drop" || name == "droparea" || name == "drop-region" ||
      name == "dropregion") {
    return Policy::kDropRegion;
  }
  if (name == "resync") return Policy::kResync;
  return Status::InvalidArgument("unknown guard policy '" + std::string(name) +
                                 "' (want failfast|drop|resync)");
}

void ProtocolGuard::CountDropped(const Event&) {
  ++dropped_events_;
  context()->metrics()->CountGuardDroppedEvent();
}

bool ProtocolGuard::Swallowed(const Event& e) {
  if (resyncing_) {
    if (e.kind == EventKind::kStartStream) {
      // A fresh stream is a balanced bracket point: resume from here.
      resyncing_ = false;
      return false;
    }
    if (e.kind == EventKind::kEndStream) {
      // The boundary itself: the synthesized eS already closed the stream
      // downstream, so the real one is swallowed, but resync is over.
      resyncing_ = false;
    }
    return true;
  }
  if (discard_.empty()) return false;
  if (e.IsUpdateStart()) {
    auto it = discard_.find(e.uid);
    if (it != discard_.end()) {
      // The discarded id reused while its brackets are still outstanding:
      // one more end bracket to swallow.
      ++it->second;
      return true;
    }
    if (discard_.count(e.id) > 0) {
      // A nested update addressed to a discarded region: discard it too.
      ++discard_[e.uid];
      return true;
    }
    return false;
  }
  if (e.IsUpdateEnd()) {
    auto it = discard_.find(e.uid);
    if (it == discard_.end()) return false;
    if (--it->second <= 0) discard_.erase(it);
    return true;
  }
  if (e.kind == EventKind::kStartStream || e.kind == EventKind::kEndStream) {
    // Stream brackets are never region content, whatever their id.
    return false;
  }
  // Other simple events and freeze/hide/show carry the region in `id`.
  return discard_.count(e.id) > 0;
}

bool ProtocolGuard::Shed(const Event& e) {
  if (e.IsUpdateStart()) {
    if (shed_ids_.count(e.id) > 0) {
      // A chained update addressing a shed region: shed it too, so the
      // whole update lineage dies without ever becoming a violation.
      ShedRegion(e);
      return true;
    }
    if (shed_updates_ && base_.count(e.id) == 0 && open_.count(e.id) == 0) {
      // Retroactive: the target is already-streamed (closed) content, not
      // an open stream or live region — exactly the work tier 2 defers.
      ShedRegion(e);
      return true;
    }
    return false;
  }
  if (shed_ids_.empty()) return false;
  if (e.kind == EventKind::kStartStream || e.kind == EventKind::kEndStream) {
    return false;
  }
  if (shed_ids_.count(e.id) == 0) return false;
  if (e.kind == EventKind::kFreeze) {
    // Frozen regions can never be addressed again: reclaim the entry.
    shed_ids_.erase(e.id);
  }
  return true;  // controls or stray content for a shed region
}

void ProtocolGuard::ShedRegion(const Event& start) {
  shed_ids_.insert(start.uid);
  // Swallow the region's content and its end bracket through the same
  // pending-ends machinery kDropRegion uses; nothing was forwarded, so no
  // retraction is needed.
  ++discard_[start.uid];
  ++shed_regions_;
  context()->metrics()->CountShedTier(2);
}

Status ProtocolGuard::Check(const Event& e) {
  offense_ = Offense::kNone;
  offending_region_ = 0;
  const ResourceLimits& limits = options_.limits;
  if (limits.max_buffered_bytes > 0 &&
      context()->metrics()->ApproxStateBytes() > limits.max_buffered_bytes) {
    offense_ = Offense::kResource;
    return Status::ResourceExhausted(
        "pipeline state " +
        std::to_string(context()->metrics()->ApproxStateBytes()) +
        "B exceeds max_buffered_bytes=" +
        std::to_string(limits.max_buffered_bytes));
  }

  switch (e.kind) {
    case EventKind::kStartStream:
      if (base_.count(e.id) > 0) {
        offense_ = Offense::kStructural;
        return Status::ProtocolViolation("sS for already-open stream " +
                                         std::to_string(e.id));
      }
      if (open_.count(e.id) > 0) {
        // The symmetric collision: a stream claiming an open region's id.
        offense_ = Offense::kEventOnly;
        return Status::ProtocolViolation(
            "stream start collides with open region " + std::to_string(e.id));
      }
      base_.emplace(e.id, std::vector<Symbol>{});
      return Status::OK();

    case EventKind::kEndStream: {
      auto it = base_.find(e.id);
      if (it == base_.end()) {
        offense_ = Offense::kEventOnly;
        return Status::ProtocolViolation("eS for unknown stream " +
                                         std::to_string(e.id));
      }
      if (!it->second.empty()) {
        offense_ = Offense::kStructural;
        return Status::ProtocolViolation(
            "stream " + std::to_string(e.id) + " ended with " +
            std::to_string(it->second.size()) + " open element(s)");
      }
      base_.erase(it);
      hot_stack_ = nullptr;
      if (base_.empty() && !open_.empty()) {
        // The last base stream is gone with brackets still dangling — the
        // truncated-update-tail shape.  Attributable to the open regions.
        offense_ = Offense::kRegion;
        offending_region_ = open_.begin()->first;
        return Status::ProtocolViolation(
            "stream ended with " + std::to_string(open_.size()) +
            " open update bracket(s)");
      }
      return Status::OK();
    }

    case EventKind::kStartTuple:
    case EventKind::kEndTuple:
    case EventKind::kStartElement:
    case EventKind::kEndElement:
    case EventKind::kCharacters: {
      std::vector<Symbol>* stack;
      bool is_region;
      if (hot_stack_ != nullptr && e.id == hot_id_) {
        // Consecutive content almost always shares one home stream; the
        // cached mapped-value pointer is stable until that entry is
        // erased (erasures null it out).
        stack = hot_stack_;
        is_region = hot_is_region_;
      } else {
        stack = nullptr;
        is_region = false;
        auto oit = open_.find(e.id);
        if (oit != open_.end()) {
          stack = &oit->second.stack;
          is_region = true;
        } else {
          auto bit = base_.find(e.id);
          if (bit != base_.end()) stack = &bit->second;
        }
        if (stack == nullptr) {
          offense_ = Offense::kEventOnly;
          return Status::ProtocolViolation(
              "content for closed or unknown region: " + Describe(e));
        }
        hot_id_ = e.id;
        hot_stack_ = stack;
        hot_is_region_ = is_region;
      }
      // Character data and tuple markers (FLWOR binding scopes) need no
      // stack bookkeeping — only a live home stream.
      if (e.kind != EventKind::kStartElement &&
          e.kind != EventKind::kEndElement) {
        return Status::OK();
      }
      if (e.kind == EventKind::kStartElement) {
        if (limits.max_depth > 0 && stack->size() >= limits.max_depth) {
          if (is_region) {
            offense_ = Offense::kRegion;
            offending_region_ = e.id;
          } else {
            // Depth overflow in a base stream: the stream itself is the
            // problem, so recovery means abandoning it (structural), not
            // poisoning the whole pipeline under lenient policies.
            offense_ = Offense::kStructural;
          }
          return Status::ResourceExhausted(
              "element depth exceeds max_depth=" +
              std::to_string(limits.max_depth) + " at " + Describe(e));
        }
        stack->push_back(e.tag);
        return Status::OK();
      }
      // kEndElement.
      if (stack->empty() || stack->back() != e.tag) {
        if (is_region) {
          offense_ = Offense::kRegion;
          offending_region_ = e.id;
        } else {
          offense_ = Offense::kStructural;
        }
        return Status::ProtocolViolation(
            stack->empty()
                ? "unmatched end element " + Describe(e)
                : "mismatched end element " + Describe(e) + ", open <" +
                      std::string(TagSpelling(stack->back())) + ">");
      }
      stack->pop_back();
      return Status::OK();
    }

    case EventKind::kStartMutable:
    case EventKind::kStartReplace:
    case EventKind::kStartInsertBefore:
    case EventKind::kStartInsertAfter: {
      if (base_.count(e.uid) > 0) {
        // A region with an open base stream's id would, once closed,
        // retroactively outlaw the rest of that stream's content.  Dropping
        // the single bracket event is the only recovery that keeps the
        // base stream alive.
        offense_ = Offense::kEventOnly;
        return Status::ProtocolViolation(
            "update bracket uid collides with open stream: " + Describe(e));
      }
      if (open_.count(e.uid) > 0) {
        offense_ = Offense::kRegion;
        offending_region_ = e.uid;
        return Status::ProtocolViolation("region " + std::to_string(e.uid) +
                                         " opened twice concurrently");
      }
      if (limits.max_open_regions > 0 &&
          open_.size() >= limits.max_open_regions) {
        offense_ = Offense::kRegion;
        offending_region_ = e.uid;
        return Status::ResourceExhausted(
            "open update regions exceed max_open_regions=" +
            std::to_string(limits.max_open_regions) + " at " + Describe(e));
      }
      open_.emplace(e.uid, RegionInfo{e.kind, e.id, {}});
      return Status::OK();
    }

    case EventKind::kEndMutable:
    case EventKind::kEndReplace:
    case EventKind::kEndInsertBefore:
    case EventKind::kEndInsertAfter: {
      auto it = open_.find(e.uid);
      if (it == open_.end()) {
        offense_ = Offense::kEventOnly;
        return Status::ProtocolViolation(
            "end bracket without matching start: " + Describe(e));
      }
      EventKind want = EventKind::kEndMutable;
      TryMatchingUpdateEnd(it->second.start_kind, &want);
      if (want != e.kind || it->second.target != e.id) {
        offense_ = Offense::kRegion;
        offending_region_ = e.uid;
        return Status::ProtocolViolation("mismatched update brackets for region " +
                                         std::to_string(e.uid) + " at " +
                                         Describe(e));
      }
      if (!it->second.stack.empty()) {
        offense_ = Offense::kRegion;
        offending_region_ = e.uid;
        return Status::ProtocolViolation(
            "region " + std::to_string(e.uid) + " closed with " +
            std::to_string(it->second.stack.size()) + " open element(s)");
      }
      open_.erase(it);
      hot_stack_ = nullptr;
      return Status::OK();
    }

    case EventKind::kFreeze:
    case EventKind::kHide:
    case EventKind::kShow:
      // Control events addressed to vanished regions are dropped leniently
      // further down; nothing for the guard to enforce.
      return Status::OK();
  }
  offense_ = Offense::kEventOnly;
  return Status::ProtocolViolation("unknown event kind");
}

void ProtocolGuard::DiscardRegion(StreamId uid, int pending_ends) {
  auto it = open_.find(uid);
  if (it != open_.end()) {
    RegionInfo& ri = it->second;
    // Close the partially-forwarded content well-formedly, then retract it
    // through the regular machinery: hide removes it from the answer (and
    // the adjustment wrapper retracts its effect), freeze reclaims it.
    for (auto rit = ri.stack.rbegin(); rit != ri.stack.rend(); ++rit) {
      Emit(Event::EndElement(uid, *rit));
    }
    Emit(MakeUpdateEnd(ri.start_kind, ri.target, uid));
    Emit(Event::Hide(uid));
    Emit(Event::Freeze(uid));
    open_.erase(it);
    hot_stack_ = nullptr;
  }
  ++dropped_regions_;
  context()->metrics()->CountGuardDroppedRegion();
  if (pending_ends > 0) discard_[uid] = pending_ends;
}

void ProtocolGuard::Finish() {
  if (base_.empty() && open_.empty()) {
    resyncing_ = false;
    discard_.clear();
    shed_ids_.clear();
    return;
  }
  ++violations_;
  context()->metrics()->CountGuardViolation();
  last_violation_ = Status::ProtocolViolation(
      "input truncated with " + std::to_string(open_.size()) +
      " open update bracket(s) and " + std::to_string(base_.size()) +
      " open stream(s)");
  if (options_.policy == Policy::kFailFast) {
    context()->ReportError(last_violation_);
    return;
  }
  CloseAllOpen();
  resyncing_ = false;
}

void ProtocolGuard::EnterResync() {
  ++resyncs_;
  context()->metrics()->CountGuardResync();
  CloseAllOpen();
  resyncing_ = true;
}

void ProtocolGuard::CloseAllOpen() {
  for (auto& [uid, ri] : open_) {
    for (auto rit = ri.stack.rbegin(); rit != ri.stack.rend(); ++rit) {
      Emit(Event::EndElement(uid, *rit));
    }
    Emit(MakeUpdateEnd(ri.start_kind, ri.target, uid));
    Emit(Event::Hide(uid));
    Emit(Event::Freeze(uid));
    ++dropped_regions_;
    context()->metrics()->CountGuardDroppedRegion();
  }
  open_.clear();
  discard_.clear();
  shed_ids_.clear();
  for (auto& [id, stack] : base_) {
    for (auto rit = stack.rbegin(); rit != stack.rend(); ++rit) {
      Emit(Event::EndElement(id, *rit));
    }
    Emit(Event::EndStream(id));
  }
  base_.clear();
  hot_stack_ = nullptr;
}

void ProtocolGuard::HandleViolation(const Event& e, Status violation) {
  ++violations_;
  context()->metrics()->CountGuardViolation();
  last_violation_ = violation;
  switch (options_.policy) {
    case Policy::kFailFast:
      context()->ReportError(std::move(violation));
      return;

    case Policy::kDropRegion:
      switch (offense_) {
        case Offense::kRegion:
          if (e.kind == EventKind::kEndStream) {
            // Dangling brackets at end of input: retract them all, then
            // forward the (itself clean) stream close.
            std::vector<StreamId> uids;
            uids.reserve(open_.size());
            for (const auto& [uid, ri] : open_) uids.push_back(uid);
            for (StreamId uid : uids) DiscardRegion(uid, 1);
            Emit(e);
            return;
          }
          if (e.IsUpdateStart() && open_.count(e.uid) > 0) {
            // Double open: retract the live instance, then swallow both
            // outstanding end brackets.
            DiscardRegion(e.uid, 2);
          } else if (e.IsUpdateStart()) {
            // Rejected before it opened (resource limit): swallow its
            // whole bracket.
            DiscardRegion(e.uid, 1);
          } else if (e.IsUpdateEnd()) {
            // The corrupt bracket just closed itself; retract it.  No
            // further end brackets are outstanding.
            DiscardRegion(e.uid, 0);
          } else {
            // Corrupt content inside an open region: retract the region
            // and swallow the rest of it, up to its real end bracket.
            DiscardRegion(offending_region_, 1);
          }
          CountDropped(e);
          return;
        case Offense::kEventOnly:
          CountDropped(e);
          return;
        default:
          // Base-stream structure or a global resource bound: there is no
          // region to drop.  Escalate.
          context()->ReportError(std::move(violation));
          return;
      }

    case Policy::kResync: {
      if (offense_ == Offense::kResource) {
        // Buffered-bytes overruns are unrecoverable by skipping input:
        // the memory is already committed downstream.
        context()->ReportError(std::move(violation));
        return;
      }
      // Whether the offending eS's stream is still tracked decides below
      // who closes it downstream (EnterResync clears base_ either way).
      bool stream_still_open =
          e.kind == EventKind::kEndStream && base_.count(e.id) > 0;
      EnterResync();
      if (e.kind == EventKind::kStartStream) {
        // The offending event is itself a balanced point: restart at it.
        resyncing_ = false;
        Status again = Check(e);
        if (again.ok()) {
          Emit(e);
        } else {
          CountDropped(e);
        }
        return;
      }
      if (e.kind == EventKind::kEndStream) {
        resyncing_ = false;
        if (!stream_still_open) {
          // Check() already retired the stream (dangling-bracket case), so
          // EnterResync had no eS to synthesize: forward the real one.
          Emit(e);
          return;
        }
        // EnterResync already closed the stream downstream.
      }
      CountDropped(e);
      return;
    }
  }
}

void ProtocolGuard::Dispatch(Event e) {
  if (Swallowed(e)) {
    CountDropped(e);
    return;
  }
  if ((shed_updates_ || !shed_ids_.empty()) && Shed(e)) {
    CountDropped(e);
    return;
  }
  Status v = Check(e);
  if (v.ok()) {
    Emit(std::move(e));
    return;
  }
  HandleViolation(e, std::move(v));
}

void ProtocolGuard::DispatchBatch(EventBatch batch) {
  // Fast path: while no discard/resync/shedding is active, validate in
  // place; a batch that is clean end to end is forwarded untouched — no
  // per-event copy, one EmitBatch.
  if (!resyncing_ && discard_.empty() && !shed_updates_ &&
      shed_ids_.empty()) {
    const size_t n = batch.size();
    const size_t max_depth = options_.limits.max_depth;
    const bool check_bytes = options_.limits.max_buffered_bytes > 0;
    size_t i = 0;
    Status v;
    while (i < n) {
      const Event& e = batch[i];
      if (hot_stack_ != nullptr && e.id == hot_id_ && !check_bytes) {
        // Inline mirror of Check()'s content case for the cached home
        // stream — the overwhelming majority of clean traffic — avoiding
        // the call and the Status round-trip.  Anything it cannot prove
        // clean falls through to the full Check.
        std::vector<Symbol>& stack = *hot_stack_;
        if (e.kind == EventKind::kCharacters ||
            e.kind == EventKind::kStartTuple ||
            e.kind == EventKind::kEndTuple) {
          ++i;
          continue;
        }
        if (e.kind == EventKind::kStartElement &&
            (max_depth == 0 || stack.size() < max_depth)) {
          stack.push_back(e.tag);
          ++i;
          continue;
        }
        if (e.kind == EventKind::kEndElement && !stack.empty() &&
            stack.back() == e.tag) {
          stack.pop_back();
          ++i;
          continue;
        }
      }
      v = Check(e);
      if (!v.ok()) break;
      ++i;
    }
    if (i == n) {
      EmitBatch(std::move(batch));
      return;
    }
    if (i > 0) {
      EmitBatch(EventBatch(std::make_move_iterator(batch.begin()),
                           std::make_move_iterator(batch.begin() + i)));
    }
    HandleViolation(batch[i], std::move(v));
    for (size_t j = i + 1; j < n; ++j) Dispatch(std::move(batch[j]));
    return;
  }
  for (Event& e : batch) Dispatch(std::move(e));
}

}  // namespace xflux
