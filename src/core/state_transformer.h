// The state-transformer abstraction of paper Section II, with the
// state-adjustment hook of Section IV.
//
// An operator is written as if its input were a plain XML stream: a state
// modifier F(e) that destructively updates an operator-specific state and
// returns output events.  The adjustment wrapper (core/transform_stage.h)
// takes care of incoming updates by keeping one state copy per mutable
// region and invoking Adjust when a retroactive update changes a past
// section of the stream.

#ifndef XFLUX_CORE_STATE_TRANSFORMER_H_
#define XFLUX_CORE_STATE_TRANSFORMER_H_

#include <memory>
#include <string>

#include "core/event.h"

namespace xflux {

class PipelineContext;
class StageContext;

/// Operator-specific state (the S in the paper's (S, s, z, i:f) tuple).
/// States must be cloneable: the wrapper snapshots them at region
/// boundaries.  Snapshots are taken copy-on-write (util/cow.h), so Clone
/// runs only when a shared copy is first written — which also means Clone
/// must produce a fully independent value: no mutable state reachable from
/// both the original and the clone (StateBase's memberwise copy satisfies
/// this for value-type members; immutable shared payloads like TextRef
/// are fine).
class OperatorState {
 public:
  virtual ~OperatorState() = default;

  /// Deep copy.
  virtual std::unique_ptr<OperatorState> Clone() const = 0;
};

/// Convenience CRTP base: implements Clone via the copy constructor.
template <typename Derived>
class StateBase : public OperatorState {
 public:
  std::unique_ptr<OperatorState> Clone() const override {
    return std::make_unique<Derived>(static_cast<const Derived&>(*this));
  }
};

/// A pipeline operator over one or more base streams.
///
/// Implementations may assume `state` in Process/Adjust is of the type
/// returned by InitialState (the wrapper guarantees it) and downcast with
/// static_cast.
class StateTransformer {
 public:
  virtual ~StateTransformer() = default;

  /// Operator name for diagnostics and metrics.
  virtual std::string Name() const = 0;

  /// True if the operator consumes events whose lineage roots at `base_id`.
  /// Events of other streams pass through the stage untouched.
  virtual bool Consumes(StreamId base_id) const = 0;

  /// The initial state z.
  virtual std::unique_ptr<OperatorState> InitialState() const = 0;

  /// The state modifier F(e): destructively updates `state` and appends
  /// output events to `out`.  Only simple events are passed in; the wrapper
  /// handles all update events.  `root` is the base stream the event's
  /// lineage roots at — binary operators dispatch on it (the paper's
  /// per-stream transformers f_1 ... f_n).
  virtual void Process(const Event& e, StreamId root, OperatorState* state,
                       EventVec* out) = 0;

  /// Which state copy an Adjust call is fixing up.  Operators use this to
  /// decide whether to embed events: e.g. the counting operator re-emits
  /// its replace update only from the live tail, while the predicate emits
  /// show/hide only from element-end snapshots.
  enum class AdjustTarget {
    kStartSnapshot,  // a region's start (or shadow) state
    kEndSnapshot,    // a closed region's end state
    kLiveTail,       // the state at the current head of the stream
  };

  /// The paper's Adjust(s1, s2): given that an earlier update changed state
  /// s1 into s2, destructively adjusts `state` accordingly and may append
  /// events to `out` (never null).  `region` is the id of the update region
  /// the snapshot belongs to (0 for the live tail) — operators that emit
  /// corrective updates key the emission to the one snapshot that owns the
  /// corresponding output region, avoiding duplicates.
  ///
  /// The default is the inert adjustment: state is unchanged.
  virtual void Adjust(OperatorState* state, const OperatorState& s1,
                      const OperatorState& s2, AdjustTarget target,
                      StreamId region, EventVec* out) {
    (void)state;
    (void)s1;
    (void)s2;
    (void)target;
    (void)region;
    (void)out;
  }

  /// True if Adjust is the identity (most XPath steps).  Inert operators
  /// skip the adjustment loop entirely.
  virtual bool IsInert() const { return true; }

  /// Called by TransformStage when the transformer joins a pipeline stage.
  /// Everything the operator does at *event time* (minting region ids,
  /// fix-registry lookups, metrics) must go through stage() so it lands in
  /// the stage's service view — construction-time work keeps using the
  /// PipelineContext passed to the operator's constructor.
  void BindStage(StageContext* stage) { stage_ = stage; }

 protected:
  /// The owning stage's service view; null until the operator is wrapped
  /// in a TransformStage.
  StageContext* stage() const { return stage_; }

 private:
  StageContext* stage_ = nullptr;
};

}  // namespace xflux

#endif  // XFLUX_CORE_STATE_TRANSFORMER_H_
