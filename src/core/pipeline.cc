#include "core/pipeline.h"

#include <chrono>

namespace xflux {

namespace {

using Clock = std::chrono::steady_clock;

uint64_t ElapsedNs(Clock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           start)
          .count());
}

}  // namespace

void Filter::AcceptInstrumented(Event event) {
  StageStats& s = *stats_;
  if (event.IsSimple()) {
    ++s.in_simple;
  } else {
    ++s.in_update;
  }
  Clock::time_point start = Clock::now();
  Dispatch(std::move(event));
  s.wall_ns += ElapsedNs(start);
}

void Filter::EmitInstrumented(Event event) {
  StageStats& s = *stats_;
  if (event.IsSimple()) {
    ++s.out_simple;
  } else {
    ++s.out_update;
  }
  Clock::time_point start = Clock::now();
  next_->Accept(std::move(event));
  s.downstream_ns += ElapsedNs(start);
}

void Filter::AcceptBatchInstrumented(EventBatch batch) {
  StageStats& s = *stats_;
  for (const Event& e : batch) {
    if (e.IsSimple()) {
      ++s.in_simple;
    } else {
      ++s.in_update;
    }
  }
  Clock::time_point start = Clock::now();
  DispatchBatch(std::move(batch));
  s.wall_ns += ElapsedNs(start);
}

void Filter::EmitBatchInstrumented(EventBatch batch) {
  StageStats& s = *stats_;
  for (const Event& e : batch) {
    if (e.IsSimple()) {
      ++s.out_simple;
    } else {
      ++s.out_update;
    }
  }
  Clock::time_point start = Clock::now();
  next_->AcceptBatch(std::move(batch));
  s.downstream_ns += ElapsedNs(start);
}

Filter* Pipeline::Add(std::unique_ptr<Filter> stage) {
  assert(!wired_ && "Add after SetSink");
  Filter* raw = stage.get();
  if (!stages_.empty()) {
    stages_.back()->SetNext(raw);
  }
  raw->BindStats(context_->stats());
  stages_.push_back(std::move(stage));
  return raw;
}

Filter* Pipeline::InsertAfter(size_t index, std::unique_ptr<Filter> stage) {
  assert(index < stages_.size() && "InsertAfter past the end of the chain");
  Filter* raw = stage.get();
  raw->BindStats(context_->stats());
  raw->SetNext(index + 1 < stages_.size() ? stages_[index + 1].get()
                                          : static_cast<EventSink*>(sink_));
  stages_[index]->SetNext(raw);
  stages_.insert(stages_.begin() + static_cast<ptrdiff_t>(index) + 1,
                 std::move(stage));
  return raw;
}

Filter* Pipeline::InsertFront(std::unique_ptr<Filter> stage) {
  Filter* raw = stage.get();
  raw->BindStats(context_->stats());
  raw->SetNext(stages_.empty() ? static_cast<EventSink*>(sink_)
                               : stages_.front().get());
  stages_.insert(stages_.begin(), std::move(stage));
  return raw;
}

void Pipeline::SetSink(EventSink* sink) {
  assert(!wired_ && "SetSink called twice");
  sink_ = sink;
  if (!stages_.empty()) {
    stages_.back()->SetNext(sink);
  }
  wired_ = true;
}

void Pipeline::Push(Event event) {
  assert(wired_ && "Push before SetSink");
  if (context_->poisoned()) return;
  if (event.kind == EventKind::kStartStream) {
    // Source streams are base streams; an id-reusing bracket downstream
    // must never re-root them.
    context_->streams()->RegisterBase(event.id);
  }
  if (!accept_source_updates_ && event.kind == EventKind::kStartMutable) {
    // The consumer opted out: the region is born fixed, so every stage
    // evicts its state immediately and later updates to it are dropped.
    context_->fix()->SetFixed(event.uid, true);
  }
  context_->fix()->OnEvent(event);
  context_->streams()->OnEvent(event);
  EventSink* first = stages_.empty() ? sink_ : stages_.front().get();
  first->Accept(std::move(event));
}

void Pipeline::PushBatch(EventBatch batch) {
  assert(wired_ && "Push before SetSink");
  if (context_->poisoned()) return;
  for (const Event& e : batch) {
    if (e.kind == EventKind::kStartStream) {
      context_->streams()->RegisterBase(e.id);
    }
    if (!accept_source_updates_ && e.kind == EventKind::kStartMutable) {
      context_->fix()->SetFixed(e.uid, true);
    }
    context_->fix()->OnEvent(e);
    context_->streams()->OnEvent(e);
  }
  EventSink* first = stages_.empty() ? sink_ : stages_.front().get();
  first->AcceptBatch(std::move(batch));
}

void Pipeline::PushAll(const EventVec& events) {
  // Events copy cheaply (interned tags, refcounted text), so feeding a
  // whole in-memory sequence goes through the batched path.
  PushBatch(EventBatch(events.begin(), events.end()));
}

}  // namespace xflux
